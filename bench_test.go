// Benchmarks regenerating every figure and table of the paper's
// evaluation at Fast scale. Each figure bench runs the corresponding
// experiment end to end and reports the headline quantity the paper's
// plot shows as a custom metric (final accuracy, speedup, bound value),
// so `go test -bench=. -benchmem` doubles as the reproduction harness.
// Paper-scale runs use cmd/middlesim -scale paper.
package middle_test

import (
	"testing"

	"middle"
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/nn"
	"middle/internal/tensor"
)

// benchSteps keeps figure benchmarks affordable; the curves' shape
// (MIDDLE vs baselines ordering) is already visible at this horizon.
const benchSteps = 30

// BenchmarkFig1Motivation regenerates Figure 1: classical HFL with
// opposite 70/30 skews across two edges. Reported metrics: the final
// accuracy of edge 1 on its major and minor classes — the paper's point
// is the widening gap between them.
func BenchmarkFig1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := middle.RunFig1(middle.Fig1Config{Scale: middle.Fast, Seed: 1, Steps: benchSteps})
		last := len(r.Steps) - 1
		b.ReportMetric(r.MajorAcc[last], "major-acc")
		b.ReportMetric(r.MinorAcc[last], "minor-acc")
		b.ReportMetric(r.GlobalAcc[last], "global-acc")
	}
}

// BenchmarkFig2OnDeviceAggregation regenerates Figure 2: the scripted
// device swap comparing General vs 50/50 on-device aggregation.
// Reported metrics: overall cloud accuracy for both methods.
func BenchmarkFig2OnDeviceAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := middle.RunFig2(middle.Fig2Config{Scale: middle.Fast, Seed: 1, Warmup: 25, After: 15})
		b.ReportMetric(r.CloudOverall[0], "cloud-acc-general")
		b.ReportMetric(r.CloudOverall[1], "cloud-acc-ondevice")
		b.ReportMetric(r.EdgeOverall[1]-r.EdgeOverall[0], "edge1-acc-gain")
	}
}

// BenchmarkFig6TimeToAccuracy regenerates Figure 6 per task: all five
// strategies on the shared topology. Reported metrics: MIDDLE's final
// accuracy and its average speedup over the baselines that reached the
// target.
func BenchmarkFig6TimeToAccuracy(b *testing.B) {
	for _, task := range data.AllTasks() {
		b.Run(string(task), func(b *testing.B) {
			setup := middle.NewTaskSetup(task, middle.Fast, 1)
			for i := 0; i < b.N; i++ {
				r := middle.RunFig6(setup, middle.EvaluationSet(), 0.5, 1, benchSteps)
				var ref eval.TTAResult
				for _, t := range r.Results {
					if t.Strategy == "MIDDLE" {
						ref = t
					}
				}
				b.ReportMetric(ref.FinalAcc, "middle-final-acc")
				count, sum := 0, 0.0
				for _, t := range r.Results {
					if t.Strategy == "MIDDLE" {
						continue
					}
					if s := eval.Speedup(ref, t); s > 0 {
						sum += s
						count++
					}
				}
				if count > 0 {
					b.ReportMetric(sum/float64(count), "avg-speedup")
				}
			}
		})
	}
}

// BenchmarkFig7MobilitySweep regenerates Figure 7 per task: final
// accuracy at P ∈ {0.1, 0.3, 0.5}. Reported metric: MIDDLE's accuracy
// spread across the sweep (robustness) and its best accuracy.
func BenchmarkFig7MobilitySweep(b *testing.B) {
	for _, task := range data.AllTasks() {
		b.Run(string(task), func(b *testing.B) {
			setup := middle.NewTaskSetup(task, middle.Fast, 1)
			for i := 0; i < b.N; i++ {
				r := middle.RunFig7(setup, []middle.Strategy{middle.MIDDLE(), middle.OORT()}, []float64{0.1, 0.3, 0.5}, 1, benchSteps)
				best, worst := 0.0, 1.0
				for _, v := range r.FinalAcc[0] {
					if v > best {
						best = v
					}
					if v < worst {
						worst = v
					}
				}
				b.ReportMetric(best, "middle-best-acc")
				b.ReportMetric(best-worst, "middle-acc-spread")
			}
		})
	}
}

// BenchmarkFig8CloudInterval regenerates Figure 8 per task: MIDDLE vs
// OORT at T_c ∈ {5, 10, 20}. Reported metric: how much OORT's final
// accuracy degrades from T_c=5 to T_c=20 versus MIDDLE's degradation —
// the paper's claim is that OORT suffers more from rare cloud syncs.
func BenchmarkFig8CloudInterval(b *testing.B) {
	for _, task := range data.AllTasks() {
		b.Run(string(task), func(b *testing.B) {
			setup := middle.NewTaskSetup(task, middle.Fast, 1)
			for i := 0; i < b.N; i++ {
				r := middle.RunFig8(setup, []middle.Strategy{middle.MIDDLE(), middle.OORT()}, []int{5, 10, 20}, 0.5, 1, benchSteps)
				fa := r.FinalAccuracies()
				b.ReportMetric(fa["MIDDLE Tc=5"]-fa["MIDDLE Tc=20"], "middle-tc-drop")
				b.ReportMetric(fa["OORT Tc=5"]-fa["OORT Tc=20"], "oort-tc-drop")
			}
		})
	}
}

// BenchmarkTheoremBound regenerates the §5 validation: the Remark 1
// sweep on the convex quadratic. Reported metrics: the measured
// divergence reduction from aggregation and the bound ratio across the
// P grid (must exceed 1: the bound shrinks as P grows).
func BenchmarkTheoremBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := middle.RunTheory(middle.TheoryConfig{Scale: middle.Fast, Seed: 1,
			Ps: []float64{0.1, 0.5}, Alphas: []float64{0.0001, 0.5}})
		b.ReportMetric(r.Bound[0]/r.Bound[1], "bound-ratio-P.1-vs-.5")
		// α≈0 column approximates no aggregation; α=0.5 is full blending.
		b.ReportMetric(r.Divergence[1][0]-r.Divergence[1][1], "divergence-reduction")
	}
}

// --- kernel microbenchmarks -------------------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(y, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := tensor.NewRNG(1)
	net := nn.NewCNN2(nn.CNN2Config{InC: 1, H: 28, W: 28, Classes: 10, C1: 8, C2: 16, Hidden: 64}, rng)
	x := tensor.New(16, 1, 28, 28)
	rng.FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkLocalTrainingRound(b *testing.B) {
	// One device's round: I=10 local steps of batch 16 on the paper's
	// MNIST CNN — the unit of work Algorithm 1 parallelises.
	rng := tensor.NewRNG(1)
	net := nn.NewCNN2(nn.CNN2Config{InC: 1, H: 28, W: 28, Classes: 10, C1: 8, C2: 16, Hidden: 64}, rng)
	x := tensor.New(16, 1, 28, 28)
	rng.FillNormal(x, 0, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 10; s++ {
			net.ZeroGrad()
			logits := net.Forward(x, true)
			_, g := nn.SoftmaxCrossEntropy(logits, labels)
			net.Backward(g)
			for _, p := range net.Params() {
				p.Value.AddScaledInPlace(-0.01, p.Grad)
			}
		}
	}
}

func BenchmarkOnDeviceAggregation(b *testing.B) {
	rng := tensor.NewRNG(1)
	n := 60000 // ≈ the paper MNIST CNN parameter count
	wEdge := make([]float64, n)
	wLocal := make([]float64, n)
	for i := range wEdge {
		wEdge[i] = rng.NormFloat64()
		wLocal[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		middle.OnDeviceAggregate(wEdge, wLocal)
	}
}

func BenchmarkOnDeviceAggregationInto(b *testing.B) {
	// Allocation-free form used inside Sim.StepOnce: the aggregate lands
	// in a caller-owned buffer, so steady-state steps do not allocate.
	rng := tensor.NewRNG(1)
	n := 60000
	wEdge := make([]float64, n)
	wLocal := make([]float64, n)
	dst := make([]float64, n)
	for i := range wEdge {
		wEdge[i] = rng.NormFloat64()
		wLocal[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		middle.OnDeviceAggregateInto(dst, wEdge, wLocal)
	}
}

func BenchmarkSelectionScoring(b *testing.B) {
	rng := tensor.NewRNG(1)
	n := 60000
	cloud := make([]float64, n)
	locals := make([][]float64, 10)
	for i := range cloud {
		cloud[i] = rng.NormFloat64()
	}
	for m := range locals {
		locals[m] = make([]float64, n)
		for i := range locals[m] {
			locals[m][i] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := range locals {
			middle.SelectionScore(cloud, locals[m])
		}
	}
}

func BenchmarkSimulationStep(b *testing.B) {
	// One full Algorithm 1 time step at Fast scale (4 edges × K=3
	// devices training in parallel).
	setup := middle.NewTaskSetup(data.TaskMNIST, middle.Fast, 1)
	part := setup.Partition(1)
	mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, 11)
	cfg := setup.Config(1, 1<<30)
	cfg.EvalEvery = 0
	sim := middle.NewSimulation(cfg, setup.Factory, part, setup.Test, mob, middle.MIDDLE())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.StepOnce()
	}
}

// BenchmarkPopulationScaling measures one Algorithm 1 time step at a
// fixed cohort (100 edges × K=1) across growing populations under the
// lazy device store. The tentpole claim of the scale-out work is that
// per-step cost tracks the cohort, not the fleet: the three sizes
// should stay within the same order of magnitude, with only the O(1)
// -per-device selection scoring and mobility walk growing linearly.
func BenchmarkPopulationScaling(b *testing.B) {
	for _, sz := range []struct {
		name string
		n    int
	}{
		{"10k", 10_000},
		{"100k", 100_000},
		{"1M", 1_000_000},
	} {
		b.Run(sz.name, func(b *testing.B) {
			setup := middle.NewScaleSetup(data.TaskMNIST, 1, sz.n, 100, 1, 10)
			part := setup.Partition(1)
			mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, 11)
			cfg := setup.Config(1, 1<<30)
			cfg.EvalEvery = 0
			cfg.LazyStore = true
			sim := middle.NewSimulation(cfg, setup.Factory, part, setup.Test, mob, middle.MIDDLE())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.StepOnce()
			}
		})
	}
}
