module middle

go 1.22
