// Package middle is the public API of this repository: a Go
// implementation of MIDDLE — Mobility-Driven Device-Edge-Cloud Federated
// Learning (Zhang et al., ICPP 2023) — together with the hierarchical
// federated learning engine, synthetic learning tasks, mobility models
// and baselines its evaluation needs.
//
// The three-minute tour:
//
//	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, 1)
//	part := setup.Partition(1)
//	mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, 1)
//	sim := middle.NewSimulation(setup.Config(1, 0), setup.Factory,
//	        part, setup.Test, mob, middle.MIDDLE())
//	history := sim.Run()
//	fmt.Println(history.FinalAcc())
//
// Strategies implement the two policy hooks of the paper's Algorithm 1 —
// in-edge device selection and on-device model initialisation — so new
// policies plug into the same engine (see examples/custom_strategy).
package middle

import (
	"io"

	"middle/internal/checkpoint"
	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/experiments"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/optim"
	"middle/internal/robust"
	"middle/internal/simil"
	"middle/internal/tensor"
	"middle/internal/theory"
)

// --- simulation engine ------------------------------------------------

// Core engine types (see internal/hfl for full documentation).
type (
	// Config holds the Algorithm 1 hyper-parameters (K, I, T_c, …).
	Config = hfl.Config
	// OptimizerSpec configures the per-round local optimizer.
	OptimizerSpec = hfl.OptimizerSpec
	// Simulation is one device-edge-cloud federated training run.
	Simulation = hfl.Sim
	// History records a run's evaluation series.
	History = hfl.History
	// Strategy is the device-selection / model-initialisation policy.
	Strategy = hfl.Strategy
	// View is the read-only simulation state handed to strategies.
	View = hfl.View
	// ModelFactory builds instances of the task's architecture.
	ModelFactory = hfl.ModelFactory
)

// Schedule types for Config.LRSchedule.
type (
	// Schedule maps a time step to a learning rate.
	Schedule = optim.Schedule
	// ConstantSchedule always returns the same rate.
	ConstantSchedule = optim.ConstantSchedule
	// InverseSchedule implements the Theorem 1 decay η₀γ/(γ+t).
	InverseSchedule = optim.InverseSchedule
	// StepSchedule decays the rate by a factor at fixed intervals.
	StepSchedule = optim.StepSchedule
)

// Optimizer kinds for OptimizerSpec.
const (
	OptSGD         = hfl.OptSGD
	OptSGDMomentum = hfl.OptSGDMomentum
	OptAdam        = hfl.OptAdam
)

// NewSimulation constructs a federated training run; see hfl.New.
func NewSimulation(cfg Config, factory ModelFactory, part *Partition, test *Dataset, mob MobilityModel, strat Strategy) *Simulation {
	return hfl.New(cfg, factory, part, test, mob, strat)
}

// TopKByScore is the TOPK(·) helper of paper Eq. 12, exported for custom
// strategies.
func TopKByScore(candidates []int, score func(device int) float64, k int, rng *RNG) []int {
	return hfl.TopKByScore(candidates, score, k, rng)
}

// --- strategies ---------------------------------------------------------

// MIDDLE returns the paper's proposed strategy (Eq. 9 + Eq. 12).
func MIDDLE() Strategy { return core.NewMiddle() }

// OORT returns the statistical-utility selection baseline.
func OORT() Strategy { return core.NewOort() }

// FedMes returns the 50/50 on-device averaging baseline.
func FedMes() Strategy { return core.NewFedMes() }

// Greedy returns the keep-carried-model baseline.
func Greedy() Strategy { return core.NewGreedy() }

// Ensemble returns the OORT-selection + 50/50-averaging baseline.
func Ensemble() Strategy { return core.NewEnsemble() }

// General returns classical HFL (random selection, no aggregation).
func General() Strategy { return core.NewGeneral() }

// FixedAlpha returns the constant-coefficient aggregation strategy of
// the §5 analysis.
func FixedAlpha(alpha float64) Strategy { return core.NewFixedAlpha(alpha) }

// MiddleSelOnly returns the selection-only ablation of MIDDLE (Eq. 12
// without Eq. 9).
func MiddleSelOnly() Strategy { return core.NewMiddleSelOnly() }

// MiddleAggOnly returns the aggregation-only ablation of MIDDLE (Eq. 9
// without Eq. 12).
func MiddleAggOnly() Strategy { return core.NewMiddleAggOnly() }

// AblationSet returns MIDDLE, its two single-mechanism ablations and the
// no-mechanism control.
func AblationSet() []Strategy { return core.AblationSet() }

// StrategyByName resolves a strategy from its paper name
// ("MIDDLE", "OORT", "FedMes", "Greedy", "Ensemble", "General").
func StrategyByName(name string) (Strategy, error) { return core.ByName(name) }

// StrategyNames lists the registered strategy names.
func StrategyNames() []string { return core.Names() }

// EvaluationSet returns the five strategies of the paper's Figures 6–7.
func EvaluationSet() []Strategy { return core.EvaluationSet() }

// --- datasets and partitions ---------------------------------------------

// Dataset and partitioning types (see internal/data).
type (
	// Dataset is an in-memory labelled dataset.
	Dataset = data.Dataset
	// Partition assigns devices their Non-IID shards.
	Partition = data.Partition
	// TaskName identifies one of the four paper evaluation tasks.
	TaskName = data.TaskName
	// ImageProfile parameterises the synthetic image generator.
	ImageProfile = data.ImageProfile
	// SequenceProfile parameterises the synthetic 1-D signal generator.
	SequenceProfile = data.SequenceProfile
)

// The paper's four evaluation tasks.
const (
	TaskMNIST  = data.TaskMNIST
	TaskEMNIST = data.TaskEMNIST
	TaskCIFAR  = data.TaskCIFAR
	TaskSpeech = data.TaskSpeech
)

// AllTasks lists the evaluation tasks in paper order.
func AllTasks() []TaskName { return data.AllTasks() }

// GenerateTask produces train and test sets for a paper task.
func GenerateTask(task TaskName, trainN, testN int, seed int64) (train, test *Dataset) {
	return data.GenerateTask(task, trainN, testN, seed)
}

// PartitionMajorClass builds the §6.1.2 per-device major-class shards.
func PartitionMajorClass(d *Dataset, numDevices, perDevice int, majorFrac float64, seed int64) *Partition {
	return data.PartitionMajorClass(d, numDevices, perDevice, majorFrac, seed)
}

// PartitionMajorClassClustered builds major-class shards whose classes
// cluster by initial edge, modelling geographically correlated data.
func PartitionMajorClassClustered(d *Dataset, numDevices, perDevice int, majorFrac float64, edges int, seed int64) *Partition {
	return data.PartitionMajorClassClustered(d, numDevices, perDevice, majorFrac, edges, seed)
}

// PartitionIID builds IID shards (a non-paper control).
func PartitionIID(d *Dataset, numDevices, perDevice int, seed int64) *Partition {
	return data.PartitionIID(d, numDevices, perDevice, seed)
}

// --- mobility -------------------------------------------------------------

// Mobility types (see internal/mobility).
type (
	// MobilityModel produces device-to-edge membership per time step.
	MobilityModel = mobility.Model
	// Trace is a recorded membership sequence.
	Trace = mobility.Trace
)

// NewMarkovMobility builds the paper's P-parameterised mobility model
// (uniform destination over the other edges).
func NewMarkovMobility(edges, devices int, p float64, seed int64) MobilityModel {
	return mobility.NewMarkov(edges, devices, p, seed)
}

// NewMarkovRingMobility builds the locality-preserving variant: moving
// devices step to ring-adjacent edges only, as spatially continuous
// traces do.
func NewMarkovRingMobility(edges, devices int, p float64, seed int64) MobilityModel {
	return mobility.NewMarkovRing(edges, devices, p, seed)
}

// NewRandomWaypointMobility builds a planar random-waypoint model with a
// gridW×gridH grid of edge base stations.
func NewRandomWaypointMobility(gridW, gridH, devices int, speedMin, speedMax float64, pauseMax int, seed int64) MobilityModel {
	return mobility.NewRandomWaypoint(gridW, gridH, devices, speedMin, speedMax, pauseMax, seed)
}

// NewStaticMobility pins devices to fixed edges (P = 0).
func NewStaticMobility(edges, devices int) MobilityModel {
	return mobility.NewStatic(edges, devices)
}

// RecordTrace runs a mobility model and captures its membership trace.
func RecordTrace(m MobilityModel, steps int) *Trace { return mobility.Record(m, steps) }

// ReadTrace parses a trace file written by Trace.Write.
func ReadTrace(r io.Reader) (*Trace, error) { return mobility.ReadTrace(r) }

// --- models ----------------------------------------------------------------

// Model-builder types (see internal/nn).
type (
	// Network is a sequential feed-forward network.
	Network = nn.Network
	// CNN2Config describes the 2-conv/2-fc paper architecture.
	CNN2Config = nn.CNN2Config
	// CNN3Config describes the 3-conv/2-fc paper architecture.
	CNN3Config = nn.CNN3Config
	// SeqCNNConfig describes the 1-D CNN for the speech task.
	SeqCNNConfig = nn.SeqCNNConfig
	// MLPConfig describes a plain multi-layer perceptron.
	MLPConfig = nn.MLPConfig
	// RNG is the deterministic random stream used throughout.
	RNG = tensor.RNG
)

// NewRNG returns a deterministic random stream for the seed.
func NewRNG(seed int64) *RNG { return tensor.NewRNG(seed) }

// NewCNN2 builds the paper's MNIST/EMNIST architecture.
func NewCNN2(cfg CNN2Config, rng *RNG) *Network { return nn.NewCNN2(cfg, rng) }

// NewCNN3 builds the paper's CIFAR architecture.
func NewCNN3(cfg CNN3Config, rng *RNG) *Network { return nn.NewCNN3(cfg, rng) }

// NewSeqCNN builds the paper's speech architecture.
func NewSeqCNN(cfg SeqCNNConfig, rng *RNG) *Network { return nn.NewSeqCNN(cfg, rng) }

// NewMLP builds a plain MLP (logistic regression with no hidden layers).
func NewMLP(cfg MLPConfig, rng *RNG) *Network { return nn.NewMLP(cfg, rng) }

// --- similarity utility ------------------------------------------------

// SimilarityUtility is the paper's Eq. 8: max(cos(a, b), 0).
func SimilarityUtility(a, b []float64) float64 { return simil.Utility(a, b) }

// OnDeviceAggregate is the paper's Eq. 9 on-device model aggregation.
func OnDeviceAggregate(wEdge, wLocal []float64) (aggregated []float64, utility float64) {
	return simil.OnDeviceAggregate(wEdge, wLocal)
}

// OnDeviceAggregateInto is the allocation-free form of OnDeviceAggregate:
// it writes the aggregated model into dst (which may alias either input)
// and returns the utility used.
func OnDeviceAggregateInto(dst, wEdge, wLocal []float64) (utility float64) {
	return simil.OnDeviceAggregateInto(dst, wEdge, wLocal)
}

// SelectionScore is the Eq. 12 in-edge selection criterion −U(w_c, Δw_m).
func SelectionScore(wCloud, wLocal []float64) float64 {
	return simil.SelectionScore(wCloud, wLocal)
}

// --- experiments ------------------------------------------------------------

// Experiment types (see internal/experiments and internal/eval).
type (
	// TaskSetup bundles a paper task's datasets, model and topology.
	TaskSetup = experiments.TaskSetup
	// Scale selects Fast or Paper experiment sizing.
	Scale = experiments.Scale
	// Series is a named (x, y) sequence for plotting.
	Series = eval.Series
	// TTAResult is a strategy's time-to-target-accuracy outcome.
	TTAResult = eval.TTAResult
	// Fig1Result, Fig2Result, Fig6Result, Fig7Result, Fig8Result and
	// TheoryResult hold the reproduced paper figures.
	Fig1Result = experiments.Fig1Result
	// AblationResult isolates MIDDLE's two mechanisms.
	AblationResult = experiments.AblationResult
	// MobilityModelsResult compares mobility models at matched P.
	MobilityModelsResult = experiments.MobilityModelsResult
	// Fig6SeedsResult aggregates Figure 6 over repeated seeds.
	Fig6SeedsResult = experiments.Fig6SeedsResult
	// Band is a mean ± std series envelope.
	Band = eval.Band
	// TTAStats summarises time-to-accuracy over repeated runs.
	TTAStats     = eval.TTAStats
	Fig2Result   = experiments.Fig2Result
	Fig6Result   = experiments.Fig6Result
	Fig7Result   = experiments.Fig7Result
	Fig8Result   = experiments.Fig8Result
	TheoryResult = experiments.TheoryResult
)

// Experiment scales.
const (
	Fast  = experiments.Fast
	Paper = experiments.Paper
)

// NewTaskSetup builds the setup for one of the four paper tasks.
func NewTaskSetup(task TaskName, scale Scale, seed int64) *TaskSetup {
	return experiments.NewTaskSetup(task, scale, seed)
}

// NewScaleSetup builds a population-scale setup: the Fast corpus with
// the topology overridden and shared-window shards, for million-device
// runs whose memory is bounded by the cohort (see hfl.Config.LazyStore).
func NewScaleSetup(task TaskName, seed int64, devices, edges, k, tc int) *TaskSetup {
	return experiments.NewScaleSetup(task, seed, devices, edges, k, tc)
}

// RunFig1 reproduces the paper's Figure 1 motivation experiment.
func RunFig1(cfg experiments.Fig1Config) Fig1Result { return experiments.RunFig1(cfg) }

// RunFig2 reproduces the paper's Figure 2 motivation experiment.
func RunFig2(cfg experiments.Fig2Config) Fig2Result { return experiments.RunFig2(cfg) }

// RunFig6 reproduces one task of the paper's Figure 6 comparison.
func RunFig6(setup *TaskSetup, strategies []Strategy, p float64, seed int64, steps int) Fig6Result {
	return experiments.RunFig6(setup, strategies, p, seed, steps)
}

// RunFig6Seeds repeats the Figure 6 experiment across seeds and
// aggregates mean ± std bands, matching the paper's averaged-with-shades
// presentation.
func RunFig6Seeds(task TaskName, scale Scale, strategies []Strategy, p float64, seeds []int64, steps int) Fig6SeedsResult {
	return experiments.RunFig6Seeds(task, scale, strategies, p, seeds, steps)
}

// RunFig7 reproduces one task of the paper's Figure 7 mobility sweep.
func RunFig7(setup *TaskSetup, strategies []Strategy, ps []float64, seed int64, steps int) Fig7Result {
	return experiments.RunFig7(setup, strategies, ps, seed, steps)
}

// RunFig8 reproduces one task of the paper's Figure 8 T_c sweep.
func RunFig8(setup *TaskSetup, strategies []Strategy, tcs []int, p float64, seed int64, steps int) Fig8Result {
	return experiments.RunFig8(setup, strategies, tcs, p, seed, steps)
}

// RunTheory validates the §5 analysis on the convex objective.
func RunTheory(cfg experiments.TheoryConfig) TheoryResult { return experiments.RunTheory(cfg) }

// RunAblation isolates MIDDLE's two mechanisms on one task.
func RunAblation(setup *TaskSetup, p float64, seed int64, steps int) AblationResult {
	return experiments.RunAblation(setup, p, seed, steps)
}

// RunMobilityModels compares MIDDLE under Markov vs random-waypoint
// mobility at matched empirical P.
func RunMobilityModels(setup *TaskSetup, targetP float64, seed int64, steps int) MobilityModelsResult {
	return experiments.RunMobilityModels(setup, targetP, seed, steps)
}

// Fig1Config and friends re-export the experiment configurations.
type (
	// Fig1Config sizes the Figure 1 experiment.
	Fig1Config = experiments.Fig1Config
	// Fig2Config sizes the Figure 2 experiment.
	Fig2Config = experiments.Fig2Config
	// TheoryConfig sizes the §5 validation sweep.
	TheoryConfig = experiments.TheoryConfig
)

// TheoremBound evaluates the Theorem 1 right-hand side.
func TheoremBound(p theory.BoundParams) float64 { return theory.Bound(p) }

// BoundParams carries the Theorem 1 constants.
type BoundParams = theory.BoundParams

// --- robustness -----------------------------------------------------------

// Robustness types for Config.Aggregator / Config.Validate /
// Config.Adversary (see internal/robust).
type (
	// AggregatorKind selects the Eq. 6 / Eq. 7 combination rule.
	AggregatorKind = robust.AggregatorKind
	// ValidatorConfig screens received model updates before aggregation.
	ValidatorConfig = robust.ValidatorConfig
	// Adversary is the seeded Byzantine-device harness.
	Adversary = robust.Adversary
	// AdversaryMode picks the corruption adversarial devices apply.
	AdversaryMode = robust.AdversaryMode
)

// Aggregator kinds and adversary modes.
const (
	AggMean        = robust.AggMean
	AggMedian      = robust.AggMedian
	AggTrimmedMean = robust.AggTrimmedMean
	AggNormClip    = robust.AggNormClip

	AdvSignFlip  = robust.AdvSignFlip
	AdvNoise     = robust.AdvNoise
	AdvSameValue = robust.AdvSameValue
)

// ParseAggregator resolves an aggregator name ("mean", "median",
// "trimmed-mean", "norm-clip"); the empty string means mean.
func ParseAggregator(s string) (AggregatorKind, error) { return robust.ParseAggregator(s) }

// ParseAdversaryMode resolves an adversary mode name ("sign-flip",
// "noise", "same-value"); the empty string means sign-flip.
func ParseAdversaryMode(s string) (AdversaryMode, error) { return robust.ParseAdversaryMode(s) }

// --- checkpoints ------------------------------------------------------------

// SaveModel writes a named parameter vector in the repository's
// checksummed binary checkpoint format.
func SaveModel(w io.Writer, name string, vec []float64) error {
	return checkpoint.SaveModel(w, name, vec)
}

// LoadModel reads a checkpoint written by SaveModel.
func LoadModel(r io.Reader) (name string, vec []float64, err error) {
	return checkpoint.LoadModel(r)
}

// --- reporting -----------------------------------------------------------

// Smooth returns a centred moving average (paper-style curve smoothing).
func Smooth(y []float64, window int) []float64 { return eval.Smooth(y, window) }

// SpeedupTable renders the §6.2.1-style comparison table.
func SpeedupTable(results []TTAResult, refName string, target float64) string {
	return eval.SpeedupTable(results, refName, target)
}

// LineChart renders series as an ASCII chart.
func LineChart(title string, series []Series, width, height int) string {
	return eval.LineChart(title, series, width, height)
}

// BarChart renders grouped horizontal bars.
func BarChart(title string, labels, groups []string, values [][]float64, width int) string {
	return eval.BarChart(title, labels, groups, values, width)
}

// WriteSeriesCSV emits series as CSV.
func WriteSeriesCSV(w io.Writer, series []Series) error { return eval.WriteSeriesCSV(w, series) }

// ReadSeriesCSV parses WriteSeriesCSV output.
func ReadSeriesCSV(r io.Reader) ([]Series, error) { return eval.ReadSeriesCSV(r) }

// ReadHistoryCSV parses History.WriteCSV output (step, accuracy,
// communication, phase-time and learning-dynamics telemetry columns).
func ReadHistoryCSV(r io.Reader) (*History, error) { return hfl.ReadHistoryCSV(r) }
