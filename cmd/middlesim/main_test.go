package main

import (
	"testing"

	"middle"
)

func TestParseStrategiesDefault(t *testing.T) {
	got, err := parseStrategies("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Name() != "MIDDLE" {
		t.Fatalf("default strategies %v", got)
	}
}

func TestParseStrategiesExplicit(t *testing.T) {
	got, err := parseStrategies("OORT, Greedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "OORT" || got[1].Name() != "Greedy" {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseStrategies("OORT,nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestTranspose(t *testing.T) {
	in := [][]float64{{1, 2, 3}, {4, 5, 6}}
	out := transpose(in)
	if len(out) != 3 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	if out[2][1] != 6 || out[0][1] != 4 {
		t.Fatalf("content %v", out)
	}
	if transpose(nil) != nil {
		t.Fatal("transpose(nil)")
	}
}

func TestSmoothAll(t *testing.T) {
	in := []middle.Series{{Name: "a", X: []int{1, 2, 3}, Y: []float64{0, 3, 0}}}
	out := smoothAll(in, 3)
	if out[0].Y[1] != 1 {
		t.Fatalf("smoothed %v", out[0].Y)
	}
	// Window 1 returns input unchanged (same backing arrays acceptable).
	same := smoothAll(in, 1)
	if &same[0] != &in[0] {
		t.Fatal("window 1 should be a no-op")
	}
}
