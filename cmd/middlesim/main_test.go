package main

import (
	"bytes"
	"fmt"
	"testing"

	"middle"
	"middle/internal/obs"
)

func TestParseStrategiesDefault(t *testing.T) {
	got, err := parseStrategies("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Name() != "MIDDLE" {
		t.Fatalf("default strategies %v", got)
	}
}

func TestParseStrategiesExplicit(t *testing.T) {
	got, err := parseStrategies("OORT, Greedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "OORT" || got[1].Name() != "Greedy" {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseStrategies("OORT,nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestTranspose(t *testing.T) {
	in := [][]float64{{1, 2, 3}, {4, 5, 6}}
	out := transpose(in)
	if len(out) != 3 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	if out[2][1] != 6 || out[0][1] != 4 {
		t.Fatalf("content %v", out)
	}
	if transpose(nil) != nil {
		t.Fatal("transpose(nil)")
	}
}

func TestSmoothAll(t *testing.T) {
	in := []middle.Series{{Name: "a", X: []int{1, 2, 3}, Y: []float64{0, 3, 0}}}
	out := smoothAll(in, 3)
	if out[0].Y[1] != 1 {
		t.Fatalf("smoothed %v", out[0].Y)
	}
	// Window 1 returns input unchanged (same backing arrays acceptable).
	same := smoothAll(in, 1)
	if &same[0] != &in[0] {
		t.Fatal("window 1 should be a no-op")
	}
}

// TestTraceExportTwoEdgeThreeRound is the end-to-end acceptance check
// for -trace-out: a 2-edge, 3-round run's exported Chrome trace must
// parse as valid JSON and hold monotonic, correctly parented spans.
func TestTraceExportTwoEdgeThreeRound(t *testing.T) {
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, 1)
	setup.Edges, setup.Devices, setup.K = 2, 8, 2
	setup.Trace = obs.NewTrace(0)
	cfg := setup.Config(1, 3)
	cfg.EvalEvery = 1
	part := setup.Partition(1)
	mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, 12)
	strat, err := middle.StrategyByName("MIDDLE")
	if err != nil {
		t.Fatal(err)
	}
	sim := middle.NewSimulation(cfg, setup.Factory, part, setup.Test, mob, strat)
	sim.Run()

	// Export exactly what -trace-out writes, then re-parse it.
	var buf bytes.Buffer
	if err := setup.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if err := obs.ValidateTraceEvents(events); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}

	var rounds []obs.TraceEvent
	children := 0
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "round" {
			rounds = append(rounds, e)
		} else if parent, _ := e.Args["parent"].(string); parent != "" {
			children++
		}
	}
	if len(rounds) != 3 {
		t.Fatalf("round spans = %d, want 3", len(rounds))
	}
	var lastEnd int64 = -1
	for i, e := range rounds {
		if span, _ := e.Args["span"].(string); span != fmt.Sprintf("r%d", i+1) {
			t.Fatalf("round[%d] span %q", i, span)
		}
		if e.Ts < lastEnd {
			t.Fatalf("round[%d] starts at %d before previous ended at %d", i, e.Ts, lastEnd)
		}
		lastEnd = e.Ts + e.Dur
	}
	// Every round has at least select/train/edge_agg phase children.
	if children < 3*3 {
		t.Fatalf("phase spans = %d, want at least 9", children)
	}
}
