// Command middlesim reproduces the MIDDLE paper's experiments from the
// command line. Every figure of the evaluation has a runner:
//
//	middlesim -exp fig1                 # §2 motivation: Non-IID across edges
//	middlesim -exp fig2                 # §2 motivation: on-device aggregation
//	middlesim -exp fig6 -task mnist     # §6.2.1 time-to-accuracy + speedups
//	middlesim -exp fig7 -task mnist     # §6.2.2 global-mobility sweep
//	middlesim -exp fig8 -task mnist     # §6.2.3 edge-cloud interval sweep
//	middlesim -exp theory               # §5 Theorem 1 / Remark 1 validation
//	middlesim -exp run -task mnist -strategy MIDDLE   # one ad-hoc run
//	middlesim -exp scale -devices 1000000 -edges 1000 -resident-cap 4096
//	                                    # population-scale run, cohort-bounded memory
//
// -scale fast (default) finishes in seconds to minutes; -scale paper uses
// the paper's §6.1.2 topology and horizons. -csv DIR additionally writes
// the series data for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"middle"
	"middle/internal/data"
	"middle/internal/experiments"
	"middle/internal/obs"
	"middle/internal/obs/flight"
)

func main() {
	var (
		exp        = flag.String("exp", "fig6", "experiment: fig1|fig2|fig6|fig7|fig8|ablation|mobmodels|theory|run|scale|all")
		task       = flag.String("task", "mnist", "task: mnist|emnist|cifar10|speech|all")
		scaleFlag  = flag.String("scale", "fast", "scale: fast|paper")
		seed       = flag.Int64("seed", 1, "root random seed")
		p          = flag.Float64("p", 0.5, "global mobility P")
		steps      = flag.Int("steps", 0, "time-step horizon override (0 = scale default)")
		strategy   = flag.String("strategy", "MIDDLE", "strategy for -exp run")
		strategies = flag.String("strategies", "", "comma-separated strategy subset (default: paper set)")
		csvDir     = flag.String("csv", "", "directory to write CSV series into")
		smooth     = flag.Int("smooth", 1, "smoothing window for printed curves")
		seeds      = flag.Int("seeds", 1, "number of seeds to average (fig6 only)")
		saveModel  = flag.String("savemodel", "", "write the final global model checkpoint here (-exp run only)")
		maddr      = flag.String("metrics-addr", "", "serve /metrics, /status, /dashboard, /api/query and /debug/pprof on this address (empty = disabled)")
		results    = flag.String("results", "", "directory for the run summary JSON (empty = disabled)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of every round's phase spans here (load in Perfetto)")
		telemOut   = flag.String("telemetry-out", "", "write the per-round/per-eval learning-dynamics JSONL stream here")
		tsdbIntv   = flag.Duration("tsdb-interval", 0, "embedded time-series store scrape interval (0 = 1s when -metrics-addr or -slo is set, else disabled)")
		tsdbOut    = flag.String("tsdb-out", "", "write the tsdb's full history as JSON at exit (middleplot renders it)")
		sloRules   = flag.String("slo", "", "SLO rules to gate the run on (\"default\" or \"name: reducer(series[,window]) op threshold; ...\"); any breach exits non-zero")
		flightDir  = flag.String("flight-dir", "", "arm the flight recorder: postmortem bundles (profiles, tsdb dump, event ring, SLO state) land here on SLO breach, panic, SIGQUIT/SIGUSR1 or fatal exit")
		profIntv   = flag.Duration("profile-interval", 0, "continuous-profiler CPU window length; publishes profile_cpu_seconds_total{phase} / profile_alloc_bytes_total{phase} (0 = disabled)")

		// Simulated robustness knobs (-exp run only; defaults keep runs
		// bit-identical to the fault-free engine).
		quorum    = flag.Int("quorum", 0, "-exp run: minimum surviving responders per edge-step before Eq. 6 applies (0 = off)")
		dropRate  = flag.Float64("drop-rate", 0, "-exp run: probability a selected device's round-trip is lost")
		faultSeed = flag.Int64("fault-seed", 0, "-exp run: seed for the deterministic simulated drops")

		// Live migration (-exp run mirrors fednet's handover in the
		// simulator; -exp scale with -shards/-mux enables it on the
		// in-process deployment).
		liveMig     = flag.Bool("live-migration", false, "stateful handover on mobility steps: -exp run mirrors it in the simulator, -exp scale enables it on the fednet deployment")
		migFailRate = flag.Float64("migration-fail-rate", 0, "-exp run: probability a handover is lost in transit and the mover falls back to drop-and-reconnect (requires -live-migration)")

		// Self-healing membership (-exp run/scale mirror fednet's failure
		// detector + failover in the simulator; -exp scale with
		// -shards/-mux enables the real lease-based detector on the
		// in-process deployment).
		selfHeal       = flag.Bool("self-healing", false, "simulate edge crashes with automatic device re-homing: -exp run and the -exp scale simulator path mirror fednet's failover in the simulator")
		edgeFailRate   = flag.Float64("edge-fail-rate", 0, "per-edge per-step crash probability for -self-healing (0 = no crashes)")
		edgeRecoverFor = flag.Int("edge-recover-steps", 0, "steps a crashed edge stays down before rejoining (0 = T_c)")
		membershipOn   = flag.Bool("membership", false, "-exp scale deployment (-shards/-mux): enable the lease-based failure detector and membership epochs on the in-process fednet cluster")

		// Byzantine-robustness knobs (-exp run only; defaults keep runs
		// bit-identical to the plain weighted-mean engine).
		aggName    = flag.String("aggregator", "", "-exp run: Eq. 6/Eq. 7 combination rule: mean|median|trimmed-mean|norm-clip (default mean)")
		trimFrac   = flag.Float64("trim-frac", 0, "-exp run: per-side trim fraction for -aggregator trimmed-mean (0 = default 0.2)")
		normBound  = flag.Float64("norm-bound", 0, "-exp run: reject updates with norm > c*median(cohort norms); also rejects NaN/Inf models (0 = off)")
		advFrac    = flag.Float64("adversary-fraction", 0, "-exp run: fraction of devices acting Byzantine (0 = off)")
		advMode    = flag.String("adversary-mode", "", "-exp run: adversary corruption: sign-flip|noise|same-value (default sign-flip)")
		advScale   = flag.Float64("adversary-scale", 0, "-exp run: adversary corruption magnitude (0 = 1)")
		advSeed    = flag.Int64("adversary-seed", 0, "-exp run: seed for deterministic adversary membership and corruption")
		selNormCap = flag.Float64("sel-norm-cap", 0, "-exp run: exclude devices with update norm above this from Eq. 12 selection (0 = off)")

		// Population-scale knobs (-exp scale only). The simulator path
		// (default) uses the lazy device store, so memory is bounded by
		// the cohort and the resident cap rather than -devices; -shards
		// and -mux instead run the in-process networked deployment.
		devicesN = flag.Int("devices", 0, "-exp scale: device population size (0 = task default)")
		edgesN   = flag.Int("edges", 0, "-exp scale: edge server count (0 = task default)")
		kSel     = flag.Int("k", 0, "-exp scale: devices selected per edge per step (0 = task default)")
		tcN      = flag.Int("tc", 0, "-exp scale: cloud aggregation interval T_c in steps (0 = task default)")
		resCap   = flag.Int("resident-cap", 0, "-exp scale: bound on materialized device models in the lazy store; must fit the full cohort k×edges (0 = unbounded)")
		shardsN  = flag.Int("shards", 1, "-exp scale: cloud aggregator shards; >1 runs the in-process fednet deployment with streamed partial sums (mean aggregation only)")
		muxN     = flag.Int("mux", 1, "-exp scale: virtual devices per multiplexed client; >1 runs the in-process fednet deployment")
	)
	flag.Parse()

	scale := middle.Scale(*scaleFlag)
	if scale != middle.Fast && scale != middle.Paper {
		fatalf("unknown scale %q (fast|paper)", *scaleFlag)
	}
	strats, err := parseStrategies(*strategies)
	if err != nil {
		fatalf("%v", err)
	}

	// The emitter is created before the metrics bundle so SLO breach
	// events land in the same JSONL stream as rounds and evals. With the
	// flight recorder armed, the stream tees into its bounded ring so a
	// bundle always carries the most recent events, -telemetry-out or
	// not.
	var telemetryFile *os.File
	var eventRing *flight.EventRing
	if *flightDir != "" {
		eventRing = flight.NewEventRing(0)
	}
	if *telemOut != "" {
		f, err := os.Create(*telemOut)
		if err != nil {
			fatalf("creating %s: %v", *telemOut, err)
		}
		telemetryFile = f
		events = obs.NewEmitter(eventRing.Tee(f))
	} else if eventRing != nil {
		events = obs.NewEmitter(eventRing)
	}

	// The tsdb rides along whenever any observability is on: -slo needs
	// it, and with -metrics-addr it backs /api/query and /dashboard.
	interval := *tsdbIntv
	if interval <= 0 && (*maddr != "" || *sloRules != "" || *tsdbOut != "") {
		interval = time.Second
	}
	metrics, err = experiments.StartMetricsConfig(experiments.MetricsConfig{
		Addr:            *maddr,
		TSDBInterval:    interval,
		SLORules:        *sloRules,
		Events:          events,
		FlightDir:       *flightDir,
		ProfileInterval: *profIntv,
		FlightManifest:  obs.Manifest{Name: "middlesim-" + *exp, Command: os.Args, Extra: flagManifest()},
		FlightEvents:    eventRing,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if metrics != nil {
		if addr := metrics.Addr(); addr != "" {
			fmt.Printf("middlesim: metrics listening on %s\n", addr)
		}
		metrics.SetStatus("experiment", *exp)
		metrics.SetStatus("task", *task)
		metrics.SetStatus("scale", *scaleFlag)
		defer metrics.Close()
	}
	// Forensic hooks: a panic anywhere under main and a SIGQUIT/SIGUSR1
	// both produce a bundle. These defers run before metrics.Close, so
	// captures see the live tsdb/trace/SLO state.
	flightRec = metrics.Flight()
	defer flightRec.CapturePanic()
	defer flightRec.NotifySignals()()
	// The trace backing /debug/trace doubles as the -trace-out source;
	// with metrics disabled a standalone collector still feeds the file.
	trace = metrics.Trace()
	if *traceOut != "" && trace == nil {
		trace = obs.NewTrace(0)
	}

	switch *exp {
	case "fig1":
		runFig1(scale, *seed, *steps, *csvDir)
	case "fig2":
		runFig2(scale, *seed, *csvDir)
	case "fig6":
		forTasks(*task, func(t middle.TaskName) {
			if *seeds > 1 {
				runFig6Seeds(t, scale, strats, *p, *seed, *seeds, *steps, *csvDir, *smooth)
			} else {
				runFig6(t, scale, strats, *p, *seed, *steps, *csvDir, *smooth)
			}
		})
	case "fig7":
		forTasks(*task, func(t middle.TaskName) { runFig7(t, scale, strats, *seed, *steps) })
	case "fig8":
		forTasks(*task, func(t middle.TaskName) { runFig8(t, scale, *p, *seed, *steps, *csvDir, *smooth) })
	case "ablation":
		forTasks(*task, func(t middle.TaskName) { runAblation(t, scale, *p, *seed, *steps, *csvDir, *smooth) })
	case "mobmodels":
		forTasks(*task, func(t middle.TaskName) { runMobilityModels(t, scale, *p, *seed, *steps) })
	case "theory":
		runTheory(scale, *seed)
	case "run":
		agg, err := middle.ParseAggregator(*aggName)
		if err != nil {
			fatalf("%v", err)
		}
		mode, err := middle.ParseAdversaryMode(*advMode)
		if err != nil {
			fatalf("%v", err)
		}
		faults := simFaults{
			quorum: *quorum, dropRate: *dropRate, faultSeed: *faultSeed,
			agg: agg, trimFrac: *trimFrac, normBound: *normBound,
			adv: middle.Adversary{
				Fraction: *advFrac, Mode: mode, Scale: *advScale, Seed: *advSeed,
			},
			selNormCap:    *selNormCap,
			liveMigration: *liveMig, migrationFailRate: *migFailRate,
			selfHealing: *selfHeal, edgeFailRate: *edgeFailRate, edgeRecoverSteps: *edgeRecoverFor,
		}
		forTasks(*task, func(t middle.TaskName) {
			runSingle(t, scale, *strategy, *p, *seed, *steps, *saveModel, *csvDir, faults)
		})
	case "scale":
		forTasks(*task, func(t middle.TaskName) {
			runScale(t, scaleOpts{
				devices: *devicesN, edges: *edgesN, k: *kSel, tc: *tcN,
				residentCap: *resCap, shards: *shardsN, mux: *muxN,
				steps: *steps, p: *p, seed: *seed, strategy: *strategy,
				liveMigration: *liveMig, migrationFailRate: *migFailRate,
				selfHealing: *selfHeal, edgeFailRate: *edgeFailRate,
				edgeRecoverSteps: *edgeRecoverFor, membership: *membershipOn,
			})
		})
	case "all":
		runFig1(scale, *seed, *steps, *csvDir)
		runFig2(scale, *seed, *csvDir)
		forTasks(*task, func(t middle.TaskName) {
			runFig6(t, scale, strats, *p, *seed, *steps, *csvDir, *smooth)
			runFig7(t, scale, strats, *seed, *steps)
			runFig8(t, scale, *p, *seed, *steps, *csvDir, *smooth)
		})
		runTheory(scale, *seed)
	default:
		fatalf("unknown experiment %q", *exp)
	}

	// The SLO gate finalizes first (final scrape + eval) so any breach
	// event reaches the telemetry stream before it is closed below.
	breached := metrics.FinalizeSLO()
	if *tsdbOut != "" {
		if err := metrics.DumpTSDB(*tsdbOut); err != nil {
			fatalf("writing %s: %v", *tsdbOut, err)
		}
		fmt.Printf("middlesim: wrote tsdb dump %s\n", *tsdbOut)
	}

	if path, err := metrics.WriteSummary(*results, "middlesim-"+*exp, os.Args,
		map[string]any{"task": *task, "scale": *scaleFlag, "seed": *seed,
			"peak_rss_bytes": obs.PeakRSSBytes()}); err != nil {
		fatalf("writing summary: %v", err)
	} else if path != "" {
		fmt.Printf("middlesim: wrote summary %s\n", path)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("creating %s: %v", *traceOut, err)
		}
		if err := trace.WriteJSON(f); err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		fmt.Printf("middlesim: wrote trace %s (%d spans)\n", *traceOut, trace.Len())
	}
	if telemetryFile != nil {
		if err := events.Err(); err != nil {
			fatalf("writing %s: %v", *telemOut, err)
		}
		if err := telemetryFile.Close(); err != nil {
			fatalf("writing %s: %v", *telemOut, err)
		}
		fmt.Printf("middlesim: wrote telemetry %s\n", *telemOut)
	}
	if len(breached) > 0 {
		fmt.Fprintf(os.Stderr, "middlesim: SLO breach: %s\n", strings.Join(breached, ", "))
		os.Exit(3)
	}
}

// metrics, trace, events and flightRec are the process-wide
// observability handles (nil when their flags are unset); newSetup
// threads them into every experiment configuration, and fatalf uses the
// recorder so even flag-validation deaths after arming leave a bundle.
var (
	metrics   *experiments.Metrics
	trace     *obs.Trace
	events    *obs.Emitter
	flightRec *flight.Recorder
)

// flagManifest snapshots every flag's effective value for the bundle
// manifest, so a postmortem records exactly how the run was configured.
func flagManifest() map[string]any {
	m := map[string]any{}
	flag.VisitAll(func(f *flag.Flag) {
		m[f.Name] = f.Value.String()
	})
	return m
}

func newSetup(task middle.TaskName, scale middle.Scale, seed int64) *middle.TaskSetup {
	s := middle.NewTaskSetup(task, scale, seed)
	s.Obs = metrics.Registry()
	s.Events = events
	s.Trace = trace
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "middlesim: "+format+"\n", args...)
	_, _ = flightRec.Capture("fatal " + fmt.Sprintf(format, args...))
	os.Exit(1)
}

func parseStrategies(list string) ([]middle.Strategy, error) {
	if list == "" {
		return middle.EvaluationSet(), nil
	}
	var out []middle.Strategy
	for _, name := range strings.Split(list, ",") {
		s, err := middle.StrategyByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func forTasks(task string, fn func(middle.TaskName)) {
	if task == "all" {
		for _, t := range middle.AllTasks() {
			fn(t)
		}
		return
	}
	t := middle.TaskName(task)
	switch t {
	case data.TaskMNIST, data.TaskEMNIST, data.TaskCIFAR, data.TaskSpeech:
		fn(t)
	default:
		fatalf("unknown task %q (mnist|emnist|cifar10|speech|all)", task)
	}
}

func writeCSV(dir, name string, series []middle.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("creating %s: %v", dir, err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := middle.WriteSeriesCSV(f, series); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("  wrote %s\n", path)
}

func smoothAll(series []middle.Series, window int) []middle.Series {
	if window <= 1 {
		return series
	}
	out := make([]middle.Series, len(series))
	for i, s := range series {
		out[i] = middle.Series{Name: s.Name, X: s.X, Y: middle.Smooth(s.Y, window)}
	}
	return out
}

func runFig1(scale middle.Scale, seed int64, steps int, csvDir string) {
	fmt.Printf("=== Figure 1: Non-IID across edges starves minor classes (scale=%s) ===\n", scale)
	r := middle.RunFig1(middle.Fig1Config{Scale: scale, Seed: seed, Steps: steps})
	fmt.Print(middle.LineChart("accuracy over time steps", r.Series(), 70, 16))
	last := len(r.Steps) - 1
	fmt.Printf("final: global %.4f | edge1 %.4f | edge1 major %.4f | edge1 minor %.4f\n\n",
		r.GlobalAcc[last], r.EdgeAcc[last], r.MajorAcc[last], r.MinorAcc[last])
	writeCSV(csvDir, "fig1.csv", r.Series())
}

func runFig2(scale middle.Scale, seed int64, csvDir string) {
	fmt.Printf("=== Figure 2: on-device model aggregation case study (scale=%s) ===\n", scale)
	r := middle.RunFig2(middle.Fig2Config{Scale: scale, Seed: seed})
	classLabels := make([]string, r.Classes)
	for c := range classLabels {
		classLabels[c] = fmt.Sprintf("class %d", c)
	}
	fmt.Print(middle.BarChart("global (cloud) model per-class accuracy", classLabels, r.Methods,
		transpose(r.CloudPerClass), 30))
	fmt.Print(middle.BarChart("edge model 1 per-class accuracy", classLabels, r.Methods,
		transpose(r.EdgePerClass), 30))
	fmt.Printf("overall: cloud %s %.4f vs %s %.4f | edge1 %s %.4f vs %s %.4f\n",
		r.Methods[0], r.CloudOverall[0], r.Methods[1], r.CloudOverall[1],
		r.Methods[0], r.EdgeOverall[0], r.Methods[1], r.EdgeOverall[1])
	fmt.Printf("classes that moved across edges: %v\n\n", r.SwappedClasses)
	if csvDir != "" {
		var series []middle.Series
		for mi, m := range r.Methods {
			x := make([]int, r.Classes)
			for c := range x {
				x[c] = c
			}
			series = append(series,
				middle.Series{Name: "cloud-" + m, X: x, Y: r.CloudPerClass[mi]},
				middle.Series{Name: "edge1-" + m, X: x, Y: r.EdgePerClass[mi]})
		}
		writeCSV(csvDir, "fig2.csv", series)
	}
}

func transpose(in [][]float64) [][]float64 {
	if len(in) == 0 {
		return nil
	}
	out := make([][]float64, len(in[0]))
	for i := range out {
		out[i] = make([]float64, len(in))
		for j := range in {
			out[i][j] = in[j][i]
		}
	}
	return out
}

func runFig6(task middle.TaskName, scale middle.Scale, strats []middle.Strategy, p float64, seed int64, steps int, csvDir string, smooth int) {
	fmt.Printf("=== Figure 6 (%s): time-to-accuracy, P=%.2f (scale=%s) ===\n", task, p, scale)
	setup := newSetup(task, scale, seed)
	r := middle.RunFig6(setup, strats, p, seed, steps)
	fmt.Print(middle.LineChart("global accuracy over time steps", smoothAll(r.Curves, smooth), 70, 16))
	fmt.Println(r.SpeedupTable())
	writeCSV(csvDir, fmt.Sprintf("fig6_%s.csv", task), r.Curves)
}

func runFig6Seeds(task middle.TaskName, scale middle.Scale, strats []middle.Strategy, p float64, seed int64, nSeeds, steps int, csvDir string, smooth int) {
	fmt.Printf("=== Figure 6 (%s): time-to-accuracy averaged over %d seeds, P=%.2f (scale=%s) ===\n", task, nSeeds, p, scale)
	seedList := make([]int64, nSeeds)
	for i := range seedList {
		seedList[i] = seed + int64(i)*1000
	}
	r := middle.RunFig6Seeds(task, scale, strats, p, seedList, steps)
	fmt.Print(middle.LineChart("mean global accuracy over time steps", smoothAll(r.MeanCurves(), smooth), 70, 16))
	fmt.Println(r.Table())
	writeCSV(csvDir, fmt.Sprintf("fig6_%s_seeds.csv", task), r.MeanCurves())
}

func runFig7(task middle.TaskName, scale middle.Scale, strats []middle.Strategy, seed int64, steps int) {
	ps := []float64{0.1, 0.3, 0.5}
	fmt.Printf("=== Figure 7 (%s): final accuracy vs global mobility P (scale=%s) ===\n", task, scale)
	setup := newSetup(task, scale, seed)
	r := middle.RunFig7(setup, strats, ps, seed, steps)
	groups := make([]string, len(ps))
	for i, p := range ps {
		groups[i] = fmt.Sprintf("P=%.1f", p)
	}
	fmt.Print(middle.BarChart("final global accuracy", r.Strategies, groups, r.FinalAcc, 30))
	fmt.Println()
}

func runFig8(task middle.TaskName, scale middle.Scale, p float64, seed int64, steps int, csvDir string, smooth int) {
	tcs := []int{5, 10, 20}
	fmt.Printf("=== Figure 8 (%s): MIDDLE vs OORT across T_c (scale=%s) ===\n", task, scale)
	setup := newSetup(task, scale, seed)
	r := middle.RunFig8(setup, []middle.Strategy{middle.MIDDLE(), middle.OORT()}, tcs, p, seed, steps)
	fmt.Print(middle.LineChart("global accuracy over time steps", smoothAll(r.Curves, smooth), 70, 16))
	for _, c := range r.Curves {
		if len(c.Y) > 0 {
			fmt.Printf("  final %-16s %.4f\n", c.Name, c.Y[len(c.Y)-1])
		}
	}
	fmt.Println()
	writeCSV(csvDir, fmt.Sprintf("fig8_%s.csv", task), r.Curves)
}

func runAblation(task middle.TaskName, scale middle.Scale, p float64, seed int64, steps int, csvDir string, smooth int) {
	fmt.Printf("=== Ablation (%s): MIDDLE vs its two mechanisms in isolation (scale=%s) ===\n", task, scale)
	setup := newSetup(task, scale, seed)
	r := middle.RunAblation(setup, p, seed, steps)
	fmt.Print(middle.LineChart("global accuracy over time steps", smoothAll(r.Curves, smooth), 70, 16))
	fmt.Println(r.Table())
	writeCSV(csvDir, fmt.Sprintf("ablation_%s.csv", task), r.Curves)
}

func runMobilityModels(task middle.TaskName, scale middle.Scale, p float64, seed int64, steps int) {
	fmt.Printf("=== Mobility models (%s): MIDDLE under Markov vs random waypoint (scale=%s) ===\n", task, scale)
	setup := newSetup(task, scale, seed)
	r := middle.RunMobilityModels(setup, p, seed, steps)
	fmt.Print(middle.LineChart("global accuracy over time steps", r.Curves, 70, 14))
	for name, ep := range r.EmpiricalP {
		fmt.Printf("  %-10s empirical mobility %.3f\n", name, ep)
	}
	fmt.Println()
}

func runTheory(scale middle.Scale, seed int64) {
	fmt.Printf("=== Theorem 1 / Remark 1: convex validation (scale=%s) ===\n", scale)
	r := middle.RunTheory(middle.TheoryConfig{Scale: scale, Seed: seed})
	fmt.Println("P      bound(α=0.5)   " + header(r.Alphas))
	for i, p := range r.Ps {
		fmt.Printf("%-6.2f %-14.4g", p, r.Bound[i])
		for j := range r.Alphas {
			fmt.Printf(" gap=%-9.3g div=%-9.3g", r.Gap[i][j], r.Divergence[i][j])
		}
		fmt.Println()
	}
	fmt.Println("(bound decreases monotonically in P — Remark 1; div is the start-point divergence the proof bounds)")
	fmt.Println()
}

func header(alphas []float64) string {
	parts := make([]string, len(alphas))
	for i, a := range alphas {
		parts[i] = fmt.Sprintf("[α=%.1f: gap, divergence]", a)
	}
	return strings.Join(parts, " ")
}

// simFaults carries the -exp run robustness flags into the hfl config.
type simFaults struct {
	quorum    int
	dropRate  float64
	faultSeed int64

	agg        middle.AggregatorKind
	trimFrac   float64
	normBound  float64
	adv        middle.Adversary
	selNormCap float64

	liveMigration     bool
	migrationFailRate float64

	selfHealing      bool
	edgeFailRate     float64
	edgeRecoverSteps int
}

func runSingle(task middle.TaskName, scale middle.Scale, strategy string, p float64, seed int64, steps int, saveModel, csvDir string, faults simFaults) {
	strat, err := middle.StrategyByName(strategy)
	if err != nil {
		fatalf("%v", err)
	}
	setup := newSetup(task, scale, seed)
	part := setup.Partition(seed)
	mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, p, seed+11)
	cfg := setup.Config(seed, steps)
	cfg.Quorum = faults.quorum
	cfg.DropRate = faults.dropRate
	cfg.FaultSeed = faults.faultSeed
	cfg.Aggregator = faults.agg
	cfg.TrimFrac = faults.trimFrac
	if faults.normBound > 0 {
		cfg.Validate = middle.ValidatorConfig{Enabled: true, NormBound: faults.normBound}
	}
	cfg.Adversary = faults.adv
	cfg.SelectionNormCap = faults.selNormCap
	cfg.LiveMigration = faults.liveMigration
	cfg.MigrationFailRate = faults.migrationFailRate
	cfg.SelfHealing = faults.selfHealing
	cfg.EdgeFailRate = faults.edgeFailRate
	cfg.EdgeRecoverSteps = faults.edgeRecoverSteps
	sim := middle.NewSimulation(cfg, setup.Factory, part, setup.Test, mob, strat)
	fmt.Printf("=== %s on %s (scale=%s, P=%.2f) ===\n", strategy, task, scale, p)
	h := sim.Run()
	fmt.Print(middle.LineChart("global accuracy", []middle.Series{{Name: strategy, X: h.Steps, Y: h.GlobalAcc}}, 70, 14))
	if step, ok := h.TimeToAccuracy(setup.TargetAcc); ok {
		fmt.Printf("reached target %.2f at time step %d\n", setup.TargetAcc, step)
	} else {
		fmt.Printf("target %.2f not reached; final accuracy %.4f\n", setup.TargetAcc, h.FinalAcc())
	}
	fmt.Printf("empirical mobility: %.3f\n\n", h.EmpiricalMobility)
	if faults.dropRate > 0 || faults.quorum > 0 {
		fmt.Printf("injected drops: %d, quorum misses: %d\n\n", sim.FaultDrops(), sim.QuorumMisses())
	}
	if faults.liveMigration {
		ok, fb := sim.Migrations()
		fmt.Printf("migrations: %d ok, %d fallbacks\n\n", ok, fb)
	}
	if faults.selfHealing {
		fmt.Printf("self-healing: %d edge failovers, %d devices re-homed, membership epoch %d\n\n",
			sim.Failovers(), sim.RehomedDevices(), sim.MembershipEpoch())
	}
	if faults.adv.Fraction > 0 || faults.normBound > 0 {
		rc := sim.RejectedUpdates()
		fmt.Printf("adversary corruptions: %d; rejected updates: %d (%d nonfinite, %d norm; rate %.4f)\n\n",
			sim.AdversaryCorruptions(), rc.Total(), rc.NonFinite, rc.Norm, sim.RejectionRate())
	}
	if csvDir != "" {
		// The full per-run history (accuracy, communication, phase-time
		// and telemetry columns) — middleplot renders every column group.
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", csvDir, err)
		}
		path := filepath.Join(csvDir, fmt.Sprintf("run_%s_%s_history.csv", task, strategy))
		f, err := os.Create(path)
		if err != nil {
			fatalf("creating %s: %v", path, err)
		}
		if err := h.WriteCSV(f); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	if saveModel != "" {
		f, err := os.Create(saveModel)
		if err != nil {
			fatalf("creating %s: %v", saveModel, err)
		}
		defer f.Close()
		name := fmt.Sprintf("%s-%s-P%.2f-seed%d", task, strategy, p, seed)
		if err := middle.SaveModel(f, name, sim.CloudModel()); err != nil {
			fatalf("saving model: %v", err)
		}
		fmt.Printf("saved global model to %s\n", saveModel)
	}
}
