package main

import (
	"fmt"

	"middle"
	"middle/internal/experiments"
	"middle/internal/fednet"
	"middle/internal/obs"
)

// maxClusterDevices bounds the -exp scale deployment path: -shards/-mux
// spawn real loopback sockets and goroutines, so population-scale runs
// belong to the simulator path (lazy store), not the cluster path.
const maxClusterDevices = 4096

// scaleOpts carries the resolved -exp scale topology. Zero devices /
// edges / k / tc mean "task default" until runScale resolves them.
type scaleOpts struct {
	devices, edges, k, tc int
	residentCap           int
	shards, mux           int
	steps                 int
	p                     float64
	seed                  int64
	strategy              string
	liveMigration         bool
	migrationFailRate     float64
	selfHealing           bool
	edgeFailRate          float64
	edgeRecoverSteps      int
	membership            bool
}

// deployment reports whether the options select the in-process fednet
// cluster (sharded cloud and/or multiplexed devices) instead of the
// lazy-store simulator.
func (o scaleOpts) deployment() bool { return o.shards > 1 || o.mux > 1 }

// validateScale rejects nonsensical flag combinations with an
// actionable message. It expects resolved (non-zero) topology values.
func validateScale(o scaleOpts) error {
	if o.devices < 1 || o.edges < 1 || o.k < 1 || o.tc < 1 {
		return fmt.Errorf("scale topology must be positive: devices=%d edges=%d k=%d tc=%d", o.devices, o.edges, o.k, o.tc)
	}
	if o.edges > o.devices {
		return fmt.Errorf("%d edges exceed %d devices", o.edges, o.devices)
	}
	if o.shards < 1 || o.mux < 1 {
		return fmt.Errorf("-shards and -mux must be ≥ 1, got %d and %d", o.shards, o.mux)
	}
	if o.residentCap < 0 {
		return fmt.Errorf("-resident-cap must be ≥ 0, got %d", o.residentCap)
	}
	if cohort := o.k * o.edges; o.residentCap > 0 && o.residentCap < cohort {
		return fmt.Errorf("-resident-cap %d is smaller than the cohort k×edges = %d; a full cohort must stay materialized", o.residentCap, cohort)
	}
	if o.shards > o.edges {
		return fmt.Errorf("-shards %d exceeds %d edges; shards partition edges", o.shards, o.edges)
	}
	if o.deployment() {
		if o.devices > maxClusterDevices {
			return fmt.Errorf("-shards/-mux run a real in-process deployment; cap -devices at %d (got %d) or drop them to use the lazy-store simulator", maxClusterDevices, o.devices)
		}
		if o.residentCap > 0 {
			return fmt.Errorf("-resident-cap applies to the simulator path and cannot combine with -shards/-mux")
		}
		if o.selfHealing {
			return fmt.Errorf("-self-healing is the simulator mirror; on the -shards/-mux deployment use -membership (the lease-based detector) instead")
		}
	} else if o.membership {
		return fmt.Errorf("-membership enables the fednet lease detector and requires the deployment path (-shards/-mux); use -self-healing for the simulator")
	}
	return nil
}

// runScale is the -exp scale entry point: a population-scale run whose
// per-round cost is bounded by the cohort, not the fleet. Without
// -shards/-mux it runs the hfl simulator with the lazy device store;
// with them it runs the in-process fednet deployment (sharded cloud,
// multiplexed device clients). Either way it reports the process's peak
// RSS so scripts can assert the memory ceiling.
func runScale(task middle.TaskName, o scaleOpts) {
	setup := experiments.NewScaleSetup(task, o.seed, o.devices, o.edges, o.k, o.tc)
	setup.Obs = metrics.Registry()
	setup.Events = events
	setup.Trace = trace
	o.devices, o.edges, o.k, o.tc = setup.Devices, setup.Edges, setup.K, setup.Tc
	if err := validateScale(o); err != nil {
		fatalf("%v", err)
	}
	if o.steps <= 0 {
		o.steps = 2 * o.tc // two cloud syncs by default
	}
	if o.deployment() {
		runScaleDeployment(setup, o)
		return
	}

	strat, err := middle.StrategyByName(o.strategy)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("=== Scale-out (%s): %d devices / %d edges, K=%d, Tc=%d, resident-cap=%d ===\n",
		task, o.devices, o.edges, o.k, o.tc, o.residentCap)
	cfg := setup.Config(o.seed, o.steps)
	cfg.LazyStore = true
	cfg.ResidentCap = o.residentCap
	cfg.LiveMigration = o.liveMigration
	cfg.MigrationFailRate = o.migrationFailRate
	cfg.SelfHealing = o.selfHealing
	cfg.EdgeFailRate = o.edgeFailRate
	cfg.EdgeRecoverSteps = o.edgeRecoverSteps
	part := setup.Partition(o.seed)
	mob := setup.Mobility(o.p, o.seed+11)
	sim := middle.NewSimulation(cfg, setup.Factory, part, setup.Test, mob, strat)
	h := sim.Run()
	fmt.Printf("final accuracy %.4f after %d steps (empirical mobility %.3f)\n",
		h.FinalAcc(), o.steps, h.EmpiricalMobility)
	if o.liveMigration {
		ok, fb := sim.Migrations()
		fmt.Printf("migrations: %d ok, %d fallbacks\n", ok, fb)
	}
	if o.selfHealing {
		fmt.Printf("self-healing: %d edge failovers, %d devices re-homed, membership epoch %d\n",
			sim.Failovers(), sim.RehomedDevices(), sim.MembershipEpoch())
	}
	fmt.Printf("middlesim: peak_rss_mib=%d peak_resident_models=%d\n",
		obs.PeakRSSBytes()>>20, h.PeakResidentModels)
}

// runScaleDeployment runs the fednet cluster variant of -exp scale:
// real loopback sockets, a K-sharded cloud and N-virtual-device
// multiplexers, at a necessarily smaller population.
func runScaleDeployment(setup *experiments.TaskSetup, o scaleOpts) {
	strat, err := middle.StrategyByName(o.strategy)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("=== Scale-out deployment (%s): %d devices / %d edges, shards=%d, mux=%d ===\n",
		setup.Task, o.devices, o.edges, o.shards, o.mux)
	part := setup.Partition(o.seed)
	mob := setup.Mobility(o.p, o.seed+11)
	c, err := fednet.StartCluster(fednet.ClusterConfig{
		Rounds: o.steps, K: o.k, LocalSteps: setup.I, BatchSize: setup.BatchSize,
		CloudInterval: o.tc, Strategy: strat, Partition: part,
		Factory: setup.Factory, Optimizer: setup.Optimizer, Mobility: mob,
		Seed: o.seed, Shards: o.shards, Mux: o.mux,
		LiveMigration: o.liveMigration,
		Membership:    fednet.MembershipConfig{Enabled: o.membership},
		Obs:           metrics.Registry(), Trace: trace,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := c.Wait(); err != nil {
		fatalf("deployment: %v", err)
	}
	rounds := 0
	for _, r := range c.DeviceRounds() {
		rounds += r
	}
	stranded := c.Stranded()
	fmt.Printf("deployment complete: %d rounds, %d device trainings, %d failed moves, %d stranded devices\n",
		o.steps, rounds, c.MoveErrors(), len(stranded))
	if o.liveMigration {
		mok, mfb, mrej := c.Migrations()
		fmt.Printf("migrations: %d ok, %d fallbacks, %d rejected\n", mok, mfb, mrej)
	}
	if o.membership {
		fmt.Printf("membership: %d edge failovers, %d devices re-homed, epoch %d\n",
			c.Failovers(), c.Rehomed(), c.MembershipEpoch())
	}
	fmt.Printf("middlesim: peak_rss_mib=%d peak_resident_models=0\n", obs.PeakRSSBytes()>>20)
}
