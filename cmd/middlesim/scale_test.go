package main

import (
	"strings"
	"testing"
)

func TestValidateScale(t *testing.T) {
	ok := scaleOpts{devices: 1000, edges: 10, k: 2, tc: 5, shards: 1, mux: 1}
	if err := validateScale(ok); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cap := ok
	cap.residentCap = 20 // == cohort: allowed
	if err := validateScale(cap); err != nil {
		t.Fatalf("cap == cohort rejected: %v", err)
	}

	for name, tc := range map[string]struct {
		mutate func(*scaleOpts)
		want   string
	}{
		"cap below cohort":    {func(o *scaleOpts) { o.residentCap = 19 }, "cohort"},
		"more edges":          {func(o *scaleOpts) { o.edges = 2000 }, "exceed"},
		"zero k":              {func(o *scaleOpts) { o.k = 0 }, "positive"},
		"zero shards":         {func(o *scaleOpts) { o.shards = 0 }, "≥ 1"},
		"shards over edges":   {func(o *scaleOpts) { o.shards = 11 }, "partition edges"},
		"huge deployment":     {func(o *scaleOpts) { o.mux = 4; o.devices = 100000 }, "cap -devices"},
		"cap with deployment": {func(o *scaleOpts) { o.shards = 2; o.residentCap = 100 }, "cannot combine"},
	} {
		o := ok
		tc.mutate(&o)
		err := validateScale(o)
		if err == nil {
			t.Errorf("%s: accepted %+v", name, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
