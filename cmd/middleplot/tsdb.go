package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"middle"
)

// isTSDBDump sniffs a tsdb dump file: Store.WriteDump always leads
// with {"tsdb" (the version tag is the first struct field).
func isTSDBDump(raw []byte) bool {
	return bytes.HasPrefix(bytes.TrimLeft(raw, " \t\r\n"), []byte(`{"tsdb"`))
}

// tsdbDump mirrors tsdb.Store.WriteDump's document shape. Points are
// [t,v] pairs; v may be null (non-finite), decoded as a nil entry.
type tsdbDump struct {
	TSDB       int   `json:"tsdb"`
	IntervalMS int64 `json:"interval_ms"`
	Series     []struct {
		Name   string       `json:"name"`
		Points [][]*float64 `json:"points"`
	} `json:"series"`
}

// defaultGroups are the standard chart groups rendered when -series is
// unset: one chart per group, series matched by glob.
var defaultGroups = []struct {
	title    string
	patterns []string
}{
	{"accuracy", []string{"hfl_global_accuracy"}},
	{"round duration p99 (s)", []string{"sim_round_seconds_p99", "fednet_rpc_seconds_p99*"}},
	{"faults and rejects", []string{"*quorum_misses_total", "hfl_fault_drops_total", "robust_rejected_updates_total*"}},
	{"mobility", []string{"sim_moves_total", "hfl_adversary_corruptions_total"}},
	{"memory (bytes)", []string{"process_peak_rss_bytes", "process_heap_inuse_bytes"}},
	{"series governance", []string{"obs_series", "tsdb_series", "obs_dropped_series_total*"}},
}

func plotTSDB(raw []byte, path, title, seriesGlobs string, width, height, smooth int) {
	var dump tsdbDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: parsing %s: %v\n", path, err)
		os.Exit(1)
	}
	toSeries := func(patterns []string) []middle.Series {
		var out []middle.Series
		for _, sd := range dump.Series {
			matched := false
			for _, p := range patterns {
				if globMatch(p, sd.Name) {
					matched = true
					break
				}
			}
			if !matched || len(sd.Points) == 0 {
				continue
			}
			s := middle.Series{Name: sd.Name}
			t0 := int64(0)
			if len(sd.Points) > 0 && len(sd.Points[0]) == 2 && sd.Points[0][0] != nil {
				t0 = int64(*sd.Points[0][0])
			}
			for _, pt := range sd.Points {
				if len(pt) != 2 || pt[0] == nil || pt[1] == nil {
					continue
				}
				// X is seconds since the series' first sample.
				s.X = append(s.X, int((int64(*pt[0])-t0)/1000))
				s.Y = append(s.Y, *pt[1])
			}
			if len(s.X) > 0 {
				out = append(out, s)
			}
		}
		return out
	}
	plotted := 0
	if seriesGlobs != "" {
		patterns := strings.Split(seriesGlobs, ",")
		for i := range patterns {
			patterns[i] = strings.TrimSpace(patterns[i])
		}
		if sel := toSeries(patterns); len(sel) > 0 {
			fmt.Print(middle.LineChart(title+" (seconds since start)", smoothAll(sel, smooth), width, height))
			plotted++
		}
	} else {
		for _, g := range defaultGroups {
			if sel := toSeries(g.patterns); len(sel) > 0 {
				fmt.Print(middle.LineChart(title+": "+g.title+" (seconds since start)", smoothAll(sel, smooth), width, height))
				plotted++
			}
		}
	}
	if plotted == 0 {
		fmt.Fprintf(os.Stderr, "middleplot: no matching series in %s (%d stored; try -series '*')\n", path, len(dump.Series))
		os.Exit(1)
	}
}

// globMatch matches name against a pattern with '*' wildcards.
func globMatch(pattern, name string) bool {
	if !strings.Contains(pattern, "*") {
		return pattern == name
	}
	parts := strings.Split(pattern, "*")
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}
