// Command middleplot renders experiment data files as ASCII line charts
// in the terminal. It reads every format the toolchain writes: series
// CSVs (middlesim -csv), per-run history CSVs (History.WriteCSV), and
// tsdb dumps (middlesim -tsdb-out), auto-detected from the leading
// bytes. History files additionally get phase-time, communication and
// learning-dynamics telemetry charts; tsdb dumps chart a default set of
// metric groups, or exactly the series matching -series globs.
//
//	middleplot -in results/fig6_mnist.csv -smooth 5
//	middleplot -in results/run_mnist.history.csv
//	middleplot -in results/run.tsdb.json -series 'hfl_*'
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"middle"
)

func main() {
	var (
		in       = flag.String("in", "", "series CSV, history CSV, or tsdb dump file (required)")
		width    = flag.Int("width", 78, "chart width")
		height   = flag.Int("height", 18, "chart height")
		smooth   = flag.Int("smooth", 1, "smoothing window")
		title    = flag.String("title", "", "chart title (default: file name)")
		selGlobs = flag.String("series", "", "tsdb dumps: comma-separated series name globs to chart (default: standard groups)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "middleplot: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: %v\n", err)
		os.Exit(1)
	}
	t := *title
	if t == "" {
		t = *in
	}
	if isTSDBDump(raw) {
		plotTSDB(raw, *in, t, *selGlobs, *width, *height, *smooth)
		return
	}
	if isHistoryCSV(raw) {
		plotHistory(raw, *in, t, *width, *height, *smooth)
		return
	}
	series, err := middle.ReadSeriesCSV(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: parsing %s: %v\n", *in, err)
		os.Exit(1)
	}
	fmt.Print(middle.LineChart(t, smoothAll(series, *smooth), *width, *height))
}

// isHistoryCSV sniffs the header line: History.WriteCSV always leads
// with "step,global_acc", which no series CSV does (those lead with a
// "step" column per series pair).
func isHistoryCSV(raw []byte) bool {
	return bytes.HasPrefix(raw, []byte("step,global_acc"))
}

func plotHistory(raw []byte, path, title string, width, height, smooth int) {
	h, err := middle.ReadHistoryCSV(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: parsing %s: %v\n", path, err)
		os.Exit(1)
	}
	mk := func(name string, y []float64) middle.Series {
		return middle.Series{Name: name, X: h.Steps, Y: y}
	}
	nonzero := func(ys ...[]float64) bool {
		for _, y := range ys {
			for _, v := range y {
				if v != 0 {
					return true
				}
			}
		}
		return false
	}
	fmt.Print(middle.LineChart(title+": accuracy",
		smoothAll([]middle.Series{mk("global_acc", h.GlobalAcc)}, smooth), width, height))
	if nonzero(h.PhaseSelect, h.PhaseTrain, h.PhaseEdgeAgg, h.PhaseCloudSync, h.PhaseEval) {
		fmt.Print(middle.LineChart(title+": cumulative phase seconds", []middle.Series{
			mk("select", h.PhaseSelect), mk("train", h.PhaseTrain),
			mk("edge_agg", h.PhaseEdgeAgg), mk("cloud_sync", h.PhaseCloudSync),
			mk("eval", h.PhaseEval),
		}, width, height))
	}
	if nonzero(toFloat(h.CommDeviceEdge), toFloat(h.CommEdgeCloud)) {
		fmt.Print(middle.LineChart(title+": cumulative model transfers", []middle.Series{
			mk("device_edge", toFloat(h.CommDeviceEdge)),
			mk("edge_cloud", toFloat(h.CommEdgeCloud)),
		}, width, height))
	}
	if nonzero(h.SelUtilMean, h.UpdNormMean, h.BlendUtilMean) {
		fmt.Print(middle.LineChart(title+": learning dynamics (running means)", []middle.Series{
			mk("sel_util", h.SelUtilMean), mk("upd_norm", h.UpdNormMean),
			mk("blend_util", h.BlendUtilMean),
		}, width, height))
	}
	if nonzero(h.EdgeDivMean, h.EdgeDivMax, h.FairnessJain) {
		fmt.Print(middle.LineChart(title+": divergence and fairness", []middle.Series{
			mk("edge_div_mean", h.EdgeDivMean), mk("edge_div_max", h.EdgeDivMax),
			mk("fairness_jain", h.FairnessJain),
		}, width, height))
	}
}

func toFloat(in []int64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

func smoothAll(series []middle.Series, window int) []middle.Series {
	if window <= 1 {
		return series
	}
	for i := range series {
		series[i].Y = middle.Smooth(series[i].Y, window)
	}
	return series
}
