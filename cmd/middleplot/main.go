// Command middleplot renders experiment CSV files (as written by
// middlesim -csv) as ASCII line charts in the terminal.
//
//	middleplot -in results/fig6_mnist.csv -smooth 5
package main

import (
	"flag"
	"fmt"
	"os"

	"middle"
)

func main() {
	var (
		in     = flag.String("in", "", "series CSV file (required)")
		width  = flag.Int("width", 78, "chart width")
		height = flag.Int("height", 18, "chart height")
		smooth = flag.Int("smooth", 1, "smoothing window")
		title  = flag.String("title", "", "chart title (default: file name)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "middleplot: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	series, err := middle.ReadSeriesCSV(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "middleplot: parsing %s: %v\n", *in, err)
		os.Exit(1)
	}
	if *smooth > 1 {
		for i := range series {
			series[i].Y = middle.Smooth(series[i].Y, *smooth)
		}
	}
	t := *title
	if t == "" {
		t = *in
	}
	fmt.Print(middle.LineChart(t, series, *width, *height))
}
