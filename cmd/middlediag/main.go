// Command middlediag reads a postmortem bundle written by the flight
// recorder (internal/obs/flight) and prints a root-cause report: which
// SLO rules fired and when, where the CPU and allocations went by
// phase, which series moved the most, the fault/retry/reject counters,
// and a goroutine-leak heuristic over the captured stacks.
//
//	middlediag flight/                       # latest bundle under a flight dir
//	middlediag flight/bundle-20260808T...    # a specific bundle
//	middlediag -top 10 flight/
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"middle/internal/obs/flight"
)

func main() {
	top := flag.Int("top", 5, "entries per ranked section")
	leak := flag.Int("leak-threshold", 20, "goroutine-group size flagged as a possible leak")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: middlediag [-top N] <bundle-dir | flight-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir, err := resolveBundle(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("middlediag: %s\n", dir)
	reportManifest(dir)
	reportSLO(dir)
	reportCPU(dir, *top)
	reportProfileSeries(dir, *top)
	reportHotSeries(dir, *top)
	reportFaults(dir)
	reportMigrations(dir)
	reportMembership(dir)
	reportGoroutines(dir, *top, *leak)
}

// resolveBundle accepts either a bundle directory or a flight directory
// containing bundle-* subdirectories (latest wins).
func resolveBundle(path string) (string, error) {
	if _, err := os.Stat(filepath.Join(path, "manifest.json")); err == nil {
		return path, nil
	}
	bundles, err := flight.Bundles(path)
	if err != nil {
		return "", fmt.Errorf("reading %s: %w", path, err)
	}
	if len(bundles) == 0 {
		return "", fmt.Errorf("%s holds no completed bundles", path)
	}
	return bundles[len(bundles)-1], nil
}

// readJSON decodes one bundle file into out; missing files are not an
// error (bundles omit files whose source was not wired).
func readJSON(dir, file string, out any) bool {
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

func section(name string) { fmt.Printf("\n== %s ==\n", name) }

func reportManifest(dir string) {
	var m struct {
		Reason     string `json:"reason"`
		CapturedAt string `json:"captured_at"`
		Manifest   struct {
			Name    string   `json:"name"`
			Command []string `json:"command"`
			Build   struct {
				GoVersion   string `json:"go_version"`
				VCSRevision string `json:"vcs_revision"`
				VCSTime     string `json:"vcs_time"`
			} `json:"build"`
		} `json:"manifest"`
		Errors []string `json:"errors"`
	}
	if !readJSON(dir, "manifest.json", &m) {
		fmt.Println("capture: no manifest.json (incomplete bundle?)")
		return
	}
	section("capture")
	fmt.Printf("reason:   %s\n", m.Reason)
	fmt.Printf("captured: %s\n", m.CapturedAt)
	if m.Manifest.Name != "" {
		fmt.Printf("run:      %s\n", m.Manifest.Name)
	}
	if b := m.Manifest.Build; b.GoVersion != "" || b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf("build:    %s %s %s\n", b.GoVersion, rev, b.VCSTime)
	}
	for _, e := range m.Errors {
		fmt.Printf("capture error: %s\n", e)
	}
}

func reportSLO(dir string) {
	var s struct {
		Alerts []struct {
			Name   string  `json:"name"`
			State  string  `json:"state"`
			Value  float64 `json:"value"`
			Detail string  `json:"detail"`
			Since  int64   `json:"since"`
		} `json:"alerts"`
		Breached []string `json:"breached"`
	}
	if !readJSON(dir, "slo.json", &s) {
		return
	}
	section("slo")
	if len(s.Breached) == 0 {
		fmt.Println("no rules breached")
	} else {
		fmt.Printf("breached: %s\n", strings.Join(s.Breached, ", "))
	}
	for _, a := range s.Alerts {
		if a.State == "ok" {
			continue
		}
		line := fmt.Sprintf("%-8s %s", a.State, a.Name)
		if a.Detail != "" {
			line += "  (" + a.Detail + ")"
		}
		if ts := fmtUnixMS(a.Since); ts != "" {
			line += "  since " + ts
		}
		fmt.Println(line)
	}
	// Breach moments from the event ring, the "when" to slo.json's "what".
	for _, ev := range readEvents(dir) {
		if ev["event"] == "slo_breach" {
			fmt.Printf("breach:   rule=%v at %v\n", ev["rule"], ev["ts"])
		}
	}
}

// readEvents parses the bundle's JSONL event ring (nil when absent).
func readEvents(dir string) []map[string]any {
	f, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if json.Unmarshal(sc.Bytes(), &ev) == nil {
			out = append(out, ev)
		}
	}
	return out
}

func reportCPU(dir string, top int) {
	data, err := os.ReadFile(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return
	}
	prof, err := flight.ParseCPUProfile(data)
	if err != nil {
		section("cpu by phase")
		fmt.Printf("cpu.pprof unparsable: %v\n", err)
		return
	}
	section("cpu by phase (bundle cpu.pprof window)")
	if prof.TotalNanos == 0 {
		fmt.Println("profile window captured no samples (idle process)")
		return
	}
	type pc struct {
		phase string
		nanos int64
	}
	var phases []pc
	for p, ns := range prof.Phases {
		phases = append(phases, pc{p, ns})
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].nanos > phases[j].nanos })
	for i, p := range phases {
		if i >= top {
			break
		}
		fmt.Printf("%-16s %8.3fs  %5.1f%%\n", p.phase,
			float64(p.nanos)/1e9, 100*float64(p.nanos)/float64(prof.TotalNanos))
	}
	fmt.Printf("%-16s %8.3fs\n", "total", float64(prof.TotalNanos)/1e9)
}

// tsdbDump mirrors the {"tsdb":1,...} dump document.
type tsdbDump struct {
	Series []struct {
		Name   string       `json:"name"`
		Points [][2]float64 `json:"points"`
	} `json:"series"`
}

func loadDump(dir string) (tsdbDump, bool) {
	var d tsdbDump
	ok := readJSON(dir, "tsdb.json", &d)
	return d, ok && len(d.Series) > 0
}

// lastValue returns a series' most recent non-NaN point.
func lastValue(points [][2]float64) (float64, bool) {
	for i := len(points) - 1; i >= 0; i-- {
		if !math.IsNaN(points[i][1]) {
			return points[i][1], true
		}
	}
	return 0, false
}

// reportProfileSeries ranks the continuous profiler's cumulative
// attribution series — the whole-run view complementing the bundle's
// single CPU window.
func reportProfileSeries(dir string, top int) {
	d, ok := loadDump(dir)
	if !ok {
		return
	}
	type row struct {
		phase string
		v     float64
	}
	collect := func(family string) []row {
		var rows []row
		prefix := family + `{phase="`
		for _, s := range d.Series {
			if !strings.HasPrefix(s.Name, prefix) {
				continue
			}
			phase := strings.TrimSuffix(strings.TrimPrefix(s.Name, prefix), `"}`)
			if v, ok := lastValue(s.Points); ok && v > 0 {
				rows = append(rows, row{phase, v})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
		if len(rows) > top {
			rows = rows[:top]
		}
		return rows
	}
	cpu := collect("profile_cpu_seconds_total")
	alloc := collect("profile_alloc_bytes_total")
	if len(cpu) == 0 && len(alloc) == 0 {
		return
	}
	section("profiler attribution (cumulative over run)")
	for _, r := range cpu {
		fmt.Printf("cpu   %-16s %10.3fs\n", r.phase, r.v)
	}
	for _, r := range alloc {
		fmt.Printf("alloc %-16s %10s\n", r.phase, fmtBytes(r.v))
	}
}

// reportHotSeries ranks series by spread (max-min over the retained
// window) — the cheapest "what moved" signal in a dump.
func reportHotSeries(dir string, top int) {
	d, ok := loadDump(dir)
	if !ok {
		return
	}
	type row struct {
		name   string
		spread float64
	}
	var rows []row
	for _, s := range d.Series {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range s.Points {
			if math.IsNaN(p[1]) {
				continue
			}
			lo, hi = math.Min(lo, p[1]), math.Max(hi, p[1])
		}
		if hi > lo && hi-lo > 0 {
			rows = append(rows, row{s.Name, hi - lo})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].spread > rows[j].spread })
	if len(rows) == 0 {
		return
	}
	section("hottest series by spread")
	for i, r := range rows {
		if i >= top {
			break
		}
		fmt.Printf("%-48s %g\n", r.name, r.spread)
	}
}

// faultPattern matches the counters that explain degraded runs:
// retries, timeouts, drops, corrupt frames, quorum misses, straggler
// exclusions, robust-aggregation rejections and non-finite steps.
var faultPattern = regexp.MustCompile(`^(fednet|hfl|robust)_.*(retries|timeouts|corrupt|drops|reconnects|quorum|stragglers|rejected|trimmed|clipped|nonfinite)`)

func reportFaults(dir string) {
	d, ok := loadDump(dir)
	if !ok {
		return
	}
	type row struct {
		name string
		v    float64
	}
	var rows []row
	for _, s := range d.Series {
		if !faultPattern.MatchString(s.Name) {
			continue
		}
		if v, ok := lastValue(s.Points); ok && v > 0 {
			rows = append(rows, row{s.Name, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	section("fault / retry / reject counters")
	if len(rows) == 0 {
		fmt.Println("all zero — a clean run")
		return
	}
	for _, r := range rows {
		fmt.Printf("%-48s %g\n", r.name, r.v)
	}
}

// migrationPattern matches the live-migration telemetry: handover
// outcome counters (fednet and the hfl sim mirror), the stranded-device
// gauge, the move-retry counter and the synthesized handover latency
// quantiles.
var migrationPattern = regexp.MustCompile(`^(fednet|hfl)_(migrations_total|stranded_devices|move_retries_total|handover_seconds)`)

// reportMigrations summarizes the handover story of a run: how many
// migrations completed vs fell back or were rejected, whether any
// device ended up stranded, and how long transfers took. Quiet when
// live migration never ran — the section only appears once a migration
// series exists.
func reportMigrations(dir string) {
	d, ok := loadDump(dir)
	if !ok {
		return
	}
	type row struct {
		name string
		v    float64
	}
	var rows []row
	for _, s := range d.Series {
		if !migrationPattern.MatchString(s.Name) {
			continue
		}
		if v, ok := lastValue(s.Points); ok {
			rows = append(rows, row{s.Name, v})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	section("live migration")
	for _, r := range rows {
		fmt.Printf("%-48s %g\n", r.name, r.v)
	}
}

// membershipPattern matches the self-healing telemetry: the membership
// epoch gauge, failover/re-home counters (fednet and the hfl sim
// mirror), lease-miss and stale-frame fencing counters, the
// stranded-device gauge and the synthesized failover latency quantiles.
var membershipPattern = regexp.MustCompile(`^(fednet|hfl)_(membership_epoch|edge_failovers_total|rehomed_devices_total|lease_misses_total|stale_frames_total|stranded_devices|failover_seconds)`)

// reportMembership summarizes the self-healing story of a run: how many
// edges died and were failed over, how many devices were re-homed vs
// left stranded, where the membership epoch ended up, and how much
// stale traffic the epoch fence rejected. Quiet when the failure
// detector never ran — the section only appears once a membership
// series exists.
func reportMembership(dir string) {
	d, ok := loadDump(dir)
	if !ok {
		return
	}
	type row struct {
		name string
		v    float64
	}
	var rows []row
	for _, s := range d.Series {
		if !membershipPattern.MatchString(s.Name) {
			continue
		}
		if v, ok := lastValue(s.Points); ok {
			rows = append(rows, row{s.Name, v})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	section("membership / self-healing")
	stranded := 0.0
	for _, r := range rows {
		fmt.Printf("%-48s %g\n", r.name, r.v)
		if r.name == "fednet_stranded_devices" || r.name == "hfl_stranded_devices" {
			stranded = r.v
		}
	}
	if stranded > 0 {
		fmt.Printf("WARNING: %g devices ended the run stranded (no reachable edge)\n", stranded)
	}
}

// reportGoroutines groups the captured stacks by creation site (top
// frame when the root goroutine has none) and flags unusually large
// groups — the standard leak signature is many goroutines parked at
// one site.
func reportGoroutines(dir string, top, leakThreshold int) {
	data, err := os.ReadFile(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return
	}
	type group struct {
		key   string
		count int
	}
	counts := map[string]int{}
	total := 0
	for _, block := range strings.Split(string(data), "\n\n") {
		lines := strings.Split(strings.TrimSpace(block), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		total++
		state := ""
		if i := strings.Index(lines[0], "["); i >= 0 {
			state = strings.TrimSuffix(lines[0][i+1:], "]:")
			// Strip wait durations ("chan receive, 5 minutes").
			if j := strings.Index(state, ","); j >= 0 {
				state = state[:j]
			}
		}
		site := ""
		for _, l := range lines[1:] {
			if strings.HasPrefix(l, "created by ") {
				site = strings.TrimPrefix(l, "created by ")
				if j := strings.Index(site, " in goroutine"); j >= 0 {
					site = site[:j]
				}
				break
			}
		}
		if site == "" && len(lines) > 1 {
			site = strings.TrimSuffix(lines[1], "(...)")
			if j := strings.Index(site, "("); j >= 0 {
				site = site[:j]
			}
		}
		counts[fmt.Sprintf("%s [%s]", site, state)]++
	}
	var groups []group
	for k, c := range counts {
		groups = append(groups, group{k, c})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].count > groups[j].count })
	section("goroutines")
	fmt.Printf("total: %d\n", total)
	for i, g := range groups {
		if i >= top {
			break
		}
		flag := ""
		if g.count >= leakThreshold {
			flag = "  << possible leak"
		}
		fmt.Printf("%4d  %s%s\n", g.count, g.key, flag)
	}
}

func fmtUnixMS(ms int64) string {
	if ms == 0 {
		return ""
	}
	return time.UnixMilli(ms).UTC().Format(time.RFC3339)
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "middlediag: "+format+"\n", args...)
	os.Exit(1)
}
