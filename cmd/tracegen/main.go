// Command tracegen generates, inspects and converts device-mobility
// traces — the role the ONE simulator plays for the paper's evaluation.
//
//	tracegen -model markov -edges 10 -devices 100 -p 0.5 -steps 1500 -out trace.txt
//	tracegen -model waypoint -gridw 5 -gridh 2 -devices 100 -steps 1500 -out trace.txt
//	tracegen -inspect trace.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"middle"
	"middle/internal/obs"
)

func main() {
	var (
		model    = flag.String("model", "markov", "mobility model: markov|waypoint")
		edges    = flag.Int("edges", 10, "number of edges (markov)")
		gridW    = flag.Int("gridw", 5, "grid width in edges (waypoint)")
		gridH    = flag.Int("gridh", 2, "grid height in edges (waypoint)")
		devices  = flag.Int("devices", 100, "number of devices")
		p        = flag.Float64("p", 0.5, "global mobility P (markov)")
		speedMin = flag.Float64("speedmin", 0.02, "min speed per step (waypoint)")
		speedMax = flag.Float64("speedmax", 0.08, "max speed per step (waypoint)")
		pause    = flag.Int("pause", 2, "max pause steps at waypoints (waypoint)")
		steps    = flag.Int("steps", 1500, "trace length in time steps")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		inspect  = flag.String("inspect", "", "inspect an existing trace file instead of generating")
		manifest = flag.String("manifest", "", "also write a reproducibility manifest (seed, flags, build revision) to this JSON file")
	)
	flag.Parse()

	if *inspect != "" {
		inspectTrace(*inspect)
		return
	}

	var mob middle.MobilityModel
	switch *model {
	case "markov":
		mob = middle.NewMarkovMobility(*edges, *devices, *p, *seed)
	case "waypoint":
		mob = middle.NewRandomWaypointMobility(*gridW, *gridH, *devices, *speedMin, *speedMax, *pause, *seed)
	default:
		fatalf("unknown model %q (markov|waypoint)", *model)
	}
	tr := middle.RecordTrace(mob, *steps)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fatalf("writing trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d steps, %d devices, %d edges, empirical mobility %.4f\n",
		tr.Steps(), tr.NumDevices(), tr.Edges, tr.EmpiricalMobility())
	if *manifest != "" {
		writeManifest(*manifest, *out, *seed, tr.EmpiricalMobility())
	}
}

// writeManifest records everything needed to regenerate the trace: the
// full flag set (defaults included), the seed, the trace destination,
// the generation time and the binary's VCS revision as embedded by the
// Go toolchain (empty outside a VCS build).
func writeManifest(path, out string, seed int64, empiricalP float64) {
	flags := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	m := map[string]any{
		"command":     os.Args,
		"flags":       flags,
		"seed":        seed,
		"out":         out,
		"empirical_p": empiricalP,
		"generated":   time.Now().Format(time.RFC3339),
	}
	for k, v := range obs.ReadBuild().Map() {
		m[k] = v
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fatalf("encoding manifest: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("writing manifest %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote manifest %s\n", path)
}

func inspectTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	tr, err := middle.ReadTrace(f)
	if err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	fmt.Printf("trace: %d steps, %d devices, %d edges\n", tr.Steps(), tr.NumDevices(), tr.Edges)
	fmt.Printf("empirical mobility P: %.4f\n", tr.EmpiricalMobility())
	fmt.Printf("mean edge sojourn: %.2f steps\n", tr.MeanSojourn())
	fmt.Println("edge occupancy:")
	for e, share := range tr.OccupancyShares() {
		fmt.Printf("  edge %2d: %5.2f%%\n", e, 100*share)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
