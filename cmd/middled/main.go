// Command middled runs one component of a networked MIDDLE deployment —
// cloud coordinator, edge server, or a fleet of device clients — so the
// full device-edge-cloud system can be spread over real machines. All
// components must agree on -task and -seed so device shards and model
// architectures line up.
//
//	middled -role cloud -addr :7000 -edges 2 -rounds 50 -tc 10
//	middled -role edge  -id 0 -cloud host:7000 -addr :7100 -strategy MIDDLE
//	middled -role edge  -id 1 -cloud host:7000 -addr :7101 -strategy MIDDLE
//	middled -role devices -edges host:7100,host:7101 -from 0 -to 9 -p 0.5
//
// The -role devices process hosts a contiguous range of device ids and
// migrates them between the listed edges with a ring-Markov mobility of
// probability -p at a fixed cadence. For scale-out, -shards (cloud)
// streams per-shard partial sums instead of gathering every edge model,
// and -mux N (devices) serves N virtual devices per client connection.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"middle"
	"middle/internal/data"
	"middle/internal/experiments"
	"middle/internal/fednet"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/tensor"
)

func main() {
	var (
		role      = flag.String("role", "", "cloud|edge|devices")
		task      = flag.String("task", "mnist", "task: mnist|emnist|cifar10|speech")
		scale     = flag.String("scale", "fast", "fast|paper")
		seed      = flag.Int64("seed", 1, "shared root seed")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address (cloud, edge)")
		edgesN    = flag.Int("edges", 2, "edge count (cloud role)")
		rounds    = flag.Int("rounds", 50, "rounds to coordinate (cloud role)")
		tc        = flag.Int("tc", 10, "cloud interval T_c (cloud role)")
		id        = flag.Int("id", 0, "edge id (edge role)")
		cloud     = flag.String("cloud", "", "cloud address (edge role)")
		strategy  = flag.String("strategy", "MIDDLE", "strategy (edge role)")
		k         = flag.Int("k", 5, "devices selected per round (edge role)")
		edgeList  = flag.String("edgeaddrs", "", "comma-separated edge addresses (devices role)")
		from      = flag.Int("from", 0, "first device id (devices role)")
		to        = flag.Int("to", 9, "last device id inclusive (devices role)")
		p         = flag.Float64("p", 0.5, "device mobility probability (devices role)")
		moveMs    = flag.Int("movems", 2000, "milliseconds between mobility steps (devices role)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /status, /dashboard, /api/query and /debug/pprof on this address (empty = disabled)")
		results   = flag.String("results", "", "directory for the run summary JSON (empty = disabled)")
		traceOut  = flag.String("trace-out", "", "write this process's Chrome trace-event JSON here on exit (merge per-role files in Perfetto)")
		tsdbIntv  = flag.Duration("tsdb-interval", 0, "embedded time-series store scrape interval (0 = 1s when -metrics-addr or -slo is set, else disabled)")
		sloRules  = flag.String("slo", "", "SLO rules to gate the run on (\"default\" or rule list); cloud role exits non-zero after Run if any rule ever fired")
		flightDir = flag.String("flight-dir", "", "arm the flight recorder: postmortem bundles (profiles, tsdb dump, event ring, SLO state) land here on SLO breach, panic, SIGQUIT/SIGUSR1 or fatal exit")
		profIntv  = flag.Duration("profile-interval", 0, "continuous-profiler CPU window length; publishes profile_cpu_seconds_total{phase} / profile_alloc_bytes_total{phase} (0 = disabled)")

		// Robustness knobs (see DESIGN.md "Fault model").
		ckptDir   = flag.String("checkpoint-dir", "", "cloud/edge roles: persist model + round state here and resume from the latest valid checkpoint")
		ckptEvery = flag.Int("checkpoint-every", 1, "cloud/edge roles: checkpoint every Nth sync (cloud) or round (edge)")
		minEdges  = flag.Int("min-edges", 0, "cloud role: degrade gracefully down to this many live edges (0 = any edge loss is fatal)")
		quorum    = flag.Int("quorum", 0, "edge role: minimum responders per round before aggregating (0 = 1)")
		roundDL   = flag.Duration("round-deadline", 0, "edge role: per-round training deadline; stragglers past it are excluded (0 = network timeout)")
		faultSeed = flag.Int64("fault-seed", 0, "devices role: seed for deterministic fault injection")
		dropRate  = flag.Float64("drop-rate", 0, "devices role: per-message drop probability on device→edge writes")
		delayRate = flag.Float64("delay-rate", 0, "devices role: per-message delay probability on device→edge writes")
		corrRate  = flag.Float64("corrupt-rate", 0, "devices role: per-message corruption probability on device→edge writes (CRC-detected)")

		// Byzantine robustness (see DESIGN.md "Threat model & robust
		// aggregation").
		aggName    = flag.String("aggregator", "", "cloud/edge roles: aggregation rule: mean|median|trimmed-mean|norm-clip (default mean)")
		trimFrac   = flag.Float64("trim-frac", 0, "cloud/edge roles: per-side trim fraction for -aggregator trimmed-mean (0 = default 0.2)")
		normBound  = flag.Float64("norm-bound", 0, "cloud/edge roles: reject updates with norm > c*median(cohort norms); also rejects NaN/Inf models (0 = off)")
		selNormCap = flag.Float64("sel-norm-cap", 0, "edge role: exclude devices with update norm above this from Eq. 12 selection (0 = off)")
		poisonRate = flag.Float64("poison-rate", 0, "devices role: per-message probability the model payload is negated with a valid CRC")
		nanRate    = flag.Float64("nan-rate", 0, "devices role: per-message probability the model payload is replaced by NaNs with a valid CRC")

		// Scale-out knobs (see DESIGN.md "Scale architecture").
		shards = flag.Int("shards", 1, "cloud role: partition edges across this many aggregator shards with streamed partial sums (mean aggregation only)")
		mux    = flag.Int("mux", 1, "devices role: virtual devices per multiplexed client connection (1 = one dedicated client per device)")

		// Live migration (see DESIGN.md "Live migration & handover").
		liveMig = flag.Bool("live-migration", false, "edge role: accept and push stateful edge-to-edge handovers; devices role: notify the source edge before each move so it pushes the mover's state")

		// Self-healing membership (see DESIGN.md "Fault model").
		membership = flag.Bool("membership", false, "cloud role: self-healing membership mode — edges hold leases, missed leases trigger failover, restarted edges rejoin under a bumped epoch")
		leaseIntv  = flag.Duration("lease-interval", 0, "cloud role: membership lease interval (0 = 500ms)")
		roundIntv  = flag.Duration("round-interval", 0, "cloud role: minimum wall-clock duration per round, pacing the schedule against device mobility and attachment (0 = free-running)")
		devLease   = flag.Int("device-lease-rounds", 0, "edge role: evict dedicated devices not seen for this many rounds (0 = off)")
		failover   = flag.Bool("failover", false, "devices role: when an edge dies, re-home its devices to the surviving -edgeaddrs entries carrying their local state")
	)
	flag.Parse()

	interval := *tsdbIntv
	if interval <= 0 && (*metrics != "" || *sloRules != "") {
		interval = time.Second
	}
	// Events go to stderr as before; with the flight recorder armed they
	// additionally tee into its bounded ring so bundles carry the most
	// recent events.
	var eventRing *flight.EventRing
	if *flightDir != "" {
		eventRing = flight.NewEventRing(0)
	}
	flagExtra := map[string]any{}
	flag.VisitAll(func(f *flag.Flag) { flagExtra[f.Name] = f.Value.String() })
	m, err := experiments.StartMetricsConfig(experiments.MetricsConfig{
		Addr:            *metrics,
		TSDBInterval:    interval,
		SLORules:        *sloRules,
		Events:          obs.NewEmitter(eventRing.Tee(os.Stderr)),
		FlightDir:       *flightDir,
		ProfileInterval: *profIntv,
		FlightManifest:  obs.Manifest{Name: "middled-" + *role, Command: os.Args, Extra: flagExtra},
		FlightEvents:    eventRing,
	})
	if err != nil {
		fatal(err)
	}
	if m != nil {
		if addr := m.Addr(); addr != "" {
			log.Printf("middled: metrics listening on %s", addr)
		}
		m.SetStatus("role", *role)
		m.SetStatus("task", *task)
		m.SetStatus("scale", *scale)
		defer m.Close()
	}
	// Forensic hooks: panics under main, SIGQUIT (bundle + exit 2) and
	// SIGUSR1 (bundle, keep running) all leave a postmortem. These defers
	// run before m.Close, so captures see live state.
	flightRec = m.Flight()
	defer flightRec.CapturePanic()
	defer flightRec.NotifySignals()()
	// The trace backing /debug/trace doubles as the -trace-out source;
	// with metrics disabled a standalone collector still feeds the file.
	trace := m.Trace()
	if *traceOut != "" && trace == nil {
		trace = obs.NewTrace(0)
	}
	defer writeTrace(trace, *traceOut)

	agg, err := middle.ParseAggregator(*aggName)
	if err != nil {
		fatal(err)
	}
	validate := middle.ValidatorConfig{}
	if *normBound > 0 {
		validate = middle.ValidatorConfig{Enabled: true, NormBound: *normBound}
	}

	setup := experiments.NewTaskSetup(data.TaskName(*task), experiments.Scale(*scale), *seed)
	setup.Obs = m.Registry()
	switch *role {
	case "cloud":
		runCloud(setup, m, trace, *results, *addr, *edgesN, *rounds, *tc, *seed, *ckptDir, *ckptEvery, *minEdges, *shards, agg, *trimFrac, validate, *membership, *leaseIntv, *roundIntv)
	case "edge":
		runEdge(setup, m, trace, *id, *cloud, *addr, *strategy, *k, *seed, *quorum, *roundDL,
			agg, *trimFrac, validate, *selNormCap, *ckptDir, *ckptEvery, *liveMig, *devLease)
	case "devices":
		faults := fednet.NewFaultInjector(fednet.FaultConfig{
			Seed: *faultSeed,
			DeviceEdge: fednet.FaultRates{
				Drop: *dropRate, Delay: *delayRate, Corrupt: *corrRate,
				Poison: *poisonRate, NaNUpdate: *nanRate,
			},
			Obs: m.Registry(),
		})
		runDevices(setup, m, trace, *edgeList, *from, *to, *p, *moveMs, *seed, *mux, faults, *liveMig, *failover)
	default:
		fmt.Fprintln(os.Stderr, "middled: -role must be cloud, edge or devices")
		flag.Usage()
		os.Exit(2)
	}

	// The coordinating role gates its exit code on the run's SLOs: any
	// rule that fired at any point fails the process even if it later
	// recovered, so CI catches transient regressions.
	if *role == "cloud" {
		if breached := m.FinalizeSLO(); len(breached) > 0 {
			writeTrace(trace, *traceOut)
			m.Close()
			fatalf("middled: SLO breach: %s", strings.Join(breached, ", "))
		}
	}
}

// flightRec is the process flight recorder (nil unless -flight-dir).
// fatal and fatalf capture a postmortem bundle before exiting, so fatal
// paths leave forensics behind; both are nil-safe.
var flightRec *flight.Recorder

func fatal(v ...any) {
	_, _ = flightRec.Capture("fatal " + fmt.Sprint(v...))
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	_, _ = flightRec.Capture("fatal " + fmt.Sprintf(format, v...))
	log.Fatalf(format, v...)
}

// writeTrace dumps the collected spans on clean exit (no-op when
// -trace-out is unset). Each role records only its own spans; parent
// references may point at spans in another role's file.
func writeTrace(trace *obs.Trace, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("middled: creating %s: %v", path, err)
		return
	}
	defer f.Close()
	if err := trace.WriteJSON(f); err != nil {
		log.Printf("middled: writing %s: %v", path, err)
		return
	}
	log.Printf("middled: wrote trace %s (%d spans)", path, trace.Len())
}

// writeSummary records the run manifest + metrics snapshot (no-op when
// metrics or -results are disabled).
func writeSummary(m *experiments.Metrics, dir, name string, extra map[string]any) {
	path, err := m.WriteSummary(dir, name, os.Args, extra)
	if err != nil {
		log.Printf("middled: writing summary: %v", err)
		return
	}
	if path != "" {
		log.Printf("middled: wrote summary %s", path)
	}
}

// onSignal runs fn once when the process receives SIGTERM or SIGINT —
// the graceful-shutdown hook each role wires to its drain path.
func onSignal(fn func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-ch
		log.Printf("middled: received %v — shutting down gracefully", s)
		fn()
	}()
}

// evalAccuracy measures a model vector's accuracy over the task's whole
// test set (the cloud role's end-of-run quality line).
func evalAccuracy(setup *experiments.TaskSetup, seed int64, vec []float64) float64 {
	net := setup.Factory(tensor.Split(seed, 77))
	net.SetParamVector(vec)
	test := setup.Test
	if test == nil || test.Len() == 0 {
		return 0
	}
	correct := 0.0
	for lo := 0; lo < test.Len(); lo += 256 {
		hi := lo + 256
		if hi > test.Len() {
			hi = test.Len()
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		x, y := test.Batch(idx)
		correct += nn.Accuracy(net.Forward(x, false), y) * float64(len(y))
	}
	return correct / float64(test.Len())
}

func runCloud(setup *experiments.TaskSetup, m *experiments.Metrics, trace *obs.Trace, results, addr string, edges, rounds, tc int, seed int64, ckptDir string, ckptEvery, minEdges, shards int, agg middle.AggregatorKind, trimFrac float64, validate middle.ValidatorConfig, membership bool, leaseIntv, roundIntv time.Duration) {
	init := setup.Factory(tensor.Split(seed, 0)).ParamVector()
	c, err := fednet.NewCloud(fednet.CloudConfig{
		Addr: addr, Edges: edges, Rounds: rounds, CloudInterval: tc,
		InitModel: init, MinEdges: minEdges, Shards: shards,
		CheckpointDir: ckptDir, CheckpointEvery: ckptEvery,
		Aggregator: agg, TrimFrac: trimFrac, Validate: validate,
		Membership:    fednet.MembershipConfig{Enabled: membership, LeaseInterval: leaseIntv},
		RoundInterval: roundIntv,
		Logf:          log.Printf, Obs: m.Registry(), Trace: trace,
	})
	if err != nil {
		fatal(err)
	}
	// Graceful shutdown: finish the in-flight round, write a final
	// checkpoint, then let the deferred trace/tsdb flushes run.
	onSignal(c.Stop)
	log.Printf("middled: cloud listening on %s (%d edges, %d rounds, Tc=%d, shards=%d, membership=%v)", c.Addr(), edges, rounds, tc, shards, membership)
	if err := c.Run(); err != nil {
		fatal(err)
	}
	acc := evalAccuracy(setup, seed, c.GlobalModel())
	log.Printf("middled: training complete (final accuracy %.4f)", acc)
	extra := map[string]any{"final_accuracy": acc}
	if membership {
		extra["membership_epoch"] = c.Epoch()
		log.Printf("middled: membership epoch at exit: %d", c.Epoch())
	}
	writeSummary(m, results, "middled-cloud", extra)
}

func runEdge(setup *experiments.TaskSetup, m *experiments.Metrics, trace *obs.Trace, id int, cloudAddr, addr, strategy string, k int, seed int64, quorum int, roundDL time.Duration, agg middle.AggregatorKind, trimFrac float64, validate middle.ValidatorConfig, selNormCap float64, ckptDir string, ckptEvery int, liveMig bool, devLease int) {
	if cloudAddr == "" {
		fatal("middled: edge role requires -cloud")
	}
	strat, err := middle.StrategyByName(strategy)
	if err != nil {
		fatal(err)
	}
	e, err := fednet.NewEdge(fednet.EdgeConfig{
		EdgeID: id, CloudAddr: cloudAddr, Addr: addr,
		K: k, Strategy: strat, Seed: seed, Logf: log.Printf,
		Quorum: quorum, RoundDeadline: roundDL,
		Aggregator: agg, TrimFrac: trimFrac, Validate: validate,
		SelectionNormCap: selNormCap,
		CheckpointDir:    ckptDir, CheckpointEvery: ckptEvery,
		LiveMigration:     liveMig,
		DeviceLeaseRounds: devLease,
		Obs:               m.Registry(), Trace: trace,
	})
	if err != nil {
		fatal(err)
	}
	// Graceful shutdown: drop the cloud link so Run drains, checkpoints
	// and shuts its devices down before returning nil.
	onSignal(e.Stop)
	log.Printf("middled: edge %d serving devices on %s (strategy %s)", id, e.Addr(), strategy)
	if err := e.Run(); err != nil {
		fatal(err)
	}
	log.Printf("middled: edge %d done", id)
}

func runDevices(setup *experiments.TaskSetup, m *experiments.Metrics, trace *obs.Trace, edgeList string, from, to int, p float64, moveMs int, seed int64, mux int, faults *fednet.FaultInjector, liveMig, failover bool) {
	addrs := strings.Split(edgeList, ",")
	if len(addrs) == 0 || addrs[0] == "" {
		fatal("middled: devices role requires -edgeaddrs")
	}
	if mux < 1 {
		fatalf("middled: -mux must be ≥ 1, got %d", mux)
	}
	if failover && mux > 1 {
		fatal("middled: -failover requires dedicated device clients (-mux 1)")
	}
	// With -failover every listed edge is a re-home candidate: a device
	// whose edge stops answering re-registers at a survivor on its own,
	// carrying its local model and round bookkeeping.
	var candidates []fednet.EdgeAddr
	if failover {
		for e, a := range addrs {
			candidates = append(candidates, fednet.EdgeAddr{ID: e, Addr: a})
		}
	}
	part := setup.Partition(seed)
	if to >= part.NumDevices() || from < 0 || from > to {
		fatalf("middled: device range %d..%d outside partition of %d", from, to, part.NumDevices())
	}
	mode := fednet.AggModeForStrategy("MIDDLE")
	n := to - from + 1
	// connect[i] moves device from+i to an edge: either a dedicated
	// Device client's Connect, or the virtual-device move of the
	// multiplexer hosting it (one socket per edge per -mux group).
	connect := make([]func(edgeID int, addr string) error, n)
	var devs []*fednet.Device // dedicated clients, for stranded accounting
	if mux > 1 {
		for start := 0; start < n; start += mux {
			end := start + mux
			if end > n {
				end = n
			}
			group := make([]fednet.MuxDevice, 0, end-start)
			for i := start; i < end; i++ {
				id := from + i
				group = append(group, fednet.MuxDevice{DeviceID: id, Indices: part.Indices[id]})
			}
			mx, err := fednet.NewDeviceMux(fednet.DeviceMuxConfig{
				Devices: group, Dataset: part.Dataset, Factory: setup.Factory,
				Optimizer:  setup.Optimizer.New(),
				LocalSteps: setup.I, BatchSize: setup.BatchSize,
				Mode: mode, Seed: seed, Faults: faults, Obs: m.Registry(),
			})
			if err != nil {
				fatal(err)
			}
			for i := start; i < end; i++ {
				id := from + i
				connect[i] = func(edgeID int, addr string) error { return mx.Connect(id, edgeID, addr) }
			}
		}
		log.Printf("middled: hosting devices %d..%d on %d multiplexers (%d virtual devices each)",
			from, to, (n+mux-1)/mux, mux)
	} else {
		for i := 0; i < n; i++ {
			id := from + i
			dev, err := fednet.NewDevice(fednet.DeviceConfig{
				DeviceID:   id,
				Dataset:    part.Dataset,
				Indices:    part.Indices[id],
				Factory:    setup.Factory,
				Optimizer:  setup.Optimizer.New(),
				LocalSteps: setup.I, BatchSize: setup.BatchSize,
				Mode: mode, Seed: seed, Faults: faults,
				Failover: candidates, Logf: log.Printf,
				Obs: m.Registry(), Trace: trace,
			})
			if err != nil {
				fatal(err)
			}
			connect[i] = dev.Connect
			devs = append(devs, dev)
		}
	}
	mob := mobility.NewMarkovRing(len(addrs), n, p, seed+int64(from))
	membership := mob.Step()
	for i := range connect {
		if err := connect[i](membership[i], addrs[membership[i]]); err != nil {
			fatal(err)
		}
		log.Printf("middled: device %d attached to edge %d", from+i, membership[i])
	}
	generations := make([]int, n)
	strandedGauge := m.Registry().Gauge("fednet_stranded_devices")
	stop := make(chan struct{})
	onSignal(func() { close(stop) })
	ticker := time.NewTicker(time.Duration(moveMs) * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Graceful shutdown: detach every device cleanly so the edges
			// see deliberate disconnects, then let the deferred trace and
			// metrics flushes run.
			for _, dev := range devs {
				dev.Disconnect()
			}
			log.Printf("middled: devices %d..%d detached", from, to)
			return
		case <-ticker.C:
		}
		next := mob.Step()
		for i := range connect {
			if next[i] == membership[i] {
				continue
			}
			if liveMig {
				// Ask the current edge to push this device's state to the
				// destination before we tear the old attachment down.
				// Best-effort: a lost notice only costs the warm handover.
				generations[i]++
				if err := fednet.NotifyMove(addrs[membership[i]], fednet.MoveNotice{
					DeviceID: from + i, DestEdge: next[i], DestAddr: addrs[next[i]],
					Generation: generations[i],
				}, 5*time.Second); err != nil {
					log.Printf("middled: device %d move notice to edge %d failed: %v", from+i, membership[i], err)
				}
			}
			err := connect[i](next[i], addrs[next[i]])
			if err != nil && failover {
				// The intended edge may be dead; try the other candidates
				// in order so the device keeps training somewhere.
				for off := 1; off < len(addrs) && err != nil; off++ {
					alt := (next[i] + off) % len(addrs)
					if err = connect[i](alt, addrs[alt]); err == nil {
						next[i] = alt
					}
				}
			}
			if err != nil {
				log.Printf("middled: device %d failed to move: %v", from+i, err)
				continue
			}
			log.Printf("middled: device %d moved to edge %d", from+i, next[i])
		}
		membership = next
		stranded := 0
		for _, dev := range devs {
			if !dev.Connected() {
				stranded++
			}
		}
		strandedGauge.Set(float64(stranded))
		if stranded > 0 {
			log.Printf("middled: %d devices currently stranded", stranded)
		}
	}
}
