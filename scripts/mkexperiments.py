#!/usr/bin/env python3
"""Build the measured-results section of EXPERIMENTS.md from results_all.log
and results/*.csv. Helper for maintainers regenerating the document after
rerunning the suite; EXPERIMENTS.md itself adds the paper-vs-measured
commentary around the generated tables."""
import csv
import re
import sys

LOG = sys.argv[1] if len(sys.argv) > 1 else "results_all.log"
OUT = sys.argv[2] if len(sys.argv) > 2 else "/dev/stdout"

text = open(LOG).read()


def section(title):
    i = text.find(title)
    if i < 0:
        return ""
    j = text.find("\n===", i + len(title))
    return text[i:j if j > 0 else len(text)]


def table_lines(block):
    out = []
    for line in block.splitlines():
        if re.match(r"^(MIDDLE|OORT|FedMes|Greedy|Ensemble|General)", line):
            out.append(line.rstrip())
    return out


def tta_from_csv(path, targets):
    rows = list(csv.reader(open(path)))
    hdr = rows[0]
    data = [[float(x) if x else None for x in r] for r in rows[1:]]
    result = {}
    for c in range(1, len(hdr)):
        per = {}
        for tgt in targets:
            tta = None
            for r in data:
                if r[c] is not None and r[c] >= tgt:
                    tta = int(r[0])
                    break
            per[tgt] = tta
        per["final"] = data[-1][c]
        result[hdr[c]] = per
    return result


w = open(OUT, "w")

w.write("## Measured (fast scale, seed 1)\n\n")

# Figure 1
blk = section("=== Figure 1")
m = re.search(r"final: (.*)", blk)
if m:
    w.write("### Figure 1 — motivation: Non-IID across edges\n\n")
    w.write(f"`{m.group(1)}`\n\n")

# Figure 2
blk = section("=== Figure 2")
m = re.search(r"overall: (.*)", blk)
if m:
    w.write("### Figure 2 — motivation: on-device aggregation\n\n")
    w.write(f"`{m.group(1)}`\n\n")

# Figure 6 per task + multi-target TTA from CSV
for task in ["mnist", "emnist", "cifar10", "speech"]:
    blk = section(f"=== Figure 6 ({task})")
    if not blk:
        continue
    w.write(f"### Figure 6 ({task}) — time-to-accuracy\n\n```\n")
    m = re.search(r"time to accuracy.*", blk)
    if m:
        w.write(m.group(0) + "\n")
    for line in table_lines(blk):
        w.write(line + "\n")
    w.write("```\n\n")
    try:
        tta = tta_from_csv(f"results/fig6_{task}.csv", [0.5, 0.7, 0.85])
        w.write("| strategy | steps→0.50 | steps→0.70 | steps→0.85 | final |\n")
        w.write("|---|---|---|---|---|\n")
        for name, per in tta.items():
            cells = [str(per[t]) if per[t] else "—" for t in [0.5, 0.7, 0.85]]
            w.write(f"| {name} | {cells[0]} | {cells[1]} | {cells[2]} | {per['final']:.3f} |\n")
        w.write("\n")
    except FileNotFoundError:
        pass

# Figure 7 per task
for task in ["mnist", "emnist", "cifar10", "speech"]:
    blk = section(f"=== Figure 7 ({task})")
    if not blk:
        continue
    w.write(f"### Figure 7 ({task}) — final accuracy vs P\n\n```\n")
    for line in blk.splitlines():
        if re.search(r"P=0\.[135]", line):
            w.write(re.sub(r"\|.*\|", "", line).rstrip() + "\n")
    w.write("```\n\n")

# Figure 8 per task
for task in ["mnist", "emnist", "cifar10", "speech"]:
    blk = section(f"=== Figure 8 ({task})")
    if not blk:
        continue
    w.write(f"### Figure 8 ({task}) — final accuracy vs T_c\n\n```\n")
    for line in blk.splitlines():
        if line.strip().startswith("final "):
            w.write(line.strip() + "\n")
    w.write("```\n\n")

# Theory
blk = section("=== Theorem 1")
if blk:
    w.write("### Theorem 1 / Remark 1 — convex validation\n\n```\n")
    for line in blk.splitlines()[1:]:
        if line.strip():
            w.write(line.rstrip() + "\n")
    w.write("```\n\n")

# Ablation
blk = section("=== Ablation")
if blk:
    w.write("### Ablation (mnist) — MIDDLE mechanisms in isolation\n\n```\n")
    m = re.search(r"time to accuracy.*", blk)
    if m:
        w.write(m.group(0) + "\n")
    for line in blk.splitlines():
        if re.match(r"^(MIDDLE|General)", line):
            w.write(line.rstrip() + "\n")
    w.write("```\n\n")

# Mobility models
blk = section("=== Mobility models")
if blk:
    w.write("### Mobility-model robustness (mnist)\n\n```\n")
    for line in blk.splitlines():
        if "empirical mobility" in line:
            w.write(line.strip() + "\n")
    w.write("```\n\n")

w.close()
