#!/bin/sh
# Runs the kernel + SimulationStep benchmarks and writes BENCH_1.json
# with the pre-optimisation seed baselines alongside the fresh numbers.
# Each benchmark runs BENCH_COUNT times (default 3) and the per-name
# minimum ns/op is recorded: the min is the run least disturbed by
# scheduler/host noise, which matters on shared vCPUs where single
# samples swing ±20%.
# Usage: scripts/bench.sh [benchtime]   (default 10x)
# Set BENCH_OUT to write a different snapshot (e.g. BENCH_4.json).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
COUNT="${BENCH_COUNT:-3}"
OUT="${BENCH_OUT:-BENCH_1.json}"
PATTERN='^(BenchmarkMatMul128|BenchmarkConv2DForward|BenchmarkLocalTrainingRound|BenchmarkOnDeviceAggregation|BenchmarkOnDeviceAggregationInto|BenchmarkSelectionScoring|BenchmarkSimulationStep|BenchmarkPopulationScaling)$'

echo "Running benchmarks (benchtime=$BENCHTIME, count=$COUNT)..."
RAW=$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .)
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
BEGIN {
    # Seed-commit baselines (same machine, benchtime 10x), recorded
    # before the batched-conv / allocation-free kernel work.
    base["MatMul128"]            = "939270 ns/op, 3 allocs/op"
    base["Conv2DForward"]        = "11282436 ns/op, 297 allocs/op"
    base["LocalTrainingRound"]   = "316853513 ns/op, 8721 allocs/op"
    base["OnDeviceAggregation"]  = "235643 ns/op, 1 allocs/op"
    base["SelectionScoring"]     = "2108078 ns/op, 10 allocs/op"
    base["SimulationStep"]       = "35278464 ns/op, 28915 allocs/op"
    n = 0
}
/^Benchmark/ {
    # -count N prints each benchmark N times; keep the fastest sample.
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns)) {
        names[n] = name
        n++
        ns[name] = $3
        bytes[name] = $5
        allocs[name] = $7
    } else if ($3 + 0 < ns[name] + 0) {
        ns[name] = $3
        bytes[name] = $5
        allocs[name] = $7
    }
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"baseline_note\": \"seed-commit numbers measured before the batched-conv/alloc-free PR\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        name = names[i]
        printf "    {\n"
        printf "      \"name\": \"%s\",\n", name
        printf "      \"ns_per_op\": %s,\n", ns[name]
        printf "      \"bytes_per_op\": %s,\n", bytes[name]
        printf "      \"allocs_per_op\": %s", allocs[name]
        if (name in base) {
            printf ",\n      \"seed_baseline\": \"%s\"\n", base[name]
        } else {
            printf "\n"
        }
        printf "    }%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' > "$OUT"

echo "Wrote $OUT"
