#!/bin/sh
# Full pre-merge gate: formatting, vet, build, tests, and the race
# detector on the two packages that spawn goroutines in hot paths.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^results/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo ok

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (tensor, hfl, fednet, obs) =="
go test -race ./internal/tensor ./internal/hfl ./internal/fednet ./internal/obs

echo "== middled metrics smoke test =="
tmpdir=$(mktemp -d)
go build -o "$tmpdir/middled" ./cmd/middled
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 1 \
    -metrics-addr 127.0.0.1:0 > "$tmpdir/middled.log" 2>&1 &
mpid=$!
cleanup() {
    kill "$mpid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT
maddr=""
i=0
while [ $i -lt 50 ]; do
    maddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middled.log")
    [ -n "$maddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$maddr" ]; then
    echo "middled never announced its metrics listener:"
    cat "$tmpdir/middled.log"
    exit 1
fi
body=$(curl -fsS "http://$maddr/metrics")
for want in fednet_rounds_total process_goroutines tensor_kernel_matmul_calls; do
    if ! printf '%s\n' "$body" | grep -q "$want"; then
        echo "/metrics is missing the $want series"
        exit 1
    fi
done
curl -fsS "http://$maddr/status" | grep -q '"role": "cloud"' || {
    echo "/status did not report role=cloud"
    exit 1
}
curl -fsS "http://$maddr/debug/trace" | grep -q '"traceEvents"' || {
    echo "/debug/trace did not serve a trace document"
    exit 1
}
echo ok

echo "== middlesim telemetry + trace smoke test =="
go build -o "$tmpdir/middlesim" ./cmd/middlesim
# 200 steps keeps the run alive a couple of seconds so the live
# /metrics poll below has a real window to observe the hfl_* series.
"$tmpdir/middlesim" -exp run -task mnist -steps 200 \
    -metrics-addr 127.0.0.1:0 \
    -trace-out "$tmpdir/run.trace.json" \
    -telemetry-out "$tmpdir/run.telemetry.jsonl" \
    > "$tmpdir/middlesim.log" 2>&1 &
spid=$!
saddr=""
i=0
while [ $i -lt 100 ]; do
    saddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middlesim.log")
    [ -n "$saddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$saddr" ]; then
    echo "middlesim never announced its metrics listener:"
    cat "$tmpdir/middlesim.log"
    exit 1
fi
# Poll /metrics while the run is live for the learning-dynamics series.
found=""
i=0
while [ $i -lt 100 ]; do
    live=$(curl -fsS "http://$saddr/metrics" 2>/dev/null || true)
    if printf '%s\n' "$live" | grep -q hfl_selection_utility &&
        printf '%s\n' "$live" | grep -q hfl_edge_divergence; then
        found=yes
        break
    fi
    if ! kill -0 "$spid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
wait "$spid" || {
    echo "middlesim run failed:"
    cat "$tmpdir/middlesim.log"
    exit 1
}
if [ -z "$found" ]; then
    echo "/metrics never exposed hfl_selection_utility + hfl_edge_divergence"
    exit 1
fi
grep -q '"traceEvents"' "$tmpdir/run.trace.json" || {
    echo "-trace-out wrote no trace document"
    exit 1
}
grep -q '"event":"round"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no round events"
    exit 1
}
grep -q '"event":"eval"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no eval events"
    exit 1
}
echo ok

echo "All checks passed."
