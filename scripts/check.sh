#!/bin/sh
# Full pre-merge gate: formatting, vet, build, tests, and the race
# detector on the two packages that spawn goroutines in hot paths.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^results/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo ok

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (tensor, hfl, fednet, obs) =="
go test -race ./internal/tensor ./internal/hfl ./internal/fednet ./internal/obs

echo "== middled metrics smoke test =="
tmpdir=$(mktemp -d)
go build -o "$tmpdir/middled" ./cmd/middled
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 1 \
    -metrics-addr 127.0.0.1:0 > "$tmpdir/middled.log" 2>&1 &
mpid=$!
cleanup() {
    kill "$mpid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT
maddr=""
i=0
while [ $i -lt 50 ]; do
    maddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middled.log")
    [ -n "$maddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$maddr" ]; then
    echo "middled never announced its metrics listener:"
    cat "$tmpdir/middled.log"
    exit 1
fi
body=$(curl -fsS "http://$maddr/metrics")
for want in fednet_rounds_total process_goroutines tensor_kernel_matmul_calls; do
    if ! printf '%s\n' "$body" | grep -q "$want"; then
        echo "/metrics is missing the $want series"
        exit 1
    fi
done
curl -fsS "http://$maddr/status" | grep -q '"role": "cloud"' || {
    echo "/status did not report role=cloud"
    exit 1
}
echo ok

echo "All checks passed."
