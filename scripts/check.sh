#!/bin/sh
# Full pre-merge gate: formatting, vet, build, tests, and the race
# detector on the two packages that spawn goroutines in hot paths.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^results/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo ok

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (tensor, hfl) =="
go test -race ./internal/tensor ./internal/hfl

echo "All checks passed."
