#!/bin/sh
# Full pre-merge gate: formatting, vet, build, tests, and the race
# detector on the two packages that spawn goroutines in hot paths.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^results/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo ok

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (tensor, hfl, fednet, obs) =="
go test -race ./internal/tensor ./internal/hfl ./internal/fednet ./internal/obs

echo "== chaos smoke (-race) =="
# Seeded fault injection against the full cluster under the race
# detector: the run must complete and the degradation counters fire.
go test -race -count=1 \
    -run 'TestClusterChaosSoak|TestFaultPlanDeterministic|TestClusterQuorumFallback' \
    ./internal/fednet

echo "== adversarial smoke (-race) =="
# Byzantine devices against the robust stack under the race detector:
# sign-flip adversaries must not break trimmed-mean + norm-bound runs,
# and poisoned cluster updates must be rejected, not aggregated.
go test -race -count=1 \
    -run 'TestAdversaryTrimmedMeanResists|TestAdversaryRunDeterministic|TestRobustDefaultsBitIdentical' \
    ./internal/hfl
go test -race -count=1 \
    -run 'TestClusterPoisonedUpdatesRejected|TestEdgeCheckpointResume' \
    ./internal/fednet

echo "== middled metrics smoke test =="
tmpdir=$(mktemp -d)
go build -o "$tmpdir/middled" ./cmd/middled
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 1 \
    -metrics-addr 127.0.0.1:0 > "$tmpdir/middled.log" 2>&1 &
mpid=$!
pids=""
cleanup() {
    kill "$mpid" $pids 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT
maddr=""
i=0
while [ $i -lt 50 ]; do
    maddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middled.log")
    [ -n "$maddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$maddr" ]; then
    echo "middled never announced its metrics listener:"
    cat "$tmpdir/middled.log"
    exit 1
fi
body=$(curl -fsS "http://$maddr/metrics")
for want in fednet_rounds_total process_goroutines tensor_kernel_matmul_calls; do
    if ! printf '%s\n' "$body" | grep -q "$want"; then
        echo "/metrics is missing the $want series"
        exit 1
    fi
done
curl -fsS "http://$maddr/status" | grep -q '"role": "cloud"' || {
    echo "/status did not report role=cloud"
    exit 1
}
curl -fsS "http://$maddr/debug/trace" | grep -q '"traceEvents"' || {
    echo "/debug/trace did not serve a trace document"
    exit 1
}
echo ok

echo "== middlesim telemetry + trace smoke test =="
go build -o "$tmpdir/middlesim" ./cmd/middlesim
go build -o "$tmpdir/middleplot" ./cmd/middleplot
# 200 steps keeps the run alive a couple of seconds so the live
# /metrics poll below has a real window to observe the hfl_* series.
# The run also arms the embedded tsdb + default SLO gate: fault-free it
# must exit 0 and leave a renderable dump behind.
"$tmpdir/middlesim" -exp run -task mnist -steps 200 \
    -metrics-addr 127.0.0.1:0 \
    -slo default -tsdb-interval 100ms \
    -tsdb-out "$tmpdir/run.tsdb.json" \
    -trace-out "$tmpdir/run.trace.json" \
    -telemetry-out "$tmpdir/run.telemetry.jsonl" \
    > "$tmpdir/middlesim.log" 2>&1 &
spid=$!
saddr=""
i=0
while [ $i -lt 100 ]; do
    saddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middlesim.log")
    [ -n "$saddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$saddr" ]; then
    echo "middlesim never announced its metrics listener:"
    cat "$tmpdir/middlesim.log"
    exit 1
fi
# Poll /metrics while the run is live for the learning-dynamics series.
found=""
i=0
while [ $i -lt 100 ]; do
    live=$(curl -fsS "http://$saddr/metrics" 2>/dev/null || true)
    if printf '%s\n' "$live" | grep -q hfl_selection_utility &&
        printf '%s\n' "$live" | grep -q hfl_edge_divergence; then
        found=yes
        break
    fi
    if ! kill -0 "$spid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
wait "$spid" || {
    echo "middlesim run failed:"
    cat "$tmpdir/middlesim.log"
    exit 1
}
if [ -z "$found" ]; then
    echo "/metrics never exposed hfl_selection_utility + hfl_edge_divergence"
    exit 1
fi
grep -q '"traceEvents"' "$tmpdir/run.trace.json" || {
    echo "-trace-out wrote no trace document"
    exit 1
}
grep -q '"event":"round"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no round events"
    exit 1
}
grep -q '"event":"eval"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no eval events"
    exit 1
}
head -c 16 "$tmpdir/run.tsdb.json" | grep -q '{"tsdb":1' || {
    echo "-tsdb-out wrote no tsdb dump"
    exit 1
}
"$tmpdir/middleplot" -in "$tmpdir/run.tsdb.json" > "$tmpdir/run.tsdb.txt" || {
    echo "middleplot could not render the tsdb dump"
    exit 1
}
grep -q 'hfl_global_accuracy' "$tmpdir/run.tsdb.txt" || {
    echo "tsdb dump chart is missing the accuracy series:"
    cat "$tmpdir/run.tsdb.txt"
    exit 1
}
echo ok

echo "== SLO breach gate smoke test =="
# Seeded chaos: 50% round-trip drops against a quorum of 3 must trip
# the tight quorum SLO — the gate exits non-zero and the breach event
# reaches the telemetry stream.
if "$tmpdir/middlesim" -exp run -task mnist -steps 100 \
    -drop-rate 0.5 -quorum 3 -fault-seed 7 -tsdb-interval 50ms \
    -telemetry-out "$tmpdir/chaos.telemetry.jsonl" \
    -slo 'quorum_misses: delta(hfl_quorum_misses_total) <= 0' \
    > "$tmpdir/chaos.log" 2>&1; then
    echo "seeded-chaos run passed the SLO gate (a breach exit was expected):"
    cat "$tmpdir/chaos.log"
    exit 1
fi
grep -q "SLO breach: quorum_misses" "$tmpdir/chaos.log" || {
    echo "breach exit did not name the quorum rule:"
    cat "$tmpdir/chaos.log"
    exit 1
}
grep -q '"event":"slo_breach"' "$tmpdir/chaos.telemetry.jsonl" || {
    echo "no slo_breach event in the chaos telemetry stream"
    exit 1
}
echo ok

echo "== forensics smoke test =="
# The same seeded chaos with the flight recorder armed: the breach must
# leave a complete postmortem bundle behind, and middlediag must turn it
# into a report naming the firing rule and attributing CPU to phases.
go build -o "$tmpdir/middlediag" ./cmd/middlediag
flightdir="$tmpdir/flight"
if "$tmpdir/middlesim" -exp run -task mnist -steps 100 \
    -drop-rate 0.5 -quorum 3 -fault-seed 7 -tsdb-interval 50ms \
    -flight-dir "$flightdir" -profile-interval 100ms \
    -slo 'quorum_misses: delta(hfl_quorum_misses_total) <= 0' \
    > "$tmpdir/forensics.log" 2>&1; then
    echo "forensics chaos run passed the SLO gate (a breach exit was expected):"
    cat "$tmpdir/forensics.log"
    exit 1
fi
bundle=$(ls -d "$flightdir"/bundle-*slo_breach_quorum_misses* 2>/dev/null | head -n 1)
if [ -z "$bundle" ]; then
    echo "breach left no slo_breach bundle in $flightdir:"
    ls -la "$flightdir" 2>/dev/null || true
    cat "$tmpdir/forensics.log"
    exit 1
fi
for f in cpu.pprof heap.pprof goroutines.txt tsdb.json events.jsonl slo.json manifest.json; do
    if [ ! -s "$bundle/$f" ]; then
        echo "bundle $bundle is missing $f"
        ls -la "$bundle"
        exit 1
    fi
done
if ls -d "$flightdir"/*.partial > /dev/null 2>&1; then
    echo "a .partial bundle was left behind (non-atomic capture)"
    exit 1
fi
"$tmpdir/middlediag" "$flightdir" > "$tmpdir/diag.txt" || {
    echo "middlediag failed on $flightdir"
    exit 1
}
grep -q 'quorum_misses' "$tmpdir/diag.txt" || {
    echo "middlediag report does not name the breached rule:"
    cat "$tmpdir/diag.txt"
    exit 1
}
grep -Eq 'local_train|edge_agg|unattributed' "$tmpdir/diag.txt" || {
    echo "middlediag report attributes no CPU to phases:"
    cat "$tmpdir/diag.txt"
    exit 1
}
echo ok

echo "== middlesim adversarial smoke test =="
# 20% sign-flip adversaries against the robust stack: the run must
# survive with usable accuracy, the validator must reject updates, and
# the live /metrics endpoint must expose the rejection counters.
"$tmpdir/middlesim" -exp run -task mnist -steps 200 \
    -adversary-fraction 0.2 -adversary-mode sign-flip -adversary-scale 1 \
    -aggregator trimmed-mean -norm-bound 3 -sel-norm-cap 10 \
    -metrics-addr 127.0.0.1:0 \
    > "$tmpdir/middlesim_adv.log" 2>&1 &
apid=$!
aaddr=""
i=0
while [ $i -lt 100 ]; do
    aaddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middlesim_adv.log")
    [ -n "$aaddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$aaddr" ]; then
    echo "adversarial middlesim never announced its metrics listener:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
fi
# Poll /metrics while the run is live: the rejection counter must move.
afound=""
i=0
while [ $i -lt 200 ]; do
    alive=$(curl -fsS "http://$aaddr/metrics" 2>/dev/null || true)
    if printf '%s\n' "$alive" |
        grep 'robust_rejected_updates_total' | grep -qv ' 0$'; then
        afound=yes
        break
    fi
    if ! kill -0 "$apid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
wait "$apid" || {
    echo "adversarial middlesim run failed:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
}
if [ -z "$afound" ]; then
    echo "/metrics never showed robust_rejected_updates_total > 0"
    exit 1
fi
grep -q 'rejected updates: [1-9]' "$tmpdir/middlesim_adv.log" || {
    echo "run summary reported no rejected updates:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
}
# Accuracy floor: the robust stack must keep the run usable under 20%
# poisoning — either the target was reached or the final accuracy
# cleared 0.5 (ten-class chance is 0.1; this config reaches ~0.88).
if ! grep -q 'reached target' "$tmpdir/middlesim_adv.log"; then
    finalacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/middlesim_adv.log")
    ok=$(awk -v a="${finalacc:-0}" 'BEGIN { print (a >= 0.5) ? "yes" : "" }')
    if [ -z "$ok" ]; then
        echo "adversarial run accuracy too low (final ${finalacc:-unknown}):"
        cat "$tmpdir/middlesim_adv.log"
        exit 1
    fi
fi
echo ok

echo "== middled checkpoint kill-and-resume smoke =="
# Run a small cloud+edge+devices deployment with checkpointing, kill the
# cloud with SIGKILL once a checkpoint lands, then restart everything
# over the same directory: the new cloud must log that it resumed and
# finish the remaining rounds.
ckptdir="$tmpdir/ckpt"
mkdir -p "$ckptdir"

# scrape_addr LOGFILE PATTERN — poll a log for an announced address.
scrape_addr() {
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n "s/.*$2 \([0-9.:]*\).*/\1/p" "$1" | head -n 1)
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "never found \"$2\" in $1:" >&2
        cat "$1" >&2
        exit 1
    fi
    printf '%s' "$_addr"
}

start_fleet() {
    # $1: cloud log, $2: edge log, $3: devices log
    "$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 8 -tc 2 \
        -checkpoint-dir "$ckptdir" > "$1" 2>&1 &
    cpid=$!
    pids="$pids $cpid"
    caddr=$(scrape_addr "$1" "cloud listening on")
    "$tmpdir/middled" -role edge -id 0 -cloud "$caddr" -addr 127.0.0.1:0 \
        -strategy MIDDLE -k 2 > "$2" 2>&1 &
    epid=$!
    pids="$pids $epid"
    eaddr=$(scrape_addr "$2" "serving devices on")
    "$tmpdir/middled" -role devices -edgeaddrs "$eaddr" -from 0 -to 3 \
        > "$3" 2>&1 &
    dpid=$!
    pids="$pids $dpid"
}

start_fleet "$tmpdir/cloud1.log" "$tmpdir/edge1.log" "$tmpdir/devices1.log"

# Wait for the first checkpoint, then SIGKILL the cloud mid-run (or
# just after completion — the resume path below handles both).
i=0
while [ $i -lt 300 ]; do
    if ls "$ckptdir"/*.ckpt > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$cpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if ! ls "$ckptdir"/*.ckpt > /dev/null 2>&1; then
    echo "no checkpoint appeared in $ckptdir:"
    cat "$tmpdir/cloud1.log"
    exit 1
fi
kill -9 "$cpid" 2>/dev/null || true
kill "$epid" "$dpid" 2>/dev/null || true
wait "$cpid" "$epid" "$dpid" 2>/dev/null || true

start_fleet "$tmpdir/cloud2.log" "$tmpdir/edge2.log" "$tmpdir/devices2.log"
grep -q "resuming from checkpoint" "$tmpdir/cloud2.log" || {
    echo "restarted cloud did not resume from checkpoint:"
    cat "$tmpdir/cloud2.log"
    exit 1
}
i=0
while [ $i -lt 600 ]; do
    if grep -q "training complete" "$tmpdir/cloud2.log"; then
        break
    fi
    if ! kill -0 "$cpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q "training complete" "$tmpdir/cloud2.log" || {
    echo "resumed cloud never completed training:"
    cat "$tmpdir/cloud2.log"
    tail -n 5 "$tmpdir/edge2.log" "$tmpdir/devices2.log"
    exit 1
}
kill "$cpid" "$epid" "$dpid" 2>/dev/null || true
echo ok

echo "== million-device scale-out smoke =="
# The scale acceptance gate: a 1M-device / 1k-edge lazy-store run must
# finish and keep peak RSS bounded by the cohort (ceiling 2 GiB; the
# run sits around ~300 MiB) with at most -resident-cap models
# materialized. The run also arms the full observability stack — while
# it is live, the dashboard and query/alert APIs must serve, the series
# count must stay under the tsdb budget, cardinality governance must
# fold the 1k-edge divergence family (dropped counter > 0), and no SLO
# may fire on a fault-free run.
"$tmpdir/middlesim" -exp scale -devices 1000000 -edges 1000 \
    -k 1 -tc 2 -steps 2 -resident-cap 4096 \
    -metrics-addr 127.0.0.1:0 -slo default > "$tmpdir/scale.log" 2>&1 &
scpid=$!
pids="$pids $scpid"
scaddr=$(scrape_addr "$tmpdir/scale.log" "metrics listening on")
obsok=""
i=0
while [ $i -lt 600 ]; do
    count=$(curl -fsS "http://$scaddr/api/series" 2>/dev/null |
        sed -n 's/.*"count":\([0-9]*\).*/\1/p')
    if [ -n "$count" ] && [ "$count" -gt 0 ] && [ "$count" -le 4096 ] &&
        curl -fsS "http://$scaddr/dashboard" 2>/dev/null |
        grep -q 'middle dashboard' &&
        curl -fsS "http://$scaddr/api/query?series=obs_series" 2>/dev/null |
        grep -q '"points":\[\[' &&
        curl -fsS "http://$scaddr/metrics" 2>/dev/null |
        grep 'obs_dropped_series_total{family="hfl_edge_divergence"}' |
        grep -qv ' 0$' &&
        curl -fsS "http://$scaddr/api/alerts" 2>/dev/null |
        grep -q '"firing": 0'; then
        obsok=yes
        break
    fi
    if ! kill -0 "$scpid" 2>/dev/null; then
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
wait "$scpid" || {
    echo "million-device scale run failed (or an SLO fired fault-free):"
    cat "$tmpdir/scale.log"
    exit 1
}
if [ -z "$obsok" ]; then
    echo "observability endpoints never satisfied the scale gate" \
        "(series count bounded, divergence family folded, zero firing SLOs)"
    cat "$tmpdir/scale.log"
    exit 1
fi
cat "$tmpdir/scale.log"
rss=$(sed -n 's/.*peak_rss_mib=\([0-9]*\).*/\1/p' "$tmpdir/scale.log")
if [ -z "$rss" ]; then
    echo "scale run never reported peak_rss_mib"
    exit 1
fi
if [ "$rss" -ge 2048 ]; then
    echo "peak RSS ${rss} MiB breaches the 2 GiB scale ceiling"
    exit 1
fi
resident=$(sed -n 's/.*peak_resident_models=\([0-9]*\).*/\1/p' "$tmpdir/scale.log")
if [ -z "$resident" ] || [ "$resident" -gt 4096 ]; then
    echo "peak resident models ${resident:-unreported} exceeds the 4096 cap"
    exit 1
fi
# Nonsensical combination must be rejected with a clear message.
if "$tmpdir/middlesim" -exp scale -devices 1000 -edges 10 -k 5 \
    -resident-cap 49 > "$tmpdir/scale_bad.log" 2>&1; then
    echo "cohort > resident-cap was not rejected"
    exit 1
fi
grep -q "cohort" "$tmpdir/scale_bad.log" || {
    echo "rejection message does not explain the cohort constraint:"
    cat "$tmpdir/scale_bad.log"
    exit 1
}
echo ok

echo "== live-migration smoke =="
# Deployment handover: a high-mobility in-process fednet deployment with
# -live-migration must complete at least one successful handover — the
# summary's ok count is fednet_migrations_total{outcome="ok"}.
"$tmpdir/middlesim" -exp scale -devices 24 -edges 3 -k 2 -tc 2 -steps 8 \
    -mux 2 -p 0.6 -seed 3 -live-migration > "$tmpdir/mig_deploy.log" 2>&1 || {
    echo "live-migration deployment run failed:"
    cat "$tmpdir/mig_deploy.log"
    exit 1
}
grep -Eq 'migrations: [1-9][0-9]* ok' "$tmpdir/mig_deploy.log" || {
    echo "deployment reported no successful migrations:"
    cat "$tmpdir/mig_deploy.log"
    exit 1
}
# Seeded handover chaos in the simulator mirror: with half the handovers
# lost in transit, every failure must degrade to drop-and-reconnect and
# the run still exits 0 with both outcomes accounted.
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration -migration-fail-rate 0.5 \
    > "$tmpdir/mig_chaos.log" 2>&1 || {
    echo "seeded handover-chaos run failed (fallback must keep it alive):"
    cat "$tmpdir/mig_chaos.log"
    exit 1
}
grep -Eq 'migrations: [0-9]+ ok, [1-9][0-9]* fallbacks' "$tmpdir/mig_chaos.log" || {
    echo "handover chaos produced no fallback outcomes:"
    cat "$tmpdir/mig_chaos.log"
    exit 1
}
# Migrate-vs-drop comparison: the same seeded run with every handover
# succeeding vs every handover dropped (= today's cold rejoin); record
# both accuracies so regressions in the Eq. 9 resume path are visible.
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration > "$tmpdir/mig_ok.log" 2>&1 || {
    echo "migrate-path comparison run failed:"
    cat "$tmpdir/mig_ok.log"
    exit 1
}
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration -migration-fail-rate 1 \
    > "$tmpdir/mig_drop.log" 2>&1 || {
    echo "drop-path comparison run failed:"
    cat "$tmpdir/mig_drop.log"
    exit 1
}
macc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/mig_ok.log")
dacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/mig_drop.log")
if [ -z "$macc" ] || [ -z "$dacc" ]; then
    echo "comparison runs reported no final accuracy (migrate='$macc' drop='$dacc')"
    exit 1
fi
mkdir -p results
printf 'migrate_vs_drop: migrate_acc=%s drop_acc=%s (mnist, 60 devices / 3 edges, p=0.6, seed 3)\n' \
    "$macc" "$dacc" | tee results/migration_compare.txt
echo ok

echo "All checks passed."
