#!/bin/sh
# Full pre-merge gate: formatting, vet, build, tests, and the race
# detector on the two packages that spawn goroutines in hot paths.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^results/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo ok

echo "== go vet =="
go vet ./...

# Deeper static analysis, availability-gated: the checks run whenever the
# tools exist on PATH (this container has no network to install them).
# staticcheck is pinned so results are reproducible across machines;
# govulncheck is advisory only — a vulnerable-dependency report must not
# block an offline build.
STATICCHECK_PIN="2025.1"
echo "== staticcheck (pinned $STATICCHECK_PIN) =="
if command -v staticcheck > /dev/null 2>&1; then
    scver=$(staticcheck -version 2>/dev/null || true)
    case "$scver" in
    *"$STATICCHECK_PIN"*) ;;
    *) echo "note: staticcheck is '$scver', pin is $STATICCHECK_PIN — running anyway" ;;
    esac
    staticcheck ./...
    echo ok
else
    echo "skipped: staticcheck not on PATH (install pin: go install honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_PIN)"
fi

echo "== govulncheck (non-fatal) =="
if command -v govulncheck > /dev/null 2>&1; then
    govulncheck ./... || echo "warning: govulncheck reported findings (advisory, not gating)"
else
    echo "skipped: govulncheck not on PATH (install: go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (tensor, hfl, fednet, obs) =="
go test -race ./internal/tensor ./internal/hfl ./internal/fednet ./internal/obs

echo "== chaos smoke (-race) =="
# Seeded fault injection against the full cluster under the race
# detector: the run must complete and the degradation counters fire.
go test -race -count=1 \
    -run 'TestClusterChaosSoak|TestFaultPlanDeterministic|TestClusterQuorumFallback' \
    ./internal/fednet

echo "== adversarial smoke (-race) =="
# Byzantine devices against the robust stack under the race detector:
# sign-flip adversaries must not break trimmed-mean + norm-bound runs,
# and poisoned cluster updates must be rejected, not aggregated.
go test -race -count=1 \
    -run 'TestAdversaryTrimmedMeanResists|TestAdversaryRunDeterministic|TestRobustDefaultsBitIdentical' \
    ./internal/hfl
go test -race -count=1 \
    -run 'TestClusterPoisonedUpdatesRejected|TestEdgeCheckpointResume' \
    ./internal/fednet

echo "== middled metrics smoke test =="
tmpdir=$(mktemp -d)
go build -o "$tmpdir/middled" ./cmd/middled
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 1 \
    -metrics-addr 127.0.0.1:0 > "$tmpdir/middled.log" 2>&1 &
mpid=$!
pids=""
cleanup() {
    kill "$mpid" $pids 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT
maddr=""
i=0
while [ $i -lt 50 ]; do
    maddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middled.log")
    [ -n "$maddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$maddr" ]; then
    echo "middled never announced its metrics listener:"
    cat "$tmpdir/middled.log"
    exit 1
fi
body=$(curl -fsS "http://$maddr/metrics")
for want in fednet_rounds_total process_goroutines tensor_kernel_matmul_calls; do
    if ! printf '%s\n' "$body" | grep -q "$want"; then
        echo "/metrics is missing the $want series"
        exit 1
    fi
done
curl -fsS "http://$maddr/status" | grep -q '"role": "cloud"' || {
    echo "/status did not report role=cloud"
    exit 1
}
curl -fsS "http://$maddr/debug/trace" | grep -q '"traceEvents"' || {
    echo "/debug/trace did not serve a trace document"
    exit 1
}
echo ok

echo "== middlesim telemetry + trace smoke test =="
go build -o "$tmpdir/middlesim" ./cmd/middlesim
go build -o "$tmpdir/middleplot" ./cmd/middleplot
# 200 steps keeps the run alive a couple of seconds so the live
# /metrics poll below has a real window to observe the hfl_* series.
# The run also arms the embedded tsdb + default SLO gate: fault-free it
# must exit 0 and leave a renderable dump behind.
"$tmpdir/middlesim" -exp run -task mnist -steps 200 \
    -metrics-addr 127.0.0.1:0 \
    -slo default -tsdb-interval 100ms \
    -tsdb-out "$tmpdir/run.tsdb.json" \
    -trace-out "$tmpdir/run.trace.json" \
    -telemetry-out "$tmpdir/run.telemetry.jsonl" \
    > "$tmpdir/middlesim.log" 2>&1 &
spid=$!
saddr=""
i=0
while [ $i -lt 100 ]; do
    saddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middlesim.log")
    [ -n "$saddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$saddr" ]; then
    echo "middlesim never announced its metrics listener:"
    cat "$tmpdir/middlesim.log"
    exit 1
fi
# Poll /metrics while the run is live for the learning-dynamics series.
found=""
i=0
while [ $i -lt 100 ]; do
    live=$(curl -fsS "http://$saddr/metrics" 2>/dev/null || true)
    if printf '%s\n' "$live" | grep -q hfl_selection_utility &&
        printf '%s\n' "$live" | grep -q hfl_edge_divergence; then
        found=yes
        break
    fi
    if ! kill -0 "$spid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
wait "$spid" || {
    echo "middlesim run failed:"
    cat "$tmpdir/middlesim.log"
    exit 1
}
if [ -z "$found" ]; then
    echo "/metrics never exposed hfl_selection_utility + hfl_edge_divergence"
    exit 1
fi
grep -q '"traceEvents"' "$tmpdir/run.trace.json" || {
    echo "-trace-out wrote no trace document"
    exit 1
}
grep -q '"event":"round"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no round events"
    exit 1
}
grep -q '"event":"eval"' "$tmpdir/run.telemetry.jsonl" || {
    echo "-telemetry-out wrote no eval events"
    exit 1
}
head -c 16 "$tmpdir/run.tsdb.json" | grep -q '{"tsdb":1' || {
    echo "-tsdb-out wrote no tsdb dump"
    exit 1
}
"$tmpdir/middleplot" -in "$tmpdir/run.tsdb.json" > "$tmpdir/run.tsdb.txt" || {
    echo "middleplot could not render the tsdb dump"
    exit 1
}
grep -q 'hfl_global_accuracy' "$tmpdir/run.tsdb.txt" || {
    echo "tsdb dump chart is missing the accuracy series:"
    cat "$tmpdir/run.tsdb.txt"
    exit 1
}
echo ok

echo "== SLO breach gate smoke test =="
# Seeded chaos: 50% round-trip drops against a quorum of 3 must trip
# the tight quorum SLO — the gate exits non-zero and the breach event
# reaches the telemetry stream.
if "$tmpdir/middlesim" -exp run -task mnist -steps 100 \
    -drop-rate 0.5 -quorum 3 -fault-seed 7 -tsdb-interval 50ms \
    -telemetry-out "$tmpdir/chaos.telemetry.jsonl" \
    -slo 'quorum_misses: delta(hfl_quorum_misses_total) <= 0' \
    > "$tmpdir/chaos.log" 2>&1; then
    echo "seeded-chaos run passed the SLO gate (a breach exit was expected):"
    cat "$tmpdir/chaos.log"
    exit 1
fi
grep -q "SLO breach: quorum_misses" "$tmpdir/chaos.log" || {
    echo "breach exit did not name the quorum rule:"
    cat "$tmpdir/chaos.log"
    exit 1
}
grep -q '"event":"slo_breach"' "$tmpdir/chaos.telemetry.jsonl" || {
    echo "no slo_breach event in the chaos telemetry stream"
    exit 1
}
echo ok

echo "== forensics smoke test =="
# The same seeded chaos with the flight recorder armed: the breach must
# leave a complete postmortem bundle behind, and middlediag must turn it
# into a report naming the firing rule and attributing CPU to phases.
go build -o "$tmpdir/middlediag" ./cmd/middlediag
flightdir="$tmpdir/flight"
if "$tmpdir/middlesim" -exp run -task mnist -steps 100 \
    -drop-rate 0.5 -quorum 3 -fault-seed 7 -tsdb-interval 50ms \
    -flight-dir "$flightdir" -profile-interval 100ms \
    -slo 'quorum_misses: delta(hfl_quorum_misses_total) <= 0' \
    > "$tmpdir/forensics.log" 2>&1; then
    echo "forensics chaos run passed the SLO gate (a breach exit was expected):"
    cat "$tmpdir/forensics.log"
    exit 1
fi
bundle=$(ls -d "$flightdir"/bundle-*slo_breach_quorum_misses* 2>/dev/null | head -n 1)
if [ -z "$bundle" ]; then
    echo "breach left no slo_breach bundle in $flightdir:"
    ls -la "$flightdir" 2>/dev/null || true
    cat "$tmpdir/forensics.log"
    exit 1
fi
for f in cpu.pprof heap.pprof goroutines.txt tsdb.json events.jsonl slo.json manifest.json; do
    if [ ! -s "$bundle/$f" ]; then
        echo "bundle $bundle is missing $f"
        ls -la "$bundle"
        exit 1
    fi
done
if ls -d "$flightdir"/*.partial > /dev/null 2>&1; then
    echo "a .partial bundle was left behind (non-atomic capture)"
    exit 1
fi
"$tmpdir/middlediag" "$flightdir" > "$tmpdir/diag.txt" || {
    echo "middlediag failed on $flightdir"
    exit 1
}
grep -q 'quorum_misses' "$tmpdir/diag.txt" || {
    echo "middlediag report does not name the breached rule:"
    cat "$tmpdir/diag.txt"
    exit 1
}
grep -Eq 'local_train|edge_agg|unattributed' "$tmpdir/diag.txt" || {
    echo "middlediag report attributes no CPU to phases:"
    cat "$tmpdir/diag.txt"
    exit 1
}
echo ok

echo "== middlesim adversarial smoke test =="
# 20% sign-flip adversaries against the robust stack: the run must
# survive with usable accuracy, the validator must reject updates, and
# the live /metrics endpoint must expose the rejection counters.
"$tmpdir/middlesim" -exp run -task mnist -steps 200 \
    -adversary-fraction 0.2 -adversary-mode sign-flip -adversary-scale 1 \
    -aggregator trimmed-mean -norm-bound 3 -sel-norm-cap 10 \
    -metrics-addr 127.0.0.1:0 \
    > "$tmpdir/middlesim_adv.log" 2>&1 &
apid=$!
aaddr=""
i=0
while [ $i -lt 100 ]; do
    aaddr=$(sed -n 's/.*metrics listening on \(.*\)$/\1/p' "$tmpdir/middlesim_adv.log")
    [ -n "$aaddr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$aaddr" ]; then
    echo "adversarial middlesim never announced its metrics listener:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
fi
# Poll /metrics while the run is live: the rejection counter must move.
afound=""
i=0
while [ $i -lt 200 ]; do
    alive=$(curl -fsS "http://$aaddr/metrics" 2>/dev/null || true)
    if printf '%s\n' "$alive" |
        grep 'robust_rejected_updates_total' | grep -qv ' 0$'; then
        afound=yes
        break
    fi
    if ! kill -0 "$apid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
wait "$apid" || {
    echo "adversarial middlesim run failed:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
}
if [ -z "$afound" ]; then
    echo "/metrics never showed robust_rejected_updates_total > 0"
    exit 1
fi
grep -q 'rejected updates: [1-9]' "$tmpdir/middlesim_adv.log" || {
    echo "run summary reported no rejected updates:"
    cat "$tmpdir/middlesim_adv.log"
    exit 1
}
# Accuracy floor: the robust stack must keep the run usable under 20%
# poisoning — either the target was reached or the final accuracy
# cleared 0.5 (ten-class chance is 0.1; this config reaches ~0.88).
if ! grep -q 'reached target' "$tmpdir/middlesim_adv.log"; then
    finalacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/middlesim_adv.log")
    ok=$(awk -v a="${finalacc:-0}" 'BEGIN { print (a >= 0.5) ? "yes" : "" }')
    if [ -z "$ok" ]; then
        echo "adversarial run accuracy too low (final ${finalacc:-unknown}):"
        cat "$tmpdir/middlesim_adv.log"
        exit 1
    fi
fi
echo ok

echo "== middled checkpoint kill-and-resume smoke =="
# Run a small cloud+edge+devices deployment with checkpointing, kill the
# cloud with SIGKILL once a checkpoint lands, then restart everything
# over the same directory: the new cloud must log that it resumed and
# finish the remaining rounds.
ckptdir="$tmpdir/ckpt"
mkdir -p "$ckptdir"

# scrape_addr LOGFILE PATTERN — poll a log for an announced address.
scrape_addr() {
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n "s/.*$2 \([0-9.:]*\).*/\1/p" "$1" | head -n 1)
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "never found \"$2\" in $1:" >&2
        cat "$1" >&2
        exit 1
    fi
    printf '%s' "$_addr"
}

start_fleet() {
    # $1: cloud log, $2: edge log, $3: devices log
    "$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 8 -tc 2 \
        -checkpoint-dir "$ckptdir" > "$1" 2>&1 &
    cpid=$!
    pids="$pids $cpid"
    caddr=$(scrape_addr "$1" "cloud listening on")
    "$tmpdir/middled" -role edge -id 0 -cloud "$caddr" -addr 127.0.0.1:0 \
        -strategy MIDDLE -k 2 > "$2" 2>&1 &
    epid=$!
    pids="$pids $epid"
    eaddr=$(scrape_addr "$2" "serving devices on")
    "$tmpdir/middled" -role devices -edgeaddrs "$eaddr" -from 0 -to 3 \
        > "$3" 2>&1 &
    dpid=$!
    pids="$pids $dpid"
}

start_fleet "$tmpdir/cloud1.log" "$tmpdir/edge1.log" "$tmpdir/devices1.log"

# Wait for the first checkpoint, then SIGKILL the cloud mid-run (or
# just after completion — the resume path below handles both).
i=0
while [ $i -lt 300 ]; do
    if ls "$ckptdir"/*.ckpt > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$cpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if ! ls "$ckptdir"/*.ckpt > /dev/null 2>&1; then
    echo "no checkpoint appeared in $ckptdir:"
    cat "$tmpdir/cloud1.log"
    exit 1
fi
kill -9 "$cpid" 2>/dev/null || true
kill "$epid" "$dpid" 2>/dev/null || true
wait "$cpid" "$epid" "$dpid" 2>/dev/null || true

start_fleet "$tmpdir/cloud2.log" "$tmpdir/edge2.log" "$tmpdir/devices2.log"
grep -q "resuming from checkpoint" "$tmpdir/cloud2.log" || {
    echo "restarted cloud did not resume from checkpoint:"
    cat "$tmpdir/cloud2.log"
    exit 1
}
i=0
while [ $i -lt 600 ]; do
    if grep -q "training complete" "$tmpdir/cloud2.log"; then
        break
    fi
    if ! kill -0 "$cpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q "training complete" "$tmpdir/cloud2.log" || {
    echo "resumed cloud never completed training:"
    cat "$tmpdir/cloud2.log"
    tail -n 5 "$tmpdir/edge2.log" "$tmpdir/devices2.log"
    exit 1
}
kill "$cpid" "$epid" "$dpid" 2>/dev/null || true
echo ok

echo "== million-device scale-out smoke =="
# The scale acceptance gate: a 1M-device / 1k-edge lazy-store run must
# finish and keep peak RSS bounded by the cohort (ceiling 2 GiB; the
# run sits around ~300 MiB) with at most -resident-cap models
# materialized. The run also arms the full observability stack — while
# it is live, the dashboard and query/alert APIs must serve, the series
# count must stay under the tsdb budget, cardinality governance must
# fold the 1k-edge divergence family (dropped counter > 0), and no SLO
# may fire on a fault-free run.
"$tmpdir/middlesim" -exp scale -devices 1000000 -edges 1000 \
    -k 1 -tc 2 -steps 2 -resident-cap 4096 \
    -metrics-addr 127.0.0.1:0 -slo default > "$tmpdir/scale.log" 2>&1 &
scpid=$!
pids="$pids $scpid"
scaddr=$(scrape_addr "$tmpdir/scale.log" "metrics listening on")
obsok=""
i=0
while [ $i -lt 600 ]; do
    count=$(curl -fsS "http://$scaddr/api/series" 2>/dev/null |
        sed -n 's/.*"count":\([0-9]*\).*/\1/p')
    if [ -n "$count" ] && [ "$count" -gt 0 ] && [ "$count" -le 4096 ] &&
        curl -fsS "http://$scaddr/dashboard" 2>/dev/null |
        grep -q 'middle dashboard' &&
        curl -fsS "http://$scaddr/api/query?series=obs_series" 2>/dev/null |
        grep -q '"points":\[\[' &&
        curl -fsS "http://$scaddr/metrics" 2>/dev/null |
        grep 'obs_dropped_series_total{family="hfl_edge_divergence"}' |
        grep -qv ' 0$' &&
        curl -fsS "http://$scaddr/api/alerts" 2>/dev/null |
        grep -q '"firing": 0'; then
        obsok=yes
        break
    fi
    if ! kill -0 "$scpid" 2>/dev/null; then
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
wait "$scpid" || {
    echo "million-device scale run failed (or an SLO fired fault-free):"
    cat "$tmpdir/scale.log"
    exit 1
}
if [ -z "$obsok" ]; then
    echo "observability endpoints never satisfied the scale gate" \
        "(series count bounded, divergence family folded, zero firing SLOs)"
    cat "$tmpdir/scale.log"
    exit 1
fi
cat "$tmpdir/scale.log"
rss=$(sed -n 's/.*peak_rss_mib=\([0-9]*\).*/\1/p' "$tmpdir/scale.log")
if [ -z "$rss" ]; then
    echo "scale run never reported peak_rss_mib"
    exit 1
fi
if [ "$rss" -ge 2048 ]; then
    echo "peak RSS ${rss} MiB breaches the 2 GiB scale ceiling"
    exit 1
fi
resident=$(sed -n 's/.*peak_resident_models=\([0-9]*\).*/\1/p' "$tmpdir/scale.log")
if [ -z "$resident" ] || [ "$resident" -gt 4096 ]; then
    echo "peak resident models ${resident:-unreported} exceeds the 4096 cap"
    exit 1
fi
# Nonsensical combination must be rejected with a clear message.
if "$tmpdir/middlesim" -exp scale -devices 1000 -edges 10 -k 5 \
    -resident-cap 49 > "$tmpdir/scale_bad.log" 2>&1; then
    echo "cohort > resident-cap was not rejected"
    exit 1
fi
grep -q "cohort" "$tmpdir/scale_bad.log" || {
    echo "rejection message does not explain the cohort constraint:"
    cat "$tmpdir/scale_bad.log"
    exit 1
}
echo ok

echo "== live-migration smoke =="
# Deployment handover: a high-mobility in-process fednet deployment with
# -live-migration must complete at least one successful handover — the
# summary's ok count is fednet_migrations_total{outcome="ok"}.
"$tmpdir/middlesim" -exp scale -devices 24 -edges 3 -k 2 -tc 2 -steps 8 \
    -mux 2 -p 0.6 -seed 3 -live-migration > "$tmpdir/mig_deploy.log" 2>&1 || {
    echo "live-migration deployment run failed:"
    cat "$tmpdir/mig_deploy.log"
    exit 1
}
grep -Eq 'migrations: [1-9][0-9]* ok' "$tmpdir/mig_deploy.log" || {
    echo "deployment reported no successful migrations:"
    cat "$tmpdir/mig_deploy.log"
    exit 1
}
# Cluster.Stranded() rides in the deployment summary; a fault-free run
# must end with every device attached somewhere.
grep -q ' 0 stranded devices' "$tmpdir/mig_deploy.log" || {
    echo "fault-free deployment ended with stranded devices:"
    cat "$tmpdir/mig_deploy.log"
    exit 1
}
# Seeded handover chaos in the simulator mirror: with half the handovers
# lost in transit, every failure must degrade to drop-and-reconnect and
# the run still exits 0 with both outcomes accounted.
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration -migration-fail-rate 0.5 \
    > "$tmpdir/mig_chaos.log" 2>&1 || {
    echo "seeded handover-chaos run failed (fallback must keep it alive):"
    cat "$tmpdir/mig_chaos.log"
    exit 1
}
grep -Eq 'migrations: [0-9]+ ok, [1-9][0-9]* fallbacks' "$tmpdir/mig_chaos.log" || {
    echo "handover chaos produced no fallback outcomes:"
    cat "$tmpdir/mig_chaos.log"
    exit 1
}
# Migrate-vs-drop comparison: the same seeded run with every handover
# succeeding vs every handover dropped (= today's cold rejoin); record
# both accuracies so regressions in the Eq. 9 resume path are visible.
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration > "$tmpdir/mig_ok.log" 2>&1 || {
    echo "migrate-path comparison run failed:"
    cat "$tmpdir/mig_ok.log"
    exit 1
}
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -live-migration -migration-fail-rate 1 \
    > "$tmpdir/mig_drop.log" 2>&1 || {
    echo "drop-path comparison run failed:"
    cat "$tmpdir/mig_drop.log"
    exit 1
}
macc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/mig_ok.log")
dacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/mig_drop.log")
if [ -z "$macc" ] || [ -z "$dacc" ]; then
    echo "comparison runs reported no final accuracy (migrate='$macc' drop='$dacc')"
    exit 1
fi
mkdir -p results
printf 'migrate_vs_drop: migrate_acc=%s drop_acc=%s (mnist, 60 devices / 3 edges, p=0.6, seed 3)\n' \
    "$macc" "$dacc" | tee results/migration_compare.txt
echo ok

echo "== self-healing simulator smoke =="
# Seeded edge-crash chaos in the simulator: crashes must trigger
# failovers and device re-homing, bump the membership epoch, and still
# let the run finish with nobody permanently stranded (the simulator
# mirror re-homes synchronously, so any strand would be a bug).
"$tmpdir/middlesim" -exp scale -devices 60 -edges 3 -k 2 -tc 2 -steps 20 \
    -p 0.6 -seed 3 -self-healing -edge-fail-rate 0.25 -edge-recover-steps 3 \
    > "$tmpdir/selfheal.log" 2>&1 || {
    echo "self-healing simulator run failed:"
    cat "$tmpdir/selfheal.log"
    exit 1
}
grep -Eq 'self-healing: [1-9][0-9]* edge failovers, [1-9][0-9]* devices re-homed, membership epoch [1-9]' \
    "$tmpdir/selfheal.log" || {
    echo "seeded crashes produced no failover/re-home accounting:"
    cat "$tmpdir/selfheal.log"
    exit 1
}
# Deployment counterpart: -membership arms the lease detector on the
# in-process fednet cluster; a fault-free run keeps failovers at 0 and
# reports the epoch reached by the initial joins.
"$tmpdir/middlesim" -exp scale -devices 24 -edges 3 -k 2 -tc 2 -steps 6 \
    -mux 2 -p 0.6 -seed 3 -membership > "$tmpdir/memb_deploy.log" 2>&1 || {
    echo "membership deployment run failed:"
    cat "$tmpdir/memb_deploy.log"
    exit 1
}
grep -Eq 'membership: 0 edge failovers, 0 devices re-homed, epoch [1-9]' \
    "$tmpdir/memb_deploy.log" || {
    echo "fault-free membership deployment mis-reported:"
    cat "$tmpdir/memb_deploy.log"
    exit 1
}
grep -q ' 0 stranded devices' "$tmpdir/memb_deploy.log" || {
    echo "membership deployment ended with stranded devices:"
    cat "$tmpdir/memb_deploy.log"
    exit 1
}
echo ok

echo "== middled graceful-shutdown (SIGTERM) smoke =="
# SIGTERM mid-run must drain the in-flight round, write a final
# checkpoint, flush telemetry and exit 0 — not die mid-write.
gsdir="$tmpdir/gsckpt"
mkdir -p "$gsdir"
# -round-interval paces the schedule so the run is still mid-flight
# when the signal lands (device-less rounds otherwise finish in
# microseconds while the devices process is still loading its data).
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 2000 -tc 2 \
    -round-interval 100ms -checkpoint-dir "$gsdir" > "$tmpdir/gs_cloud.log" 2>&1 &
gcpid=$!
pids="$pids $gcpid"
gcaddr=$(scrape_addr "$tmpdir/gs_cloud.log" "cloud listening on")
"$tmpdir/middled" -role edge -id 0 -cloud "$gcaddr" -addr 127.0.0.1:0 \
    -strategy MIDDLE -k 2 > "$tmpdir/gs_edge.log" 2>&1 &
gepid=$!
pids="$pids $gepid"
geaddr=$(scrape_addr "$tmpdir/gs_edge.log" "serving devices on")
"$tmpdir/middled" -role devices -edgeaddrs "$geaddr" -from 0 -to 3 \
    > "$tmpdir/gs_devices.log" 2>&1 &
gdpid=$!
pids="$pids $gdpid"
i=0
while [ $i -lt 300 ]; do
    if grep -q "attached to edge" "$tmpdir/gs_devices.log" &&
        ls "$gsdir"/*.ckpt > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$gcpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
kill -TERM "$gcpid" 2>/dev/null || true
gsrc=0
wait "$gcpid" || gsrc=$?
if [ "$gsrc" -ne 0 ]; then
    echo "SIGTERM'd cloud exited $gsrc, want 0:"
    cat "$tmpdir/gs_cloud.log"
    exit 1
fi
grep -q "shutting down gracefully" "$tmpdir/gs_cloud.log" || {
    echo "cloud never acknowledged the signal:"
    cat "$tmpdir/gs_cloud.log"
    exit 1
}
grep -q "graceful stop after round" "$tmpdir/gs_cloud.log" || {
    echo "cloud did not drain the in-flight round before exiting:"
    cat "$tmpdir/gs_cloud.log"
    exit 1
}
ls "$gsdir"/*.ckpt > /dev/null 2>&1 || {
    echo "no checkpoint survived the graceful shutdown in $gsdir"
    exit 1
}
# The final checkpoint must be loadable: a resumed cloud over the same
# directory has to come up cleanly from it.
"$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 1 -rounds 2000 -tc 2 \
    -checkpoint-dir "$gsdir" > "$tmpdir/gs_cloud2.log" 2>&1 &
gc2pid=$!
pids="$pids $gc2pid"
i=0
while [ $i -lt 100 ]; do
    if grep -q "resuming from checkpoint" "$tmpdir/gs_cloud2.log"; then
        break
    fi
    if ! kill -0 "$gc2pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q "resuming from checkpoint" "$tmpdir/gs_cloud2.log" || {
    echo "graceful-shutdown checkpoint did not load on restart:"
    cat "$tmpdir/gs_cloud2.log"
    exit 1
}
kill -TERM "$gdpid" 2>/dev/null || true
wait "$gdpid" 2>/dev/null || true
grep -q "detached" "$tmpdir/gs_devices.log" || {
    echo "devices did not detach cleanly on SIGTERM:"
    cat "$tmpdir/gs_devices.log"
    exit 1
}
kill "$gepid" "$gc2pid" 2>/dev/null || true
wait "$gepid" "$gc2pid" 2>/dev/null || true
echo ok

echo "== self-healing failover chaos smoke =="
# The membership acceptance gate, on real processes: SIGKILL one of
# three edges mid-run. The lease detector must declare it dead, every
# orphaned device must fail over to a survivor (stranded gauge back to
# 0), restarting the edge must rejoin it under a bumped epoch, and the
# run must finish within 0.05 accuracy of a fault-free baseline.
start_memb_fleet() {
    # $1: log prefix. Sets mcpid/mcaddr, medge0..2 pids, mea0..2 addrs,
    # mdpid. Devices run dedicated clients with -failover so they can
    # re-home on their own.
    # -round-interval keeps the schedule on wall-clock pace so devices
    # attach within the first rounds and the kill lands mid-run.
    "$tmpdir/middled" -role cloud -addr 127.0.0.1:0 -edges 3 -rounds 30 \
        -tc 2 -round-interval 400ms -membership -lease-interval 200ms \
        > "$1_cloud.log" 2>&1 &
    mcpid=$!
    pids="$pids $mcpid"
    mcaddr=$(scrape_addr "$1_cloud.log" "cloud listening on")
    for eid in 0 1 2; do
        "$tmpdir/middled" -role edge -id "$eid" -cloud "$mcaddr" \
            -addr 127.0.0.1:0 -strategy MIDDLE -k 2 > "$1_edge$eid.log" 2>&1 &
        eval "medge$eid=$!"
        pids="$pids $!"
        eval "mea$eid=\$(scrape_addr \"$1_edge$eid.log\" 'serving devices on')"
    done
    "$tmpdir/middled" -role devices -edgeaddrs "$mea0,$mea1,$mea2" \
        -from 0 -to 8 -failover -p 0.4 -movems 300 \
        -metrics-addr 127.0.0.1:0 > "$1_devices.log" 2>&1 &
    mdpid=$!
    pids="$pids $mdpid"
}

wait_cloud_log() {
    # $1: cloud log, $2: pattern, $3: ticks of 0.1s, $4: description
    i=0
    while [ $i -lt "$3" ]; do
        if grep -q "$2" "$1"; then
            return 0
        fi
        if ! kill -0 "$mcpid" 2>/dev/null; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if ! grep -q "$2" "$1"; then
        echo "$4 (\"$2\" never appeared in $1):"
        tail -n 30 "$1"
        exit 1
    fi
}

# Fault-free baseline.
start_memb_fleet "$tmpdir/base"
wait_cloud_log "$tmpdir/base_cloud.log" "training complete" 1200 "baseline run stalled"
baseacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/base_cloud.log")
kill -TERM "$mdpid" 2>/dev/null || true
kill "$medge0" "$medge1" "$medge2" 2>/dev/null || true
wait "$mcpid" "$mdpid" "$medge0" "$medge1" "$medge2" 2>/dev/null || true

# Chaos run: SIGKILL edge 1 once devices are attached and training is
# under way.
start_memb_fleet "$tmpdir/chaos"
i=0
while [ $i -lt 300 ]; do
    if grep -q "attached to edge" "$tmpdir/chaos_devices.log"; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
wait_cloud_log "$tmpdir/chaos_cloud.log" "round 4 synced" 1200 "chaos run never reached round 4"
kill -9 "$medge1" 2>/dev/null || true
wait_cloud_log "$tmpdir/chaos_cloud.log" "edge 1 declared dead" 300 "lease detector never declared the killed edge dead"
# Devices orphaned by the kill must re-home to a survivor on their own.
i=0
while [ $i -lt 300 ]; do
    if grep -q "failed over from edge 1" "$tmpdir/chaos_devices.log"; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q "failed over from edge 1" "$tmpdir/chaos_devices.log" || {
    echo "no device failed over off the killed edge:"
    tail -n 30 "$tmpdir/chaos_devices.log"
    exit 1
}
# Restart the edge on its old address with the same id: the cloud must
# readmit it as a rejoin under a bumped membership epoch.
"$tmpdir/middled" -role edge -id 1 -cloud "$mcaddr" -addr "$mea1" \
    -strategy MIDDLE -k 2 > "$tmpdir/chaos_edge1b.log" 2>&1 &
medge1b=$!
pids="$pids $medge1b"
wait_cloud_log "$tmpdir/chaos_cloud.log" "edge 1 rejoined at epoch" 600 "restarted edge never rejoined"
# With the full fleet healthy again, the device-side stranded gauge
# must read 0 — nobody is permanently stranded by the outage.
mdaddr=$(scrape_addr "$tmpdir/chaos_devices.log" "metrics listening on")
strandok=""
i=0
while [ $i -lt 300 ]; do
    sval=$(curl -fsS "http://$mdaddr/metrics" 2>/dev/null |
        sed -n 's/^fednet_stranded_devices \([0-9.]*\)$/\1/p')
    if [ "$sval" = "0" ]; then
        strandok=yes
        break
    fi
    if ! kill -0 "$mcpid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$strandok" ]; then
    echo "stranded-device gauge never returned to 0 after the rejoin (last: '$sval')"
    tail -n 30 "$tmpdir/chaos_devices.log"
    exit 1
fi
wait_cloud_log "$tmpdir/chaos_cloud.log" "training complete" 1800 "chaos run stalled"
chaosacc=$(sed -n 's/.*final accuracy \([0-9.]*\).*/\1/p' "$tmpdir/chaos_cloud.log")
kill -TERM "$mdpid" 2>/dev/null || true
kill "$medge0" "$medge1b" "$medge2" 2>/dev/null || true
wait "$mcpid" "$mdpid" "$medge0" "$medge1b" "$medge2" 2>/dev/null || true
# A device that exhausts every candidate logs a hard strand; the chaos
# window leaves two live survivors, so that must never happen.
if grep -q "no failover candidate reachable" "$tmpdir/chaos_devices.log"; then
    echo "a device exhausted all failover candidates during the outage:"
    grep "no failover candidate reachable" "$tmpdir/chaos_devices.log"
    exit 1
fi
if [ -z "$baseacc" ] || [ -z "$chaosacc" ]; then
    echo "runs reported no final accuracy (base='$baseacc' chaos='$chaosacc')"
    exit 1
fi
accok=$(awk -v b="$baseacc" -v c="$chaosacc" 'BEGIN { print (c >= b - 0.05) ? "yes" : "" }')
if [ -z "$accok" ]; then
    echo "chaos accuracy $chaosacc fell more than 0.05 below baseline $baseacc"
    exit 1
fi
echo "failover chaos: baseline acc $baseacc, chaos acc $chaosacc"
echo ok

echo "All checks passed."
