package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// failAfterWriter fails every write after the first n, exercising the
// emitter's first-error latch under contention.
type failAfterWriter struct {
	mu sync.Mutex
	n  int
	ok int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ok >= w.n {
		return 0, errors.New("disk full")
	}
	w.ok++
	return len(p), nil
}

func TestEmitterConcurrentErrorLatch(t *testing.T) {
	w := &failAfterWriter{n: 5}
	em := NewEmitter(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				em.Emit("tick", "i", i)
			}
		}()
	}
	wg.Wait()
	if em.Err() == nil {
		t.Fatal("write errors not surfaced")
	}
	if w.ok != 5 {
		t.Fatalf("%d writes landed, want 5", w.ok)
	}
}

func TestEmitterConcurrentDistinctFields(t *testing.T) {
	// Beyond interleaving (covered by TestEmitterConcurrent), check no
	// emit loses or cross-contaminates its fields under contention.
	var buf bytes.Buffer
	em := NewEmitter(&buf)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				em.Emit("sample", "worker", g, "seq", i)
			}
		}(g)
	}
	wg.Wait()
	if em.Err() != nil {
		t.Fatal(em.Err())
	}
	seen := map[[2]int]bool{}
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj struct {
			Event  string `json:"event"`
			Worker int    `json:"worker"`
			Seq    int    `json:"seq"`
		}
		if err := json.Unmarshal([]byte(l), &obj); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if obj.Event != "sample" {
			t.Fatalf("event %q", obj.Event)
		}
		key := [2]int{obj.Worker, obj.Seq}
		if seen[key] {
			t.Fatalf("duplicate emit %v", key)
		}
		seen[key] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("%d distinct emits, want %d", len(seen), workers*per)
	}
}

func TestLabelEscapingAllSpecials(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("escn_total", "path", "line1\nline2").Inc()
	reg.Counter("escm_total", "path", `q"uote`, "dir", `back\slash`).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`escn_total{path="line1\nline2"} 1`,
		`escm_total{path="q\"uote",dir="back\\slash"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	if strings.Contains(out, "line1\nline2") {
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
}
