package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestQuantileBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 observations in (1,2], none elsewhere: cum = [0,10,10,10].
	cum := []int64{0, 10, 10, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1.1},   // rank clamps to 1 → 10% into the (1,2] bucket
		{0.1, 1.1}, // rank 1 exactly at the first observation
		{0.5, 1.5}, // midpoint interpolation
		{1, 2},     // upper boundary of the winning bucket, exactly
		{0.999, 1.999},
	}
	for _, c := range cases {
		got := QuantileFromBuckets(bounds, cum, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	bounds := []float64{10, 20}
	cum := []int64{4, 4, 4} // all mass in (0,10]
	if got := QuantileFromBuckets(bounds, cum, 0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("median of first bucket = %g, want 5 (lower edge 0)", got)
	}
	if got := QuantileFromBuckets(bounds, cum, 1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("q=1 = %g, want the bucket's upper bound 10", got)
	}
}

func TestQuantileInfBucketClamps(t *testing.T) {
	bounds := []float64{1, 2}
	cum := []int64{0, 0, 5} // everything beyond the finite bounds
	if got := QuantileFromBuckets(bounds, cum, 0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to 2", got)
	}
}

func TestQuantileDegenerateInputs(t *testing.T) {
	if got := QuantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty = %g, want 0", got)
	}
	if got := QuantileFromBuckets([]float64{1}, []int64{0, 0}, 0.5); got != 0 {
		t.Fatalf("no observations = %g, want 0", got)
	}
	// Mismatched lengths are rejected, not misread.
	if got := QuantileFromBuckets([]float64{1, 2}, []int64{1, 1}, 0.5); got != 0 {
		t.Fatalf("mismatched = %g, want 0", got)
	}
}

func TestHistogramQuantileMatchesBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	// 20 obs: ranks ≤10 land in (1,2], above in (2,4].
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p50 = %g, want 2 (boundary of the two buckets)", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Fatalf("p75 = %g, want 3 (midpoint of (2,4])", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

// TestScrapeNeverBlocksHotPath pins the lock discipline the tsdb relies
// on: Collect/WritePrometheus hold the registry mutex only to copy the
// series list, so hot-path Inc/Observe proceed even while a scrape's
// GaugeFunc is stuck. A GaugeFunc that blocks forever would deadlock
// this test within the timeout if scraping held the lock throughout.
func TestScrapeNeverBlocksHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total")
	h := r.Histogram("hot_seconds", []float64{1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	r.GaugeFunc("slow_gauge", func() float64 {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
		return 1
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = r.Collect()
	}()
	<-entered // scrape is now inside the (stuck) GaugeFunc

	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			c.Inc()
			h.Observe(0.5)
			// New registrations must also proceed: the registry mutex is
			// free while the GaugeFunc runs.
			r.Counter("concurrent_total", "i", "x")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hot path blocked behind an in-flight scrape")
	}
	close(gate)
	wg.Wait()
	if c.Value() != 1000 {
		t.Fatalf("counter = %d, want 1000", c.Value())
	}
}
