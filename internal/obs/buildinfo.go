package obs

import (
	"runtime/debug"
	"sync"
)

// Build identifies the binary that produced a run: the Go toolchain
// version and the VCS stamp the toolchain embeds at build time. It is
// the correlation key between a live /status page, a run summary and a
// postmortem bundle on one side and a commit on the other.
type Build struct {
	GoVersion   string `json:"go_version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified string `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// ReadBuild returns the binary's build identity, cached after the first
// call. Fields are empty when the binary was built outside a VCS
// checkout (e.g. `go test` binaries).
func ReadBuild() Build {
	buildOnce.Do(func() {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = info.GoVersion
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value
			}
		}
	})
	return buildInfo
}

// Map returns the build identity as a generic map for JSON manifests,
// omitting empty fields.
func (b Build) Map() map[string]any {
	m := map[string]any{}
	if b.GoVersion != "" {
		m["go_version"] = b.GoVersion
	}
	if b.VCSRevision != "" {
		m["vcs_revision"] = b.VCSRevision
	}
	if b.VCSTime != "" {
		m["vcs_time"] = b.VCSTime
	}
	if b.VCSModified != "" {
		m["vcs_modified"] = b.VCSModified
	}
	return m
}
