package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives every instrument type from many
// goroutines at once; run under -race this is the package's
// thread-safety proof, and the final values check for lost updates.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000

	c := reg.Counter("hammer_total")
	g := reg.Gauge("hammer_gauge")
	h := reg.Histogram("hammer_seconds", []float64{0.25, 0.5, 0.75})
	sp := reg.Span("hammer_span_seconds", "phase", "x")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
				tok := sp.Begin()
				tok.End()
				// Same-series re-registration must return the shared
				// instrument, not a fresh one.
				reg.Counter("hammer_total").Inc()
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != 2*workers*perWorker {
		t.Fatalf("counter lost updates: %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge lost updates: %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram lost observations: %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum %v, want %v", h.Sum(), wantSum)
	}
	cum := h.snapshotBuckets()
	if cum[len(cum)-1] != workers*perWorker {
		t.Fatalf("+Inf bucket %d, want %d", cum[len(cum)-1], workers*perWorker)
	}
	if sp.h.Count() != workers*perWorker {
		t.Fatalf("span recorded %d, want %d", sp.h.Count(), workers*perWorker)
	}
}

// TestPrometheusGolden pins the exposition format end to end.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_requests_total", "link", "device_edge").Add(3)
	reg.Counter("b_requests_total", "link", "edge_cloud").Add(5)
	reg.Gauge("a_temperature").Set(1.5)
	h := reg.Histogram("c_latency_seconds", []float64{0.1, 1}, "phase", "train")
	// Binary-exact values keep the _sum line reproducible.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_temperature gauge
a_temperature 1.5
# TYPE b_requests_total counter
b_requests_total{link="device_edge"} 3
b_requests_total{link="edge_cloud"} 5
# TYPE c_latency_seconds histogram
c_latency_seconds_bucket{phase="train",le="0.1"} 1
c_latency_seconds_bucket{phase="train",le="1"} 3
c_latency_seconds_bucket{phase="train",le="+Inf"} 4
c_latency_seconds_sum{phase="train"} 4.0625
c_latency_seconds_count{phase="train"} 4
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "path", `a"b\c`).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total")
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 7.25
	reg.GaugeFunc("live_value", func() float64 { return v })
	snap := reg.Snapshot()
	if snap["live_value"] != 7.25 {
		t.Fatalf("snapshot %v", snap["live_value"])
	}
	v = 8
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "live_value 8\n") {
		t.Fatalf("gauge func not re-evaluated:\n%s", buf.String())
	}
}

func TestSnapshotShapes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap_total").Add(2)
	reg.Histogram("snap_seconds", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	if snap["snap_total"] != int64(2) {
		t.Fatalf("counter snapshot %v (%T)", snap["snap_total"], snap["snap_total"])
	}
	hm, ok := snap["snap_seconds"].(map[string]any)
	if !ok || hm["count"] != int64(1) || hm["sum"] != 0.5 {
		t.Fatalf("histogram snapshot %#v", snap["snap_seconds"])
	}
	// The snapshot must be JSON-encodable as-is (it feeds WriteSummary).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	c := reg.Counter("nope_total")
	c.Inc()
	c.Add(5)
	g := reg.Gauge("nope")
	g.Set(1)
	g.Add(1)
	h := reg.Histogram("nope_seconds", nil)
	h.Observe(1)
	sp := reg.Span("nope_span")
	sp.Begin().End()
	sp.Observe(time.Second)
	reg.GaugeFunc("nope_fn", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitterJSONL(t *testing.T) {
	var buf bytes.Buffer
	em := NewEmitter(&buf)
	em.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	em.Emit("round_done", "round", 7, "trained", 12)
	em.Emit("run_end", "ok", true)
	if em.Err() != nil {
		t.Fatal(em.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %q", lines)
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["event"] != "round_done" || first["round"] != 7.0 || first["ts"] != "2026-08-05T12:00:00Z" {
		t.Fatalf("event %v", first)
	}
	// Nil emitter is inert.
	var nilEm *Emitter
	nilEm.Emit("x")
	if nilEm.Err() != nil {
		t.Fatal("nil emitter error")
	}
}

func TestEmitterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	em := NewEmitter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				em.Emit("tick", "i", i)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines, want 400", len(lines))
	}
	for _, l := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(l), &obj); err != nil {
			t.Fatalf("interleaved line %q: %v", l, err)
		}
	}
}
