package flight

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"middle/internal/obs"
)

// ProfilerConfig configures the continuous profiler.
type ProfilerConfig struct {
	// Registry receives the profile_cpu_seconds_total{phase} and
	// profile_alloc_bytes_total{phase} series (required).
	Registry *obs.Registry
	// Interval is the CPU-profile window length: the profiler runs
	// back-to-back windows of this size, attributing each to phases as
	// it closes (default 5s).
	Interval time.Duration
}

// Profiler samples the process continuously: back-to-back CPU-profile
// windows whose samples are attributed to phases via the pprof "phase"
// label that BeginPhase sets, published as cumulative per-phase series
// the tsdb scrapes and SLO rules can reduce. Starting a profiler makes
// it the process's active one (BeginPhase consults it); Close detaches
// and stops it. A nil *Profiler is inert.
type Profiler struct {
	cfg ProfilerConfig

	// labelCtxs caches one pprof-labeled context per phase so BeginPhase
	// on a warm phase does not rebuild the label set.
	labelMu   sync.RWMutex
	labelCtxs map[string]context.Context

	// last holds the most recently closed window's raw profile bytes so
	// a Capture has a CPU profile without waiting a full window.
	lastMu sync.Mutex
	last   []byte

	windows  *obs.Counter
	failures *obs.Counter

	force    chan chan []byte
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartProfiler launches the windowed capture loop and installs the
// profiler as the process's active one. It fails when another profiler
// is already active or cfg.Registry is nil.
func StartProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("flight: ProfilerConfig.Registry is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	p := &Profiler{
		cfg:       cfg,
		labelCtxs: map[string]context.Context{},
		windows:   cfg.Registry.Counter("profile_windows_total"),
		failures:  cfg.Registry.Counter("profile_window_failures_total"),
		force:     make(chan chan []byte),
		stop:      make(chan struct{}),
	}
	if !active.CompareAndSwap(nil, p) {
		return nil, fmt.Errorf("flight: a profiler is already active in this process")
	}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// Close stops the capture loop and detaches the profiler from
// BeginPhase. Nil-safe; idempotent.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	active.CompareAndSwap(p, nil)
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Snapshot closes the in-flight CPU window early, ingests it, and
// returns its raw pprof bytes — the recorder's way to put a CPU profile
// in a bundle without conflicting with the runtime's single-profiler
// limit. Falls back to the last closed window when the loop is gone.
// Nil-safe (returns nil).
func (p *Profiler) Snapshot() []byte {
	if p == nil {
		return nil
	}
	reply := make(chan []byte, 1)
	select {
	case p.force <- reply:
		return <-reply
	case <-p.stop:
		p.lastMu.Lock()
		defer p.lastMu.Unlock()
		return append([]byte(nil), p.last...)
	}
}

// loop runs back-to-back profile windows until Close.
func (p *Profiler) loop() {
	defer p.wg.Done()
	var buf bytes.Buffer
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		buf.Reset()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Another profiler holds the runtime slot (e.g. an in-flight
			// /debug/pprof/profile request); count it and wait a window.
			p.failures.Inc()
			select {
			case <-time.After(p.cfg.Interval):
			case reply := <-p.force:
				p.lastMu.Lock()
				reply <- append([]byte(nil), p.last...)
				p.lastMu.Unlock()
			case <-p.stop:
				return
			}
			continue
		}
		var reply chan []byte
		select {
		case <-time.After(p.cfg.Interval):
		case reply = <-p.force:
		case <-p.stop:
			pprof.StopCPUProfile()
			p.ingest(buf.Bytes())
			return
		}
		pprof.StopCPUProfile()
		p.ingest(buf.Bytes())
		if reply != nil {
			reply <- append([]byte(nil), buf.Bytes()...)
		}
	}
}

// ingest parses one closed window and adds its per-phase CPU time to
// the cumulative gauges; the raw bytes are kept for Snapshot/Capture.
func (p *Profiler) ingest(raw []byte) {
	p.lastMu.Lock()
	p.last = append(p.last[:0], raw...)
	p.lastMu.Unlock()
	p.windows.Inc()
	prof, err := ParseCPUProfile(raw)
	if err != nil {
		p.failures.Inc()
		return
	}
	for phase, ns := range prof.Phases {
		p.cpuGauge(phase).Add(float64(ns) / 1e9)
	}
}

// labelCtx returns the cached pprof-labeled context for a phase.
func (p *Profiler) labelCtx(phase string) context.Context {
	p.labelMu.RLock()
	ctx, ok := p.labelCtxs[phase]
	p.labelMu.RUnlock()
	if ok {
		return ctx
	}
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if ctx, ok = p.labelCtxs[phase]; ok {
		return ctx
	}
	ctx = pprof.WithLabels(context.Background(), pprof.Labels("phase", phase))
	p.labelCtxs[phase] = ctx
	return ctx
}

// cpuGauge and allocGauge resolve the per-phase cumulative series; the
// registry dedups registration, so resolving per window is cheap.
// Gauges (not counters) because the values are fractional seconds /
// byte floats fed by Add.
func (p *Profiler) cpuGauge(phase string) *obs.Gauge {
	return p.cfg.Registry.Gauge("profile_cpu_seconds_total", "phase", phase)
}

func (p *Profiler) allocGauge(phase string) *obs.Gauge {
	return p.cfg.Registry.Gauge("profile_alloc_bytes_total", "phase", phase)
}
