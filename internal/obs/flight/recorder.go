package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"middle/internal/obs"
	"middle/internal/obs/slo"
	"middle/internal/obs/tsdb"
)

// EventRing is a bounded ring of recent JSONL event lines. It is an
// io.Writer made to sit behind an obs.Emitter (which writes exactly one
// line per Write call), usually teed with the real event sink, so the
// recorder always has the last N events even when nothing persists
// them. Nil-safe: a nil ring's methods no-op.
type EventRing struct {
	mu    sync.Mutex
	lines [][]byte
	next  int
	full  bool
}

// DefaultEventRingSize is the NewEventRing default: 4096 recent events,
// a few hundred KiB at typical line sizes.
const DefaultEventRingSize = 4096

// NewEventRing returns a ring keeping the last n event lines
// (n <= 0 selects DefaultEventRingSize).
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		n = DefaultEventRingSize
	}
	return &EventRing{lines: make([][]byte, n)}
}

// Write stores one event line (implements io.Writer; always succeeds).
func (r *EventRing) Write(p []byte) (int, error) {
	if r == nil {
		return len(p), nil
	}
	r.mu.Lock()
	r.lines[r.next] = append(r.lines[r.next][:0], p...)
	r.next++
	if r.next == len(r.lines) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
	return len(p), nil
}

// Snapshot returns the buffered lines, oldest first.
func (r *EventRing) Snapshot() [][]byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out [][]byte
	if r.full {
		for i := r.next; i < len(r.lines); i++ {
			out = append(out, append([]byte(nil), r.lines[i]...))
		}
	}
	for i := 0; i < r.next; i++ {
		out = append(out, append([]byte(nil), r.lines[i]...))
	}
	return out
}

// Tee returns a writer feeding both the ring and w. Either side may be
// nil; when both are, it returns nil (which obs.NewEmitter treats as
// "no sink", keeping the emitter inert).
func (r *EventRing) Tee(w io.Writer) io.Writer {
	if r == nil {
		return w
	}
	if w == nil {
		return r
	}
	return teeWriter{ring: r, w: w}
}

type teeWriter struct {
	ring *EventRing
	w    io.Writer
}

func (t teeWriter) Write(p []byte) (int, error) {
	_, _ = t.ring.Write(p)
	return t.w.Write(p)
}

// RecorderConfig wires a Recorder to the run's observability state.
// Only Dir is required; every other source is optional and its bundle
// file is simply absent when nil.
type RecorderConfig struct {
	// Dir is where bundles land (created if missing).
	Dir string
	// Manifest identifies the run (name, argv, flags/seed in Extra);
	// build info is filled in at capture time.
	Manifest obs.Manifest
	// Registry provides the metrics snapshot.
	Registry *obs.Registry
	// Store provides the tsdb dump.
	Store *tsdb.Store
	// Engine provides SLO alert state and Breached.
	Engine *slo.Engine
	// Trace provides the span collector dump.
	Trace *obs.Trace
	// Events is the recent-event ring.
	Events *EventRing
	// MaxBundles bounds how many bundles Dir retains; older ones are
	// pruned after each capture (default 8, negative = unlimited).
	MaxBundles int
}

// Recorder captures postmortem bundles: timestamped directories
// holding everything needed to explain a failure after the process is
// gone. Captures are atomic (written to a .partial directory, then
// renamed) so a bundle either exists completely or not at all.
// A nil *Recorder is fully inert.
type Recorder struct {
	cfg      RecorderConfig
	profiler *Profiler

	mu  sync.Mutex
	seq int

	captures *obs.Counter
}

// NewRecorder creates cfg.Dir and returns a recorder. Fails fast on an
// uncreatable directory so a daemon won't discover at crash time that
// its black box was never writable.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: RecorderConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: creating %s: %w", cfg.Dir, err)
	}
	if cfg.MaxBundles == 0 {
		cfg.MaxBundles = 8
	}
	return &Recorder{
		cfg:      cfg,
		captures: cfg.Registry.Counter("flight_captures_total"),
	}, nil
}

// SetProfiler attaches the continuous profiler so captures include its
// current CPU window instead of competing for the runtime's single
// profiler slot. Nil-safe on both sides.
func (r *Recorder) SetProfiler(p *Profiler) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.profiler = p
	r.mu.Unlock()
}

// Capture writes one bundle named bundle-<utc>-<seq>-<reason> and
// returns its path. Concurrent captures serialize; errors on individual
// files are recorded in the bundle's manifest rather than aborting the
// capture (a partial bundle beats none at a crash site). Nil-safe
// (returns "", nil).
func (r *Recorder) Capture(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	now := time.Now().UTC()
	name := fmt.Sprintf("bundle-%s-%03d-%s",
		now.Format("20060102T150405"), r.seq, sanitizeReason(reason))
	final := filepath.Join(r.cfg.Dir, name)
	partial := final + ".partial"
	if err := os.MkdirAll(partial, 0o755); err != nil {
		return "", fmt.Errorf("flight: creating bundle dir: %w", err)
	}

	var fileErrs []string
	write := func(file string, fn func(io.Writer) error) {
		f, err := os.Create(filepath.Join(partial, file))
		if err != nil {
			fileErrs = append(fileErrs, file+": "+err.Error())
			return
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fileErrs = append(fileErrs, file+": "+err.Error())
		}
	}

	// Goroutine stacks (text, debug=2: full stacks with states).
	write("goroutines.txt", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 2)
	})
	// Heap profile (pprof proto).
	write("heap.pprof", func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	})
	// CPU profile: the profiler's current window when one is attached,
	// else a fresh short capture (skipped if the runtime slot is busy).
	if cpu := r.profiler.Snapshot(); len(cpu) > 0 {
		write("cpu.pprof", func(w io.Writer) error {
			_, err := w.Write(cpu)
			return err
		})
	} else if r.profiler == nil {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err == nil {
			time.Sleep(200 * time.Millisecond)
			pprof.StopCPUProfile()
			write("cpu.pprof", func(w io.Writer) error {
				_, err := w.Write(buf.Bytes())
				return err
			})
		} else {
			fileErrs = append(fileErrs, "cpu.pprof: "+err.Error())
		}
	}
	// tsdb history (fresh final scrape included).
	if r.cfg.Store != nil {
		r.cfg.Store.ScrapeOnce()
		write("tsdb.json", r.cfg.Store.WriteDump)
	}
	// Recent events.
	if r.cfg.Events != nil {
		write("events.jsonl", func(w io.Writer) error {
			for _, line := range r.cfg.Events.Snapshot() {
				if _, err := w.Write(line); err != nil {
					return err
				}
			}
			return nil
		})
	}
	// Trace spans.
	if r.cfg.Trace != nil {
		write("trace.json", r.cfg.Trace.WriteJSON)
	}
	// SLO state.
	if r.cfg.Engine != nil {
		write("slo.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{
				"alerts":   r.cfg.Engine.Alerts(),
				"breached": r.cfg.Engine.Breached(),
			})
		})
	}
	// Metrics snapshot.
	if r.cfg.Registry != nil {
		write("metrics.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(r.cfg.Registry.Snapshot())
		})
	}
	// Manifest last, so its "errors" list covers every other file.
	m := r.cfg.Manifest
	if m.Build == (obs.Build{}) {
		m.Build = obs.ReadBuild()
	}
	write("manifest.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"reason":      reason,
			"captured_at": now.Format(time.RFC3339Nano),
			"manifest":    m,
			"errors":      fileErrs,
		})
	})

	if err := os.Rename(partial, final); err != nil {
		return "", fmt.Errorf("flight: finalizing bundle: %w", err)
	}
	r.captures.Inc()
	r.pruneLocked()
	return final, nil
}

// pruneLocked removes the oldest bundles beyond MaxBundles (the
// lexicographic sort of the timestamped names is the age order).
func (r *Recorder) pruneLocked() {
	if r.cfg.MaxBundles < 0 {
		return
	}
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") && !strings.HasSuffix(e.Name(), ".partial") {
			bundles = append(bundles, e.Name())
		}
	}
	sort.Strings(bundles)
	for len(bundles) > r.cfg.MaxBundles {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, bundles[0]))
		bundles = bundles[1:]
	}
}

// sanitizeReason maps a free-form reason to a filesystem-safe slug.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-' || c == '_':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	const max = 64
	s := b.String()
	if len(s) > max {
		s = s[:max]
	}
	return s
}

// CapturePanic is the deferred panic hook: on a panic it captures a
// bundle (reason "panic", the panic value in the manifest via the
// reason slug) and re-panics so the crash still surfaces. Use as
// `defer rec.CapturePanic()` at goroutine roots. Nil-safe.
func (r *Recorder) CapturePanic() {
	if v := recover(); v != nil {
		if r != nil {
			_, _ = r.Capture(fmt.Sprintf("panic %v", v))
		}
		panic(v)
	}
}

// NotifySignals installs the forensic signal handlers: SIGQUIT captures
// a bundle and exits 2 (replacing the runtime's stack dump with a full
// bundle); SIGUSR1 captures and continues — a live process can be asked
// for its black box at any time. Returns a stop func. Nil-safe (no-op
// stop).
func (r *Recorder) NotifySignals() func() {
	if r == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGQUIT, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-ch:
				switch sig {
				case syscall.SIGQUIT:
					_, _ = r.Capture("sigquit")
					os.Exit(2)
				case syscall.SIGUSR1:
					_, _ = r.Capture("sigusr1")
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// Bundles lists the completed bundle directories under dir, oldest
// first.
func Bundles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") && !strings.HasSuffix(e.Name(), ".partial") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
