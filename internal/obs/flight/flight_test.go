package flight

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"middle/internal/obs"
	"middle/internal/obs/slo"
	"middle/internal/obs/tsdb"
)

// Everything in this package must be inert when nil or disabled: hot
// paths call it unconditionally.
func TestNilValuesInert(t *testing.T) {
	var r *Recorder
	if path, err := r.Capture("x"); path != "" || err != nil {
		t.Fatalf("nil Capture = %q, %v", path, err)
	}
	r.SetProfiler(nil)
	r.CapturePanic() // no panic in flight: must not capture or crash
	r.NotifySignals()()

	var ring *EventRing
	if n, err := ring.Write([]byte("ev\n")); n != 3 || err != nil {
		t.Fatalf("nil ring Write = %d, %v", n, err)
	}
	if got := ring.Snapshot(); got != nil {
		t.Fatalf("nil ring Snapshot = %v", got)
	}
	if w := ring.Tee(nil); w != nil {
		t.Fatalf("nil ring Tee(nil) = %v, want nil", w)
	}

	var p *Profiler
	p.Close()
	if b := p.Snapshot(); b != nil {
		t.Fatalf("nil profiler Snapshot = %v", b)
	}
}

// With no profiler active, BeginPhase/End must not allocate — the
// instrumentation sits on training hot paths.
func TestDisabledPhaseZeroAllocs(t *testing.T) {
	if active.Load() != nil {
		t.Fatal("a profiler is active; disabled-path test invalid")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tok := BeginPhase("local_train")
		tok.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled BeginPhase/End allocates %.1f times per op, want 0", allocs)
	}
}

func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(r, "line%d\n", i)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot holds %d lines, want 3", len(snap))
	}
	for i, want := range []string{"line2\n", "line3\n", "line4\n"} {
		if string(snap[i]) != want {
			t.Fatalf("snap[%d] = %q, want %q", i, snap[i], want)
		}
	}
}

func TestEventRingTee(t *testing.T) {
	r := NewEventRing(8)
	var sink bytes.Buffer
	w := r.Tee(&sink)
	fmt.Fprintf(w, "both\n")
	if sink.String() != "both\n" {
		t.Fatalf("tee sink = %q", sink.String())
	}
	if snap := r.Snapshot(); len(snap) != 1 || string(snap[0]) != "both\n" {
		t.Fatalf("tee ring = %q", snap)
	}
	if w := r.Tee(nil); w != any(r) {
		t.Fatalf("Tee(nil) should return the ring itself")
	}
	var nilRing *EventRing
	if w := nilRing.Tee(&sink); w != any(&sink) {
		t.Fatalf("nil ring Tee(w) should return w")
	}
}

func TestEventRingConcurrentWrites(t *testing.T) {
	r := NewEventRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(r, "g%d-%d\n", g, i)
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("full ring snapshot holds %d lines, want 64", got)
	}
}

// newTestRecorder wires a recorder to a live registry/tsdb/slo/trace so
// captures exercise every bundle file.
func newTestRecorder(t *testing.T, dir string, max int) (*Recorder, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("test_ticks_total").Inc()
	store, err := tsdb.New(tsdb.Config{Registry: reg, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := slo.New(slo.Config{
		Store: store,
		Rules: mustRules(t, `ticks_low: last(test_ticks_total) > 100`),
	})
	if err != nil {
		t.Fatal(err)
	}
	store.ScrapeOnce()
	engine.EvalNow()
	ring := NewEventRing(8)
	fmt.Fprintf(ring, `{"event":"test"}`+"\n")
	rec, err := NewRecorder(RecorderConfig{
		Dir:        dir,
		Manifest:   obs.Manifest{Name: "flight-test"},
		Registry:   reg,
		Store:      store,
		Engine:     engine,
		Trace:      obs.NewTrace(64),
		Events:     ring,
		MaxBundles: max,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, reg
}

func mustRules(t *testing.T, s string) []slo.Rule {
	t.Helper()
	rules, err := slo.ParseRules(s)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestCaptureBundleComplete(t *testing.T) {
	dir := t.TempDir()
	rec, reg := newTestRecorder(t, dir, 8)

	path, err := rec.Capture("slo_breach ticks_low")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(path), "slo_breach_ticks_low") {
		t.Fatalf("bundle name %q lacks sanitized reason", path)
	}
	for _, f := range []string{
		"goroutines.txt", "heap.pprof", "cpu.pprof", "tsdb.json",
		"events.jsonl", "trace.json", "slo.json", "metrics.json", "manifest.json",
	} {
		if fi, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Errorf("bundle misses %s: %v", f, err)
		} else if fi.Size() == 0 && f != "trace.json" {
			t.Errorf("bundle file %s is empty", f)
		}
	}
	// Atomicity: the .partial staging dir must be gone.
	if _, err := os.Stat(path + ".partial"); !os.IsNotExist(err) {
		t.Fatalf(".partial dir left behind: %v", err)
	}
	if got := reg.Counter("flight_captures_total").Value(); got != 1 {
		t.Fatalf("flight_captures_total = %d, want 1", got)
	}
	bundles, err := Bundles(dir)
	if err != nil || len(bundles) != 1 || bundles[0] != path {
		t.Fatalf("Bundles = %v, %v; want [%s]", bundles, err, path)
	}

	// The bundle's slo.json must carry the breached rule.
	data, err := os.ReadFile(filepath.Join(path, "slo.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ticks_low") {
		t.Fatalf("slo.json misses the breached rule: %s", data)
	}
}

func TestCapturePruning(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, 2)
	for i := 0; i < 3; i++ {
		if _, err := rec.Capture(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	bundles, err := Bundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("retained %d bundles, want 2 (MaxBundles)", len(bundles))
	}
	// The survivors are the newest two (seq 002 and 003).
	for _, b := range bundles {
		if strings.HasSuffix(b, "-r0") {
			t.Fatalf("oldest bundle %s survived pruning", b)
		}
	}
}

func TestCapturePanicRecaptures(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, 8)
	func() {
		defer func() {
			if v := recover(); v == nil {
				t.Error("CapturePanic swallowed the panic")
			}
		}()
		defer rec.CapturePanic()
		panic("boom")
	}()
	bundles, err := Bundles(dir)
	if err != nil || len(bundles) != 1 {
		t.Fatalf("Bundles after panic = %v, %v", bundles, err)
	}
	if !strings.Contains(bundles[0], "panic_boom") {
		t.Fatalf("panic bundle name %q lacks the panic value", bundles[0])
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"":                       "manual",
		"SLO breach: rule/x":     "slo_breach__rule_x",
		"fatal open /etc/passwd": "fatal_open__etc_passwd",
	} {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeReason(strings.Repeat("x", 200)); len(got) != 64 {
		t.Errorf("long reason not truncated: %d chars", len(got))
	}
}

// SIGUSR1 asks a live process for its black box without stopping it.
func TestNotifySignalsCapturesOnUSR1(t *testing.T) {
	dir := t.TempDir()
	rec, _ := newTestRecorder(t, dir, 8)
	stop := rec.NotifySignals()
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if bundles, _ := Bundles(dir); len(bundles) == 1 {
			if !strings.Contains(bundles[0], "sigusr1") {
				t.Fatalf("signal bundle %q lacks the sigusr1 reason", bundles[0])
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("SIGUSR1 produced no bundle within 5s")
}

// spin burns CPU under the current goroutine's pprof labels long enough
// for the 100 Hz sampler to land hits.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1e4; i++ {
			x += float64(i) * 1.000001
		}
	}
	_ = x
}

func TestParseCPUProfileAttributesPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-profile capture in -short")
	}
	var buf bytes.Buffer
	// Retry: on a loaded machine one window can miss samples.
	for attempt := 0; attempt < 3; attempt++ {
		buf.Reset()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Fatal(err)
		}
		pprof.Do(context.Background(), pprof.Labels("phase", "hot"), func(context.Context) {
			spin(400 * time.Millisecond)
		})
		pprof.StopCPUProfile()
		prof, err := ParseCPUProfile(buf.Bytes())
		if err != nil {
			t.Fatalf("ParseCPUProfile: %v", err)
		}
		if prof.TotalNanos > 0 && prof.Phases["hot"] > 0 {
			if prof.Phases["hot"] > prof.TotalNanos {
				t.Fatalf("phase time %d exceeds total %d", prof.Phases["hot"], prof.TotalNanos)
			}
			return
		}
	}
	t.Fatal("no labeled samples in 3 profile windows")
}

func TestParseCPUProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseCPUProfile([]byte("not a profile")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseCPUProfile(nil); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestProfilerLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-profile capture in -short")
	}
	reg := obs.NewRegistry()
	p, err := StartProfiler(ProfilerConfig{Registry: reg, Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Exclusivity: only one active profiler per process.
	if _, err := StartProfiler(ProfilerConfig{Registry: reg}); err == nil {
		t.Fatal("second StartProfiler succeeded")
	}

	tok := BeginPhase("test_phase")
	spin(150 * time.Millisecond)
	// Allocate something attributable.
	s := make([]byte, 1<<20)
	_ = s
	tok.End()

	// Snapshot must close the in-flight window and return a profile.
	snap := p.Snapshot()
	if len(snap) == 0 {
		t.Fatal("Snapshot returned no profile bytes")
	}
	if _, err := ParseCPUProfile(snap); err != nil {
		t.Fatalf("snapshot unparsable: %v", err)
	}
	p.Close()
	p.Close() // idempotent
	if active.Load() != nil {
		t.Fatal("Close left the profiler active")
	}
	if reg.Counter("profile_windows_total").Value() == 0 {
		t.Fatal("no profile windows closed")
	}
	// The alloc gauge saw the 1 MiB slice (process-global counter, so
	// only a lower bound is asserted).
	snapshot := reg.Snapshot()
	var alloc float64
	for name, v := range snapshot {
		if strings.HasPrefix(name, `profile_alloc_bytes_total{phase="test_phase"`) {
			alloc, _ = v.(float64)
		}
	}
	if alloc < 1<<20 {
		t.Fatalf("profile_alloc_bytes_total{test_phase} = %v, want >= 1MiB", alloc)
	}
}

func TestRecorderUsesProfilerWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-profile capture in -short")
	}
	dir := t.TempDir()
	rec, reg := newTestRecorder(t, dir, 8)
	p, err := StartProfiler(ProfilerConfig{Registry: reg, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rec.SetProfiler(p)
	spin(100 * time.Millisecond)
	path, err := rec.Capture("with-profiler")
	if err != nil {
		t.Fatal(err)
	}
	// Capture must not have waited the 1-minute window: the forced
	// snapshot closes it early and the bundle carries its bytes.
	if fi, err := os.Stat(filepath.Join(path, "cpu.pprof")); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu.pprof missing from profiler-backed bundle: %v", err)
	}
}
