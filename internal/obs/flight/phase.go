// Package flight is the forensics layer of the observability kit: a
// continuous profiler that attributes CPU and allocation cost to the
// run's phases via pprof labels, and a flight recorder that keeps a
// bounded ring of recent events and, on SLO breach / panic / signal /
// fatal exit, atomically writes a postmortem bundle (profiles, tsdb
// dump, event ring, trace spans, run manifest, SLO state) that
// cmd/middlediag turns into a root-cause report.
//
// Like the rest of obs, everything here is off by default and free when
// off: a nil *Recorder no-ops everywhere, and with no profiler running
// BeginPhase/End cost two atomic loads and zero allocations (pinned by
// test), so hot paths call them unconditionally.
package flight

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"sync/atomic"
)

// active is the process's running profiler, if any. BeginPhase consults
// it so instrumentation points need no plumbing: starting a profiler
// anywhere turns every phase marker in the process live.
var active atomic.Pointer[Profiler]

// PhaseToken is the in-flight state of one BeginPhase; pass it by value
// and call End exactly once. The zero token (profiler off) is inert.
type PhaseToken struct {
	p          *Profiler
	phase      string
	allocStart uint64
}

// BeginPhase marks the calling goroutine as executing the named phase
// until the returned token's End: it sets a pprof "phase" label (which
// the profiler's CPU windows attribute samples to, and which is
// inherited by goroutines spawned while set) and snapshots the
// process's cumulative heap-allocation counter for End's delta.
//
// With no profiler running this is two atomic loads and returns the
// zero token — no labels, no clock, no allocation.
func BeginPhase(phase string) PhaseToken {
	p := active.Load()
	if p == nil {
		return PhaseToken{}
	}
	pprof.SetGoroutineLabels(p.labelCtx(phase))
	return PhaseToken{p: p, phase: phase, allocStart: heapAllocBytes()}
}

// End clears the phase label and adds the phase's allocation delta to
// profile_alloc_bytes_total{phase}. Safe on the zero token.
func End(t PhaseToken) { t.End() }

// End clears the phase label and publishes the allocation delta. Safe
// on the zero token (no-op).
func (t PhaseToken) End() {
	if t.p == nil {
		return
	}
	pprof.SetGoroutineLabels(context.Background())
	if d := heapAllocBytes() - t.allocStart; d > 0 {
		t.p.allocGauge(t.phase).Add(float64(d))
	}
}

// heapAllocBytes returns the process's cumulative heap-allocated bytes
// (runtime/metrics /gc/heap/allocs:bytes — a cheap counter read, no
// stop-the-world). Phase deltas of a process-global counter are an
// approximation under concurrency: overlapping phases each see the
// union of allocations in their window. Within one goroutine's
// sequential phases the attribution is exact.
func heapAllocBytes() uint64 {
	s := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
