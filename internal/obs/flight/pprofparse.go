package flight

import (
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// CPUByPhase is the result of attributing a CPU profile to phases: the
// total sampled CPU time and its split by the "phase" pprof label.
// Samples taken outside any phase land under PhaseUnattributed.
type CPUByPhase struct {
	// TotalNanos is the summed CPU time of every sample.
	TotalNanos int64
	// Phases maps phase label → summed CPU nanoseconds.
	Phases map[string]int64
}

// PhaseUnattributed is the bucket for samples carrying no "phase"
// label: runtime background work, unlabeled goroutines, GC.
const PhaseUnattributed = "unattributed"

// ParseCPUProfile reads a pprof CPU profile (the gzipped protobuf
// written by runtime/pprof.StartCPUProfile) and attributes its samples
// to the "phase" label. It is a purpose-built minimal decoder — only
// the sample types, sample values and string table are touched — so
// both the profiler and middlediag stay dependency-free.
func ParseCPUProfile(data []byte) (CPUByPhase, error) {
	out := CPUByPhase{Phases: map[string]int64{}}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(strings.NewReader(string(data)))
		if err != nil {
			return out, fmt.Errorf("flight: ungzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return out, fmt.Errorf("flight: ungzip profile: %w", err)
		}
		data = raw
	}

	// Pass 1: string table and sample types.
	var table []string
	var sampleTypes [][]byte
	var samples [][]byte
	r := protoReader{b: data}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return out, err
		}
		switch {
		case num == 1 && wire == 2: // sample_type: ValueType
			b, err := r.bytes()
			if err != nil {
				return out, err
			}
			sampleTypes = append(sampleTypes, b)
		case num == 2 && wire == 2: // sample: Sample
			b, err := r.bytes()
			if err != nil {
				return out, err
			}
			samples = append(samples, b)
		case num == 6 && wire == 2: // string_table
			b, err := r.bytes()
			if err != nil {
				return out, err
			}
			table = append(table, string(b))
		default:
			if err := r.skip(wire); err != nil {
				return out, err
			}
		}
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(table) {
			return table[i]
		}
		return ""
	}

	// Find the value column measured in CPU nanoseconds ("cpu" /
	// "nanoseconds"; falls back to the last column, which is where the
	// runtime puts it).
	cpuIdx := len(sampleTypes) - 1
	for i, stb := range sampleTypes {
		tr := protoReader{b: stb}
		var typ, unit int64
		for !tr.done() {
			num, wire, err := tr.tag()
			if err != nil {
				break
			}
			switch {
			case num == 1 && wire == 0:
				v, _ := tr.varint()
				typ = int64(v)
			case num == 2 && wire == 0:
				v, _ := tr.varint()
				unit = int64(v)
			default:
				if tr.skip(wire) != nil {
					break
				}
			}
		}
		if str(typ) == "cpu" && str(unit) == "nanoseconds" {
			cpuIdx = i
		}
	}
	if cpuIdx < 0 {
		return out, fmt.Errorf("flight: profile has no sample types")
	}

	// Pass 2: per-sample CPU value + "phase" label.
	for _, sb := range samples {
		sr := protoReader{b: sb}
		var values []int64
		phase := ""
		for !sr.done() {
			num, wire, err := sr.tag()
			if err != nil {
				return out, err
			}
			switch {
			case num == 2 && wire == 2: // value: packed int64
				b, err := sr.bytes()
				if err != nil {
					return out, err
				}
				vr := protoReader{b: b}
				for !vr.done() {
					v, err := vr.varint()
					if err != nil {
						return out, err
					}
					values = append(values, int64(v))
				}
			case num == 2 && wire == 0: // value: unpacked
				v, err := sr.varint()
				if err != nil {
					return out, err
				}
				values = append(values, int64(v))
			case num == 3 && wire == 2: // label: Label
				b, err := sr.bytes()
				if err != nil {
					return out, err
				}
				lr := protoReader{b: b}
				var key, sv int64
				for !lr.done() {
					lnum, lwire, err := lr.tag()
					if err != nil {
						return out, err
					}
					switch {
					case lnum == 1 && lwire == 0:
						v, _ := lr.varint()
						key = int64(v)
					case lnum == 2 && lwire == 0:
						v, _ := lr.varint()
						sv = int64(v)
					default:
						if err := lr.skip(lwire); err != nil {
							return out, err
						}
					}
				}
				if str(key) == "phase" {
					phase = str(sv)
				}
			default:
				if err := sr.skip(wire); err != nil {
					return out, err
				}
			}
		}
		if cpuIdx >= len(values) {
			continue
		}
		ns := values[cpuIdx]
		if ns <= 0 {
			continue
		}
		out.TotalNanos += ns
		if phase == "" {
			phase = PhaseUnattributed
		}
		out.Phases[phase] += ns
	}
	return out, nil
}

// protoReader is a minimal protobuf wire-format cursor.
type protoReader struct {
	b []byte
	i int
}

func (r *protoReader) done() bool { return r.i >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.i >= len(r.b) {
			return 0, fmt.Errorf("flight: truncated varint")
		}
		c := r.b[r.i]
		r.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("flight: varint overflow")
		}
	}
}

// tag reads one field tag, returning field number and wire type.
func (r *protoReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.i) {
		return nil, fmt.Errorf("flight: truncated field (%d > %d)", n, len(r.b)-r.i)
	}
	b := r.b[r.i : r.i+int(n)]
	r.i += int(n)
	return b, nil
}

// skip advances past one field of the given wire type.
func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0:
		_, err := r.varint()
		return err
	case 1:
		if len(r.b)-r.i < 8 {
			return fmt.Errorf("flight: truncated fixed64")
		}
		r.i += 8
		return nil
	case 2:
		_, err := r.bytes()
		return err
	case 5:
		if len(r.b)-r.i < 4 {
			return fmt.Errorf("flight: truncated fixed32")
		}
		r.i += 4
		return nil
	}
	return fmt.Errorf("flight: unsupported wire type %d", wire)
}
