package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Emitter writes structured events as JSON Lines: one object per line
// with "ts" (RFC 3339, UTC) and "event" keys plus the caller's fields.
// It serialises concurrent emits with a mutex and is nil-safe, so
// components can hold an *Emitter unconditionally.
type Emitter struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test hook; defaults to time.Now
	err error            // first write error; later emits are dropped
}

// NewEmitter returns an emitter writing to w (nil w yields a nil,
// inert emitter).
func NewEmitter(w io.Writer) *Emitter {
	if w == nil {
		return nil
	}
	return &Emitter{w: w, now: time.Now}
}

// Emit writes one event with alternating key, value fields:
//
//	em.Emit("round_done", "round", 7, "trained", 12)
//
// Keys "ts" and "event" are reserved. Odd trailing keys are dropped.
func (e *Emitter) Emit(event string, fields ...any) {
	if e == nil {
		return
	}
	obj := make(map[string]any, len(fields)/2+2)
	for i := 0; i+1 < len(fields); i += 2 {
		if k, ok := fields[i].(string); ok && k != "ts" && k != "event" {
			obj[k] = fields[i+1]
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	obj["ts"] = e.now().UTC().Format(time.RFC3339Nano)
	obj["event"] = event
	line, err := json.Marshal(obj)
	if err != nil {
		e.err = err
		return
	}
	line = append(line, '\n')
	if _, err := e.w.Write(line); err != nil {
		e.err = err
	}
}

// Err returns the first write/encode error, if any (nil-safe).
func (e *Emitter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
