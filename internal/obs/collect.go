package obs

// Collect is the structured scrape API the tsdb layer is built on: a
// point-in-time snapshot of every series with typed values, in
// deterministic order (family, then label set). Unlike Snapshot it
// exposes histogram buckets as parallel slices, so consumers can
// compute windowed deltas and quantiles without re-parsing maps.
//
// Collect holds the registry mutex only while copying the series list;
// instrument reads are lock-free atomics and GaugeFuncs run after the
// lock is released, so a slow scrape never blocks hot-path Inc/Observe.

// SeriesValue is one collected series.
type SeriesValue struct {
	// Name is the full series key, family{labels} or bare family.
	Name   string
	Family string
	Kind   string // "counter" | "gauge" | "histogram"
	// Value carries the counter or gauge value (0 for histograms).
	Value float64
	// Hist is set for histograms only.
	Hist *HistogramValue
}

// HistogramValue is a histogram snapshot: finite upper bounds plus
// cumulative counts (len(Bounds)+1, the +Inf bucket last).
type HistogramValue struct {
	Bounds []float64
	Cum    []int64
	Count  int64
	Sum    float64
}

// Collect returns every registered series' current value. Nil-safe
// (returns nil).
func (r *Registry) Collect() []SeriesValue {
	if r == nil {
		return nil
	}
	fams := r.sortedFamilies()
	var out []SeriesValue
	for _, fam := range fams {
		for _, s := range fam.series {
			sv := SeriesValue{
				Name:   seriesName(s.family, s.labels),
				Family: s.family,
				Kind:   s.kind.String(),
			}
			switch {
			case s.c != nil:
				sv.Value = float64(s.c.Value())
			case s.gf != nil:
				sv.Value = s.gf()
			case s.g != nil:
				sv.Value = s.g.Value()
			case s.h != nil:
				sv.Hist = &HistogramValue{
					Bounds: s.h.bounds,
					Cum:    s.h.snapshotBuckets(),
					Count:  s.h.Count(),
					Sum:    s.h.Sum(),
				}
			default:
				continue
			}
			out = append(out, sv)
		}
	}
	return out
}
