package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative
// upper-bound semantics, Prometheus-style) and tracks their sum.
// Observe is lock-free and allocation-free. Nil-safe.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DurationBuckets spans 10µs to 60s, the range of everything this
// repository times (a SIMD kernel call up to a paper-scale cloud round).
func DurationBuckets() []float64 {
	return []float64{
		1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// SizeBuckets spans 64 B to 16 MiB, covering protocol frames from a
// bare header up to a paper-scale model payload.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (nil defaults to DurationBuckets). Bounds are
// fixed by whichever call registers the series first.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, kindHistogram, labels, func() *series {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		h := &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		return &series{h: h}
	})
	return s.h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the common case
	// exits early; a branch-predicted scan beats binary search here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshotBuckets returns cumulative counts per upper bound (the +Inf
// bucket last). Concurrent observes may land between bucket reads; the
// result is still a valid histogram, just a momentary one.
func (h *Histogram) snapshotBuckets() []int64 {
	out := make([]int64, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}
