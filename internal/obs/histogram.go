package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative
// upper-bound semantics, Prometheus-style) and tracks their sum.
// Observe is lock-free and allocation-free. Nil-safe.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DurationBuckets spans 10µs to 60s, the range of everything this
// repository times (a SIMD kernel call up to a paper-scale cloud round).
func DurationBuckets() []float64 {
	return []float64{
		1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// SizeBuckets spans 64 B to 16 MiB, covering protocol frames from a
// bare header up to a paper-scale model payload.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (nil defaults to DurationBuckets). Bounds are
// fixed by whichever call registers the series first.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, kindHistogram, labels, func() *series {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		h := &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		return &series{h: h}
	})
	return s.h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the common case
	// exits early; a branch-predicted scan beats binary search here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of everything observed
// so far, interpolating linearly inside the winning bucket. The first
// bucket's lower edge is 0 (every histogram here observes non-negative
// values) and observations in the +Inf bucket report the highest finite
// bound — the estimate is clamped, never invented. Returns 0 with no
// observations. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return QuantileFromBuckets(h.bounds, h.snapshotBuckets(), q)
}

// QuantileFromBuckets estimates a quantile from Prometheus-style
// cumulative bucket counts: bounds are the finite upper bounds and cum
// has len(bounds)+1 entries, the last being the +Inf bucket (== total
// count). Shared by Histogram.Quantile and the tsdb's windowed
// quantiles over bucket deltas.
func QuantileFromBuckets(bounds []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(bounds)+1 {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	for i, bound := range bounds {
		if float64(cum[i]) >= rank {
			lower := 0.0
			prev := int64(0)
			if i > 0 {
				lower = bounds[i-1]
				prev = cum[i-1]
			}
			in := cum[i] - prev
			if in <= 0 {
				return bound
			}
			frac := (rank - float64(prev)) / float64(in)
			return lower + (bound-lower)*frac
		}
	}
	// Rank landed in the +Inf bucket: clamp to the highest finite bound.
	return bounds[len(bounds)-1]
}

// snapshotBuckets returns cumulative counts per upper bound (the +Inf
// bucket last). Concurrent observes may land between bucket reads; the
// result is still a valid histogram, just a momentary one.
func (h *Histogram) snapshotBuckets() []int64 {
	out := make([]int64, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}
