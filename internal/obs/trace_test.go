package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilIsInert(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Complete("x", "c", 1, 0, time.Now(), time.Millisecond, "s", "", nil)
	tr.SetProcessName(1, "sim")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace collected something")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil trace JSON %q", buf.String())
	}
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Complete("x", "c", 1, 0, time.Time{}, 0, "s", "p", nil)
	}); allocs != 0 {
		t.Fatalf("disabled Complete allocates %.1f/op", allocs)
	}
}

func TestTraceRoundTripAndValidation(t *testing.T) {
	tr := NewTrace(0)
	tr.SetProcessName(1, "cloud")
	tr.SetProcessName(10, "edge0")
	base := tr.Now()
	tr.Complete("round", "fednet", 1, 0, base, 10*time.Millisecond, "c.r1", "", map[string]any{"round": 1})
	tr.Complete("edge_round", "fednet", 10, 0, base.Add(time.Millisecond), 8*time.Millisecond, "e0.r1", "c.r1", nil)
	tr.Complete("train_rpc", "fednet", 10, 3, base.Add(2*time.Millisecond), 5*time.Millisecond, "e0.r1.d3", "e0.r1", nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must be plain valid JSON.
	var anyDoc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &anyDoc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	events, err := ReadTraceJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 2 metadata + 3 complete events.
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	if events[0].Ph != "M" || events[0].Pid != 1 || events[1].Pid != 10 {
		t.Fatalf("metadata events wrong: %+v %+v", events[0], events[1])
	}
	if err := ValidateTraceEvents(events); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceValidationCatchesBrokenTrees(t *testing.T) {
	mk := func(span, parent string, ts, dur int64) TraceEvent {
		args := map[string]any{"span": span}
		if parent != "" {
			args["parent"] = parent
		}
		return TraceEvent{Name: span, Ph: "X", Ts: ts, Dur: dur, Args: args}
	}
	// Unknown parent.
	if err := ValidateTraceEvents([]TraceEvent{mk("a", "ghost", 0, 10)}); err == nil {
		t.Fatal("unknown parent accepted")
	}
	// Child escaping the parent window.
	if err := ValidateTraceEvents([]TraceEvent{
		mk("root", "", 0, 10),
		mk("child", "root", 5, 20),
	}); err == nil {
		t.Fatal("escaping child accepted")
	}
	// Duplicate span ids.
	if err := ValidateTraceEvents([]TraceEvent{
		mk("dup", "", 0, 10),
		mk("dup", "", 20, 10),
	}); err == nil {
		t.Fatal("duplicate span ids accepted")
	}
	// Negative duration.
	if err := ValidateTraceEvents([]TraceEvent{{Name: "x", Ph: "X", Ts: 0, Dur: -1}}); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestTraceCapDropsAndCounts(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Complete("e", "", 0, 0, tr.Now(), time.Microsecond, "", "", nil)
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", tr.Dropped())
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace(0)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Complete("e", "t", w, i, tr.Now(), time.Microsecond, "", "", nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*perWorker {
		t.Fatalf("len %d, want %d", tr.Len(), workers*perWorker)
	}
	if err := ValidateTraceEvents(tr.Events()); err != nil {
		t.Fatal(err)
	}
}
