package obs

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size in bytes,
// read from the VmHWM line of /proc/self/status. It is the number the
// scale-out acceptance gate asserts on: a million-device run must keep
// this bounded by the cohort, not the population. On platforms without
// procfs it returns 0, which callers should treat as "unknown" rather
// than "zero memory".
func PeakRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		// Format: "VmHWM:     123456 kB".
		fields := strings.Fields(strings.TrimPrefix(line, "VmHWM:"))
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
