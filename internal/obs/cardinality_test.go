package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestFamilyBudgetFoldsTail(t *testing.T) {
	r := NewRegistry()
	r.SetFamilyBudget("fam_total", 3)
	var kept []*Counter
	for i := 0; i < 10; i++ {
		kept = append(kept, r.Counter("fam_total", "edge", strconv.Itoa(i)))
	}
	// First 3 label sets get dedicated series; the other 7 share one fold.
	for i := 1; i < 3; i++ {
		if kept[i] == kept[0] {
			t.Fatalf("series %d folded inside the budget", i)
		}
	}
	for i := 4; i < 10; i++ {
		if kept[i] != kept[3] {
			t.Fatalf("series %d did not fold into the shared other series", i)
		}
	}
	// 3 real + 1 other + 1 dropped counter.
	if n := r.NumSeries(); n != 5 {
		t.Fatalf("NumSeries = %d, want 5", n)
	}

	kept[5].Add(7) // lands on the other series
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `fam_total{edge="other"} 7`) {
		t.Fatalf("missing folded other series:\n%s", out)
	}
	if !strings.Contains(out, `obs_dropped_series_total{family="fam_total"} 7`) {
		t.Fatalf("missing dropped counter (want 7 folded touches):\n%s", out)
	}
}

func TestFamilyBudgetRepeatRegistrationsKeepIdentity(t *testing.T) {
	r := NewRegistry()
	r.SetFamilyBudget("fam_total", 1)
	a := r.Counter("fam_total", "edge", "0")
	b := r.Counter("fam_total", "edge", "1") // folds
	// Re-registering an in-budget label set returns the same pointer and
	// never counts as a fold.
	if r.Counter("fam_total", "edge", "0") != a {
		t.Fatal("re-registration re-bound an in-budget series")
	}
	if r.Counter("fam_total", "edge", "1") != b {
		t.Fatal("re-registration re-bound the folded series")
	}
	rep := r.CardinalityReport()
	if len(rep) != 1 || rep[0].Family != "fam_total" {
		t.Fatalf("report = %+v", rep)
	}
	if rep[0].Kept != 1 || rep[0].Dropped != 2 {
		t.Fatalf("kept=%d dropped=%d, want 1/2", rep[0].Kept, rep[0].Dropped)
	}
}

func TestEnsureFamilyBudgetDoesNotOverride(t *testing.T) {
	r := NewRegistry()
	r.SetFamilyBudget("fam_total", 5)
	r.EnsureFamilyBudget("fam_total", 1)
	for i := 0; i < 5; i++ {
		r.Counter("fam_total", "edge", strconv.Itoa(i))
	}
	if rep := r.CardinalityReport(); len(rep) != 0 {
		t.Fatalf("folds happened under the wider explicit budget: %+v", rep)
	}
}

func TestSpaceSavingDeterministicEviction(t *testing.T) {
	// Capacity 2: "a" and "b" fill it; touching "c" must evict the
	// minimum-count entry, ties broken toward the lexicographically
	// greatest key ("b"), regardless of map iteration order.
	for trial := 0; trial < 20; trial++ {
		ss := newSpaceSaving(2)
		ss.touch("a")
		ss.touch("b")
		ss.touch("c")
		top := ss.top(0)
		if len(top) != 2 {
			t.Fatalf("len(top) = %d", len(top))
		}
		// c inherited b's count (1) + 1 = 2, err 1; a stays at 1.
		if top[0].Labels != "c" || top[0].Hits != 2 || top[0].Err != 1 {
			t.Fatalf("trial %d: top[0] = %+v, want c/2/1", trial, top[0])
		}
		if top[1].Labels != "a" || top[1].Hits != 1 {
			t.Fatalf("trial %d: top[1] = %+v, want a/1", trial, top[1])
		}
	}
}

func TestSpaceSavingNeverUndercounts(t *testing.T) {
	ss := newSpaceSaving(3)
	truth := map[string]int64{}
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	for i := 0; i < 200; i++ {
		k := keys[i%len(keys)]
		if i%7 == 0 {
			k = "k0" // skew
		}
		ss.touch(k)
		truth[k]++
	}
	for _, e := range ss.top(0) {
		if e.Hits < truth[e.Labels] {
			t.Fatalf("%s undercounted: est %d < true %d", e.Labels, e.Hits, truth[e.Labels])
		}
		if e.Hits-e.Err > truth[e.Labels] {
			t.Fatalf("%s guaranteed count %d exceeds truth %d", e.Labels, e.Hits-e.Err, truth[e.Labels])
		}
	}
}

func TestGovernedHistogramAndGaugeFold(t *testing.T) {
	r := NewRegistry()
	r.SetFamilyBudget("lat_seconds", 1)
	r.SetFamilyBudget("depth", 1)
	h0 := r.Histogram("lat_seconds", []float64{1, 2}, "shard", "0")
	h1 := r.Histogram("lat_seconds", []float64{1, 2}, "shard", "1")
	if h0 == h1 {
		t.Fatal("first histogram folded")
	}
	if h2 := r.Histogram("lat_seconds", []float64{1, 2}, "shard", "2"); h2 != h1 {
		t.Fatal("folded histograms must share the other series")
	}
	g0 := r.Gauge("depth", "shard", "0")
	g1 := r.Gauge("depth", "shard", "1")
	g1.Set(3)
	if g0.Value() == 3 {
		t.Fatal("fold leaked into the in-budget gauge")
	}
	if g2 := r.Gauge("depth", "shard", "2"); g2.Value() != 3 {
		t.Fatal("folded gauges must share state")
	}
}

// TestConcurrentGovernedRegisterAndScrape races governed registrations
// against continuous scrapes; under -race this pins that the budget
// bookkeeping, the space-saving summary and Collect share the mutex
// correctly.
func TestConcurrentGovernedRegisterAndScrape(t *testing.T) {
	r := NewRegistry()
	r.SetFamilyBudget("conc_total", 4)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			_ = r.Collect()
			_ = r.CardinalityReport()
			_ = r.NumSeries()
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("conc_total", "id", strconv.Itoa(w*100+i)).Inc()
			}
		}(w)
	}
	wg.Wait()
	<-done
	// 4 kept + 1 other + 1 dropped counter, regardless of interleaving.
	if n := r.NumSeries(); n != 6 {
		t.Fatalf("NumSeries = %d, want 6", n)
	}
	var total int64
	for _, sv := range r.Collect() {
		if sv.Family == "conc_total" {
			total += int64(sv.Value)
		}
	}
	if total != 400 {
		t.Fatalf("total increments = %d, want 400", total)
	}
}
