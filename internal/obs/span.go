package obs

import "time"

// Span times named phases of work into a duration histogram (seconds).
// The usual shape is one Span per phase, resolved once at setup:
//
//	span := reg.Span("sim_phase_seconds", "phase", "local_train")
//	tok := span.Begin()
//	work()
//	tok.End()
//
// Begin/End are goroutine-safe (overlapping tokens from many goroutines
// record independently), allocation-free (the token is a value), and on
// a nil Span cost one nil check each — no clock read.
type Span struct {
	h     *Histogram
	count *Counter
}

// Span registers (or fetches) a seconds histogram for a phase timer,
// plus a companion <name>_started_total counter so in-flight phases are
// visible (started − histogram count = currently running).
func (r *Registry) Span(name string, labels ...string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		h:     r.Histogram(name, DurationBuckets(), labels...),
		count: r.Counter(name+"_started_total", labels...),
	}
}

// SpanToken is an in-flight phase started by Span.Begin. The zero token
// (from a nil Span) is valid and inert.
type SpanToken struct {
	s     *Span
	start time.Time
}

// Begin starts timing one execution of the phase.
func (s *Span) Begin() SpanToken {
	if s == nil {
		return SpanToken{}
	}
	s.count.Inc()
	return SpanToken{s: s, start: time.Now()}
}

// End records the elapsed time and returns it (0 for an inert token).
func (t SpanToken) End() time.Duration {
	if t.s == nil {
		return 0
	}
	d := time.Since(t.start)
	t.s.h.Observe(d.Seconds())
	return d
}

// Observe records an externally measured duration, for callers that
// already hold a wall-clock delta. Nil-safe.
func (s *Span) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.count.Inc()
	s.h.Observe(d.Seconds())
}
