package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Manifest describes one run for the machine-readable summary written
// next to its results: what ran, with which arguments, when, and any
// run-specific extras (task, strategy, seed, …).
type Manifest struct {
	// Name identifies the run, e.g. "middlesim-fig6" or "middled-cloud".
	Name string `json:"name"`
	// Command is the argv that produced the run.
	Command []string `json:"command,omitempty"`
	// Started and Finished bound the run's wall-clock window.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Build identifies the producing binary (filled by WriteSummary when
	// left empty), so summaries are correlatable to a commit.
	Build Build `json:"build"`
	// Extra carries free-form run parameters.
	Extra map[string]any `json:"extra,omitempty"`
}

// summary is the on-disk shape: the manifest plus a full metrics dump.
type summary struct {
	Manifest Manifest       `json:"manifest"`
	Metrics  map[string]any `json:"metrics"`
}

// WriteSummary writes the run manifest and a snapshot of every
// registered metric as indented JSON to path, creating the directory
// if needed.
func WriteSummary(path string, m Manifest, r *Registry) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("obs: creating summary dir: %w", err)
	}
	if m.Build == (Build{}) {
		m.Build = ReadBuild()
	}
	data, err := json.MarshalIndent(summary{Manifest: m, Metrics: r.Snapshot()}, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding summary: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing summary: %w", err)
	}
	return nil
}

// SummaryPath builds the conventional summary location:
// dir/<name>-<UTC timestamp>.json.
func SummaryPath(dir, name string, t time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s.json", name, t.UTC().Format("20060102T150405")))
}

// ReadSummary loads a summary written by WriteSummary, returning the
// manifest and the raw metrics map.
func ReadSummary(path string) (Manifest, map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, nil, err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return Manifest{}, nil, fmt.Errorf("obs: decoding summary %s: %w", path, err)
	}
	return s.Manifest, s.Metrics, nil
}
