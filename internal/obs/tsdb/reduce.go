package tsdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"middle/internal/obs"
)

// Reduce folds one series' recent window into a scalar — the evaluation
// primitive the SLO engine is built on.
//
// reducer is one of:
//
//	last    newest point's value
//	avg     mean over the window
//	min,max extremes over the window
//	spread  max-min over the window (progress detector)
//	delta   newest-oldest over the window (counter movement)
//	rate    delta divided by the window's covered seconds
//	pNN     rolling quantile over a histogram's bucket deltas
//	        (p50, p99, p999, …; series names the histogram)
//
// The second return is false while the answer is still "pending": the
// series is unknown, the stored data spans less than the window (for
// windowed reducers), or fewer than two points exist for delta-family
// reducers. Callers treat pending as "not yet breachable", so rules
// with long windows don't fire spuriously at startup. A window of 0
// means "all retained history" and is never pending for data-span
// reasons.
//
// series may be a '*' glob; each match reduces independently and the
// maximum is returned (ok if any match is sufficient) — the
// conservative fold for "worst offender" style rules.
func (s *Store) Reduce(series, reducer string, window time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	if strings.HasPrefix(reducer, "p") {
		if q, err := parseQuantile(reducer); err == nil {
			return s.reduceQuantile(series, q, window)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := 0.0, false
	for name, r := range s.scalars {
		if !matches(series, name) {
			continue
		}
		v, vok := reduceRing(r, reducer, window)
		if !vok {
			continue
		}
		if !ok || v > best {
			best = v
		}
		ok = true
	}
	return best, ok
}

// parseQuantile turns "p99" into 0.99, "p999" into 0.999, "p50" into
// 0.5: digits after 'p' are read as a decimal fraction times 100.
func parseQuantile(reducer string) (float64, error) {
	digits := reducer[1:]
	if digits == "" {
		return 0, fmt.Errorf("tsdb: bad quantile reducer %q", reducer)
	}
	n, err := strconv.ParseUint(digits, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("tsdb: bad quantile reducer %q", reducer)
	}
	q := float64(n)
	for i := 0; i < len(digits); i++ {
		q /= 10
	}
	return q, nil // p99 → 99/100 = 0.99, p999 → 999/1000 = 0.999
}

// reduceQuantile computes a quantile over a histogram ring's bucket
// deltas across the window. Pending until the stored snapshots span
// the window (window 0 = all history, needs ≥1 snapshot).
func (s *Store) reduceQuantile(series string, q float64, window time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := 0.0, false
	for name, h := range s.hists {
		if !matches(series, name) || len(h.ts) == 0 {
			continue
		}
		newest := len(h.ts) - 1
		if window > 0 && h.ts[newest]-h.ts[0] < window.Milliseconds() {
			continue
		}
		base := make([]int64, len(h.cums[newest]))
		if window > 0 {
			cutoff := h.ts[newest] - window.Milliseconds()
			for i := 0; i <= newest; i++ {
				if h.ts[i] > cutoff {
					break
				}
				copy(base, h.cums[i])
			}
		}
		delta := make([]int64, len(h.cums[newest]))
		for i := range delta {
			delta[i] = h.cums[newest][i] - base[i]
		}
		v := 0.0
		if delta[len(delta)-1] > 0 {
			v = obs.QuantileFromBuckets(h.bounds, delta, q)
		}
		if !ok || v > best {
			best = v
		}
		ok = true
	}
	return best, ok
}

func reduceRing(r *ring, reducer string, window time.Duration) (float64, bool) {
	if len(r.ts) == 0 {
		return 0, false
	}
	newest := len(r.ts) - 1
	if window > 0 && r.span() < window.Milliseconds() {
		return 0, false
	}
	lo := 0
	if window > 0 {
		cutoff := r.ts[newest] - window.Milliseconds()
		for lo < newest && r.ts[lo+1] <= cutoff {
			lo++
		}
	}
	switch reducer {
	case "last":
		return r.vs[newest], true
	case "avg":
		sum := 0.0
		for i := lo; i <= newest; i++ {
			sum += r.vs[i]
		}
		return sum / float64(newest-lo+1), true
	case "min", "max", "spread":
		mn, mx := r.vs[lo], r.vs[lo]
		for i := lo + 1; i <= newest; i++ {
			if r.vs[i] < mn {
				mn = r.vs[i]
			}
			if r.vs[i] > mx {
				mx = r.vs[i]
			}
		}
		switch reducer {
		case "min":
			return mn, true
		case "max":
			return mx, true
		}
		return mx - mn, true
	case "delta", "rate":
		if newest == lo {
			return 0, false
		}
		d := r.vs[newest] - r.vs[lo]
		if reducer == "delta" {
			return d, true
		}
		secs := float64(r.ts[newest]-r.ts[lo]) / 1000
		if secs <= 0 {
			return 0, false
		}
		return d / secs, true
	}
	return 0, false
}
