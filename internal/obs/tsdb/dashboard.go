package tsdb

import "net/http"

// DashboardHandler serves the embedded live dashboard: a single
// zero-dependency HTML+JS page that polls /api/query and /api/alerts
// and renders canvas line charts for the run's vital signs —
// accuracy, per-edge divergence, mobility flow, faults/retries,
// memory, and round latency. No external assets, no frameworks: the
// page works from an air-gapped lab host.
func (s *Store) DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}

// dashboardHTML is the whole dashboard. Chart colors follow the
// repo's validated palette: categorical slots (blue, orange, aqua) in
// fixed order, status colors reserved for the alert banner, text in
// ink tokens — never the series color. Light and dark are separate
// validated sets selected via prefers-color-scheme.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>middle dashboard</title>
<style>
:root {
  --surface: #fcfcfb; --panel: #ffffff; --grid: #e1e0d9;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --cat-1: #2a78d6; --cat-2: #eb6834; --cat-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #222221; --grid: #2c2c2a;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --cat-1: #3987e5; --cat-2: #d95926; --cat-3: #199e70;
  }
}
* { box-sizing: border-box; margin: 0; }
body {
  background: var(--surface); color: var(--ink);
  font: 13px/1.45 system-ui, sans-serif; padding: 16px;
}
h1 { font-size: 16px; font-weight: 600; }
header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 12px; }
header .sub { color: var(--ink-2); }
#alerts { margin: 0 0 12px; display: flex; flex-direction: column; gap: 6px; }
.alert {
  border-left: 3px solid var(--critical); background: var(--panel);
  border-radius: 4px; padding: 6px 10px; display: flex; gap: 8px;
}
.alert.ok { border-left-color: var(--good); color: var(--ink-2); }
.alert .badge { font-weight: 600; }
.alert.firing .badge { color: var(--critical); }
.alert.ok .badge { color: var(--good); }
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(380px, 1fr)); gap: 12px; }
.panel { background: var(--panel); border: 1px solid var(--grid); border-radius: 6px; padding: 10px 12px; }
.panel h2 { font-size: 13px; font-weight: 600; margin-bottom: 2px; }
.panel .legend { color: var(--ink-2); font-size: 12px; margin-bottom: 6px; min-height: 16px; }
.legend span { margin-right: 12px; white-space: nowrap; }
.legend i { display: inline-block; width: 10px; height: 2px; vertical-align: middle; margin-right: 4px; }
canvas { width: 100%; height: 160px; display: block; }
.empty { color: var(--ink-3); font-size: 12px; padding: 60px 0; text-align: center; }
footer { margin-top: 12px; color: var(--ink-3); font-size: 12px; }
</style>
</head>
<body>
<header>
  <h1>middle &mdash; live run</h1>
  <span class="sub" id="meta">connecting&hellip;</span>
</header>
<div id="alerts"></div>
<div class="grid" id="panels"></div>
<footer>polls /api/query every 2s &middot; <a href="/metrics" style="color:var(--ink-2)">/metrics</a> &middot; <a href="/status" style="color:var(--ink-2)">/status</a> &middot; <a href="/api/series" style="color:var(--ink-2)">/api/series</a></footer>
<script>
"use strict";
// Panels: each pulls a set of series patterns and draws them on one
// canvas with a shared y-axis. Colors come from the categorical slots
// in fixed order; more matches than slots fold into the last slot.
var PANELS = [
  { title: "Global model", unit: "", series: ["hfl_global_accuracy", "hfl_global_loss"] },
  { title: "Round duration p99 (s)", unit: "s", series: ["sim_round_seconds_p99", "fednet_rpc_seconds_p99{op=\"cloud_round\"}"] },
  { title: "Per-edge divergence", unit: "", series: ["hfl_edge_divergence{*"] },
  { title: "Mobility flow (moves, handoffs)", unit: "", series: ["hfl_moves_total", "hfl_handoff*_total", "fednet_migrations_total{*", "hfl_migrations_total{*"] },
  { title: "Handover latency (s)", unit: "s", series: ["fednet_handover_seconds_p99", "fednet_handover_seconds_p50", "fednet_handover_seconds_count"] },
  { title: "Faults, retries, rejects", unit: "", series: ["*retries_total", "*faults_injected_total", "robust_rejected_updates_total*", "*quorum_misses_total"] },
  { title: "Membership (epoch, failovers, re-homes)", unit: "", series: ["fednet_membership_epoch", "hfl_membership_epoch", "*edge_failovers_total", "*rehomed_devices_total", "fednet_stranded_devices", "fednet_lease_misses_total", "fednet_stale_frames_total"] },
  { title: "Memory (bytes)", unit: "B", series: ["process_peak_rss_bytes", "process_heap_inuse_bytes"] },
  { title: "Series governance", unit: "", series: ["obs_series", "tsdb_series", "obs_dropped_series_total{*", "tsdb_dropped_series_total"] },
  { title: "Participation", unit: "", series: ["hfl_participants", "hfl_round", "sim_round_seconds_count"] }
];
var css = getComputedStyle(document.documentElement);
function tok(n) { return css.getPropertyValue(n).trim(); }
var CAT = [tok("--cat-1"), tok("--cat-2"), tok("--cat-3")];

var panelEls = [];
var grid = document.getElementById("panels");
PANELS.forEach(function (p) {
  var div = document.createElement("div");
  div.className = "panel";
  div.innerHTML = "<h2></h2><div class=\"legend\"></div><canvas></canvas>";
  div.querySelector("h2").textContent = p.title;
  grid.appendChild(div);
  panelEls.push({ cfg: p, el: div, canvas: div.querySelector("canvas"), legend: div.querySelector(".legend") });
});

function fmt(v) {
  if (v === null || v === undefined) return "-";
  var a = Math.abs(v);
  if (a >= 1073741824) return (v / 1073741824).toFixed(1) + "G";
  if (a >= 1048576) return (v / 1048576).toFixed(1) + "M";
  if (a >= 1000) return (v / 1000).toFixed(1) + "k";
  if (a >= 10 || a === 0 || Number.isInteger(v)) return String(Math.round(v * 100) / 100);
  return v.toPrecision(3);
}

function draw(p, seriesList) {
  var cv = p.canvas, dpr = window.devicePixelRatio || 1;
  var W = cv.clientWidth, H = cv.clientHeight;
  cv.width = W * dpr; cv.height = H * dpr;
  var ctx = cv.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, W, H);
  var withData = seriesList.filter(function (s) { return s.points.length > 0; });
  if (withData.length === 0) {
    ctx.fillStyle = tok("--ink-3");
    ctx.font = "12px system-ui";
    ctx.textAlign = "center";
    ctx.fillText("no data yet", W / 2, H / 2);
    p.legend.textContent = "";
    return;
  }
  var t0 = Infinity, t1 = -Infinity, v0 = Infinity, v1 = -Infinity;
  withData.forEach(function (s) {
    s.points.forEach(function (pt) {
      if (pt[1] === null) return;
      if (pt[0] < t0) t0 = pt[0];
      if (pt[0] > t1) t1 = pt[0];
      if (pt[1] < v0) v0 = pt[1];
      if (pt[1] > v1) v1 = pt[1];
    });
  });
  if (!isFinite(v0)) { v0 = 0; v1 = 1; }
  if (v1 - v0 < 1e-12) { v1 = v0 + 1; v0 = v0 - (v0 === 0 ? 0 : 1e-12); if (v1 === v0) v1 = v0 + 1; }
  if (t1 === t0) t1 = t0 + 1;
  var padL = 44, padR = 6, padT = 6, padB = 16;
  var x = function (t) { return padL + (t - t0) / (t1 - t0) * (W - padL - padR); };
  var y = function (v) { return padT + (1 - (v - v0) / (v1 - v0)) * (H - padT - padB); };
  // Recessive grid: three horizontal rules + y tick labels in muted ink.
  ctx.strokeStyle = tok("--grid");
  ctx.fillStyle = tok("--ink-3");
  ctx.font = "10px system-ui";
  ctx.textAlign = "right";
  ctx.lineWidth = 1;
  [0, 0.5, 1].forEach(function (f) {
    var vy = y(v0 + f * (v1 - v0));
    ctx.beginPath(); ctx.moveTo(padL, vy); ctx.lineTo(W - padR, vy); ctx.stroke();
    ctx.fillText(fmt(v0 + f * (v1 - v0)), padL - 4, vy + 3);
  });
  ctx.textAlign = "center";
  ctx.fillText(Math.round((t1 - t0) / 1000) + "s window", (padL + W - padR) / 2, H - 3);
  // Thin 2px lines, one categorical slot per series in fixed order.
  withData.forEach(function (s, i) {
    ctx.strokeStyle = CAT[Math.min(i, CAT.length - 1)];
    ctx.lineWidth = 2;
    ctx.beginPath();
    var started = false;
    s.points.forEach(function (pt) {
      if (pt[1] === null) { started = false; return; }
      if (!started) { ctx.moveTo(x(pt[0]), y(pt[1])); started = true; }
      else ctx.lineTo(x(pt[0]), y(pt[1]));
    });
    ctx.stroke();
  });
  // Legend: identity never rides on color alone — name + last value.
  p.legend.innerHTML = "";
  withData.slice(0, 6).forEach(function (s, i) {
    var span = document.createElement("span");
    var sw = document.createElement("i");
    sw.style.background = CAT[Math.min(i, CAT.length - 1)];
    span.appendChild(sw);
    var last = s.points.length ? s.points[s.points.length - 1][1] : null;
    span.appendChild(document.createTextNode(s.name + " " + fmt(last)));
    p.legend.appendChild(span);
  });
  if (withData.length > 6) {
    var more = document.createElement("span");
    more.textContent = "+" + (withData.length - 6) + " more";
    p.legend.appendChild(more);
  }
}

function refresh() {
  panelEls.forEach(function (p) {
    var qs = p.cfg.series.map(function (s) { return "series=" + encodeURIComponent(s); }).join("&");
    fetch("/api/query?" + qs).then(function (r) { return r.json(); }).then(function (doc) {
      draw(p, doc.series || []);
      document.getElementById("meta").textContent =
        "updated " + new Date(doc.now).toLocaleTimeString();
    }).catch(function () {});
  });
  fetch("/api/alerts").then(function (r) {
    if (!r.ok) throw new Error("no slo");
    return r.json();
  }).then(function (doc) {
    var box = document.getElementById("alerts");
    box.innerHTML = "";
    var alerts = doc.alerts || [];
    var firing = alerts.filter(function (a) { return a.state === "firing"; });
    if (alerts.length === 0) return;
    if (firing.length === 0) {
      var ok = document.createElement("div");
      ok.className = "alert ok";
      ok.innerHTML = "<span class=\"badge\">&#10003; healthy</span><span></span>";
      ok.lastChild.textContent = alerts.length + " SLO rules evaluated, none firing";
      box.appendChild(ok);
      return;
    }
    firing.forEach(function (a) {
      var div = document.createElement("div");
      div.className = "alert firing";
      div.innerHTML = "<span class=\"badge\">&#9888; " + "</span><span></span>";
      div.firstChild.textContent = "⚠ " + a.name;
      div.lastChild.textContent = a.detail || "";
      box.appendChild(div);
    });
  }).catch(function () {});
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
