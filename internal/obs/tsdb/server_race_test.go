package tsdb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"middle/internal/obs"
)

// startQueryServer wires a live store behind an obs.Server the way the
// daemons do, returning the base URL and the pieces for shutdown tests.
func startQueryServer(t *testing.T) (*obs.Server, *Store, string) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("race_ticks_total")
	store, err := New(Config{Registry: reg, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obs.StartServer(obs.ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Handlers: map[string]http.Handler{
			"/api/query":  store.QueryHandler(),
			"/api/series": store.SeriesHandler(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, "http://" + srv.Addr()
}

// Graceful shutdown must not race in-flight scrapes or queries: this
// test hammers ScrapeOnce and /api/query from several goroutines while
// Shutdown runs, and relies on -race for the verdict.
func TestServerShutdownRacesScrapeAndQuery(t *testing.T) {
	srv, store, base := startQueryServer(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				store.ScrapeOnce()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/api/query?series=*")
				if err != nil {
					return // listener closed mid-loop: expected during shutdown
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	// The store must still be scrapeable after the server is gone.
	store.ScrapeOnce()
}

func TestQueryHandlerErrorsAreJSON(t *testing.T) {
	srv, store, base := startQueryServer(t)
	defer srv.Close()
	store.ScrapeOnce()

	cases := []struct {
		name  string
		query string
		frag  string
	}{
		{"missing series", "", "missing series"},
		{"empty series", "series=,", "empty series"},
		{"bad from", "series=*&from=yesterday", "bad from"},
		{"bad to", "series=*&to=1e", "bad to"},
		{"bad last", "series=*&last=-5m", "bad last"},
		{"unparsable last", "series=*&last=soon", "bad last"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(base + "/api/query?" + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(body.Error, tc.frag) {
				t.Fatalf("error %q misses %q", body.Error, tc.frag)
			}
		})
	}

	// The happy path keeps the JSON content type and a well-formed body.
	resp, err := http.Get(base + "/api/query?series=" + url.QueryEscape("race_ticks_total"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Now    int64 `json:"now"`
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Series) != 1 || body.Series[0].Name != "race_ticks_total" {
		t.Fatalf("series = %+v", body.Series)
	}
}

// A query caught mid-flight by Shutdown must still complete (the whole
// point of graceful over Close). The handler is gated so the request is
// provably inside it before Shutdown begins.
func TestShutdownWaitsForInflightQuery(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("race_ticks_total")
	store, err := New(Config{Registry: reg, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	store.ScrapeOnce()

	entered := make(chan struct{})
	release := make(chan struct{})
	inner := store.QueryHandler()
	var once sync.Once
	gated := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		once.Do(func() { close(entered) })
		<-release
		inner.ServeHTTP(w, req)
	})
	srv, err := obs.StartServer(obs.ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Handlers: map[string]http.Handler{"/api/query": gated},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	result := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/api/query?series=*", base))
		if err != nil {
			result <- err
			return
		}
		defer resp.Body.Close()
		if _, err = io.Copy(io.Discard, resp.Body); err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		result <- err
	}()
	<-entered // the request is inside the handler now
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then let the
	// in-flight handler finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-result; err != nil {
		t.Fatalf("in-flight query failed across shutdown: %v", err)
	}
}
