// Package tsdb is an in-process, dependency-free time-series store for
// the obs registry: it scrapes every registered series at a fixed
// interval into per-series ring buffers of bounded capacity, so any run
// carries its own queryable history — no Prometheus server required.
//
// Memory is bounded three ways. Each series holds at most Capacity
// points; when the rings fill, every series is decimated in place (every
// second point dropped) and the append stride doubles, so retention
// keeps growing at halving resolution — a classic downsampling ring.
// The store admits at most MaxSeries series (later discoveries are
// dropped and counted in tsdb_dropped_series_total), and the registry's
// own cardinality governance bounds what there is to scrape in the
// first place.
//
// Histograms are scraped structurally: alongside the raw _count series,
// the store keeps a ring of cumulative-bucket snapshots per histogram
// and synthesizes rolling-window quantile series (<name>_p50, _p99 by
// default) from bucket deltas at each scrape — so "round p99 over the
// last minute" is an ordinary scalar series, queryable over /api/query
// and usable in SLO rules.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"middle/internal/obs"
)

// Config configures a Store. The zero value of every field has a
// usable default.
type Config struct {
	// Registry is the scrape source (required).
	Registry *obs.Registry
	// Interval between scrapes for Start (default 1s).
	Interval time.Duration
	// Capacity is the per-series point budget (default 720). At the
	// default 1s interval the first decimation lands after 12 minutes.
	Capacity int
	// MaxSeries bounds the number of stored series, synthesized
	// quantile series included (default 4096).
	MaxSeries int
	// Quantiles are the rolling quantiles synthesized per histogram
	// (default 0.5 and 0.99).
	Quantiles []float64
	// QuantileWindow is the rolling window for synthesized quantiles
	// (default 60s).
	QuantileWindow time.Duration
}

// Point is one sample: T is unix milliseconds, V the value.
type Point struct {
	T int64
	V float64
}

// SeriesData is one series' points inside a query response.
type SeriesData struct {
	Name   string
	Points []Point
}

// ring is one scalar series' samples, appended in scrape order.
type ring struct {
	ts []int64
	vs []float64
}

// histRing keeps one histogram's cumulative-bucket snapshots so window
// deltas (and from them quantiles) can be computed at any scrape.
type histRing struct {
	bounds []float64
	ts     []int64
	cums   [][]int64
}

// Store scrapes a registry into bounded rings. All methods are
// goroutine-safe; a nil *Store is the disabled mode (every method
// no-ops), so callers thread it unconditionally.
type Store struct {
	cfg Config

	mu      sync.Mutex
	scalars map[string]*ring
	hists   map[string]*histRing
	stride  int   // append every stride-th scrape
	scrapes int64 // scrapes seen (including strided-out ones)

	scrapeCount *obs.Counter
	dropCount   *obs.Counter

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a store over cfg.Registry. It registers its own meta
// series (tsdb_series, tsdb_scrapes_total, tsdb_dropped_series_total)
// on the registry so the store's health is visible in its own scrape.
func New(cfg Config) (*Store, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("tsdb: Config.Registry is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 720
	}
	if cfg.Capacity < 4 {
		cfg.Capacity = 4
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 4096
	}
	if len(cfg.Quantiles) == 0 {
		cfg.Quantiles = []float64{0.5, 0.99}
	}
	if cfg.QuantileWindow <= 0 {
		cfg.QuantileWindow = time.Minute
	}
	s := &Store{
		cfg:     cfg,
		scalars: map[string]*ring{},
		hists:   map[string]*histRing{},
		stride:  1,
	}
	s.scrapeCount = cfg.Registry.Counter("tsdb_scrapes_total")
	s.dropCount = cfg.Registry.Counter("tsdb_dropped_series_total")
	cfg.Registry.GaugeFunc("tsdb_series", func() float64 {
		return float64(s.NumSeries())
	})
	return s, nil
}

// Interval returns the configured scrape interval (0 for nil).
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Interval
}

// Start launches the background scrape loop. Close stops it.
func (s *Store) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.ScrapeOnce()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the scrape loop (if running) and takes one final scrape
// so short runs always end with fresh points. Nil-safe.
func (s *Store) Close() {
	if s == nil {
		return
	}
	if s.stop != nil {
		close(s.stop)
		s.wg.Wait()
		s.stop = nil
	}
	s.ScrapeOnce()
}

// ScrapeOnce collects the registry now and appends one sample per
// series (subject to the current stride). Nil-safe.
func (s *Store) ScrapeOnce() {
	if s == nil {
		return
	}
	s.scrapeAt(time.Now())
}

func (s *Store) scrapeAt(now time.Time) {
	// Collect outside s.mu: GaugeFuncs (including tsdb_series, which
	// takes s.mu) run here, and instrument reads never block writers.
	snap := s.cfg.Registry.Collect()
	ts := now.UnixMilli()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.scrapes++
	s.scrapeCount.Inc()
	if (s.scrapes-1)%int64(s.stride) != 0 {
		return
	}
	if s.fullLocked() {
		s.decimateLocked()
	}
	for _, sv := range snap {
		switch sv.Kind {
		case "histogram":
			s.appendHistLocked(sv.Name, sv.Hist, ts)
		default:
			s.appendScalarLocked(sv.Name, ts, sv.Value)
		}
	}
}

// fullLocked reports whether any ring reached capacity (rings fill in
// lockstep, so the longest one decides).
func (s *Store) fullLocked() bool {
	for _, r := range s.scalars {
		if len(r.ts) >= s.cfg.Capacity {
			return true
		}
	}
	for _, h := range s.hists {
		if len(h.ts) >= s.cfg.Capacity {
			return true
		}
	}
	return false
}

// decimateLocked halves every ring's resolution in place (keeping the
// newest point) and doubles the append stride, so the same capacity
// spans twice the wall-clock from here on.
func (s *Store) decimateLocked() {
	for _, r := range s.scalars {
		k := 0
		for i := len(r.ts) % 2; i < len(r.ts); i += 2 {
			r.ts[k], r.vs[k] = r.ts[i], r.vs[i]
			k++
		}
		r.ts, r.vs = r.ts[:k], r.vs[:k]
	}
	for _, h := range s.hists {
		k := 0
		for i := len(h.ts) % 2; i < len(h.ts); i += 2 {
			h.ts[k], h.cums[k] = h.ts[i], h.cums[i]
			k++
		}
		h.ts, h.cums = h.ts[:k], h.cums[:k]
	}
	s.stride *= 2
}

func (s *Store) appendScalarLocked(name string, ts int64, v float64) {
	r, ok := s.scalars[name]
	if !ok {
		if s.numSeriesLocked() >= s.cfg.MaxSeries {
			s.dropCount.Inc()
			return
		}
		r = &ring{
			ts: make([]int64, 0, s.cfg.Capacity),
			vs: make([]float64, 0, s.cfg.Capacity),
		}
		s.scalars[name] = r
	}
	r.ts = append(r.ts, ts)
	r.vs = append(r.vs, v)
}

// appendHistLocked stores the histogram's cumulative buckets and
// synthesizes the _count scalar plus the rolling-window quantiles.
func (s *Store) appendHistLocked(name string, hv *obs.HistogramValue, ts int64) {
	if hv == nil {
		return
	}
	h, ok := s.hists[name]
	if !ok {
		if s.numSeriesLocked() >= s.cfg.MaxSeries {
			s.dropCount.Inc()
			return
		}
		h = &histRing{bounds: hv.Bounds}
		s.hists[name] = h
	}
	cum := append([]int64(nil), hv.Cum...)
	h.ts = append(h.ts, ts)
	h.cums = append(h.cums, cum)

	s.appendScalarLocked(suffixed(name, "_count"), ts, float64(hv.Count))
	from := ts - s.cfg.QuantileWindow.Milliseconds()
	base := h.baseAt(from)
	delta := make([]int64, len(cum))
	for i := range cum {
		delta[i] = cum[i]
		if base != nil {
			delta[i] -= base[i]
		}
	}
	for _, q := range s.cfg.Quantiles {
		s.appendScalarLocked(suffixed(name, quantileSuffix(q)), ts,
			obs.QuantileFromBuckets(h.bounds, delta, q))
	}
}

// baseAt returns the newest snapshot at or before the cutoff, or the
// oldest available one; nil with no history.
func (h *histRing) baseAt(cutoff int64) []int64 {
	var base []int64
	for i, t := range h.ts {
		if t > cutoff {
			break
		}
		base = append([]int64(nil), h.cums[i]...)
		_ = i
	}
	if base == nil && len(h.cums) > 0 {
		// No snapshot predates the cutoff; the window extends past the
		// data, so the delta is "everything observed so far".
		return make([]int64, len(h.cums[0]))
	}
	return base
}

// suffixed appends a suffix to a series name, before the label braces
// when present: fednet_rpc_seconds{op="x"} + _p99 →
// fednet_rpc_seconds_p99{op="x"}.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// quantileSuffix renders 0.5 → "_p50", 0.99 → "_p99", 0.999 → "_p999".
func quantileSuffix(q float64) string {
	s := fmt.Sprintf("%g", q*100)
	s = strings.ReplaceAll(s, ".", "")
	return "_p" + s
}

func (s *Store) numSeriesLocked() int { return len(s.scalars) + len(s.hists) }

// NumSeries returns the stored series count (scalar rings plus
// histogram rings). Nil-safe.
func (s *Store) NumSeries() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numSeriesLocked()
}

// SeriesNames returns every stored scalar series name, sorted.
// Nil-safe.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.scalars))
	for name := range s.scalars {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// matches reports whether name matches pattern: exact match, or glob
// with '*' wildcards (any substring).
func matches(pattern, name string) bool {
	if !strings.Contains(pattern, "*") {
		return pattern == name
	}
	parts := strings.Split(pattern, "*")
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// Query returns every scalar series matching one of the patterns
// (exact names or '*' globs), restricted to points in [from, to] unix
// milliseconds; from/to of 0 mean unbounded. Results are sorted by
// name. Nil-safe (returns nil).
func (s *Store) Query(patterns []string, from, to int64) []SeriesData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SeriesData
	for name, r := range s.scalars {
		matched := false
		for _, p := range patterns {
			if matches(p, name) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		sd := SeriesData{Name: name}
		for i, t := range r.ts {
			if (from != 0 && t < from) || (to != 0 && t > to) {
				continue
			}
			sd.Points = append(sd.Points, Point{T: t, V: r.vs[i]})
		}
		out = append(out, sd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// span returns a ring's covered wall-clock in milliseconds.
func (r *ring) span() int64 {
	if len(r.ts) < 2 {
		return 0
	}
	return r.ts[len(r.ts)-1] - r.ts[0]
}
