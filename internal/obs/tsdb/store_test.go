package tsdb

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"middle/internal/obs"
)

// scrapeN drives n scrapes with a synthetic, strictly increasing clock
// (1s apart) so tests are deterministic and fast.
func scrapeN(s *Store, start time.Time, n int, between func(i int)) time.Time {
	t := start
	for i := 0; i < n; i++ {
		if between != nil {
			between(i)
		}
		s.scrapeAt(t)
		t = t.Add(time.Second)
	}
	return t
}

func TestScrapeAndQuery(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("work_total")
	g := r.Gauge("depth", "q", "a")
	s, err := New(Config{Registry: r, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	start := time.UnixMilli(1_000_000)
	scrapeN(s, start, 5, func(i int) {
		c.Add(2)
		g.Set(float64(i))
	})

	got := s.Query([]string{"work_total"}, 0, 0)
	if len(got) != 1 || len(got[0].Points) != 5 {
		t.Fatalf("query = %+v", got)
	}
	if got[0].Points[4].V != 10 {
		t.Fatalf("last counter sample = %g, want 10", got[0].Points[4].V)
	}
	// Glob match including label braces.
	if got := s.Query([]string{"depth{*"}, 0, 0); len(got) != 1 || got[0].Name != `depth{q="a"}` {
		t.Fatalf("glob query = %+v", got)
	}
	// Range restriction.
	from := start.Add(2 * time.Second).UnixMilli()
	if got := s.Query([]string{"work_total"}, from, 0); len(got[0].Points) != 3 {
		t.Fatalf("range query points = %d, want 3", len(got[0].Points))
	}
	if got := s.Query([]string{"nope"}, 0, 0); len(got) != 0 {
		t.Fatalf("unknown series query = %+v", got)
	}
}

func TestDownsamplingDoublesStride(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("work_total")
	s, err := New(Config{Registry: r, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	start := time.UnixMilli(1_000_000)
	scrapeN(s, start, 40, func(i int) { c.Inc() })

	got := s.Query([]string{"work_total"}, 0, 0)
	if len(got) != 1 {
		t.Fatalf("series count = %d", len(got))
	}
	pts := got[0].Points
	if len(pts) > 8 {
		t.Fatalf("ring exceeded capacity: %d points", len(pts))
	}
	if len(pts) < 3 {
		t.Fatalf("over-decimated: %d points", len(pts))
	}
	// Values stay monotone and span most of the run: downsampling drops
	// resolution, not history.
	for i := 1; i < len(pts); i++ {
		if pts[i].V <= pts[i-1].V || pts[i].T <= pts[i-1].T {
			t.Fatalf("non-monotone after decimation: %+v", pts)
		}
	}
	if first := pts[0].V; first > 20 {
		t.Fatalf("oldest retained point is too recent: %g", first)
	}
}

func TestHistogramSyntheticSeries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("rpc_seconds", []float64{1, 2, 4}, "op", "round")
	s, err := New(Config{Registry: r, QuantileWindow: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	start := time.UnixMilli(1_000_000)
	scrapeN(s, start, 3, func(i int) {
		for j := 0; j < 10; j++ {
			h.Observe(1.5)
		}
	})

	// Synthetic names carry the suffix before the label braces.
	for _, name := range []string{
		`rpc_seconds_count{op="round"}`,
		`rpc_seconds_p50{op="round"}`,
		`rpc_seconds_p99{op="round"}`,
	} {
		got := s.Query([]string{name}, 0, 0)
		if len(got) != 1 {
			t.Fatalf("missing synthetic series %s (have %v)", name, s.SeriesNames())
		}
	}
	p99 := s.Query([]string{`rpc_seconds_p99{op="round"}`}, 0, 0)[0].Points
	last := p99[len(p99)-1].V
	if last < 1 || last > 2 {
		t.Fatalf("p99 of all-1.5s observations = %g, want within (1,2]", last)
	}
}

func TestMaxSeriesDropsAndCounts(t *testing.T) {
	r := obs.NewRegistry()
	for i := 0; i < 30; i++ {
		r.Counter("many_total", "i", string(rune('a'+i)))
	}
	s, err := New(Config{Registry: r, MaxSeries: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.scrapeAt(time.UnixMilli(1_000_000))
	if n := s.NumSeries(); n > 10 {
		t.Fatalf("stored %d series past MaxSeries", n)
	}
	// The registry's tsdb_dropped_series_total counter recorded the rest.
	var dropped float64
	for _, sv := range r.Collect() {
		if sv.Name == "tsdb_dropped_series_total" {
			dropped = sv.Value
		}
	}
	if dropped == 0 {
		t.Fatal("tsdb_dropped_series_total not incremented")
	}
}

func TestReduceSemantics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("level")
	s, err := New(Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	// Pending before any data.
	if _, ok := s.Reduce("ops_total", "last", 0); ok {
		t.Fatal("reduce on empty store must be pending")
	}
	start := time.UnixMilli(1_000_000)
	vals := []float64{3, 1, 4, 1, 5}
	scrapeN(s, start, 5, func(i int) {
		c.Add(int64(i))
		g.Set(vals[i])
	})

	check := func(reducer string, window time.Duration, want float64) {
		t.Helper()
		v, ok := s.Reduce("level", reducer, window)
		if !ok || v != want {
			t.Fatalf("%s(level,%v) = %g/%v, want %g/true", reducer, window, v, ok, want)
		}
	}
	check("last", 0, 5)
	check("min", 0, 1)
	check("max", 0, 5)
	check("spread", 0, 4)
	check("avg", 0, (3+1+4+1+5)/5.0)

	// Counter samples: 0,1,3,6,10 → delta over all history = 10.
	if v, ok := s.Reduce("ops_total", "delta", 0); !ok || v != 10 {
		t.Fatalf("delta = %g/%v", v, ok)
	}
	if v, ok := s.Reduce("ops_total", "rate", 0); !ok || v != 10.0/4 {
		t.Fatalf("rate = %g/%v, want 2.5", v, ok)
	}
	// A window wider than the data span is pending, not zero.
	if _, ok := s.Reduce("level", "avg", time.Hour); ok {
		t.Fatal("window wider than data must be pending")
	}
	// Unknown series and unknown reducer are pending/invalid.
	if _, ok := s.Reduce("missing", "last", 0); ok {
		t.Fatal("unknown series must be pending")
	}
	if _, ok := s.Reduce("level", "bogus", 0); ok {
		t.Fatal("unknown reducer must not report ok")
	}
}

func TestReduceQuantileOverWindow(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	s, err := New(Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	start := time.UnixMilli(1_000_000)
	// First 3 scrapes observe slow (3s), the last 3 fast (0.5s).
	scrapeN(s, start, 6, func(i int) {
		v := 3.0
		if i >= 3 {
			v = 0.5
		}
		for j := 0; j < 10; j++ {
			h.Observe(v)
		}
	})
	// Whole-history p99 sees the slow observations…
	vAll, ok := s.Reduce("lat_seconds", "p99", 0)
	if !ok || vAll < 2 {
		t.Fatalf("all-history p99 = %g/%v, want > 2", vAll, ok)
	}
	// …a 2s window sees only the fast tail.
	vWin, ok := s.Reduce("lat_seconds", "p99", 2*time.Second)
	if !ok || vWin > 1 {
		t.Fatalf("windowed p99 = %g/%v, want <= 1", vWin, ok)
	}
}

func TestWriteDumpShape(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("work_total").Add(5)
	s, err := New(Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	s.scrapeAt(time.UnixMilli(1_000_000))
	var sb strings.Builder
	if err := s.WriteDump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, `{"tsdb":1`) {
		t.Fatalf("dump must lead with the sniff tag: %s", out[:40])
	}
	var doc struct {
		TSDB       int   `json:"tsdb"`
		IntervalMS int64 `json:"interval_ms"`
		Series     []struct {
			Name   string      `json:"name"`
			Points [][]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sd := range doc.Series {
		if sd.Name == "work_total" {
			found = true
			if len(sd.Points) != 1 || sd.Points[0][1] != 5 {
				t.Fatalf("work_total points = %v", sd.Points)
			}
		}
	}
	if !found {
		t.Fatal("work_total missing from dump")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	s.Start()
	s.Close()
	s.ScrapeOnce()
	if s.NumSeries() != 0 || s.SeriesNames() != nil || s.Query([]string{"*"}, 0, 0) != nil {
		t.Fatal("nil store leaked data")
	}
	if _, ok := s.Reduce("x", "last", 0); ok {
		t.Fatal("nil store reduce reported ok")
	}
	if err := s.WriteDump(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobMatching(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"a_total", "a_total", true},
		{"a_total", "a_total_x", false},
		{"*", "anything", true},
		{"a*", "a_total", true},
		{"*_total", "a_total", true},
		{"a*z", "abcz", true},
		{"a*z", "abc", false},
		{"robust_rejected_updates_total*", `robust_rejected_updates_total{reason="norm"}`, true},
		{"*p99*", `rpc_seconds_p99{op="x"}`, true},
	}
	for _, c := range cases {
		if got := matches(c.pattern, c.name); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

// TestHotPathAllocFree pins the acceptance bar: with a store scraping
// the registry, hot-path Inc/Observe stay allocation-free, and the
// disabled (nil) store adds zero allocations anywhere it is threaded.
func TestHotPathAllocFree(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("hot_total")
	h := r.Histogram("hot_seconds", []float64{1, 2})
	s, err := New(Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	s.scrapeAt(time.UnixMilli(1_000_000))
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.5)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op with a live store", n)
	}
	var nilStore *Store
	if n := testing.AllocsPerRun(200, func() {
		nilStore.ScrapeOnce()
		nilStore.Close()
		_, _ = nilStore.Reduce("x", "last", 0)
	}); n != 0 {
		t.Fatalf("nil store allocates %v per op", n)
	}
}
