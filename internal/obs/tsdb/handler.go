package tsdb

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// jsonPoint renders one sample as [t, v] with non-finite values as
// null, so the payload is valid JSON for any browser.
type jsonPoint Point

func (p jsonPoint) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 32)
	b = append(b, '[')
	b = strconv.AppendInt(b, p.T, 10)
	b = append(b, ',')
	if math.IsInf(p.V, 0) || math.IsNaN(p.V) {
		b = append(b, "null"...)
	} else {
		b = strconv.AppendFloat(b, p.V, 'g', -1, 64)
	}
	return append(b, ']'), nil
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

func toJSONSeries(in []SeriesData) []jsonSeries {
	out := make([]jsonSeries, len(in))
	for i, sd := range in {
		js := jsonSeries{Name: sd.Name, Points: make([]jsonPoint, len(sd.Points))}
		for j, p := range sd.Points {
			js.Points[j] = jsonPoint(p)
		}
		out[i] = js
	}
	return out
}

// JSONError writes a 4xx/5xx response as {"error": msg} with the JSON
// content type, so API clients never have to sniff plain-text errors.
func JSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// QueryHandler serves range queries as JSON:
//
//	GET /api/query?series=<pattern>[&series=...][&from=ms][&to=ms][&last=duration]
//
// series patterns may use '*' globs; 'last' is a relative shorthand
// ("5m") overriding 'from'. The response is
// {"now": <ms>, "series": [{"name":..., "points": [[t,v],...]}]}.
// Malformed parameters get a 400 with a JSON {"error": ...} body.
func (s *Store) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		patterns := q["series"]
		if len(patterns) == 0 {
			JSONError(w, http.StatusBadRequest, "missing series parameter")
			return
		}
		// Comma-splitting lets one parameter carry several patterns.
		var flat []string
		for _, p := range patterns {
			for _, part := range strings.Split(p, ",") {
				if part = strings.TrimSpace(part); part != "" {
					flat = append(flat, part)
				}
			}
		}
		if len(flat) == 0 {
			JSONError(w, http.StatusBadRequest, "empty series parameter")
			return
		}
		now := time.Now().UnixMilli()
		var from, to int64
		var err error
		if v := q.Get("from"); v != "" {
			if from, err = strconv.ParseInt(v, 10, 64); err != nil {
				JSONError(w, http.StatusBadRequest, "bad from parameter (want unix milliseconds): "+v)
				return
			}
		}
		if v := q.Get("to"); v != "" {
			if to, err = strconv.ParseInt(v, 10, 64); err != nil {
				JSONError(w, http.StatusBadRequest, "bad to parameter (want unix milliseconds): "+v)
				return
			}
		}
		if last := q.Get("last"); last != "" {
			d, err := time.ParseDuration(last)
			if err != nil || d <= 0 {
				JSONError(w, http.StatusBadRequest, "bad last parameter (want positive duration): "+last)
				return
			}
			from = now - d.Milliseconds()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"now":    now,
			"series": toJSONSeries(s.Query(flat, from, to)),
		})
	})
}

// SeriesHandler serves the stored series inventory as JSON:
// {"count": N, "series": ["..."]} — check.sh asserts the count stays
// under budget at the million-device scale.
func (s *Store) SeriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		names := s.SeriesNames()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"count":  len(names),
			"series": names,
		})
	})
}

// WriteDump writes the whole store as one JSON document:
//
//	{"tsdb":1,"interval_ms":...,"series":[{"name":...,"points":[[t,v],...]}]}
//
// The leading "tsdb" key doubles as the sniff tag middleplot uses to
// recognize a dump file. Nil-safe (writes nothing).
func (s *Store) WriteDump(w io.Writer) error {
	if s == nil {
		return nil
	}
	all := s.Query([]string{"*"}, 0, 0)
	doc := struct {
		TSDB       int          `json:"tsdb"`
		IntervalMS int64        `json:"interval_ms"`
		Series     []jsonSeries `json:"series"`
	}{TSDB: 1, IntervalMS: s.cfg.Interval.Milliseconds(), Series: toJSONSeries(all)}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// DumpToFile scrapes once more and writes the dump to path. Nil-safe.
func (s *Store) DumpToFile(path string) error {
	if s == nil {
		return nil
	}
	s.ScrapeOnce()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
