// Package obs is the repository's observability kit: named counters,
// gauges and fixed-bucket histograms behind a registry, a lightweight
// span timer for per-phase wall-clock breakdowns, a structured JSONL
// event emitter, Prometheus-text exposition, an HTTP introspection
// server (/metrics, /status, /debug/pprof/*) and machine-readable run
// summaries. Standard library only — no external dependencies.
//
// Observability is off by default and must cost nothing when off. The
// contract is the nil registry: every constructor and instrument method
// is safe on a nil receiver and does no work there, so hot paths hold
// instrument pointers unconditionally —
//
//	span := reg.Span("sim_phase_seconds", "phase", "local_train")
//	...
//	tok := span.Begin()   // nil span: zero-cost, no clock read
//	work()
//	tok.End()
//
// — and a component is instrumented by handing it a *Registry (or not).
// Instruments update via sync/atomic only: all of them are safe for
// concurrent use and allocation-free after registration.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates instrument families for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered instrument: a metric family name plus a
// fixed label set. Exactly one of c/g/gf/h is non-nil.
type series struct {
	family string
	labels string // rendered `k1="v1",k2="v2"`, or ""
	kind   kind
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// key returns the unique registry key for the series.
func (s *series) key() string {
	if s.labels == "" {
		return s.family
	}
	return s.family + "{" + s.labels + "}"
}

// Registry is a named set of instruments. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled mode: it hands out
// nil instruments whose methods do nothing.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	kinds  map[string]kind // family -> kind, guards cross-type reuse
	bounds map[string]string

	// Cardinality governance (see cardinality.go): per-family label-set
	// budgets, distinct-series counts, the space-saving summaries of
	// folded label sets, and the per-family dropped counters.
	budgets   map[string]int
	famCount  map[string]int
	foldTrack map[string]*spaceSaving
	dropped   map[string]*Counter
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:     map[string]*series{},
		kinds:     map[string]kind{},
		bounds:    map[string]string{},
		budgets:   map[string]int{},
		famCount:  map[string]int{},
		foldTrack: map[string]*spaceSaving{},
		dropped:   map[string]*Counter{},
	}
}

// renderLabels turns alternating key, value strings into the canonical
// Prometheus label body. Label values are escaped per the text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// register resolves (family, labels) to its series, creating it with
// mk on first use and panicking on a kind mismatch with prior use. A
// family at its label budget resolves new label sets to the shared
// `other` series instead (see cardinality.go).
func (r *Registry) register(family string, k kind, labels []string, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.kinds[family]; ok && prior != k {
		panic(fmt.Sprintf("obs: %s already registered as %s, not %s", family, prior, k))
	}
	s := &series{family: family, labels: renderLabels(labels), kind: k}
	if existing, ok := r.byKey[s.key()]; ok {
		return existing
	}
	if len(labels) > 0 && r.overBudgetLocked(family) {
		r.kinds[family] = k
		return r.foldLocked(family, k, labels, mk)
	}
	made := mk()
	made.family, made.labels, made.kind = s.family, s.labels, s.kind
	r.byKey[s.key()] = made
	r.kinds[family] = k
	r.famCount[family]++
	return made
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Counter registers (or fetches) a counter series. Labels are
// alternating key, value pairs fixed at registration.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, kindCounter, labels, func() *series {
		return &series{c: &Counter{}}
	})
	return s.c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- gauge -----------------------------------------------------------------

// Gauge is a float64 that can go up and down. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, kindGauge, labels, func() *series {
		return &series{g: &Gauge{}}
	})
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at read time
// (exposition or snapshot). Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, kindGauge, labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.gf = fn
	s.g = nil
	r.mu.Unlock()
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d atomically.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
