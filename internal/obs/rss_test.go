package obs

import (
	"runtime"
	"testing"
)

func TestPeakRSSBytes(t *testing.T) {
	got := PeakRSSBytes()
	if runtime.GOOS != "linux" {
		t.Skipf("no procfs on %s; got %d", runtime.GOOS, got)
	}
	// Any live Go process has paged in at least a megabyte.
	if got < 1<<20 {
		t.Fatalf("peak RSS %d bytes implausibly small", got)
	}
}

func TestProcessMetricsIncludePeakRSS(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	snap := r.Snapshot()
	if _, ok := snap["process_peak_rss_bytes"]; !ok {
		t.Fatalf("process_peak_rss_bytes missing from snapshot %v", snap)
	}
}
