package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by family then label set so
// output is deterministic. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, fam := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

type familyView struct {
	name   string
	kind   kind
	series []*series
}

// sortedFamilies snapshots the registry ordered by family name and,
// within a family, by label set.
func (r *Registry) sortedFamilies() []familyView {
	r.mu.Lock()
	byFam := map[string]*familyView{}
	for _, s := range r.byKey {
		f, ok := byFam[s.family]
		if !ok {
			f = &familyView{name: s.family, kind: s.kind}
			byFam[s.family] = f
		}
		f.series = append(f.series, s)
	}
	r.mu.Unlock()
	out := make([]familyView, 0, len(byFam))
	for _, f := range byFam {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonValue makes a float safe for encoding/json, which rejects
// non-finite numbers: +Inf, -Inf and NaN become their exposition-format
// strings. The Prometheus text path needs no such guard (formatFloat
// already renders "+Inf"/"NaN" per the format).
func jsonValue(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return formatFloat(v)
	}
	return v
}

// seriesName renders family{labels} (or bare family).
func seriesName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// labelsPlus appends one extra label pair to an existing rendered set.
func labelsPlus(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func writeSeries(w io.Writer, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(s.family, s.labels), s.c.Value())
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(s.family, s.labels), formatFloat(s.gf()))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(s.family, s.labels), formatFloat(s.g.Value()))
		return err
	case s.h != nil:
		h := s.h
		cum := h.snapshotBuckets()
		for i, bound := range h.bounds {
			le := labelsPlus(s.labels, `le="`+formatFloat(bound)+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.family, le, cum[i]); err != nil {
				return err
			}
		}
		le := labelsPlus(s.labels, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.family, le, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.family, braced(s.labels), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.family, braced(s.labels), h.Count())
		return err
	}
	return nil
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Snapshot returns every series' current value as a plain map suitable
// for JSON encoding: counters and gauges map to numbers, histograms to
// {count, sum, buckets: {le: cumulative}}. Nil-safe (returns nil).
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := map[string]any{}
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.series {
			key := seriesName(s.family, s.labels)
			switch {
			case s.c != nil:
				out[key] = s.c.Value()
			case s.gf != nil:
				out[key] = jsonValue(s.gf())
			case s.g != nil:
				out[key] = jsonValue(s.g.Value())
			case s.h != nil:
				cum := s.h.snapshotBuckets()
				buckets := map[string]int64{}
				for i, bound := range s.h.bounds {
					buckets[formatFloat(bound)] = cum[i]
				}
				buckets["+Inf"] = cum[len(cum)-1]
				out[key] = map[string]any{
					"count":   s.h.Count(),
					"sum":     jsonValue(s.h.Sum()),
					"buckets": buckets,
				}
			}
		}
	}
	return out
}
