package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace collects Chrome trace-event records ("X" complete events plus
// "M" metadata) so a run's causal structure — rounds containing phases
// containing RPCs — can be opened in Perfetto or chrome://tracing.
//
// Causality is explicit: every span carries its own id in args["span"]
// and its parent's id in args["parent"], so the tree survives tools
// that ignore stack nesting, and ValidateTraceEvents can check it.
// Components are told the parent id out of band (in-process via shared
// state, across fednet via the protocol envelope's Span field).
//
// A nil *Trace is the disabled mode: every method no-ops at the cost of
// one nil check, so hot paths hold the pointer unconditionally. Enabled
// recording takes a mutex and appends; the event buffer is bounded
// (DefaultTraceCap) and drops-with-count once full, keeping a
// long-lived daemon's memory finite.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	events  []TraceEvent
	names   map[int]string // pid -> process name metadata
	max     int
	dropped int64
}

// TraceEvent is one Chrome trace-event record. Ts and Dur are
// microseconds relative to the trace's start.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultTraceCap bounds the event buffer when NewTrace is given 0:
// 64k events ≈ 10k traced rounds, a few MB at most.
const DefaultTraceCap = 1 << 16

// NewTrace returns an empty trace whose clock starts now. maxEvents
// bounds the buffer (0 = DefaultTraceCap); once full, further events
// are dropped and counted.
func NewTrace(maxEvents int) *Trace {
	if maxEvents <= 0 {
		maxEvents = DefaultTraceCap
	}
	return &Trace{start: time.Now(), names: map[int]string{}, max: maxEvents}
}

// Enabled reports whether events are being collected (false for nil).
func (t *Trace) Enabled() bool { return t != nil }

// Now returns the current time (zero for nil) — the value to pass back
// to Complete as the span's start, avoiding a second clock source.
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// SetProcessName attaches a display name to a pid (shown as the process
// label in Perfetto). Idempotent per pid.
func (t *Trace) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.names[pid]; !ok {
		t.names[pid] = name
	}
	t.mu.Unlock()
}

// Complete records one "X" complete event spanning [start, start+d).
// span identifies this event and parent its enclosing span ("" for a
// root); both land in args alongside extraArgs, which may be nil and is
// not retained.
func (t *Trace) Complete(name, cat string, pid, tid int, start time.Time, d time.Duration, span, parent string, extraArgs map[string]any) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(extraArgs)+2)
	for k, v := range extraArgs {
		args[k] = v
	}
	if span != "" {
		args["span"] = span
	}
	if parent != "" {
		args["parent"] = parent
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  start.Sub(t.start).Microseconds(),
		Dur: d.Microseconds(),
		Pid: pid, Tid: tid, Args: args,
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of collected events (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the cap discarded (0 for nil).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a snapshot copy of the collected events, metadata
// first (nil for a nil trace).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.events)+len(t.names))
	for pid, name := range t.names {
		out = append(out, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	// Metadata iteration order is map-random; keep it deterministic.
	meta := out
	for i := 1; i < len(meta); i++ {
		for j := i; j > 0 && meta[j].Pid < meta[j-1].Pid; j-- {
			meta[j], meta[j-1] = meta[j-1], meta[j]
		}
	}
	return append(out, t.events...)
}

// WriteJSON writes the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable in Perfetto. Nil-safe: a nil trace
// writes an empty, still-valid document.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: t.Events(), DisplayUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadTraceJSON parses a document written by WriteJSON back into its
// event list.
func ReadTraceJSON(r io.Reader) ([]TraceEvent, error) {
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: decoding trace JSON: %w", err)
	}
	return doc.TraceEvents, nil
}

// ValidateTraceEvents checks the causal-tree invariants of a single
// process's span set: every complete event has a sane timestamp and
// duration, span ids are unique, and every parent reference resolves to
// a span whose [ts, ts+dur] window contains the child.
func ValidateTraceEvents(events []TraceEvent) error {
	spans := map[string]TraceEvent{}
	for i, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("obs: event %d (%s) has negative ts/dur (%d, %d)", i, e.Name, e.Ts, e.Dur)
		}
		id, _ := e.Args["span"].(string)
		if id == "" {
			continue
		}
		if _, dup := spans[id]; dup {
			return fmt.Errorf("obs: duplicate span id %q", id)
		}
		spans[id] = e
	}
	for i, e := range events {
		if e.Ph != "X" {
			continue
		}
		parent, _ := e.Args["parent"].(string)
		if parent == "" {
			continue
		}
		p, ok := spans[parent]
		if !ok {
			return fmt.Errorf("obs: event %d (%s) references unknown parent span %q", i, e.Name, parent)
		}
		if e.Ts < p.Ts || e.Ts+e.Dur > p.Ts+p.Dur {
			return fmt.Errorf("obs: event %d (%s) [%d,%d] escapes parent %q [%d,%d]",
				i, e.Name, e.Ts, e.Ts+e.Dur, parent, p.Ts, p.Ts+p.Dur)
		}
	}
	return nil
}
