package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_rounds_total").Add(4)
	RegisterProcessMetrics(reg)
	st := NewStatus()
	st.Set("role", "cloud")
	st.Set("round", 4)

	srv, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg, Status: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, body := getBody(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{"srv_rounds_total 4", "# TYPE process_goroutines gauge", "process_cpu_count "} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, body = getBody(t, base+"/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status status %d", resp.StatusCode)
	}
	var status struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Goroutines    int            `json:"goroutines"`
		Status        map[string]any `json:"status"`
		Metrics       map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if status.Status["role"] != "cloud" || status.Status["round"] != 4.0 {
		t.Fatalf("/status board %v", status.Status)
	}
	if status.Metrics["srv_rounds_total"] != 4.0 {
		t.Fatalf("/status metrics %v", status.Metrics["srv_rounds_total"])
	}
	if status.Goroutines <= 0 || status.UptimeSeconds < 0 {
		t.Fatalf("/status process fields: %+v", status)
	}

	resp, body = getBody(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	resp, _ = getBody(t, base+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", resp.StatusCode)
	}
}

func TestServerDebugTrace(t *testing.T) {
	tr := NewTrace(0)
	tr.SetProcessName(0, "sim")
	tr.Complete("round", "hfl", 0, 0, tr.Now(), time.Millisecond, "r1", "", nil)

	srv, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry(), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, body := getBody(t, "http://"+srv.Addr()+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	events, err := ReadTraceJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/debug/trace not trace JSON: %v\n%s", err, body)
	}
	if len(events) != 2 || events[0].Ph != "M" || events[1].Name != "round" {
		t.Fatalf("/debug/trace events %+v", events)
	}

	// Without a Trace configured the endpoint still serves a valid
	// (empty) document.
	bare, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, body = getBody(t, "http://"+bare.Addr()+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare /debug/trace status %d", resp.StatusCode)
	}
	if events, err := ReadTraceJSON(strings.NewReader(body)); err != nil || len(events) != 0 {
		t.Fatalf("bare /debug/trace: %v %v", events, err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	// A GaugeFunc that blocks mid-scrape until released lets us start a
	// request, call Shutdown concurrently, and check the scrape still
	// completes with a full body.
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	reg := NewRegistry()
	reg.Counter("shut_marker_total").Inc()
	reg.GaugeFunc("shut_slow_value", func() float64 {
		once.Do(func() { close(entered) })
		<-release
		return 1
	})

	srv, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{body: string(b), err: err}
	}()

	<-entered // scrape is in-flight
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the handler, not kill it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a scrape was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight scrape failed: %v", r.err)
	}
	if !strings.Contains(r.body, "shut_marker_total 1") || !strings.Contains(r.body, "shut_slow_value 1") {
		t.Fatalf("in-flight scrape body truncated:\n%s", r.body)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("post-shutdown request succeeded")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sum_steps_total").Add(9)
	reg.Gauge("sum_final_acc").Set(0.8125)

	started := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	m := Manifest{
		Name:     "middlesim-test",
		Command:  []string{"middlesim", "-fig", "6"},
		Started:  started,
		Finished: started.Add(42 * time.Second),
		Extra:    map[string]any{"seed": 1.0, "strategy": "middle"},
	}
	path := SummaryPath(filepath.Join(t.TempDir(), "results"), m.Name, started)
	if !strings.HasSuffix(path, "middlesim-test-20260805T100000.json") {
		t.Fatalf("summary path %q", path)
	}
	if err := WriteSummary(path, m, reg); err != nil {
		t.Fatal(err)
	}

	got, metrics, err := ReadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || !got.Started.Equal(m.Started) || !got.Finished.Equal(m.Finished) {
		t.Fatalf("manifest round-trip: %+v", got)
	}
	if len(got.Command) != 3 || got.Command[2] != "6" {
		t.Fatalf("command %v", got.Command)
	}
	if got.Extra["strategy"] != "middle" {
		t.Fatalf("extra %v", got.Extra)
	}
	if metrics["sum_steps_total"] != 9.0 || metrics["sum_final_acc"] != 0.8125 {
		t.Fatalf("metrics %v", metrics)
	}
}
