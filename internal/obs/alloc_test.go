package obs

import (
	"testing"
	"time"
)

// The observability contract: disabled (nil) instruments are free, and
// enabled hot-path updates are allocation-free after registration.

func TestDisabledInstrumentsAllocFree(t *testing.T) {
	var reg *Registry
	c := reg.Counter("off_total")
	g := reg.Gauge("off_gauge")
	h := reg.Histogram("off_seconds", nil)
	sp := reg.Span("off_span_seconds")

	checks := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc(); c.Add(3) }},
		{"gauge", func() { g.Set(1); g.Add(2) }},
		{"histogram", func() { h.Observe(0.5) }},
		{"span", func() { sp.Begin().End() }},
		{"span_observe", func() { sp.Observe(time.Millisecond) }},
	}
	for _, tc := range checks {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("disabled %s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestEnabledUpdatesAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("on_total")
	g := reg.Gauge("on_gauge")
	h := reg.Histogram("on_seconds", nil)
	sp := reg.Span("on_span_seconds")

	checks := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc(); c.Add(3) }},
		{"gauge", func() { g.Set(1); g.Add(2) }},
		{"histogram", func() { h.Observe(0.5) }},
		{"span", func() { sp.Begin().End() }},
		{"span_observe", func() { sp.Observe(time.Millisecond) }},
	}
	for _, tc := range checks {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("enabled %s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}
