package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusRoundTrip renders a registry with every exposition edge
// case — escaped label values, +Inf/NaN gauges — and re-parses the text
// the way a reference scraper does (name{labels} value per line,
// backslash-escape rules from the 0.0.4 text format), checking the
// values survive the trip.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total").Add(42)
	r.Counter("esc_total", "path", `C:\dir`+"\n"+`"quoted"`).Add(7)
	r.Gauge("inf_gauge").Set(math.Inf(1))
	r.Gauge("neginf_gauge").Set(math.Inf(-1))
	r.Gauge("nan_gauge").Set(math.NaN())
	r.Gauge("neg_gauge").Set(-2.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed := scrapeText(t, sb.String())

	if v := parsed["plain_total"]; v != 42 {
		t.Errorf("plain_total = %g", v)
	}
	// The escaped label value must round-trip to the original bytes.
	wantKey := `esc_total{path="C:\\dir\n\"quoted\""}`
	if v, ok := parsed[wantKey]; !ok || v != 7 {
		t.Errorf("escaped series missing or wrong: %v (keys: %v)", v, keysOf(parsed))
	}
	if unescapeLabelValue(`C:\\dir\n\"quoted\"`) != `C:\dir`+"\n"+`"quoted"` {
		t.Error("unescape does not invert the writer's escaping")
	}
	if !math.IsInf(parsed["inf_gauge"], 1) {
		t.Errorf("inf_gauge = %g", parsed["inf_gauge"])
	}
	if !math.IsInf(parsed["neginf_gauge"], -1) {
		t.Errorf("neginf_gauge = %g", parsed["neginf_gauge"])
	}
	if !math.IsNaN(parsed["nan_gauge"]) {
		t.Errorf("nan_gauge = %g", parsed["nan_gauge"])
	}
	if parsed["neg_gauge"] != -2.5 {
		t.Errorf("neg_gauge = %g", parsed["neg_gauge"])
	}
}

// scrapeText parses Prometheus text exposition the way a scraper does:
// strconv.ParseFloat accepts "+Inf"/"NaN" exactly as the format
// specifies.
func scrapeText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// unescapeLabelValue inverts the text-format label escaping.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSnapshotNonFiniteJSON pins that /status survives non-finite gauge
// values: encoding/json rejects raw Inf/NaN, so Snapshot must stringify
// them.
func TestSnapshotNonFiniteJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge").Set(math.Inf(1))
	r.Gauge("nan_gauge").Set(math.NaN())
	h := r.Histogram("h_seconds", []float64{1})
	h.Observe(math.Inf(1)) // sum becomes +Inf

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot is not JSON-encodable: %v", err)
	}
	s := string(raw)
	if !strings.Contains(s, `"inf_gauge":"+Inf"`) {
		t.Errorf("missing stringified +Inf: %s", s)
	}
	if !strings.Contains(s, `"nan_gauge":"NaN"`) {
		t.Errorf("missing stringified NaN: %s", s)
	}
}

func TestCollectShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "op", "x").Add(3)
	r.Gauge("g").Set(1.5)
	r.GaugeFunc("gf", func() float64 { return 9 })
	h := r.Histogram("h_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	byName := map[string]SeriesValue{}
	for _, sv := range r.Collect() {
		byName[sv.Name] = sv
	}
	if sv := byName[`c_total{op="x"}`]; sv.Kind != "counter" || sv.Value != 3 {
		t.Fatalf("counter = %+v", sv)
	}
	if sv := byName["g"]; sv.Kind != "gauge" || sv.Value != 1.5 {
		t.Fatalf("gauge = %+v", sv)
	}
	if sv := byName["gf"]; sv.Value != 9 {
		t.Fatalf("gaugefunc = %+v", sv)
	}
	sv := byName["h_seconds"]
	if sv.Kind != "histogram" || sv.Hist == nil {
		t.Fatalf("histogram = %+v", sv)
	}
	if got := sv.Hist.Cum; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("cum = %v", got)
	}
	if sv.Hist.Count != 2 || sv.Hist.Sum != 2 {
		t.Fatalf("count/sum = %d/%g", sv.Hist.Count, sv.Hist.Sum)
	}
}
