package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Status is a small concurrent key→value board for the /status
// endpoint: components post their live state ("role", "round", …) and
// the server snapshots it per request. Nil-safe.
type Status struct {
	mu sync.Mutex
	m  map[string]any
}

// NewStatus returns an empty status board.
func NewStatus() *Status { return &Status{m: map[string]any{}} }

// Set stores one key.
func (s *Status) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// Snapshot returns a copy of the board (nil for a nil board).
func (s *Status) Snapshot() map[string]any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// ServerConfig configures the introspection HTTP listener.
type ServerConfig struct {
	// Addr is the TCP listen address; ":0" forms pick an ephemeral port
	// (read the resolved one from Server.Addr).
	Addr string
	// Registry backs /metrics and the metrics part of /status.
	Registry *Registry
	// Status, when set, backs the "status" object of /status.
	Status *Status
	// Trace, when set, backs /debug/trace (Chrome trace-event JSON).
	Trace *Trace
	// Handlers mounts extra endpoints by path — the tsdb's /api/query,
	// /api/series and /dashboard, the SLO engine's /api/alerts. They are
	// listed on the index page alongside the built-ins.
	Handlers map[string]http.Handler
}

// Server serves /metrics (Prometheus text), /status (JSON) and
// /debug/pprof/* for live profiling.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// StartServer listens on cfg.Addr and serves in a background goroutine.
// Process-level runtime gauges (goroutines, heap, GC, peak RSS) are
// registered on cfg.Registry as a side effect, so every server-carrying
// process reports them without extra wiring.
func StartServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	RegisterProcessMetrics(cfg.Registry)
	s := &Server{ln: ln, start: time.Now()}

	paths := []string{"/metrics", "/status", "/debug/trace", "/debug/pprof/"}
	for p := range cfg.Handlers {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "middle observability\n\n")
		for _, p := range paths {
			fmt.Fprintln(w, p)
		}
	})
	for p, h := range cfg.Handlers {
		mux.Handle(p, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"now":            time.Now().UTC().Format(time.RFC3339Nano),
			"uptime_seconds": time.Since(s.start).Seconds(),
			"goroutines":     runtime.NumGoroutine(),
			"status":         cfg.Status.Snapshot(),
			"metrics":        cfg.Registry.Snapshot(),
			"cardinality":    cfg.Registry.CardinalityReport(),
		})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Trace.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the resolved listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers immediately. Prefer
// Shutdown, which lets in-flight scrapes finish.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new requests and waits for in-flight
// handlers (a scrape mid-response, a pprof profile) to complete, up to
// ctx's deadline; past the deadline it falls back to a hard Close.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
		return err
	}
	return nil
}

// RegisterProcessMetrics adds live Go-runtime and process gauges
// (goroutines, heap allocated and in-use bytes, GC cycles and total GC
// pause, CPU count, peak RSS, registered-series count) to the registry,
// evaluated at scrape time. Idempotent (re-registration replaces the
// function with an equivalent one) and nil-safe; StartServer calls it,
// so any process serving /metrics gets the runtime family for free.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("process_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("process_heap_inuse_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})
	r.GaugeFunc("process_gc_cycles_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	r.GaugeFunc("process_gc_pause_seconds_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
	r.GaugeFunc("process_cpu_count", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc("process_peak_rss_bytes", func() float64 {
		return float64(PeakRSSBytes())
	})
	r.GaugeFunc("obs_series", func() float64 {
		return float64(r.NumSeries())
	})
	// build_info follows the Prometheus info-metric convention: constant
	// value 1, identity in the labels — joinable against any other series
	// so dashboards and bundles correlate a run to a commit.
	b := ReadBuild()
	r.Gauge("build_info",
		"go_version", b.GoVersion,
		"vcs_revision", b.VCSRevision,
		"vcs_time", b.VCSTime).Set(1)
}
