package slo

import (
	"encoding/json"
	"net/http"
)

// Handler serves the live alert board as JSON:
//
//	{"alerts":[{"name":...,"state":"ok|pending|firing",...}],
//	 "firing": N, "breached": ["rule", ...]}
//
// "breached" lists rules that fired at ANY point in the run (the exit
// gate's view); "firing" counts rules failing right now. Nil-safe
// (serves an empty board).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		alerts := e.Alerts()
		firing := 0
		for _, a := range alerts {
			if a.State == "firing" {
				firing++
			}
		}
		if alerts == nil {
			alerts = []Alert{}
		}
		breached := e.Breached()
		if breached == nil {
			breached = []string{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"alerts":   alerts,
			"firing":   firing,
			"breached": breached,
		})
	})
}
