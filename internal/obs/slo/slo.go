// Package slo is a declarative health gate over the tsdb: rules state
// what a healthy run looks like ("round p99 under 5s", "zero quorum
// misses per minute") as reductions over stored series, an engine
// evaluates them continuously, and the daemons turn "ever breached"
// into a non-zero exit code — so CI smoke runs fail on regressions a
// pass/fail test can't see.
//
// A rule expresses the HEALTHY condition; it breaches when the
// comparison is false. Rules whose window the data does not yet span
// are "pending" and never breach — a 60s-window rule cannot fire ten
// seconds into a run.
package slo

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"middle/internal/obs"
	"middle/internal/obs/tsdb"
)

// Rule is one health condition: Reducer(Series, Window) Op Threshold,
// optionally required to fail For a sustained duration before firing.
type Rule struct {
	// Name identifies the rule in alerts, events and exit summaries.
	Name string
	// Reducer is a tsdb reducer: last, avg, min, max, spread, delta,
	// rate, or pNN (histogram quantile).
	Reducer string
	// Series is a stored series name or '*' glob. Globs reduce each
	// match and take the worst (maximum).
	Series string
	// Window bounds the reduction (0 = all retained history).
	Window time.Duration
	// Op compares the reduced value to Threshold: < <= > >= == !=.
	// The rule is healthy when the comparison holds.
	Op string
	// Threshold is the healthy bound.
	Threshold float64
	// For requires the condition to fail continuously this long before
	// the rule fires (0 = fire on first failed evaluation).
	For time.Duration
}

func (r Rule) String() string {
	w := ""
	if r.Window > 0 {
		w = "," + r.Window.String()
	}
	s := fmt.Sprintf("%s: %s(%s%s) %s %g", r.Name, r.Reducer, r.Series, w, r.Op, r.Threshold)
	if r.For > 0 {
		s += " for " + r.For.String()
	}
	return s
}

// ruleRE parses `name: reducer(series[,window]) op threshold [for dur]`.
// Series may contain anything but ',' and '(' ')' at the top level —
// label braces included.
var ruleRE = regexp.MustCompile(`^\s*([A-Za-z0-9_.-]+)\s*:\s*([A-Za-z0-9]+)\(\s*([^,()]+?)\s*(?:,\s*([0-9a-z.]+)\s*)?\)\s*(<=|>=|==|!=|<|>)\s*([-+0-9.eE]+|[0-9]+[KMGTkmgt]i?[Bb]?)\s*(?:for\s+([0-9a-z.]+)\s*)?$`)

// ParseRules parses a rule list: rules separated by ';' or newlines.
// Blank entries and '#' comment lines are skipped. The literal string
// "default" yields DefaultRules. Thresholds accept size suffixes
// (2GiB, 512MiB, 4K) alongside plain numbers.
func ParseRules(s string) ([]Rule, error) {
	if strings.TrimSpace(s) == "default" {
		return DefaultRules(), nil
	}
	var rules []Rule
	for _, line := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := ruleRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("slo: cannot parse rule %q (want name: reducer(series[,window]) op threshold [for dur])", line)
		}
		r := Rule{Name: m[1], Reducer: m[2], Series: m[3], Op: m[5]}
		if m[4] != "" {
			d, err := time.ParseDuration(m[4])
			if err != nil {
				return nil, fmt.Errorf("slo: rule %q: bad window %q: %v", r.Name, m[4], err)
			}
			r.Window = d
		}
		thr, err := parseThreshold(m[6])
		if err != nil {
			return nil, fmt.Errorf("slo: rule %q: bad threshold %q: %v", r.Name, m[6], err)
		}
		r.Threshold = thr
		if m[7] != "" {
			d, err := time.ParseDuration(m[7])
			if err != nil {
				return nil, fmt.Errorf("slo: rule %q: bad for-duration %q: %v", r.Name, m[7], err)
			}
			r.For = d
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: no rules in %q", s)
	}
	return rules, nil
}

var sizeSuffixes = []struct {
	suffix string
	mult   float64
}{
	{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
	{"G", 1e9}, {"M", 1e6}, {"K", 1e3}, {"k", 1e3},
}

func parseThreshold(s string) (float64, error) {
	for _, sz := range sizeSuffixes {
		if strings.HasSuffix(s, sz.suffix) {
			base, err := strconv.ParseFloat(strings.TrimSuffix(s, sz.suffix), 64)
			if err != nil {
				return 0, err
			}
			return base * sz.mult, nil
		}
	}
	return strconv.ParseFloat(s, 64)
}

// DefaultRules is the standing health contract for a simulation or
// daemon run: latency, liveness, robustness, memory, and progress.
// Rules over series a run never produces stay pending and pass.
func DefaultRules() []Rule {
	mustParse := func(s string) []Rule {
		rules, err := ParseRules(s)
		if err != nil {
			panic(err)
		}
		return rules
	}
	return mustParse(strings.Join([]string{
		// Latency: simulated rounds and live cloud rounds stay fast.
		`sim_round_p99: p99(sim_round_seconds,60s) < 5`,
		`cloud_round_p99: p99(fednet_rpc_seconds{op="cloud_round"},60s) < 30`,
		// Liveness: quorums keep being met.
		`quorum_misses: delta(hfl_quorum_misses_total,60s) <= 0`,
		`fednet_quorum_misses: delta(fednet_quorum_misses_total,60s) <= 0`,
		// Robustness: no update floods past the robust aggregators.
		`robust_rejects: delta(robust_rejected_updates_total*,60s) <= 100`,
		// Memory: the scale-out ceiling from ROADMAP.
		`rss_ceiling: last(process_peak_rss_bytes) < 2GiB`,
		// Self-healing: every device re-homes within the lease deadline
		// (no device stays stranded 5s past a failover), and failovers
		// themselves resolve quickly.
		`stranded_devices: last(fednet_stranded_devices) <= 0 for 5s`,
		`failover_latency: p99(fednet_failover_seconds,60s) < 5`,
		// Progress: global accuracy still moving over a 10-minute window.
		`accuracy_stall: spread(hfl_global_accuracy,600s) > 0.0005`,
	}, "; "))
}

// Alert is one rule's live state.
type Alert struct {
	Name  string  `json:"name"`
	State string  `json:"state"` // "ok" | "pending" | "firing"
	Value float64 `json:"value"`
	Rule  string  `json:"rule"`
	// Detail is a human line: "delta(hfl_quorum_misses_total,60s) = 3, want <= 0".
	Detail string `json:"detail,omitempty"`
	// Since is when the rule entered its current state (unix ms).
	Since int64 `json:"since,omitempty"`
}

// ruleState tracks one rule across evaluations.
type ruleState struct {
	rule        Rule
	firing      bool
	failedSince time.Time // zero = currently healthy or pending
	everFired   bool
	lastValue   float64
	lastState   string
	since       time.Time
}

// Config configures an Engine.
type Config struct {
	// Store is the tsdb the rules reduce over (required).
	Store *tsdb.Store
	// Rules to evaluate (required, non-empty).
	Rules []Rule
	// Interval between evaluations for Start (default: the store's
	// scrape interval, else 1s).
	Interval time.Duration
	// Events, when set, receives slo_breach / slo_resolve events on
	// state transitions.
	Events *obs.Emitter
	// Registry, when set, gains slo_rules / slo_firing gauges and an
	// slo_breaches_total counter.
	Registry *obs.Registry
	// OnBreach, when set, is invoked once per rule transition into
	// firing, after the evaluation pass and outside the engine's lock —
	// the flight recorder hooks here so a bundle is captured while the
	// breach-time state is still live. It runs synchronously in the
	// evaluation goroutine, so a capture completes before the daemons'
	// exit gates can act on Breached.
	OnBreach func(rule string)
}

// Engine evaluates rules on a cadence and remembers every breach.
// Nil-safe: a nil *Engine no-ops everywhere, so callers thread it
// unconditionally like the other obs types.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	states []*ruleState

	firingGauge *obs.Gauge
	breachCount *obs.Counter

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds an engine. Errors when Store or Rules are missing.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("slo: Config.Store is required")
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("slo: Config.Rules is empty")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Store.Interval()
		if cfg.Interval <= 0 {
			cfg.Interval = time.Second
		}
	}
	e := &Engine{cfg: cfg}
	for _, r := range cfg.Rules {
		e.states = append(e.states, &ruleState{rule: r, lastState: "pending"})
	}
	if cfg.Registry != nil {
		cfg.Registry.Gauge("slo_rules").Set(float64(len(cfg.Rules)))
		e.firingGauge = cfg.Registry.Gauge("slo_firing")
		e.breachCount = cfg.Registry.Counter("slo_breaches_total")
	}
	return e, nil
}

// Start launches the background evaluation loop; Close stops it.
func (e *Engine) Start() {
	if e == nil || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				e.EvalNow()
			case <-e.stop:
				return
			}
		}
	}()
}

// Close stops the loop and runs one final evaluation so the freshest
// scrape is judged before the exit gate reads Breached. Nil-safe.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	if e.stop != nil {
		close(e.stop)
		e.wg.Wait()
		e.stop = nil
	}
	e.EvalNow()
}

func compare(v float64, op string, thr float64) bool {
	switch op {
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}

// EvalNow evaluates every rule against the store once. Nil-safe.
// OnBreach callbacks for rules that transitioned into firing run after
// the pass, outside the engine's lock.
func (e *Engine) EvalNow() {
	if e == nil {
		return
	}
	now := time.Now()
	var newlyFiring []string
	e.mu.Lock()
	firing := 0
	for _, st := range e.states {
		v, ok := e.cfg.Store.Reduce(st.rule.Series, st.rule.Reducer, st.rule.Window)
		var state string
		switch {
		case !ok:
			state = "pending"
			st.failedSince = time.Time{}
		case compare(v, st.rule.Op, st.rule.Threshold):
			state = "ok"
			st.failedSince = time.Time{}
		default:
			if st.failedSince.IsZero() {
				st.failedSince = now
			}
			if now.Sub(st.failedSince) >= st.rule.For {
				state = "firing"
			} else {
				state = "pending" // failing, but not sustained long enough
			}
		}
		st.lastValue = v
		if state != st.lastState {
			st.since = now
		}
		wasFiring := st.firing
		st.firing = state == "firing"
		st.lastState = state
		if st.firing {
			firing++
			if !wasFiring {
				st.everFired = true
				if e.breachCount != nil {
					e.breachCount.Inc()
				}
				e.cfg.Events.Emit("slo_breach",
					"rule", st.rule.Name,
					"value", v,
					"detail", detail(st.rule, v))
				newlyFiring = append(newlyFiring, st.rule.Name)
			}
		} else if wasFiring {
			e.cfg.Events.Emit("slo_resolve",
				"rule", st.rule.Name,
				"value", v)
		}
	}
	e.firingGauge.Set(float64(firing))
	e.mu.Unlock()
	if e.cfg.OnBreach != nil {
		for _, name := range newlyFiring {
			e.cfg.OnBreach(name)
		}
	}
}

func detail(r Rule, v float64) string {
	w := ""
	if r.Window > 0 {
		w = "," + r.Window.String()
	}
	return fmt.Sprintf("%s(%s%s) = %g, want %s %g", r.Reducer, r.Series, w, v, r.Op, r.Threshold)
}

// Alerts snapshots every rule's live state, rule order preserved.
// Nil-safe (returns nil).
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.states))
	for _, st := range e.states {
		a := Alert{
			Name:  st.rule.Name,
			State: st.lastState,
			Value: st.lastValue,
			Rule:  st.rule.String(),
		}
		if st.lastState == "firing" {
			a.Detail = detail(st.rule, st.lastValue)
		}
		if !st.since.IsZero() {
			a.Since = st.since.UnixMilli()
		}
		out = append(out, a)
	}
	return out
}

// Breached returns the names of every rule that fired at any point in
// the run — the exit gate: non-empty means the run fails even if the
// rule recovered later. Nil-safe (returns nil).
func (e *Engine) Breached() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.states {
		if st.everFired {
			out = append(out, st.rule.Name)
		}
	}
	return out
}
