package slo

import (
	"strings"
	"testing"
	"time"

	"middle/internal/obs"
	"middle/internal/obs/tsdb"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(`round_p99: p99(sim_round_seconds,60s) < 5; quorum: delta(hfl_quorum_misses_total,1m) <= 0 for 10s
# a comment
rss: last(process_peak_rss_bytes) < 2GiB`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	r0 := rules[0]
	if r0.Name != "round_p99" || r0.Reducer != "p99" || r0.Series != "sim_round_seconds" ||
		r0.Window != time.Minute || r0.Op != "<" || r0.Threshold != 5 {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if rules[1].For != 10*time.Second {
		t.Fatalf("rule 1 for = %v", rules[1].For)
	}
	if rules[2].Threshold != float64(int64(2)<<30) {
		t.Fatalf("GiB threshold = %g", rules[2].Threshold)
	}
}

func TestParseRulesLabeledSeries(t *testing.T) {
	rules, err := ParseRules(`cloud: p99(fednet_rpc_seconds{op="cloud_round"},60s) < 30`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Series != `fednet_rpc_seconds{op="cloud_round"}` {
		t.Fatalf("series = %q", rules[0].Series)
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noparens: last series < 5",
		"badop: last(x) ~ 5",
		"badwin: last(x,notadur) < 5",
		"badthr: last(x) < abc",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) did not error", bad)
		}
	}
}

func TestDefaultRulesParse(t *testing.T) {
	rules, err := ParseRules("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != len(DefaultRules()) || len(rules) < 5 {
		t.Fatalf("default rules = %d", len(rules))
	}
}

// buildStore scrapes a registry n times at 1s spacing with the given
// per-scrape mutation and returns the store.
func buildStore(t *testing.T, r *obs.Registry, n int, between func(i int)) *tsdb.Store {
	t.Helper()
	s, err := tsdb.New(tsdb.Config{Registry: r, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if between != nil {
			between(i)
		}
		s.ScrapeOnce()
		// Real wall-clock spacing is irrelevant for windowless rules.
	}
	return s
}

func TestEngineBreachAndResolve(t *testing.T) {
	r := obs.NewRegistry()
	g := r.Gauge("depth")
	s, err := tsdb.New(tsdb.Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	em := obs.NewEmitter(&sb)
	rules, err := ParseRules("depth_ok: last(depth) < 10")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Store: s, Rules: rules, Events: em, Registry: r})
	if err != nil {
		t.Fatal(err)
	}

	g.Set(3)
	s.ScrapeOnce()
	e.EvalNow()
	if alerts := e.Alerts(); alerts[0].State != "ok" {
		t.Fatalf("healthy state = %+v", alerts[0])
	}

	g.Set(50)
	s.ScrapeOnce()
	e.EvalNow()
	if alerts := e.Alerts(); alerts[0].State != "firing" || alerts[0].Detail == "" {
		t.Fatalf("breach state = %+v", alerts[0])
	}
	if !strings.Contains(sb.String(), `"event":"slo_breach"`) {
		t.Fatalf("no breach event: %s", sb.String())
	}

	g.Set(3)
	s.ScrapeOnce()
	e.EvalNow()
	if alerts := e.Alerts(); alerts[0].State != "ok" {
		t.Fatalf("recovered state = %+v", alerts[0])
	}
	if !strings.Contains(sb.String(), `"event":"slo_resolve"`) {
		t.Fatalf("no resolve event: %s", sb.String())
	}
	// The exit gate remembers the breach across the recovery.
	if br := e.Breached(); len(br) != 1 || br[0] != "depth_ok" {
		t.Fatalf("Breached = %v", br)
	}
}

func TestEnginePendingRulesNeverFire(t *testing.T) {
	r := obs.NewRegistry()
	s := buildStore(t, r, 3, nil)
	rules, err := ParseRules("ghost: last(series_that_never_exists) < 1; windowed: avg(also_missing,1h) > 5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Store: s, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	for _, a := range e.Alerts() {
		if a.State != "pending" {
			t.Fatalf("rule over missing series = %+v, want pending", a)
		}
	}
	if len(e.Breached()) != 0 {
		t.Fatal("pending rules must not breach")
	}
}

func TestEngineForDurationDelaysFiring(t *testing.T) {
	r := obs.NewRegistry()
	g := r.Gauge("depth")
	s, err := tsdb.New(tsdb.Config{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseRules("depth_ok: last(depth) < 10 for 1h")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Store: s, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	g.Set(50)
	s.ScrapeOnce()
	e.EvalNow()
	e.EvalNow()
	// Failing, but nowhere near the 1h sustain requirement.
	if a := e.Alerts()[0]; a.State != "pending" {
		t.Fatalf("state = %+v, want pending under for-duration", a)
	}
	if len(e.Breached()) != 0 {
		t.Fatal("for-duration rule breached prematurely")
	}
}

func TestEngineGlobTakesWorstMatch(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("rej_total", "reason", "a").Add(2)
	r.Counter("rej_total", "reason", "b").Add(9)
	s := buildStore(t, r, 1, nil)
	rules, err := ParseRules("rejects: last(rej_total*) <= 5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Store: s, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	a := e.Alerts()[0]
	if a.State != "firing" || a.Value != 9 {
		t.Fatalf("glob rule = %+v, want firing on the worst match (9)", a)
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	e.Start()
	e.Close()
	e.EvalNow()
	if e.Alerts() != nil || e.Breached() != nil {
		t.Fatal("nil engine leaked state")
	}
}
