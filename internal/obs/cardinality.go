package obs

import "sort"

// Cardinality governance bounds the label-set fan-out of a metric
// family. Per-link, per-edge and per-device families grow with the
// population — O(1M) series at ROADMAP scale — so a governed family
// keeps only the first `budget` distinct label sets as real series and
// folds every later one into a shared `other` series (same label keys,
// every value "other"). Folded registrations are counted in
// obs_dropped_series_total{family=...} and tracked in a fixed-capacity
// space-saving summary, so the heaviest folded label sets remain
// identifiable without unbounded memory.
//
// Governance is a registration-time mechanism: instrument pointers are
// never re-bound, so hot-path Inc/Observe stay lock-free and
// allocation-free, and a caller that registered before the budget was
// exhausted keeps its dedicated series forever.

// DroppedSeriesFamily is the control-plane counter family recording
// folded registrations per governed family. Control-plane families are
// never themselves governed.
const DroppedSeriesFamily = "obs_dropped_series_total"

// SeriesHits is one folded label set and how many registration touches
// it received (a space-saving estimate: overcounts by at most the
// entry's inherited error, never undercounts).
type SeriesHits struct {
	Labels string `json:"labels"`
	Hits   int64  `json:"hits"`
	Err    int64  `json:"err"`
}

// FamilyCardinality reports one governed family's state.
type FamilyCardinality struct {
	Family  string       `json:"family"`
	Budget  int          `json:"budget"`
	Kept    int          `json:"kept"`
	Dropped int64        `json:"dropped"`
	Top     []SeriesHits `json:"top,omitempty"`
}

// ssEntry is one tracked label set in a space-saving summary.
type ssEntry struct {
	key   string
	count int64
	err   int64 // count inherited from the evicted predecessor
}

// spaceSaving is the classic deterministic heavy-hitters summary: at
// most cap entries; an untracked key evicts the minimum-count entry and
// inherits its count. Ties evict the lexicographically greatest key so
// the outcome is independent of map iteration order.
type spaceSaving struct {
	cap     int
	entries map[string]*ssEntry
}

func newSpaceSaving(cap int) *spaceSaving {
	if cap < 1 {
		cap = 1
	}
	return &spaceSaving{cap: cap, entries: make(map[string]*ssEntry, cap)}
}

func (ss *spaceSaving) touch(key string) {
	if e, ok := ss.entries[key]; ok {
		e.count++
		return
	}
	if len(ss.entries) < ss.cap {
		ss.entries[key] = &ssEntry{key: key, count: 1}
		return
	}
	var victim *ssEntry
	for _, e := range ss.entries {
		if victim == nil || e.count < victim.count ||
			(e.count == victim.count && e.key > victim.key) {
			victim = e
		}
	}
	delete(ss.entries, victim.key)
	ss.entries[key] = &ssEntry{key: key, count: victim.count + 1, err: victim.count}
}

// top returns up to k entries sorted by count descending, key ascending.
func (ss *spaceSaving) top(k int) []SeriesHits {
	out := make([]SeriesHits, 0, len(ss.entries))
	for _, e := range ss.entries {
		out = append(out, SeriesHits{Labels: e.key, Hits: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Labels < out[j].Labels
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SetFamilyBudget caps family at max distinct label sets; later label
// sets fold into the `other` series. max <= 0 removes the budget.
// Budgets apply to future registrations only — series already created
// are kept. Nil-safe.
func (r *Registry) SetFamilyBudget(family string, max int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if max <= 0 {
		delete(r.budgets, family)
		return
	}
	r.budgets[family] = max
}

// EnsureFamilyBudget sets a budget only if the family has none yet, so
// library defaults never override an operator's explicit choice.
// Nil-safe.
func (r *Registry) EnsureFamilyBudget(family string, max int) {
	if r == nil || max <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.budgets[family]; !ok {
		r.budgets[family] = max
	}
}

// NumSeries returns the number of registered series (0 for nil). The
// control-plane series (dropped counters, `other` folds) are included —
// they are real, bounded series.
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byKey)
}

// CardinalityReport returns the state of every governed family that has
// folded at least one registration, sorted by family, with the top 10
// folded label sets each. Nil-safe (returns nil).
func (r *Registry) CardinalityReport() []FamilyCardinality {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyCardinality, 0, len(r.foldTrack))
	for family, ss := range r.foldTrack {
		fc := FamilyCardinality{
			Family: family,
			Budget: r.budgets[family],
			Kept:   r.famCount[family],
			Top:    ss.top(10),
		}
		if c := r.dropped[family]; c != nil {
			fc.Dropped = c.Value()
		}
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// overBudgetLocked reports whether registering one more distinct label
// set for family would exceed its budget. Callers hold r.mu.
func (r *Registry) overBudgetLocked(family string) bool {
	budget, ok := r.budgets[family]
	return ok && r.famCount[family] >= budget
}

// foldLocked resolves a registration beyond the family budget: it
// counts the touch, tracks the label set in the family's space-saving
// summary, and returns the family's shared `other` series (created on
// first fold with the request's label keys and every value "other").
// Callers hold r.mu.
func (r *Registry) foldLocked(family string, k kind, labels []string, mk func() *series) *series {
	ss := r.foldTrack[family]
	if ss == nil {
		cap := r.budgets[family]
		if cap < 8 {
			cap = 8
		}
		ss = newSpaceSaving(cap)
		r.foldTrack[family] = ss
	}
	ss.touch(renderLabels(labels))
	r.droppedLocked(family).Inc()

	otherLabels := make([]string, len(labels))
	for i := 0; i < len(labels)-1; i += 2 {
		otherLabels[i] = labels[i]
		otherLabels[i+1] = "other"
	}
	s := &series{family: family, labels: renderLabels(otherLabels), kind: k}
	if existing, ok := r.byKey[s.key()]; ok {
		return existing
	}
	made := mk()
	made.family, made.labels, made.kind = s.family, s.labels, s.kind
	r.byKey[s.key()] = made
	return made
}

// droppedLocked fetches (or creates) obs_dropped_series_total{family=F}
// without re-entering register. Callers hold r.mu.
func (r *Registry) droppedLocked(family string) *Counter {
	if c, ok := r.dropped[family]; ok {
		return c
	}
	s := &series{
		family: DroppedSeriesFamily,
		labels: renderLabels([]string{"family", family}),
		kind:   kindCounter,
		c:      &Counter{},
	}
	r.byKey[s.key()] = s
	r.kinds[DroppedSeriesFamily] = kindCounter
	r.dropped[family] = s.c
	return s.c
}
