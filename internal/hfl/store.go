package hfl

import (
	"sort"

	"middle/internal/simil"
)

// deviceStore abstracts how the engine holds per-device carried models.
// The dense store is the original engine: one materialized vector per
// device for the lifetime of the run. The lazy store exploits the
// Algorithm 1 invariant that every cloud sync overwrites every carried
// model with the global model: between syncs, only devices that trained
// (the selected cohorts) differ from the cloud vector, so everyone else
// can be *represented* by the shared cloud model and per-round memory
// scales with the cohort instead of the population.
type deviceStore interface {
	// model returns device m's current carried model. The returned
	// slice may be the shared cloud vector; callers must not write
	// through it.
	model(m int) []float64
	// materialize returns a private, writable vector for device m,
	// seeded with its current model. Training jobs write into it.
	materialize(m int) []float64
	// resident reports whether device m holds a private vector (it
	// trained since the last cloud sync and was not evicted).
	resident(m int) bool
	// drift returns the Eq. 12 selection utility U(w_c, Δw_m) and
	// ‖Δw_m‖ when they are knowable without a full-vector sweep:
	// exact zeros for devices bitwise-equal to the cloud model, the
	// recorded compact drift for evicted devices. known=false means
	// the caller must compute them from the vectors.
	drift(m int) (utility, deltaNorm float64, known bool)
	// noteTrained marks device m as trained at the given step
	// (eviction recency).
	noteTrained(m, step int)
	// endStep runs end-of-step maintenance (eviction under a cap).
	endStep(step int)
	// cloudSynced notes that the cloud vector was just pushed to every
	// device (Algorithm 1 lines 13–15).
	cloudSynced()
	// reset discards device m's carried state, as if it had just
	// reconnected cold: afterwards its model is exactly the cloud vector
	// and its drift is exactly zero (the failed-migration fallback).
	reset(m int)
	// residentCount returns how many full vectors the store holds.
	residentCount() int
	// peakResident returns the high-water mark of residentCount.
	peakResident() int
}

// denseStore is the original engine layout: every device owns a
// materialized vector from construction to the end of the run.
type denseStore struct {
	cloud  []float64
	locals [][]float64
}

func newDenseStore(cloud []float64, numDevices int) *denseStore {
	s := &denseStore{cloud: cloud, locals: make([][]float64, numDevices)}
	for m := range s.locals {
		s.locals[m] = cloneVec(cloud)
	}
	return s
}

func (s *denseStore) model(m int) []float64              { return s.locals[m] }
func (s *denseStore) materialize(m int) []float64        { return s.locals[m] }
func (s *denseStore) resident(int) bool                  { return true }
func (s *denseStore) drift(int) (float64, float64, bool) { return 0, 0, false }
func (s *denseStore) noteTrained(int, int)               {}
func (s *denseStore) endStep(int)                        {}
func (s *denseStore) residentCount() int                 { return len(s.locals) }
func (s *denseStore) peakResident() int                  { return len(s.locals) }

func (s *denseStore) reset(m int) { copy(s.locals[m], s.cloud) }

func (s *denseStore) cloudSynced() {
	for m := range s.locals {
		copy(s.locals[m], s.cloud)
	}
}

// driftRec is the compact record left behind when a device's vector is
// evicted under ResidentCap: the Eq. 12 quantities frozen at eviction
// time, so selection can still rank the device without its vector.
type driftRec struct {
	util      float64
	deltaNorm float64
}

// lazyStore materializes vectors only for devices that train between
// cloud syncs. Non-resident devices alias the shared cloud vector —
// bitwise what the dense store would hold for them — so with cap == 0
// (no eviction) lazy runs are bit-identical to dense runs. With cap > 0
// the least-recently-trained residents are evicted at step end, each
// leaving a driftRec behind; evicted movers re-blend against the cloud
// model instead of their carried one, the documented approximation that
// bounds memory at population scale.
type lazyStore struct {
	cloud   []float64
	cap     int // 0 = no eviction
	res     map[int][]float64
	lastUse map[int]int
	evicted map[int]driftRec
	free    [][]float64 // recycled vectors
	peak    int
}

func newLazyStore(cloud []float64, cap int) *lazyStore {
	return &lazyStore{
		cloud:   cloud,
		cap:     cap,
		res:     make(map[int][]float64),
		lastUse: make(map[int]int),
		evicted: make(map[int]driftRec),
	}
}

func (s *lazyStore) model(m int) []float64 {
	if v, ok := s.res[m]; ok {
		return v
	}
	return s.cloud
}

func (s *lazyStore) materialize(m int) []float64 {
	if v, ok := s.res[m]; ok {
		return v
	}
	var v []float64
	if n := len(s.free); n > 0 {
		v = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		v = make([]float64, len(s.cloud))
	}
	copy(v, s.cloud)
	s.res[m] = v
	delete(s.evicted, m)
	if len(s.res) > s.peak {
		s.peak = len(s.res)
	}
	return v
}

func (s *lazyStore) resident(m int) bool {
	_, ok := s.res[m]
	return ok
}

func (s *lazyStore) drift(m int) (float64, float64, bool) {
	if _, ok := s.res[m]; ok {
		return 0, 0, false // has a real vector: compute from it
	}
	if rec, ok := s.evicted[m]; ok {
		return rec.util, rec.deltaNorm, true
	}
	// Never trained (or synced since): the carried model IS the cloud
	// model, so Δw_m = 0 exactly — the same bits the full sweep yields.
	return 0, 0, true
}

func (s *lazyStore) noteTrained(m, step int) { s.lastUse[m] = step }

// endStep evicts the least-recently-trained residents down to the cap,
// recording each one's compact drift before recycling its vector.
func (s *lazyStore) endStep(step int) {
	if s.cap <= 0 || len(s.res) <= s.cap {
		return
	}
	type cand struct{ m, last int }
	cands := make([]cand, 0, len(s.res))
	for m := range s.res {
		cands = append(cands, cand{m, s.lastUse[m]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].last != cands[j].last {
			return cands[i].last < cands[j].last
		}
		return cands[i].m < cands[j].m // deterministic tie-break
	})
	for _, c := range cands[:len(s.res)-s.cap] {
		v := s.res[c.m]
		u, dn := simil.SelectionUtilityNorm(s.cloud, v)
		s.evicted[c.m] = driftRec{util: u, deltaNorm: dn}
		s.free = append(s.free, v)
		delete(s.res, c.m)
		delete(s.lastUse, c.m)
	}
}

func (s *lazyStore) cloudSynced() {
	for m, v := range s.res {
		s.free = append(s.free, v)
		delete(s.res, m)
		delete(s.lastUse, m)
	}
	// After a sync every device equals the cloud model: all drift is
	// exactly zero again.
	clear(s.evicted)
}

// reset recycles any resident vector and forgets any compact drift, so
// device m re-aliases the shared cloud vector with drift exactly 0 —
// the same bits the dense store's reset leaves behind.
func (s *lazyStore) reset(m int) {
	if v, ok := s.res[m]; ok {
		s.free = append(s.free, v)
		delete(s.res, m)
		delete(s.lastUse, m)
	}
	delete(s.evicted, m)
}

func (s *lazyStore) residentCount() int { return len(s.res) }
func (s *lazyStore) peakResident() int  { return s.peak }
