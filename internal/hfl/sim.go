package hfl

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"middle/internal/data"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs/flight"
	"middle/internal/optim"
	"middle/internal/robust"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// Sim is one device-edge-cloud federated training run. Construct with
// New, drive with Run (or StepOnce for fine-grained control), and read
// results from the returned History.
type Sim struct {
	cfg     Config
	factory ModelFactory
	part    *data.Partition
	test    *data.Dataset
	mob     mobility.Model
	strat   Strategy

	numEdges   int
	numDevices int
	step       int // completed time steps (1-based after first StepOnce)

	cloud        []float64
	edges        [][]float64
	store        deviceStore
	dataSizes    []int
	statUtil     []float64
	lastTrain    []int
	edgeWeight   []float64 // d̂_n accumulators since last cloud sync
	membership   []int
	moves        int // cross-edge moves observed
	moveTotal    int
	stragglers   int // selected devices that missed the deadline
	faultDrops   int // selected device-rounds lost to injected drops
	quorumMisses int // edge-steps that fell below quorum and carried the model
	migOKs       int // handovers that completed (LiveMigration on)
	migFallbacks int // handovers lost in transit → drop-and-reconnect

	// Self-healing mirror (SelfHealing on). downUntil[n] is the step edge
	// n recovers at (0 = up); epoch is the membership epoch, bumped on
	// every crash and recovery; failovers/rehomedDevs tally crashes and
	// the devices re-homed off crashing edges.
	downUntil   []int
	epoch       int
	failovers   int
	rehomedDevs int

	// Robustness layer (PR 5). validator is nil when Config.Validate is
	// off; agg is the pluggable Eq. 6/Eq. 7 combiner (zero value: the
	// bit-identical weighted mean).
	validator   *robust.Validator
	agg         robust.Aggregator
	rejects     robust.RejectCounts // cumulative validation rejections
	updatesSeen int                 // updates offered to Eq. 6/Eq. 7
	corruptions int                 // adversary-corrupted uploads
	nonfinite   atomic.Int64        // SGD steps skipped on non-finite loss

	// Communication accounting: model transfers on each link class.
	// Every selected device downloads the edge model and uploads its
	// local model (2 transfers); every cloud sync exchanges edge models
	// up and the global model down (2 per participating edge).
	commDeviceEdge int64
	commEdgeCloud  int64

	workers []*trainWorker
	evalNet *nn.Network
	history *History

	// phases accumulates the always-on per-phase wall-clock breakdown;
	// metrics mirrors it (plus counters) into cfg.Obs when set. tel does
	// the same for the learning-dynamics quantities (Eq. 12 utilities,
	// update norms, blend utilities, participation, mobility flow).
	phases  PhaseTimes
	metrics simMetrics
	tel     *telemetry

	// Per-step scratch, reused across StepOnce calls so the steady-state
	// loop performs no per-step slice allocations of its own. The model
	// vectors in cloud/edges/locals keep their backing arrays for the
	// lifetime of the Sim; aggregation writes into them in place.
	moved      []bool
	migFailed  []bool // this step's lost handovers (LiveMigration only)
	candidates [][]int
	selected   [][]int
	jobs       []trainJob
	aggVecs    [][]float64
	aggWeights []float64
	// Streaming Eq. 6/Eq. 7 accumulators (the default mean path): each
	// aggregation folds one vector at a time into its destination, so a
	// round never gathers more than the resident cohort.
	edgeAcc  simil.Accumulator
	cloudAcc simil.Accumulator
}

// trainWorker owns one reusable network + optimizer pair plus its batch
// index scratch. The pool keeps memory proportional to parallelism rather
// than to the device count.
type trainWorker struct {
	net *nn.Network
	opt optim.Optimizer
	idx []int
}

// New builds a simulation. The partition defines the device population
// and their Non-IID shards; the mobility model must cover the same
// number of devices. The initial global model is drawn deterministically
// from cfg.Seed and installed on the cloud, every edge and every device.
func New(cfg Config, factory ModelFactory, part *data.Partition, test *data.Dataset, mob mobility.Model, strat Strategy) *Sim {
	cfg = cfg.withDefaults()
	if part.NumDevices() != mob.NumDevices() {
		panic(fmt.Sprintf("hfl: partition has %d devices but mobility model has %d", part.NumDevices(), mob.NumDevices()))
	}
	s := &Sim{
		cfg:        cfg,
		factory:    factory,
		part:       part,
		test:       test,
		mob:        mob,
		strat:      strat,
		numEdges:   mob.NumEdges(),
		numDevices: mob.NumDevices(),
	}
	init := factory(tensor.Split(cfg.Seed, 0)).ParamVector()
	s.cloud = init
	s.edges = make([][]float64, s.numEdges)
	for n := range s.edges {
		s.edges[n] = cloneVec(init)
	}
	if cfg.ResidentCap > 0 && cfg.ResidentCap < cfg.K*s.numEdges {
		panic(fmt.Sprintf("hfl: ResidentCap %d cannot hold one full cohort (K=%d × %d edges = %d); raise the cap or lower K",
			cfg.ResidentCap, cfg.K, s.numEdges, cfg.K*s.numEdges))
	}
	if cfg.LazyStore {
		s.store = newLazyStore(s.cloud, cfg.ResidentCap)
	} else {
		s.store = newDenseStore(s.cloud, s.numDevices)
	}
	s.statUtil = make([]float64, s.numDevices)
	s.lastTrain = make([]int, s.numDevices)
	for m := 0; m < s.numDevices; m++ {
		s.statUtil[m] = math.NaN()
		s.lastTrain[m] = -1
	}
	s.dataSizes = part.Sizes()
	s.edgeWeight = make([]float64, s.numEdges)
	s.downUntil = make([]int, s.numEdges)
	mob.Reset()
	s.membership = mob.Step() // M^0: membership before the first round
	s.workers = make([]*trainWorker, cfg.Parallelism)
	for i := range s.workers {
		s.workers[i] = &trainWorker{
			net: factory(tensor.Split(cfg.Seed, int64(100+i))),
			opt: cfg.Optimizer.New(),
		}
	}
	s.evalNet = factory(tensor.Split(cfg.Seed, 99))
	s.validator = robust.NewValidator(cfg.Validate)
	s.agg = robust.Aggregator{Kind: cfg.Aggregator, TrimFrac: cfg.TrimFrac}
	s.history = &History{Strategy: strat.Name()}
	s.metrics = newSimMetrics(cfg.Obs)
	s.tel = newTelemetry(cfg.Obs, s.numEdges, s.numDevices)
	cfg.Trace.SetProcessName(0, "sim")
	return s
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }

// --- View implementation -------------------------------------------------

// Step returns the number of completed time steps.
func (s *Sim) Step() int { return s.step }

// CloudModel returns the current global model vector (read-only).
func (s *Sim) CloudModel() []float64 { return s.cloud }

// EdgeModel returns edge n's model vector (read-only).
func (s *Sim) EdgeModel(edge int) []float64 { return s.edges[edge] }

// LocalModel returns device m's carried local model vector (read-only).
// Under the lazy store a device that has not trained since the last
// cloud sync returns the shared cloud vector itself.
func (s *Sim) LocalModel(device int) []float64 { return s.store.model(device) }

// DriftInfo implements ResidentView: the Eq. 12 fast path for devices
// the store can answer for without touching a full vector.
func (s *Sim) DriftInfo(device int) (utility, deltaNorm float64, known bool) {
	return s.store.drift(device)
}

// ResidentModels returns how many materialized device vectors the
// engine currently holds (always the device count with the dense
// store).
func (s *Sim) ResidentModels() int { return s.store.residentCount() }

// PeakResidentModels returns the run's high-water mark of
// ResidentModels — the number the 1M-device smoke run bounds.
func (s *Sim) PeakResidentModels() int { return s.store.peakResident() }

// DataSize returns d_m.
func (s *Sim) DataSize(device int) int { return s.dataSizes[device] }

// StatUtility returns the device's Oort statistical utility (NaN before
// its first training round).
func (s *Sim) StatUtility(device int) float64 { return s.statUtil[device] }

// LastTrained returns the step the device last trained at, or -1.
func (s *Sim) LastTrained(device int) int { return s.lastTrain[device] }

// NumEdges returns the edge count.
func (s *Sim) NumEdges() int { return s.numEdges }

// NumDevices returns the device count.
func (s *Sim) NumDevices() int { return s.numDevices }

// Membership returns the devices' current edge assignment (read-only).
func (s *Sim) Membership() []int { return s.membership }

// History returns the metrics recorded so far.
func (s *Sim) History() *History { return s.history }

// --- engine ---------------------------------------------------------------

type trainJob struct {
	device int
	init   []float64
	out    []float64 // the device's materialized vector; overwritten by the worker
	util   float64
}

// StepOnce advances the simulation by one time step of Algorithm 1 and
// returns the (1-based) step index just completed.
func (s *Sim) StepOnce() int {
	s.step++
	t := s.step
	clock := time.Now()
	roundStart := clock
	movesBefore, stragglersBefore := s.moves, s.stragglers
	s.tel.beginRound()
	// Flight-profiler attribution: each block below is bracketed by a
	// pprof "phase" label matching its sim_phase_seconds series, so the
	// continuous profiler can split CPU/alloc cost per phase. Free (two
	// atomic loads, zero alloc) when no profiler is running.
	fp := flight.BeginPhase("selection")

	prev := s.membership
	next := s.mob.Step()
	if s.cfg.SelfHealing {
		next = s.selfHeal(t, next)
	}
	s.membership = next
	if s.moved == nil {
		s.moved = make([]bool, s.numDevices)
	}
	moved := s.moved
	if s.cfg.LiveMigration && s.migFailed == nil {
		s.migFailed = make([]bool, s.numDevices)
	}
	for m := range moved {
		moved[m] = s.membership[m] != prev[m]
		if moved[m] {
			s.moves++
			s.tel.recordMove(prev[m], s.membership[m])
			// Live-migration mirror: each move is a handover. Lost ones
			// (decided on a FaultSeed stream independent of DropRate's)
			// degrade to drop-and-reconnect — the carried model resets to
			// the global model and Eq. 9 is suppressed for this move. The
			// moved flag itself stays true: the mobility telemetry counts
			// the move either way.
			if s.cfg.LiveMigration {
				s.migFailed[m] = false
				if s.cfg.MigrationFailRate > 0 &&
					tensor.Split(s.cfg.FaultSeed, int64(t)*1_000_003+int64(m)*29+11).Float64() < s.cfg.MigrationFailRate {
					s.migFailed[m] = true
					s.store.reset(m)
					s.migFallbacks++
					s.metrics.migFallback.Inc()
				} else {
					s.migOKs++
					s.metrics.migOK.Inc()
				}
			}
		}
		s.moveTotal++
	}

	// Line 1–2: per-edge candidate sets and device selection.
	if s.candidates == nil {
		s.candidates = make([][]int, s.numEdges)
		s.selected = make([][]int, s.numEdges)
	}
	candidates := s.candidates
	for n := range candidates {
		candidates[n] = candidates[n][:0]
	}
	for m, e := range s.membership {
		candidates[e] = append(candidates[e], m)
	}
	s.jobs = s.jobs[:0]
	selectedByEdge := s.selected
	for n := range selectedByEdge {
		selectedByEdge[n] = nil
	}
	for n := 0; n < s.numEdges; n++ {
		if len(candidates[n]) == 0 {
			continue
		}
		rng := tensor.Split(s.cfg.Seed, int64(t)*1_000_003+int64(n)*7+1)
		sel := s.strat.Select(s, n, candidates[n], s.cfg.K, rng)
		if len(sel) > s.cfg.K {
			sel = sel[:s.cfg.K]
		}
		// System heterogeneity: selected devices that cannot finish
		// within the deadline miss the round (stragglers).
		if s.cfg.Latency != nil && s.cfg.Deadline > 0 {
			kept := sel[:0]
			for _, m := range sel {
				if s.cfg.Latency(m) <= s.cfg.Deadline {
					kept = append(kept, m)
				} else {
					s.stragglers++
				}
			}
			sel = kept
		}
		// Fault injection: each surviving round-trip is lost with
		// probability DropRate, decided deterministically from
		// (FaultSeed, step, device) as in fednet's injector.
		if s.cfg.DropRate > 0 {
			kept := sel[:0]
			for _, m := range sel {
				if tensor.Split(s.cfg.FaultSeed, int64(t)*1_000_003+int64(m)*13+7).Float64() < s.cfg.DropRate {
					s.faultDrops++
					s.metrics.faultDrops.Inc()
				} else {
					kept = append(kept, m)
				}
			}
			sel = kept
		}
		// Quorum-based degradation: below Quorum responders the edge
		// carries its previous model forward (Eq. 6 skipped) rather
		// than letting a tiny, biased sample steer it.
		if s.cfg.Quorum > 0 && len(sel) < s.cfg.Quorum {
			s.quorumMisses++
			s.metrics.quorumMisses.Inc()
			sel = sel[:0]
		}
		selectedByEdge[n] = sel
		s.commDeviceEdge += 2 * int64(len(sel))
		for _, m := range sel {
			// Learning-dynamics telemetry reads the pre-training carried
			// model: the Eq. 12 utility and ‖Δw_m‖ against the cloud, and
			// on a mobility event the Eq. 9 blend utility against the
			// entered edge. Pure reads — results are unaffected. The store
			// fast path answers for non-resident devices without a sweep
			// (exactly 0/0: their carried model IS the cloud vector).
			u, dn, known := s.store.drift(m)
			if !known {
				u, dn = simil.SelectionUtilityNorm(s.cloud, s.store.model(m))
			}
			s.tel.recordSelection(m, u, dn)
			// A move whose handover was lost joins cold: no Eq. 9 blend,
			// no blend telemetry (the carried model was already reset to
			// the cloud vector above).
			mv := moved[m] && (s.migFailed == nil || !s.migFailed[m])
			if mv {
				s.tel.recordBlend(simil.Utility(s.store.model(m), s.edges[n]))
			}
			// Lines 4–7: on-device model initialisation. The job writes
			// the trained model straight into the device's carried vector,
			// materialized here for lazily-stored devices (each device
			// appears in at most one job per step, and SetParamVector
			// copies init before the overwrite).
			init := s.strat.InitLocal(s, m, n, mv)
			s.jobs = append(s.jobs, trainJob{device: m, init: init, out: s.store.materialize(m)})
		}
	}
	fp.End()
	phaseStart := clock
	clock = phase(&s.phases.Select, s.metrics.selectSpan, clock)
	s.tracePhase("select", t, phaseStart, clock)
	fp = flight.BeginPhase("local_train")

	// Line 8: parallel local training across the worker pool.
	jobs := s.jobs
	s.runJobs(jobs, t)
	for i := range jobs {
		j := &jobs[i]
		s.statUtil[j.device] = j.util
		s.lastTrain[j.device] = t
		s.store.noteTrained(j.device, t)
	}
	// Adversary harness: a seeded subset of devices corrupts its upload
	// after training, as a pure function of (Adversary.Seed, device, t).
	// The reference is the cloud model so same-value colluders agree and
	// sign-flip inverts the accumulated update Δw_m = w_m − w_c.
	if s.cfg.Adversary.Enabled() {
		for i := range jobs {
			m := jobs[i].device
			if s.cfg.Adversary.IsAdversary(m) {
				s.cfg.Adversary.Corrupt(jobs[i].out, s.cloud, m, t)
				s.corruptions++
				s.metrics.advCorruptions.Inc()
			}
		}
	}
	fp.End()
	phaseStart = clock
	clock = phase(&s.phases.Train, s.metrics.trainSpan, clock)
	s.tracePhase("train", t, phaseStart, clock)
	fp = flight.BeginPhase("edge_agg")

	// Line 9: edge aggregation (Eq. 6), weighted by data sizes. The edge
	// vector is overwritten in place (it never aliases a device vector).
	// Received updates pass through the validator first — rejected ones
	// are excluded exactly like stragglers — and the surviving set is
	// combined by the configured aggregator (default: the weighted mean,
	// bit-identical to the pre-robustness engine).
	for n := 0; n < s.numEdges; n++ {
		sel := selectedByEdge[n]
		if len(sel) == 0 {
			continue
		}
		// Streaming Eq. 6: with the default mean and no validator the
		// cohort's weights are known up front (data sizes), so the edge
		// folds one update at a time into a running weighted sum —
		// bit-identical to the materialized WeightedAverageInto call
		// (see simil.Accumulator) and never gathering the cohort.
		if s.agg.IsMean() && s.validator == nil {
			s.updatesSeen += len(sel)
			totalW := 0.0
			for _, m := range sel {
				w := float64(s.dataSizes[m])
				s.edgeWeight[n] += w
				totalW += w
			}
			s.edgeAcc.Begin(s.edges[n], totalW)
			for _, m := range sel {
				s.edgeAcc.Add(s.store.model(m), float64(s.dataSizes[m]))
			}
			continue
		}
		// Robust aggregators and the validator need the whole cohort at
		// once (medians, trims and norm screens are order statistics).
		vecs := s.aggVecs[:0]
		weights := s.aggWeights[:0]
		for _, m := range sel {
			vecs = append(vecs, s.store.model(m))
			weights = append(weights, float64(s.dataSizes[m]))
		}
		vecs, weights = s.screen(t, vecs, weights, s.edges[n])
		s.aggVecs, s.aggWeights = vecs, weights
		if len(vecs) == 0 {
			continue // every update rejected: carry the previous model
		}
		for _, w := range weights {
			s.edgeWeight[n] += w
		}
		s.recordAgg(s.agg.AggregateInto(s.edges[n], vecs, weights, s.edges[n]))
	}
	fp.End()
	phaseStart = clock
	clock = phase(&s.phases.EdgeAgg, s.metrics.edgeAggSpan, clock)
	s.tracePhase("edge_agg", t, phaseStart, clock)

	// Lines 10–15: cloud aggregation (Eq. 7) every T_c steps, then push
	// the new global model down to all edges and devices (copy into the
	// existing vectors; their backing arrays are stable for the run).
	if t%s.cfg.CloudInterval == 0 {
		fp = flight.BeginPhase("cloud_sync")
		// Streaming Eq. 7 mirrors the Eq. 6 fast path: the participating
		// edges' accumulated weights d̂_n are known before any vector is
		// touched, so the cloud folds edge models into a running weighted
		// sum one at a time — the same bits as the gathered call.
		if s.agg.IsMean() && s.validator == nil {
			participants := 0
			totalW := 0.0
			for n := 0; n < s.numEdges; n++ {
				if s.edgeWeight[n] > 0 {
					participants++
					totalW += s.edgeWeight[n]
				}
			}
			s.commEdgeCloud += 2 * int64(participants)
			s.updatesSeen += participants
			if participants > 0 {
				s.cloudAcc.Begin(s.cloud, totalW)
				for n := 0; n < s.numEdges; n++ {
					if s.edgeWeight[n] > 0 {
						s.cloudAcc.Add(s.edges[n], s.edgeWeight[n])
					}
				}
			}
		} else {
			vecs := s.aggVecs[:0]
			weights := s.aggWeights[:0]
			for n := 0; n < s.numEdges; n++ {
				if s.edgeWeight[n] > 0 {
					vecs = append(vecs, s.edges[n])
					weights = append(weights, s.edgeWeight[n])
				}
			}
			s.commEdgeCloud += 2 * int64(len(vecs))
			vecs, weights = s.screen(t, vecs, weights, s.cloud)
			if len(vecs) > 0 {
				s.recordAgg(s.agg.AggregateInto(s.cloud, vecs, weights, s.cloud))
			}
			s.aggVecs, s.aggWeights = vecs, weights
		}
		for n := range s.edges {
			copy(s.edges[n], s.cloud)
			s.edgeWeight[n] = 0
		}
		s.store.cloudSynced()
		s.metrics.cloudSyncs.Inc()
		fp.End()
		phaseStart = clock
		clock = phase(&s.phases.CloudSync, s.metrics.cloudSyncSpan, clock)
		s.tracePhase("cloud_sync", t, phaseStart, clock)
	}

	if s.cfg.EvalEvery > 0 && (t%s.cfg.EvalEvery == 0 || t == s.cfg.Steps) {
		fp = flight.BeginPhase("eval")
		s.recordEval(t)
		s.metrics.evals.Inc()
		fp.End()
		phaseStart = clock
		clock = phase(&s.phases.Eval, s.metrics.evalSpan, clock)
		s.tracePhase("eval", t, phaseStart, clock)
	}

	s.store.endStep(t)
	s.metrics.roundSpan.Observe(time.Since(roundStart))
	s.metrics.residentModels.Set(float64(s.store.residentCount()))
	s.metrics.steps.Inc()
	s.metrics.selected.Add(int64(len(s.jobs)))
	s.metrics.stragglers.Add(int64(s.stragglers - stragglersBefore))
	s.metrics.moves.Add(int64(s.moves - movesBefore))
	s.metrics.moveOpp.Add(int64(s.numDevices))
	s.tel.participants.Set(float64(len(s.jobs)))
	if s.tel.fairness != nil {
		s.tel.fairness.Set(s.tel.fairnessJain())
	}
	if tr := s.cfg.Trace; tr != nil {
		end := time.Now()
		tr.Complete("round", "hfl", 0, 0, roundStart, end.Sub(roundStart),
			"r"+strconv.Itoa(t), "", map[string]any{"step": t, "selected": len(s.jobs)})
	}
	if em := s.cfg.Events; em != nil {
		em.Emit("round",
			"step", t,
			"selected", len(s.jobs),
			"sel_util_mean", meanOf(s.tel.roundSelUtilSum, s.tel.roundSelUtilN),
			"upd_norm_mean", meanOf(s.tel.roundUpdNormSum, s.tel.roundSelUtilN),
			"blend_util_mean", meanOf(s.tel.roundBlendUtilSum, s.tel.roundBlendUtilN),
			"blend_events", s.tel.roundBlendUtilN,
			"moves", s.moves-movesBefore,
			"stragglers", s.stragglers-stragglersBefore)
	}
	return t
}

// selfHeal is the simulation mirror of fednet's membership layer,
// applied between the mobility step and the membership bookkeeping.
// Recoveries land first (the edge rejoins on the current global model,
// epoch bumped), then the seeded crash schedule fires (never taking the
// last surviving edge down), and finally devices whose intended edge is
// down are re-homed to survivors deterministically by device id. The
// returned slice is the intended membership itself when no edge is down
// — the zero-crash path allocates nothing and changes nothing.
func (s *Sim) selfHeal(t int, next []int) []int {
	// Recoveries: the edge rejoins by adopting the current global model
	// (the cloud's catch-up sync) with its Eq. 7 weight reset.
	for n := 0; n < s.numEdges; n++ {
		if s.downUntil[n] != 0 && t >= s.downUntil[n] {
			s.downUntil[n] = 0
			copy(s.edges[n], s.cloud)
			s.edgeWeight[n] = 0
			s.epoch++
			s.metrics.epochGauge.Set(float64(s.epoch))
		}
	}
	// Crash schedule: an independent FaultSeed stream per (step, edge).
	if s.cfg.EdgeFailRate > 0 {
		outage := s.cfg.EdgeRecoverSteps
		if outage <= 0 {
			outage = s.cfg.CloudInterval
		}
		for n := 0; n < s.numEdges; n++ {
			if s.downUntil[n] != 0 || s.upEdges() <= 1 {
				continue
			}
			if tensor.Split(s.cfg.FaultSeed, int64(t)*1_000_003+int64(n)*41+13).Float64() < s.cfg.EdgeFailRate {
				s.downUntil[n] = t + outage
				// The dead edge's un-synced contribution dies with it.
				s.edgeWeight[n] = 0
				s.failovers++
				s.epoch++
				s.metrics.failovers.Inc()
				s.metrics.epochGauge.Set(float64(s.epoch))
				for _, e := range next {
					if e == n {
						s.rehomedDevs++
						s.metrics.rehomed.Inc()
					}
				}
			}
		}
	}
	down := false
	for n := range s.downUntil {
		if s.downUntil[n] != 0 {
			down = true
			break
		}
	}
	if !down {
		return next
	}
	// Effective membership: re-home devices off dead edges. The re-home
	// registers as a mobility move, so the strategy's on-device blend
	// (Eq. 9) applies exactly as for an organic move.
	var survivors []int
	for n := 0; n < s.numEdges; n++ {
		if s.downUntil[n] == 0 {
			survivors = append(survivors, n)
		}
	}
	eff := append([]int(nil), next...)
	for m, e := range eff {
		if s.downUntil[e] != 0 {
			eff[m] = survivors[m%len(survivors)]
		}
	}
	return eff
}

// upEdges counts edges currently in the membership.
func (s *Sim) upEdges() int {
	up := 0
	for n := range s.downUntil {
		if s.downUntil[n] == 0 {
			up++
		}
	}
	return up
}

// tracePhase records one StepOnce phase as a child span of the round's
// trace span. No-op (and allocation-free) when tracing is disabled.
func (s *Sim) tracePhase(name string, t int, start, end time.Time) {
	tr := s.cfg.Trace
	if tr == nil {
		return
	}
	rid := "r" + strconv.Itoa(t)
	tr.Complete(name, "hfl", 0, 0, start, end.Sub(start), rid+"."+name, rid, nil)
}

// screen passes one aggregation point's received updates through the
// validator against ref (the point's pre-round model), tallying
// rejections into the run counters, metrics and a robust_reject trace
// span. With validation off (the default) it only counts the offered
// updates and returns the inputs untouched.
func (s *Sim) screen(t int, vecs [][]float64, weights []float64, ref []float64) ([][]float64, []float64) {
	s.updatesSeen += len(vecs)
	if s.validator == nil {
		return vecs, weights
	}
	kept, keptW, rc := s.validator.Filter(ref, vecs, weights)
	if rc.Total() > 0 {
		s.rejects.NonFinite += rc.NonFinite
		s.rejects.Norm += rc.Norm
		s.metrics.rejNonFinite.Add(int64(rc.NonFinite))
		s.metrics.rejNorm.Add(int64(rc.Norm))
		if tr := s.cfg.Trace; tr != nil {
			rid := "r" + strconv.Itoa(t)
			now := time.Now()
			tr.Complete("robust_reject", "hfl", 0, 0, now, 0,
				rid+".robust_reject", rid,
				map[string]any{"nonfinite": rc.NonFinite, "norm": rc.Norm})
		}
	}
	return kept, keptW
}

// recordAgg mirrors one aggregation's robust-combiner decisions into the
// obs counters. No-ops for the plain mean.
func (s *Sim) recordAgg(st robust.AggStats) {
	if st.TrimmedValues > 0 {
		s.metrics.trimmedCoords.Add(int64(st.TrimmedValues))
	}
	if st.ClippedUpdates > 0 {
		s.metrics.clippedUpdates.Add(int64(st.ClippedUpdates))
	}
}

// runJobs fans the training jobs out over the worker pool. Each job's
// randomness derives from (seed, step, device) only, so results do not
// depend on scheduling.
func (s *Sim) runJobs(jobs []trainJob, t int) {
	if len(jobs) == 0 {
		return
	}
	workers := len(s.workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tw *trainWorker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				s.trainDevice(tw, &jobs[i], t)
			}
		}(s.workers[w])
	}
	wg.Wait()
}

// trainDevice performs I local SGD steps (Eq. 5) for one job and fills
// in the resulting model vector and Oort statistical utility
// d_m·sqrt(mean(loss²)).
func (s *Sim) trainDevice(tw *trainWorker, job *trainJob, t int) {
	rng := tensor.Split(s.cfg.Seed, int64(t)*int64(s.numDevices)*4+int64(job.device)*4+2)
	tw.net.SetParamVector(job.init)
	tw.opt.Reset()
	if s.cfg.LRSchedule != nil {
		tw.opt.SetLR(s.cfg.LRSchedule.At(t))
	}
	shard := s.part.Indices[job.device]
	batch := s.cfg.BatchSize
	if batch > len(shard) {
		batch = len(shard)
	}
	if cap(tw.idx) < batch {
		tw.idx = make([]int, batch)
	}
	idx := tw.idx[:batch]
	sumSq := 0.0
	samples := 0
	for i := 0; i < s.cfg.LocalSteps; i++ {
		for b := range idx {
			idx[b] = shard[rng.Intn(len(shard))]
		}
		x, y := s.part.Dataset.Batch(idx)
		tw.net.ZeroGrad()
		logits := tw.net.Forward(x, true)
		loss, g, perSample := nn.SoftmaxCrossEntropyPerSample(logits, y)
		// Non-finite loss guard: a diverged step would write NaN/Inf
		// into the params and poison every aggregation downstream. Skip
		// the update (params keep their pre-step values) and leave the
		// batch out of the utility statistics.
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			s.nonfinite.Add(1)
			s.metrics.nonfiniteSteps.Inc()
			continue
		}
		tw.net.Backward(g)
		tw.opt.Step(tw.net.Params())
		for _, l := range perSample {
			sumSq += l * l
		}
		samples += len(perSample)
	}
	tw.net.ParamVectorInto(job.out)
	// Oort's statistical utility: |B|·sqrt(mean per-sample loss²), with
	// |B| the device's data size d_m. When every step hit the non-finite
	// guard there is no loss evidence; report zero rather than NaN.
	if samples == 0 {
		job.util = 0
		return
	}
	job.util = float64(len(shard)) * math.Sqrt(sumSq/float64(samples))
}

// Run executes the configured number of time steps and returns the
// recorded history.
func (s *Sim) Run() *History {
	for s.step < s.cfg.Steps {
		s.StepOnce()
	}
	s.history.EmpiricalMobility = s.ObservedMobility()
	s.history.PeakResidentModels = s.PeakResidentModels()
	return s.history
}

// CommCounts returns the cumulative number of model transfers on the
// device–edge and edge–cloud links (one transfer = one full model).
func (s *Sim) CommCounts() (deviceEdge, edgeCloud int64) {
	return s.commDeviceEdge, s.commEdgeCloud
}

// Stragglers returns how many selected device-rounds were lost to the
// heterogeneity deadline so far.
func (s *Sim) Stragglers() int { return s.stragglers }

// FaultDrops returns how many selected device-rounds were lost to the
// injected drop faults (Config.DropRate) so far.
func (s *Sim) FaultDrops() int { return s.faultDrops }

// QuorumMisses returns how many edge-steps fell below Config.Quorum and
// carried their previous model forward instead of aggregating.
func (s *Sim) QuorumMisses() int { return s.quorumMisses }

// Migrations returns the cumulative handover outcomes of the
// live-migration mirror: ok handovers carried the device's model to its
// new edge, fallbacks were lost in transit and degraded to
// drop-and-reconnect. Both are zero with Config.LiveMigration off.
func (s *Sim) Migrations() (ok, fallbacks int) { return s.migOKs, s.migFallbacks }

// Failovers returns how many edge crashes the self-healing schedule has
// fired so far (zero with Config.SelfHealing off).
func (s *Sim) Failovers() int { return s.failovers }

// RehomedDevices returns how many devices were re-homed off crashing
// edges so far.
func (s *Sim) RehomedDevices() int { return s.rehomedDevs }

// MembershipEpoch returns the current membership epoch: bumped once per
// edge crash and once per recovery (zero with Config.SelfHealing off).
func (s *Sim) MembershipEpoch() int { return s.epoch }

// DownEdges returns how many edges are currently crashed.
func (s *Sim) DownEdges() int { return s.numEdges - s.upEdges() }

// RejectedUpdates returns the cumulative validation rejections by
// reason (zero with Config.Validate off).
func (s *Sim) RejectedUpdates() robust.RejectCounts { return s.rejects }

// RejectionRate returns the fraction of updates offered to Eq. 6/Eq. 7
// that validation rejected so far.
func (s *Sim) RejectionRate() float64 {
	if s.updatesSeen == 0 {
		return 0
	}
	return float64(s.rejects.Total()) / float64(s.updatesSeen)
}

// AdversaryCorruptions returns how many uploads the adversary harness
// corrupted so far.
func (s *Sim) AdversaryCorruptions() int { return s.corruptions }

// NonFiniteSteps returns how many local SGD steps were skipped by the
// non-finite loss guard so far.
func (s *Sim) NonFiniteSteps() int64 { return s.nonfinite.Load() }

// SelectionNormCap exposes Config.SelectionNormCap through the View so
// strategies can cap the Eq. 12 score of over-norm devices (see
// NormCapView).
func (s *Sim) SelectionNormCap() float64 { return s.cfg.SelectionNormCap }

// PhaseSeconds returns the cumulative wall-clock breakdown of StepOnce
// across its phases. Maintained unconditionally (see PhaseTimes).
func (s *Sim) PhaseSeconds() PhaseTimes { return s.phases }

// ObservedMobility returns the fraction of device-steps that crossed
// edges so far.
func (s *Sim) ObservedMobility() float64 {
	if s.moveTotal == 0 {
		return 0
	}
	return float64(s.moves) / float64(s.moveTotal)
}
