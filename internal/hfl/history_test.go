package hfl

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistoryCSVRoundTrip(t *testing.T) {
	h := &History{Strategy: "middle"}
	h.AppendPoint(EvalPoint{
		Step: 5, GlobalAcc: 0.25,
		PerClassAcc:    []float64{0.5, 0.125},
		EdgeAcc:        []float64{0.25, 0.375, 0.5},
		CommDeviceEdge: 20, CommEdgeCloud: 0, Stragglers: 1,
		Phases:      PhaseTimes{Select: 0.125, Train: 1.5, EdgeAgg: 0.0625, CloudSync: 0, Eval: 0},
		SelUtilMean: 0.25, UpdNormMean: 1.5, BlendUtilMean: 0.125,
		EdgeDivMean: 0.5, EdgeDivMax: 0.75, FairnessJain: 0.875,
	})
	h.AppendPoint(EvalPoint{
		Step: 10, GlobalAcc: 0.625,
		PerClassAcc:    []float64{0.75, 0.5},
		EdgeAcc:        []float64{0.625, 0.5, 0.75},
		CommDeviceEdge: 40, CommEdgeCloud: 6, Stragglers: 3,
		Phases:      PhaseTimes{Select: 0.25, Train: 3, EdgeAgg: 0.125, CloudSync: 0.5, Eval: 0.0625},
		SelUtilMean: 0.5, UpdNormMean: 2.25, BlendUtilMean: 0.25,
		EdgeDivMean: 0.25, EdgeDivMax: 0.375, FairnessJain: 0.9375,
	})

	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, want := range []string{
		"comm_device_edge", "comm_edge_cloud", "stragglers",
		"phase_select_s", "phase_train_s", "phase_edge_agg_s",
		"phase_cloud_sync_s", "phase_eval_s",
		"sel_util_mean", "upd_norm_mean", "blend_util_mean",
		"edge_div_mean", "edge_div_max", "fairness_jain",
	} {
		if !strings.Contains(header, want) {
			t.Fatalf("header missing %q: %s", want, header)
		}
	}

	got, err := ReadHistoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round-trip rows %d, want 2", got.Len())
	}
	for i := range h.Steps {
		if got.Steps[i] != h.Steps[i] || got.GlobalAcc[i] != h.GlobalAcc[i] {
			t.Fatalf("row %d step/acc: %d/%v, want %d/%v", i, got.Steps[i], got.GlobalAcc[i], h.Steps[i], h.GlobalAcc[i])
		}
		if got.CommDeviceEdge[i] != h.CommDeviceEdge[i] || got.CommEdgeCloud[i] != h.CommEdgeCloud[i] {
			t.Fatalf("row %d comm: %d/%d", i, got.CommDeviceEdge[i], got.CommEdgeCloud[i])
		}
		if got.Stragglers[i] != h.Stragglers[i] {
			t.Fatalf("row %d stragglers: %d, want %d", i, got.Stragglers[i], h.Stragglers[i])
		}
		for _, pair := range [][2][]float64{
			{got.PhaseSelect, h.PhaseSelect},
			{got.PhaseTrain, h.PhaseTrain},
			{got.PhaseEdgeAgg, h.PhaseEdgeAgg},
			{got.PhaseCloudSync, h.PhaseCloudSync},
			{got.PhaseEval, h.PhaseEval},
			{got.SelUtilMean, h.SelUtilMean},
			{got.UpdNormMean, h.UpdNormMean},
			{got.BlendUtilMean, h.BlendUtilMean},
			{got.EdgeDivMean, h.EdgeDivMean},
			{got.EdgeDivMax, h.EdgeDivMax},
			{got.FairnessJain, h.FairnessJain},
		} {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("row %d phase column: %v, want %v", i, pair[0][i], pair[1][i])
			}
		}
		for c := range h.PerClassAcc[i] {
			if got.PerClassAcc[i][c] != h.PerClassAcc[i][c] {
				t.Fatalf("row %d class %d: %v", i, c, got.PerClassAcc[i][c])
			}
		}
		for e := range h.EdgeAcc[i] {
			if got.EdgeAcc[i][e] != h.EdgeAcc[i][e] {
				t.Fatalf("row %d edge %d: %v", i, e, got.EdgeAcc[i][e])
			}
		}
	}
}

// Histories assembled via the pre-phase Append API must still write
// valid CSV (zero-filled new columns).
func TestHistoryCSVLegacyAppend(t *testing.T) {
	h := &History{}
	h.Append(5, 0.5, nil, nil)
	h.AppendComm(10, 0.75, nil, nil, 12, 2)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Stragglers[0] != 0 || got.CommDeviceEdge[1] != 12 || got.PhaseTrain[1] != 0 {
		t.Fatalf("legacy round-trip: %+v", got)
	}
}

// ReadHistoryCSV must also accept the pre-phase column layout.
func TestReadHistoryCSVOldLayout(t *testing.T) {
	csvText := "step,global_acc\n5,0.50000\n10,0.75000\n"
	got, err := ReadHistoryCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.GlobalAcc[1] != 0.75 || got.CommDeviceEdge[1] != 0 {
		t.Fatalf("old layout: %+v", got)
	}
}
