package hfl

import (
	"testing"

	"middle/internal/obs"
)

// faultConfig enables the simulated fault layer on top of smallConfig.
func faultConfig(faultSeed int64) Config {
	cfg := smallConfig()
	cfg.DropRate = 0.3
	cfg.FaultSeed = faultSeed
	cfg.Quorum = 2
	return cfg
}

func TestSimFaultDropsAndQuorum(t *testing.T) {
	f := newFixture(t, 0.5)
	reg := obs.NewRegistry()
	cfg := faultConfig(5)
	cfg.Obs = reg
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	if s.FaultDrops() == 0 {
		t.Fatal("DropRate 0.3 over 10 steps injected no drops")
	}
	if s.QuorumMisses() == 0 {
		t.Fatal("quorum 2 with 30% drops never missed quorum")
	}
	if got := reg.Counter("hfl_fault_drops_total").Value(); got != int64(s.FaultDrops()) {
		t.Fatalf("hfl_fault_drops_total = %d, accessor says %d", got, s.FaultDrops())
	}
	if got := reg.Counter("hfl_quorum_misses_total").Value(); got != int64(s.QuorumMisses()) {
		t.Fatalf("hfl_quorum_misses_total = %d, accessor says %d", got, s.QuorumMisses())
	}
}

// TestSimFaultsDeterministic pins the simulated faults to FaultSeed: the
// same seed reproduces the exact run; a different seed diverges.
func TestSimFaultsDeterministic(t *testing.T) {
	run := func(faultSeed int64) ([]float64, int, int) {
		f := newFixture(t, 0.5)
		s := New(faultConfig(faultSeed), f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s.cloud, s.FaultDrops(), s.QuorumMisses()
	}
	m1, d1, q1 := run(5)
	m2, d2, q2 := run(5)
	if d1 != d2 || q1 != q2 {
		t.Fatalf("same fault seed diverged: drops %d/%d, misses %d/%d", d1, d2, q1, q2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same fault seed produced different cloud models")
		}
	}
	m3, d3, _ := run(6)
	same := d1 == d3
	if same {
		for i := range m1 {
			if m1[i] != m3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different fault seeds produced identical runs")
	}
}
