package hfl

import (
	"testing"

	"middle/internal/tensor"
)

// TestSimBitIdenticalAcrossMaxWorkers pins the kernel-level determinism
// contract end to end: the tensor kernels chunk work across goroutines,
// but every output element's summation order is fixed, so a full
// federated run must produce bit-identical models whether the kernels run
// serially or with 8 workers.
func TestSimBitIdenticalAcrossMaxWorkers(t *testing.T) {
	runWith := func(workers int) ([]float64, []float64) {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		cfg.Parallelism = 2
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		h := s.Run()
		return s.cloud, h.GlobalAcc
	}
	cloud1, acc1 := runWith(1)
	cloud8, acc8 := runWith(8)
	if len(cloud1) != len(cloud8) {
		t.Fatalf("model sizes differ: %d vs %d", len(cloud1), len(cloud8))
	}
	for i := range cloud1 {
		if cloud1[i] != cloud8[i] {
			t.Fatalf("cloud model differs at %d between MaxWorkers 1 and 8: %v vs %v", i, cloud1[i], cloud8[i])
		}
	}
	if len(acc1) != len(acc8) {
		t.Fatalf("eval counts differ: %d vs %d", len(acc1), len(acc8))
	}
	for i := range acc1 {
		if acc1[i] != acc8[i] {
			t.Fatalf("accuracy differs at eval %d: %v vs %v", i, acc1[i], acc8[i])
		}
	}
}
