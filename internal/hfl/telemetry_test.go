package hfl

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"middle/internal/obs"
)

// TestTelemetryFullStack runs one small simulation with every telemetry
// consumer attached — registry, JSONL emitter and round trace — and
// checks each output, then re-runs bare and demands bit-identical
// results including the always-on telemetry History columns.
func TestTelemetryFullStack(t *testing.T) {
	reg := obs.NewRegistry()
	var jsonl bytes.Buffer
	tr := obs.NewTrace(0)
	cfg := smallConfig()
	cfg.Obs = reg
	cfg.Events = obs.NewEmitter(&jsonl)
	cfg.Trace = tr

	f := newFixture(t, 0.5)
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()
	selected := reg.Counter("sim_selected_total").Value()
	if selected == 0 {
		t.Fatal("no devices selected")
	}

	// Histograms: one selection-utility and one update-norm observation
	// per selected device-round.
	if got := reg.Histogram("hfl_selection_utility", UtilityBuckets()).Count(); got != selected {
		t.Fatalf("hfl_selection_utility count %d, want %d", got, selected)
	}
	if got := reg.Histogram("hfl_update_norm", NormBuckets()).Count(); got != selected {
		t.Fatalf("hfl_update_norm count %d, want %d", got, selected)
	}
	// Flow counters must sum to the observed cross-edge moves.
	moves := reg.Counter("sim_moves_total").Value()
	var flowSum int64
	for from := 0; from < s.NumEdges(); from++ {
		for to := 0; to < s.NumEdges(); to++ {
			flowSum += reg.Counter("hfl_mobility_flow_total",
				"from", strconv.Itoa(from), "to", strconv.Itoa(to)).Value()
		}
	}
	if flowSum != moves {
		t.Fatalf("mobility flow sum %d, want %d moves", flowSum, moves)
	}
	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hfl_selection_utility_bucket", "hfl_update_norm_bucket",
		`hfl_edge_divergence{edge="0"}`, "hfl_selection_fairness_jain",
		"hfl_participating_devices",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	// History telemetry columns: populated at every eval, with sane
	// ranges (utilities in [0,1], Jain index in (0,1], norms ≥ 0).
	for i := 0; i < h.Len(); i++ {
		if h.SelUtilMean[i] < 0 || h.SelUtilMean[i] > 1 || h.BlendUtilMean[i] < 0 || h.BlendUtilMean[i] > 1 {
			t.Fatalf("eval %d utility means out of range: sel=%v blend=%v", i, h.SelUtilMean[i], h.BlendUtilMean[i])
		}
		if h.UpdNormMean[i] < 0 || h.EdgeDivMean[i] < 0 || h.EdgeDivMax[i] < h.EdgeDivMean[i] {
			t.Fatalf("eval %d norms: upd=%v div mean=%v max=%v", i, h.UpdNormMean[i], h.EdgeDivMean[i], h.EdgeDivMax[i])
		}
		if h.FairnessJain[i] <= 0 || h.FairnessJain[i] > 1 {
			t.Fatalf("eval %d fairness %v outside (0,1]", i, h.FairnessJain[i])
		}
	}

	// JSONL: one "round" event per step, one "eval" per history point.
	rounds, evals := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var ev struct {
			Event       string    `json:"event"`
			Step        int       `json:"step"`
			SelUtilMean *float64  `json:"sel_util_mean"`
			EdgeDiv     []float64 `json:"edge_divergence"`
			Flow        [][]int64 `json:"mobility_flow"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("telemetry line %q: %v", line, err)
		}
		switch ev.Event {
		case "round":
			rounds++
			if ev.SelUtilMean == nil {
				t.Fatalf("round event missing sel_util_mean: %s", line)
			}
		case "eval":
			evals++
			if len(ev.EdgeDiv) != s.NumEdges() || len(ev.Flow) != s.NumEdges() {
				t.Fatalf("eval event dims: %s", line)
			}
		}
	}
	if rounds != cfg.Steps || evals != h.Len() {
		t.Fatalf("JSONL rounds=%d evals=%d, want %d/%d", rounds, evals, cfg.Steps, h.Len())
	}

	// Trace: a validated span tree with one monotonic round span per
	// step, each containing at least select/train/edge_agg children.
	events := tr.Events()
	if err := obs.ValidateTraceEvents(events); err != nil {
		t.Fatal(err)
	}
	lastTs := int64(-1)
	roundSpans := 0
	children := map[string]int{}
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "round" {
			roundSpans++
			if e.Ts < lastTs {
				t.Fatalf("round spans not monotonic: %d after %d", e.Ts, lastTs)
			}
			lastTs = e.Ts
			continue
		}
		children[e.Name]++
	}
	if roundSpans != cfg.Steps {
		t.Fatalf("%d round spans, want %d", roundSpans, cfg.Steps)
	}
	for _, name := range []string{"select", "train", "edge_agg"} {
		if children[name] != cfg.Steps {
			t.Fatalf("%d %q spans, want %d", children[name], name, cfg.Steps)
		}
	}
	if children["cloud_sync"] != cfg.Steps/cfg.CloudInterval {
		t.Fatalf("%d cloud_sync spans, want %d", children["cloud_sync"], cfg.Steps/cfg.CloudInterval)
	}

	// The fully instrumented run must be bit-identical to a bare one,
	// including the always-on telemetry columns.
	f2 := newFixture(t, 0.5)
	s2 := New(smallConfig(), f2.factory(), f2.part, f2.test, f2.mob, &spyStrategy{})
	h2 := s2.Run()
	if h.Len() != h2.Len() {
		t.Fatalf("eval counts differ: %d vs %d", h.Len(), h2.Len())
	}
	for i := 0; i < h.Len(); i++ {
		same := h.GlobalAcc[i] == h2.GlobalAcc[i] &&
			h.SelUtilMean[i] == h2.SelUtilMean[i] &&
			h.UpdNormMean[i] == h2.UpdNormMean[i] &&
			h.BlendUtilMean[i] == h2.BlendUtilMean[i] &&
			h.EdgeDivMean[i] == h2.EdgeDivMean[i] &&
			h.EdgeDivMax[i] == h2.EdgeDivMax[i] &&
			h.FairnessJain[i] == h2.FairnessJain[i]
		if !same {
			t.Fatalf("instrumented run diverged at eval %d", i)
		}
	}
}

// TestTelemetryDisabledAllocFree pins the disabled-mode contract: with
// no registry/emitter/trace configured, the telemetry recording calls
// StepOnce makes are allocation-free.
func TestTelemetryDisabledAllocFree(t *testing.T) {
	tel := newTelemetry(nil, 3, 8)
	if a := testing.AllocsPerRun(200, func() {
		tel.beginRound()
		tel.recordSelection(2, 0.5, 1.25)
		tel.recordBlend(0.25)
		tel.recordMove(0, 2)
		_ = tel.fairnessJain()
		_ = tel.selUtilMean()
	}); a != 0 {
		t.Fatalf("disabled telemetry recording allocates %.1f/op", a)
	}

	var s Sim // zero cfg: nil trace
	if a := testing.AllocsPerRun(200, func() {
		s.tracePhase("select", 7, s.cfg.Trace.Now(), s.cfg.Trace.Now())
	}); a != 0 {
		t.Fatalf("disabled tracePhase allocates %.1f/op", a)
	}
}

// Jain's index must be 1 for uniform participation, 1/n for a single
// dominant device, and 0 before anyone trains.
func TestFairnessJain(t *testing.T) {
	tel := newTelemetry(nil, 2, 4)
	if got := tel.fairnessJain(); got != 0 {
		t.Fatalf("empty fairness %v, want 0", got)
	}
	for m := 0; m < 4; m++ {
		tel.recordSelection(m, 0.5, 1)
	}
	if got := tel.fairnessJain(); got != 1 {
		t.Fatalf("uniform fairness %v, want 1", got)
	}
	tel2 := newTelemetry(nil, 2, 4)
	for i := 0; i < 10; i++ {
		tel2.recordSelection(0, 0.5, 1)
	}
	if got := tel2.fairnessJain(); got != 0.25 {
		t.Fatalf("dominant-device fairness %v, want 0.25", got)
	}
}
