// Package hfl implements the device-edge-cloud hierarchical federated
// learning engine of the MIDDLE paper (Algorithm 1): mobile devices run
// local SGD, edges aggregate the selected devices' models every time
// step (Eq. 6), and the cloud aggregates edge models every T_c steps
// (Eq. 7). The engine is parameterised by a Strategy — the device
// selection and on-device model-initialisation policy — which is where
// MIDDLE and the paper's baselines differ (see internal/core).
package hfl

import (
	"fmt"
	"runtime"

	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/optim"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// OptimizerKind selects the local optimizer family.
type OptimizerKind string

// Supported local optimizers (paper §6.1.2: SGD+momentum 0.9 for the
// image tasks, Adam for the speech task).
const (
	OptSGD         OptimizerKind = "sgd"
	OptSGDMomentum OptimizerKind = "sgd-momentum"
	OptAdam        OptimizerKind = "adam"
)

// OptimizerSpec configures the per-round local optimizer.
type OptimizerSpec struct {
	Kind     OptimizerKind
	LR       float64
	Momentum float64 // used by OptSGDMomentum
}

// New constructs a fresh optimizer from the spec.
func (s OptimizerSpec) New() optim.Optimizer {
	switch s.Kind {
	case OptSGD, "":
		return optim.NewSGD(s.LR)
	case OptSGDMomentum:
		return optim.NewSGDMomentum(s.LR, s.Momentum)
	case OptAdam:
		return optim.NewAdam(s.LR)
	default:
		panic(fmt.Sprintf("hfl: unknown optimizer kind %q", s.Kind))
	}
}

// Config holds the simulation hyper-parameters of Algorithm 1.
type Config struct {
	Seed int64

	// K is the number of devices each edge selects per time step
	// (paper: K = 5).
	K int
	// LocalSteps is I, the local SGD updates per time step (paper: 10).
	LocalSteps int
	// CloudInterval is T_c, the edge–cloud synchronisation period in
	// time steps (paper: 10).
	CloudInterval int
	// BatchSize is the ξ mini-batch size per local update.
	BatchSize int
	// Steps is the total number of time steps to simulate.
	Steps int

	// EvalEvery evaluates the global model each time this many steps
	// elapse (and always at the final step). 0 disables periodic eval.
	EvalEvery int
	// EvalSamples caps how many test samples each evaluation uses
	// (0 = the whole test set).
	EvalSamples int
	// EvalEdges additionally records each edge model's accuracy.
	EvalEdges bool
	// EvalPerClass additionally records global per-class accuracy.
	EvalPerClass bool

	// Parallelism bounds the device-training worker pool
	// (0 = GOMAXPROCS).
	Parallelism int

	Optimizer OptimizerSpec
	// LRSchedule, when set, overrides the optimizer's learning rate at
	// every time step (e.g. the inverse decay η_t = η₀γ/(γ+t) of the
	// paper's Theorem 1). Nil keeps the constant Optimizer.LR.
	LRSchedule optim.Schedule

	// Latency and Deadline model system heterogeneity (the stragglers
	// the paper's §1 motivates device selection with). When both are
	// set, a selected device whose Latency(device) exceeds Deadline
	// misses the round: it does not train and is excluded from the
	// edge aggregation. The paper's main experiments assume every
	// device completes its round (§3.2 principle 2), so both default
	// to off.
	Latency  func(device int) float64
	Deadline float64

	// Quorum, DropRate and FaultSeed mirror the fednet robustness layer
	// inside the simulation, so degradation policies can be studied at
	// simulation speed. DropRate is the probability a selected device's
	// round-trip is lost (decided deterministically from FaultSeed, the
	// step and the device id — same seed, same drops). Quorum, when
	// > 0, is the minimum number of surviving responders an edge needs
	// to apply Eq. 6; below it the edge carries its previous model
	// forward for that step (a quorum miss). All three default to off,
	// leaving results bit-identical to the fault-free engine.
	Quorum    int
	DropRate  float64
	FaultSeed int64

	// LiveMigration mirrors fednet's stateful edge-to-edge handover: a
	// moving device's carried model travels with it (which is what the
	// engine has always simulated), and MigrationFailRate is the
	// probability a given handover is lost in transit (decided
	// deterministically from FaultSeed, the step and the device id, on a
	// stream independent of DropRate's). A failed handover degrades to
	// drop-and-reconnect: the device's carried model is reset to the
	// global model and the Eq. 9 blend is suppressed for that move. Both
	// default to off; LiveMigration with a zero fail rate only adds
	// hfl_migrations_total accounting, leaving results bit-identical.
	LiveMigration     bool
	MigrationFailRate float64

	// SelfHealing mirrors the fednet membership layer inside the
	// simulation: a seeded schedule crashes edges and recovers them later,
	// and the engine re-homes a dead edge's devices to the survivors
	// instead of losing them. Each step, every up edge crashes with
	// probability EdgeFailRate (decided deterministically from FaultSeed,
	// the step and the edge id, on a stream independent of the drop and
	// migration streams; the last surviving edge never crashes) and stays
	// down for EdgeRecoverSteps steps (default CloudInterval). While an
	// edge is down its devices train at a surviving edge chosen
	// deterministically by device id — the re-home counts as a mobility
	// move, so the strategy's Eq. 9 blend applies — and the dead edge's
	// accumulated weight is excluded from Eq. 7. A recovering edge rejoins
	// by adopting the current global model. The membership epoch is bumped
	// on every crash and recovery. All default to off; SelfHealing with a
	// zero fail rate only adds epoch accounting, leaving results
	// bit-identical.
	SelfHealing      bool
	EdgeFailRate     float64
	EdgeRecoverSteps int

	// Aggregator selects the Eq. 6/Eq. 7 combiner: "" or "mean" (the
	// paper's weighted mean, bit-identical to previous releases),
	// "median", "trimmed-mean" or "norm-clip" (see internal/robust for
	// what each tolerates).
	Aggregator robust.AggregatorKind
	// TrimFrac is the trimmed mean's β (0 = robust.DefaultTrimFrac).
	TrimFrac float64
	// Validate screens received updates before aggregation: non-finite
	// models are always rejected when enabled, and NormBound > 0
	// additionally rejects updates whose norm exceeds
	// NormBound·median(norms) that round. Rejected updates are excluded
	// from Eq. 6/Eq. 7 exactly like stragglers. Off by default.
	Validate robust.ValidatorConfig
	// Adversary, when Fraction > 0, marks a seeded subset of devices as
	// Byzantine: after local training their upload is corrupted
	// (sign-flip / noise / same-value collusion) as a pure function of
	// (Seed, device, round). Off by default.
	Adversary robust.Adversary
	// SelectionNormCap, when > 0, caps the Eq. 12 selection score of
	// devices whose accumulated-update norm ‖w_m − w_c‖ exceeds it:
	// such devices rank strictly below every in-bound device. This
	// counters the selector's attacker affinity — Eq. 12 otherwise
	// prefers exactly the divergent updates adversaries produce.
	SelectionNormCap float64

	// LazyStore selects the population-scale device store: carried
	// models are materialized only for devices that train between cloud
	// syncs (the selected cohorts); everyone else shares the cloud
	// vector. Because every cloud sync overwrites every carried model
	// with the global model, runs with LazyStore on (and ResidentCap
	// 0) are bit-identical to the dense engine while per-round memory
	// scales with cohort size instead of the device count.
	LazyStore bool
	// ResidentCap, when > 0, bounds how many materialized device
	// vectors the lazy store keeps (implies LazyStore). At step end the
	// least-recently-trained residents beyond the cap are evicted to a
	// compact drift record (their Eq. 12 utility and ‖Δw_m‖ at eviction
	// time), which selection keeps using; an evicted mover re-blends
	// against the cloud model instead of its carried one. The cap must
	// hold at least one full cohort (K × edges) — New panics otherwise.
	ResidentCap int

	// Obs, when set, receives run metrics: per-phase wall time
	// (sim_phase_seconds{phase=...}), step/selection/straggler/mobility
	// counters, cloud-sync counts, and the learning-dynamics series
	// (hfl_selection_utility, hfl_update_norm, hfl_blend_utility,
	// hfl_edge_divergence{edge}, hfl_selection_fairness_jain,
	// hfl_mobility_flow_total{from,to}). Nil (the default) disables
	// metrics at near-zero cost; the always-on PhaseTimes breakdown and
	// History telemetry columns remain available either way.
	Obs *obs.Registry

	// Events, when set, receives the per-run telemetry JSONL stream: one
	// "round" event per time step with that round's selection-utility /
	// update-norm / blend-utility means, and one "eval" event per
	// evaluation with accuracy, per-edge divergence, fairness and the
	// cumulative edge→edge mobility flow matrix. Nil disables the stream
	// with zero steady-state cost.
	Events *obs.Emitter

	// Trace, when set, records each time step as a Chrome trace-event
	// span tree (round → select/train/edge_agg/cloud_sync/eval) for
	// /debug/trace and -trace-out. Nil disables tracing with zero
	// steady-state cost.
	Trace *obs.Trace
}

// withDefaults fills unset fields with safe values and validates.
func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 5
	}
	if c.LocalSteps <= 0 {
		c.LocalSteps = 10
	}
	if c.CloudInterval <= 0 {
		c.CloudInterval = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Optimizer.LR <= 0 {
		c.Optimizer = OptimizerSpec{Kind: OptSGDMomentum, LR: 0.01, Momentum: 0.9}
	}
	if c.ResidentCap < 0 {
		panic(fmt.Sprintf("hfl: negative ResidentCap %d", c.ResidentCap))
	}
	if c.ResidentCap > 0 {
		c.LazyStore = true
	}
	return c
}

// ModelFactory builds one instance of the task's network architecture.
// All instances must have identical parameter layout; the engine
// overwrites their weights with model vectors.
type ModelFactory func(rng *tensor.RNG) *nn.Network
