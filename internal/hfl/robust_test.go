package hfl

// Tests for the Byzantine-robustness layer wired through the simulation:
// the seeded adversary harness, validator + robust aggregator plumbing,
// the bit-identity contract of the defaults, and the reject-rate history
// column.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"middle/internal/data"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// TestRobustDefaultsBitIdentical pins the PR's central contract: with
// the robustness knobs at their zero values — and even with an explicit
// mean aggregator or a validator whose bound never fires — the run is
// bitwise identical to the plain engine.
func TestRobustDefaultsBitIdentical(t *testing.T) {
	run := func(mut func(*Config)) []float64 {
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		if mut != nil {
			mut(&cfg)
		}
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s.cloud
	}
	base := run(nil)
	for name, mut := range map[string]func(*Config){
		"explicit mean":       func(c *Config) { c.Aggregator = robust.AggMean },
		"validator, no bound": func(c *Config) { c.Validate = robust.ValidatorConfig{Enabled: true} },
		"validator, huge bound": func(c *Config) {
			c.Validate = robust.ValidatorConfig{Enabled: true, NormBound: 1e12}
		},
	} {
		got := run(mut)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("%s: cloud model diverges from defaults at %d: %v vs %v", name, i, got[i], base[i])
			}
		}
	}
}

// TestAdversaryRunDeterministic pins the adversary harness to its seed:
// the same (seed, fraction, mode) reproduces the exact corrupted run;
// changing the seed changes it.
func TestAdversaryRunDeterministic(t *testing.T) {
	run := func(advSeed int64) ([]float64, int) {
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		cfg.Adversary = robust.Adversary{Fraction: 0.4, Mode: robust.AdvSignFlip, Scale: 2, Seed: advSeed}
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s.cloud, s.AdversaryCorruptions()
	}
	m1, c1 := run(9)
	m2, c2 := run(9)
	if c1 == 0 {
		t.Fatal("fraction 0.4 over 8 devices produced no corruptions — adversary harness inert")
	}
	if c1 != c2 {
		t.Fatalf("same adversary seed corrupted %d vs %d updates", c1, c2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same adversary seed produced different cloud models")
		}
	}
	m3, _ := run(10)
	same := true
	for i := range m1 {
		if m1[i] != m3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different adversary seeds produced identical cloud models")
	}
}

// TestAdversaryCorruptionsCounted checks the corruption telemetry: the
// obs counter tracks the accessor, and the reject-rate plumbing reports
// rejections once the validator screens the corrupted updates.
func TestAdversaryValidatorRejects(t *testing.T) {
	f := newFixture(t, 0.5)
	reg := obs.NewRegistry()
	cfg := smallConfig()
	// The norm-bound pass only engages with ≥3 finite survivors in a
	// cohort; K=4 guarantees cohorts big enough to screen.
	cfg.K = 4
	cfg.Obs = reg
	cfg.Adversary = robust.Adversary{Fraction: 0.4, Mode: robust.AdvSignFlip, Scale: 20, Seed: 9}
	cfg.Validate = robust.ValidatorConfig{Enabled: true, NormBound: 3}
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	if got := reg.Counter("hfl_adversary_corruptions_total").Value(); got != int64(s.AdversaryCorruptions()) {
		t.Fatalf("hfl_adversary_corruptions_total = %d, accessor says %d", got, s.AdversaryCorruptions())
	}
	rc := s.RejectedUpdates()
	if rc.Norm == 0 {
		t.Fatalf("norm bound 3 against scale-20 sign-flips rejected nothing (counts %+v)", rc)
	}
	if got := reg.Counter("robust_rejected_updates_total", "reason", "norm").Value(); got != int64(rc.Norm) {
		t.Fatalf("robust_rejected_updates_total{norm} = %d, accessor says %d", got, rc.Norm)
	}
	if rate := s.RejectionRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("rejection rate %v outside (0, 1)", rate)
	}
}

// chaosRun trains a 12-device/2-edge deployment under the given
// adversary and robustness settings and returns the final accuracy.
func chaosRun(t *testing.T, adv robust.Adversary, agg robust.AggregatorKind, validate robust.ValidatorConfig) float64 {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 600, 5, 5)
	test := data.GenerateImagesSplit(prof, 150, 5, 77)
	part := data.PartitionMajorClass(train, 12, 50, 0.85, 6)
	mob := mobility.NewMarkov(2, 12, 0.3, 7)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(test.SampleSize(), 24, rng),
			nn.NewReLU(),
			nn.NewLinear(24, test.Classes, rng),
		)
	}
	cfg := Config{
		Seed: 1, K: 6, LocalSteps: 3, CloudInterval: 5, BatchSize: 8,
		Steps: 20, EvalEvery: 20, Parallelism: 2,
		Optimizer: OptimizerSpec{Kind: OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Adversary: adv, Aggregator: agg, TrimFrac: 0.2, Validate: validate,
	}
	s := New(cfg, factory, part, test, mob, &spyStrategy{})
	return s.Run().FinalAcc()
}

// TestAdversaryTrimmedMeanResists is the end-to-end robustness
// acceptance: with ≥20% of devices sign-flipping their updates, the
// robust stack (trimmed mean + adaptive norm bound) stays within 5
// accuracy points of the fault-free run, while the plain weighted mean
// visibly degrades.
func TestAdversaryTrimmedMeanResists(t *testing.T) {
	adv := robust.Adversary{Fraction: 0.25, Mode: robust.AdvSignFlip, Scale: 20, Seed: 3}
	robustStack := robust.ValidatorConfig{Enabled: true, NormBound: 3}
	clean := chaosRun(t, robust.Adversary{}, robust.AggMean, robust.ValidatorConfig{})
	cleanRobust := chaosRun(t, robust.Adversary{}, robust.AggTrimmedMean, robustStack)
	poisonedMean := chaosRun(t, adv, robust.AggMean, robust.ValidatorConfig{})
	poisonedRobust := chaosRun(t, adv, robust.AggTrimmedMean, robustStack)
	t.Logf("clean mean %.4f, clean trimmed+bound %.4f, poisoned mean %.4f, poisoned trimmed+bound %.4f",
		clean, cleanRobust, poisonedMean, poisonedRobust)
	if clean < 0.4 || cleanRobust < 0.4 {
		t.Fatalf("fault-free baselines only reached %.4f/%.4f — fixture too weak to discriminate", clean, cleanRobust)
	}
	if cleanRobust-poisonedRobust > 0.05 {
		t.Fatalf("robust stack lost %.4f accuracy to the adversaries (fault-free %.4f, poisoned %.4f)",
			cleanRobust-poisonedRobust, cleanRobust, poisonedRobust)
	}
	if clean-poisonedMean < 0.10 {
		t.Fatalf("plain mean barely degraded (clean %.4f, poisoned %.4f) — adversaries too weak for this test to mean anything",
			clean, poisonedMean)
	}
}

// TestNonFiniteLossGuard forces divergence with an absurd learning rate
// and checks the training loop skips non-finite steps instead of
// propagating NaN into the parameters it keeps training on.
func TestNonFiniteLossGuard(t *testing.T) {
	f := newFixture(t, 0.5)
	reg := obs.NewRegistry()
	cfg := smallConfig()
	cfg.Obs = reg
	cfg.Optimizer = OptimizerSpec{Kind: OptSGD, LR: 1e12}
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	if s.NonFiniteSteps() == 0 {
		t.Fatal("LR 1e12 never produced a non-finite loss — guard untested")
	}
	if got := reg.Counter("hfl_nonfinite_steps_total").Value(); got != s.NonFiniteSteps() {
		t.Fatalf("hfl_nonfinite_steps_total = %d, accessor says %d", got, s.NonFiniteSteps())
	}
}

// TestRobustAggregatorsKeepModelFinite runs every non-mean aggregator
// against noise adversaries and checks the cloud model stays finite —
// the end-to-end smoke for the median and clipping paths.
func TestRobustAggregatorsKeepModelFinite(t *testing.T) {
	for _, kind := range []robust.AggregatorKind{robust.AggMedian, robust.AggTrimmedMean, robust.AggNormClip} {
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		cfg.Aggregator = kind
		cfg.Adversary = robust.Adversary{Fraction: 0.3, Mode: robust.AdvNoise, Scale: 10, Seed: 5}
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		for i, v := range s.cloud {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: cloud[%d] = %v under noise adversaries", kind, i, v)
			}
		}
	}
}

// TestHistoryCSVRejectRate round-trips the new reject_rate column.
func TestHistoryCSVRejectRate(t *testing.T) {
	h := &History{Strategy: "middle"}
	h.AppendPoint(EvalPoint{Step: 5, GlobalAcc: 0.25, RejectRate: 0.125})
	h.AppendPoint(EvalPoint{Step: 10, GlobalAcc: 0.5, RejectRate: 0.0625})
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "reject_rate") {
		t.Fatalf("header missing reject_rate: %s", buf.String())
	}
	got, err := ReadHistoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round-trip rows %d, want 2", got.Len())
	}
	for i, want := range h.RejectRate {
		if got.RejectRate[i] != want {
			t.Fatalf("reject_rate[%d] = %v, want %v", i, got.RejectRate[i], want)
		}
	}
}
