package hfl

import (
	"math"
	"testing"

	"middle/internal/data"
	"middle/internal/mobility"
	"middle/internal/optim"
	"middle/internal/tensor"
)

func TestEvalSamplesCapsEvaluation(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.EvalSamples = 16
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	acc, _ := s.EvaluateVector(s.CloudModel(), cfg.EvalSamples, false)
	// Accuracy over 16 samples is a multiple of 1/16.
	scaled := acc * 16
	if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
		t.Fatalf("accuracy %v not consistent with 16-sample eval", acc)
	}
}

func TestEvalZeroCapUsesWholeTestSet(t *testing.T) {
	f := newFixture(t, 0.3)
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	accAll, _ := s.EvaluateVector(s.CloudModel(), 0, false)
	scaled := accAll * float64(f.test.Len())
	if math.Abs(scaled-math.Round(scaled)) > 1e-6 {
		t.Fatalf("accuracy %v not a multiple of 1/%d", accAll, f.test.Len())
	}
}

// candidateCheckStrategy verifies that every candidate handed to Select
// actually resides in the edge being selected for.
type candidateCheckStrategy struct {
	t   *testing.T
	sim *Sim
}

func (c *candidateCheckStrategy) Name() string { return "candidate-check" }

func (c *candidateCheckStrategy) Select(v View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	membership := c.sim.Membership()
	for _, m := range candidates {
		if membership[m] != edge {
			c.t.Errorf("device %d offered to edge %d but lives on edge %d", m, edge, membership[m])
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	return candidates[:k]
}

func (c *candidateCheckStrategy) InitLocal(v View, device, edge int, moved bool) []float64 {
	return append([]float64(nil), v.EdgeModel(edge)...)
}

func TestSelectCandidatesMatchMembership(t *testing.T) {
	f := newFixture(t, 0.7)
	strat := &candidateCheckStrategy{t: t}
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, strat)
	strat.sim = s
	s.Run()
}

func TestWorkerPoolLargerThanJobs(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Parallelism = 64 // far more workers than jobs per step
	cfg.Steps = 3
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run() // must not deadlock or panic
}

func TestAdamOptimizerPath(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Optimizer = OptimizerSpec{Kind: OptAdam, LR: 0.005}
	cfg.Steps = 6
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()
	if h.FinalAcc() <= 0 {
		t.Fatalf("adam run accuracy %v", h.FinalAcc())
	}
}

func TestPlainSGDOptimizerPath(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Optimizer = OptimizerSpec{Kind: OptSGD, LR: 0.05}
	cfg.Steps = 6
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	if s.Run().Len() == 0 {
		t.Fatal("no evals recorded")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.K != 5 || cfg.LocalSteps != 10 || cfg.CloudInterval != 10 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.Optimizer.Kind != OptSGDMomentum || cfg.Optimizer.Momentum != 0.9 {
		t.Fatalf("default optimizer %+v", cfg.Optimizer)
	}
	if cfg.Parallelism < 1 {
		t.Fatalf("parallelism %d", cfg.Parallelism)
	}
}

func TestBatchLargerThanShardIsClamped(t *testing.T) {
	prof := data.FastImageProfile(3)
	train := data.GenerateImagesSplit(prof, 60, 3, 3)
	test := data.GenerateImagesSplit(prof, 30, 3, 31)
	part := data.PartitionIID(train, 4, 3, 1) // only 3 samples per device
	mob := mobility.NewStatic(2, 4)
	cfg := Config{Seed: 1, K: 2, LocalSteps: 2, CloudInterval: 3, BatchSize: 16, Steps: 3, EvalEvery: 3,
		Optimizer: OptimizerSpec{Kind: OptSGD, LR: 0.05}}
	s := New(cfg, fixture{test: test}.factory(), part, test, mob, &spyStrategy{})
	s.Run() // must not panic on tiny shards
}

func TestLRScheduleApplied(t *testing.T) {
	// With a zero learning rate schedule, training must be a no-op: the
	// cloud model never changes even at sync steps.
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.LRSchedule = optim.ConstantSchedule(0)
	cfg.Steps = cfg.CloudInterval
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	before := append([]float64(nil), s.CloudModel()...)
	s.Run()
	for i := range before {
		if s.CloudModel()[i] != before[i] {
			t.Fatal("zero-LR schedule still changed the model")
		}
	}
}

func TestLRScheduleDecayRuns(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.LRSchedule = optim.InverseSchedule{Base: 0.05, Gamma: 10}
	cfg.Steps = 6
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	if s.Run().Len() == 0 {
		t.Fatal("no evaluations")
	}
}

func TestCommunicationAccounting(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Steps = cfg.CloudInterval * 2
	cfg.EvalEvery = cfg.CloudInterval
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()
	de, ec := s.CommCounts()
	if de <= 0 || ec <= 0 {
		t.Fatalf("comm counts %d/%d", de, ec)
	}
	// Each step selects at most K per edge; 2 transfers per selection.
	maxDE := int64(2 * cfg.K * s.NumEdges() * cfg.Steps)
	if de > maxDE {
		t.Fatalf("device-edge transfers %d exceed bound %d", de, maxDE)
	}
	// Two syncs, each at most 2 transfers per edge.
	if ec > int64(2*2*s.NumEdges()) {
		t.Fatalf("edge-cloud transfers %d", ec)
	}
	// History carries cumulative counters.
	if len(h.CommDeviceEdge) != h.Len() {
		t.Fatalf("history comm columns %d vs %d", len(h.CommDeviceEdge), h.Len())
	}
	last := h.Len() - 1
	if h.CommDeviceEdge[last] != de || h.CommEdgeCloud[last] != ec {
		t.Fatal("history comm counters disagree with sim")
	}
	if h.CommDeviceEdge[0] > h.CommDeviceEdge[last] {
		t.Fatal("comm counters not monotone")
	}
	if _, _, ok := h.CommToAccuracy(2.0); ok {
		t.Fatal("CommToAccuracy reported unreachable target")
	}
	if d, e, ok := h.CommToAccuracy(0.0); !ok || d <= 0 || e < 0 {
		t.Fatalf("CommToAccuracy(0) = %d/%d/%v", d, e, ok)
	}
}

func TestStragglerDeadlineExcludesSlowDevices(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Steps = 6
	// Odd devices are slow and always miss the deadline.
	cfg.Latency = func(device int) float64 {
		if device%2 == 1 {
			return 10
		}
		return 1
	}
	cfg.Deadline = 5
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	for m := 0; m < s.NumDevices(); m++ {
		if m%2 == 1 && s.LastTrained(m) != -1 {
			t.Fatalf("slow device %d trained despite missing every deadline", m)
		}
	}
	if s.Stragglers() == 0 {
		t.Fatal("no stragglers counted")
	}
}

func TestNoDeadlineMeansNoStragglers(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Steps = 4
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	if s.Stragglers() != 0 {
		t.Fatalf("stragglers %d with heterogeneity off", s.Stragglers())
	}
}
