package hfl

import (
	"bytes"
	"strings"
	"testing"

	"middle/internal/obs"
)

// TestSimObsMetrics runs a small simulation with a metrics registry and
// checks that the per-phase timings and counters land in it, that the
// always-on PhaseTimes breakdown agrees, and that the result is
// identical to an uninstrumented run (metrics must not perturb the
// simulation).
func TestSimObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallConfig()
	cfg.Obs = reg
	f := newFixture(t, 0.5)
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()

	if got := reg.Counter("sim_steps_total").Value(); got != int64(cfg.Steps) {
		t.Fatalf("sim_steps_total = %d, want %d", got, cfg.Steps)
	}
	if got := reg.Counter("sim_cloud_syncs_total").Value(); got != int64(cfg.Steps/cfg.CloudInterval) {
		t.Fatalf("sim_cloud_syncs_total = %d, want %d", got, cfg.Steps/cfg.CloudInterval)
	}
	if got := reg.Counter("sim_evals_total").Value(); got != int64(h.Len()) {
		t.Fatalf("sim_evals_total = %d, want %d", got, h.Len())
	}
	if got := reg.Counter("sim_move_opportunities_total").Value(); got != int64(cfg.Steps*s.NumDevices()) {
		t.Fatalf("sim_move_opportunities_total = %d, want %d", got, cfg.Steps*s.NumDevices())
	}
	if got := reg.Counter("sim_selected_total").Value(); got <= 0 {
		t.Fatalf("sim_selected_total = %d, want > 0", got)
	}

	ph := s.PhaseSeconds()
	if ph.Select <= 0 || ph.Train <= 0 || ph.EdgeAgg <= 0 || ph.CloudSync <= 0 || ph.Eval <= 0 {
		t.Fatalf("phase accumulators not all positive: %+v", ph)
	}
	// Histories record the cumulative breakdown at eval time.
	last := h.Len() - 1
	if h.PhaseTrain[last] <= 0 || h.Stragglers[last] != 0 {
		t.Fatalf("history phase/straggler columns: train=%v stragglers=%d", h.PhaseTrain[last], h.Stragglers[last])
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, phase := range []string{"selection", "local_train", "edge_agg", "cloud_sync", "eval"} {
		want := `sim_phase_seconds_count{phase="` + phase + `"}`
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %s:\n%s", want, expo)
		}
	}
	hist := reg.Histogram("sim_phase_seconds", nil, "phase", "local_train")
	if hist.Count() != int64(cfg.Steps) {
		t.Fatalf("local_train span count %d, want %d", hist.Count(), cfg.Steps)
	}

	// Metrics must not change the simulation itself.
	f2 := newFixture(t, 0.5)
	s2 := New(smallConfig(), f2.factory(), f2.part, f2.test, f2.mob, &spyStrategy{})
	h2 := s2.Run()
	if len(h.GlobalAcc) != len(h2.GlobalAcc) {
		t.Fatalf("eval counts differ with metrics on: %d vs %d", len(h.GlobalAcc), len(h2.GlobalAcc))
	}
	for i := range h.GlobalAcc {
		if h.GlobalAcc[i] != h2.GlobalAcc[i] {
			t.Fatalf("accuracy diverged with metrics on at eval %d: %v vs %v", i, h.GlobalAcc[i], h2.GlobalAcc[i])
		}
	}
}

// Straggler counters must flow through to both the registry and the
// history columns when the heterogeneity deadline is active.
func TestSimObsStragglers(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallConfig()
	cfg.Obs = reg
	cfg.Latency = func(device int) float64 {
		if device%2 == 0 {
			return 2 // always misses
		}
		return 0.5
	}
	cfg.Deadline = 1
	f := newFixture(t, 0.5)
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()

	if s.Stragglers() == 0 {
		t.Fatal("deadline produced no stragglers")
	}
	if got := reg.Counter("sim_stragglers_total").Value(); got != int64(s.Stragglers()) {
		t.Fatalf("sim_stragglers_total = %d, want %d", got, s.Stragglers())
	}
	last := h.Len() - 1
	if h.Stragglers[last] != s.Stragglers() {
		t.Fatalf("history stragglers %d, want %d", h.Stragglers[last], s.Stragglers())
	}
}
