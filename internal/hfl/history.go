package hfl

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// History records the evaluation series of one simulation run. Slices
// are indexed by evaluation event, not by time step; Steps holds the
// time step of each event.
type History struct {
	Strategy          string
	EmpiricalMobility float64
	// PeakResidentModels is the run's high-water mark of materialized
	// device model vectors (the device count under the dense store; the
	// cohort-scale figure the lazy store bounds). Filled by Run.
	PeakResidentModels int

	Steps       []int
	GlobalAcc   []float64
	PerClassAcc [][]float64 // nil entries when per-class eval is off
	EdgeAcc     [][]float64 // nil entries when edge eval is off
	// CommDeviceEdge/CommEdgeCloud are cumulative model-transfer counts
	// on each link class at each evaluation event.
	CommDeviceEdge []int64
	CommEdgeCloud  []int64
	// Stragglers is the cumulative count of selected device-rounds lost
	// to the heterogeneity deadline at each evaluation event.
	Stragglers []int
	// Phase breakdown: cumulative wall-clock seconds per StepOnce phase
	// at each evaluation event (the in-progress eval is not included in
	// its own PhaseEval entry).
	PhaseSelect    []float64
	PhaseTrain     []float64
	PhaseEdgeAgg   []float64
	PhaseCloudSync []float64
	PhaseEval      []float64
	// Learning-dynamics telemetry at each evaluation event: running
	// means of the Eq. 12 selection utility, accumulated-update norm
	// ‖Δw_m‖ and Eq. 9 blend utility since the start of the run, the
	// per-edge divergence ‖w_n − w_c‖ (mean and max across edges at the
	// eval instant) and Jain's fairness index over per-device training
	// counts.
	SelUtilMean   []float64
	UpdNormMean   []float64
	BlendUtilMean []float64
	EdgeDivMean   []float64
	EdgeDivMax    []float64
	FairnessJain  []float64
	// RejectRate is the cumulative fraction of updates offered to
	// Eq. 6/Eq. 7 that validation rejected, at each evaluation event
	// (always 0 with validation off).
	RejectRate []float64
}

// EvalPoint is one evaluation event's full record.
type EvalPoint struct {
	Step        int
	GlobalAcc   float64
	PerClassAcc []float64
	EdgeAcc     []float64
	// Cumulative counters at this event.
	CommDeviceEdge int64
	CommEdgeCloud  int64
	Stragglers     int
	Phases         PhaseTimes
	// Learning-dynamics telemetry (see the History field docs).
	SelUtilMean   float64
	UpdNormMean   float64
	BlendUtilMean float64
	EdgeDivMean   float64
	EdgeDivMax    float64
	FairnessJain  float64
	RejectRate    float64
}

// Append records one evaluation event.
func (h *History) Append(step int, acc float64, perClass, edgeAcc []float64) {
	h.AppendComm(step, acc, perClass, edgeAcc, 0, 0)
}

// AppendComm records one evaluation event with communication counters.
func (h *History) AppendComm(step int, acc float64, perClass, edgeAcc []float64, commDE, commEC int64) {
	h.AppendPoint(EvalPoint{
		Step: step, GlobalAcc: acc, PerClassAcc: perClass, EdgeAcc: edgeAcc,
		CommDeviceEdge: commDE, CommEdgeCloud: commEC,
	})
}

// AppendPoint records one evaluation event with all columns.
func (h *History) AppendPoint(p EvalPoint) {
	h.Steps = append(h.Steps, p.Step)
	h.GlobalAcc = append(h.GlobalAcc, p.GlobalAcc)
	h.PerClassAcc = append(h.PerClassAcc, p.PerClassAcc)
	h.EdgeAcc = append(h.EdgeAcc, p.EdgeAcc)
	h.CommDeviceEdge = append(h.CommDeviceEdge, p.CommDeviceEdge)
	h.CommEdgeCloud = append(h.CommEdgeCloud, p.CommEdgeCloud)
	h.Stragglers = append(h.Stragglers, p.Stragglers)
	h.PhaseSelect = append(h.PhaseSelect, p.Phases.Select)
	h.PhaseTrain = append(h.PhaseTrain, p.Phases.Train)
	h.PhaseEdgeAgg = append(h.PhaseEdgeAgg, p.Phases.EdgeAgg)
	h.PhaseCloudSync = append(h.PhaseCloudSync, p.Phases.CloudSync)
	h.PhaseEval = append(h.PhaseEval, p.Phases.Eval)
	h.SelUtilMean = append(h.SelUtilMean, p.SelUtilMean)
	h.UpdNormMean = append(h.UpdNormMean, p.UpdNormMean)
	h.BlendUtilMean = append(h.BlendUtilMean, p.BlendUtilMean)
	h.EdgeDivMean = append(h.EdgeDivMean, p.EdgeDivMean)
	h.EdgeDivMax = append(h.EdgeDivMax, p.EdgeDivMax)
	h.FairnessJain = append(h.FairnessJain, p.FairnessJain)
	h.RejectRate = append(h.RejectRate, p.RejectRate)
}

// CommToAccuracy returns the cumulative model transfers (device–edge,
// edge–cloud) at the first evaluation reaching the target accuracy.
func (h *History) CommToAccuracy(target float64) (deviceEdge, edgeCloud int64, ok bool) {
	for i, a := range h.GlobalAcc {
		if a >= target {
			return h.CommDeviceEdge[i], h.CommEdgeCloud[i], true
		}
	}
	return 0, 0, false
}

// Len returns the number of recorded evaluation events.
func (h *History) Len() int { return len(h.Steps) }

// FinalAcc returns the last recorded global accuracy (0 if none).
func (h *History) FinalAcc() float64 {
	if len(h.GlobalAcc) == 0 {
		return 0
	}
	return h.GlobalAcc[len(h.GlobalAcc)-1]
}

// BestAcc returns the highest recorded global accuracy.
func (h *History) BestAcc() float64 {
	best := 0.0
	for _, a := range h.GlobalAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// TimeToAccuracy returns the first time step at which the global
// accuracy reached target, and whether it ever did. This is the paper's
// convergence-speed metric (§6.1.2).
func (h *History) TimeToAccuracy(target float64) (step int, ok bool) {
	for i, a := range h.GlobalAcc {
		if a >= target {
			return h.Steps[i], true
		}
	}
	return 0, false
}

// WriteCSV emits the history as CSV: step, global accuracy, any
// per-class and per-edge columns present in the first event, then the
// cumulative communication counters, straggler count and per-phase
// wall-clock columns.
func (h *History) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"step", "global_acc"}
	nClass, nEdge := 0, 0
	if len(h.PerClassAcc) > 0 && h.PerClassAcc[0] != nil {
		nClass = len(h.PerClassAcc[0])
		for c := 0; c < nClass; c++ {
			header = append(header, fmt.Sprintf("class%d_acc", c))
		}
	}
	if len(h.EdgeAcc) > 0 && h.EdgeAcc[0] != nil {
		nEdge = len(h.EdgeAcc[0])
		for e := 0; e < nEdge; e++ {
			header = append(header, fmt.Sprintf("edge%d_acc", e))
		}
	}
	header = append(header,
		"comm_device_edge", "comm_edge_cloud", "stragglers",
		"phase_select_s", "phase_train_s", "phase_edge_agg_s",
		"phase_cloud_sync_s", "phase_eval_s",
		"sel_util_mean", "upd_norm_mean", "blend_util_mean",
		"edge_div_mean", "edge_div_max", "fairness_jain", "reject_rate")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range h.Steps {
		row := []string{strconv.Itoa(h.Steps[i]), formatF(h.GlobalAcc[i])}
		for c := 0; c < nClass; c++ {
			row = append(row, formatF(h.PerClassAcc[i][c]))
		}
		for e := 0; e < nEdge; e++ {
			row = append(row, formatF(h.EdgeAcc[i][e]))
		}
		row = append(row,
			strconv.FormatInt(h.CommDeviceEdge[i], 10),
			strconv.FormatInt(h.CommEdgeCloud[i], 10),
			strconv.Itoa(h.intAt(h.Stragglers, i)),
			formatF(h.floatAt(h.PhaseSelect, i)),
			formatF(h.floatAt(h.PhaseTrain, i)),
			formatF(h.floatAt(h.PhaseEdgeAgg, i)),
			formatF(h.floatAt(h.PhaseCloudSync, i)),
			formatF(h.floatAt(h.PhaseEval, i)),
			formatF(h.floatAt(h.SelUtilMean, i)),
			formatF(h.floatAt(h.UpdNormMean, i)),
			formatF(h.floatAt(h.BlendUtilMean, i)),
			formatF(h.floatAt(h.EdgeDivMean, i)),
			formatF(h.floatAt(h.EdgeDivMax, i)),
			formatF(h.floatAt(h.FairnessJain, i)),
			formatF(h.floatAt(h.RejectRate, i)))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// intAt/floatAt tolerate histories built before the straggler/phase
// columns existed (hand-assembled in tests or decoded from old JSON).
func (h *History) intAt(s []int, i int) int {
	if i < len(s) {
		return s[i]
	}
	return 0
}

func (h *History) floatAt(s []float64, i int) float64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 5, 64) }

// ReadHistoryCSV parses a CSV written by WriteCSV back into a History.
// The strategy name and empirical mobility are not part of the CSV and
// stay zero. Column order must match WriteCSV's.
func ReadHistoryCSV(r io.Reader) (*History, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("hfl: reading history CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("hfl: history CSV has no header")
	}
	header := rows[0]
	col := make(map[string]int, len(header))
	nClass, nEdge := 0, 0
	for i, name := range header {
		col[name] = i
		if strings.HasPrefix(name, "class") && strings.HasSuffix(name, "_acc") {
			nClass++
		}
		if strings.HasPrefix(name, "edge") && strings.HasSuffix(name, "_acc") {
			nEdge++
		}
	}
	for _, need := range []string{"step", "global_acc"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("hfl: history CSV missing %q column", need)
		}
	}
	getF := func(row []string, name string) (float64, error) {
		i, ok := col[name]
		if !ok {
			return 0, nil
		}
		return strconv.ParseFloat(row[i], 64)
	}
	h := &History{}
	for line, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("hfl: history CSV row %d has %d fields, want %d", line+2, len(row), len(header))
		}
		var p EvalPoint
		if p.Step, err = strconv.Atoi(row[col["step"]]); err != nil {
			return nil, fmt.Errorf("hfl: history CSV row %d: %w", line+2, err)
		}
		fields := []struct {
			name string
			dst  *float64
		}{
			{"global_acc", &p.GlobalAcc},
			{"phase_select_s", &p.Phases.Select},
			{"phase_train_s", &p.Phases.Train},
			{"phase_edge_agg_s", &p.Phases.EdgeAgg},
			{"phase_cloud_sync_s", &p.Phases.CloudSync},
			{"phase_eval_s", &p.Phases.Eval},
			{"sel_util_mean", &p.SelUtilMean},
			{"upd_norm_mean", &p.UpdNormMean},
			{"blend_util_mean", &p.BlendUtilMean},
			{"edge_div_mean", &p.EdgeDivMean},
			{"edge_div_max", &p.EdgeDivMax},
			{"fairness_jain", &p.FairnessJain},
			{"reject_rate", &p.RejectRate},
		}
		for _, f := range fields {
			if *f.dst, err = getF(row, f.name); err != nil {
				return nil, fmt.Errorf("hfl: history CSV row %d %s: %w", line+2, f.name, err)
			}
		}
		for _, f := range []struct {
			name string
			dst  *int64
		}{
			{"comm_device_edge", &p.CommDeviceEdge},
			{"comm_edge_cloud", &p.CommEdgeCloud},
		} {
			if i, ok := col[f.name]; ok {
				if *f.dst, err = strconv.ParseInt(row[i], 10, 64); err != nil {
					return nil, fmt.Errorf("hfl: history CSV row %d %s: %w", line+2, f.name, err)
				}
			}
		}
		if i, ok := col["stragglers"]; ok {
			if p.Stragglers, err = strconv.Atoi(row[i]); err != nil {
				return nil, fmt.Errorf("hfl: history CSV row %d stragglers: %w", line+2, err)
			}
		}
		if nClass > 0 {
			p.PerClassAcc = make([]float64, nClass)
			for c := 0; c < nClass; c++ {
				if p.PerClassAcc[c], err = getF(row, fmt.Sprintf("class%d_acc", c)); err != nil {
					return nil, fmt.Errorf("hfl: history CSV row %d class %d: %w", line+2, c, err)
				}
			}
		}
		if nEdge > 0 {
			p.EdgeAcc = make([]float64, nEdge)
			for e := 0; e < nEdge; e++ {
				if p.EdgeAcc[e], err = getF(row, fmt.Sprintf("edge%d_acc", e)); err != nil {
					return nil, fmt.Errorf("hfl: history CSV row %d edge %d: %w", line+2, e, err)
				}
			}
		}
		h.AppendPoint(p)
	}
	return h, nil
}
