package hfl

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// History records the evaluation series of one simulation run. Slices
// are indexed by evaluation event, not by time step; Steps holds the
// time step of each event.
type History struct {
	Strategy          string
	EmpiricalMobility float64

	Steps       []int
	GlobalAcc   []float64
	PerClassAcc [][]float64 // nil entries when per-class eval is off
	EdgeAcc     [][]float64 // nil entries when edge eval is off
	// CommDeviceEdge/CommEdgeCloud are cumulative model-transfer counts
	// on each link class at each evaluation event.
	CommDeviceEdge []int64
	CommEdgeCloud  []int64
}

// Append records one evaluation event.
func (h *History) Append(step int, acc float64, perClass, edgeAcc []float64) {
	h.AppendComm(step, acc, perClass, edgeAcc, 0, 0)
}

// AppendComm records one evaluation event with communication counters.
func (h *History) AppendComm(step int, acc float64, perClass, edgeAcc []float64, commDE, commEC int64) {
	h.Steps = append(h.Steps, step)
	h.GlobalAcc = append(h.GlobalAcc, acc)
	h.PerClassAcc = append(h.PerClassAcc, perClass)
	h.EdgeAcc = append(h.EdgeAcc, edgeAcc)
	h.CommDeviceEdge = append(h.CommDeviceEdge, commDE)
	h.CommEdgeCloud = append(h.CommEdgeCloud, commEC)
}

// CommToAccuracy returns the cumulative model transfers (device–edge,
// edge–cloud) at the first evaluation reaching the target accuracy.
func (h *History) CommToAccuracy(target float64) (deviceEdge, edgeCloud int64, ok bool) {
	for i, a := range h.GlobalAcc {
		if a >= target {
			return h.CommDeviceEdge[i], h.CommEdgeCloud[i], true
		}
	}
	return 0, 0, false
}

// Len returns the number of recorded evaluation events.
func (h *History) Len() int { return len(h.Steps) }

// FinalAcc returns the last recorded global accuracy (0 if none).
func (h *History) FinalAcc() float64 {
	if len(h.GlobalAcc) == 0 {
		return 0
	}
	return h.GlobalAcc[len(h.GlobalAcc)-1]
}

// BestAcc returns the highest recorded global accuracy.
func (h *History) BestAcc() float64 {
	best := 0.0
	for _, a := range h.GlobalAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// TimeToAccuracy returns the first time step at which the global
// accuracy reached target, and whether it ever did. This is the paper's
// convergence-speed metric (§6.1.2).
func (h *History) TimeToAccuracy(target float64) (step int, ok bool) {
	for i, a := range h.GlobalAcc {
		if a >= target {
			return h.Steps[i], true
		}
	}
	return 0, false
}

// WriteCSV emits the history as CSV: step, global accuracy, then any
// per-class and per-edge columns present in the first event.
func (h *History) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"step", "global_acc"}
	nClass, nEdge := 0, 0
	if len(h.PerClassAcc) > 0 && h.PerClassAcc[0] != nil {
		nClass = len(h.PerClassAcc[0])
		for c := 0; c < nClass; c++ {
			header = append(header, fmt.Sprintf("class%d_acc", c))
		}
	}
	if len(h.EdgeAcc) > 0 && h.EdgeAcc[0] != nil {
		nEdge = len(h.EdgeAcc[0])
		for e := 0; e < nEdge; e++ {
			header = append(header, fmt.Sprintf("edge%d_acc", e))
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range h.Steps {
		row := []string{strconv.Itoa(h.Steps[i]), formatF(h.GlobalAcc[i])}
		for c := 0; c < nClass; c++ {
			row = append(row, formatF(h.PerClassAcc[i][c]))
		}
		for e := 0; e < nEdge; e++ {
			row = append(row, formatF(h.EdgeAcc[i][e]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 5, 64) }
