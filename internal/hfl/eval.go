package hfl

import (
	"middle/internal/nn"
)

// EvaluateVector measures the accuracy of a model vector on the test set
// (capped at maxSamples; 0 = all). It also returns per-class accuracy
// when perClass is true. The test set is generated round-robin by class,
// so a prefix subset stays class-balanced.
func (s *Sim) EvaluateVector(vec []float64, maxSamples int, perClass bool) (acc float64, classAcc []float64) {
	n := s.test.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	s.evalNet.SetParamVector(vec)
	batch := 64
	correct := 0
	var perCorrect, perTotal []int
	if perClass {
		perCorrect = make([]int, s.test.Classes)
		perTotal = make([]int, s.test.Classes)
	}
	idx := make([]int, 0, batch)
	flush := func() {
		if len(idx) == 0 {
			return
		}
		x, y := s.test.Batch(idx)
		logits := s.evalNet.Forward(x, false)
		pred := logits.ArgMaxRows()
		for i, p := range pred {
			if perClass {
				perTotal[y[i]]++
			}
			if p == y[i] {
				correct++
				if perClass {
					perCorrect[y[i]]++
				}
			}
		}
		idx = idx[:0]
	}
	for i := 0; i < n; i++ {
		idx = append(idx, i)
		if len(idx) == batch {
			flush()
		}
	}
	flush()
	acc = float64(correct) / float64(n)
	if perClass {
		classAcc = make([]float64, s.test.Classes)
		for c := range classAcc {
			if perTotal[c] > 0 {
				classAcc[c] = float64(perCorrect[c]) / float64(perTotal[c])
			}
		}
	}
	return acc, classAcc
}

// EvaluateVectorOnClasses measures accuracy restricted to a class subset
// (used by the Figure 1 motivation experiment's major/minor split).
func (s *Sim) EvaluateVectorOnClasses(vec []float64, classes []int, maxSamples int) float64 {
	want := make(map[int]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	n := s.test.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	s.evalNet.SetParamVector(vec)
	correct, total := 0, 0
	var idx []int
	for i := 0; i < n; i++ {
		if want[s.test.Label(i)] {
			idx = append(idx, i)
		}
	}
	for lo := 0; lo < len(idx); lo += 64 {
		hi := lo + 64
		if hi > len(idx) {
			hi = len(idx)
		}
		x, y := s.test.Batch(idx[lo:hi])
		pred := s.evalNet.Forward(x, false).ArgMaxRows()
		for i, p := range pred {
			total++
			if p == y[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// GlobalLoss computes the weighted global objective F(w) of Eq. 4 for a
// model vector over all device shards (capped per device to keep it
// affordable; 0 = all samples). Used by convergence diagnostics.
func (s *Sim) GlobalLoss(vec []float64, maxPerDevice int) float64 {
	s.evalNet.SetParamVector(vec)
	totalLoss, totalWeight := 0.0, 0.0
	for m := 0; m < s.numDevices; m++ {
		shard := s.part.Indices[m]
		n := len(shard)
		if maxPerDevice > 0 && maxPerDevice < n {
			n = maxPerDevice
		}
		if n == 0 {
			continue
		}
		x, y := s.part.Dataset.Batch(shard[:n])
		logits := s.evalNet.Forward(x, false)
		loss, _ := nn.SoftmaxCrossEntropy(logits, y)
		w := float64(len(shard))
		totalLoss += w * loss
		totalWeight += w
	}
	if totalWeight == 0 {
		return 0
	}
	return totalLoss / totalWeight
}

// recordEval snapshots metrics for the current step into the history.
func (s *Sim) recordEval(t int) {
	perClass := s.cfg.EvalPerClass
	acc, classAcc := s.EvaluateVector(s.cloud, s.cfg.EvalSamples, perClass)
	var edgeAcc []float64
	if s.cfg.EvalEdges {
		edgeAcc = make([]float64, s.numEdges)
		for n := range s.edges {
			edgeAcc[n], _ = s.EvaluateVector(s.edges[n], s.cfg.EvalSamples, false)
		}
	}
	divs, divMean, divMax := s.tel.evalDivergence(s.cloud, s.edges)
	fair := s.tel.fairnessJain()
	s.metrics.globalAcc.Set(acc)
	s.history.AppendPoint(EvalPoint{
		Step: t, GlobalAcc: acc, PerClassAcc: classAcc, EdgeAcc: edgeAcc,
		CommDeviceEdge: s.commDeviceEdge, CommEdgeCloud: s.commEdgeCloud,
		Stragglers: s.stragglers, Phases: s.phases,
		SelUtilMean: s.tel.selUtilMean(), UpdNormMean: s.tel.updNormMean(),
		BlendUtilMean: s.tel.blendUtilMean(),
		EdgeDivMean:   divMean, EdgeDivMax: divMax, FairnessJain: fair,
		RejectRate: s.RejectionRate(),
	})
	if em := s.cfg.Events; em != nil {
		em.Emit("eval",
			"step", t,
			"global_acc", acc,
			"edge_divergence", append([]float64(nil), divs...),
			"fairness_jain", fair,
			"mobility_flow", s.tel.flowMatrix())
	}
}
