package hfl

import (
	"middle/internal/simil"
	"middle/internal/tensor"
)

// View is the read-only window a Strategy gets into the simulation state.
// It exposes exactly the information the paper's policies need: model
// vectors (never raw device data — the privacy constraint of §4.3),
// participation history and data sizes.
type View interface {
	// Step returns the current time step (0-based).
	Step() int
	// CloudModel returns the current global model vector w_c.
	CloudModel() []float64
	// EdgeModel returns edge n's current model vector w_n.
	EdgeModel(edge int) []float64
	// LocalModel returns device m's carried local model vector w_m
	// (possibly stale — the device may not have trained recently).
	LocalModel(device int) []float64
	// DataSize returns d_m, the number of samples on device m.
	DataSize(device int) int
	// StatUtility returns the Oort-style statistical utility from the
	// device's most recent training round, or NaN if it never trained
	// since the last reset.
	StatUtility(device int) float64
	// LastTrained returns the time step at which the device last
	// performed local training, or -1.
	LastTrained(device int) int
}

// NormCapView is optionally implemented by views whose configuration
// bounds the Eq. 12 selection score (Config.SelectionNormCap). When the
// cap is positive, norm-aware strategies assign devices with
// ‖w_m − w_c‖ above it the CappedScore, ranking them strictly below
// every in-bound device. This closes the selector's attacker affinity:
// Eq. 12 prefers the most divergent updates, which is exactly what
// Byzantine devices produce.
type NormCapView interface {
	// SelectionNormCap returns the ‖Δw_m‖ bound, or 0 for no cap.
	SelectionNormCap() float64
}

// CappedScore is the Eq. 12 score assigned to devices over the
// selection norm cap — strictly below the honest score range [−1, 0].
const CappedScore = -2

// ResidentView is optionally implemented by views backed by a lazy
// device store (Config.LazyStore). DriftInfo short-circuits the Eq. 12
// reduction for devices whose accumulated update is knowable without an
// O(dim) sweep: a device that has not trained since the last cloud sync
// carries exactly the cloud model, so its utility and ‖Δw_m‖ are
// exactly 0 — the same bits simil.SelectionUtilityNorm returns on the
// full vectors — and an evicted device answers from its compact drift
// record. known=false means the caller must compute from the vectors.
type ResidentView interface {
	DriftInfo(device int) (utility, deltaNorm float64, known bool)
}

// SelectionInfo returns the Eq. 12 similarity utility U(w_c, Δw_m) and
// update norm ‖Δw_m‖ for one device, using the view's ResidentView fast
// path when it has one and the fused full-vector reduction otherwise.
// Selection strategies score thousands of candidates per step at
// population scale; this is what keeps that sweep cohort-bounded.
func SelectionInfo(v View, device int) (utility, deltaNorm float64) {
	if rv, ok := v.(ResidentView); ok {
		if u, dn, known := rv.DriftInfo(device); known {
			return u, dn
		}
	}
	return simil.SelectionUtilityNorm(v.CloudModel(), v.LocalModel(device))
}

// Strategy is the policy slot of Algorithm 1: which devices each edge
// selects (line 2) and what starting model a selected device uses for
// local training (lines 4–7).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Select returns at most k device ids from candidates (the devices
	// currently inside the edge) to participate in this time step. rng
	// is a per-(step, edge) deterministic stream for tie-breaking or
	// random selection.
	Select(v View, edge int, candidates []int, k int, rng *tensor.RNG) []int
	// InitLocal returns the model vector the device starts local
	// training from this step. moved reports whether the device entered
	// this edge since the previous time step (m ∉ M^{t−1}_n). The
	// returned slice must be freshly allocated or otherwise safe for
	// the engine to hand to a training worker.
	InitLocal(v View, device, edge int, moved bool) []float64
}

// TopKByScore returns the (at most k) candidate ids with the highest
// scores, breaking ties by the shuffled order. It is the TOPK(·) of
// paper Eq. 12 and is shared by several strategies.
func TopKByScore(candidates []int, score func(device int) float64, k int, rng *tensor.RNG) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	idx := append([]int(nil), candidates...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	scores := make(map[int]float64, len(idx))
	for _, m := range idx {
		scores[m] = score(m)
	}
	// Stable selection sort of the shuffled order: O(n·k) with k small.
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
