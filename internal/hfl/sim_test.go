package hfl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"middle/internal/data"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/tensor"
)

// fixture assembles a small but real federated setup: 4-class synthetic
// images, 8 devices with major-class Non-IID shards, 2 edges, Markov
// mobility.
type fixture struct {
	part *data.Partition
	test *data.Dataset
	mob  mobility.Model
}

func newFixture(t *testing.T, p float64) fixture {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	test := data.GenerateImagesSplit(prof, 120, 5, 77)
	part := data.PartitionMajorClass(train, 8, 40, 0.85, 6)
	mob := mobility.NewMarkov(2, 8, p, 7)
	return fixture{part: part, test: test, mob: mob}
}

func mlpFactory(classes, in int) ModelFactory {
	return func(rng *tensor.RNG) *nn.Network {
		return nn.NewMLP(nn.MLPConfig{In: in, Classes: classes, Hidden: []int{16}}, rng)
	}
}

// flattenFactory adapts image datasets to the MLP by flattening; the MLP
// input is the full sample size.
func (f fixture) factory() ModelFactory {
	return func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(f.test.SampleSize(), 24, rng),
			nn.NewReLU(),
			nn.NewLinear(24, f.test.Classes, rng),
		)
	}
}

func smallConfig() Config {
	return Config{
		Seed: 1, K: 2, LocalSteps: 3, CloudInterval: 5, BatchSize: 8,
		Steps: 10, EvalEvery: 5, Parallelism: 2,
		Optimizer: OptimizerSpec{Kind: OptSGDMomentum, LR: 0.05, Momentum: 0.9},
	}
}

// spyStrategy wraps General-style behaviour while recording calls.
type spyStrategy struct {
	movedSeen   []bool
	selectCalls int
	maxSelected int
}

func (s *spyStrategy) Name() string { return "spy" }

func (s *spyStrategy) Select(v View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	s.selectCalls++
	if k > len(candidates) {
		k = len(candidates)
	}
	if k > s.maxSelected {
		s.maxSelected = k
	}
	return candidates[:k]
}

func (s *spyStrategy) InitLocal(v View, device, edge int, moved bool) []float64 {
	s.movedSeen = append(s.movedSeen, moved)
	return append([]float64(nil), v.EdgeModel(edge)...)
}

func TestSimDeterministicAcrossRuns(t *testing.T) {
	f1 := newFixture(t, 0.5)
	f2 := newFixture(t, 0.5)
	s1 := New(smallConfig(), f1.factory(), f1.part, f1.test, f1.mob, &spyStrategy{})
	s2 := New(smallConfig(), f2.factory(), f2.part, f2.test, f2.mob, &spyStrategy{})
	h1 := s1.Run()
	h2 := s2.Run()
	if len(h1.GlobalAcc) != len(h2.GlobalAcc) {
		t.Fatalf("eval counts differ: %d vs %d", len(h1.GlobalAcc), len(h2.GlobalAcc))
	}
	for i := range h1.GlobalAcc {
		if h1.GlobalAcc[i] != h2.GlobalAcc[i] {
			t.Fatalf("accuracy differs at eval %d: %v vs %v", i, h1.GlobalAcc[i], h2.GlobalAcc[i])
		}
	}
	for i := range s1.cloud {
		if s1.cloud[i] != s2.cloud[i] {
			t.Fatal("cloud models differ between identical runs")
		}
	}
}

func TestSimDeterministicAcrossParallelism(t *testing.T) {
	runWith := func(par int) []float64 {
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		cfg.Parallelism = par
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s.cloud
	}
	a := runWith(1)
	b := runWith(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cloud differs between parallelism 1 and 4 at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCloudSyncResetsEdgesAndLocals(t *testing.T) {
	f := newFixture(t, 0.5)
	cfg := smallConfig()
	cfg.Steps = cfg.CloudInterval // exactly one sync
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	s.Run()
	for n := 0; n < s.NumEdges(); n++ {
		for i := range s.cloud {
			if s.edges[n][i] != s.cloud[i] {
				t.Fatalf("edge %d not synced to cloud after T_c", n)
			}
		}
	}
	for m := 0; m < s.NumDevices(); m++ {
		for i := range s.cloud {
			if s.LocalModel(m)[i] != s.cloud[i] {
				t.Fatalf("device %d not synced to cloud after T_c", m)
			}
		}
	}
}

func TestCloudModelChangesAtSync(t *testing.T) {
	f := newFixture(t, 0.5)
	cfg := smallConfig()
	cfg.Steps = cfg.CloudInterval
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	before := append([]float64(nil), s.cloud...)
	// Before the sync step the cloud must stay fixed.
	for i := 0; i < cfg.CloudInterval-1; i++ {
		s.StepOnce()
		for j := range before {
			if s.cloud[j] != before[j] {
				t.Fatalf("cloud changed at step %d before T_c", s.Step())
			}
		}
	}
	s.StepOnce()
	changed := false
	for j := range before {
		if s.cloud[j] != before[j] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("cloud did not change at the T_c sync step")
	}
}

func TestStaticMobilityNeverReportsMoved(t *testing.T) {
	f := newFixture(t, 0)
	f.mob = mobility.NewStatic(2, 8)
	spy := &spyStrategy{}
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, spy)
	s.Run()
	for _, m := range spy.movedSeen {
		if m {
			t.Fatal("static mobility produced moved=true")
		}
	}
	if s.ObservedMobility() != 0 {
		t.Fatalf("observed mobility %v under static model", s.ObservedMobility())
	}
}

func TestFullMobilityReportsMoves(t *testing.T) {
	f := newFixture(t, 1.0)
	spy := &spyStrategy{}
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, spy)
	s.Run()
	if got := s.ObservedMobility(); got != 1.0 {
		t.Fatalf("observed mobility %v with P=1", got)
	}
	anyMoved := false
	for _, m := range spy.movedSeen {
		if m {
			anyMoved = true
		}
	}
	if !anyMoved {
		t.Fatal("no InitLocal saw moved=true with P=1")
	}
}

func TestSelectionRespectsK(t *testing.T) {
	f := newFixture(t, 0.5)
	spy := &spyStrategy{}
	cfg := smallConfig()
	cfg.K = 3
	s := New(cfg, f.factory(), f.part, f.test, f.mob, spy)
	s.Run()
	if spy.maxSelected > 3 {
		t.Fatalf("selected %d devices with K=3", spy.maxSelected)
	}
	if spy.selectCalls == 0 {
		t.Fatal("Select was never called")
	}
}

func TestStatUtilityAndLastTrainedUpdate(t *testing.T) {
	f := newFixture(t, 0.5)
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	for m := 0; m < s.NumDevices(); m++ {
		if !math.IsNaN(s.StatUtility(m)) || s.LastTrained(m) != -1 {
			t.Fatalf("device %d has training history before any step", m)
		}
	}
	s.StepOnce()
	trained := 0
	for m := 0; m < s.NumDevices(); m++ {
		if s.LastTrained(m) == 1 {
			trained++
			if math.IsNaN(s.StatUtility(m)) || s.StatUtility(m) <= 0 {
				t.Fatalf("trained device %d has utility %v", m, s.StatUtility(m))
			}
		}
	}
	if trained == 0 || trained > s.NumEdges()*smallConfig().K {
		t.Fatalf("trained device count %d implausible", trained)
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 600, 9, 9)
	test := data.GenerateImagesSplit(prof, 200, 9, 91)
	part := data.PartitionIID(train, 8, 60, 3)
	mob := mobility.NewMarkov(2, 8, 0.3, 4)
	cfg := Config{
		Seed: 2, K: 3, LocalSteps: 5, CloudInterval: 5, BatchSize: 16,
		Steps: 30, EvalEvery: 30,
		Optimizer: OptimizerSpec{Kind: OptSGDMomentum, LR: 0.05, Momentum: 0.9},
	}
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(test.SampleSize(), 24, rng),
			nn.NewReLU(),
			nn.NewLinear(24, test.Classes, rng),
		)
	}
	s := New(cfg, factory, part, test, mob, &spyStrategy{})
	acc0, _ := s.EvaluateVector(s.CloudModel(), 0, false)
	h := s.Run()
	if h.FinalAcc() <= acc0+0.2 {
		t.Fatalf("federated training barely improved: %v -> %v", acc0, h.FinalAcc())
	}
}

func TestGlobalLossDecreases(t *testing.T) {
	f := newFixture(t, 0.3)
	cfg := smallConfig()
	cfg.Steps = 15
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	before := s.GlobalLoss(s.CloudModel(), 10)
	s.Run()
	after := s.GlobalLoss(s.CloudModel(), 10)
	if after >= before {
		t.Fatalf("global loss did not decrease: %v -> %v", before, after)
	}
}

func TestEvaluateVectorOnClasses(t *testing.T) {
	f := newFixture(t, 0.3)
	s := New(smallConfig(), f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	all, perClass := s.EvaluateVector(s.CloudModel(), 0, true)
	sub := s.EvaluateVectorOnClasses(s.CloudModel(), []int{0, 1}, 0)
	if sub < 0 || sub > 1 || all < 0 || all > 1 {
		t.Fatalf("accuracies out of range: %v %v", all, sub)
	}
	if len(perClass) != 4 {
		t.Fatalf("per-class length %d", len(perClass))
	}
	// Subset accuracy must be consistent with its per-class components
	// (test set is balanced, so it is their mean).
	want := (perClass[0] + perClass[1]) / 2
	if math.Abs(sub-want) > 1e-9 {
		t.Fatalf("class-subset accuracy %v, want %v", sub, want)
	}
}

func TestHistoryRecordingAndCSV(t *testing.T) {
	f := newFixture(t, 0.5)
	cfg := smallConfig()
	cfg.EvalEvery = 5
	cfg.EvalEdges = true
	cfg.EvalPerClass = true
	s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	h := s.Run()
	if h.Len() != 2 { // steps 5 and 10
		t.Fatalf("eval events %d, want 2 (steps %v)", h.Len(), h.Steps)
	}
	if h.Steps[0] != 5 || h.Steps[1] != 10 {
		t.Fatalf("eval steps %v", h.Steps)
	}
	if len(h.PerClassAcc[0]) != 4 || len(h.EdgeAcc[0]) != 2 {
		t.Fatalf("per-class/edge dims %d/%d", len(h.PerClassAcc[0]), len(h.EdgeAcc[0]))
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,global_acc,class0_acc") {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestTimeToAccuracy(t *testing.T) {
	h := &History{}
	h.Append(5, 0.2, nil, nil)
	h.Append(10, 0.6, nil, nil)
	h.Append(15, 0.5, nil, nil)
	if step, ok := h.TimeToAccuracy(0.55); !ok || step != 10 {
		t.Fatalf("TimeToAccuracy = %d, %v", step, ok)
	}
	if _, ok := h.TimeToAccuracy(0.9); ok {
		t.Fatal("TimeToAccuracy reported unreached target")
	}
	if h.BestAcc() != 0.6 || h.FinalAcc() != 0.5 {
		t.Fatalf("Best/Final = %v/%v", h.BestAcc(), h.FinalAcc())
	}
}

func TestTopKByScore(t *testing.T) {
	rng := tensor.NewRNG(1)
	cands := []int{10, 20, 30, 40}
	scores := map[int]float64{10: 0.1, 20: 0.9, 30: 0.5, 40: 0.7}
	got := TopKByScore(cands, func(m int) float64 { return scores[m] }, 2, rng)
	if len(got) != 2 {
		t.Fatalf("TopK returned %v", got)
	}
	set := map[int]bool{got[0]: true, got[1]: true}
	if !set[20] || !set[40] {
		t.Fatalf("TopK = %v, want {20, 40}", got)
	}
	// k larger than candidates.
	if got := TopKByScore(cands, func(int) float64 { return 0 }, 10, rng); len(got) != 4 {
		t.Fatalf("overlong TopK = %v", got)
	}
	if got := TopKByScore(nil, func(int) float64 { return 0 }, 3, rng); got != nil {
		t.Fatalf("empty TopK = %v", got)
	}
}

func TestMismatchedDeviceCountsPanic(t *testing.T) {
	f := newFixture(t, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(smallConfig(), f.factory(), f.part, f.test, mobility.NewMarkov(2, 9, 0.5, 1), &spyStrategy{})
}

func TestOptimizerSpecUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OptimizerSpec{Kind: "nope", LR: 0.1}.New()
}

func TestMLPFactoryHelper(t *testing.T) {
	// Exercise the shared helper to keep it honest.
	net := mlpFactory(3, 7)(tensor.NewRNG(1))
	if net.NumParams() == 0 {
		t.Fatal("mlpFactory built an empty network")
	}
}
