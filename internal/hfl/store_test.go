package hfl

import (
	"math"
	"testing"

	"middle/internal/simil"
	"middle/internal/tensor"
)

// middleLike is a MIDDLE-shaped strategy local to this package (hfl
// cannot import internal/core): Eq. 12 similarity selection through the
// SelectionInfo fast path and Eq. 9 on-device aggregation for movers.
// It exercises every store read the engine offers — selection scoring,
// mover blending, edge-model initialisation — which is what makes the
// lazy-vs-dense comparison below a complete behavioural pin.
type middleLike struct{}

func (middleLike) Name() string { return "middle-like" }

func (middleLike) Select(v View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return TopKByScore(candidates, func(m int) float64 {
		u, _ := SelectionInfo(v, m)
		return -u
	}, k, rng)
}

func (middleLike) InitLocal(v View, device, edge int, moved bool) []float64 {
	edgeModel := v.EdgeModel(edge)
	if !moved {
		return append([]float64(nil), edgeModel...)
	}
	agg, _ := simil.OnDeviceAggregate(edgeModel, v.LocalModel(device))
	return agg
}

// TestLazyStoreBitIdenticalToDense is the tentpole gate: a lazy-store
// run (no eviction cap) must be bitwise indistinguishable from the
// dense engine — same carried model for every device at every step,
// same cloud model, same history — under mobility and Eq. 9 blending.
func TestLazyStoreBitIdenticalToDense(t *testing.T) {
	mkSim := func(lazy bool) *Sim {
		f := newFixture(t, 0.5)
		cfg := smallConfig()
		cfg.Steps = 12 // crosses two cloud syncs plus a partial interval
		cfg.LazyStore = lazy
		return New(cfg, f.factory(), f.part, f.test, f.mob, middleLike{})
	}
	dense, lazy := mkSim(false), mkSim(true)

	for step := 0; step < 12; step++ {
		dense.StepOnce()
		lazy.StepOnce()
		if step == 0 {
			// Memory is cohort-scale, not population-scale: after one
			// step only the selected devices are materialized.
			if got, cohort := lazy.ResidentModels(), lazy.cfg.K*lazy.numEdges; got > cohort {
				t.Fatalf("step 1: %d resident models, want at most one cohort (%d)", got, cohort)
			}
		}
		for i := range dense.cloud {
			if math.Float64bits(dense.cloud[i]) != math.Float64bits(lazy.cloud[i]) {
				t.Fatalf("step %d: cloud models diverge at coordinate %d", step+1, i)
			}
		}
		for m := 0; m < dense.NumDevices(); m++ {
			dm, lm := dense.LocalModel(m), lazy.LocalModel(m)
			for i := range dm {
				if math.Float64bits(dm[i]) != math.Float64bits(lm[i]) {
					t.Fatalf("step %d: device %d carried models diverge at coordinate %d (resident=%v)",
						step+1, m, i, lazy.store.resident(m))
				}
			}
		}
	}
	hd, hl := dense.History(), lazy.History()
	if len(hd.GlobalAcc) == 0 || len(hd.GlobalAcc) != len(hl.GlobalAcc) {
		t.Fatalf("histories disagree in length: dense %d vs lazy %d", len(hd.GlobalAcc), len(hl.GlobalAcc))
	}
	for i := range hd.GlobalAcc {
		if hd.GlobalAcc[i] != hl.GlobalAcc[i] {
			t.Fatalf("eval %d: accuracy diverges dense=%v lazy=%v", i, hd.GlobalAcc[i], hl.GlobalAcc[i])
		}
		if hd.SelUtilMean[i] != hl.SelUtilMean[i] || hd.UpdNormMean[i] != hl.UpdNormMean[i] ||
			hd.BlendUtilMean[i] != hl.BlendUtilMean[i] {
			t.Fatalf("eval %d: telemetry columns diverge", i)
		}
	}
	if dense.PeakResidentModels() != dense.NumDevices() {
		t.Fatalf("dense store peak %d, want the full population %d",
			dense.PeakResidentModels(), dense.NumDevices())
	}
}

// TestLazyStoreMoverState pins mover-state correctness across edge
// transitions: a device that trained (is resident) keeps its private
// carried model when it crosses edges, a cloud sync demotes everyone to
// the shared cloud vector, and training re-materializes on selection.
func TestLazyStoreMoverState(t *testing.T) {
	f := newFixture(t, 0.9) // high mobility: movers every step
	cfg := smallConfig()
	cfg.LazyStore = true
	cfg.K = 2
	cfg.Steps = cfg.CloudInterval
	s := New(cfg, f.factory(), f.part, f.test, f.mob, middleLike{})

	trained := make(map[int]bool)
	for step := 1; step < cfg.CloudInterval; step++ { // stop before the sync
		s.StepOnce()
		for i := range s.jobs {
			trained[s.jobs[i].device] = true
		}
		for m := 0; m < s.NumDevices(); m++ {
			if trained[m] != s.store.resident(m) {
				t.Fatalf("step %d: device %d trained=%v but resident=%v",
					step, m, trained[m], s.store.resident(m))
			}
			lm := s.LocalModel(m)
			if trained[m] {
				// A trained device's carried model must survive moves:
				// it differs from the cloud and is not the shared vector.
				if &lm[0] == &s.cloud[0] {
					t.Fatalf("step %d: trained device %d aliases the cloud vector", step, m)
				}
				u, dn, known := s.DriftInfo(m)
				if known {
					t.Fatalf("step %d: resident device %d reported fast-path drift (%v, %v)", step, m, u, dn)
				}
			} else {
				if &lm[0] != &s.cloud[0] {
					t.Fatalf("step %d: untrained device %d does not alias the cloud vector", step, m)
				}
				u, dn, known := s.DriftInfo(m)
				if !known || u != 0 || dn != 0 {
					t.Fatalf("step %d: untrained device %d drift = (%v, %v, %v), want (0, 0, true)",
						step, m, u, dn, known)
				}
			}
		}
	}
	s.StepOnce() // the sync step
	if got := s.ResidentModels(); got != 0 {
		t.Fatalf("after cloud sync %d devices still resident, want 0", got)
	}
	for m := 0; m < s.NumDevices(); m++ {
		if lm := s.LocalModel(m); &lm[0] != &s.cloud[0] {
			t.Fatalf("after cloud sync device %d does not alias the cloud vector", m)
		}
	}
}

// TestResidentCapEviction checks the bounded-memory mode: the resident
// set never ends a step above the cap, evicted devices answer selection
// from their compact drift record, and the run still learns.
func TestResidentCapEviction(t *testing.T) {
	f := newFixture(t, 0.5)
	cfg := smallConfig()
	cfg.ResidentCap = cfg.K * 2 // 2 edges: exactly one cohort
	cfg.Steps = 12
	s := New(cfg, f.factory(), f.part, f.test, f.mob, middleLike{})
	sawEviction := false
	for step := 0; step < cfg.Steps; step++ {
		s.StepOnce()
		if got := s.ResidentModels(); got > cfg.ResidentCap {
			t.Fatalf("step %d: %d resident models exceed cap %d", step+1, got, cfg.ResidentCap)
		}
		if ls := s.store.(*lazyStore); len(ls.evicted) > 0 {
			sawEviction = true
			for m, rec := range ls.evicted {
				u, dn, known := s.DriftInfo(m)
				if !known || u != rec.util || dn != rec.deltaNorm {
					t.Fatalf("evicted device %d drift (%v, %v, %v) does not match its record %+v",
						m, u, dn, known, rec)
				}
			}
		}
	}
	if !sawEviction {
		t.Fatal("cap was never exercised: no device was evicted")
	}
	if acc := s.History().FinalAcc(); !(acc > 0) {
		t.Fatalf("capped run recorded no usable accuracy (got %v)", acc)
	}
}

// TestResidentCapValidation pins the nonsensical-combination rejection:
// a cap that cannot hold one full cohort (K × edges) must be refused.
func TestResidentCapValidation(t *testing.T) {
	f := newFixture(t, 0.5)
	cfg := smallConfig()
	cfg.ResidentCap = cfg.K*2 - 1 // one short of a 2-edge cohort
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted ResidentCap below K×edges")
		}
	}()
	New(cfg, f.factory(), f.part, f.test, f.mob, middleLike{})
}
