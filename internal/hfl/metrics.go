package hfl

import (
	"time"

	"middle/internal/obs"
)

// PhaseTimes holds cumulative wall-clock seconds spent in each phase of
// StepOnce since the simulation started. The breakdown is always
// maintained (a handful of clock reads per ~10ms step) so every run can
// report where its time went, with or without a metrics registry.
type PhaseTimes struct {
	// Select covers mobility advance, membership bookkeeping and device
	// selection (Algorithm 1 lines 1–2).
	Select float64
	// Train covers the parallel local-SGD fan-out (lines 4–8).
	Train float64
	// EdgeAgg covers per-edge weighted aggregation (line 9, Eq. 6).
	EdgeAgg float64
	// CloudSync covers cloud aggregation and the downward broadcast
	// (lines 10–15, Eq. 7).
	CloudSync float64
	// Eval covers periodic global/edge model evaluation.
	Eval float64
}

// simMetrics bundles the simulation's obs instruments. Built from a nil
// registry every instrument is nil and all recording methods no-op, so
// StepOnce updates them unconditionally.
type simMetrics struct {
	steps        *obs.Counter
	selected     *obs.Counter
	stragglers   *obs.Counter
	moves        *obs.Counter
	moveOpp      *obs.Counter
	cloudSyncs   *obs.Counter
	evals        *obs.Counter
	faultDrops   *obs.Counter
	quorumMisses *obs.Counter
	// residentModels tracks how many device model vectors are
	// materialized (hfl_resident_models) — the memory-boundedness
	// signal of the lazy store.
	residentModels *obs.Gauge

	// Robustness layer: validation rejections by reason, aggregator
	// decisions, adversary corruptions and skipped non-finite SGD steps.
	rejNonFinite   *obs.Counter
	rejNorm        *obs.Counter
	trimmedCoords  *obs.Counter
	clippedUpdates *obs.Counter
	advCorruptions *obs.Counter
	nonfiniteSteps *obs.Counter

	// Live-migration mirror: handover outcomes per mobility event
	// (hfl_migrations_total{outcome=ok|fallback}).
	migOK       *obs.Counter
	migFallback *obs.Counter

	// Self-healing mirror: edge crash/recovery schedule outcomes — edges
	// declared dead, devices re-homed off them, and the membership epoch
	// (bumped on every crash and recovery).
	failovers  *obs.Counter
	rehomed    *obs.Counter
	epochGauge *obs.Gauge

	selectSpan    *obs.Span
	trainSpan     *obs.Span
	edgeAggSpan   *obs.Span
	cloudSyncSpan *obs.Span
	evalSpan      *obs.Span

	// roundSpan times whole StepOnce rounds (sim_round_seconds): the
	// tsdb synthesizes sim_round_seconds_p99 from it, which the default
	// SLO latency rule gates on.
	roundSpan *obs.Span
	// globalAcc mirrors the latest global evaluation
	// (hfl_global_accuracy) so dashboards and the accuracy-stall SLO
	// see learning progress as an ordinary series.
	globalAcc *obs.Gauge
}

func newSimMetrics(r *obs.Registry) simMetrics {
	return simMetrics{
		steps:          r.Counter("sim_steps_total"),
		selected:       r.Counter("sim_selected_total"),
		stragglers:     r.Counter("sim_stragglers_total"),
		moves:          r.Counter("sim_moves_total"),
		moveOpp:        r.Counter("sim_move_opportunities_total"),
		cloudSyncs:     r.Counter("sim_cloud_syncs_total"),
		evals:          r.Counter("sim_evals_total"),
		faultDrops:     r.Counter("hfl_fault_drops_total"),
		quorumMisses:   r.Counter("hfl_quorum_misses_total"),
		residentModels: r.Gauge("hfl_resident_models"),

		rejNonFinite:   r.Counter("robust_rejected_updates_total", "reason", "nonfinite"),
		rejNorm:        r.Counter("robust_rejected_updates_total", "reason", "norm"),
		trimmedCoords:  r.Counter("robust_trimmed_coords_total"),
		clippedUpdates: r.Counter("robust_clipped_updates_total"),
		advCorruptions: r.Counter("hfl_adversary_corruptions_total"),
		nonfiniteSteps: r.Counter("hfl_nonfinite_steps_total"),

		migOK:       r.Counter("hfl_migrations_total", "outcome", "ok"),
		migFallback: r.Counter("hfl_migrations_total", "outcome", "fallback"),

		failovers:  r.Counter("hfl_edge_failovers_total"),
		rehomed:    r.Counter("hfl_rehomed_devices_total"),
		epochGauge: r.Gauge("hfl_membership_epoch"),

		selectSpan:    r.Span("sim_phase_seconds", "phase", "selection"),
		trainSpan:     r.Span("sim_phase_seconds", "phase", "local_train"),
		edgeAggSpan:   r.Span("sim_phase_seconds", "phase", "edge_agg"),
		cloudSyncSpan: r.Span("sim_phase_seconds", "phase", "cloud_sync"),
		evalSpan:      r.Span("sim_phase_seconds", "phase", "eval"),

		roundSpan: r.Span("sim_round_seconds"),
		globalAcc: r.Gauge("hfl_global_accuracy"),
	}
}

// phase records one phase occurrence in both the always-on accumulator
// and (when enabled) the obs span, returning the current time so
// consecutive phases chain without extra clock reads.
func phase(acc *float64, span *obs.Span, start time.Time) time.Time {
	now := time.Now()
	d := now.Sub(start)
	*acc += d.Seconds()
	span.Observe(d)
	return now
}
