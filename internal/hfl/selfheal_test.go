package hfl

// Simulator mirror of fednet's self-healing membership: Config.SelfHealing
// adds a seeded edge crash/recovery schedule with automatic device
// re-homing (an Eq. 9 mobility move onto a survivor), while keeping the
// zero-rate path bit-identical to the baseline.

import (
	"math"
	"testing"
)

func selfHealConfig(rate float64, recover int) Config {
	cfg := smallConfig()
	cfg.SelfHealing = true
	cfg.EdgeFailRate = rate
	cfg.EdgeRecoverSteps = recover
	return cfg
}

// TestSelfHealingZeroRateBitIdentical is the acceptance pin: enabling
// SelfHealing with a zero crash rate only adds accounting — the cloud
// model and every recorded accuracy stay bit-for-bit those of a
// disabled run, and no failover is ever counted.
func TestSelfHealingZeroRateBitIdentical(t *testing.T) {
	fBase := newFixture(t, 0.6)
	base := New(smallConfig(), fBase.factory(), fBase.part, fBase.test, fBase.mob, &spyStrategy{})
	hBase := base.Run()

	fSH := newFixture(t, 0.6)
	sh := New(selfHealConfig(0, 0), fSH.factory(), fSH.part, fSH.test, fSH.mob, &spyStrategy{})
	hSH := sh.Run()

	for i := range base.cloud {
		if base.cloud[i] != sh.cloud[i] {
			t.Fatalf("cloud model differs at %d with zero-rate self-healing: %v vs %v",
				i, base.cloud[i], sh.cloud[i])
		}
	}
	if len(hBase.GlobalAcc) != len(hSH.GlobalAcc) {
		t.Fatalf("eval counts differ: %d vs %d", len(hBase.GlobalAcc), len(hSH.GlobalAcc))
	}
	for i := range hBase.GlobalAcc {
		if hBase.GlobalAcc[i] != hSH.GlobalAcc[i] {
			t.Fatalf("accuracy differs at eval %d", i)
		}
	}
	if sh.Failovers() != 0 || sh.RehomedDevices() != 0 || sh.MembershipEpoch() != 0 {
		t.Fatalf("zero-rate self-healing moved counters: failovers=%d rehomed=%d epoch=%d",
			sh.Failovers(), sh.RehomedDevices(), sh.MembershipEpoch())
	}
}

// TestSelfHealingCrashRecovery drives a crashy run end to end: edges
// crash on the seeded schedule, their devices re-home to survivors, the
// crashed edges rejoin after the outage window, and the epoch counts
// both transitions. The model must stay finite throughout.
func TestSelfHealingCrashRecovery(t *testing.T) {
	f := newFixture(t, 0.4)
	cfg := selfHealConfig(0.25, 3)
	cfg.Steps = 12
	sim := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	sim.Run()
	if sim.Failovers() == 0 {
		t.Fatal("no edge crash at rate 0.25 over 12 steps — schedule broken")
	}
	if sim.RehomedDevices() == 0 {
		t.Fatal("edges crashed but no device was re-homed")
	}
	// Every crash and every recovery bumps the epoch, so it must be at
	// least failovers+1 once any crashed edge has had time to rejoin.
	if sim.MembershipEpoch() < sim.Failovers() {
		t.Fatalf("epoch %d below failover count %d", sim.MembershipEpoch(), sim.Failovers())
	}
	for i, v := range sim.cloud {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cloud[%d] = %v after crashy run", i, v)
		}
	}
}

// TestSelfHealingDeterministic pins the seeded crash schedule: two runs
// with the same config produce identical failover counts, epochs and
// cloud models.
func TestSelfHealingDeterministic(t *testing.T) {
	run := func() (*Sim, int, int, int) {
		f := newFixture(t, 0.4)
		cfg := selfHealConfig(0.25, 2)
		cfg.Steps = 12
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s, s.Failovers(), s.RehomedDevices(), s.MembershipEpoch()
	}
	a, aF, aR, aE := run()
	b, bF, bR, bE := run()
	if aF != bF || aR != bR || aE != bE {
		t.Fatalf("self-healing accounting not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			aF, aR, aE, bF, bR, bE)
	}
	if aF == 0 {
		t.Fatal("schedule produced no crashes — determinism check is vacuous")
	}
	for i := range a.cloud {
		if a.cloud[i] != b.cloud[i] {
			t.Fatalf("cloud model differs at %d across identical crashy runs", i)
		}
	}
}

// TestSelfHealingLastSurvivorImmortal pins the liveness guarantee: even
// at crash rate 1.0 the schedule never takes the last surviving edge
// down, so training always has a home for every device and the run
// completes with a finite model.
func TestSelfHealingLastSurvivorImmortal(t *testing.T) {
	f := newFixture(t, 0.4)
	cfg := selfHealConfig(1.0, 4)
	cfg.Steps = 15
	sim := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
	sim.Run()
	if sim.Failovers() == 0 {
		t.Fatal("rate-1.0 schedule never crashed an edge")
	}
	if down := sim.DownEdges(); down >= sim.numEdges {
		t.Fatalf("%d of %d edges down — the last survivor crashed", down, sim.numEdges)
	}
	for i, v := range sim.cloud {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cloud[%d] = %v after rate-1.0 run", i, v)
		}
	}
}
