package hfl

// Simulator mirror of fednet's live migration: Config.LiveMigration adds
// handover accounting (and, with MigrationFailRate, seeded failures that
// degrade to drop-and-reconnect), while keeping the disabled and
// zero-fail paths bit-identical to the baseline.

import "testing"

func migrationConfig(fail float64) Config {
	cfg := smallConfig()
	cfg.LiveMigration = true
	cfg.MigrationFailRate = fail
	return cfg
}

// TestLiveMigrationZeroFailBitIdentical is the acceptance pin: enabling
// LiveMigration with no failures only adds accounting — the cloud model
// and every recorded accuracy stay bit-for-bit those of a disabled run.
func TestLiveMigrationZeroFailBitIdentical(t *testing.T) {
	fBase := newFixture(t, 0.6)
	base := New(smallConfig(), fBase.factory(), fBase.part, fBase.test, fBase.mob, &spyStrategy{})
	hBase := base.Run()

	fMig := newFixture(t, 0.6)
	mig := New(migrationConfig(0), fMig.factory(), fMig.part, fMig.test, fMig.mob, &spyStrategy{})
	hMig := mig.Run()

	for i := range base.cloud {
		if base.cloud[i] != mig.cloud[i] {
			t.Fatalf("cloud model differs at %d with zero-fail migration: %v vs %v",
				i, base.cloud[i], mig.cloud[i])
		}
	}
	if len(hBase.GlobalAcc) != len(hMig.GlobalAcc) {
		t.Fatalf("eval counts differ: %d vs %d", len(hBase.GlobalAcc), len(hMig.GlobalAcc))
	}
	for i := range hBase.GlobalAcc {
		if hBase.GlobalAcc[i] != hMig.GlobalAcc[i] {
			t.Fatalf("accuracy differs at eval %d", i)
		}
	}
	ok, fb := mig.Migrations()
	if ok == 0 {
		t.Fatal("no migrations counted despite p=0.6 mobility")
	}
	if fb != 0 {
		t.Fatalf("%d fallbacks with MigrationFailRate=0", fb)
	}
	if bOK, bFB := base.Migrations(); bOK != 0 || bFB != 0 {
		t.Fatalf("disabled run counted migrations: %d ok, %d fallbacks", bOK, bFB)
	}
}

// TestMigrationFailureSuppressesBlend pins the fallback semantics: a
// failed handover resets the carried model (drop-and-reconnect), so the
// strategy must never see moved=true and the Eq. 9 blend never fires.
func TestMigrationFailureSuppressesBlend(t *testing.T) {
	fBase := newFixture(t, 0.6)
	spyBase := &spyStrategy{}
	New(smallConfig(), fBase.factory(), fBase.part, fBase.test, fBase.mob, spyBase).Run()
	baseMoved := 0
	for _, m := range spyBase.movedSeen {
		if m {
			baseMoved++
		}
	}
	if baseMoved == 0 {
		t.Fatal("baseline never selected a moved device — the suppression check below is vacuous")
	}

	fFail := newFixture(t, 0.6)
	spyFail := &spyStrategy{}
	failing := New(migrationConfig(1.0), fFail.factory(), fFail.part, fFail.test, fFail.mob, spyFail)
	failing.Run()
	for i, m := range spyFail.movedSeen {
		if m {
			t.Fatalf("InitLocal call %d saw moved=true despite every handover failing", i)
		}
	}
	ok, fb := failing.Migrations()
	if ok != 0 || fb == 0 {
		t.Fatalf("MigrationFailRate=1 counted %d ok, %d fallbacks", ok, fb)
	}
}

// TestMigrationFailureDeterministic: the failure decision is a pure
// function of (FaultSeed, step, device), so two runs with the same seed
// are bit-identical, including which handovers failed.
func TestMigrationFailureDeterministic(t *testing.T) {
	run := func() (*Sim, int, int) {
		f := newFixture(t, 0.6)
		cfg := migrationConfig(0.5)
		cfg.FaultSeed = 99
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		ok, fb := s.Migrations()
		return s, ok, fb
	}
	s1, ok1, fb1 := run()
	s2, ok2, fb2 := run()
	if ok1 != ok2 || fb1 != fb2 {
		t.Fatalf("migration outcomes differ across identical runs: %d/%d vs %d/%d", ok1, fb1, ok2, fb2)
	}
	if ok1 == 0 || fb1 == 0 {
		t.Fatalf("want a mix of outcomes at rate 0.5, got %d ok / %d fallbacks", ok1, fb1)
	}
	for i := range s1.cloud {
		if s1.cloud[i] != s2.cloud[i] {
			t.Fatalf("cloud models differ at %d between identical seeded runs", i)
		}
	}
}

// TestMigrationDenseLazyIdentical: the lazy device store's reset (which
// re-aliases the cloud vector) must produce exactly the dense store's
// bits under migration failures, or population-scale runs would diverge
// from small ones.
func TestMigrationDenseLazyIdentical(t *testing.T) {
	run := func(lazy bool) *Sim {
		f := newFixture(t, 0.6)
		cfg := migrationConfig(0.5)
		cfg.FaultSeed = 7
		cfg.LazyStore = lazy
		s := New(cfg, f.factory(), f.part, f.test, f.mob, &spyStrategy{})
		s.Run()
		return s
	}
	dense := run(false)
	lazyS := run(true)
	if _, fb := dense.Migrations(); fb == 0 {
		t.Fatal("no fallbacks at rate 0.5 — reset path not exercised")
	}
	for i := range dense.cloud {
		if dense.cloud[i] != lazyS.cloud[i] {
			t.Fatalf("dense and lazy stores diverge at %d under migration failures", i)
		}
	}
}
