package hfl

import (
	"strconv"

	"middle/internal/obs"
	"middle/internal/simil"
)

// UtilityBuckets spans the [0, 1] range of the paper's similarity
// utilities (Eq. 8/12) with extra resolution near the clip point at 0.
func UtilityBuckets() []float64 {
	return []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
}

// NormBuckets spans accumulated-update norms ‖Δw_m‖ from numerically
// zero (a device that trained nothing since the last sync) up to far
// beyond any healthy update magnitude.
func NormBuckets() []float64 {
	return []float64{1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100}
}

// telemetry records the learning-dynamics quantities that explain a
// run's behaviour: the Eq. 12 selection utility and update-norm
// distributions, the Eq. 9 blend utility on mobility events, per-device
// participation counts (fairness) and the edge→edge mobility flow
// matrix. Like PhaseTimes, the scalar accumulators are always on — they
// are pure reads plus a few adds, keep results bit-identical and feed
// the History CSV columns of every run — while the obs instruments are
// built from cfg.Obs and no-op (allocation-free) when it is nil.
type telemetry struct {
	numEdges int

	// Cumulative sums/counts since the start of the run.
	selUtilSum   float64
	selUtilN     int64
	updNormSum   float64
	blendUtilSum float64
	blendUtilN   int64

	// Per-round sums, reset by beginRound, for the JSONL round event.
	roundSelUtilSum   float64
	roundSelUtilN     int64
	roundUpdNormSum   float64
	roundBlendUtilSum float64
	roundBlendUtilN   int64

	trainCounts []int64 // per-device training rounds (fairness)
	flowCounts  []int64 // numEdges×numEdges move counts, from*numEdges+to
	divScratch  []float64

	// obs instruments; every one is nil (and every method a no-op) when
	// the registry is nil. The flow counter matrix is pre-registered in
	// full so the mobility hot path never registers (allocates) a series.
	selUtilHist  *obs.Histogram
	updNormHist  *obs.Histogram
	blendHist    *obs.Histogram
	edgeDiv      []*obs.Gauge
	fairness     *obs.Gauge
	participants *obs.Gauge
	flow         []*obs.Counter
}

// maxPerEdgeSeries bounds the per-edge obs series families. The flow
// counter matrix is numEdges² series and the divergence gauges numEdges
// more; at population scale (1k+ edges) registering millions of series
// would dominate memory, so beyond this edge count the telemetry keeps
// its in-memory counters (flowCounts, History columns) but registers no
// per-edge instruments — nil instruments no-op.
const maxPerEdgeSeries = 128

func newTelemetry(r *obs.Registry, numEdges, numDevices int) *telemetry {
	tel := &telemetry{
		numEdges:     numEdges,
		trainCounts:  make([]int64, numDevices),
		flowCounts:   make([]int64, numEdges*numEdges),
		divScratch:   make([]float64, numEdges),
		selUtilHist:  r.Histogram("hfl_selection_utility", UtilityBuckets()),
		updNormHist:  r.Histogram("hfl_update_norm", NormBuckets()),
		blendHist:    r.Histogram("hfl_blend_utility", UtilityBuckets()),
		edgeDiv:      make([]*obs.Gauge, numEdges),
		fairness:     r.Gauge("hfl_selection_fairness_jain"),
		participants: r.Gauge("hfl_participating_devices"),
		flow:         make([]*obs.Counter, numEdges*numEdges),
	}
	// Divergence gauges go through the registry's cardinality budget:
	// every edge registers, the first maxPerEdgeSeries label sets get
	// real series, and the tail folds into hfl_edge_divergence{edge=
	// "other"} with obs_dropped_series_total accounting for the folds —
	// so a 10k-edge run still exposes a bounded, honest family.
	r.EnsureFamilyBudget("hfl_edge_divergence", maxPerEdgeSeries)
	for n := 0; n < numEdges; n++ {
		tel.edgeDiv[n] = r.Gauge("hfl_edge_divergence", "edge", strconv.Itoa(n))
	}
	// The flow matrix is numEdges² series; folding cannot make that
	// registration loop cheap, so past the budget it is skipped outright
	// (nil counters no-op) and only the in-memory flowCounts remain.
	if numEdges <= maxPerEdgeSeries {
		for n := 0; n < numEdges; n++ {
			for to := 0; to < numEdges; to++ {
				tel.flow[n*numEdges+to] = r.Counter("hfl_mobility_flow_total", "from", strconv.Itoa(n), "to", strconv.Itoa(to))
			}
		}
	}
	return tel
}

// beginRound resets the per-round accumulators.
func (tel *telemetry) beginRound() {
	tel.roundSelUtilSum = 0
	tel.roundSelUtilN = 0
	tel.roundUpdNormSum = 0
	tel.roundBlendUtilSum = 0
	tel.roundBlendUtilN = 0
}

// recordSelection logs one selected device's Eq. 12 utility and
// accumulated-update norm (computed against the pre-training carried
// model).
func (tel *telemetry) recordSelection(device int, utility, deltaNorm float64) {
	tel.selUtilSum += utility
	tel.selUtilN++
	tel.updNormSum += deltaNorm
	tel.roundSelUtilSum += utility
	tel.roundSelUtilN++
	tel.roundUpdNormSum += deltaNorm
	tel.trainCounts[device]++
	tel.selUtilHist.Observe(utility)
	tel.updNormHist.Observe(deltaNorm)
}

// recordBlend logs the Eq. 9 blend utility of one mobility event (a
// selected device entering a new edge).
func (tel *telemetry) recordBlend(utility float64) {
	tel.blendUtilSum += utility
	tel.blendUtilN++
	tel.roundBlendUtilSum += utility
	tel.roundBlendUtilN++
	tel.blendHist.Observe(utility)
}

// recordMove logs one device crossing from edge `from` to edge `to`.
func (tel *telemetry) recordMove(from, to int) {
	i := from*tel.numEdges + to
	tel.flowCounts[i]++
	tel.flow[i].Inc()
}

// selUtilMean returns the running mean selection utility (0 before any
// selection).
func (tel *telemetry) selUtilMean() float64 { return meanOf(tel.selUtilSum, tel.selUtilN) }

// updNormMean returns the running mean accumulated-update norm.
func (tel *telemetry) updNormMean() float64 { return meanOf(tel.updNormSum, tel.selUtilN) }

// blendUtilMean returns the running mean Eq. 9 blend utility.
func (tel *telemetry) blendUtilMean() float64 { return meanOf(tel.blendUtilSum, tel.blendUtilN) }

func meanOf(sum float64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// evalDivergence computes each edge's divergence ‖w_n − w_c‖ from the
// cloud model, mirrors it into the per-edge gauges, and returns the
// (scratch-backed) slice plus its mean and max.
func (tel *telemetry) evalDivergence(cloud []float64, edges [][]float64) (divs []float64, mean, max float64) {
	divs = tel.divScratch
	sum := 0.0
	for n, e := range edges {
		d := simil.DeltaNorm(e, cloud)
		divs[n] = d
		sum += d
		if d > max {
			max = d
		}
		tel.edgeDiv[n].Set(d)
	}
	if len(edges) > 0 {
		mean = sum / float64(len(edges))
	}
	return divs, mean, max
}

// fairnessJain returns Jain's fairness index (Σx)²/(n·Σx²) over the
// per-device training counts: 1 when participation is uniform, → 1/n as
// one device dominates, and 0 before anyone has trained.
func (tel *telemetry) fairnessJain() float64 {
	var sum, sumSq float64
	for _, c := range tel.trainCounts {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(tel.trainCounts)) * sumSq)
}

// flowMatrix returns the cumulative edge→edge move counts as a nested
// [from][to] matrix (freshly allocated; used by JSONL eval events only).
func (tel *telemetry) flowMatrix() [][]int64 {
	out := make([][]int64, tel.numEdges)
	for n := range out {
		out[n] = append([]int64(nil), tel.flowCounts[n*tel.numEdges:(n+1)*tel.numEdges]...)
	}
	return out
}
