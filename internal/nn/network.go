package nn

import (
	"fmt"

	"middle/internal/tensor"
)

// Network is a sequential feed-forward stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch through all layers.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward pushes the output gradient back through all layers,
// accumulating parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// ParamVector copies all parameter values into a single flat vector in
// layer order. This is the model representation the federated aggregation
// rules operate on.
func (n *Network) ParamVector() []float64 {
	v := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		v = append(v, p.Value.Data...)
	}
	return v
}

// SetParamVector loads a flat vector (as produced by ParamVector) back
// into the parameters.
func (n *Network) SetParamVector(v []float64) {
	off := 0
	for _, p := range n.Params() {
		sz := p.Value.Size()
		if off+sz > len(v) {
			panic(fmt.Sprintf("nn: SetParamVector vector too short: have %d, need >= %d", len(v), off+sz))
		}
		copy(p.Value.Data, v[off:off+sz])
		off += sz
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetParamVector vector too long: have %d, consumed %d", len(v), off))
	}
}

// GradVector copies all parameter gradients into a single flat vector in
// layer order.
func (n *Network) GradVector() []float64 {
	v := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		v = append(v, p.Grad.Data...)
	}
	return v
}
