package nn

import (
	"fmt"

	"middle/internal/tensor"
)

// Network is a sequential feed-forward stack of layers.
type Network struct {
	Layers []Layer

	// params caches the flattened parameter list. The layer stack is
	// fixed at construction, so the cache never needs invalidation; it is
	// built lazily on first use so zero-value Networks still work.
	params    []*Param
	numParams int
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch through all layers.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward pushes the output gradient back through all layers,
// accumulating parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters in layer order. The slice is
// cached (layers are fixed at construction); callers must not mutate it.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
		for _, p := range n.params {
			n.numParams += p.Value.Size()
		}
	}
	return n.params
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	n.Params()
	return n.numParams
}

// ParamVector copies all parameter values into a single flat vector in
// layer order. This is the model representation the federated aggregation
// rules operate on.
func (n *Network) ParamVector() []float64 {
	v := make([]float64, n.NumParams())
	n.ParamVectorInto(v)
	return v
}

// ParamVectorInto copies all parameter values into v, which must have
// length NumParams(). It performs no allocation.
func (n *Network) ParamVectorInto(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: ParamVectorInto destination has length %d, want %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		off += copy(v[off:], p.Value.Data)
	}
}

// SetParamVector loads a flat vector (as produced by ParamVector) back
// into the parameters.
func (n *Network) SetParamVector(v []float64) {
	off := 0
	for _, p := range n.Params() {
		sz := p.Value.Size()
		if off+sz > len(v) {
			panic(fmt.Sprintf("nn: SetParamVector vector too short: have %d, need >= %d", len(v), off+sz))
		}
		copy(p.Value.Data, v[off:off+sz])
		off += sz
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetParamVector vector too long: have %d, consumed %d", len(v), off))
	}
}

// GradVector copies all parameter gradients into a single flat vector in
// layer order.
func (n *Network) GradVector() []float64 {
	v := make([]float64, n.NumParams())
	n.GradVectorInto(v)
	return v
}

// GradVectorInto copies all parameter gradients into v, which must have
// length NumParams(). It performs no allocation.
func (n *Network) GradVectorInto(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: GradVectorInto destination has length %d, want %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		off += copy(v[off:], p.Grad.Data)
	}
}
