// Package nn implements a layer-based neural-network training stack with
// full backpropagation on top of the tensor package. It provides the
// convolutional architectures the MIDDLE paper trains (2-conv and 3-conv
// CNNs for image tasks, a 1-D CNN for the speech task) and lossless
// flattening of all parameters to a vector, which is the representation
// the federated aggregation rules (paper Eqs. 6, 7, 9) operate on.
package nn

import (
	"fmt"

	"middle/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one stage of a feed-forward network. Forward caches whatever it
// needs so that the next Backward call can produce input gradients and
// accumulate parameter gradients. Layers are stateful and not safe for
// concurrent use; every simulated device owns its own network instance.
type Layer interface {
	// Forward computes the layer output for a batch. train enables
	// training-only behaviour (e.g. dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss with respect to the
	// layer output and returns the gradient with respect to the input,
	// accumulating parameter gradients as a side effect.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// shapeError builds a consistent panic message for layer shape mismatches.
func shapeError(layer string, want string, got []int) string {
	return fmt.Sprintf("nn: %s expects input %s, got shape %v", layer, want, got)
}
