package nn

import (
	"middle/internal/tensor"
)

// Conv2D is a 2-D convolution over inputs of shape [N, C, H, W], lowered
// to matrix products with im2col. Weights are stored as a matrix
// [OutC, C*KH*KW] so one sample's convolution is a single MatMul.
type Conv2D struct {
	InC, OutC            int
	KH, KW               int
	Stride, Pad          int
	W, B                 *Param
	inH, inW, outH, outW int

	x    *tensor.Tensor // cached input
	cols []float64      // cached im2col buffers, one block per sample
}

// NewConv2D constructs a convolution layer with He-normal weights for
// inputs of spatial size inH×inW (fixed per network; the paper's tasks
// each have a fixed input geometry).
func NewConv2D(inC, outC, kh, kw, stride, pad, inH, inW int, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		inH: inH, inW: inW,
		outH: tensor.ConvOut(inH, kh, stride, pad),
		outW: tensor.ConvOut(inW, kw, stride, pad),
		W:    newParam("conv2d.W", outC, inC*kh*kw),
		B:    newParam("conv2d.B", outC),
	}
	rng.HeNormal(c.W.Value, inC*kh*kw)
	return c
}

// OutShape returns the per-sample output shape [OutC, OH, OW].
func (c *Conv2D) OutShape() []int { return []int{c.OutC, c.outH, c.outW} }

// Forward convolves a batch [N, C, H, W] producing [N, OutC, OH, OW].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC || x.Dim(2) != c.inH || x.Dim(3) != c.inW {
		panic(shapeError("Conv2D", "[N, C, H, W] matching construction", x.Shape()))
	}
	n := x.Dim(0)
	ckk := c.InC * c.KH * c.KW
	ohw := c.outH * c.outW
	c.x = x
	if len(c.cols) != n*ckk*ohw {
		c.cols = make([]float64, n*ckk*ohw)
	}
	out := tensor.New(n, c.OutC, c.outH, c.outW)
	inSz := c.InC * c.inH * c.inW
	for i := 0; i < n; i++ {
		cols := c.cols[i*ckk*ohw : (i+1)*ckk*ohw]
		tensor.Im2Col(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, cols)
		colsT := tensor.FromSlice(cols, ckk, ohw)
		y := tensor.MatMul(c.W.Value, colsT) // [OutC, OHW]
		dst := out.Data[i*c.OutC*ohw : (i+1)*c.OutC*ohw]
		copy(dst, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Value.Data[oc]
			row := dst[oc*ohw : (oc+1)*ohw]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward consumes dOut [N, OutC, OH, OW], accumulates dW and dB, and
// returns dX [N, C, H, W].
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	ckk := c.InC * c.KH * c.KW
	ohw := c.outH * c.outW
	inSz := c.InC * c.inH * c.inW
	dx := tensor.New(n, c.InC, c.inH, c.inW)
	for i := 0; i < n; i++ {
		dyi := tensor.FromSlice(dout.Data[i*c.OutC*ohw:(i+1)*c.OutC*ohw], c.OutC, ohw)
		colsT := tensor.FromSlice(c.cols[i*ckk*ohw:(i+1)*ckk*ohw], ckk, ohw)
		// dW += dy · colsᵀ
		c.W.Grad.AddInPlace(tensor.MatMulTransB(dyi, colsT))
		// dB += row sums of dy
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			row := dyi.Data[oc*ohw : (oc+1)*ohw]
			for _, v := range row {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// dcols = Wᵀ · dy, then scatter back to image space.
		dcols := tensor.MatMulTransA(c.W.Value, dyi)
		tensor.Col2Im(dcols.Data, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, dx.Data[i*inSz:(i+1)*inSz])
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
