package nn

import (
	"middle/internal/tensor"
)

// Conv2D is a 2-D convolution over inputs of shape [N, C, H, W], lowered
// to matrix products with im2col. Weights are stored as a matrix
// [OutC, C*KH*KW] and the whole batch is lowered at once into a single
// column matrix [C*KH*KW, N*OH*OW] (sample i owns columns
// [i*OH*OW, (i+1)*OH*OW)), so the convolution of the entire batch is one
// MatMul per Forward and the backward pass is one MatMulTransB (dW) plus
// one MatMulTransA (dX) regardless of batch size.
//
// The layer owns its scratch buffers (cols, y, out, dy, dcols, dw, dx):
// tensors returned by Forward/Backward are valid only until the layer's
// next Forward/Backward call.
type Conv2D struct {
	InC, OutC            int
	KH, KW               int
	Stride, Pad          int
	W, B                 *Param
	inH, inW, outH, outW int

	cols  []float64      // batched im2col matrix [CKK, N*OHW]
	y     *tensor.Tensor // pre-bias forward product [OutC, N*OHW]
	out   *tensor.Tensor // forward output [N, OutC, OH, OW]
	dy    *tensor.Tensor // gathered upstream gradient [OutC, N*OHW]
	dcols *tensor.Tensor // column-space input gradient [CKK, N*OHW]
	dw    *tensor.Tensor // per-step weight gradient [OutC, CKK]
	dx    *tensor.Tensor // input gradient [N, C, H, W]
}

// NewConv2D constructs a convolution layer with He-normal weights for
// inputs of spatial size inH×inW (fixed per network; the paper's tasks
// each have a fixed input geometry).
func NewConv2D(inC, outC, kh, kw, stride, pad, inH, inW int, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		inH: inH, inW: inW,
		outH: tensor.ConvOut(inH, kh, stride, pad),
		outW: tensor.ConvOut(inW, kw, stride, pad),
		W:    newParam("conv2d.W", outC, inC*kh*kw),
		B:    newParam("conv2d.B", outC),
	}
	rng.HeNormal(c.W.Value, inC*kh*kw)
	return c
}

// OutShape returns the per-sample output shape [OutC, OH, OW].
func (c *Conv2D) OutShape() []int { return []int{c.OutC, c.outH, c.outW} }

// Forward convolves a batch [N, C, H, W] producing [N, OutC, OH, OW].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC || x.Dim(2) != c.inH || x.Dim(3) != c.inW {
		panic(shapeError("Conv2D", "[N, C, H, W] matching construction", x.Shape()))
	}
	n := x.Dim(0)
	ckk := c.InC * c.KH * c.KW
	ohw := c.outH * c.outW
	cols := ensureFloats(c.cols, ckk*n*ohw)
	c.cols = cols
	inSz := c.InC * c.inH * c.inW
	rowStride := n * ohw
	// Lower every sample into its column block of the shared matrix; the
	// blocks are disjoint, so samples lower in parallel.
	tensor.ParallelFor(n, 1, func(i int) {
		tensor.Im2ColStrided(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inH, c.inW,
			c.KH, c.KW, c.Stride, c.Pad, cols[i*ohw:], rowStride)
	})
	colsT := tensor.FromSlice(cols, ckk, rowStride)
	c.y = ensureTensor(c.y, c.OutC, rowStride)
	tensor.MatMulInto(c.y, c.W.Value, colsT) // [OutC, N*OHW]
	out := ensureTensor(c.out, n, c.OutC, c.outH, c.outW)
	c.out = out
	// Un-batch: copy each sample's column range back to [N, OutC, OH, OW]
	// layout and add the bias.
	yd := c.y.Data
	bd := c.B.Value.Data
	tensor.ParallelFor(n, 1, func(i int) {
		for oc := 0; oc < c.OutC; oc++ {
			src := yd[oc*rowStride+i*ohw : oc*rowStride+(i+1)*ohw]
			dst := out.Data[(i*c.OutC+oc)*ohw : (i*c.OutC+oc+1)*ohw]
			b := bd[oc]
			for j, v := range src {
				dst[j] = v + b
			}
		}
	})
	return out
}

// Backward consumes dOut [N, OutC, OH, OW], accumulates dW and dB, and
// returns dX [N, C, H, W].
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	ckk := c.InC * c.KH * c.KW
	ohw := c.outH * c.outW
	inSz := c.InC * c.inH * c.inW
	rowStride := n * ohw
	// Gather dOut into the batched column layout [OutC, N*OHW].
	c.dy = ensureTensor(c.dy, c.OutC, rowStride)
	dyd := c.dy.Data
	tensor.ParallelFor(n, 1, func(i int) {
		for oc := 0; oc < c.OutC; oc++ {
			src := dout.Data[(i*c.OutC+oc)*ohw : (i*c.OutC+oc+1)*ohw]
			copy(dyd[oc*rowStride+i*ohw:oc*rowStride+(i+1)*ohw], src)
		}
	})
	colsT := tensor.FromSlice(c.cols, ckk, rowStride)
	// dW += dy · colsᵀ — one product for the whole batch.
	c.dw = ensureTensor(c.dw, c.OutC, ckk)
	tensor.MatMulTransBInto(c.dw, c.dy, colsT)
	c.W.Grad.AddInPlace(c.dw)
	// dB += row sums of dy.
	for oc := 0; oc < c.OutC; oc++ {
		s := 0.0
		for _, v := range dyd[oc*rowStride : (oc+1)*rowStride] {
			s += v
		}
		c.B.Grad.Data[oc] += s
	}
	// dcols = Wᵀ · dy, then scatter each sample's block back to image
	// space (disjoint outputs → parallel across samples).
	c.dcols = ensureTensor(c.dcols, ckk, rowStride)
	tensor.MatMulTransAInto(c.dcols, c.W.Value, c.dy)
	dx := ensureTensor(c.dx, n, c.InC, c.inH, c.inW)
	c.dx = dx
	dcd := c.dcols.Data
	tensor.ParallelFor(n, 1, func(i int) {
		dxi := dx.Data[i*inSz : (i+1)*inSz]
		clear(dxi)
		tensor.Col2ImStrided(dcd[i*ohw:], c.InC, c.inH, c.inW,
			c.KH, c.KW, c.Stride, c.Pad, dxi, rowStride)
	})
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
