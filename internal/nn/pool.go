package nn

import (
	"math"

	"middle/internal/tensor"
)

// MaxPool2D applies non-overlapping max pooling with a square window of
// size K and stride K over inputs of shape [N, C, H, W].
type MaxPool2D struct {
	K int

	inShape []int
	argmax  []int // flat input index of each output element
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

// NewMaxPool2D constructs a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Forward pools each K×K window to its maximum.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(shapeError("MaxPool2D", "[N, C, H, W]", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.K, w/p.K
	p.inShape = x.Shape()
	p.out = ensureTensor(p.out, n, c, oh, ow)
	out := p.out
	if len(p.argmax) != out.Size() {
		p.argmax = make([]int, out.Size())
	}
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bi := math.Inf(-1), -1
					for ky := 0; ky < p.K; ky++ {
						rowBase := base + (oy*p.K+ky)*w + ox*p.K
						for kx := 0; kx < p.K; kx++ {
							if v := x.Data[rowBase+kx]; v > best {
								best, bi = v, rowBase+kx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bi
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the argmax input position.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	p.dx = ensureTensor(p.dx, p.inShape...)
	dx := p.dx
	dx.Zero()
	for oi, ii := range p.argmax {
		dx.Data[ii] += dy.Data[oi]
	}
	return dx
}

// Params returns nil: pooling has no trainable state.
func (p *MaxPool2D) Params() []*Param { return nil }

// MaxPool1D applies non-overlapping max pooling with window and stride K
// over inputs of shape [N, C, L].
type MaxPool1D struct {
	K int

	inShape []int
	argmax  []int
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

// NewMaxPool1D constructs a 1-D max-pooling layer with window and stride k.
func NewMaxPool1D(k int) *MaxPool1D { return &MaxPool1D{K: k} }

// Forward pools each length-K window to its maximum.
func (p *MaxPool1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(shapeError("MaxPool1D", "[N, C, L]", x.Shape()))
	}
	n, c, l := x.Dim(0), x.Dim(1), x.Dim(2)
	ol := l / p.K
	p.inShape = x.Shape()
	p.out = ensureTensor(p.out, n, c, ol)
	out := p.out
	if len(p.argmax) != out.Size() {
		p.argmax = make([]int, out.Size())
	}
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * l
			for o := 0; o < ol; o++ {
				best, bi := math.Inf(-1), -1
				for k := 0; k < p.K; k++ {
					if v := x.Data[base+o*p.K+k]; v > best {
						best, bi = v, base+o*p.K+k
					}
				}
				out.Data[oi] = best
				p.argmax[oi] = bi
				oi++
			}
		}
	}
	return out
}

// Backward routes each output gradient to the argmax input position.
func (p *MaxPool1D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	p.dx = ensureTensor(p.dx, p.inShape...)
	dx := p.dx
	dx.Zero()
	for oi, ii := range p.argmax {
		dx.Data[ii] += dy.Data[oi]
	}
	return dx
}

// Params returns nil: pooling has no trainable state.
func (p *MaxPool1D) Params() []*Param { return nil }
