package nn

import (
	"middle/internal/tensor"
)

// Scratch-buffer helpers. Layers own their output and gradient buffers
// and reuse them across steps: a tensor returned by Forward/Backward is
// valid only until the same layer's next Forward/Backward call. Callers
// that need to retain a result must copy it (see DESIGN.md, "Performance
// architecture").

// ensureTensor returns t if it already has exactly the given shape,
// otherwise a freshly allocated zero tensor of that shape. The contents
// of a reused tensor are unspecified; callers overwrite them fully.
func ensureTensor(t *tensor.Tensor, shape ...int) *tensor.Tensor {
	if t != nil && t.Rank() == len(shape) {
		match := true
		for i, d := range shape {
			if t.Dim(i) != d {
				match = false
				break
			}
		}
		if match {
			return t
		}
	}
	return tensor.New(shape...)
}

// ensureFloats returns s if it already has length n, otherwise a new
// zeroed slice of length n.
func ensureFloats(s []float64, n int) []float64 {
	if len(s) == n {
		return s
	}
	return make([]float64, n)
}
