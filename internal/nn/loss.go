package nn

import (
	"fmt"
	"math"

	"middle/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [N, C] against integer labels, and the gradient of that loss with
// respect to the logits: (softmax − onehot)/N. Computing loss and
// gradient together keeps the softmax numerically stable and avoids a
// second pass.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	loss, grad, _ = softmaxCE(logits, labels, false)
	return loss, grad
}

// SoftmaxCrossEntropyPerSample additionally returns each sample's loss,
// which device-selection utilities (Oort's statistical utility) need.
func SoftmaxCrossEntropyPerSample(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor, perSample []float64) {
	return softmaxCE(logits, labels, true)
}

func softmaxCE(logits *tensor.Tensor, labels []int, wantPerSample bool) (loss float64, grad *tensor.Tensor, perSample []float64) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy requires [N, C] logits, got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy has %d logit rows but %d labels", n, len(labels)))
	}
	probs := logits.SoftmaxRows()
	grad = probs // reuse: grad = probs − onehot, scaled by 1/N
	invN := 1.0 / float64(n)
	if wantPerSample {
		perSample = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0, %d)", y, c))
		}
		p := probs.Data[i*c+y]
		// Clamp to avoid -Inf on numerically zero probabilities.
		if p < 1e-12 {
			p = 1e-12
		}
		l := -math.Log(p)
		loss += l
		if wantPerSample {
			perSample[i] = l
		}
		grad.Data[i*c+y] -= 1
	}
	loss *= invN
	grad.ScaleInPlace(invN)
	return loss, grad, perSample
}

// Accuracy returns the fraction of rows of logits [N, C] whose argmax
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgMaxRows()
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy has %d predictions but %d labels", len(pred), len(labels)))
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
