package nn

import (
	"middle/internal/tensor"
)

// Conv1D is a 1-D convolution over inputs of shape [N, C, L], used by the
// speech-commands-profile model on long sparse signal vectors. Like
// Conv2D it lowers the whole batch into one column matrix [C*K, N*OL]
// (sample i owns columns [i*OL, (i+1)*OL)) so forward and backward are a
// fixed number of matrix products per step. The layer owns its scratch
// buffers; returned tensors are valid until the next Forward/Backward.
type Conv1D struct {
	InC, OutC   int
	K           int
	Stride, Pad int
	W, B        *Param
	inL, outL   int

	cols  []float64
	y     *tensor.Tensor
	out   *tensor.Tensor
	dy    *tensor.Tensor
	dcols *tensor.Tensor
	dw    *tensor.Tensor
	dx    *tensor.Tensor
}

// NewConv1D constructs a 1-D convolution layer with He-normal weights for
// inputs of length inL.
func NewConv1D(inC, outC, k, stride, pad, inL int, rng *tensor.RNG) *Conv1D {
	c := &Conv1D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		inL:  inL,
		outL: tensor.ConvOut(inL, k, stride, pad),
		W:    newParam("conv1d.W", outC, inC*k),
		B:    newParam("conv1d.B", outC),
	}
	rng.HeNormal(c.W.Value, inC*k)
	return c
}

// OutLen returns the per-sample output length.
func (c *Conv1D) OutLen() int { return c.outL }

// Forward convolves a batch [N, C, L] producing [N, OutC, OL].
func (c *Conv1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(1) != c.InC || x.Dim(2) != c.inL {
		panic(shapeError("Conv1D", "[N, C, L] matching construction", x.Shape()))
	}
	n := x.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	cols := ensureFloats(c.cols, ck*n*ol)
	c.cols = cols
	inSz := c.InC * c.inL
	rowStride := n * ol
	tensor.ParallelFor(n, 1, func(i int) {
		tensor.Im2Col1DStrided(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inL,
			c.K, c.Stride, c.Pad, cols[i*ol:], rowStride)
	})
	colsT := tensor.FromSlice(cols, ck, rowStride)
	c.y = ensureTensor(c.y, c.OutC, rowStride)
	tensor.MatMulInto(c.y, c.W.Value, colsT)
	out := ensureTensor(c.out, n, c.OutC, ol)
	c.out = out
	yd := c.y.Data
	bd := c.B.Value.Data
	tensor.ParallelFor(n, 1, func(i int) {
		for oc := 0; oc < c.OutC; oc++ {
			src := yd[oc*rowStride+i*ol : oc*rowStride+(i+1)*ol]
			dst := out.Data[(i*c.OutC+oc)*ol : (i*c.OutC+oc+1)*ol]
			b := bd[oc]
			for j, v := range src {
				dst[j] = v + b
			}
		}
	})
	return out
}

// Backward consumes dOut [N, OutC, OL] and returns dX [N, C, L].
func (c *Conv1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	inSz := c.InC * c.inL
	rowStride := n * ol
	c.dy = ensureTensor(c.dy, c.OutC, rowStride)
	dyd := c.dy.Data
	tensor.ParallelFor(n, 1, func(i int) {
		for oc := 0; oc < c.OutC; oc++ {
			copy(dyd[oc*rowStride+i*ol:oc*rowStride+(i+1)*ol],
				dout.Data[(i*c.OutC+oc)*ol:(i*c.OutC+oc+1)*ol])
		}
	})
	colsT := tensor.FromSlice(c.cols, ck, rowStride)
	c.dw = ensureTensor(c.dw, c.OutC, ck)
	tensor.MatMulTransBInto(c.dw, c.dy, colsT)
	c.W.Grad.AddInPlace(c.dw)
	for oc := 0; oc < c.OutC; oc++ {
		s := 0.0
		for _, v := range dyd[oc*rowStride : (oc+1)*rowStride] {
			s += v
		}
		c.B.Grad.Data[oc] += s
	}
	c.dcols = ensureTensor(c.dcols, ck, rowStride)
	tensor.MatMulTransAInto(c.dcols, c.W.Value, c.dy)
	dx := ensureTensor(c.dx, n, c.InC, c.inL)
	c.dx = dx
	dcd := c.dcols.Data
	tensor.ParallelFor(n, 1, func(i int) {
		dxi := dx.Data[i*inSz : (i+1)*inSz]
		clear(dxi)
		tensor.Col2Im1DStrided(dcd[i*ol:], c.InC, c.inL,
			c.K, c.Stride, c.Pad, dxi, rowStride)
	})
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }
