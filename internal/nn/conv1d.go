package nn

import (
	"middle/internal/tensor"
)

// Conv1D is a 1-D convolution over inputs of shape [N, C, L], used by the
// speech-commands-profile model on long sparse signal vectors.
type Conv1D struct {
	InC, OutC   int
	K           int
	Stride, Pad int
	W, B        *Param
	inL, outL   int

	x    *tensor.Tensor
	cols []float64
}

// NewConv1D constructs a 1-D convolution layer with He-normal weights for
// inputs of length inL.
func NewConv1D(inC, outC, k, stride, pad, inL int, rng *tensor.RNG) *Conv1D {
	c := &Conv1D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		inL:  inL,
		outL: tensor.ConvOut(inL, k, stride, pad),
		W:    newParam("conv1d.W", outC, inC*k),
		B:    newParam("conv1d.B", outC),
	}
	rng.HeNormal(c.W.Value, inC*k)
	return c
}

// OutLen returns the per-sample output length.
func (c *Conv1D) OutLen() int { return c.outL }

// Forward convolves a batch [N, C, L] producing [N, OutC, OL].
func (c *Conv1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(1) != c.InC || x.Dim(2) != c.inL {
		panic(shapeError("Conv1D", "[N, C, L] matching construction", x.Shape()))
	}
	n := x.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	c.x = x
	if len(c.cols) != n*ck*ol {
		c.cols = make([]float64, n*ck*ol)
	}
	out := tensor.New(n, c.OutC, ol)
	inSz := c.InC * c.inL
	for i := 0; i < n; i++ {
		cols := c.cols[i*ck*ol : (i+1)*ck*ol]
		tensor.Im2Col1D(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inL, c.K, c.Stride, c.Pad, cols)
		colsT := tensor.FromSlice(cols, ck, ol)
		y := tensor.MatMul(c.W.Value, colsT)
		dst := out.Data[i*c.OutC*ol : (i+1)*c.OutC*ol]
		copy(dst, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Value.Data[oc]
			row := dst[oc*ol : (oc+1)*ol]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward consumes dOut [N, OutC, OL] and returns dX [N, C, L].
func (c *Conv1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	inSz := c.InC * c.inL
	dx := tensor.New(n, c.InC, c.inL)
	for i := 0; i < n; i++ {
		dyi := tensor.FromSlice(dout.Data[i*c.OutC*ol:(i+1)*c.OutC*ol], c.OutC, ol)
		colsT := tensor.FromSlice(c.cols[i*ck*ol:(i+1)*ck*ol], ck, ol)
		c.W.Grad.AddInPlace(tensor.MatMulTransB(dyi, colsT))
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range dyi.Data[oc*ol : (oc+1)*ol] {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		dcols := tensor.MatMulTransA(c.W.Value, dyi)
		tensor.Col2Im1D(dcols.Data, c.InC, c.inL, c.K, c.Stride, c.Pad, dx.Data[i*inSz:(i+1)*inSz])
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }
