package nn

import (
	"math"
	"testing"
	"testing/quick"

	"middle/internal/tensor"
)

func TestParamVectorRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewCNN2(CNN2Config{InC: 1, H: 8, W: 8, Classes: 4, C1: 2, C2: 3, Hidden: 8}, rng)
	v := net.ParamVector()
	if len(v) != net.NumParams() {
		t.Fatalf("vector length %d != NumParams %d", len(v), net.NumParams())
	}
	// Mutate vector, load, extract again: must match exactly.
	for i := range v {
		v[i] = float64(i%13) * 0.1
	}
	net.SetParamVector(v)
	v2 := net.ParamVector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, v[i], v2[i])
		}
	}
}

func TestSetParamVectorPanicsOnWrongLength(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewMLP(MLPConfig{In: 3, Classes: 2}, rng)
	for _, n := range []int{net.NumParams() - 1, net.NumParams() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetParamVector with length %d did not panic", n)
				}
			}()
			net.SetParamVector(make([]float64, n))
		}()
	}
}

func TestZeroGrad(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewMLP(MLPConfig{In: 3, Classes: 2, Hidden: []int{4}}, rng)
	x := tensor.New(2, 3)
	rng.FillNormal(x, 0, 1)
	logits := net.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, []int{0, 1})
	net.Backward(g)
	nz := 0
	for _, v := range net.GradVector() {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("backward produced all-zero gradients")
	}
	net.ZeroGrad()
	for i, v := range net.GradVector() {
		if v != 0 {
			t.Fatalf("grad[%d] = %v after ZeroGrad", i, v)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// All-zero logits: loss must equal log(C), gradient rows sum to 0.
	logits := tensor.New(4, 5)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3})
	if math.Abs(loss-math.Log(5)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want log 5 = %v", loss, math.Log(5))
	}
	for r := 0; r < 4; r++ {
		s := 0.0
		for c := 0; c < 5; c++ {
			s += grad.At(r, c)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{3})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 9,
		3, 2, 1,
	}, 4, 3)
	got := Accuracy(logits, []int{0, 1, 2, 2})
	if got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDropout(0.5, rng)
	x := tensor.New(2, 10)
	rng.FillNormal(x, 0, 1)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("Dropout in eval mode changed values")
	}
}

func TestDropoutTrainZeroesAndScales(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewDropout(0.5, rng)
	x := tensor.Full(1.0, 1, 1000)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout kept %d of 1000 at rate 0.5", 1000-zeros)
	}
	if zeros+scaled != 1000 {
		t.Fatal("dropout output mix inconsistent")
	}
}

func TestMaxPool2DKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2)
	y := p.Forward(x, false)
	want := []float64{4, 8, 9, 4}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool output %v, want %v", y.Data, want)
		}
	}
	// Gradient routes to argmax positions only.
	dy := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := p.Backward(dy)
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("pool backward total %v, want 4", sum)
	}
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 2, 0) != 1 {
		t.Fatalf("pool backward misrouted: %v", dx.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	f := NewFlatten()
	x := tensor.New(3, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	y := f.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != 32 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dx := f.Backward(y)
	if !dx.SameShape(x) {
		t.Fatalf("flatten backward shape %v", dx.Shape())
	}
}

// TestTrainingReducesLoss is an end-to-end smoke test: plain SGD on a
// small separable problem must cut the loss dramatically.
func TestTrainingReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := NewMLP(MLPConfig{In: 2, Classes: 2, Hidden: []int{16}}, rng)
	// Two Gaussian blobs.
	n := 128
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		off := -1.5
		if c == 1 {
			off = 1.5
		}
		x.Data[2*i] = off + 0.3*rng.NormFloat64()
		x.Data[2*i+1] = off + 0.3*rng.NormFloat64()
	}
	first := lossOf(net, x, labels)
	lr := 0.5
	for it := 0; it < 60; it++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, g := SoftmaxCrossEntropy(logits, labels)
		net.Backward(g)
		for _, p := range net.Params() {
			p.Value.AddScaledInPlace(-lr, p.Grad)
		}
	}
	last := lossOf(net, x, labels)
	if last > first*0.1 {
		t.Fatalf("training did not converge: loss %v -> %v", first, last)
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 0.99 {
		t.Fatalf("separable blobs accuracy %v", acc)
	}
}

// Property: for any logits matrix, cross-entropy loss is non-negative and
// each gradient row sums to ~0 (softmax minus one-hot).
func TestQuickCrossEntropyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + int(rng.Int31n(6))
		c := 2 + int(rng.Int31n(5))
		logits := tensor.New(n, c)
		rng.FillNormal(logits, 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = int(rng.Int31n(int32(c)))
		}
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		if loss < 0 || math.IsNaN(loss) || math.IsInf(loss, 0) {
			return false
		}
		for r := 0; r < n; r++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += grad.At(r, j)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParamVector/SetParamVector round-trips arbitrary vectors.
func TestQuickParamVectorRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(77)
	net := NewMLP(MLPConfig{In: 4, Classes: 3, Hidden: []int{5}}, rng)
	n := net.NumParams()
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		net.SetParamVector(v)
		got := net.ParamVector()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool1DKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 5, 2, 4, 9, 3}, 1, 1, 6)
	p := NewMaxPool1D(2)
	y := p.Forward(x, false)
	want := []float64{5, 4, 9}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool1d output %v", y.Data)
		}
	}
	dy := tensor.FromSlice([]float64{1, 1, 1}, 1, 1, 3)
	dx := p.Backward(dy)
	if dx.Data[1] != 1 || dx.Data[3] != 1 || dx.Data[4] != 1 {
		t.Fatalf("pool1d backward %v", dx.Data)
	}
	if dx.Data[0] != 0 || dx.Data[2] != 0 || dx.Data[5] != 0 {
		t.Fatalf("pool1d backward leaked %v", dx.Data)
	}
}

func TestConv1DOutLen(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv1D(1, 2, 5, 2, 1, 20, rng)
	if got := c.OutLen(); got != tensor.ConvOut(20, 5, 2, 1) {
		t.Fatalf("OutLen %d", got)
	}
}

func TestConv2DOutShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv2D(3, 8, 3, 3, 1, 1, 16, 16, rng)
	s := c.OutShape()
	if s[0] != 8 || s[1] != 16 || s[2] != 16 {
		t.Fatalf("OutShape %v", s)
	}
}

func TestModelBuilderPanics(t *testing.T) {
	rng := tensor.NewRNG(1)
	for name, fn := range map[string]func(){
		"cnn2 dims": func() { NewCNN2(CNN2Config{InC: 1, H: 10, W: 10, Classes: 2, C1: 1, C2: 1, Hidden: 2}, rng) },
		"cnn3 dims": func() { NewCNN3(CNN3Config{InC: 1, H: 12, W: 12, Classes: 2, C1: 1, C2: 1, C3: 1, Hidden: 2}, rng) },
		"seq short": func() { NewSeqCNN(SeqCNNConfig{L: 64, Classes: 2, C1: 1, C2: 1, C3: 1, Hidden: 2}, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLayerShapePanics(t *testing.T) {
	rng := tensor.NewRNG(1)
	for name, fn := range map[string]func(){
		"linear":  func() { NewLinear(4, 2, rng).Forward(tensor.New(2, 5), false) },
		"conv2d":  func() { NewConv2D(1, 1, 3, 3, 1, 1, 8, 8, rng).Forward(tensor.New(1, 1, 9, 9), false) },
		"conv1d":  func() { NewConv1D(1, 1, 3, 1, 1, 8, rng).Forward(tensor.New(1, 1, 9), false) },
		"pool2d":  func() { NewMaxPool2D(2).Forward(tensor.New(2, 4), false) },
		"pool1d":  func() { NewMaxPool1D(2).Forward(tensor.New(2, 4, 4, 4), false) },
		"ce rank": func() { SoftmaxCrossEntropy(tensor.New(2, 2, 2), []int{0, 1}) },
		"ce len":  func() { SoftmaxCrossEntropy(tensor.New(2, 2), []int{0}) },
		"acc len": func() { Accuracy(tensor.New(2, 2), []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPerSampleLossesMatchMean(t *testing.T) {
	rng := tensor.NewRNG(4)
	logits := tensor.New(5, 3)
	rng.FillNormal(logits, 0, 2)
	labels := []int{0, 1, 2, 1, 0}
	mean1, g1 := SoftmaxCrossEntropy(logits.Clone(), labels)
	mean2, g2, per := SoftmaxCrossEntropyPerSample(logits.Clone(), labels)
	if math.Abs(mean1-mean2) > 1e-12 {
		t.Fatalf("means differ: %v vs %v", mean1, mean2)
	}
	if !g1.Equal(g2, 1e-12) {
		t.Fatal("grads differ")
	}
	s := 0.0
	for _, l := range per {
		if l < 0 {
			t.Fatalf("negative per-sample loss %v", l)
		}
		s += l
	}
	if math.Abs(s/5-mean1) > 1e-12 {
		t.Fatalf("per-sample mean %v vs %v", s/5, mean1)
	}
}

func TestSequentialNetworkComposes(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewNetwork(NewFlatten(), NewLinear(16, 8, rng), NewReLU(), NewDropout(0.2, rng), NewLinear(8, 3, rng))
	x := tensor.New(4, 4, 4)
	rng.FillNormal(x, 0, 1)
	y := net.Forward(x, true)
	if y.Dim(0) != 4 || y.Dim(1) != 3 {
		t.Fatalf("output shape %v", y.Shape())
	}
	if got := len(net.Params()); got != 4 {
		t.Fatalf("params %d, want 4 (2 layers × W,B)", got)
	}
}
