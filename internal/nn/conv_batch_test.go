package nn

import (
	"math"
	"testing"

	"middle/internal/tensor"
)

// Reference per-sample convolution paths. These re-implement the original
// sample-at-a-time lowering the batched kernels replaced; the batched
// Forward/Backward must agree with them to 1e-12.

func refConv2DForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	ckk := c.InC * c.KH * c.KW
	oh := tensor.ConvOut(c.inH, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(c.inW, c.KW, c.Stride, c.Pad)
	ohw := oh * ow
	inSz := c.InC * c.inH * c.inW
	out := tensor.New(n, c.OutC, oh, ow)
	cols := make([]float64, ckk*ohw)
	for i := 0; i < n; i++ {
		tensor.Im2Col(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, cols)
		y := tensor.MatMul(c.W.Value, tensor.FromSlice(cols, ckk, ohw))
		dst := out.Data[i*c.OutC*ohw : (i+1)*c.OutC*ohw]
		copy(dst, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Value.Data[oc]
			row := dst[oc*ohw : (oc+1)*ohw]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// refConv2DBackward returns (dW, dB, dX) for the given input and upstream
// gradient, without touching the layer's accumulators.
func refConv2DBackward(c *Conv2D, x, dout *tensor.Tensor) (*tensor.Tensor, []float64, *tensor.Tensor) {
	n := x.Dim(0)
	ckk := c.InC * c.KH * c.KW
	oh := tensor.ConvOut(c.inH, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(c.inW, c.KW, c.Stride, c.Pad)
	ohw := oh * ow
	inSz := c.InC * c.inH * c.inW
	dw := tensor.New(c.OutC, ckk)
	db := make([]float64, c.OutC)
	dx := tensor.New(n, c.InC, c.inH, c.inW)
	cols := make([]float64, ckk*ohw)
	for i := 0; i < n; i++ {
		tensor.Im2Col(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, cols)
		colsT := tensor.FromSlice(cols, ckk, ohw)
		dyi := tensor.FromSlice(dout.Data[i*c.OutC*ohw:(i+1)*c.OutC*ohw], c.OutC, ohw)
		dw.AddInPlace(tensor.MatMulTransB(dyi, colsT))
		for oc := 0; oc < c.OutC; oc++ {
			for _, v := range dyi.Data[oc*ohw : (oc+1)*ohw] {
				db[oc] += v
			}
		}
		dcols := tensor.MatMulTransA(c.W.Value, dyi)
		tensor.Col2Im(dcols.Data, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, dx.Data[i*inSz:(i+1)*inSz])
	}
	return dw, db, dx
}

func refConv1DForward(c *Conv1D, x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	inSz := c.InC * c.inL
	out := tensor.New(n, c.OutC, ol)
	cols := make([]float64, ck*ol)
	for i := 0; i < n; i++ {
		tensor.Im2Col1D(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inL, c.K, c.Stride, c.Pad, cols)
		y := tensor.MatMul(c.W.Value, tensor.FromSlice(cols, ck, ol))
		dst := out.Data[i*c.OutC*ol : (i+1)*c.OutC*ol]
		copy(dst, y.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Value.Data[oc]
			for j := 0; j < ol; j++ {
				dst[oc*ol+j] += b
			}
		}
	}
	return out
}

func refConv1DBackward(c *Conv1D, x, dout *tensor.Tensor) (*tensor.Tensor, []float64, *tensor.Tensor) {
	n := x.Dim(0)
	ck := c.InC * c.K
	ol := c.outL
	inSz := c.InC * c.inL
	dw := tensor.New(c.OutC, ck)
	db := make([]float64, c.OutC)
	dx := tensor.New(n, c.InC, c.inL)
	cols := make([]float64, ck*ol)
	for i := 0; i < n; i++ {
		tensor.Im2Col1D(x.Data[i*inSz:(i+1)*inSz], c.InC, c.inL, c.K, c.Stride, c.Pad, cols)
		colsT := tensor.FromSlice(cols, ck, ol)
		dyi := tensor.FromSlice(dout.Data[i*c.OutC*ol:(i+1)*c.OutC*ol], c.OutC, ol)
		dw.AddInPlace(tensor.MatMulTransB(dyi, colsT))
		for oc := 0; oc < c.OutC; oc++ {
			for _, v := range dyi.Data[oc*ol : (oc+1)*ol] {
				db[oc] += v
			}
		}
		dcols := tensor.MatMulTransA(c.W.Value, dyi)
		tensor.Col2Im1D(dcols.Data, c.InC, c.inL, c.K, c.Stride, c.Pad, dx.Data[i*inSz:(i+1)*inSz])
	}
	return dw, db, dx
}

func fillNormal(t *tensor.Tensor, rng *tensor.RNG) {
	rng.FillNormal(t, 0, 1)
}

func assertClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got[i], want[i])
		}
	}
}

func TestConv2DBatchedMatchesReference(t *testing.T) {
	cases := []struct{ n, inC, h, w, outC, kh, kw, stride, pad int }{
		{1, 1, 7, 7, 3, 3, 3, 1, 1},
		{4, 2, 9, 8, 5, 3, 3, 1, 0},
		{3, 3, 10, 10, 4, 5, 5, 1, 2},
		{5, 2, 11, 11, 6, 3, 3, 2, 1},
	}
	for _, tc := range cases {
		rng := tensor.NewRNG(7)
		c := NewConv2D(tc.inC, tc.outC, tc.kh, tc.kw, tc.stride, tc.pad, tc.h, tc.w, rng)
		x := tensor.New(tc.n, tc.inC, tc.h, tc.w)
		fillNormal(x, rng)
		want := refConv2DForward(c, x)
		got := c.Forward(x, true)
		assertClose(t, "Conv2D forward", got.Data, want.Data, 1e-12)

		dout := tensor.New(got.Shape()...)
		fillNormal(dout, rng)
		wantDW, wantDB, wantDX := refConv2DBackward(c, x, dout)
		c.W.ZeroGrad()
		c.B.ZeroGrad()
		gotDX := c.Backward(dout)
		assertClose(t, "Conv2D dX", gotDX.Data, wantDX.Data, 1e-12)
		assertClose(t, "Conv2D dW", c.W.Grad.Data, wantDW.Data, 1e-12)
		assertClose(t, "Conv2D dB", c.B.Grad.Data, wantDB, 1e-12)
	}
}

func TestConv1DBatchedMatchesReference(t *testing.T) {
	cases := []struct{ n, inC, l, outC, k, stride, pad int }{
		{1, 1, 16, 4, 5, 1, 2},
		{4, 2, 20, 3, 3, 1, 0},
		{3, 2, 25, 5, 5, 3, 2},
	}
	for _, tc := range cases {
		rng := tensor.NewRNG(13)
		c := NewConv1D(tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.l, rng)
		x := tensor.New(tc.n, tc.inC, tc.l)
		fillNormal(x, rng)
		want := refConv1DForward(c, x)
		got := c.Forward(x, true)
		assertClose(t, "Conv1D forward", got.Data, want.Data, 1e-12)

		dout := tensor.New(got.Shape()...)
		fillNormal(dout, rng)
		wantDW, wantDB, wantDX := refConv1DBackward(c, x, dout)
		c.W.ZeroGrad()
		c.B.ZeroGrad()
		gotDX := c.Backward(dout)
		assertClose(t, "Conv1D dX", gotDX.Data, wantDX.Data, 1e-12)
		assertClose(t, "Conv1D dW", c.W.Grad.Data, wantDW.Data, 1e-12)
		assertClose(t, "Conv1D dB", c.B.Grad.Data, wantDB, 1e-12)
	}
}

// TestNetworkVectorRoundTripNoAlloc pins the cached-params fast path:
// after the first call, flattening into a provided buffer is free.
func TestNetworkVectorRoundTripNoAlloc(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewMLP(MLPConfig{In: 12, Classes: 3, Hidden: []int{8}}, rng)
	v := net.ParamVector()
	buf := make([]float64, net.NumParams())
	if a := testing.AllocsPerRun(10, func() { net.ParamVectorInto(buf) }); a > 0 {
		t.Fatalf("ParamVectorInto allocates %v/run", a)
	}
	assertClose(t, "ParamVectorInto", buf, v, 0)
	if a := testing.AllocsPerRun(10, func() { net.SetParamVector(buf) }); a > 0 {
		t.Fatalf("SetParamVector allocates %v/run", a)
	}
	if a := testing.AllocsPerRun(10, func() { net.ZeroGrad() }); a > 0 {
		t.Fatalf("ZeroGrad allocates %v/run", a)
	}
	if a := testing.AllocsPerRun(10, func() { net.GradVectorInto(buf) }); a > 0 {
		t.Fatalf("GradVectorInto allocates %v/run", a)
	}
}
