package nn

import (
	"fmt"

	"middle/internal/tensor"
)

// The paper's model zoo (§6.1.2): MNIST and EMNIST train on a CNN with
// 2 convolutional + 2 fully connected layers; CIFAR10 and SpeechCommands
// train on a CNN with 3 convolutional + 2 fully connected layers. The
// builders below are parameterised by input geometry and channel widths
// so the same architectures run at paper scale and at the reduced "fast"
// scale used by tests and benchmarks.

// CNN2Config describes a 2-conv/2-fc image classifier.
type CNN2Config struct {
	InC, H, W int // input geometry
	Classes   int
	C1, C2    int // conv channel widths
	Hidden    int // fully connected hidden width
}

// NewCNN2 builds conv5x5→ReLU→pool2→conv5x5→ReLU→pool2→fc→ReLU→fc.
// H and W must be divisible by 4 (two 2× poolings).
func NewCNN2(cfg CNN2Config, rng *tensor.RNG) *Network {
	if cfg.H%4 != 0 || cfg.W%4 != 0 {
		panic(fmt.Sprintf("nn: CNN2 input %dx%d not divisible by 4", cfg.H, cfg.W))
	}
	h2, w2 := cfg.H/2, cfg.W/2
	h4, w4 := cfg.H/4, cfg.W/4
	flat := cfg.C2 * h4 * w4
	return NewNetwork(
		NewConv2D(cfg.InC, cfg.C1, 5, 5, 1, 2, cfg.H, cfg.W, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(cfg.C1, cfg.C2, 5, 5, 1, 2, h2, w2, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(flat, cfg.Hidden, rng),
		NewReLU(),
		NewLinear(cfg.Hidden, cfg.Classes, rng),
	)
}

// CNN3Config describes a 3-conv/2-fc image classifier.
type CNN3Config struct {
	InC, H, W  int
	Classes    int
	C1, C2, C3 int
	Hidden     int
}

// NewCNN3 builds three conv3x3→ReLU→pool2 stages followed by fc→ReLU→fc.
// H and W must be divisible by 8 (three 2× poolings).
func NewCNN3(cfg CNN3Config, rng *tensor.RNG) *Network {
	if cfg.H%8 != 0 || cfg.W%8 != 0 {
		panic(fmt.Sprintf("nn: CNN3 input %dx%d not divisible by 8", cfg.H, cfg.W))
	}
	flat := cfg.C3 * (cfg.H / 8) * (cfg.W / 8)
	return NewNetwork(
		NewConv2D(cfg.InC, cfg.C1, 3, 3, 1, 1, cfg.H, cfg.W, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(cfg.C1, cfg.C2, 3, 3, 1, 1, cfg.H/2, cfg.W/2, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(cfg.C2, cfg.C3, 3, 3, 1, 1, cfg.H/4, cfg.W/4, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(flat, cfg.Hidden, rng),
		NewReLU(),
		NewLinear(cfg.Hidden, cfg.Classes, rng),
	)
}

// SeqCNNConfig describes the 3-conv/2-fc 1-D classifier used for the
// speech-commands-profile task (long sparse input vectors).
type SeqCNNConfig struct {
	L          int // input length
	Classes    int
	C1, C2, C3 int
	Hidden     int
}

// NewSeqCNN builds conv1d(k32,s8)→ReLU→pool4→conv1d(k8,s2)→ReLU→pool2→
// conv1d(k4,s2)→ReLU→fc→ReLU→fc for single-channel sequences.
func NewSeqCNN(cfg SeqCNNConfig, rng *tensor.RNG) *Network {
	l1 := tensor.ConvOut(cfg.L, 32, 8, 0)
	p1 := l1 / 4
	l2 := tensor.ConvOut(p1, 8, 2, 0)
	p2 := l2 / 2
	l3 := tensor.ConvOut(p2, 4, 2, 0)
	if l3 <= 0 {
		panic(fmt.Sprintf("nn: SeqCNN input length %d too short", cfg.L))
	}
	return NewNetwork(
		NewConv1D(1, cfg.C1, 32, 8, 0, cfg.L, rng),
		NewReLU(),
		NewMaxPool1D(4),
		NewConv1D(cfg.C1, cfg.C2, 8, 2, 0, p1, rng),
		NewReLU(),
		NewMaxPool1D(2),
		NewConv1D(cfg.C2, cfg.C3, 4, 2, 0, p2, rng),
		NewReLU(),
		NewFlatten(),
		NewLinear(cfg.C3*l3, cfg.Hidden, rng),
		NewReLU(),
		NewLinear(cfg.Hidden, cfg.Classes, rng),
	)
}

// MLPConfig describes a simple multi-layer perceptron, useful for the
// strongly-convex-adjacent theory experiments and fast smoke tests.
type MLPConfig struct {
	In, Classes int
	Hidden      []int
}

// NewMLP builds fc(→h1)→ReLU→…→fc(→classes). With no hidden layers it is
// multinomial logistic regression, which satisfies the paper's convexity
// assumptions (§5, Assumptions 1–2).
func NewMLP(cfg MLPConfig, rng *tensor.RNG) *Network {
	var layers []Layer
	in := cfg.In
	for _, h := range cfg.Hidden {
		layers = append(layers, NewLinear(in, h, rng), NewReLU())
		in = h
	}
	layers = append(layers, NewLinear(in, cfg.Classes, rng))
	return NewNetwork(layers...)
}
