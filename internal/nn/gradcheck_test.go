package nn

import (
	"math"
	"testing"

	"middle/internal/tensor"
)

// lossOf runs a forward pass and returns the scalar loss. Used as the
// function under numerical differentiation.
func lossOf(net *Network, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(x, false)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// checkGradients compares backprop gradients against central finite
// differences for every parameter of net. Inputs with train=false so
// stochastic layers are inactive.
func checkGradients(t *testing.T, name string, net *Network, x *tensor.Tensor, labels []int) {
	t.Helper()
	net.ZeroGrad()
	logits := net.Forward(x, false)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	net.Backward(dlogits)

	const eps = 1e-5
	for _, p := range net.Params() {
		// Check a deterministic subset of coordinates to keep runtime low:
		// every parameter tensor gets its first, middle and last element
		// plus a stride sweep.
		n := p.Value.Size()
		stride := n/7 + 1
		for i := 0; i < n; i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossOf(net, x, labels)
			p.Value.Data[i] = orig - eps
			lm := lossOf(net, x, labels)
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s: param %s[%d] grad mismatch: backprop %v, numeric %v", name, p.Name, i, got, num)
			}
		}
	}
}

func TestGradLinear(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork(NewLinear(6, 4, rng))
	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "linear", net, x, []int{0, 2, 3})
}

func TestGradMLPWithReLU(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewMLP(MLPConfig{In: 5, Classes: 3, Hidden: []int{7, 6}}, rng)
	x := tensor.New(4, 5)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "mlp", net, x, []int{0, 1, 2, 0})
}

func TestGradConv2D(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(
		NewConv2D(2, 3, 3, 3, 1, 1, 6, 6, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(3*3*3, 4, rng),
	)
	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "conv2d", net, x, []int{1, 3})
}

func TestGradConv2DStride(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := NewNetwork(
		NewConv2D(1, 2, 3, 3, 2, 0, 9, 9, rng), // stride 2, valid
		NewFlatten(),
		NewLinear(2*4*4, 3, rng),
	)
	x := tensor.New(2, 1, 9, 9)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "conv2d-stride", net, x, []int{0, 2})
}

func TestGradConv1D(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork(
		NewConv1D(1, 3, 5, 2, 1, 20, rng),
		NewReLU(),
		NewMaxPool1D(3),
		NewFlatten(),
		NewLinear(3*3, 4, rng),
	)
	x := tensor.New(2, 1, 20)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "conv1d", net, x, []int{3, 1})
}

func TestGradCNN2Full(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := NewCNN2(CNN2Config{InC: 1, H: 8, W: 8, Classes: 4, C1: 2, C2: 3, Hidden: 8}, rng)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "cnn2", net, x, []int{0, 3})
}

func TestGradCNN3Full(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewCNN3(CNN3Config{InC: 2, H: 8, W: 8, Classes: 3, C1: 2, C2: 2, C3: 3, Hidden: 6}, rng)
	x := tensor.New(2, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "cnn3", net, x, []int{2, 1})
}

func TestGradSeqCNN(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NewSeqCNN(SeqCNNConfig{L: 1600, Classes: 3, C1: 2, C2: 2, C3: 3, Hidden: 6}, rng)
	x := tensor.New(2, 1, 1600)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, "seqcnn", net, x, []int{0, 2})
}

// TestGradInputGradient checks the gradient the network returns with
// respect to its input, which on-device evaluation does not use but which
// validates the full backward chain end to end.
func TestGradInputGradient(t *testing.T) {
	rng := tensor.NewRNG(9)
	net := NewMLP(MLPConfig{In: 4, Classes: 3, Hidden: []int{5}}, rng)
	x := tensor.New(2, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 2}

	net.ZeroGrad()
	logits := net.Forward(x, false)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	dx := net.Backward(dlogits)

	const eps = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(net, x, labels)
		x.Data[i] = orig - eps
		lm := lossOf(net, x, labels)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad [%d]: backprop %v numeric %v", i, dx.Data[i], num)
		}
	}
}
