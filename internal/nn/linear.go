package nn

import (
	"middle/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b for x of shape [N, In].
type Linear struct {
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input for Backward
}

// NewLinear constructs a fully connected layer with Xavier-uniform weights.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   newParam("linear.W", in, out),
		B:   newParam("linear.B", out),
	}
	rng.XavierUniform(l.W.Value, in, out)
	return l
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(shapeError("Linear", "[N, in]", x.Shape()))
	}
	l.x = x
	y := tensor.MatMul(x, l.W.Value)
	n := y.Dim(0)
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Value.Data[j]
		}
	}
	return y
}

// Backward accumulates dW = xᵀ·dy and db = Σ rows(dy), returning dx = dy·Wᵀ.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.W.Grad.AddInPlace(tensor.MatMulTransA(l.x, dy))
	n := dy.Dim(0)
	for i := 0; i < n; i++ {
		row := dy.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	return tensor.MatMulTransB(dy, l.W.Value)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
