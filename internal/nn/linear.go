package nn

import (
	"middle/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b for x of shape [N, In].
// The layer owns its output and gradient scratch buffers; tensors
// returned by Forward/Backward are valid until the next call.
type Linear struct {
	In, Out int
	W, B    *Param

	x  *tensor.Tensor // cached input for Backward
	y  *tensor.Tensor // forward output [N, Out]
	dw *tensor.Tensor // per-step weight gradient [In, Out]
	dx *tensor.Tensor // input gradient [N, In]
}

// NewLinear constructs a fully connected layer with Xavier-uniform weights.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   newParam("linear.W", in, out),
		B:   newParam("linear.B", out),
	}
	rng.XavierUniform(l.W.Value, in, out)
	return l
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(shapeError("Linear", "[N, in]", x.Shape()))
	}
	l.x = x
	n := x.Dim(0)
	l.y = ensureTensor(l.y, n, l.Out)
	y := tensor.MatMulInto(l.y, x, l.W.Value)
	bd := l.B.Value.Data
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward accumulates dW = xᵀ·dy and db = Σ rows(dy), returning dx = dy·Wᵀ.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.dw = ensureTensor(l.dw, l.In, l.Out)
	tensor.MatMulTransAInto(l.dw, l.x, dy)
	l.W.Grad.AddInPlace(l.dw)
	n := dy.Dim(0)
	for i := 0; i < n; i++ {
		row := dy.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	l.dx = ensureTensor(l.dx, n, l.In)
	return tensor.MatMulTransBInto(l.dx, dy, l.W.Value)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
