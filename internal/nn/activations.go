package nn

import (
	"middle/internal/tensor"
)

// ReLU applies max(x, 0) elementwise. It reuses its output and gradient
// buffers across steps; returned tensors are valid until the next call.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewReLU constructs a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0), caching the active mask for Backward.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = ensureTensor(r.out, x.Shape()...)
	out := r.out
	if len(r.mask) != len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			out.Data[i] = v
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward zeroes the gradient where the activation was clipped.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	r.dx = ensureTensor(r.dx, dy.Shape()...)
	dx := r.dx
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil: ReLU has no trainable state.
func (r *ReLU) Params() []*Param { return nil }

// Flatten reshapes [N, d1, d2, ...] to [N, d1*d2*...]. It is a view: data
// is shared with the input.
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all dimensions after the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params returns nil: Flatten has no trainable state.
func (f *Flatten) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training, scaling the
// survivors by 1/(1−rate) (inverted dropout), and is the identity at
// evaluation time.
type Dropout struct {
	Rate float64
	rng  *tensor.RNG
	keep []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout constructs a dropout layer with the given drop rate in [0,1).
func NewDropout(rate float64, rng *tensor.RNG) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// Forward drops activations in train mode and passes through otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate <= 0 {
		d.keep = nil
		return x
	}
	d.out = ensureTensor(d.out, x.Shape()...)
	out := d.out
	if len(d.keep) != len(out.Data) {
		d.keep = make([]bool, len(out.Data))
	}
	scale := 1.0 / (1.0 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.keep[i] = false
			out.Data[i] = 0
		} else {
			d.keep[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward propagates gradients only through kept activations.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return dy
	}
	d.dx = ensureTensor(d.dx, dy.Shape()...)
	dx := d.dx
	scale := 1.0 / (1.0 - d.Rate)
	for i, v := range dy.Data {
		if d.keep[i] {
			dx.Data[i] = v * scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil: Dropout has no trainable state.
func (d *Dropout) Params() []*Param { return nil }
