package core

import (
	"math"

	"middle/internal/hfl"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// oortSelect is the Oort-style statistical-utility selection the paper's
// OORT, Greedy and Ensemble baselines share (§6.1.3): pick the K devices
// with the highest utility d_m·sqrt(mean loss²) from their latest
// training round. Devices that have never trained get +Inf so they are
// explored first (Oort's exploration term with equal system utilities).
func oortSelect(v hfl.View, candidates []int, k int, rng *tensor.RNG) []int {
	return hfl.TopKByScore(candidates, func(m int) float64 {
		u := v.StatUtility(m)
		if math.IsNaN(u) {
			return math.Inf(1)
		}
		return u
	}, k, rng)
}

// randomSelect picks k candidates uniformly without replacement.
func randomSelect(candidates []int, k int, rng *tensor.RNG) []int {
	idx := append([]int(nil), candidates...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Oort is the paper's OORT baseline: statistical-utility top-K selection
// and no on-device aggregation — moved devices adopt the edge model
// directly.
type Oort struct{}

// NewOort returns the OORT baseline strategy.
func NewOort() *Oort { return &Oort{} }

// Name implements hfl.Strategy.
func (*Oort) Name() string { return "OORT" }

// Select implements statistical-utility top-K selection.
func (*Oort) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return oortSelect(v, candidates, k, rng)
}

// InitLocal always starts from the downloaded edge model.
func (*Oort) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	return clone(v.EdgeModel(edge))
}

// FedMes adapts Han et al.'s multi-edge-server scheme to the mobility
// setting as the paper does: devices moving across edges play the role
// of overlap devices and average the two models 50/50; selection is
// uniformly random.
type FedMes struct{}

// NewFedMes returns the FedMes baseline strategy.
func NewFedMes() *FedMes { return &FedMes{} }

// Name implements hfl.Strategy.
func (*FedMes) Name() string { return "FedMes" }

// Select picks devices uniformly at random.
func (*FedMes) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return randomSelect(candidates, k, rng)
}

// InitLocal averages edge and carried models 50/50 for moved devices.
func (*FedMes) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	if !moved {
		return clone(v.EdgeModel(edge))
	}
	return simil.Blend(v.EdgeModel(edge), v.LocalModel(device), 0.5)
}

// Greedy keeps the carried local model wholesale when a device moves
// (no blending at all) and selects by statistical utility, as in the
// paper's Greedy baseline.
type Greedy struct{}

// NewGreedy returns the Greedy baseline strategy.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements hfl.Strategy.
func (*Greedy) Name() string { return "Greedy" }

// Select implements statistical-utility top-K selection.
func (*Greedy) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return oortSelect(v, candidates, k, rng)
}

// InitLocal keeps the carried local model entirely for moved devices.
func (*Greedy) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	if !moved {
		return clone(v.EdgeModel(edge))
	}
	return clone(v.LocalModel(device))
}

// Ensemble combines OORT selection with FedMes-style 50/50 on-device
// averaging, the paper's fourth baseline.
type Ensemble struct{}

// NewEnsemble returns the Ensemble baseline strategy.
func NewEnsemble() *Ensemble { return &Ensemble{} }

// Name implements hfl.Strategy.
func (*Ensemble) Name() string { return "Ensemble" }

// Select implements statistical-utility top-K selection.
func (*Ensemble) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return oortSelect(v, candidates, k, rng)
}

// InitLocal averages edge and carried models 50/50 for moved devices.
func (*Ensemble) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	if !moved {
		return clone(v.EdgeModel(edge))
	}
	return simil.Blend(v.EdgeModel(edge), v.LocalModel(device), 0.5)
}

// General is classical HFL (the "General" method of the paper's
// motivation §2): random selection, no on-device aggregation.
type General struct{}

// NewGeneral returns the plain-HFL strategy.
func NewGeneral() *General { return &General{} }

// Name implements hfl.Strategy.
func (*General) Name() string { return "General" }

// Select picks devices uniformly at random.
func (*General) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return randomSelect(candidates, k, rng)
}

// InitLocal always starts from the downloaded edge model.
func (*General) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	return clone(v.EdgeModel(edge))
}

// FixedAlpha blends every moved device's models with a constant
// coefficient α (local-model weight), the simplification the paper's
// theoretical analysis (§5) studies. With α = 0.5 it coincides with
// FedMes/Ensemble initialisation; selection is random so aggregation is
// the only treatment.
type FixedAlpha struct {
	Alpha float64
}

// NewFixedAlpha returns the fixed-α analysis strategy.
func NewFixedAlpha(alpha float64) *FixedAlpha { return &FixedAlpha{Alpha: alpha} }

// Name implements hfl.Strategy.
func (f *FixedAlpha) Name() string { return "FixedAlpha" }

// Select picks devices uniformly at random.
func (f *FixedAlpha) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return randomSelect(candidates, k, rng)
}

// InitLocal blends with the constant coefficient for moved devices.
func (f *FixedAlpha) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	if !moved {
		return clone(v.EdgeModel(edge))
	}
	return simil.Blend(v.EdgeModel(edge), v.LocalModel(device), f.Alpha)
}
