// Package core implements the MIDDLE strategy — mobility-driven
// on-device model aggregation (paper Eq. 9) plus similarity-guided
// in-edge device selection (Eq. 12) — together with the four baselines
// the paper compares against (§6.1.3): OORT, FedMes, Greedy and
// Ensemble, and the plain "General" HFL policy used in the motivation
// experiments.
package core

import (
	"middle/internal/hfl"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// Middle is the paper's proposed strategy.
//
//   - Selection: each edge picks the K devices whose accumulated update
//     Δw_m = w_m − w_c is *least* similar to the cloud model
//     (TOPK(−U(w_c, Δw_m)), Eq. 12) — devices carrying information the
//     global model has not absorbed yet.
//   - Initialisation: a device that moved across edges blends the
//     downloaded edge model with its carried local model using the
//     similarity utility as the blending weight (Eq. 9); devices that
//     stayed start from the edge model as in classical HFL.
type Middle struct{}

// NewMiddle returns the MIDDLE strategy.
func NewMiddle() *Middle { return &Middle{} }

// Name implements hfl.Strategy.
func (*Middle) Name() string { return "MIDDLE" }

// Select implements Eq. 12. When the view carries a selection norm cap
// (hfl.NormCapView), devices whose accumulated update exceeds the cap
// score hfl.CappedScore instead — Eq. 12's preference for divergent
// updates would otherwise hand adversaries a selection advantage.
// Scoring goes through hfl.SelectionInfo, so lazily-stored populations
// answer for untrained candidates without an O(dim) sweep.
func (*Middle) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	normCap := 0.0
	if nc, ok := v.(hfl.NormCapView); ok {
		normCap = nc.SelectionNormCap()
	}
	return hfl.TopKByScore(candidates, func(m int) float64 {
		u, dn := hfl.SelectionInfo(v, m)
		if normCap > 0 && dn > normCap {
			return hfl.CappedScore
		}
		return -u
	}, k, rng)
}

// InitLocal implements Eq. 9 for moved devices and the classical
// edge-model start otherwise (Algorithm 1 lines 4–7).
func (*Middle) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	edgeModel := v.EdgeModel(edge)
	if !moved {
		return clone(edgeModel)
	}
	agg, _ := simil.OnDeviceAggregate(edgeModel, v.LocalModel(device))
	return agg
}

func clone(v []float64) []float64 { return append([]float64(nil), v...) }
