package core

import (
	"fmt"
	"sort"

	"middle/internal/hfl"
)

// factories maps strategy names (case-sensitive, as the paper spells
// them) to constructors.
var factories = map[string]func() hfl.Strategy{
	"MIDDLE":     func() hfl.Strategy { return NewMiddle() },
	"OORT":       func() hfl.Strategy { return NewOort() },
	"FedMes":     func() hfl.Strategy { return NewFedMes() },
	"Greedy":     func() hfl.Strategy { return NewGreedy() },
	"Ensemble":   func() hfl.Strategy { return NewEnsemble() },
	"General":    func() hfl.Strategy { return NewGeneral() },
	"MIDDLE-Sel": func() hfl.Strategy { return NewMiddleSelOnly() },
	"MIDDLE-Agg": func() hfl.Strategy { return NewMiddleAggOnly() },
}

// ByName constructs a strategy from its registry name.
func ByName(name string) (hfl.Strategy, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown strategy %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered strategy names in sorted order.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EvaluationSet returns the five strategies of the paper's main
// comparison (Figures 6 and 7) in paper order.
func EvaluationSet() []hfl.Strategy {
	return []hfl.Strategy{NewMiddle(), NewOort(), NewFedMes(), NewGreedy(), NewEnsemble()}
}
