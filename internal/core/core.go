package core
