package core

import (
	"testing"

	"middle/internal/hfl"
	"middle/internal/tensor"
)

// cappedView wraps fakeView with a SelectionNormCap, making it an
// hfl.NormCapView the MIDDLE strategy can interrogate.
type cappedView struct {
	*fakeView
	cap float64
}

func (c *cappedView) SelectionNormCap() float64 { return c.cap }

var _ hfl.NormCapView = (*cappedView)(nil)

// TestMiddleSelectionNormCap pins the Eq. 12 fix: an attacker whose
// accumulated update is enormous looks maximally "divergent" and is
// preferentially selected by the uncapped score, but drops to
// hfl.CappedScore — below every honest device — once the norm cap is on.
func TestMiddleSelectionNormCap(t *testing.T) {
	v := newFakeView()
	v.cloud = []float64{1, 0}
	v.locals[1] = []float64{2, 0}     // Δw = (1,0): aligned, score −1
	v.locals[2] = []float64{1, 1}     // Δw = (0,1): honest divergence, score 0
	v.locals[9] = []float64{1, -1000} // Δw = (0,−1000): attacker-sized update, score 0 uncapped

	// Uncapped, the attacker's orthogonal blow-up ties the best honest
	// score and wins a selection slot.
	sel := NewMiddle().Select(v, 0, []int{1, 2, 9}, 2, tensor.NewRNG(4))
	set := map[int]bool{}
	for _, m := range sel {
		set[m] = true
	}
	if !set[9] || !set[2] {
		t.Fatalf("uncapped selection %v, want the two score-0 devices {2, 9}", sel)
	}

	// Capped, device 9's update norm (1000) exceeds the cap, its score
	// collapses to CappedScore and the aligned honest device outranks it.
	cv := &cappedView{fakeView: v, cap: 10}
	sel = NewMiddle().Select(cv, 0, []int{1, 2, 9}, 2, tensor.NewRNG(4))
	set = map[int]bool{}
	for _, m := range sel {
		set[m] = true
	}
	if set[9] {
		t.Fatalf("norm cap 10 still selected the attacker: %v", sel)
	}
	if !set[1] || !set[2] {
		t.Fatalf("capped selection %v, want honest devices {1, 2}", sel)
	}

	// A cap of zero means uncapped: identical to the plain score path.
	zv := &cappedView{fakeView: v, cap: 0}
	sel = NewMiddle().Select(zv, 0, []int{1, 2, 9}, 2, tensor.NewRNG(4))
	set = map[int]bool{}
	for _, m := range sel {
		set[m] = true
	}
	if !set[9] {
		t.Fatalf("zero cap changed selection: %v", sel)
	}
}
