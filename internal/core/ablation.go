package core

import (
	"middle/internal/hfl"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// MIDDLE combines two mechanisms; the ablation strategies isolate each
// so their individual contributions can be measured (the "ablation"
// targets of DESIGN.md).

// MiddleSelOnly keeps MIDDLE's Eq. 12 similarity-guided device selection
// but disables on-device aggregation (moved devices adopt the edge model
// directly, as in classical HFL).
type MiddleSelOnly struct{}

// NewMiddleSelOnly returns the selection-only ablation.
func NewMiddleSelOnly() *MiddleSelOnly { return &MiddleSelOnly{} }

// Name implements hfl.Strategy.
func (*MiddleSelOnly) Name() string { return "MIDDLE-Sel" }

// Select implements Eq. 12, via the hfl.SelectionInfo fast path.
func (*MiddleSelOnly) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return hfl.TopKByScore(candidates, func(m int) float64 {
		u, _ := hfl.SelectionInfo(v, m)
		return -u
	}, k, rng)
}

// InitLocal always starts from the downloaded edge model.
func (*MiddleSelOnly) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	return clone(v.EdgeModel(edge))
}

// MiddleAggOnly keeps MIDDLE's Eq. 9 similarity-weighted on-device
// aggregation but replaces the selection with uniform random sampling.
type MiddleAggOnly struct{}

// NewMiddleAggOnly returns the aggregation-only ablation.
func NewMiddleAggOnly() *MiddleAggOnly { return &MiddleAggOnly{} }

// Name implements hfl.Strategy.
func (*MiddleAggOnly) Name() string { return "MIDDLE-Agg" }

// Select picks devices uniformly at random.
func (*MiddleAggOnly) Select(v hfl.View, edge int, candidates []int, k int, rng *tensor.RNG) []int {
	return randomSelect(candidates, k, rng)
}

// InitLocal implements Eq. 9 for moved devices.
func (*MiddleAggOnly) InitLocal(v hfl.View, device, edge int, moved bool) []float64 {
	edgeModel := v.EdgeModel(edge)
	if !moved {
		return clone(edgeModel)
	}
	agg, _ := simil.OnDeviceAggregate(edgeModel, v.LocalModel(device))
	return agg
}

// AblationSet returns MIDDLE, its two single-mechanism ablations and the
// no-mechanism control in comparison order.
func AblationSet() []hfl.Strategy {
	return []hfl.Strategy{NewMiddle(), NewMiddleSelOnly(), NewMiddleAggOnly(), NewGeneral()}
}
