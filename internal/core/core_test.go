package core

import (
	"math"
	"testing"

	"middle/internal/hfl"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// fakeView is a hand-wired hfl.View for strategy unit tests.
type fakeView struct {
	step    int
	cloud   []float64
	edges   map[int][]float64
	locals  map[int][]float64
	sizes   map[int]int
	utils   map[int]float64
	trained map[int]int
}

func newFakeView() *fakeView {
	return &fakeView{
		cloud:   []float64{1, 0},
		edges:   map[int][]float64{0: {1, 0}, 1: {0, 1}},
		locals:  map[int][]float64{},
		sizes:   map[int]int{},
		utils:   map[int]float64{},
		trained: map[int]int{},
	}
}

func (f *fakeView) Step() int                  { return f.step }
func (f *fakeView) CloudModel() []float64      { return f.cloud }
func (f *fakeView) EdgeModel(n int) []float64  { return f.edges[n] }
func (f *fakeView) LocalModel(m int) []float64 { return f.locals[m] }
func (f *fakeView) DataSize(m int) int         { return f.sizes[m] }
func (f *fakeView) StatUtility(m int) float64 {
	if u, ok := f.utils[m]; ok {
		return u
	}
	return math.NaN()
}
func (f *fakeView) LastTrained(m int) int {
	if t, ok := f.trained[m]; ok {
		return t
	}
	return -1
}

var _ hfl.View = (*fakeView)(nil)

func TestMiddleSelectPrefersDivergentDevices(t *testing.T) {
	v := newFakeView()
	v.cloud = []float64{1, 0}
	// Device 1's update is parallel to the cloud model (already learned);
	// device 2's update is orthogonal (new information); device 3's is
	// opposed (utility clipped to 0, same as orthogonal — both score 0,
	// but higher than device 1's negative score).
	v.locals[1] = []float64{2, 0} // Δw = (1,0): U = 1, score −1
	v.locals[2] = []float64{1, 1} // Δw = (0,1): U = 0, score 0
	v.locals[3] = []float64{0, 0} // Δw = (−1,0): U clipped, score 0
	got := NewMiddle().Select(v, 0, []int{1, 2, 3}, 2, tensor.NewRNG(4))
	set := map[int]bool{}
	for _, m := range got {
		set[m] = true
	}
	if set[1] {
		t.Fatalf("MIDDLE selected the aligned device: %v", got)
	}
	if !set[2] || !set[3] {
		t.Fatalf("MIDDLE selection = %v, want {2, 3}", got)
	}
}

func TestMiddleInitLocalStayed(t *testing.T) {
	v := newFakeView()
	v.locals[7] = []float64{9, 9}
	got := NewMiddle().InitLocal(v, 7, 0, false)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("stayed device init %v, want edge model", got)
	}
	got[0] = 42
	if v.edges[0][0] != 1 {
		t.Fatal("InitLocal aliased the edge model")
	}
}

func TestMiddleInitLocalMovedMatchesEq9(t *testing.T) {
	v := newFakeView()
	v.locals[7] = []float64{1, 1}
	got := NewMiddle().InitLocal(v, 7, 0, true)
	want, u := simil.OnDeviceAggregate(v.edges[0], v.locals[7])
	if u <= 0 || u >= 1 {
		t.Fatalf("test setup degenerate: u = %v", u)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("InitLocal = %v, want Eq.9 result %v", got, want)
		}
	}
}

func TestMiddleInitLocalMovedOpposedKeepsEdgeModel(t *testing.T) {
	v := newFakeView()
	v.locals[7] = []float64{-1, 0} // opposed to edge model (1, 0)
	got := NewMiddle().InitLocal(v, 7, 0, true)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("opposed local model leaked into init: %v", got)
	}
}

func TestOortSelectExploresUnseenFirst(t *testing.T) {
	v := newFakeView()
	v.utils[1] = 100
	v.utils[2] = 50
	// Device 3 never trained: must be explored before the known ones.
	got := NewOort().Select(v, 0, []int{1, 2, 3}, 2, tensor.NewRNG(1))
	set := map[int]bool{}
	for _, m := range got {
		set[m] = true
	}
	if !set[3] {
		t.Fatalf("OORT did not explore unseen device: %v", got)
	}
	if !set[1] {
		t.Fatalf("OORT skipped the highest-utility device: %v", got)
	}
}

func TestOortInitIgnoresLocalModel(t *testing.T) {
	v := newFakeView()
	v.locals[4] = []float64{5, 5}
	got := NewOort().InitLocal(v, 4, 1, true)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("OORT moved-device init %v, want edge model", got)
	}
}

func TestFedMesBlendsHalfHalf(t *testing.T) {
	v := newFakeView()
	v.locals[4] = []float64{1, 1}
	got := NewFedMes().InitLocal(v, 4, 0, true)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("FedMes moved init %v, want [1 0.5]", got)
	}
	stay := NewFedMes().InitLocal(v, 4, 0, false)
	if stay[0] != 1 || stay[1] != 0 {
		t.Fatalf("FedMes stay init %v", stay)
	}
}

func TestGreedyKeepsLocalModelWhenMoved(t *testing.T) {
	v := newFakeView()
	v.locals[4] = []float64{7, 8}
	got := NewGreedy().InitLocal(v, 4, 0, true)
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("Greedy moved init %v, want carried model", got)
	}
	got[0] = 0
	if v.locals[4][0] != 7 {
		t.Fatal("Greedy aliased the local model")
	}
}

func TestEnsembleCombinesOortSelectionWithBlending(t *testing.T) {
	v := newFakeView()
	v.utils[1] = 10
	v.utils[2] = 90
	v.locals[2] = []float64{1, 1}
	sel := NewEnsemble().Select(v, 0, []int{1, 2}, 1, tensor.NewRNG(2))
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("Ensemble selection %v, want [2]", sel)
	}
	init := NewEnsemble().InitLocal(v, 2, 0, true)
	if math.Abs(init[0]-1) > 1e-12 || math.Abs(init[1]-0.5) > 1e-12 {
		t.Fatalf("Ensemble moved init %v", init)
	}
}

func TestGeneralRandomSelectionRespectsK(t *testing.T) {
	v := newFakeView()
	cands := []int{1, 2, 3, 4, 5}
	got := NewGeneral().Select(v, 0, cands, 3, tensor.NewRNG(3))
	if len(got) != 3 {
		t.Fatalf("General selected %d", len(got))
	}
	seen := map[int]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("General selected %d twice", m)
		}
		seen[m] = true
	}
	// k > len(candidates) caps.
	if got := NewGeneral().Select(v, 0, []int{1}, 5, tensor.NewRNG(3)); len(got) != 1 {
		t.Fatalf("General overlong selection %v", got)
	}
}

func TestFixedAlphaBlends(t *testing.T) {
	v := newFakeView()
	v.locals[4] = []float64{1, 1}
	got := NewFixedAlpha(0.25).InitLocal(v, 4, 0, true)
	// (1−0.25)·(1,0) + 0.25·(1,1) = (1, 0.25)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-0.25) > 1e-12 {
		t.Fatalf("FixedAlpha init %v", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName accepted unknown strategy")
	}
	if len(EvaluationSet()) != 5 {
		t.Fatalf("EvaluationSet has %d strategies", len(EvaluationSet()))
	}
	if EvaluationSet()[0].Name() != "MIDDLE" {
		t.Fatal("EvaluationSet must lead with MIDDLE")
	}
}

func TestMiddleSelOnly(t *testing.T) {
	v := newFakeView()
	v.cloud = []float64{1, 0}
	v.locals[1] = []float64{2, 0} // aligned update: worst score
	v.locals[2] = []float64{1, 1} // divergent update: best score
	sel := NewMiddleSelOnly().Select(v, 0, []int{1, 2}, 1, tensor.NewRNG(1))
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("MIDDLE-Sel selection %v, want [2]", sel)
	}
	// Aggregation must be disabled: moved device adopts the edge model.
	init := NewMiddleSelOnly().InitLocal(v, 2, 0, true)
	if init[0] != 1 || init[1] != 0 {
		t.Fatalf("MIDDLE-Sel moved init %v, want edge model", init)
	}
}

func TestMiddleAggOnly(t *testing.T) {
	v := newFakeView()
	v.locals[2] = []float64{1, 1}
	// Aggregation follows Eq. 9 exactly.
	got := NewMiddleAggOnly().InitLocal(v, 2, 0, true)
	want, _ := simil.OnDeviceAggregate(v.edges[0], v.locals[2])
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MIDDLE-Agg init %v, want %v", got, want)
		}
	}
	// Selection is random but must respect k and uniqueness.
	sel := NewMiddleAggOnly().Select(v, 0, []int{1, 2, 3, 4}, 2, tensor.NewRNG(2))
	if len(sel) != 2 || sel[0] == sel[1] {
		t.Fatalf("MIDDLE-Agg selection %v", sel)
	}
}

func TestAblationSetComposition(t *testing.T) {
	set := AblationSet()
	want := []string{"MIDDLE", "MIDDLE-Sel", "MIDDLE-Agg", "General"}
	if len(set) != len(want) {
		t.Fatalf("ablation set size %d", len(set))
	}
	for i, s := range set {
		if s.Name() != want[i] {
			t.Fatalf("ablation[%d] = %s, want %s", i, s.Name(), want[i])
		}
	}
}
