// Package theory validates the paper's convergence analysis (§5) on a
// federated objective that satisfies Assumptions 1–4 exactly: each
// device's loss is the strongly convex quadratic
//
//	F_m(w) = ½‖w − c_m‖²   (µ = β = 1),
//
// with bounded-variance stochastic gradients. The global optimum is
// available in closed form, so E[F(w)] − F* is measured exactly — the
// quantity Theorem 1 bounds — and Remark 1's prediction (the error term
// contributed by on-device aggregation decreases monotonically in the
// global mobility P) can be checked empirically.
package theory

import (
	"fmt"
	"math"

	"middle/internal/simil"
	"middle/internal/tensor"
)

// Quadratic is the federated quadratic objective. Device m's centre c_m
// determines its local optimum; per-edge clustering of centres creates
// the Non-IID structure across edges.
type Quadratic struct {
	Dim      int
	Centers  [][]float64
	Weights  []float64 // h_m, normalised to sum 1
	NoiseStd float64   // std of each stochastic-gradient coordinate (Assumption 3)
}

// NewClusteredQuadratic builds a quadratic objective whose device
// centres cluster by initial edge: edge n's devices share a base centre
// (spread apart across edges) plus small per-device offsets. All h_m are
// equal. This is the Non-IID-across-edges setting of the paper.
func NewClusteredQuadratic(dim, edges, devices int, spread, withinEdge, noiseStd float64, seed int64) *Quadratic {
	if devices < 1 || edges < 1 || dim < 1 {
		panic(fmt.Sprintf("theory: bad sizes dim=%d edges=%d devices=%d", dim, edges, devices))
	}
	bases := make([][]float64, edges)
	for n := range bases {
		rng := tensor.Split(seed, int64(500+n))
		b := make([]float64, dim)
		for j := range b {
			b[j] = spread * rng.NormFloat64()
		}
		bases[n] = b
	}
	centers := make([][]float64, devices)
	weights := make([]float64, devices)
	for m := range centers {
		rng := tensor.Split(seed, int64(9000+m))
		e := m % edges
		c := make([]float64, dim)
		for j := range c {
			c[j] = bases[e][j] + withinEdge*rng.NormFloat64()
		}
		centers[m] = c
		weights[m] = 1 / float64(devices)
	}
	return &Quadratic{Dim: dim, Centers: centers, Weights: weights, NoiseStd: noiseStd}
}

// WStar returns the global optimum w* = Σ h_m c_m.
func (q *Quadratic) WStar() []float64 {
	w := make([]float64, q.Dim)
	for m, c := range q.Centers {
		for j := range w {
			w[j] += q.Weights[m] * c[j]
		}
	}
	return w
}

// F evaluates the global objective F(w) = Σ h_m ½‖w − c_m‖².
func (q *Quadratic) F(w []float64) float64 {
	s := 0.0
	for m, c := range q.Centers {
		d := 0.0
		for j := range w {
			diff := w[j] - c[j]
			d += diff * diff
		}
		s += q.Weights[m] * 0.5 * d
	}
	return s
}

// FStar returns the optimal value F(w*).
func (q *Quadratic) FStar() float64 { return q.F(q.WStar()) }

// Grad returns a stochastic gradient of F_m at w: (w − c_m) plus
// N(0, NoiseStd²) noise per coordinate, satisfying Assumption 3 with
// σ² = Dim·NoiseStd².
func (q *Quadratic) Grad(m int, w []float64, rng *tensor.RNG) []float64 {
	g := make([]float64, q.Dim)
	for j := range g {
		g[j] = w[j] - q.Centers[m][j] + q.NoiseStd*rng.NormFloat64()
	}
	return g
}

// RunConfig parameterises one fixed-α hierarchical run of the §5
// setting: full device participation, Markov mobility P, on-device
// blending with constant coefficient α for moved devices, edge
// aggregation every step and cloud aggregation every T_c steps, with
// the Theorem 1 learning rate η_t = 2/(µ(γ+t)).
type RunConfig struct {
	Edges         int
	Devices       int
	P             float64 // global mobility
	Alpha         float64 // local-model blending coefficient (0 = classical HFL)
	LocalSteps    int     // I
	CloudInterval int     // T_c
	Steps         int     // T
	Mu            float64 // strong convexity (1 for the plain quadratic)
	Gamma         float64 // γ = max(8β/µ, I)
	Seed          int64
}

// Result reports one realisation of the fixed-α training process.
type Result struct {
	// Gap is the final optimality gap F(w_c) − F*, the quantity
	// Theorem 1 bounds.
	Gap float64
	// StartDivergence is the run-average of Σ_m h_m‖ŵ_m − w̄‖², the
	// divergence between the devices' local-training starting points and
	// the global average model. This is the term the proof sketch bounds
	// via α and P (Eq. 19): on-device aggregation shrinks it, and more
	// mobility gives aggregation more opportunities to act.
	StartDivergence float64
}

// Run simulates the fixed-α training process and returns the final
// optimality gap and the average starting-point divergence (a single
// realisation; average over seeds for expectations).
func Run(q *Quadratic, cfg RunConfig) Result {
	if cfg.Mu <= 0 {
		cfg.Mu = 1
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = math.Max(8/cfg.Mu, float64(cfg.LocalSteps))
	}
	devices := cfg.Devices
	rng := tensor.Split(cfg.Seed, 0x7E03)
	// All models start at the origin.
	cloud := make([]float64, q.Dim)
	edges := make([][]float64, cfg.Edges)
	for n := range edges {
		edges[n] = make([]float64, q.Dim)
	}
	locals := make([][]float64, devices)
	for m := range locals {
		locals[m] = make([]float64, q.Dim)
	}
	membership := make([]int, devices)
	for m := range membership {
		membership[m] = m % cfg.Edges
	}
	divergenceSum, divergenceCount := 0.0, 0
	for t := 1; t <= cfg.Steps; t++ {
		// Mobility: move with probability P to a uniform other edge.
		moved := make([]bool, devices)
		if cfg.Edges > 1 {
			for m := range membership {
				if rng.Float64() < cfg.P {
					next := rng.Intn(cfg.Edges - 1)
					if next >= membership[m] {
						next++
					}
					membership[m] = next
					moved[m] = true
				}
			}
		}
		eta := 2 / (cfg.Mu * (cfg.Gamma + float64(t)))
		// Full participation: every device trains.
		byEdge := make([][]int, cfg.Edges)
		for m, e := range membership {
			byEdge[e] = append(byEdge[e], m)
		}
		starts := make([][]float64, devices)
		for m := 0; m < devices; m++ {
			if moved[m] && cfg.Alpha > 0 {
				starts[m] = simil.Blend(edges[membership[m]], locals[m], cfg.Alpha)
			} else {
				starts[m] = append([]float64(nil), edges[membership[m]]...)
			}
		}
		// Record Σ h_m‖ŵ_m − w̄‖² where w̄ is the h-weighted average of
		// the starting points (the proof's virtual sequence).
		wbar := simil.WeightedAverage(starts, q.Weights)
		for m := 0; m < devices; m++ {
			d := 0.0
			for j := range wbar {
				diff := starts[m][j] - wbar[j]
				d += diff * diff
			}
			divergenceSum += q.Weights[m] * d
		}
		divergenceCount++
		for m := 0; m < devices; m++ {
			w := starts[m]
			for i := 0; i < cfg.LocalSteps; i++ {
				g := q.Grad(m, w, rng)
				for j := range w {
					w[j] -= eta * g[j]
				}
			}
			locals[m] = w
		}
		for n := range byEdge {
			if len(byEdge[n]) == 0 {
				continue
			}
			vecs := make([][]float64, len(byEdge[n]))
			ws := make([]float64, len(byEdge[n]))
			for i, m := range byEdge[n] {
				vecs[i] = locals[m]
				ws[i] = q.Weights[m]
			}
			edges[n] = simil.WeightedAverage(vecs, ws)
		}
		if t%cfg.CloudInterval == 0 {
			vecs := make([][]float64, 0, cfg.Edges)
			ws := make([]float64, 0, cfg.Edges)
			for n := range edges {
				if len(byEdge[n]) == 0 {
					continue
				}
				weight := 0.0
				for _, m := range byEdge[n] {
					weight += q.Weights[m]
				}
				vecs = append(vecs, edges[n])
				ws = append(ws, weight)
			}
			if len(vecs) > 0 {
				cloud = simil.WeightedAverage(vecs, ws)
			}
			for n := range edges {
				edges[n] = append([]float64(nil), cloud...)
			}
			for m := range locals {
				locals[m] = append([]float64(nil), cloud...)
			}
		}
	}
	res := Result{Gap: q.F(cloud) - q.FStar()}
	if divergenceCount > 0 {
		res.StartDivergence = divergenceSum / float64(divergenceCount)
	}
	return res
}

// RunAveraged averages Run over several seeds, the empirical counterpart
// of the expectation in Theorem 1.
func RunAveraged(q *Quadratic, cfg RunConfig, seeds int) Result {
	var sum Result
	for i := 0; i < seeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		r := Run(q, c)
		sum.Gap += r.Gap
		sum.StartDivergence += r.StartDivergence
	}
	sum.Gap /= float64(seeds)
	sum.StartDivergence /= float64(seeds)
	return sum
}

// BoundParams carries the constants of Theorem 1's right-hand side.
type BoundParams struct {
	Beta, Mu  float64 // smoothness and strong convexity
	Gamma     float64 // γ = max(8β/µ, I)
	T         int     // total steps
	B         float64 // Σ h_m² σ_m² + 6βΓ
	InitDist2 float64 // E‖w¹ − w*‖²
	I         int     // local steps
	G2        float64 // G², the uniform bound on E‖∇F_m(w,ξ)‖²
	Alpha     float64
	P         float64
}

// Bound evaluates the Theorem 1 right-hand side:
//
//	β/(γ+T+1)·(2B/µ² + (γ+1)/2·E‖w¹−w*‖²) + 8βI²G²/(µ²γ²α(1−α)P).
func Bound(p BoundParams) float64 {
	if p.Alpha <= 0 || p.Alpha >= 1 || p.P <= 0 {
		return math.Inf(1)
	}
	main := p.Beta / (p.Gamma + float64(p.T) + 1) * (2*p.B/(p.Mu*p.Mu) + (p.Gamma+1)/2*p.InitDist2)
	mobility := 8 * p.Beta * float64(p.I*p.I) * p.G2 / (p.Mu * p.Mu * p.Gamma * p.Gamma * p.Alpha * (1 - p.Alpha) * p.P)
	return main + mobility
}

// BoundDerivativeInP returns ∂Bound/∂P = −8βI²G²/(µ²γ²α(1−α)P²)
// (Remark 1, Eq. 20) — strictly negative for α ∈ (0,1), P ∈ (0,1].
func BoundDerivativeInP(p BoundParams) float64 {
	return -8 * p.Beta * float64(p.I*p.I) * p.G2 / (p.Mu * p.Mu * p.Gamma * p.Gamma * p.Alpha * (1 - p.Alpha) * p.P * p.P)
}
