package theory

import (
	"math"
	"testing"

	"middle/internal/tensor"
)

func testObjective() *Quadratic {
	return NewClusteredQuadratic(8, 4, 16, 2.0, 0.3, 0.2, 42)
}

func TestWStarMinimizesF(t *testing.T) {
	q := testObjective()
	w := q.WStar()
	fstar := q.F(w)
	rng := tensor.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		probe := append([]float64(nil), w...)
		for j := range probe {
			probe[j] += 0.5 * rng.NormFloat64()
		}
		if q.F(probe) < fstar-1e-12 {
			t.Fatalf("found point below F*: %v < %v", q.F(probe), fstar)
		}
	}
}

func TestGradUnbiasedAtCenter(t *testing.T) {
	q := testObjective()
	rng := tensor.NewRNG(2)
	// At w = c_m the deterministic gradient is zero; the stochastic one
	// must average to ~0.
	m := 3
	sum := make([]float64, q.Dim)
	n := 3000
	for i := 0; i < n; i++ {
		g := q.Grad(m, q.Centers[m], rng)
		for j := range sum {
			sum[j] += g[j]
		}
	}
	for j := range sum {
		if math.Abs(sum[j]/float64(n)) > 0.03 {
			t.Fatalf("gradient biased at coordinate %d: %v", j, sum[j]/float64(n))
		}
	}
}

func TestRunConvergesTowardOptimum(t *testing.T) {
	q := testObjective()
	gap := Run(q, RunConfig{
		Edges: 4, Devices: 16, P: 0.3, Alpha: 0.3,
		LocalSteps: 5, CloudInterval: 5, Steps: 200, Seed: 1,
	}).Gap
	initGap := q.F(make([]float64, q.Dim)) - q.FStar()
	if gap > initGap*0.2 {
		t.Fatalf("fixed-α run did not converge: gap %v (initial %v)", gap, initGap)
	}
	if gap < 0 {
		t.Fatalf("gap below optimal: %v", gap)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	q := testObjective()
	cfg := RunConfig{Edges: 4, Devices: 16, P: 0.5, Alpha: 0.4, LocalSteps: 3, CloudInterval: 5, Steps: 50, Seed: 9}
	if Run(q, cfg) != Run(q, cfg) {
		t.Fatal("Run not deterministic for identical seeds")
	}
}

// TestRemark1DivergenceShrinksWithAggregation checks the mechanism the
// §5 proof relies on: with fixed-α on-device aggregation, the divergence
// between local starting points and the global average is smaller than
// without aggregation, because moved devices pull their starting points
// toward information from other edges.
func TestRemark1DivergenceShrinksWithAggregation(t *testing.T) {
	q := testObjective()
	base := RunConfig{
		Edges: 4, Devices: 16, P: 0.4,
		LocalSteps: 5, CloudInterval: 10, Steps: 100, Seed: 3,
	}
	withAgg := base
	withAgg.Alpha = 0.5
	noAgg := base
	noAgg.Alpha = 0
	dAgg := RunAveraged(q, withAgg, 8).StartDivergence
	dNo := RunAveraged(q, noAgg, 8).StartDivergence
	if dAgg >= dNo {
		t.Fatalf("aggregation did not shrink start divergence: α=0.5 → %v, α=0 → %v", dAgg, dNo)
	}
}

// TestRemark1GapRobustAcrossMobility mirrors the paper's empirical
// observation (§6.2.2): the realized gap need not decrease monotonically
// in P, but MIDDLE-style aggregation must stay robust — the gap at high
// mobility may not blow up relative to low mobility.
func TestRemark1GapRobustAcrossMobility(t *testing.T) {
	q := testObjective()
	base := RunConfig{
		Edges: 4, Devices: 16, Alpha: 0.3,
		LocalSteps: 5, CloudInterval: 10, Steps: 150, Seed: 3,
	}
	gapAt := func(p float64) float64 {
		cfg := base
		cfg.P = p
		return RunAveraged(q, cfg, 8).Gap
	}
	low := gapAt(0.1)
	high := gapAt(0.5)
	if high > low*5 {
		t.Fatalf("gap exploded with mobility: P=0.1 → %v, P=0.5 → %v", low, high)
	}
}

// TestAggregationBeatsNoAggregation checks the headline §5 claim on the
// convex problem: with mobility present, fixed-α on-device aggregation
// yields a smaller gap than discarding the carried model (α = 0).
func TestAggregationBeatsNoAggregation(t *testing.T) {
	q := NewClusteredQuadratic(8, 4, 16, 3.0, 0.2, 0.2, 7)
	base := RunConfig{
		Edges: 4, Devices: 16, P: 0.4,
		LocalSteps: 5, CloudInterval: 10, Steps: 100, Seed: 11,
	}
	withAgg := base
	withAgg.Alpha = 0.3
	gapAgg := RunAveraged(q, withAgg, 8).Gap
	noAgg := base
	noAgg.Alpha = 0
	gapNo := RunAveraged(q, noAgg, 8).Gap
	if gapAgg > gapNo*1.1 {
		t.Fatalf("aggregation hurt on convex problem: α=0.3 gap %v vs α=0 gap %v", gapAgg, gapNo)
	}
}

func TestBoundShape(t *testing.T) {
	p := BoundParams{
		Beta: 1, Mu: 1, Gamma: 10, T: 1000, B: 1, InitDist2: 4,
		I: 10, G2: 4, Alpha: 0.5, P: 0.5,
	}
	b := Bound(p)
	if b <= 0 || math.IsInf(b, 0) {
		t.Fatalf("bound = %v", b)
	}
	// Bound decreases in P (Remark 1).
	p2 := p
	p2.P = 1.0
	if Bound(p2) >= b {
		t.Fatalf("bound not decreasing in P: %v -> %v", b, Bound(p2))
	}
	// Derivative is negative.
	if BoundDerivativeInP(p) >= 0 {
		t.Fatalf("derivative = %v, want negative", BoundDerivativeInP(p))
	}
	// Bound decreases in T.
	p3 := p
	p3.T = 10000
	if Bound(p3) >= b {
		t.Fatalf("bound not decreasing in T")
	}
	// α at the boundary diverges.
	p4 := p
	p4.Alpha = 0
	if !math.IsInf(Bound(p4), 1) {
		t.Fatalf("bound at α=0 should be +Inf, got %v", Bound(p4))
	}
	p5 := p
	p5.P = 0
	if !math.IsInf(Bound(p5), 1) {
		t.Fatalf("bound at P=0 should be +Inf, got %v", Bound(p5))
	}
}

func TestBoundSymmetricInAlpha(t *testing.T) {
	p := BoundParams{Beta: 1, Mu: 1, Gamma: 10, T: 100, B: 1, InitDist2: 1, I: 5, G2: 1, P: 0.5}
	p.Alpha = 0.3
	a := Bound(p)
	p.Alpha = 0.7
	b := Bound(p)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("α(1−α) symmetry broken: %v vs %v", a, b)
	}
	// α = 0.5 minimises the mobility term.
	p.Alpha = 0.5
	if Bound(p) > a {
		t.Fatalf("α=0.5 not minimal: %v vs %v", Bound(p), a)
	}
}

func TestClusteredQuadraticPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClusteredQuadratic(0, 1, 1, 1, 1, 0, 1)
}
