package experiments

import (
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/hfl"
)

// Fig6SeedsResult is the multi-seed version of the Figure 6 experiment:
// the paper presents curves "smoothed and presented by their averages,
// and the shades are the actual experimental results", i.e. averages over
// repeated runs. Each strategy gets a mean ± std band and aggregated
// time-to-accuracy statistics.
type Fig6SeedsResult struct {
	Task   data.TaskName
	Target float64
	Seeds  []int64
	Bands  []eval.Band
	Stats  []eval.TTAStats
}

// RunFig6Seeds repeats RunFig6 across seeds (data, mobility and model
// initialisation all reseeded together) and aggregates.
func RunFig6Seeds(task data.TaskName, scale Scale, strategies []hfl.Strategy, p float64, seeds []int64, steps int) Fig6SeedsResult {
	res := Fig6SeedsResult{Task: task, Seeds: seeds}
	perStrategy := make([][]eval.Series, len(strategies))
	perTTA := make([][]eval.TTAResult, len(strategies))
	for _, seed := range seeds {
		setup := NewTaskSetup(task, scale, seed)
		res.Target = setup.TargetAcc
		r := RunFig6(setup, strategies, p, seed, steps)
		for i := range strategies {
			perStrategy[i] = append(perStrategy[i], r.Curves[i])
			perTTA[i] = append(perTTA[i], r.Results[i])
		}
	}
	for i := range strategies {
		res.Bands = append(res.Bands, eval.AggregateSeries(perStrategy[i]))
		res.Stats = append(res.Stats, eval.AggregateTTA(perTTA[i]))
	}
	return res
}

// MeanCurves returns the per-strategy mean series for plotting.
func (r Fig6SeedsResult) MeanCurves() []eval.Series {
	out := make([]eval.Series, len(r.Bands))
	for i, b := range r.Bands {
		out[i] = b.MeanSeries()
	}
	return out
}

// Table renders the aggregated §6.2.1 comparison.
func (r Fig6SeedsResult) Table() string {
	return eval.TTAStatsTable(r.Stats, "MIDDLE", r.Target)
}
