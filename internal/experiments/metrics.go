package experiments

import (
	"context"
	"time"

	"middle/internal/obs"
	"middle/internal/tensor"
)

// Metrics bundles the opt-in observability wiring shared by the
// command-line daemons: one registry carrying process, tensor-kernel
// and (via TaskSetup.Obs / fednet configs) run metrics, a status board
// for the JSON endpoint, and the HTTP listener serving /metrics,
// /status and /debug/pprof. A nil *Metrics is the disabled mode: every
// method is a no-op and Registry() returns nil, which all instruments
// accept.
type Metrics struct {
	reg     *obs.Registry
	status  *obs.Status
	server  *obs.Server
	trace   *obs.Trace
	started time.Time
}

// StartMetrics starts the introspection listener on addr. An empty
// addr disables observability entirely: it returns (nil, nil) and the
// nil *Metrics threads a nil registry through the stack. Kernel-stats
// collection in the tensor package is switched on so the
// tensor_kernel_* gauges report live counts.
func StartMetrics(addr string) (*Metrics, error) {
	if addr == "" {
		return nil, nil
	}
	r := obs.NewRegistry()
	obs.RegisterProcessMetrics(r)
	registerTensorMetrics(r)
	status := obs.NewStatus()
	trace := obs.NewTrace(0)
	srv, err := obs.StartServer(obs.ServerConfig{Addr: addr, Registry: r, Status: status, Trace: trace})
	if err != nil {
		return nil, err
	}
	return &Metrics{reg: r, status: status, server: srv, trace: trace, started: time.Now()}, nil
}

// registerTensorMetrics bridges the tensor package's dependency-free
// kernel counters into the registry as scrape-time gauges.
func registerTensorMetrics(r *obs.Registry) {
	tensor.EnableKernelStats(true)
	r.GaugeFunc("tensor_kernel_matmul_calls", func() float64 {
		return float64(tensor.ReadKernelStats().MatMulCalls)
	})
	r.GaugeFunc("tensor_kernel_im2col_calls", func() float64 {
		return float64(tensor.ReadKernelStats().Im2ColCalls)
	})
	r.GaugeFunc("tensor_kernel_col2im_calls", func() float64 {
		return float64(tensor.ReadKernelStats().Col2ImCalls)
	})
	r.GaugeFunc("tensor_parallel_launches", func() float64 {
		return float64(tensor.ReadKernelStats().ParallelLaunches)
	})
	r.GaugeFunc("tensor_parallel_inline", func() float64 {
		return float64(tensor.ReadKernelStats().ParallelInline)
	})
	r.GaugeFunc("tensor_parallel_occupancy", func() float64 {
		s := tensor.ReadKernelStats()
		if s.ParallelLaunches == 0 {
			return 0
		}
		return float64(s.ParallelWorkers) / float64(s.ParallelLaunches)
	})
}

// Registry returns the backing registry (nil when disabled).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Trace returns the run's span collector, served live on /debug/trace
// (nil when disabled). Thread it into hfl.Config.Trace or the fednet
// component configs to record round spans.
func (m *Metrics) Trace() *obs.Trace {
	if m == nil {
		return nil
	}
	return m.trace
}

// Addr returns the resolved listen address ("" when disabled).
func (m *Metrics) Addr() string {
	if m == nil {
		return ""
	}
	return m.server.Addr()
}

// SetStatus publishes a key on the /status board.
func (m *Metrics) SetStatus(key string, value any) {
	if m == nil {
		return
	}
	m.status.Set(key, value)
}

// Close stops the HTTP listener gracefully: in-flight scrapes get up to
// two seconds to drain before the listener is torn down.
func (m *Metrics) Close() {
	if m != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = m.server.Shutdown(ctx)
	}
}

// WriteSummary writes the run manifest plus a snapshot of every metric
// to dir/<name>-<timestamp>.json and returns the path. Disabled mode
// or an empty dir writes nothing and returns "".
func (m *Metrics) WriteSummary(dir, name string, command []string, extra map[string]any) (string, error) {
	if m == nil || dir == "" {
		return "", nil
	}
	now := time.Now()
	path := obs.SummaryPath(dir, name, now)
	err := obs.WriteSummary(path, obs.Manifest{
		Name:     name,
		Command:  command,
		Started:  m.started,
		Finished: now,
		Extra:    extra,
	}, m.reg)
	if err != nil {
		return "", err
	}
	return path, nil
}
