package experiments

import (
	"context"
	"net/http"
	"time"

	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/obs/slo"
	"middle/internal/obs/tsdb"
	"middle/internal/tensor"
)

// Metrics bundles the opt-in observability wiring shared by the
// command-line daemons: one registry carrying process, tensor-kernel
// and (via TaskSetup.Obs / fednet configs) run metrics, a status board
// for the JSON endpoint, and the HTTP listener serving /metrics,
// /status and /debug/pprof. A nil *Metrics is the disabled mode: every
// method is a no-op and Registry() returns nil, which all instruments
// accept.
type Metrics struct {
	reg      *obs.Registry
	status   *obs.Status
	server   *obs.Server
	trace    *obs.Trace
	store    *tsdb.Store
	engine   *slo.Engine
	recorder *flight.Recorder
	profiler *flight.Profiler
	started  time.Time
}

// MetricsConfig configures the full observability bundle. The zero
// value (all fields empty) disables everything.
type MetricsConfig struct {
	// Addr is the introspection listen address; "" starts no HTTP
	// server (the registry/tsdb/slo can still run headless when
	// TSDBInterval or SLORules ask for them).
	Addr string
	// TSDBInterval enables the embedded time-series store at this
	// scrape cadence (0 disables it unless SLORules forces it on, in
	// which case it defaults to 1s).
	TSDBInterval time.Duration
	// TSDBCapacity overrides the per-series point budget (0 = 720).
	TSDBCapacity int
	// SLORules, when non-empty, is parsed by slo.ParseRules ("default"
	// selects the standing rule set) and evaluated continuously; it
	// implies the tsdb.
	SLORules string
	// Events receives slo_breach/slo_resolve events alongside the
	// run's other telemetry.
	Events *obs.Emitter

	// FlightDir, when set, arms the flight recorder: postmortem bundles
	// are captured there on SLO breach (and by the daemons on panic,
	// SIGQUIT/SIGUSR1 and fatal exits).
	FlightDir string
	// ProfileInterval, when > 0, starts the continuous profiler with
	// this CPU-window length, publishing profile_cpu_seconds_total and
	// profile_alloc_bytes_total per phase.
	ProfileInterval time.Duration
	// FlightManifest identifies the run inside captured bundles (name,
	// argv, flags/seed in Extra).
	FlightManifest obs.Manifest
	// FlightEvents is the recent-event ring the bundles snapshot;
	// usually the same ring the daemon's emitter tees into.
	FlightEvents *flight.EventRing
}

// StartMetrics starts the introspection listener on addr. An empty
// addr disables observability entirely: it returns (nil, nil) and the
// nil *Metrics threads a nil registry through the stack. Kernel-stats
// collection in the tensor package is switched on so the
// tensor_kernel_* gauges report live counts.
func StartMetrics(addr string) (*Metrics, error) {
	return StartMetricsConfig(MetricsConfig{Addr: addr})
}

// StartMetricsConfig starts the observability bundle: registry +
// status + trace always; HTTP server when Addr is set; tsdb store when
// TSDBInterval > 0 or SLORules non-empty; SLO engine when SLORules
// non-empty. Fully disabled config returns (nil, nil).
func StartMetricsConfig(cfg MetricsConfig) (*Metrics, error) {
	if cfg.Addr == "" && cfg.TSDBInterval <= 0 && cfg.SLORules == "" &&
		cfg.FlightDir == "" && cfg.ProfileInterval <= 0 {
		return nil, nil
	}
	r := obs.NewRegistry()
	obs.RegisterProcessMetrics(r)
	registerTensorMetrics(r)
	m := &Metrics{reg: r, status: obs.NewStatus(), trace: obs.NewTrace(0), started: time.Now()}

	interval := cfg.TSDBInterval
	if interval <= 0 && cfg.SLORules != "" {
		interval = time.Second
	}
	if interval > 0 {
		store, err := tsdb.New(tsdb.Config{
			Registry: r,
			Interval: interval,
			Capacity: cfg.TSDBCapacity,
		})
		if err != nil {
			return nil, err
		}
		m.store = store
	}
	if cfg.SLORules != "" {
		rules, err := slo.ParseRules(cfg.SLORules)
		if err != nil {
			return nil, err
		}
		engine, err := slo.New(slo.Config{
			Store:    m.store,
			Rules:    rules,
			Events:   cfg.Events,
			Registry: r,
			// Late-bound through m so the recorder (created below) is
			// seen: every breach captures a bundle before the exit gate
			// can tear the process down.
			OnBreach: func(rule string) {
				m.CaptureFlight("slo_breach " + rule)
			},
		})
		if err != nil {
			return nil, err
		}
		m.engine = engine
	}
	if cfg.FlightDir != "" {
		rec, err := flight.NewRecorder(flight.RecorderConfig{
			Dir:      cfg.FlightDir,
			Manifest: cfg.FlightManifest,
			Registry: r,
			Store:    m.store,
			Engine:   m.engine,
			Trace:    m.trace,
			Events:   cfg.FlightEvents,
		})
		if err != nil {
			return nil, err
		}
		m.recorder = rec
	}
	if cfg.ProfileInterval > 0 {
		prof, err := flight.StartProfiler(flight.ProfilerConfig{
			Registry: r,
			Interval: cfg.ProfileInterval,
		})
		if err != nil {
			return nil, err
		}
		m.profiler = prof
		m.recorder.SetProfiler(prof)
	}

	if cfg.Addr != "" {
		handlers := map[string]http.Handler{}
		if m.store != nil {
			handlers["/api/query"] = m.store.QueryHandler()
			handlers["/api/series"] = m.store.SeriesHandler()
			handlers["/dashboard"] = m.store.DashboardHandler()
		}
		if m.engine != nil {
			handlers["/api/alerts"] = m.engine.Handler()
		}
		srv, err := obs.StartServer(obs.ServerConfig{
			Addr: cfg.Addr, Registry: r, Status: m.status, Trace: m.trace,
			Handlers: handlers,
		})
		if err != nil {
			return nil, err
		}
		m.server = srv
	}
	m.store.Start()
	m.engine.Start()
	return m, nil
}

// registerTensorMetrics bridges the tensor package's dependency-free
// kernel counters into the registry as scrape-time gauges.
func registerTensorMetrics(r *obs.Registry) {
	tensor.EnableKernelStats(true)
	r.GaugeFunc("tensor_kernel_matmul_calls", func() float64 {
		return float64(tensor.ReadKernelStats().MatMulCalls)
	})
	r.GaugeFunc("tensor_kernel_im2col_calls", func() float64 {
		return float64(tensor.ReadKernelStats().Im2ColCalls)
	})
	r.GaugeFunc("tensor_kernel_col2im_calls", func() float64 {
		return float64(tensor.ReadKernelStats().Col2ImCalls)
	})
	r.GaugeFunc("tensor_parallel_launches", func() float64 {
		return float64(tensor.ReadKernelStats().ParallelLaunches)
	})
	r.GaugeFunc("tensor_parallel_inline", func() float64 {
		return float64(tensor.ReadKernelStats().ParallelInline)
	})
	r.GaugeFunc("tensor_parallel_occupancy", func() float64 {
		s := tensor.ReadKernelStats()
		if s.ParallelLaunches == 0 {
			return 0
		}
		return float64(s.ParallelWorkers) / float64(s.ParallelLaunches)
	})
}

// Registry returns the backing registry (nil when disabled).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Trace returns the run's span collector, served live on /debug/trace
// (nil when disabled). Thread it into hfl.Config.Trace or the fednet
// component configs to record round spans.
func (m *Metrics) Trace() *obs.Trace {
	if m == nil {
		return nil
	}
	return m.trace
}

// Addr returns the resolved listen address ("" when disabled or
// running headless).
func (m *Metrics) Addr() string {
	if m == nil || m.server == nil {
		return ""
	}
	return m.server.Addr()
}

// TSDB returns the embedded time-series store (nil when disabled).
func (m *Metrics) TSDB() *tsdb.Store {
	if m == nil {
		return nil
	}
	return m.store
}

// SLO returns the SLO engine (nil when disabled).
func (m *Metrics) SLO() *slo.Engine {
	if m == nil {
		return nil
	}
	return m.engine
}

// Flight returns the flight recorder (nil when disabled). The nil
// recorder no-ops everywhere, so callers wire signal/panic hooks
// unconditionally.
func (m *Metrics) Flight() *flight.Recorder {
	if m == nil {
		return nil
	}
	return m.recorder
}

// CaptureFlight captures a postmortem bundle with the given reason and
// returns its path ("" when the recorder is disabled or capture
// failed). Nil-safe.
func (m *Metrics) CaptureFlight(reason string) string {
	if m == nil {
		return ""
	}
	path, _ := m.recorder.Capture(reason)
	return path
}

// FinalizeSLO stops the tsdb and SLO loops, takes one final
// scrape-and-evaluate pass, and returns the names of every rule that
// breached at any point in the run. Empty means the gate passes.
// Nil-safe; idempotent.
func (m *Metrics) FinalizeSLO() []string {
	if m == nil {
		return nil
	}
	m.store.Close()  // stops loop + final scrape
	m.engine.Close() // stops loop + final eval
	return m.engine.Breached()
}

// DumpTSDB writes the store's full history to path ("" or disabled
// tsdb writes nothing).
func (m *Metrics) DumpTSDB(path string) error {
	if m == nil || m.store == nil || path == "" {
		return nil
	}
	return m.store.DumpToFile(path)
}

// SetStatus publishes a key on the /status board.
func (m *Metrics) SetStatus(key string, value any) {
	if m == nil {
		return
	}
	m.status.Set(key, value)
}

// Close stops the tsdb/SLO loops and the HTTP listener gracefully:
// in-flight scrapes get up to two seconds to drain before the
// listener is torn down.
func (m *Metrics) Close() {
	if m == nil {
		return
	}
	m.profiler.Close()
	m.store.Close()
	m.engine.Close()
	if m.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = m.server.Shutdown(ctx)
	}
}

// WriteSummary writes the run manifest plus a snapshot of every metric
// to dir/<name>-<timestamp>.json and returns the path. Disabled mode
// or an empty dir writes nothing and returns "".
func (m *Metrics) WriteSummary(dir, name string, command []string, extra map[string]any) (string, error) {
	if m == nil || dir == "" {
		return "", nil
	}
	now := time.Now()
	path := obs.SummaryPath(dir, name, now)
	err := obs.WriteSummary(path, obs.Manifest{
		Name:     name,
		Command:  command,
		Started:  m.started,
		Finished: now,
		Extra:    extra,
	}, m.reg)
	if err != nil {
		return "", err
	}
	return path, nil
}
