package experiments

import (
	"middle/internal/data"
	"middle/internal/hfl"
)

// Fig7Result holds the final global-model accuracy per strategy per
// global mobility P (paper Figure 7).
type Fig7Result struct {
	Task       data.TaskName
	Strategies []string
	Ps         []float64
	// FinalAcc[i][j] is strategy i's final accuracy at mobility Ps[j].
	FinalAcc [][]float64
}

// RunFig7 sweeps the global mobility P for every strategy. Each
// (strategy, P) cell runs the full horizon and reports the final global
// accuracy, matching the paper's bar presentation.
func RunFig7(setup *TaskSetup, strategies []hfl.Strategy, ps []float64, seed int64, steps int) Fig7Result {
	part := setup.Partition(seed)
	res := Fig7Result{Task: setup.Task, Ps: ps}
	for _, strat := range strategies {
		res.Strategies = append(res.Strategies, strat.Name())
		row := make([]float64, len(ps))
		for j, p := range ps {
			mob := setup.Mobility(p, seed+11)
			sim := hfl.New(setup.Config(seed, steps), setup.Factory, part, setup.Test, mob, strat)
			row[j] = sim.Run().FinalAcc()
		}
		res.FinalAcc = append(res.FinalAcc, row)
	}
	return res
}
