package experiments

import (
	"fmt"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/hfl"
	"middle/internal/mobility"
)

// AblationResult isolates MIDDLE's two mechanisms: full MIDDLE,
// selection-only (Eq. 12 without Eq. 9), aggregation-only (Eq. 9 without
// Eq. 12) and the no-mechanism control, on identical data, mobility and
// initial model. This is the design-choice ablation DESIGN.md calls out;
// the paper motivates each mechanism separately (§4.2, §4.3) but reports
// only the combination.
type AblationResult struct {
	Task    data.TaskName
	Target  float64
	Curves  []eval.Series
	Results []eval.TTAResult
}

// RunAblation executes the four-way ablation.
func RunAblation(setup *TaskSetup, p float64, seed int64, steps int) AblationResult {
	part := setup.Partition(seed)
	res := AblationResult{Task: setup.Task, Target: setup.TargetAcc}
	for _, strat := range core.AblationSet() {
		mob := setup.Mobility(p, seed+11)
		sim := hfl.New(setup.Config(seed, steps), setup.Factory, part, setup.Test, mob, strat)
		h := sim.Run()
		res.Curves = append(res.Curves, eval.Series{Name: strat.Name(), X: h.Steps, Y: h.GlobalAcc})
		tta := eval.TTAResult{Strategy: strat.Name(), FinalAcc: h.FinalAcc()}
		if step, ok := h.TimeToAccuracy(setup.TargetAcc); ok {
			tta.Steps, tta.Reached = step, true
		}
		res.Results = append(res.Results, tta)
	}
	return res
}

// Table renders the ablation summary.
func (r AblationResult) Table() string {
	return eval.SpeedupTable(r.Results, "MIDDLE", r.Target)
}

// MobilityModelsResult compares MIDDLE under the Markov mobility model
// against the planar random-waypoint model at matched empirical mobility,
// validating the paper's claim that the approach is orthogonal to the
// specific mobility model (§3.2).
type MobilityModelsResult struct {
	Task   data.TaskName
	Curves []eval.Series
	// EmpiricalP maps each curve name to the mobility its model produced.
	EmpiricalP map[string]float64
}

// RunMobilityModels executes MIDDLE under both mobility models. The
// waypoint model's speed range is chosen so its empirical mobility lands
// near targetP; the result records what it actually was.
func RunMobilityModels(setup *TaskSetup, targetP float64, seed int64, steps int) MobilityModelsResult {
	part := setup.Partition(seed)
	res := MobilityModelsResult{Task: setup.Task, EmpiricalP: map[string]float64{}}

	gridW := setup.Edges / 2
	if gridW < 1 {
		gridW = 1
	}
	gridH := (setup.Edges + gridW - 1) / gridW
	// Displacement per step scales with target mobility; calibrated for
	// the unit square and small grids.
	speed := targetP * 0.35
	models := map[string]mobility.Model{
		"Markov":   mobility.NewMarkovRing(setup.Edges, setup.Devices, targetP, seed+11),
		"Waypoint": mobility.NewRandomWaypoint(gridW, gridH, setup.Devices, speed*0.5, speed*1.5, 1, seed+11),
	}
	for _, name := range []string{"Markov", "Waypoint"} {
		mob := models[name]
		if mob.NumEdges() != setup.Edges {
			panic(fmt.Sprintf("experiments: %s model has %d edges, want %d", name, mob.NumEdges(), setup.Edges))
		}
		sim := hfl.New(setup.Config(seed, steps), setup.Factory, part, setup.Test, mob, core.NewMiddle())
		h := sim.Run()
		res.Curves = append(res.Curves, eval.Series{Name: name, X: h.Steps, Y: h.GlobalAcc})
		res.EmpiricalP[name] = h.EmpiricalMobility
	}
	return res
}
