package experiments

import (
	"math"
	"testing"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/tensor"
)

// The experiment tests run heavily reduced horizons: they validate
// plumbing (shapes, determinism, sane ranges), not paper-scale outcomes —
// those are exercised by the benchmark harness.

func TestNewTaskSetupAllTasks(t *testing.T) {
	for _, task := range data.AllTasks() {
		s := NewTaskSetup(task, Fast, 1)
		if s.Train.Len() == 0 || s.Test.Len() == 0 {
			t.Fatalf("%s: empty datasets", task)
		}
		if s.Train.Classes != s.Test.Classes {
			t.Fatalf("%s: class mismatch", task)
		}
		net := s.Factory(tensor.NewRNG(1))
		if net.NumParams() == 0 {
			t.Fatalf("%s: empty model", task)
		}
		if s.TargetAcc <= 0 || s.TargetAcc >= 1 {
			t.Fatalf("%s: target %v", task, s.TargetAcc)
		}
	}
}

func TestTaskSetupSpeechUsesAdam(t *testing.T) {
	s := NewTaskSetup(data.TaskSpeech, Fast, 1)
	if s.Optimizer.Kind != hfl.OptAdam {
		t.Fatalf("speech optimizer %q, want adam", s.Optimizer.Kind)
	}
	img := NewTaskSetup(data.TaskMNIST, Fast, 1)
	if img.Optimizer.Kind != hfl.OptSGDMomentum || img.Optimizer.Momentum != 0.9 {
		t.Fatalf("image optimizer %+v, want sgd-momentum 0.9", img.Optimizer)
	}
}

func TestPartitionMatchesTopology(t *testing.T) {
	s := NewTaskSetup(data.TaskMNIST, Fast, 1)
	p := s.Partition(2)
	if p.NumDevices() != s.Devices {
		t.Fatalf("partition devices %d, want %d", p.NumDevices(), s.Devices)
	}
	for m := 0; m < p.NumDevices(); m++ {
		if len(p.Indices[m]) != s.PerDevice {
			t.Fatalf("device %d shard %d, want %d", m, len(p.Indices[m]), s.PerDevice)
		}
	}
}

func TestRunFig6ShapesAndDeterminism(t *testing.T) {
	setup := NewTaskSetup(data.TaskMNIST, Fast, 3)
	strategies := []hfl.Strategy{core.NewMiddle(), core.NewOort()}
	r1 := RunFig6(setup, strategies, 0.5, 7, 10)
	if len(r1.Curves) != 2 || len(r1.Results) != 2 {
		t.Fatalf("curves/results %d/%d", len(r1.Curves), len(r1.Results))
	}
	if r1.Curves[0].Name != "MIDDLE" || r1.Results[1].Strategy != "OORT" {
		t.Fatalf("strategy order wrong: %v %v", r1.Curves[0].Name, r1.Results[1].Strategy)
	}
	for _, c := range r1.Curves {
		if len(c.X) == 0 {
			t.Fatalf("empty curve %s", c.Name)
		}
		for _, y := range c.Y {
			if y < 0 || y > 1 {
				t.Fatalf("accuracy %v out of range", y)
			}
		}
	}
	r2 := RunFig6(NewTaskSetup(data.TaskMNIST, Fast, 3), strategies, 0.5, 7, 10)
	for i := range r1.Curves {
		for j := range r1.Curves[i].Y {
			if r1.Curves[i].Y[j] != r2.Curves[i].Y[j] {
				t.Fatal("RunFig6 not deterministic")
			}
		}
	}
	if table := r1.SpeedupTable(); table == "" {
		t.Fatal("empty speedup table")
	}
}

func TestRunFig7Shapes(t *testing.T) {
	setup := NewTaskSetup(data.TaskMNIST, Fast, 3)
	r := RunFig7(setup, []hfl.Strategy{core.NewMiddle()}, []float64{0.1, 0.5}, 5, 10)
	if len(r.FinalAcc) != 1 || len(r.FinalAcc[0]) != 2 {
		t.Fatalf("shape %dx%d", len(r.FinalAcc), len(r.FinalAcc[0]))
	}
	for _, row := range r.FinalAcc {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("accuracy %v", v)
			}
		}
	}
}

func TestRunFig8Shapes(t *testing.T) {
	setup := NewTaskSetup(data.TaskMNIST, Fast, 3)
	r := RunFig8(setup, []hfl.Strategy{core.NewMiddle(), core.NewOort()}, []int{5, 10}, 0.5, 5, 10)
	if len(r.Curves) != 4 {
		t.Fatalf("curves %d, want 4", len(r.Curves))
	}
	fa := r.FinalAccuracies()
	if len(fa) != 4 {
		t.Fatalf("final accuracies %d", len(fa))
	}
	if _, ok := fa["MIDDLE Tc=5"]; !ok {
		t.Fatalf("missing curve key, have %v", fa)
	}
}

func TestRunFig1ProducesSeries(t *testing.T) {
	r := RunFig1(Fig1Config{Scale: Fast, Seed: 2, Steps: 20})
	if len(r.Steps) == 0 {
		t.Fatal("no evaluations recorded")
	}
	series := r.Series()
	if len(series) != 4 {
		t.Fatalf("series %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != len(r.Steps) {
			t.Fatalf("series %s length mismatch", s.Name)
		}
	}
	if len(r.MajorClasses) != 5 || len(r.MinorClasses) != 5 {
		t.Fatalf("class splits %v / %v", r.MajorClasses, r.MinorClasses)
	}
}

func TestRunFig2ShapesAndSwap(t *testing.T) {
	r := RunFig2(Fig2Config{Scale: Fast, Seed: 2, Warmup: 12, After: 8})
	if len(r.Methods) != 2 || len(r.CloudPerClass) != 2 || len(r.EdgePerClass) != 2 {
		t.Fatalf("methods/per-class dims wrong")
	}
	for _, pc := range r.CloudPerClass {
		if len(pc) != r.Classes {
			t.Fatalf("per-class length %d", len(pc))
		}
	}
	want := []int{3, 4, 8, 9}
	for i, c := range r.SwappedClasses {
		if c != want[i] {
			t.Fatalf("swapped classes %v", r.SwappedClasses)
		}
	}
}

func TestFig2TraceScript(t *testing.T) {
	tr := fig2Trace(10, 3, 2)
	if tr.Steps() != 6 { // 3+1 base rows + 2 swapped rows
		t.Fatalf("trace steps %d", tr.Steps())
	}
	base := tr.Memberships[0]
	if base[3] != 0 || base[8] != 1 {
		t.Fatalf("base membership %v", base)
	}
	swapped := tr.Memberships[5]
	if swapped[3] != 1 || swapped[4] != 1 || swapped[8] != 0 || swapped[9] != 0 {
		t.Fatalf("swapped membership %v", swapped)
	}
	if swapped[0] != 0 || swapped[5] != 1 {
		t.Fatalf("unswapped devices moved: %v", swapped)
	}
}

func TestRunTheorySweep(t *testing.T) {
	r := RunTheory(TheoryConfig{Scale: Fast, Seed: 1, Ps: []float64{0.2, 0.8}, Alphas: []float64{0.3}})
	if len(r.Gap) != 2 || len(r.Gap[0]) != 1 {
		t.Fatalf("gap shape %dx%d", len(r.Gap), len(r.Gap[0]))
	}
	if len(r.Bound) != 2 {
		t.Fatalf("bound length %d", len(r.Bound))
	}
	// Remark 1: the theoretical bound decreases with P.
	if r.Bound[1] >= r.Bound[0] {
		t.Fatalf("bound not decreasing in P: %v", r.Bound)
	}
	for i := range r.Gap {
		for j := range r.Gap[i] {
			if r.Gap[i][j] < 0 || math.IsNaN(r.Gap[i][j]) {
				t.Fatalf("gap[%d][%d] = %v", i, j, r.Gap[i][j])
			}
			if r.Divergence[i][j] < 0 {
				t.Fatalf("divergence negative")
			}
		}
	}
}

func TestRunFig6Seeds(t *testing.T) {
	r := RunFig6Seeds(data.TaskMNIST, Fast, []hfl.Strategy{core.NewMiddle(), core.NewOort()}, 0.5, []int64{1, 2}, 10)
	if len(r.Bands) != 2 || len(r.Stats) != 2 {
		t.Fatalf("bands/stats %d/%d", len(r.Bands), len(r.Stats))
	}
	if r.Stats[0].Runs != 2 {
		t.Fatalf("runs %d", r.Stats[0].Runs)
	}
	curves := r.MeanCurves()
	if len(curves) != 2 || curves[0].Name != "MIDDLE" {
		t.Fatalf("mean curves %v", curves)
	}
	if r.Table() == "" {
		t.Fatal("empty table")
	}
	for _, b := range r.Bands {
		for i := range b.Mean {
			if b.Mean[i] < 0 || b.Mean[i] > 1 || b.Std[i] < 0 {
				t.Fatalf("band %s values out of range", b.Name)
			}
		}
	}
}

func TestRunAblationShapes(t *testing.T) {
	setup := NewTaskSetup(data.TaskMNIST, Fast, 4)
	r := RunAblation(setup, 0.5, 4, 10)
	if len(r.Curves) != 4 || len(r.Results) != 4 {
		t.Fatalf("curves/results %d/%d", len(r.Curves), len(r.Results))
	}
	names := []string{"MIDDLE", "MIDDLE-Sel", "MIDDLE-Agg", "General"}
	for i, c := range r.Curves {
		if c.Name != names[i] {
			t.Fatalf("curve %d name %s", i, c.Name)
		}
	}
	if r.Table() == "" {
		t.Fatal("empty ablation table")
	}
}

func TestRunMobilityModels(t *testing.T) {
	setup := NewTaskSetup(data.TaskMNIST, Fast, 4)
	r := RunMobilityModels(setup, 0.4, 4, 10)
	if len(r.Curves) != 2 {
		t.Fatalf("curves %d", len(r.Curves))
	}
	if r.EmpiricalP["Markov"] <= 0 || r.EmpiricalP["Waypoint"] <= 0 {
		t.Fatalf("empirical mobilities %v", r.EmpiricalP)
	}
}

func TestPaperScaleTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale dataset generation is slow")
	}
	s := NewTaskSetup(data.TaskMNIST, Paper, 1)
	if s.Edges != 10 || s.Devices != 100 || s.K != 5 {
		t.Fatalf("paper topology %d/%d/%d", s.Edges, s.Devices, s.K)
	}
	if s.I != 10 || s.Tc != 10 {
		t.Fatalf("paper I/Tc %d/%d", s.I, s.Tc)
	}
	if s.TargetAcc != 0.95 {
		t.Fatalf("paper MNIST target %v", s.TargetAcc)
	}
	if got := s.Train.Shape[1]; got != 28 {
		t.Fatalf("paper MNIST geometry %v", s.Train.Shape)
	}
	net := s.Factory(tensor.NewRNG(1))
	// The 2-conv/2-fc paper CNN on 28×28 has ~56k parameters.
	if net.NumParams() < 20_000 {
		t.Fatalf("paper CNN only %d params", net.NumParams())
	}
	cfg := s.Config(1, 0)
	if cfg.Steps != 1500 {
		t.Fatalf("paper horizon %d", cfg.Steps)
	}
	part := s.Partition(1)
	if part.NumDevices() != 100 || len(part.Indices[0]) != 100 {
		t.Fatalf("paper partition %d devices × %d", part.NumDevices(), len(part.Indices[0]))
	}
}

// TestNewScaleSetup pins the population-scale contract: the corpus stays
// at the Fast size regardless of the device count, and the partition is
// the shared-window form whose index memory is O(corpus).
func TestNewScaleSetup(t *testing.T) {
	s := NewScaleSetup(data.TaskMNIST, 1, 50_000, 100, 2, 5)
	if s.Devices != 50_000 || s.Edges != 100 || s.K != 2 || s.Tc != 5 {
		t.Fatalf("topology overrides not applied: %+v", s)
	}
	base := NewTaskSetup(data.TaskMNIST, Fast, 1)
	if s.Train.Len() != base.Train.Len() {
		t.Fatalf("scale corpus %d != fast corpus %d — dataset must not grow with the population", s.Train.Len(), base.Train.Len())
	}
	p := s.Partition(1)
	if p.NumDevices() != 50_000 {
		t.Fatalf("partition devices = %d", p.NumDevices())
	}
	// Shared windows: two devices with the same wrapped offset alias the
	// same backing array entry.
	n := s.Train.Len()
	for m := 1; m < p.NumDevices(); m++ {
		if (m*s.PerDevice)%n == 0 {
			if &p.Indices[0][0] != &p.Indices[m][0] {
				t.Fatal("scale partition is not the shared-window form")
			}
			return
		}
	}
	t.Fatal("no wrapped window found")
}
