package experiments

import (
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/hfl"
)

// Fig6Result holds one task's time-to-accuracy comparison (paper
// Figure 6): one accuracy-over-time series per strategy plus the
// time-to-target summary feeding the §6.2.1 speedup table.
type Fig6Result struct {
	Task    data.TaskName
	Target  float64
	Curves  []eval.Series
	Results []eval.TTAResult
}

// RunFig6 runs every strategy on the task with the paper's topology
// (shared mobility trace, shared partition, shared initial model seed) so
// curves differ only by strategy. steps == 0 uses the setup default.
func RunFig6(setup *TaskSetup, strategies []hfl.Strategy, p float64, seed int64, steps int) Fig6Result {
	part := setup.Partition(seed)
	res := Fig6Result{Task: setup.Task, Target: setup.TargetAcc}
	for _, strat := range strategies {
		mob := setup.Mobility(p, seed+11)
		sim := hfl.New(setup.Config(seed, steps), setup.Factory, part, setup.Test, mob, strat)
		h := sim.Run()
		res.Curves = append(res.Curves, eval.Series{Name: strat.Name(), X: h.Steps, Y: h.GlobalAcc})
		tta := eval.TTAResult{Strategy: strat.Name(), FinalAcc: h.FinalAcc()}
		if step, ok := h.TimeToAccuracy(setup.TargetAcc); ok {
			tta.Steps, tta.Reached = step, true
		}
		res.Results = append(res.Results, tta)
	}
	return res
}

// SpeedupTable renders the §6.2.1 comparison for this result.
func (r Fig6Result) SpeedupTable() string {
	return eval.SpeedupTable(r.Results, "MIDDLE", r.Target)
}
