package experiments

import (
	"fmt"

	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/hfl"
)

// Fig8Result compares MIDDLE against OORT across edge-cloud
// communication intervals T_c (paper Figure 8): one accuracy series per
// (strategy, T_c) pair.
type Fig8Result struct {
	Task   data.TaskName
	Tcs    []int
	Curves []eval.Series // named "<strategy> Tc=<v>"
}

// RunFig8 sweeps T_c for the given strategies (the paper uses MIDDLE and
// OORT) at fixed mobility p.
func RunFig8(setup *TaskSetup, strategies []hfl.Strategy, tcs []int, p float64, seed int64, steps int) Fig8Result {
	part := setup.Partition(seed)
	res := Fig8Result{Task: setup.Task, Tcs: tcs}
	for _, strat := range strategies {
		for _, tc := range tcs {
			cfg := setup.Config(seed, steps)
			cfg.CloudInterval = tc
			mob := setup.Mobility(p, seed+11)
			sim := hfl.New(cfg, setup.Factory, part, setup.Test, mob, strat)
			h := sim.Run()
			res.Curves = append(res.Curves, eval.Series{
				Name: fmt.Sprintf("%s Tc=%d", strat.Name(), tc),
				X:    h.Steps,
				Y:    h.GlobalAcc,
			})
		}
	}
	return res
}

// FinalAccuracies summarises each curve's final accuracy.
func (r Fig8Result) FinalAccuracies() map[string]float64 {
	out := make(map[string]float64, len(r.Curves))
	for _, c := range r.Curves {
		if len(c.Y) > 0 {
			out[c.Name] = c.Y[len(c.Y)-1]
		}
	}
	return out
}
