package experiments

import (
	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// Fig2Result reproduces the paper's Figure 2 motivation experiment:
// one-class-per-device devices, a scripted mid-training swap of devices
// {3,4} and {8,9} between the two edges, and a comparison of "General"
// (adopt the downloaded edge model) against 50/50 on-device model
// aggregation. It reports overall and per-class accuracy of the cloud
// model and of edge 1's model for both methods.
type Fig2Result struct {
	Classes int
	Methods []string // "General", "OnDeviceAvg"

	CloudOverall  []float64   // per method
	EdgeOverall   []float64   // per method
	CloudPerClass [][]float64 // [method][class]
	EdgePerClass  [][]float64 // [method][class]

	SwappedClasses []int // the classes that moved ({3,4,8,9} at 10 classes)
}

// Fig2Config sizes the Figure 2 experiment.
type Fig2Config struct {
	Scale  Scale
	Seed   int64
	Warmup int // steps before the swap (0 = scale default)
	After  int // steps after the swap (0 = scale default)
}

// fig2Trace builds the scripted membership sequence: devices 0..C/2−1 on
// edge 0 and the rest on edge 1 for warmup steps; then the top two
// devices of each half swap edges for the remaining steps.
func fig2Trace(classes, warmup, after int) *mobility.Trace {
	half := classes / 2
	base := make([]int, classes)
	for m := range base {
		if m >= half {
			base[m] = 1
		}
	}
	swapped := append([]int(nil), base...)
	swapped[half-2], swapped[half-1] = 1, 1       // e.g. classes 3, 4 → edge 1
	swapped[classes-2], swapped[classes-1] = 0, 0 // e.g. classes 8, 9 → edge 0
	tr := &mobility.Trace{Edges: 2}
	// The engine consumes one row for the initial membership M⁰ plus one
	// per simulated step, so the trace holds warmup+1 base rows followed
	// by the swapped rows.
	for t := 0; t < warmup+1; t++ {
		tr.Memberships = append(tr.Memberships, append([]int(nil), base...))
	}
	for t := 0; t < after; t++ {
		tr.Memberships = append(tr.Memberships, append([]int(nil), swapped...))
	}
	return tr
}

// RunFig2 executes the Figure 2 experiment for both methods on identical
// data, trace and initial model.
func RunFig2(cfg Fig2Config) Fig2Result {
	prof := pick(cfg.Scale, data.MNISTProfile(), data.FastImageProfile(10))
	classes := prof.Classes
	half := classes / 2
	perDevice := pick(cfg.Scale, 200, 60)
	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = pick(cfg.Scale, 100, 30)
	}
	after := cfg.After
	if after <= 0 {
		after = pick(cfg.Scale, 30, 8)
	}
	train := data.GenerateImagesSplit(prof, classes*perDevice*2, cfg.Seed, cfg.Seed)
	test := data.GenerateImagesSplit(prof, pick(cfg.Scale, 2000, 400), cfg.Seed, cfg.Seed+1_000_003)
	part := data.PartitionSingleClass(train, classes, perDevice, cfg.Seed+1)

	factory := func(rng *tensor.RNG) *nn.Network {
		if cfg.Scale == Paper {
			return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 8, C2: 16, Hidden: 64}, rng)
		}
		return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 4, C2: 8, Hidden: 24}, rng)
	}

	res := Fig2Result{
		Classes:        classes,
		Methods:        []string{"General", "OnDeviceAvg"},
		SwappedClasses: []int{half - 2, half - 1, classes - 2, classes - 1},
	}
	for _, strat := range []hfl.Strategy{core.NewGeneral(), core.NewFixedAlpha(0.5)} {
		tr := fig2Trace(classes, warmup, after)
		simCfg := hfl.Config{
			Seed: cfg.Seed, K: half, LocalSteps: 10,
			// No periodic cloud sync: the paper's Figure 2 procedure trains,
			// then "aggregates all local models as the cloud model" once at
			// the end, while edge model 1 is reported as-is.
			CloudInterval: warmup + after + 1,
			BatchSize:     pick(cfg.Scale, 16, 8),
			Steps:         warmup + after,
			Optimizer:     hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: pick(cfg.Scale, 0.01, 0.02)},
		}
		sim := hfl.New(simCfg, factory, part, test, tr.Replay(), strat)
		sim.Run()
		// Final cloud model: data-size-weighted average of all local models.
		vecs := make([][]float64, classes)
		weights := make([]float64, classes)
		for m := 0; m < classes; m++ {
			vecs[m] = sim.LocalModel(m)
			weights[m] = float64(sim.DataSize(m))
		}
		cloud := simil.WeightedAverage(vecs, weights)
		cloudAcc, cloudPC := sim.EvaluateVector(cloud, 0, true)
		edgeAcc, edgePC := sim.EvaluateVector(sim.EdgeModel(0), 0, true)
		res.CloudOverall = append(res.CloudOverall, cloudAcc)
		res.EdgeOverall = append(res.EdgeOverall, edgeAcc)
		res.CloudPerClass = append(res.CloudPerClass, cloudPC)
		res.EdgePerClass = append(res.EdgePerClass, edgePC)
	}
	return res
}
