package experiments

import (
	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/eval"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/tensor"
)

// Fig1Result reproduces the paper's Figure 1 motivation experiment: a
// two-edge HFL deployment with opposite 70/30 label skews and no
// mobility. It records the global model's accuracy, edge 1's accuracy,
// and edge 1's accuracy restricted to its major and minor classes —
// demonstrating that Non-IID data across edges starves the minor
// classes.
type Fig1Result struct {
	Steps     []int
	GlobalAcc []float64
	EdgeAcc   []float64
	MajorAcc  []float64
	MinorAcc  []float64

	MajorClasses []int
	MinorClasses []int
}

// Fig1Config sizes the motivation experiment.
type Fig1Config struct {
	Scale Scale
	Seed  int64
	Steps int // 0 = scale default
}

// RunFig1 executes the Figure 1 experiment with classical HFL (the
// "General" policy, full participation within each edge).
func RunFig1(cfg Fig1Config) Fig1Result {
	devices := pick(cfg.Scale, 50, 10)
	perDevice := pick(cfg.Scale, 100, 40)
	steps := cfg.Steps
	if steps <= 0 {
		steps = pick(cfg.Scale, 300, 60)
	}
	prof := pick(cfg.Scale, data.MNISTProfile(), data.FastImageProfile(10))
	train := data.GenerateImagesSplit(prof, devices*perDevice*2, cfg.Seed, cfg.Seed)
	test := data.GenerateImagesSplit(prof, pick(cfg.Scale, 2000, 400), cfg.Seed, cfg.Seed+1_000_003)

	// Edge 0 majors on classes {0..4}, edge 1 on {5..9}, 70/30 split.
	half := prof.Classes / 2
	majors := [][]int{intRange(0, half), intRange(half, prof.Classes)}
	edgeOf := make([]int, devices)
	for m := range edgeOf {
		edgeOf[m] = m % 2
	}
	// The paper uses a 70/30 skew at MNIST scale; the reduced fast task is
	// easier, so it needs a stronger 90/10 skew to exhibit the same
	// minor-class starvation within its short horizon.
	skew := pick(cfg.Scale, 0.7, 0.9)
	part := data.PartitionEdgeSkew(train, edgeOf, majors, perDevice, skew, cfg.Seed+1)

	factory := func(rng *tensor.RNG) *nn.Network {
		if cfg.Scale == Paper {
			return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: prof.Classes, C1: 8, C2: 16, Hidden: 64}, rng)
		}
		return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: prof.Classes, C1: 4, C2: 8, Hidden: 24}, rng)
	}

	// Static membership: interleaved round-robin matches edgeOf above.
	mob := mobility.NewStatic(2, devices)
	simCfg := hfl.Config{
		Seed: cfg.Seed, K: devices / 2, LocalSteps: 10, CloudInterval: 10,
		BatchSize: pick(cfg.Scale, 16, 8), Steps: steps,
		// Figure 1 uses plain SGD with lr 0.001 in the paper; the fast
		// scale raises it so the 60-step horizon shows the same shape.
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: pick(cfg.Scale, 0.001, 0.05)},
	}
	sim := hfl.New(simCfg, factory, part, test, mob, core.NewGeneral())

	res := Fig1Result{MajorClasses: majors[0], MinorClasses: majors[1]}
	evalEvery := pick(cfg.Scale, 10, 5)
	for sim.Step() < simCfg.Steps {
		t := sim.StepOnce()
		// Evaluate at pre-sync steps (t ≡ evalEvery−1): at sync steps the
		// edge model has just been overwritten by the cloud model, which
		// would hide exactly the drift Figure 1 demonstrates.
		if t%evalEvery == evalEvery-1 {
			acc, _ := sim.EvaluateVector(sim.CloudModel(), 0, false)
			edgeAcc, _ := sim.EvaluateVector(sim.EdgeModel(0), 0, false)
			major := sim.EvaluateVectorOnClasses(sim.EdgeModel(0), majors[0], 0)
			minor := sim.EvaluateVectorOnClasses(sim.EdgeModel(0), majors[1], 0)
			res.Steps = append(res.Steps, t)
			res.GlobalAcc = append(res.GlobalAcc, acc)
			res.EdgeAcc = append(res.EdgeAcc, edgeAcc)
			res.MajorAcc = append(res.MajorAcc, major)
			res.MinorAcc = append(res.MinorAcc, minor)
		}
	}
	return res
}

// Series renders the recorded curves for plotting.
func (r Fig1Result) Series() []eval.Series {
	return []eval.Series{
		{Name: "global", X: r.Steps, Y: r.GlobalAcc},
		{Name: "edge1", X: r.Steps, Y: r.EdgeAcc},
		{Name: "edge1-major", X: r.Steps, Y: r.MajorAcc},
		{Name: "edge1-minor", X: r.Steps, Y: r.MinorAcc},
	}
}

func intRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}
