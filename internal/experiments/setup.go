// Package experiments reproduces every figure of the paper's evaluation
// (§2 motivation Figures 1–2, §6 Figures 6–8) plus the §5 theory
// validation, at two scales: Fast (reduced geometry, for tests and
// benchmarks) and Paper (the §6.1.2 parameters). Each runner returns
// structured results that cmd/middlesim renders and EXPERIMENTS.md
// records.
package experiments

import (
	"fmt"

	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

// Scale selects the experiment size.
type Scale string

// Fast runs in seconds on a laptop; Paper mirrors §6.1.2.
const (
	Fast  Scale = "fast"
	Paper Scale = "paper"
)

// TaskSetup bundles everything task-specific an experiment needs.
type TaskSetup struct {
	Task      data.TaskName
	Scale     Scale
	Train     *data.Dataset
	Test      *data.Dataset
	Factory   hfl.ModelFactory
	Optimizer hfl.OptimizerSpec

	// TargetAcc is the time-to-accuracy threshold. The paper uses
	// 0.95/0.80/0.55/0.85 on the real corpora; the Fast synthetic tasks
	// use thresholds calibrated to the same relative difficulty.
	TargetAcc float64
	// Steps is the simulated horizon for Figure 6-style runs.
	Steps int
	// EvalEvery is the evaluation cadence in time steps.
	EvalEvery int

	// Topology (defaults: paper §6.1.2 at Paper scale).
	Edges     int
	Devices   int
	K         int
	PerDevice int // samples per device shard
	I         int // local steps
	Tc        int // cloud interval
	BatchSize int
	MajorFrac float64
	// NoisyDeviceFrac / NoisyLabelFrac model heterogeneous device data
	// quality: that fraction of devices has that fraction of its labels
	// corrupted (real federated corpora are noisy per device; pure
	// loss-based selection is only competitive against noise-free data).
	NoisyDeviceFrac float64
	NoisyLabelFrac  float64
	// SharedPartition switches Partition to data.PartitionShared:
	// per-device shards become windows into one shared permutation, so
	// index memory is bounded by the corpus instead of Devices×PerDevice.
	// This is the population-scale path (see NewScaleSetup); it trades
	// the Non-IID major-class structure for a footprint independent of
	// the fleet size.
	SharedPartition bool
	// Obs, when set, is threaded into every simulation Config this setup
	// produces, so one registry collects the whole experiment's metrics.
	Obs *obs.Registry
	// Events, when set, receives the per-round and per-eval JSONL
	// telemetry stream of every simulation this setup produces.
	Events *obs.Emitter
	// Trace, when set, collects the round/phase span tree of every
	// simulation this setup produces.
	Trace *obs.Trace
}

// NewTaskSetup builds the setup for one of the four paper tasks.
func NewTaskSetup(task data.TaskName, scale Scale, seed int64) *TaskSetup {
	s := &TaskSetup{Task: task, Scale: scale}
	switch scale {
	case Fast:
		s.Edges, s.Devices, s.K = 4, 20, 3
		s.PerDevice, s.I, s.Tc, s.BatchSize = 40, 5, 10, 8
		s.MajorFrac = 0.85
		s.NoisyDeviceFrac, s.NoisyLabelFrac = 0, 0
		s.EvalEvery = 5
	case Paper:
		s.Edges, s.Devices, s.K = 10, 100, 5
		s.PerDevice, s.I, s.Tc, s.BatchSize = 100, 10, 10, 16
		s.MajorFrac = 0.85
		s.NoisyDeviceFrac, s.NoisyLabelFrac = 0, 0
		s.EvalEvery = 10
	default:
		panic(fmt.Sprintf("experiments: unknown scale %q", scale))
	}
	s.Optimizer = hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.01, Momentum: 0.9}

	switch task {
	case data.TaskMNIST:
		s.configureImages(scale, seed, data.MNISTProfile(), data.FastImageProfile(10))
		s.TargetAcc = pick(scale, 0.95, 0.95)
		s.Steps = pick(scale, 1500, 120)
	case data.TaskEMNIST:
		fast := data.FastImageProfile(26)
		s.configureImages(scale, seed, data.EMNISTProfile(), fast)
		s.TargetAcc = pick(scale, 0.80, 0.60)
		s.Steps = pick(scale, 5000, 150)
	case data.TaskCIFAR:
		fast := data.ImageProfile{Name: "cifar10-fast", C: 3, H: 8, W: 8, Classes: 10, Waves: 3, Shift: 2, Noise: 1.3}
		s.configureImages(scale, seed, data.CIFARProfile(), fast)
		s.TargetAcc = pick(scale, 0.55, 0.55)
		s.Steps = pick(scale, 20000, 150)
	case data.TaskSpeech:
		s.configureSequences(scale, seed)
		s.Optimizer = hfl.OptimizerSpec{Kind: hfl.OptAdam, LR: 0.001}
		s.TargetAcc = pick(scale, 0.85, 0.75)
		s.Steps = pick(scale, 10000, 150)
	default:
		panic(fmt.Sprintf("experiments: unknown task %q", task))
	}
	return s
}

func pick[T any](scale Scale, paper, fast T) T {
	if scale == Paper {
		return paper
	}
	return fast
}

func (s *TaskSetup) configureImages(scale Scale, seed int64, paperProf, fastProf data.ImageProfile) {
	prof := paperProf
	if scale == Fast {
		prof = fastProf
	}
	trainN := s.Devices * s.PerDevice * 2
	testN := pick(scale, 2000, 400)
	s.Train = data.GenerateImagesSplit(prof, trainN, seed, seed)
	s.Test = data.GenerateImagesSplit(prof, testN, seed, seed+1_000_003)
	classes := prof.Classes
	if scale == Paper {
		// Paper architectures: 2-conv CNN for MNIST/EMNIST, 3-conv for CIFAR.
		if prof.C == 3 {
			s.Factory = func(rng *tensor.RNG) *nn.Network {
				return nn.NewCNN3(nn.CNN3Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 8, C2: 16, C3: 32, Hidden: 64}, rng)
			}
		} else {
			s.Factory = func(rng *tensor.RNG) *nn.Network {
				return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 8, C2: 16, Hidden: 64}, rng)
			}
		}
		return
	}
	// Fast scale keeps the architecture family but narrows it.
	if prof.C == 3 {
		s.Factory = func(rng *tensor.RNG) *nn.Network {
			return nn.NewCNN3(nn.CNN3Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 4, C2: 6, C3: 8, Hidden: 24}, rng)
		}
	} else {
		s.Factory = func(rng *tensor.RNG) *nn.Network {
			return nn.NewCNN2(nn.CNN2Config{InC: prof.C, H: prof.H, W: prof.W, Classes: classes, C1: 4, C2: 8, Hidden: 24}, rng)
		}
	}
}

func (s *TaskSetup) configureSequences(scale Scale, seed int64) {
	prof := data.SpeechProfile()
	if scale == Fast {
		prof = data.FastSequenceProfile(10)
	}
	trainN := s.Devices * s.PerDevice * 2
	testN := pick(scale, 2000, 400)
	s.Train = data.GenerateSequencesSplit(prof, trainN, seed, seed)
	s.Test = data.GenerateSequencesSplit(prof, testN, seed, seed+1_000_003)
	classes := prof.Classes
	l := prof.L
	widths := pick(scale, [4]int{8, 16, 32, 64}, [4]int{4, 6, 8, 24})
	s.Factory = func(rng *tensor.RNG) *nn.Network {
		return nn.NewSeqCNN(nn.SeqCNNConfig{L: l, Classes: classes, C1: widths[0], C2: widths[1], C3: widths[2], Hidden: widths[3]}, rng)
	}
}

// NewScaleSetup builds a population-scale setup: the Fast corpus and
// model family (so dataset and network memory stay bounded by the
// corpus, not the population) with the topology overridden to the given
// device/edge counts and the shared-window partition enabled. Zero
// overrides keep the Fast defaults. Pair the resulting Config with
// hfl.Config.LazyStore/ResidentCap so per-round cost scales with the
// cohort — this is the middlesim -exp scale path and the million-device
// smoke in scripts/check.sh.
func NewScaleSetup(task data.TaskName, seed int64, devices, edges, k, tc int) *TaskSetup {
	s := NewTaskSetup(task, Fast, seed)
	if devices > 0 {
		s.Devices = devices
	}
	if edges > 0 {
		s.Edges = edges
	}
	if k > 0 {
		s.K = k
	}
	if tc > 0 {
		s.Tc = tc
	}
	s.SharedPartition = true
	return s
}

// Config assembles the hfl.Config for this setup with the given horizon
// override (0 = the setup's default Steps).
func (s *TaskSetup) Config(seed int64, steps int) hfl.Config {
	if steps <= 0 {
		steps = s.Steps
	}
	return hfl.Config{
		Seed:          seed,
		K:             s.K,
		LocalSteps:    s.I,
		CloudInterval: s.Tc,
		BatchSize:     s.BatchSize,
		Steps:         steps,
		EvalEvery:     s.EvalEvery,
		EvalSamples:   0,
		Optimizer:     s.Optimizer,
		Obs:           s.Obs,
		Events:        s.Events,
		Trace:         s.Trace,
	}
}

// Partition builds the §6.1.2 Non-IID shards: per-device major class
// with MajorFrac of the samples, clustered by initial edge so the data
// distribution correlates with geography (the setting in which Non-IID
// across edges persists under realistic, locality-preserving mobility).
func (s *TaskSetup) Partition(seed int64) *data.Partition {
	if s.SharedPartition {
		return data.PartitionShared(s.Train, s.Devices, s.PerDevice, seed)
	}
	p := data.PartitionMajorClassClustered(s.Train, s.Devices, s.PerDevice, s.MajorFrac, s.Edges, seed)
	if s.NoisyDeviceFrac > 0 && s.NoisyLabelFrac > 0 {
		p = p.WithLabelNoise(s.NoisyDeviceFrac, s.NoisyLabelFrac, seed+77)
	}
	return p
}

// Mobility builds the evaluation mobility model: a locality-preserving
// ring-Markov walk with global mobility p. Real traces (the paper uses
// the ONE simulator) move devices between neighbouring cells; uniform
// teleporting would wash out the edge-level Non-IID within a few steps.
func (s *TaskSetup) Mobility(p float64, seed int64) mobility.Model {
	return mobility.NewMarkovRing(s.Edges, s.Devices, p, seed)
}
