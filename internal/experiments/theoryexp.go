package experiments

import (
	"middle/internal/theory"
)

// TheoryResult sweeps the global mobility P and the fixed aggregation
// coefficient α on the strongly convex quadratic objective of §5,
// reporting the measured optimality gap, the starting-point divergence
// the proof bounds, and the Theorem 1 bound itself.
type TheoryResult struct {
	Ps     []float64
	Alphas []float64
	// Gap[i][j] is the averaged optimality gap at (Ps[i], Alphas[j]).
	Gap [][]float64
	// Divergence[i][j] is the averaged starting-point divergence.
	Divergence [][]float64
	// Bound[i] is the Theorem 1 bound at Ps[i] with α = 0.5 and the
	// sweep's nominal constants — the monotone-in-P reference curve of
	// Remark 1.
	Bound []float64
}

// TheoryConfig sizes the §5 validation sweep.
type TheoryConfig struct {
	Scale  Scale
	Seed   int64
	Ps     []float64
	Alphas []float64
}

// RunTheory executes the sweep. Defaults reproduce the Remark 1 grid:
// P ∈ {0.1 … 1.0}, α ∈ {0.1, 0.3, 0.5}.
func RunTheory(cfg TheoryConfig) TheoryResult {
	if len(cfg.Ps) == 0 {
		cfg.Ps = []float64{0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	}
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0.1, 0.3, 0.5}
	}
	dim := pick(cfg.Scale, 16, 8)
	edges := pick(cfg.Scale, 10, 4)
	devices := pick(cfg.Scale, 100, 16)
	steps := pick(cfg.Scale, 500, 120)
	seeds := pick(cfg.Scale, 16, 6)
	q := theory.NewClusteredQuadratic(dim, edges, devices, 2.0, 0.3, 0.2, cfg.Seed)

	res := TheoryResult{Ps: cfg.Ps, Alphas: cfg.Alphas}
	iLocal := 5
	gamma := float64(iLocal) * 2
	for _, p := range cfg.Ps {
		gapRow := make([]float64, len(cfg.Alphas))
		divRow := make([]float64, len(cfg.Alphas))
		for j, a := range cfg.Alphas {
			r := theory.RunAveraged(q, theory.RunConfig{
				Edges: edges, Devices: devices, P: p, Alpha: a,
				LocalSteps: iLocal, CloudInterval: 10, Steps: steps,
				Gamma: gamma, Seed: cfg.Seed + 31,
			}, seeds)
			gapRow[j] = r.Gap
			divRow[j] = r.StartDivergence
		}
		res.Gap = append(res.Gap, gapRow)
		res.Divergence = append(res.Divergence, divRow)
		res.Bound = append(res.Bound, theory.Bound(theory.BoundParams{
			Beta: 1, Mu: 1, Gamma: gamma, T: steps,
			B: 1, InitDist2: 4, I: iLocal, G2: 4, Alpha: 0.5, P: p,
		}))
	}
	return res
}
