package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the goroutine fan-out of parallel kernels. It defaults
// to GOMAXPROCS and can be lowered (e.g. to 1 for deterministic profiling)
// with SetMaxWorkers.
var maxWorkersMu sync.RWMutex
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers bounds the parallelism of tensor kernels. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	maxWorkersMu.Lock()
	defer maxWorkersMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// MaxWorkers returns the current kernel parallelism bound.
func MaxWorkers() int {
	maxWorkersMu.RLock()
	defer maxWorkersMu.RUnlock()
	return maxWorkers
}

// ParallelFor runs fn(i) for i in [0, n) across at most MaxWorkers()
// goroutines, splitting the index space into contiguous chunks. The work
// per index should be independent: results must go to disjoint memory.
// Small loops (n < grain) run inline to avoid goroutine overhead.
func ParallelFor(n, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := MaxWorkers()
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
