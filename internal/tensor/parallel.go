package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutine fan-out of parallel kernels. It defaults
// to GOMAXPROCS and can be lowered (e.g. to 1 for deterministic profiling)
// with SetMaxWorkers.
var maxWorkersMu sync.RWMutex
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers bounds the parallelism of tensor kernels. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	maxWorkersMu.Lock()
	defer maxWorkersMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// MaxWorkers returns the current kernel parallelism bound.
func MaxWorkers() int {
	maxWorkersMu.RLock()
	defer maxWorkersMu.RUnlock()
	return maxWorkers
}

// ParallelForChunks splits [0, n) into contiguous chunks of about grain
// indices and runs fn(lo, hi) for each chunk across at most MaxWorkers()
// goroutines. Chunks are handed out through an atomic cursor, so fast
// workers steal the remaining chunks and uneven per-chunk cost balances
// out. The work must be independent across indices: results must go to
// disjoint memory, which also makes the output bit-identical for every
// worker count. With MaxWorkers() == 1, or when a single chunk covers the
// range, fn runs inline on the calling goroutine (deterministic serial
// profiling).
func ParallelForChunks(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers := MaxWorkers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		countParallelInline()
		fn(0, n)
		return
	}
	countParallelLaunch(chunks, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ParallelFor runs fn(i) for i in [0, n) across at most MaxWorkers()
// goroutines. grain controls the chunk size: contiguous chunks of about
// grain indices are handed out to workers, so a large grain amortises
// scheduling overhead for cheap bodies and a small grain load-balances
// expensive ones. The work per index must be independent: results must go
// to disjoint memory.
func ParallelFor(n, grain int, fn func(i int)) {
	ParallelForChunks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
