//go:build amd64

package tensor

// AVX2+FMA dispatch for the innermost kernels. The assembly routines in
// simd_amd64.s process a multiple-of-4 prefix; the dispatchers finish the
// tail with the scalar kernels. The split point depends only on the slice
// length, so results stay bit-identical run to run and across MaxWorkers
// settings (the vector/scalar boundary never moves with the chunking).

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

//go:noescape
func axpyAVX(alpha float64, x, y *float64, n int)

//go:noescape
func axpy4AVX(av0, av1, av2, av3 float64, b, c0, c1, c2, c3 *float64, n int)

//go:noescape
func dot2x2AVX(a0, a1, b0, b1 *float64, n int) (s00, s01, s10, s11 float64)

//go:noescape
func dotAVX(x, y *float64, n int) float64

var useAVX2 = detectAVX2()

// detectAVX2 reports whether the CPU and OS support AVX2 and FMA
// (including the XSAVE check that the OS preserves YMM state).
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
	)
	if c1&cpuidOSXSAVE == 0 || c1&cpuidFMA == 0 {
		return false
	}
	// XCR0 bits 1 and 2: OS saves XMM and YMM registers on context switch.
	xlo, _ := xgetbvAsm()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	const cpuidAVX2 = 1 << 5
	return b7&cpuidAVX2 != 0
}

// simdMinLen is the shortest slice worth a vector-call round trip.
const simdMinLen = 8

// axpy computes y[j] += alpha*x[j] over len(x) elements.
func axpy(alpha float64, x, y []float64) {
	if useAVX2 && len(x) >= simdMinLen {
		m := len(x) &^ 3
		axpyAVX(alpha, &x[0], &y[0], m)
		if m < len(x) {
			scalarAxpy(alpha, x[m:], y[m:])
		}
		return
	}
	scalarAxpy(alpha, x, y)
}

// axpy4 computes cR[j] += avR*b[j] for four rows sharing one b row.
func axpy4(av0, av1, av2, av3 float64, b, c0, c1, c2, c3 []float64) {
	if useAVX2 && len(b) >= simdMinLen {
		m := len(b) &^ 3
		axpy4AVX(av0, av1, av2, av3, &b[0], &c0[0], &c1[0], &c2[0], &c3[0], m)
		if m < len(b) {
			scalarAxpy4(av0, av1, av2, av3, b[m:], c0[m:], c1[m:], c2[m:], c3[m:])
		}
		return
	}
	scalarAxpy4(av0, av1, av2, av3, b, c0, c1, c2, c3)
}

// dot2x2 computes the four dot products of {a0, a1} × {b0, b1}.
func dot2x2(a0, a1, b0, b1 []float64) (s00, s01, s10, s11 float64) {
	if useAVX2 && len(a0) >= simdMinLen {
		m := len(a0) &^ 3
		s00, s01, s10, s11 = dot2x2AVX(&a0[0], &a1[0], &b0[0], &b1[0], m)
		if m < len(a0) {
			t00, t01, t10, t11 := scalarDot2x2(a0[m:], a1[m:], b0[m:], b1[m:])
			s00 += t00
			s01 += t01
			s10 += t10
			s11 += t11
		}
		return
	}
	return scalarDot2x2(a0, a1, b0, b1)
}

// dotVec computes the dot product of x and y.
func dotVec(x, y []float64) float64 {
	if useAVX2 && len(x) >= simdMinLen {
		m := len(x) &^ 3
		s := dotAVX(&x[0], &y[0], m)
		if m < len(x) {
			s += scalarDot(x[m:], y[m:])
		}
		return s
	}
	return scalarDot(x, y)
}
