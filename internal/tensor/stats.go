package tensor

import "sync/atomic"

// Kernel invocation statistics. Collection is off by default and gated
// on one atomic flag, so the only hot-path cost when disabled is a
// relaxed bool load per instrumented call — the package stays free of
// any dependency on the observability layer, which bridges these
// numbers into its registry via gauge functions (see cmd/middled).

// KernelStats is a snapshot of the kernel counters.
type KernelStats struct {
	// MatMulCalls counts all matrix-multiply entry points (plain,
	// transposed-A, transposed-B).
	MatMulCalls int64
	// Im2ColCalls / Col2ImCalls count convolution lowering calls (2-D and
	// 1-D, including the strided batch variants).
	Im2ColCalls int64
	Col2ImCalls int64
	// ParallelLaunches counts ParallelForChunks calls that fanned out to
	// goroutines; ParallelInline counts those that ran inline (single
	// worker or single chunk).
	ParallelLaunches int64
	ParallelInline   int64
	// ParallelChunks and ParallelWorkers accumulate the chunk and worker
	// counts of fanned-out launches, so chunks/launches and
	// workers/launches estimate occupancy.
	ParallelChunks  int64
	ParallelWorkers int64
}

var kernelStatsOn atomic.Bool

var kernelStats struct {
	matMul           atomic.Int64
	im2col           atomic.Int64
	col2im           atomic.Int64
	parallelLaunches atomic.Int64
	parallelInline   atomic.Int64
	parallelChunks   atomic.Int64
	parallelWorkers  atomic.Int64
}

// EnableKernelStats switches collection on or off, returning the
// previous state. Counters keep their values across toggles; use
// ResetKernelStats for a clean slate.
func EnableKernelStats(on bool) bool {
	return kernelStatsOn.Swap(on)
}

// KernelStatsEnabled reports whether collection is on.
func KernelStatsEnabled() bool { return kernelStatsOn.Load() }

// ReadKernelStats returns a snapshot of the counters.
func ReadKernelStats() KernelStats {
	return KernelStats{
		MatMulCalls:      kernelStats.matMul.Load(),
		Im2ColCalls:      kernelStats.im2col.Load(),
		Col2ImCalls:      kernelStats.col2im.Load(),
		ParallelLaunches: kernelStats.parallelLaunches.Load(),
		ParallelInline:   kernelStats.parallelInline.Load(),
		ParallelChunks:   kernelStats.parallelChunks.Load(),
		ParallelWorkers:  kernelStats.parallelWorkers.Load(),
	}
}

// ResetKernelStats zeroes all counters.
func ResetKernelStats() {
	kernelStats.matMul.Store(0)
	kernelStats.im2col.Store(0)
	kernelStats.col2im.Store(0)
	kernelStats.parallelLaunches.Store(0)
	kernelStats.parallelInline.Store(0)
	kernelStats.parallelChunks.Store(0)
	kernelStats.parallelWorkers.Store(0)
}

func countMatMul() {
	if kernelStatsOn.Load() {
		kernelStats.matMul.Add(1)
	}
}

func countIm2Col() {
	if kernelStatsOn.Load() {
		kernelStats.im2col.Add(1)
	}
}

func countCol2Im() {
	if kernelStatsOn.Load() {
		kernelStats.col2im.Add(1)
	}
}

func countParallelInline() {
	if kernelStatsOn.Load() {
		kernelStats.parallelInline.Add(1)
	}
}

func countParallelLaunch(chunks, workers int) {
	if kernelStatsOn.Load() {
		kernelStats.parallelLaunches.Add(1)
		kernelStats.parallelChunks.Add(int64(chunks))
		kernelStats.parallelWorkers.Add(int64(workers))
	}
}
