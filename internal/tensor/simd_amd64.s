//go:build amd64

#include "textflag.h"

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
// Caller must have verified CPUID.1:ECX.OSXSAVE first.
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX(alpha float64, x, y *float64, n int)
// y[j] += alpha*x[j] for j in [0, n); n must be a multiple of 4.
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ AX, DX
	JGE  axpy_tail

axpy_loop16:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 64(SI)(AX*8), Y3
	VMOVUPD 96(SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y5
	VMOVUPD 32(DI)(AX*8), Y6
	VMOVUPD 64(DI)(AX*8), Y7
	VMOVUPD 96(DI)(AX*8), Y8
	VFMADD231PD Y1, Y0, Y5
	VFMADD231PD Y2, Y0, Y6
	VFMADD231PD Y3, Y0, Y7
	VFMADD231PD Y4, Y0, Y8
	VMOVUPD Y5, (DI)(AX*8)
	VMOVUPD Y6, 32(DI)(AX*8)
	VMOVUPD Y7, 64(DI)(AX*8)
	VMOVUPD Y8, 96(DI)(AX*8)
	ADDQ $16, AX
	CMPQ AX, DX
	JLT  axpy_loop16

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (DI)(AX*8), Y5
	VFMADD231PD Y1, Y0, Y5
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func axpy4AVX(av0, av1, av2, av3 float64, b, c0, c1, c2, c3 *float64, n int)
// cR[j] += avR*b[j] for four rows; n must be a multiple of 4.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	VBROADCASTSD av0+0(FP), Y0
	VBROADCASTSD av1+8(FP), Y1
	VBROADCASTSD av2+16(FP), Y2
	VBROADCASTSD av3+24(FP), Y3
	MOVQ b+32(FP), SI
	MOVQ c0+40(FP), DI
	MOVQ c1+48(FP), R8
	MOVQ c2+56(FP), R9
	MOVQ c3+64(FP), R10
	MOVQ n+72(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ AX, DX
	JGE  axpy4_tail

axpy4_loop8:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD (DI)(AX*8), Y6
	VMOVUPD 32(DI)(AX*8), Y7
	VFMADD231PD Y4, Y0, Y6
	VFMADD231PD Y5, Y0, Y7
	VMOVUPD Y6, (DI)(AX*8)
	VMOVUPD Y7, 32(DI)(AX*8)
	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD 32(R8)(AX*8), Y9
	VFMADD231PD Y4, Y1, Y8
	VFMADD231PD Y5, Y1, Y9
	VMOVUPD Y8, (R8)(AX*8)
	VMOVUPD Y9, 32(R8)(AX*8)
	VMOVUPD (R9)(AX*8), Y10
	VMOVUPD 32(R9)(AX*8), Y11
	VFMADD231PD Y4, Y2, Y10
	VFMADD231PD Y5, Y2, Y11
	VMOVUPD Y10, (R9)(AX*8)
	VMOVUPD Y11, 32(R9)(AX*8)
	VMOVUPD (R10)(AX*8), Y12
	VMOVUPD 32(R10)(AX*8), Y13
	VFMADD231PD Y4, Y3, Y12
	VFMADD231PD Y5, Y3, Y13
	VMOVUPD Y12, (R10)(AX*8)
	VMOVUPD Y13, 32(R10)(AX*8)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  axpy4_loop8

axpy4_tail:
	CMPQ AX, CX
	JGE  axpy4_done
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y6
	VFMADD231PD Y4, Y0, Y6
	VMOVUPD Y6, (DI)(AX*8)
	VMOVUPD (R8)(AX*8), Y8
	VFMADD231PD Y4, Y1, Y8
	VMOVUPD Y8, (R8)(AX*8)
	VMOVUPD (R9)(AX*8), Y10
	VFMADD231PD Y4, Y2, Y10
	VMOVUPD Y10, (R9)(AX*8)
	VMOVUPD (R10)(AX*8), Y12
	VFMADD231PD Y4, Y3, Y12
	VMOVUPD Y12, (R10)(AX*8)
	ADDQ $4, AX
	JMP  axpy4_tail

axpy4_done:
	VZEROUPPER
	RET

// func dot2x2AVX(a0, a1, b0, b1 *float64, n int) (s00, s01, s10, s11 float64)
// Four simultaneous dot products; n must be a multiple of 4. Each result
// reduces four lanes at the end, so the summation order differs from the
// scalar kernel but is fixed for a given n.
TEXT ·dot2x2AVX(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ n+32(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX
	CMPQ AX, CX
	JGE  dot2x2_reduce

dot2x2_loop4:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y5
	VMOVUPD (R8)(AX*8), Y6
	VMOVUPD (R9)(AX*8), Y7
	VFMADD231PD Y6, Y4, Y0
	VFMADD231PD Y7, Y4, Y1
	VFMADD231PD Y6, Y5, Y2
	VFMADD231PD Y7, Y5, Y3
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  dot2x2_loop4

dot2x2_reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPD X5, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X6
	VADDPD X6, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X7
	VADDPD X7, X3, X3
	VHADDPD X3, X3, X3
	MOVSD X0, s00+40(FP)
	MOVSD X1, s01+48(FP)
	MOVSD X2, s10+56(FP)
	MOVSD X3, s11+64(FP)
	VZEROUPPER
	RET

// func dotAVX(x, y *float64, n int) float64
// Dot product with four accumulator chains; n must be a multiple of 4.
TEXT ·dotAVX(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ AX, DX
	JGE  dot_tail

dot_loop16:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD 32(DI)(AX*8), Y9
	VMOVUPD 64(DI)(AX*8), Y10
	VMOVUPD 96(DI)(AX*8), Y11
	VFMADD231PD Y8, Y4, Y0
	VFMADD231PD Y9, Y5, Y1
	VFMADD231PD Y10, Y6, Y2
	VFMADD231PD Y11, Y7, Y3
	ADDQ $16, AX
	CMPQ AX, DX
	JLT  dot_loop16

dot_tail:
	CMPQ AX, CX
	JGE  dot_reduce
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y8
	VFMADD231PD Y8, Y4, Y0
	ADDQ $4, AX
	JMP  dot_tail

dot_reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, ret+24(FP)
	VZEROUPPER
	RET
