package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if got := x.Size(); got != 24 {
		t.Fatalf("Size = %d, want 24", got)
	}
	if got := x.Rank(); got != 3 {
		t.Fatalf("Rank = %d, want 3", got)
	}
	s := x.Shape()
	if s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("Shape = %v, want [2 3 4]", s)
	}
	// Shape must be a copy.
	s[0] = 99
	if x.Dim(0) != 2 {
		t.Fatal("Shape() leaked internal slice")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data[5] != 7 {
		t.Fatalf("Set(1,2) wrote to wrong slot: %v", x.Data)
	}
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of bounds did not panic")
		}
	}()
	x.At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("Reshape misordered data: %v", y)
	}
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong size did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b); !got.Equal(FromSlice([]float64{11, 22, 33}, 3), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice([]float64{9, 18, 27}, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); !got.Equal(FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	c.AddScaledInPlace(0.5, b)
	if !c.Equal(FromSlice([]float64{6, 12, 18}, 3), 1e-12) {
		t.Fatalf("AddScaledInPlace = %v", c)
	}
	c = a.Clone()
	c.MulInPlace(b)
	if !c.Equal(FromSlice([]float64{10, 40, 90}, 3), 0) {
		t.Fatalf("MulInPlace = %v", c)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	want := math.Sqrt(9 + 1 + 16 + 1)
	if math.Abs(x.Norm2()-want) > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", x.Norm2(), want)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v, want [1 0]", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float64{1, 1, 1, 1000, 0, 0}, 2, 3)
	s := x.SoftmaxRows()
	for r := 0; r < 2; r++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			sum += s.At(r, c)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	if math.Abs(s.At(0, 0)-1.0/3) > 1e-9 {
		t.Fatalf("uniform row got %v", s.At(0, 0))
	}
	// Large logits must not overflow.
	if s.At(1, 0) < 0.999 {
		t.Fatalf("peaked row got %v", s.At(1, 0))
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {33, 17, 29}, {64, 64, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		r.FillNormal(a, 0, 1)
		r.FillNormal(b, 0, 1)
		want := naiveMatMul(a, b)
		if got := MatMul(a, b); !got.Equal(want, 1e-9) {
			t.Fatalf("MatMul mismatch at dims %v", dims)
		}
		if got := MatMulTransA(Transpose2D(a), b); !got.Equal(want, 1e-9) {
			t.Fatalf("MatMulTransA mismatch at dims %v", dims)
		}
		if got := MatMulTransB(a, Transpose2D(b)); !got.Equal(want, 1e-9) {
			t.Fatalf("MatMulTransB mismatch at dims %v", dims)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose2D(x)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("Transpose2D wrong: %v", y)
	}
}

func TestConvOut(t *testing.T) {
	if got := ConvOut(28, 5, 1, 2); got != 28 {
		t.Fatalf("same-pad ConvOut = %d", got)
	}
	if got := ConvOut(28, 5, 1, 0); got != 24 {
		t.Fatalf("valid ConvOut = %d", got)
	}
	if got := ConvOut(28, 2, 2, 0); got != 14 {
		t.Fatalf("strided ConvOut = %d", got)
	}
}

// TestIm2ColKnown checks one small lowering by hand.
func TestIm2ColKnown(t *testing.T) {
	// x is a 1x3x3 image: 1..9.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	// 2x2 kernel, stride 1, no pad => 2x2 output, 4 rows.
	cols := make([]float64, 4*4)
	Im2Col(x, 1, 3, 3, 2, 2, 1, 0, cols)
	want := []float64{
		1, 2, 4, 5, // tap (0,0)
		2, 3, 5, 6, // tap (0,1)
		4, 5, 7, 8, // tap (1,0)
		5, 6, 8, 9, // tap (1,1)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols[%d] = %v, want %v\n got %v", i, cols[i], want[i], cols)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	// 1x2x2 image, 3x3 kernel, stride 1, pad 1 => 2x2 output.
	cols := make([]float64, 9*4)
	Im2Col(x, 1, 2, 2, 3, 3, 1, 1, cols)
	// Center tap (ky=1,kx=1) sees the image unshifted.
	center := cols[4*4 : 5*4]
	for i, want := range []float64{1, 2, 3, 4} {
		if center[i] != want {
			t.Fatalf("center tap = %v", center)
		}
	}
	// Top-left tap (ky=0,kx=0) sees only x[3]=4 shifted into the last slot? No:
	// output (oy,ox)=(1,1) reads input (0,0)=1.
	tl := cols[0:4]
	if tl[0] != 0 || tl[1] != 0 || tl[2] != 0 || tl[3] != 1 {
		t.Fatalf("top-left tap = %v", tl)
	}
}

// TestCol2ImAdjoint verifies that Col2Im is the adjoint of Im2Col:
// ⟨Im2Col(x), c⟩ == ⟨x, Col2Im(c)⟩ for random x and c. This is the exact
// property backprop through convolution relies on.
func TestCol2ImAdjoint(t *testing.T) {
	r := NewRNG(7)
	cases := []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 5, 5, 3, 3, 1, 1},
		{2, 6, 7, 3, 2, 1, 0},
		{3, 8, 8, 5, 5, 1, 2},
		{2, 9, 9, 3, 3, 2, 1},
	}
	for _, cs := range cases {
		oh := ConvOut(cs.h, cs.kh, cs.stride, cs.pad)
		ow := ConvOut(cs.w, cs.kw, cs.stride, cs.pad)
		nx := cs.c * cs.h * cs.w
		nc := cs.c * cs.kh * cs.kw * oh * ow
		x := make([]float64, nx)
		cvec := make([]float64, nc)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range cvec {
			cvec[i] = r.NormFloat64()
		}
		cols := make([]float64, nc)
		Im2Col(x, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad, cols)
		dx := make([]float64, nx)
		Col2Im(cvec, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad, dx)
		lhs, rhs := 0.0, 0.0
		for i := range cols {
			lhs += cols[i] * cvec[i]
		}
		for i := range x {
			rhs += x[i] * dx[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint mismatch for %+v: %v vs %v", cs, lhs, rhs)
		}
	}
}

func TestCol2Im1DAdjoint(t *testing.T) {
	r := NewRNG(11)
	cases := []struct{ c, l, k, stride, pad int }{
		{1, 16, 3, 1, 1},
		{2, 40, 5, 2, 2},
		{3, 17, 7, 3, 0},
	}
	for _, cs := range cases {
		ol := ConvOut(cs.l, cs.k, cs.stride, cs.pad)
		nx := cs.c * cs.l
		nc := cs.c * cs.k * ol
		x := make([]float64, nx)
		cvec := make([]float64, nc)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range cvec {
			cvec[i] = r.NormFloat64()
		}
		cols := make([]float64, nc)
		Im2Col1D(x, cs.c, cs.l, cs.k, cs.stride, cs.pad, cols)
		dx := make([]float64, nx)
		Col2Im1D(cvec, cs.c, cs.l, cs.k, cs.stride, cs.pad, dx)
		lhs, rhs := 0.0, 0.0
		for i := range cols {
			lhs += cols[i] * cvec[i]
		}
		for i := range x {
			rhs += x[i] * dx[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("1D adjoint mismatch for %+v: %v vs %v", cs, lhs, rhs)
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	n := 1000
	hit := make([]int32, n)
	ParallelFor(n, 1, func(i int) { hit[i]++ })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(0, 1, func(i int) { called = true })
	if called {
		t.Fatal("ParallelFor(0) invoked fn")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers = %d", MaxWorkers())
	}
	n := 100
	sum := 0 // safe: single worker runs inline
	ParallelFor(n, 1, func(i int) { sum += i })
	if sum != n*(n-1)/2 {
		t.Fatalf("inline sum = %d", sum)
	}
}

func TestRNGSplitIsStable(t *testing.T) {
	a1 := Split(42, 7).Float64()
	a2 := Split(42, 7).Float64()
	if a1 != a2 {
		t.Fatal("Split not deterministic")
	}
	b := Split(42, 8).Float64()
	if a1 == b {
		t.Fatal("Split children not decorrelated (same first draw)")
	}
}

func TestXavierUniformBounds(t *testing.T) {
	r := NewRNG(3)
	w := New(100, 100)
	r.XavierUniform(w, 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range w.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier sample %v outside ±%v", v, limit)
		}
	}
}

func TestHeNormalStd(t *testing.T) {
	r := NewRNG(5)
	w := New(200, 200)
	r.HeNormal(w, 200)
	std := math.Sqrt(2.0 / 200.0)
	var s, s2 float64
	for _, v := range w.Data {
		s += v
		s2 += v * v
	}
	n := float64(w.Size())
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean) > 0.01 || math.Abs(math.Sqrt(variance)-std) > 0.01 {
		t.Fatalf("He init mean %v std %v, want 0 / %v", mean, math.Sqrt(variance), std)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("Equal ignored shape")
	}
	if New(2).Equal(New(2, 1), 1) {
		t.Fatal("Equal ignored rank")
	}
}

func TestFullAndFillZero(t *testing.T) {
	x := Full(7, 2, 2)
	for _, v := range x.Data {
		if v != 7 {
			t.Fatalf("Full = %v", x.Data)
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	x.Fill(3)
	if x.Sum() != 12 {
		t.Fatal("Fill failed")
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3}, 3)
	x.Apply(math.Abs)
	if x.Data[1] != 2 {
		t.Fatalf("Apply = %v", x.Data)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatal("empty String for big tensor")
	}
}

func TestMatMulTransPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"transA dims": func() { MatMulTransA(New(3, 2), New(4, 5)) },
		"transB dims": func() { MatMulTransB(New(2, 3), New(5, 4)) },
		"transA rank": func() { MatMulTransA(New(3), New(3, 2)) },
		"transB rank": func() { MatMulTransB(New(2, 3), New(3)) },
		"transpose":   func() { Transpose2D(New(2)) },
		"softmax":     func() { New(2).SoftmaxRows() },
		"argmax":      func() { New(2).ArgMaxRows() },
		"dot":         func() { Dot(New(2), New(3)) },
		"add":         func() { New(2).AddInPlace(New(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParallelForGrainInline(t *testing.T) {
	// With grain larger than n, the loop must run inline in order.
	order := make([]int, 0, 5)
	ParallelFor(5, 100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v", order)
		}
	}
}

func TestFillUniformRange(t *testing.T) {
	r := NewRNG(9)
	x := New(1000)
	r.FillUniform(x, -2, 3)
	for _, v := range x.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %v outside [-2, 3)", v)
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	r := NewRNG(2)
	p := r.Permutation(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}
