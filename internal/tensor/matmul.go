package tensor

import "fmt"

// Matrix-multiplication kernels. All three variants (plain, Aᵀ·B, A·Bᵀ)
// share the same structure: the output rows are split into contiguous
// chunks sized by rowGrain and distributed with ParallelForChunks, and
// inside a chunk the kernel is tiled over cache-sized panels of the
// shared dimension and of the output columns, with 4×1 (axpy-style) or
// 2×2 (dot-style) register blocking in the innermost loops. Each output
// element's summation order is fixed by the panel loops alone, never by
// the chunking, so results are bit-identical for every MaxWorkers()
// setting.
const (
	// mmPanelJ bounds the output-column panel so the B panel a chunk
	// streams stays cache-resident across its rows.
	mmPanelJ = 512
	// mmPanelK bounds the shared-dimension panel for the same reason.
	mmPanelK = 256
	// mmGrainFlops is the target amount of work per parallel chunk;
	// smaller chunks drown in scheduling overhead.
	mmGrainFlops = 1 << 16
)

// rowGrain picks a row-chunk size so each parallel chunk carries about
// mmGrainFlops of work (rowWork = flops per output row).
func rowGrain(m, rowWork int) int {
	if rowWork < 1 {
		rowWork = 1
	}
	g := mmGrainFlops / rowWork
	if g < 1 {
		g = 1
	}
	if g > m {
		g = m
	}
	return g
}

func checkRank2(op string, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 operands, got %v and %v", op, a.shape, b.shape))
	}
}

func checkDst(op string, dst *Tensor, m, n int) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination has shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

// MatMul computes C = A·B for A of shape [m, k] and B of shape [k, n].
func MatMul(a, b *Tensor) *Tensor {
	return MatMulInto(New(a.shape[0], b.shape[1]), a, b)
}

// MatMulInto computes dst = A·B, overwriting dst (shape [m, n]). It
// performs no allocation, so hot paths can reuse the destination.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	countMatMul()
	checkRank2("MatMul", a, b)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	checkDst("MatMul", dst, m, n)
	cd, ad, bd := dst.Data, a.Data, b.Data
	// The serial path calls the kernel directly: no closure, so the call
	// is allocation-free with MaxWorkers() == 1.
	if MaxWorkers() <= 1 {
		matmulRows(cd, ad, bd, k, n, 0, m)
		return dst
	}
	ParallelForChunks(m, rowGrain(m, k*n), func(lo, hi int) {
		matmulRows(cd, ad, bd, k, n, lo, hi)
	})
	return dst
}

// matmulRows computes rows [lo, hi) of C = A·B with panel tiling and
// 4-row register blocking.
func matmulRows(cd, ad, bd []float64, k, n, lo, hi int) {
	for jb := 0; jb < n; jb += mmPanelJ {
		je := min(jb+mmPanelJ, n)
		w := je - jb
		for pb := 0; pb < k; pb += mmPanelK {
			pe := min(pb+mmPanelK, k)
			first := pb == 0
			i := lo
			for ; i+4 <= hi; i += 4 {
				c0 := cd[i*n+jb : i*n+jb+w]
				c1 := cd[(i+1)*n+jb : (i+1)*n+jb+w]
				c2 := cd[(i+2)*n+jb : (i+2)*n+jb+w]
				c3 := cd[(i+3)*n+jb : (i+3)*n+jb+w]
				if first {
					clear(c0)
					clear(c1)
					clear(c2)
					clear(c3)
				}
				a0 := ad[i*k+pb : i*k+pe]
				a1 := ad[(i+1)*k+pb : (i+1)*k+pe]
				a2 := ad[(i+2)*k+pb : (i+2)*k+pe]
				a3 := ad[(i+3)*k+pb : (i+3)*k+pe]
				a1 = a1[:len(a0)]
				a2 = a2[:len(a0)]
				a3 = a3[:len(a0)]
				for pi, av0 := range a0 {
					p := pb + pi
					brow := bd[p*n+jb : p*n+jb+w]
					axpy4(av0, a1[pi], a2[pi], a3[pi], brow, c0, c1, c2, c3)
				}
			}
			for ; i < hi; i++ {
				crow := cd[i*n+jb : i*n+jb+w]
				if first {
					clear(crow)
				}
				arow := ad[i*k+pb : i*k+pe]
				for pi, av := range arow {
					if av == 0 {
						continue
					}
					p := pb + pi
					axpy(av, bd[p*n+jb:p*n+jb+w], crow)
				}
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A of shape [k, m] and B of shape
// [k, n], producing [m, n], without materialising the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	return MatMulTransAInto(New(a.shape[1], b.shape[1]), a, b)
}

// MatMulTransAInto computes dst = Aᵀ·B, overwriting dst (shape [m, n]),
// without allocating.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	countMatMul()
	checkRank2("MatMulTransA", a, b)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims differ: %v x %v", a.shape, b.shape))
	}
	checkDst("MatMulTransA", dst, m, n)
	cd, ad, bd := dst.Data, a.Data, b.Data
	if MaxWorkers() <= 1 {
		matmulTransARows(cd, ad, bd, m, k, n, 0, m)
		return dst
	}
	ParallelForChunks(m, rowGrain(m, k*n), func(lo, hi int) {
		matmulTransARows(cd, ad, bd, m, k, n, lo, hi)
	})
	return dst
}

// matmulTransARows computes rows [lo, hi) of C = Aᵀ·B. Identical
// structure to matmulRows except the A element for output row i lives at
// the strided address a[p*m+i]; four adjacent output rows read four
// adjacent A elements, so the strided loads still hit one cache line.
func matmulTransARows(cd, ad, bd []float64, m, k, n, lo, hi int) {
	for jb := 0; jb < n; jb += mmPanelJ {
		je := min(jb+mmPanelJ, n)
		w := je - jb
		for pb := 0; pb < k; pb += mmPanelK {
			pe := min(pb+mmPanelK, k)
			first := pb == 0
			i := lo
			for ; i+4 <= hi; i += 4 {
				c0 := cd[i*n+jb : i*n+jb+w]
				c1 := cd[(i+1)*n+jb : (i+1)*n+jb+w]
				c2 := cd[(i+2)*n+jb : (i+2)*n+jb+w]
				c3 := cd[(i+3)*n+jb : (i+3)*n+jb+w]
				if first {
					clear(c0)
					clear(c1)
					clear(c2)
					clear(c3)
				}
				for p := pb; p < pe; p++ {
					apos := ad[p*m+i : p*m+i+4]
					brow := bd[p*n+jb : p*n+jb+w]
					axpy4(apos[0], apos[1], apos[2], apos[3], brow, c0, c1, c2, c3)
				}
			}
			for ; i < hi; i++ {
				crow := cd[i*n+jb : i*n+jb+w]
				if first {
					clear(crow)
				}
				for p := pb; p < pe; p++ {
					av := ad[p*m+i]
					if av == 0 {
						continue
					}
					axpy(av, bd[p*n+jb:p*n+jb+w], crow)
				}
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A of shape [m, k] and B of shape
// [n, k], producing [m, n], without materialising the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	return MatMulTransBInto(New(a.shape[0], b.shape[0]), a, b)
}

// MatMulTransBInto computes dst = A·Bᵀ, overwriting dst (shape [m, n]),
// without allocating.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	countMatMul()
	checkRank2("MatMulTransB", a, b)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims differ: %v x %v", a.shape, b.shape))
	}
	checkDst("MatMulTransB", dst, m, n)
	cd, ad, bd := dst.Data, a.Data, b.Data
	if MaxWorkers() <= 1 {
		matmulTransBRows(cd, ad, bd, k, n, 0, m)
		return dst
	}
	ParallelForChunks(m, rowGrain(m, k*n), func(lo, hi int) {
		matmulTransBRows(cd, ad, bd, k, n, lo, hi)
	})
	return dst
}

// matmulTransBRows computes rows [lo, hi) of C = A·Bᵀ: every output
// element is a length-k dot product, tiled over k panels with 2×2
// register blocking so each loaded A/B panel element feeds two
// accumulating products.
func matmulTransBRows(cd, ad, bd []float64, k, n, lo, hi int) {
	for kb := 0; kb < k; kb += mmPanelK {
		ke := min(kb+mmPanelK, k)
		first := kb == 0
		i := lo
		for ; i+2 <= hi; i += 2 {
			a0 := ad[i*k+kb : i*k+ke]
			a1 := ad[(i+1)*k+kb : (i+1)*k+ke]
			c0 := cd[i*n : (i+1)*n]
			c1 := cd[(i+1)*n : (i+2)*n]
			if first {
				clear(c0)
				clear(c1)
			}
			j := 0
			for ; j+2 <= n; j += 2 {
				b0 := bd[j*k+kb : j*k+ke]
				b1 := bd[(j+1)*k+kb : (j+1)*k+ke]
				s00, s01, s10, s11 := dot2x2(a0, a1, b0, b1)
				c0[j] += s00
				c0[j+1] += s01
				c1[j] += s10
				c1[j+1] += s11
			}
			for ; j < n; j++ {
				b0 := bd[j*k+kb : j*k+ke]
				c0[j] += dotVec(a0, b0)
				c1[j] += dotVec(a1, b0)
			}
		}
		for ; i < hi; i++ {
			arow := ad[i*k+kb : i*k+ke]
			crow := cd[i*n : (i+1)*n]
			if first {
				clear(crow)
			}
			for j := 0; j < n; j++ {
				crow[j] += dotVec(arow, bd[j*k+kb:j*k+ke])
			}
		}
	}
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
