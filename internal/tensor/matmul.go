package tensor

import "fmt"

// MatMul computes C = A·B for A of shape [m, k] and B of shape [k, n].
// Rows of the output are computed in parallel; the inner loops are ordered
// (i, p, j) so the innermost loop streams contiguously through B and C.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	ParallelFor(m, 16, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	})
	return c
}

// MatMulTransA computes C = Aᵀ·B for A of shape [k, m] and B of shape
// [k, n], producing [m, n], without materialising the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims differ: %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	// Parallelise over output rows (columns of A). Each worker owns a
	// disjoint row of C.
	ParallelFor(m, 16, func(i int) {
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	})
	return c
}

// MatMulTransB computes C = A·Bᵀ for A of shape [m, k] and B of shape
// [n, k], producing [m, n], without materialising the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims differ: %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	ParallelFor(m, 16, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] = s
		}
	})
	return c
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
