package tensor

import (
	"fmt"
	"math"
)

// AddInPlace adds u to t elementwise.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "AddInPlace")
	axpy(1, u.Data, t.Data)
	return t
}

// SubInPlace subtracts u from t elementwise.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "SubInPlace")
	axpy(-1, u.Data, t.Data)
	return t
}

// MulInPlace multiplies t by u elementwise (Hadamard product).
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "MulInPlace")
	for i := range t.Data {
		t.Data[i] *= u.Data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaledInPlace performs t += s*u (axpy).
func (t *Tensor) AddScaledInPlace(s float64, u *Tensor) *Tensor {
	t.mustMatch(u, "AddScaledInPlace")
	axpy(s, u.Data, t.Data)
	return t
}

// Add returns t + u as a new tensor.
func Add(t, u *Tensor) *Tensor { return t.Clone().AddInPlace(u) }

// Sub returns t − u as a new tensor.
func Sub(t, u *Tensor) *Tensor { return t.Clone().SubInPlace(u) }

// Scale returns s·t as a new tensor.
func Scale(s float64, t *Tensor) *Tensor { return t.Clone().ScaleInPlace(s) }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, x := range t.Data {
		t.Data[i] = f(x)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, x := range t.Data {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the largest element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, x := range t.Data {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, x := range t.Data {
		if x < m {
			m = x
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of all elements.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, x := range t.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and u viewed as flat vectors.
func Dot(t, u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	s := 0.0
	for i := range t.Data {
		s += t.Data[i] * u.Data[i]
	}
	return s
}

// ArgMaxRows treats t as a [rows, cols] matrix and returns the index of
// the maximum element of each row. Ties resolve to the first maximum.
func (t *Tensor) ArgMaxRows() []int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bi := math.Inf(-1), 0
		row := t.Data[r*cols : (r+1)*cols]
		for c, x := range row {
			if x > best {
				best, bi = x, c
			}
		}
		out[r] = bi
	}
	return out
}

// SoftmaxRows treats t as [rows, cols] and returns a new tensor whose rows
// are softmax-normalised, computed stably by subtracting the row max.
func (t *Tensor) SoftmaxRows() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		in := t.Data[r*cols : (r+1)*cols]
		o := out.Data[r*cols : (r+1)*cols]
		mx := math.Inf(-1)
		for _, x := range in {
			if x > mx {
				mx = x
			}
		}
		sum := 0.0
		for c, x := range in {
			e := math.Exp(x - mx)
			o[c] = e
			sum += e
		}
		inv := 1 / sum
		for c := range o {
			o[c] *= inv
		}
	}
	return out
}

func (t *Tensor) mustMatch(u *Tensor, op string) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, t.shape, u.shape))
	}
}
