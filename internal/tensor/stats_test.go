package tensor

import "testing"

func TestKernelStatsDisabledByDefault(t *testing.T) {
	prev := EnableKernelStats(false)
	defer EnableKernelStats(prev)
	ResetKernelStats()

	a := New(4, 4)
	b := New(4, 4)
	a.Fill(1)
	b.Fill(2)
	MatMul(a, b)
	cols := make([]float64, 1*3*3*4*4) // C*KH*KW rows of OH*OW = 4*4
	Im2Col(make([]float64, 16), 1, 4, 4, 3, 3, 1, 1, cols)
	Col2Im(cols, 1, 4, 4, 3, 3, 1, 1, make([]float64, 16))
	ParallelForChunks(8, 2, func(lo, hi int) {})

	if got := ReadKernelStats(); got != (KernelStats{}) {
		t.Fatalf("counters advanced while disabled: %+v", got)
	}
}

func TestKernelStatsCounts(t *testing.T) {
	prevWorkers := SetMaxWorkers(1)
	defer SetMaxWorkers(prevWorkers)
	prev := EnableKernelStats(true)
	defer EnableKernelStats(prev)
	ResetKernelStats()

	a := New(4, 4)
	b := New(4, 4)
	a.Fill(1)
	b.Fill(2)
	MatMul(a, b) // delegates to MatMulInto: one count, not two
	MatMulTransA(a, b)
	MatMulTransB(a, b)
	cols := make([]float64, 1*3*3*4*4) // C*KH*KW rows of OH*OW = 4*4
	Im2Col(make([]float64, 16), 1, 4, 4, 3, 3, 1, 1, cols)
	cols1d := make([]float64, 1*3*4)
	Im2Col1D(make([]float64, 6), 1, 6, 3, 1, 0, cols1d)
	Col2Im(cols, 1, 4, 4, 3, 3, 1, 1, make([]float64, 16))
	Col2Im1D(cols1d, 1, 6, 3, 1, 0, make([]float64, 6))

	s := ReadKernelStats()
	if s.MatMulCalls != 3 {
		t.Fatalf("MatMulCalls = %d, want 3", s.MatMulCalls)
	}
	if s.Im2ColCalls != 2 {
		t.Fatalf("Im2ColCalls = %d, want 2", s.Im2ColCalls)
	}
	if s.Col2ImCalls != 2 {
		t.Fatalf("Col2ImCalls = %d, want 2", s.Col2ImCalls)
	}
	// MaxWorkers is 1, so every matmul ran its serial path and the
	// parallel counters only see explicit ParallelForChunks calls.
	ParallelForChunks(8, 2, func(lo, hi int) {})
	s = ReadKernelStats()
	if s.ParallelInline == 0 {
		t.Fatalf("ParallelInline = 0 after single-worker launch")
	}
	if s.ParallelLaunches != 0 {
		t.Fatalf("ParallelLaunches = %d with MaxWorkers 1", s.ParallelLaunches)
	}

	SetMaxWorkers(4)
	ParallelForChunks(8, 2, func(lo, hi int) {})
	s = ReadKernelStats()
	if s.ParallelLaunches != 1 {
		t.Fatalf("ParallelLaunches = %d, want 1", s.ParallelLaunches)
	}
	if s.ParallelChunks != 4 || s.ParallelWorkers != 4 {
		t.Fatalf("chunks/workers = %d/%d, want 4/4", s.ParallelChunks, s.ParallelWorkers)
	}

	ResetKernelStats()
	if got := ReadKernelStats(); got != (KernelStats{}) {
		t.Fatalf("ResetKernelStats left %+v", got)
	}
}

func TestEnableKernelStatsReturnsPrevious(t *testing.T) {
	orig := KernelStatsEnabled()
	defer EnableKernelStats(orig)

	EnableKernelStats(false)
	if prev := EnableKernelStats(true); prev {
		t.Fatal("EnableKernelStats(true) reported previous=true after disable")
	}
	if !KernelStatsEnabled() {
		t.Fatal("stats not enabled")
	}
	if prev := EnableKernelStats(false); !prev {
		t.Fatal("EnableKernelStats(false) reported previous=false after enable")
	}
}
