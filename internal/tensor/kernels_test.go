package tensor

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// naiveMatMul (the reference triple loop) lives in tensor_test.go.

func randTensor(rng *RNG, dims ...int) *Tensor {
	t := New(dims...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestMatMulVariantsMatchNaive(t *testing.T) {
	rng := NewRNG(11)
	// Mixed shapes: block remainders (not multiples of 4/2), panel
	// boundaries, and tiny edge cases.
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {9, 17, 33}, {13, 300, 21}, {64, 64, 64}, {5, 513, 6}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := naiveMatMul(a, b)
		got := MatMul(a, b)
		if d := maxAbsDiff(got.Data, want.Data); d > 1e-10 {
			t.Errorf("MatMul %v: max diff %g", sh, d)
		}
		// Aᵀ·B with A stored transposed.
		at := Transpose2D(a)
		gotTA := MatMulTransA(at, b)
		if d := maxAbsDiff(gotTA.Data, want.Data); d > 1e-10 {
			t.Errorf("MatMulTransA %v: max diff %g", sh, d)
		}
		// A·Bᵀ with B stored transposed.
		bt := Transpose2D(b)
		gotTB := MatMulTransB(a, bt)
		if d := maxAbsDiff(gotTB.Data, want.Data); d > 1e-10 {
			t.Errorf("MatMulTransB %v: max diff %g", sh, d)
		}
	}
}

func TestMatMulIntoReusesDestination(t *testing.T) {
	rng := NewRNG(3)
	a := randTensor(rng, 7, 9)
	b := randTensor(rng, 9, 5)
	dst := New(7, 5)
	dst.Fill(42) // stale contents must be fully overwritten
	MatMulInto(dst, a, b)
	want := naiveMatMul(a, b)
	if d := maxAbsDiff(dst.Data, want.Data); d > 1e-10 {
		t.Fatalf("MatMulInto left stale data: max diff %g", d)
	}
	prev := SetMaxWorkers(1) // serial path has no goroutine bookkeeping
	defer SetMaxWorkers(prev)
	allocs := testing.AllocsPerRun(10, func() {
		MatMulInto(dst, a, b)
	})
	if allocs > 0 {
		t.Fatalf("MatMulInto allocates %v times per call, want 0", allocs)
	}
}

// TestMatMulBitIdenticalAcrossWorkers pins the determinism contract: the
// chunking must never change any output element's summation order.
func TestMatMulBitIdenticalAcrossWorkers(t *testing.T) {
	rng := NewRNG(5)
	a := randTensor(rng, 37, 129)
	b := randTensor(rng, 129, 43)
	prev := SetMaxWorkers(1)
	serial := MatMul(a, b)
	SetMaxWorkers(8)
	parallel := MatMul(a, b)
	SetMaxWorkers(prev)
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("element %d differs between 1 and 8 workers: %v vs %v", i, serial.Data[i], parallel.Data[i])
		}
	}
}

func TestParallelForChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, tc := range []struct{ n, grain int }{{0, 4}, {1, 4}, {7, 3}, {100, 7}, {64, 64}, {5, 0}} {
			prev := SetMaxWorkers(workers)
			counts := make([]int32, tc.n)
			var calls atomic.Int32
			var mu sync.Mutex
			maxSpan := 0
			ParallelForChunks(tc.n, tc.grain, func(lo, hi int) {
				calls.Add(1)
				mu.Lock()
				if hi-lo > maxSpan {
					maxSpan = hi - lo
				}
				mu.Unlock()
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			SetMaxWorkers(prev)
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times", tc.n, tc.grain, workers, i, c)
				}
			}
			grain := tc.grain
			if grain < 1 {
				grain = 1
			}
			// Serial execution collapses to one call; parallel chunks obey grain.
			if workers > 1 && tc.n > 0 && maxSpan > grain {
				t.Fatalf("n=%d grain=%d: chunk of %d indices exceeds grain", tc.n, tc.grain, maxSpan)
			}
		}
	}
}

func TestParallelForSerialWithOneWorker(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	order := make([]int, 0, 10)
	ParallelFor(10, 3, func(i int) { order = append(order, i) }) // no mutex: must be serial
	for i, v := range order {
		if v != i {
			t.Fatalf("serial ParallelFor visited %v", order)
		}
	}
}

func TestKernelDispatchersMatchScalar(t *testing.T) {
	rng := NewRNG(17)
	for _, n := range []int{1, 3, 4, 7, 8, 15, 16, 33, 100} {
		x := randTensor(rng, n).Data
		y := randTensor(rng, n).Data
		y2 := append([]float64(nil), y...)
		axpy(1.5, x, y)
		scalarAxpy(1.5, x, y2)
		if d := maxAbsDiff(y, y2); d > 1e-12 {
			t.Errorf("axpy n=%d: max diff %g", n, d)
		}
		b := randTensor(rng, n).Data
		rows := make([][]float64, 8)
		for i := 0; i < 4; i++ {
			rows[i] = randTensor(rng, n).Data
			rows[i+4] = append([]float64(nil), rows[i]...)
		}
		axpy4(0.5, -1, 2, 0.25, b, rows[0], rows[1], rows[2], rows[3])
		scalarAxpy4(0.5, -1, 2, 0.25, b, rows[4], rows[5], rows[6], rows[7])
		for i := 0; i < 4; i++ {
			if d := maxAbsDiff(rows[i], rows[i+4]); d > 1e-12 {
				t.Errorf("axpy4 n=%d row %d: max diff %g", n, i, d)
			}
		}
		a0 := randTensor(rng, n).Data
		a1 := randTensor(rng, n).Data
		b0 := randTensor(rng, n).Data
		b1 := randTensor(rng, n).Data
		s00, s01, s10, s11 := dot2x2(a0, a1, b0, b1)
		w00, w01, w10, w11 := scalarDot2x2(a0, a1, b0, b1)
		for _, p := range [][2]float64{{s00, w00}, {s01, w01}, {s10, w10}, {s11, w11}} {
			if math.Abs(p[0]-p[1]) > 1e-10*float64(n) {
				t.Errorf("dot2x2 n=%d: %v vs %v", n, p[0], p[1])
			}
		}
		if s := dotVec(a0, b0); math.Abs(s-scalarDot(a0, b0)) > 1e-10*float64(n) {
			t.Errorf("dotVec n=%d: %v vs %v", n, s, scalarDot(a0, b0))
		}
	}
}

// naive single-sample im2col reference: walks every output tap.
func naiveIm2Col(x []float64, c, h, w, kh, kw, stride, pad int) []float64 {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := make([]float64, c*kh*kw*oh*ow)
	row := 0
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
						v := 0.0
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = x[ch*h*w+iy*w+ix]
						}
						out[row*oh*ow+oy*ow+ox] = v
					}
				}
				row++
			}
		}
	}
	return out
}

func TestIm2ColStridedMatchesNaive(t *testing.T) {
	rng := NewRNG(23)
	cases := []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 5, 5, 3, 3, 1, 1},
		{2, 7, 6, 3, 3, 1, 0},
		{3, 8, 8, 5, 5, 1, 2},
		{2, 9, 9, 3, 3, 2, 1},
		{1, 4, 4, 4, 4, 1, 3}, // pad > most kx: exercises empty/clipped runs
	}
	for _, tc := range cases {
		x := randTensor(rng, tc.c*tc.h*tc.w).Data
		oh := ConvOut(tc.h, tc.kh, tc.stride, tc.pad)
		ow := ConvOut(tc.w, tc.kw, tc.stride, tc.pad)
		ohw := oh * ow
		ckk := tc.c * tc.kh * tc.kw
		want := naiveIm2Col(x, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)

		got := make([]float64, ckk*ohw)
		Im2Col(x, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, got)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Errorf("Im2Col %+v: max diff %g", tc, d)
		}

		// Strided form: embed as sample 1 of a 3-sample batched matrix.
		rowStride := 3 * ohw
		batched := make([]float64, ckk*rowStride)
		for i := range batched {
			batched[i] = math.NaN() // unwritten cells must stay untouched
		}
		Im2ColStrided(x, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, batched[ohw:], rowStride)
		for r := 0; r < ckk; r++ {
			for j := 0; j < ohw; j++ {
				if batched[r*rowStride+ohw+j] != want[r*ohw+j] {
					t.Fatalf("Im2ColStrided %+v: cell (%d,%d) = %v want %v", tc, r, j, batched[r*rowStride+ohw+j], want[r*ohw+j])
				}
			}
		}
		for r := 0; r < ckk; r++ {
			for j := 0; j < ohw; j++ {
				if !math.IsNaN(batched[r*rowStride+j]) || !math.IsNaN(batched[r*rowStride+2*ohw+j]) {
					t.Fatalf("Im2ColStrided %+v: wrote outside its column block", tc)
				}
			}
		}

		// Col2Im adjoint identity: ⟨Im2Col(x), g⟩ == ⟨x, Col2Im(g)⟩.
		g := randTensor(rng, ckk*ohw).Data
		dx := make([]float64, len(x))
		Col2Im(g, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, dx)
		lhs, rhs := 0.0, 0.0
		for i := range g {
			lhs += want[i] * g[i]
		}
		for i := range x {
			rhs += x[i] * dx[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*math.Abs(lhs) {
			t.Errorf("Col2Im %+v: adjoint identity violated: %v vs %v", tc, lhs, rhs)
		}

		// Strided Col2Im must match the contiguous one.
		gBatched := make([]float64, ckk*rowStride)
		for r := 0; r < ckk; r++ {
			copy(gBatched[r*rowStride+ohw:r*rowStride+2*ohw], g[r*ohw:(r+1)*ohw])
		}
		dx2 := make([]float64, len(x))
		Col2ImStrided(gBatched[ohw:], tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, dx2, rowStride)
		if d := maxAbsDiff(dx, dx2); d != 0 {
			t.Errorf("Col2ImStrided %+v: max diff %g vs contiguous", tc, d)
		}
	}
}

func TestIm2Col1DStridedMatchesContiguous(t *testing.T) {
	rng := NewRNG(29)
	cases := []struct{ c, l, k, stride, pad int }{
		{1, 9, 3, 1, 1}, {2, 16, 5, 1, 2}, {3, 10, 3, 2, 1}, {1, 6, 6, 1, 5},
	}
	for _, tc := range cases {
		x := randTensor(rng, tc.c*tc.l).Data
		ol := ConvOut(tc.l, tc.k, tc.stride, tc.pad)
		ck := tc.c * tc.k
		want := make([]float64, ck*ol)
		Im2Col1D(x, tc.c, tc.l, tc.k, tc.stride, tc.pad, want)
		rowStride := 2 * ol
		batched := make([]float64, ck*rowStride)
		Im2Col1DStrided(x, tc.c, tc.l, tc.k, tc.stride, tc.pad, batched[ol:], rowStride)
		for r := 0; r < ck; r++ {
			for j := 0; j < ol; j++ {
				if batched[r*rowStride+ol+j] != want[r*ol+j] {
					t.Fatalf("Im2Col1DStrided %+v: cell (%d,%d) differs", tc, r, j)
				}
			}
		}
		g := randTensor(rng, ck*ol).Data
		dx := make([]float64, len(x))
		Col2Im1D(g, tc.c, tc.l, tc.k, tc.stride, tc.pad, dx)
		gBatched := make([]float64, ck*rowStride)
		for r := 0; r < ck; r++ {
			copy(gBatched[r*rowStride+ol:r*rowStride+2*ol], g[r*ol:(r+1)*ol])
		}
		dx2 := make([]float64, len(x))
		Col2Im1DStrided(gBatched[ol:], tc.c, tc.l, tc.k, tc.stride, tc.pad, dx2, rowStride)
		if d := maxAbsDiff(dx, dx2); d != 0 {
			t.Errorf("Col2Im1DStrided %+v: max diff %g vs contiguous", tc, d)
		}
	}
}
