package tensor

// Scalar reference kernels for the innermost matmul loops. These are the
// portable implementations behind axpy/axpy4/dot2x2; on amd64 with
// AVX2+FMA the dispatchers in simd_amd64.go replace the bulk of the work
// with vector code and fall back to these for tails and small inputs.
//
// axpy-style kernels carry no cross-element reduction, so their vector
// form is bit-identical to the scalar form. dot-style kernels reduce in
// four lanes, which reorders the summation; the order is still fixed per
// build/CPU, so results remain bit-identical across runs and across
// MaxWorkers settings on the same machine.

// scalarAxpy computes y[j] += alpha*x[j].
func scalarAxpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	for j, xv := range x {
		y[j] += alpha * xv
	}
}

// scalarAxpy4 computes cR[j] += avR*b[j] for four output rows sharing
// one streamed b row.
func scalarAxpy4(av0, av1, av2, av3 float64, b, c0, c1, c2, c3 []float64) {
	c0 = c0[:len(b)]
	c1 = c1[:len(b)]
	c2 = c2[:len(b)]
	c3 = c3[:len(b)]
	for j, bv := range b {
		c0[j] += av0 * bv
		c1[j] += av1 * bv
		c2[j] += av2 * bv
		c3[j] += av3 * bv
	}
}

// scalarDot2x2 computes the four dot products of {a0, a1} × {b0, b1}.
func scalarDot2x2(a0, a1, b0, b1 []float64) (s00, s01, s10, s11 float64) {
	a1 = a1[:len(a0)]
	b0 = b0[:len(a0)]
	b1 = b1[:len(a0)]
	for p, av0 := range a0 {
		av1 := a1[p]
		bv0, bv1 := b0[p], b1[p]
		s00 += av0 * bv0
		s01 += av0 * bv1
		s10 += av1 * bv0
		s11 += av1 * bv1
	}
	return s00, s01, s10, s11
}

// scalarDot computes the dot product of x and y.
func scalarDot(x, y []float64) float64 {
	y = y[:len(x)]
	s := 0.0
	for p, xv := range x {
		s += xv * y[p]
	}
	return s
}
