package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with helpers for reproducible weight initialisation
// and sampling. Every simulation entity owns its own RNG derived from the
// run seed, so parallel execution cannot perturb the random stream.
type RNG struct{ *rand.Rand }

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{rand.New(rand.NewSource(seed))}
}

// Split derives a child RNG from this one, keyed by id. Children with
// distinct ids have independent-looking streams and are stable across
// runs: the derivation depends only on the parent seed and id, not on how
// much of the parent stream has been consumed.
func Split(seed int64, id int64) *RNG {
	// SplitMix64-style mixing of (seed, id) to decorrelate child streams.
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// FillNormal fills t with N(mean, std²) samples.
func (r *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + std*r.NormFloat64()
	}
}

// FillUniform fills t with U[lo, hi) samples.
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float64()
	}
}

// XavierUniform fills t with the Glorot/Xavier uniform initialisation for
// a layer with the given fan-in and fan-out.
func (r *RNG) XavierUniform(t *Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	r.FillUniform(t, -limit, limit)
}

// HeNormal fills t with the He/Kaiming normal initialisation for a layer
// with the given fan-in (appropriate before ReLU).
func (r *RNG) HeNormal(t *Tensor, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	r.FillNormal(t, 0, std)
}

// Perm returns a random permutation of [0, n), like rand.Perm.
func (r *RNG) Permutation(n int) []int { return r.Perm(n) }
