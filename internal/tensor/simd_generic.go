//go:build !amd64

package tensor

// Portable fallbacks for architectures without the AVX2 kernels. These
// keep the dispatcher names identical so matmul.go is arch-agnostic.

func axpy(alpha float64, x, y []float64) {
	scalarAxpy(alpha, x, y)
}

func axpy4(av0, av1, av2, av3 float64, b, c0, c1, c2, c3 []float64) {
	scalarAxpy4(av0, av1, av2, av3, b, c0, c1, c2, c3)
}

func dot2x2(a0, a1, b0, b1 []float64) (s00, s01, s10, s11 float64) {
	return scalarDot2x2(a0, a1, b0, b1)
}

func dotVec(x, y []float64) float64 {
	return scalarDot(x, y)
}
