package tensor

// Convolution lowering kernels (im2col / col2im). The nn package builds
// Conv2D/Conv1D layers on top of these plus MatMul: convolution of one
// sample becomes a single matrix product
//
//	out [OutC, OH*OW] = W [OutC, C*KH*KW] · cols [C*KH*KW, OH*OW]
//
// which keeps the hot loop in the cache-friendly MatMul kernel.

// ConvOut returns the output spatial size of a convolution along one axis.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers a single-sample image x (layout [C, H, W], flat slice) to
// a column matrix written into cols, which must have length
// C*KH*KW * OH*OW and is interpreted as [C*KH*KW, OH*OW] row-major.
// Out-of-bounds taps (zero padding) produce zeros.
func Im2Col(x []float64, c, h, w, kh, kw, stride, pad int, cols []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	ohw := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := cols[row*ohw : (row+1)*ohw]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[i] = 0
						} else {
							dst[i] = x[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters a column-matrix gradient (layout [C*KH*KW, OH*OW])
// back into an image gradient dx (layout [C, H, W]), accumulating where
// receptive fields overlap. dx must be zeroed by the caller if it should
// not accumulate into existing values.
func Col2Im(cols []float64, c, h, w, kh, kw, stride, pad int, dx []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	ohw := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cols[row*ohw : (row+1)*ohw]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						i += ow
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							dx[rowBase+ix] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Im2Col1D lowers a single-sample sequence x (layout [C, L]) to a column
// matrix cols of layout [C*K, OL].
func Im2Col1D(x []float64, c, l, k, stride, pad int, cols []float64) {
	ol := ConvOut(l, k, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * l
		for kx := 0; kx < k; kx++ {
			dst := cols[row*ol : (row+1)*ol]
			for o := 0; o < ol; o++ {
				ix := o*stride - pad + kx
				if ix < 0 || ix >= l {
					dst[o] = 0
				} else {
					dst[o] = x[chBase+ix]
				}
			}
			row++
		}
	}
}

// Col2Im1D scatters a column-matrix gradient (layout [C*K, OL]) back into
// a sequence gradient dx (layout [C, L]), accumulating overlaps.
func Col2Im1D(cols []float64, c, l, k, stride, pad int, dx []float64) {
	ol := ConvOut(l, k, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * l
		for kx := 0; kx < k; kx++ {
			src := cols[row*ol : (row+1)*ol]
			for o := 0; o < ol; o++ {
				ix := o*stride - pad + kx
				if ix >= 0 && ix < l {
					dx[chBase+ix] += src[o]
				}
			}
			row++
		}
	}
}
