package tensor

// Convolution lowering kernels (im2col / col2im). The nn package builds
// Conv2D/Conv1D layers on top of these plus MatMul: convolution of a
// whole batch becomes a single matrix product
//
//	out [OutC, N*OH*OW] = W [OutC, C*KH*KW] · cols [C*KH*KW, N*OH*OW]
//
// where sample i owns columns [i*OH*OW, (i+1)*OH*OW). The strided
// variants below write/read one sample's column block inside that batched
// matrix: row r of the block lives at cols[r*rowStride+...], so samples
// can be lowered in parallel into disjoint column ranges.

// ConvOut returns the output spatial size of a convolution along one axis.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers a single-sample image x (layout [C, H, W], flat slice) to
// a column matrix written into cols, which must have length
// C*KH*KW * OH*OW and is interpreted as [C*KH*KW, OH*OW] row-major.
// Out-of-bounds taps (zero padding) produce zeros.
func Im2Col(x []float64, c, h, w, kh, kw, stride, pad int, cols []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	Im2ColStrided(x, c, h, w, kh, kw, stride, pad, cols, oh*ow)
}

// Im2ColStrided lowers a single-sample image x (layout [C, H, W]) into a
// column block whose row r occupies cols[r*rowStride : r*rowStride+OH*OW].
// Passing the batched matrix offset by the sample's column start and
// rowStride = N*OH*OW places the sample inside the batched layout above.
// Convolutions with stride 1 copy each in-bounds run with copy() instead
// of per-element indexing.
func Im2ColStrided(x []float64, c, h, w, kh, kw, stride, pad int, cols []float64, rowStride int) {
	countIm2Col()
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := cols[row*rowStride : row*rowStride+oh*ow]
				for oy := 0; oy < oh; oy++ {
					drow := dst[oy*ow : (oy+1)*ow]
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						clear(drow)
						continue
					}
					rowBase := chBase + iy*w
					if stride == 1 {
						lo, hi := inBoundsRange(w, ow, pad, kx)
						if hi < lo {
							clear(drow)
							continue
						}
						clear(drow[:lo])
						copy(drow[lo:hi+1], x[rowBase+lo-pad+kx:rowBase+hi+1-pad+kx])
						clear(drow[hi+1:])
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							drow[ox] = 0
						} else {
							drow[ox] = x[rowBase+ix]
						}
					}
				}
				row++
			}
		}
	}
}

// inBoundsRange returns the inclusive output-index range [lo, hi] whose
// stride-1 input taps ix = ox − pad + kx fall inside [0, w). An empty
// range reports hi < lo.
func inBoundsRange(w, ow, pad, kx int) (lo, hi int) {
	lo = pad - kx
	if lo < 0 {
		lo = 0
	}
	hi = w - 1 + pad - kx
	if hi > ow-1 {
		hi = ow - 1
	}
	return lo, hi
}

// Col2Im scatters a column-matrix gradient (layout [C*KH*KW, OH*OW])
// back into an image gradient dx (layout [C, H, W]), accumulating where
// receptive fields overlap. dx must be zeroed by the caller if it should
// not accumulate into existing values.
func Col2Im(cols []float64, c, h, w, kh, kw, stride, pad int, dx []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	Col2ImStrided(cols, c, h, w, kh, kw, stride, pad, dx, oh*ow)
}

// Col2ImStrided is the adjoint of Im2ColStrided: it reads the sample's
// column block (row r at cols[r*rowStride+...]) and accumulates into the
// image gradient dx (layout [C, H, W]).
func Col2ImStrided(cols []float64, c, h, w, kh, kw, stride, pad int, dx []float64, rowStride int) {
	countCol2Im()
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cols[row*rowStride : row*rowStride+oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					srow := src[oy*ow : (oy+1)*ow]
					rowBase := chBase + iy*w
					if stride == 1 {
						lo, hi := inBoundsRange(w, ow, pad, kx)
						if hi < lo {
							continue
						}
						drow := dx[rowBase+lo-pad+kx:]
						for ox := lo; ox <= hi; ox++ {
							drow[ox-lo] += srow[ox]
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							dx[rowBase+ix] += srow[ox]
						}
					}
				}
				row++
			}
		}
	}
}

// Im2Col1D lowers a single-sample sequence x (layout [C, L]) to a column
// matrix cols of layout [C*K, OL].
func Im2Col1D(x []float64, c, l, k, stride, pad int, cols []float64) {
	Im2Col1DStrided(x, c, l, k, stride, pad, cols, ConvOut(l, k, stride, pad))
}

// Im2Col1DStrided lowers a single-sample sequence into a column block
// whose row r occupies cols[r*rowStride : r*rowStride+OL], mirroring
// Im2ColStrided for the batched [C*K, N*OL] layout.
func Im2Col1DStrided(x []float64, c, l, k, stride, pad int, cols []float64, rowStride int) {
	countIm2Col()
	ol := ConvOut(l, k, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * l
		for kx := 0; kx < k; kx++ {
			dst := cols[row*rowStride : row*rowStride+ol]
			if stride == 1 {
				lo, hi := inBoundsRange(l, ol, pad, kx)
				if hi < lo {
					clear(dst)
				} else {
					clear(dst[:lo])
					copy(dst[lo:hi+1], x[chBase+lo-pad+kx:chBase+hi+1-pad+kx])
					clear(dst[hi+1:])
				}
				row++
				continue
			}
			for o := 0; o < ol; o++ {
				ix := o*stride - pad + kx
				if ix < 0 || ix >= l {
					dst[o] = 0
				} else {
					dst[o] = x[chBase+ix]
				}
			}
			row++
		}
	}
}

// Col2Im1D scatters a column-matrix gradient (layout [C*K, OL]) back into
// a sequence gradient dx (layout [C, L]), accumulating overlaps.
func Col2Im1D(cols []float64, c, l, k, stride, pad int, dx []float64) {
	Col2Im1DStrided(cols, c, l, k, stride, pad, dx, ConvOut(l, k, stride, pad))
}

// Col2Im1DStrided is the adjoint of Im2Col1DStrided.
func Col2Im1DStrided(cols []float64, c, l, k, stride, pad int, dx []float64, rowStride int) {
	countCol2Im()
	ol := ConvOut(l, k, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * l
		for kx := 0; kx < k; kx++ {
			src := cols[row*rowStride : row*rowStride+ol]
			if stride == 1 {
				lo, hi := inBoundsRange(l, ol, pad, kx)
				if hi >= lo {
					drow := dx[chBase+lo-pad+kx:]
					for o := lo; o <= hi; o++ {
						drow[o-lo] += src[o]
					}
				}
				row++
				continue
			}
			for o := 0; o < ol; o++ {
				ix := o*stride - pad + kx
				if ix >= 0 && ix < l {
					dx[chBase+ix] += src[o]
				}
			}
			row++
		}
	}
}
