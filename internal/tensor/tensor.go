// Package tensor implements a small dense float64 tensor library used as
// the numerical substrate for the neural-network training stack. It is
// deliberately minimal — shapes, elementwise arithmetic, parallel matrix
// multiplication, im2col-based convolution kernels and pooling — which is
// everything the federated-learning simulation needs, built on the
// standard library only.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 tensor. The zero value is not
// usable; construct tensors with New, Zeros, FromSlice or the helpers.
type Tensor struct {
	// Data holds the elements in row-major order. Exposed so hot loops
	// (layer kernels, aggregation) can operate on it directly.
	Data  []float64
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// Zeros is an alias of New, named for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly the number of elements the
// shape implies.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data has %d elements, shape %v needs %d", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Data: make([]float64, len(t.Data)), shape: append([]int(nil), t.shape...)}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of the same
// total size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// offset computes the flat index of a multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank %d", idx, len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and u have identical shape and elements within
// tolerance eps.
func (t *Tensor) Equal(u *Tensor, eps float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-u.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if len(t.Data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.shape, len(t.Data))
}
