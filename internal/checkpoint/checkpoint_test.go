package checkpoint

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"middle/internal/tensor"
)

func TestRoundTrip(t *testing.T) {
	vec := []float64{1.5, -2.25, 0, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	var buf bytes.Buffer
	if err := SaveModel(&buf, "mnist-cnn", vec); err != nil {
		t.Fatal(err)
	}
	name, got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mnist-cnn" {
		t.Fatalf("name %q", name)
	}
	if len(got) != len(vec) {
		t.Fatalf("length %d", len(got))
	}
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], vec[i])
		}
	}
}

func TestEmptyVectorAndName(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	name, vec, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" || len(vec) != 0 {
		t.Fatalf("got %q / %d values", name, len(vec))
	}
}

func TestNaNRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "x", []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	_, vec, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(vec[0]) {
		t.Fatalf("NaN not preserved: %v", vec[0])
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "model", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit (inside a float, past header).
	raw[len(raw)-10] ^= 0x40
	if _, _, err := LoadModel(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "model", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{3, 6, 9, len(raw) - 2} {
		if _, _, err := LoadModel(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, _, err := LoadModel(strings.NewReader("NOTAMODEL")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestNameTooLongRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, strings.Repeat("x", maxName+1), nil); err == nil {
		t.Fatal("oversized name accepted")
	}
}

// Property: arbitrary vectors round-trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := tensor.NewRNG(seed)
		vec := make([]float64, int(n8)%200)
		for i := range vec {
			vec[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
		var buf bytes.Buffer
		if err := SaveModel(&buf, "m", vec); err != nil {
			return false
		}
		_, got, err := LoadModel(&buf)
		if err != nil || len(got) != len(vec) {
			return false
		}
		for i := range vec {
			if got[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
