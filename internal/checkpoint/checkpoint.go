// Package checkpoint serialises model parameter vectors so trained
// global models can be saved, shipped and reloaded across processes —
// e.g. warm-starting a paper-scale run from a shorter one, or comparing
// models trained by different strategies offline.
//
// Format (little-endian):
//
//	magic   "MIDL" + version byte 1
//	nameLen uint16, name bytes (UTF-8)
//	count   uint64, then count float64 values
//	crc     uint32 IEEE over everything above
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

var magic = [5]byte{'M', 'I', 'D', 'L', 1}

// maxName bounds the model-name field.
const maxName = 1 << 12

// SaveModel writes a named parameter vector to w.
func SaveModel(w io.Writer, name string, vec []float64) error {
	if len(name) > maxName {
		return fmt.Errorf("checkpoint: name too long (%d bytes)", len(name))
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(vec))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range vec {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	// Flush payload into the CRC before emitting the trailer.
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// LoadModel reads a checkpoint written by SaveModel, verifying the CRC.
func LoadModel(r io.Reader) (name string, vec []float64, err error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var gotMagic [5]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if gotMagic != magic {
		return "", nil, fmt.Errorf("checkpoint: bad magic %q", gotMagic[:])
	}
	var nameLen uint16
	if err := binary.Read(tr, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading name length: %w", err)
	}
	if nameLen > maxName {
		return "", nil, fmt.Errorf("checkpoint: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(tr, nameBytes); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading name: %w", err)
	}
	var count uint64
	if err := binary.Read(tr, binary.LittleEndian, &count); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading count: %w", err)
	}
	const maxParams = 1 << 30
	if count > maxParams {
		return "", nil, fmt.Errorf("checkpoint: implausible parameter count %d", count)
	}
	vec = make([]float64, count)
	buf := make([]byte, 8)
	for i := range vec {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return "", nil, fmt.Errorf("checkpoint: reading value %d: %w", i, err)
		}
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got != want {
		return "", nil, fmt.Errorf("checkpoint: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return string(nameBytes), vec, nil
}

// hashWriter asserts the crc type implements hash.Hash32 (compile-time
// documentation of the dependency).
var _ hash.Hash32 = crc32.NewIEEE()
