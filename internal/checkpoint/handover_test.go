package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleHandover() Handover {
	return Handover{
		Device: 7, SrcEdge: 1, DestEdge: 2, Generation: 3,
		Round: 12, LastSync: 10, LastTrained: 11, Steps: 42, DataSize: 30,
		StatUtil:   1.5,
		Model:      []float64{0.25, -1, math.Pi, 0},
		MomentLens: []int{3, 1},
		Moments:    []float64{0.1, -0.2, 0.3, 9},
	}
}

func handoversEqual(a, b Handover) bool {
	if a.Device != b.Device || a.SrcEdge != b.SrcEdge || a.DestEdge != b.DestEdge ||
		a.Generation != b.Generation || a.Round != b.Round || a.LastSync != b.LastSync ||
		a.LastTrained != b.LastTrained || a.Steps != b.Steps || a.DataSize != b.DataSize {
		return false
	}
	if math.Float64bits(a.StatUtil) != math.Float64bits(b.StatUtil) {
		return false
	}
	if len(a.Model) != len(b.Model) || len(a.Moments) != len(b.Moments) || len(a.MomentLens) != len(b.MomentLens) {
		return false
	}
	for i := range a.Model {
		if math.Float64bits(a.Model[i]) != math.Float64bits(b.Model[i]) {
			return false
		}
	}
	for i := range a.Moments {
		if math.Float64bits(a.Moments[i]) != math.Float64bits(b.Moments[i]) {
			return false
		}
	}
	for i := range a.MomentLens {
		if a.MomentLens[i] != b.MomentLens[i] {
			return false
		}
	}
	return true
}

func TestHandoverRoundTrip(t *testing.T) {
	in := sampleHandover()
	raw, err := EncodeHandoverBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHandoverBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !handoversEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestHandoverNoMomentsRoundTrip(t *testing.T) {
	in := sampleHandover()
	in.MomentLens, in.Moments = nil, nil
	raw, err := EncodeHandoverBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHandoverBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !handoversEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestHandoverMismatchedMomentsRejected(t *testing.T) {
	in := sampleHandover()
	in.MomentLens = []int{2} // sum 2 ≠ 4 values
	if _, err := EncodeHandoverBytes(in); err == nil {
		t.Fatal("mismatched moment lengths encoded")
	}
	in.MomentLens = []int{-1, 5}
	if _, err := EncodeHandoverBytes(in); err == nil {
		t.Fatal("negative moment length encoded")
	}
}

// TestHandoverCorruptionDetected flips every single byte in turn: the
// inner CRC (or a structural guard) must reject each mutation — this is
// the checksum the Byzantine-rewrite fault cannot recompute.
func TestHandoverCorruptionDetected(t *testing.T) {
	raw, err := EncodeHandoverBytes(sampleHandover())
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		if _, err := DecodeHandoverBytes(mut); err == nil {
			t.Fatalf("flipped byte %d decoded cleanly", i)
		}
	}
}

func TestHandoverTruncationDetected(t *testing.T) {
	raw, err := EncodeHandoverBytes(sampleHandover())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 4, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeHandoverBytes(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestHandoverJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	in := sampleHandover()
	path, err := SaveHandoverFile(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Ext(path) != ".hov" {
		t.Fatalf("journal path %q does not use the .hov extension", path)
	}
	hs, err := LoadHandovers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || !handoversEqual(in, hs[0]) {
		t.Fatalf("LoadHandovers = %+v, want the saved record", hs)
	}
	// Journals must be invisible to the .ckpt checkpoint scan.
	if _, ok, err := LoadLatestNamed(dir, "edge1"); err != nil || ok {
		t.Fatalf("checkpoint scan saw handover journals (ok=%v, err=%v)", ok, err)
	}
	if err := RemoveHandoverFile(dir, in.Device, in.Generation); err != nil {
		t.Fatal(err)
	}
	// Removing again is not an error: the journal may already be resolved.
	if err := RemoveHandoverFile(dir, in.Device, in.Generation); err != nil {
		t.Fatal(err)
	}
	hs, err = LoadHandovers(dir)
	if err != nil || len(hs) != 0 {
		t.Fatalf("journal survived removal: %+v, %v", hs, err)
	}
}

func TestLoadHandoversSkipsTornAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	good := sampleHandover()
	if _, err := SaveHandoverFile(dir, good); err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeHandoverBytes(good)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "handover-d000099-g000001.hov")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	hs, err := LoadHandovers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0].Device != good.Device {
		t.Fatalf("torn journal not skipped: %+v", hs)
	}
	if hs, err := LoadHandovers(filepath.Join(dir, "missing")); err != nil || hs != nil {
		t.Fatalf("missing dir: %+v, %v", hs, err)
	}
}
