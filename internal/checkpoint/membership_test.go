package checkpoint

// Membership-bearing state records (v4): the v2 layout plus the
// membership epoch and the device→edge assignment. A state without
// membership fields must keep writing the v2 wire format byte-for-byte.

import (
	"bytes"
	"testing"
)

func membershipState() State {
	st := sampleState()
	st.Epoch = 9
	st.Assignment = map[int]int{0: 2, 3: 0, 11: 1}
	return st
}

func TestStateV4RoundTrip(t *testing.T) {
	want := membershipState()
	var buf bytes.Buffer
	if err := SaveState(&buf, want); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != 4 {
		t.Fatalf("membership state wrote wire version %d, want 4", got)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, got, want)
	if got.Epoch != want.Epoch {
		t.Fatalf("epoch %d, want %d", got.Epoch, want.Epoch)
	}
	if len(got.Assignment) != len(want.Assignment) {
		t.Fatalf("assignment %v, want %v", got.Assignment, want.Assignment)
	}
	for d, e := range want.Assignment {
		if got.Assignment[d] != e {
			t.Fatalf("device %d assigned to %d, want %d", d, got.Assignment[d], e)
		}
	}
}

// TestStateWithoutMembershipStaysV2 pins wire compatibility: a state
// carrying no membership fields encodes exactly as before the v4 format
// existed, so pre-membership readers keep loading it.
func TestStateWithoutMembershipStaysV2(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != 2 {
		t.Fatalf("membership-free state wrote wire version %d, want 2", got)
	}
}

// TestStateV4TornAndCorrupt extends the torn-write and bit-flip
// rejection guarantees to the membership section of the record.
func TestStateV4TornAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, membershipState()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := LoadState(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(full))
		}
	}
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, err := LoadState(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d loaded successfully", i)
		}
	}
}

// TestStateV4SaveDeterministic pins the sorted-device-id encoding of the
// assignment table: two saves are byte-identical regardless of map
// iteration order.
func TestStateV4SaveDeterministic(t *testing.T) {
	st := membershipState()
	var a, b bytes.Buffer
	if err := SaveState(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same membership state differ byte-wise")
	}
}
