package checkpoint

// Versioned multi-section coordinator state (format version 2): the
// cloud's crash-recovery record — global model, round counter and the
// per-edge weight accumulators of the last synchronisation. Version 1
// files written by SaveModel remain loadable through LoadModel (the
// magic byte distinguishes them); LoadState also accepts v1 files,
// mapping them to a State with Round 0 and no edge weights.
//
// Format (little-endian):
//
//	magic   "MIDL" + version byte 2
//	nameLen uint16, name bytes (UTF-8)
//	round   uint64
//	count   uint64, then count float64 values (the model)
//	edges   uint32, then per edge: id uint32, weight float64
//	crc     uint32 IEEE over everything above

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

var magicV2 = [5]byte{'M', 'I', 'D', 'L', 2}

// magicV4 marks a membership-bearing state record: the v2 layout plus a
// trailing membership section (epoch + device→edge assignment) before
// the CRC. Version byte 3 belongs to handover records (handover.go).
var magicV4 = [5]byte{'M', 'I', 'D', 'L', 4}

// State is a cloud coordinator snapshot.
type State struct {
	Name  string
	Round int
	Model []float64
	// EdgeWeights holds the d̂_n accumulators reported by each edge at
	// the sync round this state was taken (diagnostics on resume).
	EdgeWeights map[int]float64
	// Epoch is the membership epoch at checkpoint time; zero when the
	// self-healing membership layer is disabled.
	Epoch int
	// Assignment maps device id → edge id as last reported on a sync
	// round (membership mode only; nil otherwise).
	Assignment map[int]int
}

// membership reports whether the state carries the v4 membership
// section. Zero-valued membership fields keep the v2 format so
// pre-membership runs produce byte-identical checkpoint files.
func (st State) membership() bool { return st.Epoch != 0 || len(st.Assignment) > 0 }

// SaveState writes a coordinator snapshot to w: the v2 record, or the
// v4 extension when membership state is present.
func SaveState(w io.Writer, st State) error {
	if len(st.Name) > maxName {
		return fmt.Errorf("checkpoint: name too long (%d bytes)", len(st.Name))
	}
	wireMagic := magicV2
	if st.membership() {
		wireMagic = magicV4
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(wireMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(st.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(st.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(st.Round)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(st.Model))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range st.Model {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	// Serialise edge weights in sorted id order so identical states
	// produce identical bytes.
	ids := make([]int, 0, len(st.EdgeWeights))
	for id := range st.EdgeWeights {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := binary.Write(bw, binary.LittleEndian, uint32(id)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(st.EdgeWeights[id])); err != nil {
			return err
		}
	}
	if st.membership() {
		if err := binary.Write(bw, binary.LittleEndian, uint64(st.Epoch)); err != nil {
			return err
		}
		devs := make([]int, 0, len(st.Assignment))
		for d := range st.Assignment {
			devs = append(devs, d)
		}
		sort.Ints(devs)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(devs))); err != nil {
			return err
		}
		for _, d := range devs {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(st.Assignment[d])); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// LoadState reads a coordinator snapshot, verifying the CRC. Both v2
// (SaveState) and v1 (SaveModel) records are accepted; v1 records yield
// Round 0 and nil EdgeWeights.
func LoadState(r io.Reader) (State, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var gotMagic [5]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if gotMagic == magic {
		// v1 model record: delegate the remainder to the v1 reader by
		// replaying the consumed magic into its checksum.
		name, vec, err := loadModelBody(r, tr, crc)
		if err != nil {
			return State{}, err
		}
		return State{Name: name, Model: vec}, nil
	}
	if gotMagic != magicV2 && gotMagic != magicV4 {
		return State{}, fmt.Errorf("checkpoint: bad magic %q", gotMagic[:])
	}
	var nameLen uint16
	if err := binary.Read(tr, binary.LittleEndian, &nameLen); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading name length: %w", err)
	}
	if nameLen > maxName {
		return State{}, fmt.Errorf("checkpoint: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(tr, nameBytes); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading name: %w", err)
	}
	var round uint64
	if err := binary.Read(tr, binary.LittleEndian, &round); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading round: %w", err)
	}
	var count uint64
	if err := binary.Read(tr, binary.LittleEndian, &count); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading count: %w", err)
	}
	const maxParams = 1 << 30
	if count > maxParams {
		return State{}, fmt.Errorf("checkpoint: implausible parameter count %d", count)
	}
	vec := make([]float64, count)
	buf := make([]byte, 8)
	for i := range vec {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return State{}, fmt.Errorf("checkpoint: reading value %d: %w", i, err)
		}
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	var edges uint32
	if err := binary.Read(tr, binary.LittleEndian, &edges); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading edge count: %w", err)
	}
	const maxEdges = 1 << 20
	if edges > maxEdges {
		return State{}, fmt.Errorf("checkpoint: implausible edge count %d", edges)
	}
	var weights map[int]float64
	if edges > 0 {
		weights = make(map[int]float64, edges)
	}
	for i := uint32(0); i < edges; i++ {
		var id uint32
		var bits uint64
		if err := binary.Read(tr, binary.LittleEndian, &id); err != nil {
			return State{}, fmt.Errorf("checkpoint: reading edge id: %w", err)
		}
		if err := binary.Read(tr, binary.LittleEndian, &bits); err != nil {
			return State{}, fmt.Errorf("checkpoint: reading edge weight: %w", err)
		}
		weights[int(id)] = math.Float64frombits(bits)
	}
	var epoch uint64
	var assignment map[int]int
	if gotMagic == magicV4 {
		if err := binary.Read(tr, binary.LittleEndian, &epoch); err != nil {
			return State{}, fmt.Errorf("checkpoint: reading epoch: %w", err)
		}
		var devs uint32
		if err := binary.Read(tr, binary.LittleEndian, &devs); err != nil {
			return State{}, fmt.Errorf("checkpoint: reading assignment count: %w", err)
		}
		const maxDevices = 1 << 24
		if devs > maxDevices {
			return State{}, fmt.Errorf("checkpoint: implausible assignment count %d", devs)
		}
		if devs > 0 {
			assignment = make(map[int]int, devs)
		}
		for i := uint32(0); i < devs; i++ {
			var dev, edge uint32
			if err := binary.Read(tr, binary.LittleEndian, &dev); err != nil {
				return State{}, fmt.Errorf("checkpoint: reading assignment device: %w", err)
			}
			if err := binary.Read(tr, binary.LittleEndian, &edge); err != nil {
				return State{}, fmt.Errorf("checkpoint: reading assignment edge: %w", err)
			}
			assignment[int(dev)] = int(edge)
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return State{}, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got != want {
		return State{}, fmt.Errorf("checkpoint: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return State{
		Name: string(nameBytes), Round: int(round), Model: vec, EdgeWeights: weights,
		Epoch: int(epoch), Assignment: assignment,
	}, nil
}

// loadModelBody reads the remainder of a v1 record whose magic was
// already consumed (and folded into crc via tr).
func loadModelBody(r io.Reader, tr io.Reader, crc interface{ Sum32() uint32 }) (string, []float64, error) {
	var nameLen uint16
	if err := binary.Read(tr, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading name length: %w", err)
	}
	if nameLen > maxName {
		return "", nil, fmt.Errorf("checkpoint: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(tr, nameBytes); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading name: %w", err)
	}
	var count uint64
	if err := binary.Read(tr, binary.LittleEndian, &count); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading count: %w", err)
	}
	const maxParams = 1 << 30
	if count > maxParams {
		return "", nil, fmt.Errorf("checkpoint: implausible parameter count %d", count)
	}
	vec := make([]float64, count)
	buf := make([]byte, 8)
	for i := range vec {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return "", nil, fmt.Errorf("checkpoint: reading value %d: %w", i, err)
		}
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return "", nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got != want {
		return "", nil, fmt.Errorf("checkpoint: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return string(nameBytes), vec, nil
}

// SaveStateFile atomically persists st under dir as round-stamped
// "<name>-r<round>.ckpt": the record is written to a temp file, fsynced
// and renamed into place, so a crash mid-write leaves at most a torn
// temp file that LoadLatest ignores. Returns the final path.
func SaveStateFile(dir string, st State) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: creating dir: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s-r%06d.ckpt", st.Name, st.Round))
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := SaveState(tmp, st); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("checkpoint: rename: %w", err)
	}
	return final, nil
}

// LoadLatestNamed is LoadLatest restricted to checkpoints whose
// State.Name equals name — required when several components (the cloud
// and one or more edges) share a checkpoint directory.
func LoadLatestNamed(dir, name string) (st State, ok bool, err error) {
	return loadLatest(dir, func(s State) bool { return s.Name == name })
}

// LoadLatest scans dir for ".ckpt" files and returns the valid state
// with the highest round (ties broken by file name), skipping torn or
// corrupt files. ok is false when no valid checkpoint exists.
func LoadLatest(dir string) (st State, ok bool, err error) {
	return loadLatest(dir, func(State) bool { return true })
}

func loadLatest(dir string, keep func(State) bool) (st State, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return State{}, false, nil
	}
	if err != nil {
		return State{}, false, fmt.Errorf("checkpoint: reading dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".ckpt" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, ferr := os.Open(filepath.Join(dir, name))
		if ferr != nil {
			continue
		}
		cand, lerr := LoadState(f)
		f.Close()
		if lerr != nil {
			continue // torn or corrupt: skip
		}
		if !keep(cand) {
			continue
		}
		if !ok || cand.Round >= st.Round {
			st, ok = cand, true
		}
	}
	return st, ok, nil
}
