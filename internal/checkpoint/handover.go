package checkpoint

// Live-migration handover record (format version 3): the state a source
// edge ships to a destination edge when a device moves mid-round —
// cached model vector, optimizer moments, step counter, data-size
// weight and the source edge's round timeline, plus a per-device
// generation so the destination can reject stale records that arrive
// after a newer move. The record carries its own CRC even though the
// fednet frame that transports it is CRC-framed too: the fault
// injector's Byzantine rewrites recompute the outer frame CRC, so only
// this inner checksum catches a rewritten payload.
//
// Format (little-endian):
//
//	magic    "MIDL" + version byte 3
//	ints     device, srcEdge, destEdge, generation, round,
//	         lastSync, lastTrained, steps, dataSize (each int64)
//	statUtil float64
//	model    count uint64, then count float64 values
//	moments  groups uint32, then per group len uint32;
//	         then sum(len) float64 values
//	crc      uint32 IEEE over everything above
//
// Journal files use the ".hov" extension so LoadLatest's ".ckpt" scan
// never considers them.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

var magicV3 = [5]byte{'M', 'I', 'D', 'L', 3}

// Handover is the state transferred edge-to-edge for one moving device.
type Handover struct {
	Device     int
	SrcEdge    int
	DestEdge   int
	Generation int
	// Round, LastSync and LastTrained pin the source edge's timeline so
	// the destination can tell whether the record belongs to its own
	// cloud-sync era (resume) or a stale one (discard).
	Round       int
	LastSync    int
	LastTrained int
	// Steps is the device optimizer's step counter at handover.
	Steps    int
	DataSize int
	StatUtil float64
	Model    []float64
	// Moments is the flattened optimizer moment state; MomentLens gives
	// the per-group split (see optim.ExportMoments). Empty for devices
	// whose moments are not transferable (multiplexed clients share one
	// optimizer).
	MomentLens []int
	Moments    []float64
}

// EncodeHandover writes a v3 handover record to w.
func EncodeHandover(w io.Writer, h Handover) error {
	total := 0
	for _, n := range h.MomentLens {
		if n < 0 {
			return fmt.Errorf("checkpoint: negative moment group length %d", n)
		}
		total += n
	}
	if total != len(h.Moments) {
		return fmt.Errorf("checkpoint: moment lengths sum %d but %d values", total, len(h.Moments))
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magicV3[:]); err != nil {
		return err
	}
	for _, v := range []int{h.Device, h.SrcEdge, h.DestEdge, h.Generation, h.Round, h.LastSync, h.LastTrained, h.Steps, h.DataSize} {
		if err := binary.Write(bw, binary.LittleEndian, int64(v)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(h.StatUtil)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(h.Model))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range h.Model {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(h.MomentLens))); err != nil {
		return err
	}
	for _, n := range h.MomentLens {
		if err := binary.Write(bw, binary.LittleEndian, uint32(n)); err != nil {
			return err
		}
	}
	for _, v := range h.Moments {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// DecodeHandover reads a v3 handover record, verifying the CRC.
func DecodeHandover(r io.Reader) (Handover, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var gotMagic [5]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return Handover{}, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if gotMagic != magicV3 {
		return Handover{}, fmt.Errorf("checkpoint: bad handover magic %q", gotMagic[:])
	}
	ints := make([]int64, 9)
	for i := range ints {
		if err := binary.Read(tr, binary.LittleEndian, &ints[i]); err != nil {
			return Handover{}, fmt.Errorf("checkpoint: reading header int %d: %w", i, err)
		}
	}
	var utilBits uint64
	if err := binary.Read(tr, binary.LittleEndian, &utilBits); err != nil {
		return Handover{}, fmt.Errorf("checkpoint: reading utility: %w", err)
	}
	var count uint64
	if err := binary.Read(tr, binary.LittleEndian, &count); err != nil {
		return Handover{}, fmt.Errorf("checkpoint: reading model count: %w", err)
	}
	const maxParams = 1 << 30
	if count > maxParams {
		return Handover{}, fmt.Errorf("checkpoint: implausible parameter count %d", count)
	}
	model := make([]float64, count)
	buf := make([]byte, 8)
	for i := range model {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return Handover{}, fmt.Errorf("checkpoint: reading model value %d: %w", i, err)
		}
		model[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	var groups uint32
	if err := binary.Read(tr, binary.LittleEndian, &groups); err != nil {
		return Handover{}, fmt.Errorf("checkpoint: reading moment group count: %w", err)
	}
	const maxGroups = 1 << 16
	if groups > maxGroups {
		return Handover{}, fmt.Errorf("checkpoint: implausible moment group count %d", groups)
	}
	var lens []int
	total := uint64(0)
	if groups > 0 {
		lens = make([]int, groups)
		for i := range lens {
			var n uint32
			if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
				return Handover{}, fmt.Errorf("checkpoint: reading moment length %d: %w", i, err)
			}
			lens[i] = int(n)
			total += uint64(n)
		}
	}
	if total > maxParams {
		return Handover{}, fmt.Errorf("checkpoint: implausible moment count %d", total)
	}
	var moments []float64
	if total > 0 {
		moments = make([]float64, total)
		for i := range moments {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return Handover{}, fmt.Errorf("checkpoint: reading moment value %d: %w", i, err)
			}
			moments[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return Handover{}, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got != want {
		return Handover{}, fmt.Errorf("checkpoint: handover checksum mismatch: file %08x, computed %08x", got, want)
	}
	return Handover{
		Device: int(ints[0]), SrcEdge: int(ints[1]), DestEdge: int(ints[2]),
		Generation: int(ints[3]), Round: int(ints[4]), LastSync: int(ints[5]),
		LastTrained: int(ints[6]), Steps: int(ints[7]), DataSize: int(ints[8]),
		StatUtil: math.Float64frombits(utilBits), Model: model,
		MomentLens: lens, Moments: moments,
	}, nil
}

// EncodeHandoverBytes serialises h to a byte slice.
func EncodeHandoverBytes(h Handover) ([]byte, error) {
	var b bytes.Buffer
	if err := EncodeHandover(&b, h); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeHandoverBytes parses a record produced by EncodeHandoverBytes.
func DecodeHandoverBytes(p []byte) (Handover, error) {
	return DecodeHandover(bytes.NewReader(p))
}

// SaveHandoverFile journals h under dir as
// "handover-d<device>-g<generation>.hov" with the same atomic
// temp+fsync+rename discipline as SaveStateFile, so a source edge crash
// mid-migration leaves either a complete journal or nothing. Returns
// the final path.
func SaveHandoverFile(dir string, h Handover) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: creating dir: %w", err)
	}
	final := filepath.Join(dir, handoverFileName(h.Device, h.Generation))
	tmp, err := os.CreateTemp(dir, ".hov-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := EncodeHandover(tmp, h); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("checkpoint: rename: %w", err)
	}
	return final, nil
}

// RemoveHandoverFile deletes the journal for (device, generation);
// missing files are not an error (the journal may already be resolved).
func RemoveHandoverFile(dir string, device, generation int) error {
	err := os.Remove(filepath.Join(dir, handoverFileName(device, generation)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// LoadHandovers returns every valid handover journal under dir, torn or
// corrupt files skipped, in file-name order (device then generation).
func LoadHandovers(dir string) ([]Handover, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading dir: %w", err)
	}
	var out []Handover
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".hov" {
			continue
		}
		f, ferr := os.Open(filepath.Join(dir, e.Name()))
		if ferr != nil {
			continue
		}
		h, derr := DecodeHandover(bufio.NewReader(f))
		f.Close()
		if derr != nil {
			continue // torn or corrupt: skip
		}
		out = append(out, h)
	}
	return out, nil
}

func handoverFileName(device, generation int) string {
	return fmt.Sprintf("handover-d%06d-g%06d.hov", device, generation)
}
