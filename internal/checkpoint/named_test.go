package checkpoint

import "testing"

// TestLoadLatestNamed pins the shared-directory contract: the cloud and
// every edge checkpoint into one directory, distinguished only by
// State.Name, and each component must recover its own latest record.
func TestLoadLatestNamed(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, round int, lead float64) {
		t.Helper()
		st := State{Name: name, Round: round, Model: []float64{lead, 2}}
		if _, err := SaveStateFile(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	write("global", 10, 1)
	write("global", 20, 2)
	write("edge0", 15, 3)
	write("edge1", 25, 4)

	for _, tc := range []struct {
		name  string
		round int
		lead  float64
	}{
		{"global", 20, 2},
		{"edge0", 15, 3},
		{"edge1", 25, 4},
	} {
		st, ok, err := LoadLatestNamed(dir, tc.name)
		if err != nil || !ok {
			t.Fatalf("%s: ok=%v err=%v", tc.name, ok, err)
		}
		if st.Name != tc.name || st.Round != tc.round || st.Model[0] != tc.lead {
			t.Fatalf("%s: got name %q round %d model[0] %v, want round %d model[0] %v",
				tc.name, st.Name, st.Round, st.Model[0], tc.round, tc.lead)
		}
	}

	// A name with no checkpoints reports not-found, even though the
	// directory holds records for other components.
	if _, ok, err := LoadLatestNamed(dir, "edge7"); ok || err != nil {
		t.Fatalf("edge7: ok=%v err=%v, want ok=false", ok, err)
	}

	// The unfiltered scan still sees the overall newest round.
	st, ok, err := LoadLatest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadLatest: ok=%v err=%v", ok, err)
	}
	if st.Name != "edge1" || st.Round != 25 {
		t.Fatalf("LoadLatest = %q round %d, want edge1 round 25", st.Name, st.Round)
	}
}
