package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleState() State {
	return State{
		Name:  "global",
		Round: 42,
		Model: []float64{1.5, -2.25, 0, 3.75e-9},
		EdgeWeights: map[int]float64{
			0: 120,
			3: 45.5,
			7: 0,
		},
	}
}

func statesEqual(t *testing.T, got, want State) {
	t.Helper()
	if got.Name != want.Name || got.Round != want.Round {
		t.Fatalf("got %q round %d, want %q round %d", got.Name, got.Round, want.Name, want.Round)
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("model length %d, want %d", len(got.Model), len(want.Model))
	}
	for i := range got.Model {
		if got.Model[i] != want.Model[i] {
			t.Fatalf("model[%d] = %v, want %v", i, got.Model[i], want.Model[i])
		}
	}
	if len(got.EdgeWeights) != len(want.EdgeWeights) {
		t.Fatalf("edge weights %v, want %v", got.EdgeWeights, want.EdgeWeights)
	}
	for id, w := range want.EdgeWeights {
		if got.EdgeWeights[id] != w {
			t.Fatalf("edge %d weight %v, want %v", id, got.EdgeWeights[id], w)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	want := sampleState()
	var buf bytes.Buffer
	if err := SaveState(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, got, want)
}

func TestStateRoundTripEmptyWeights(t *testing.T) {
	want := State{Name: "g", Round: 1, Model: []float64{1}}
	var buf bytes.Buffer
	if err := SaveState(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 || len(got.EdgeWeights) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestStateSaveDeterministic pins the sorted-edge-id encoding: two saves
// of the same state are byte-identical (map order must not leak in).
func TestStateSaveDeterministic(t *testing.T) {
	st := sampleState()
	var a, b bytes.Buffer
	if err := SaveState(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same state differ byte-wise")
	}
}

// TestStateTornWriteRejected truncates a record at every possible length
// and checks no prefix ever loads as a valid state.
func TestStateTornWriteRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := LoadState(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(full))
		}
	}
}

// TestStateCorruptionRejected flips one byte at a time and checks the
// CRC rejects every corrupted record.
func TestStateCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		if st, err := LoadState(bytes.NewReader(mut)); err == nil {
			// A flip in the magic version byte may yield a structurally
			// different but internally consistent record only if the CRC
			// happened to collide — that must never occur for 1-bit flips.
			t.Fatalf("bit flip at byte %d loaded successfully as %+v", i, st)
		}
	}
}

// TestLoadStateReadsV1 checks the old single-model format still loads,
// surfacing as round 0 with no edge weights.
func TestLoadStateReadsV1(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "legacy", []float64{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	st, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "legacy" || st.Round != 0 || len(st.EdgeWeights) != 0 {
		t.Fatalf("v1 load got %+v", st)
	}
	if len(st.Model) != 3 || st.Model[0] != 9 {
		t.Fatalf("v1 model %v", st.Model)
	}
}

func TestSaveStateFileLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for round := 1; round <= 3; round++ {
		st := sampleState()
		st.Round = round
		st.Model[0] = float64(round)
		if _, err := SaveStateFile(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	st, ok, err := LoadLatest(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st.Round != 3 || st.Model[0] != 3 {
		t.Fatalf("latest = round %d model[0] %v, want round 3", st.Round, st.Model[0])
	}
}

// TestLoadLatestSkipsTorn writes a valid checkpoint then a newer torn
// one; LoadLatest must fall back to the older valid record.
func TestLoadLatestSkipsTorn(t *testing.T) {
	dir := t.TempDir()
	good := sampleState()
	good.Round = 5
	if _, err := SaveStateFile(dir, good); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	torn := sampleState()
	torn.Round = 9
	if err := SaveState(&buf, torn); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(filepath.Join(dir, "global-r000009.ckpt"), half, 0o644); err != nil {
		t.Fatal(err)
	}
	st, ok, err := LoadLatest(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st.Round != 5 {
		t.Fatalf("LoadLatest picked round %d, want the valid round 5", st.Round)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	if _, ok, err := LoadLatest(t.TempDir()); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, ok, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}
