package mobility

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarkovInitialBalance(t *testing.T) {
	mk := NewMarkov(4, 100, 0.5, 1)
	first := mk.Step()
	// Step may have moved some devices, but counts should stay roughly
	// balanced; check the Reset state instead via a zero-probability model.
	mk0 := NewMarkov(4, 100, 0, 1)
	m := mk0.Step()
	counts := make([]int, 4)
	for _, e := range m {
		counts[e]++
	}
	for e, n := range counts {
		if n != 25 {
			t.Fatalf("edge %d has %d devices, want 25", e, n)
		}
	}
	_ = first
}

func TestMarkovZeroProbabilityNeverMoves(t *testing.T) {
	mk := NewMarkov(5, 20, 0, 3)
	prev := mk.Step()
	for i := 0; i < 50; i++ {
		cur := mk.Step()
		for m := range cur {
			if cur[m] != prev[m] {
				t.Fatalf("device %d moved with P=0", m)
			}
		}
		prev = cur
	}
}

func TestMarkovEmpiricalMobilityMatchesP(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.5} {
		mk := NewMarkov(10, 100, p, 7)
		tr := Record(mk, 300)
		got := tr.EmpiricalMobility()
		if math.Abs(got-p) > 0.03 {
			t.Fatalf("P=%v: empirical mobility %v", p, got)
		}
	}
}

func TestMarkovMovesToOtherEdge(t *testing.T) {
	// With P=1 and 2 edges, devices must alternate edges every step.
	mk := NewMarkov(2, 10, 1, 5)
	prev := mk.Step()
	for i := 0; i < 20; i++ {
		cur := mk.Step()
		for m := range cur {
			if cur[m] == prev[m] {
				t.Fatalf("device %d stayed with P=1", m)
			}
		}
		prev = cur
	}
}

func TestMarkovResetReplaysSameSequence(t *testing.T) {
	mk := NewMarkov(6, 30, 0.4, 11)
	a := Record(mk, 40)
	mk.Reset()
	b := Record(mk, 40)
	for tStep := range a.Memberships {
		for m := range a.Memberships[tStep] {
			if a.Memberships[tStep][m] != b.Memberships[tStep][m] {
				t.Fatalf("Reset did not replay: step %d device %d", tStep, m)
			}
		}
	}
}

func TestMarkovSingleEdgeNeverMoves(t *testing.T) {
	mk := NewMarkov(1, 5, 1, 2)
	tr := Record(mk, 10)
	if tr.EmpiricalMobility() != 0 {
		t.Fatal("single-edge model reported movement")
	}
}

func TestMarkovPerDeviceGlobalMobility(t *testing.T) {
	probs := []float64{0, 0.2, 0.4, 0.6, 0.8}
	mk := NewMarkovPerDevice(3, probs, 1)
	if got := mk.GlobalMobility(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("GlobalMobility = %v, want 0.4", got)
	}
}

func TestStaticModel(t *testing.T) {
	s := NewStatic(3, 7)
	a := s.Step()
	b := s.Step()
	for m := range a {
		if a[m] != m%3 || b[m] != a[m] {
			t.Fatalf("static membership wrong at device %d", m)
		}
	}
}

func TestRandomWaypointMembershipValid(t *testing.T) {
	w := NewRandomWaypoint(2, 5, 40, 0.02, 0.08, 2, 9)
	if w.NumEdges() != 10 {
		t.Fatalf("edges = %d", w.NumEdges())
	}
	tr := Record(w, 200)
	for tStep, row := range tr.Memberships {
		for m, e := range row {
			if e < 0 || e >= 10 {
				t.Fatalf("step %d device %d edge %d", tStep, m, e)
			}
		}
	}
	// Devices must actually move across edges at these speeds.
	if tr.EmpiricalMobility() == 0 {
		t.Fatal("waypoint model produced no movement")
	}
	// But not teleport every step.
	if tr.EmpiricalMobility() > 0.6 {
		t.Fatalf("waypoint mobility implausibly high: %v", tr.EmpiricalMobility())
	}
}

func TestRandomWaypointResetReplays(t *testing.T) {
	w := NewRandomWaypoint(3, 2, 15, 0.05, 0.1, 0, 13)
	a := Record(w, 50)
	w.Reset()
	b := Record(w, 50)
	for tStep := range a.Memberships {
		for m := range a.Memberships[tStep] {
			if a.Memberships[tStep][m] != b.Memberships[tStep][m] {
				t.Fatalf("waypoint Reset did not replay at step %d", tStep)
			}
		}
	}
}

func TestRandomWaypointPositionsStayInSquare(t *testing.T) {
	w := NewRandomWaypoint(2, 2, 10, 0.1, 0.3, 1, 17)
	for i := 0; i < 100; i++ {
		w.Step()
		for m := 0; m < 10; m++ {
			x, y := w.Position(m)
			if x < 0 || x > 1 || y < 0 || y > 1 {
				t.Fatalf("device %d escaped to (%v, %v)", m, x, y)
			}
		}
	}
}

func TestTraceWriteReadRoundTrip(t *testing.T) {
	mk := NewMarkov(4, 12, 0.3, 21)
	tr := Record(mk, 25)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edges != tr.Edges || got.Steps() != tr.Steps() || got.NumDevices() != tr.NumDevices() {
		t.Fatalf("header mismatch: %d/%d/%d", got.Edges, got.Steps(), got.NumDevices())
	}
	for tStep := range tr.Memberships {
		for m := range tr.Memberships[tStep] {
			if got.Memberships[tStep][m] != tr.Memberships[tStep][m] {
				t.Fatalf("round trip differs at step %d device %d", tStep, m)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad magic":    "not-a-trace v1 2 2 1\n0 1\n",
		"bad version":  "middle-trace v2 2 2 1\n0 1\n",
		"bad counts":   "middle-trace v1 0 2 1\n0 1\n",
		"truncated":    "middle-trace v1 2 2 3\n0 1\n",
		"wrong width":  "middle-trace v1 2 3 1\n0 1\n",
		"edge range":   "middle-trace v1 2 2 1\n0 5\n",
		"non-numeric":  "middle-trace v1 2 2 1\n0 x\n",
		"short header": "middle-trace v1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted invalid input", name)
		}
	}
}

func TestReplayLoopsAndResets(t *testing.T) {
	tr := &Trace{Edges: 2, Memberships: [][]int{{0, 1}, {1, 0}}}
	r := tr.Replay()
	a := r.Step()
	b := r.Step()
	c := r.Step() // wraps to first row
	if a[0] != 0 || b[0] != 1 || c[0] != 0 {
		t.Fatalf("replay sequence wrong: %v %v %v", a, b, c)
	}
	r.Reset()
	if got := r.Step(); got[0] != 0 {
		t.Fatalf("after Reset got %v", got)
	}
}

// Property: any recorded Markov trace round-trips through the text codec.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(seed int64, e8, d8, s8 uint8) bool {
		edges := 1 + int(e8%6)
		devices := 1 + int(d8%15)
		steps := int(s8 % 20)
		tr := Record(NewMarkov(edges, devices, 0.5, seed), steps)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if got.Steps() != steps {
			return false
		}
		for tt := range tr.Memberships {
			for m := range tr.Memberships[tt] {
				if got.Memberships[tt][m] != tr.Memberships[tt][m] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Markov memberships always partition devices over valid edges
// (paper Eq. 3: every device connects to exactly one edge).
func TestQuickMembershipValid(t *testing.T) {
	f := func(seed int64, e8 uint8, p float64) bool {
		edges := 1 + int(e8%8)
		p = math.Abs(p)
		p -= math.Floor(p) // wrap into [0,1)
		mk := NewMarkov(edges, 20, p, seed)
		for i := 0; i < 10; i++ {
			row := mk.Step()
			if len(row) != 20 {
				return false
			}
			for _, e := range row {
				if e < 0 || e >= edges {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovRingMovesOnlyToNeighbours(t *testing.T) {
	mk := NewMarkovRing(6, 30, 0.6, 9)
	prev := mk.Step()
	for i := 0; i < 100; i++ {
		cur := mk.Step()
		for m := range cur {
			if cur[m] == prev[m] {
				continue
			}
			d := (cur[m] - prev[m] + 6) % 6
			if d != 1 && d != 5 {
				t.Fatalf("device %d jumped %d -> %d (non-adjacent)", m, prev[m], cur[m])
			}
		}
		prev = cur
	}
}

func TestMarkovRingMobilityMatchesP(t *testing.T) {
	for _, p := range []float64{0.1, 0.5} {
		tr := Record(NewMarkovRing(8, 100, p, 3), 300)
		if got := tr.EmpiricalMobility(); math.Abs(got-p) > 0.03 {
			t.Fatalf("ring P=%v: empirical %v", p, got)
		}
	}
}

func TestMarkovRingTwoEdges(t *testing.T) {
	// With 2 edges, ring and uniform coincide; membership must stay valid.
	mk := NewMarkovRing(2, 10, 1, 4)
	prev := mk.Step()
	for i := 0; i < 20; i++ {
		cur := mk.Step()
		for m := range cur {
			if cur[m] == prev[m] {
				t.Fatalf("device %d stayed with P=1 on 2-edge ring", m)
			}
		}
		prev = cur
	}
}

func TestOccupancySharesSumToOne(t *testing.T) {
	tr := Record(NewMarkovRing(4, 20, 0.4, 5), 100)
	shares := tr.OccupancyShares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum %v", sum)
	}
	// Ring-Markov from a balanced start stays roughly balanced.
	for e, s := range shares {
		if s < 0.1 || s > 0.4 {
			t.Fatalf("edge %d share %v implausible", e, s)
		}
	}
}

func TestMeanSojournMatchesMobility(t *testing.T) {
	// Memoryless movement with probability p has mean sojourn ≈ 1/p.
	p := 0.25
	tr := Record(NewMarkov(5, 200, p, 9), 400)
	got := tr.MeanSojourn()
	if math.Abs(got-1/p) > 0.5 {
		t.Fatalf("mean sojourn %v, want ≈%v", got, 1/p)
	}
	if (&Trace{Edges: 2}).MeanSojourn() != 0 {
		t.Fatal("empty trace sojourn")
	}
}
