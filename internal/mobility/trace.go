package mobility

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a materialised membership sequence: Memberships[t][m] is the
// edge of device m at time step t. Traces decouple trace generation
// (cmd/tracegen) from simulation and make experiments exactly repeatable
// across processes.
type Trace struct {
	Edges       int
	Memberships [][]int
}

// Record runs a model for the given number of time steps and captures the
// resulting trace.
func Record(m Model, steps int) *Trace {
	tr := &Trace{Edges: m.NumEdges(), Memberships: make([][]int, steps)}
	for t := 0; t < steps; t++ {
		tr.Memberships[t] = m.Step()
	}
	return tr
}

// Steps returns the trace length.
func (tr *Trace) Steps() int { return len(tr.Memberships) }

// NumDevices returns the device count (0 for an empty trace).
func (tr *Trace) NumDevices() int {
	if len(tr.Memberships) == 0 {
		return 0
	}
	return len(tr.Memberships[0])
}

// EmpiricalMobility reports the average cross-edge move rate observed.
func (tr *Trace) EmpiricalMobility() float64 { return EmpiricalMobility(tr.Memberships) }

// Replay returns a Model that plays the trace back step by step, looping
// if stepped past the end.
func (tr *Trace) Replay() Model { return &replay{tr: tr} }

type replay struct {
	tr *Trace
	t  int
}

func (r *replay) NumEdges() int   { return r.tr.Edges }
func (r *replay) NumDevices() int { return r.tr.NumDevices() }
func (r *replay) Reset()          { r.t = 0 }

func (r *replay) Step() []int {
	if r.tr.Steps() == 0 {
		return nil
	}
	row := r.tr.Memberships[r.t%r.tr.Steps()]
	r.t++
	return append([]int(nil), row...)
}

// Write serialises the trace in a simple line-oriented text format:
//
//	middle-trace v1 <edges> <devices> <steps>
//	e e e ...   (one line per time step, one edge id per device)
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "middle-trace v1 %d %d %d\n", tr.Edges, tr.NumDevices(), tr.Steps()); err != nil {
		return err
	}
	for _, row := range tr.Memberships {
		parts := make([]string, len(row))
		for i, e := range row {
			parts[i] = strconv.Itoa(e)
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace produced by Write, validating header
// consistency and edge-id ranges.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mobility: empty trace input")
	}
	var edges, devices, steps int
	var magic, version string
	if _, err := fmt.Sscan(sc.Text(), &magic, &version, &edges, &devices, &steps); err != nil {
		return nil, fmt.Errorf("mobility: bad trace header %q: %w", sc.Text(), err)
	}
	if magic != "middle-trace" || version != "v1" {
		return nil, fmt.Errorf("mobility: unrecognised trace header %q", sc.Text())
	}
	if edges < 1 || devices < 0 || steps < 0 || (steps > 0 && devices < 1) {
		return nil, fmt.Errorf("mobility: implausible trace header %q", sc.Text())
	}
	tr := &Trace{Edges: edges, Memberships: make([][]int, 0, steps)}
	for t := 0; t < steps; t++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("mobility: trace truncated at step %d of %d", t, steps)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != devices {
			return nil, fmt.Errorf("mobility: step %d has %d entries, want %d", t, len(fields), devices)
		}
		row := make([]int, devices)
		for m, f := range fields {
			e, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("mobility: step %d device %d: %w", t, m, err)
			}
			if e < 0 || e >= edges {
				return nil, fmt.Errorf("mobility: step %d device %d edge %d out of range [0,%d)", t, m, e, edges)
			}
			row[m] = e
		}
		tr.Memberships = append(tr.Memberships, row)
	}
	return tr, sc.Err()
}

// OccupancyShares returns each edge's share of device-steps across the
// trace — a uniformity diagnostic for mobility models.
func (tr *Trace) OccupancyShares() []float64 {
	counts := make([]float64, tr.Edges)
	total := 0.0
	for _, row := range tr.Memberships {
		for _, e := range row {
			counts[e]++
			total++
		}
	}
	if total > 0 {
		for e := range counts {
			counts[e] /= total
		}
	}
	return counts
}

// MeanSojourn returns the average number of consecutive steps a device
// stays on one edge before moving (the reciprocal of mobility for a
// memoryless model). Returns 0 for traces shorter than 2 steps.
func (tr *Trace) MeanSojourn() float64 {
	if tr.Steps() < 2 {
		return 0
	}
	totalStay, stays := 0, 0
	for m := 0; m < tr.NumDevices(); m++ {
		run := 1
		for t := 1; t < tr.Steps(); t++ {
			if tr.Memberships[t][m] == tr.Memberships[t-1][m] {
				run++
			} else {
				totalStay += run
				stays++
				run = 1
			}
		}
		totalStay += run
		stays++
	}
	return float64(totalStay) / float64(stays)
}
