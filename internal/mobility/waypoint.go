package mobility

import (
	"fmt"
	"math"

	"middle/internal/tensor"
)

// RandomWaypoint is a planar mobility model in the style of the traces
// the ONE simulator generates: devices live in the unit square, pick a
// uniform random waypoint and a random speed, walk toward it in straight
// lines, pause briefly, and repeat. Edges are base stations on a regular
// grid; each device connects to the nearest station every time step
// (the paper's nearest-edge association rule, Eq. 3).
type RandomWaypoint struct {
	gridW, gridH int
	stations     [][2]float64
	speedMin     float64 // distance per time step
	speedMax     float64
	pauseMax     int // max pause (time steps) at a waypoint
	seed         int64

	rng   *tensor.RNG
	pos   [][2]float64
	dst   [][2]float64
	speed []float64
	pause []int
}

// NewRandomWaypoint builds a random-waypoint model with gridW×gridH edge
// base stations. Speeds are per-time-step displacements in a unit square;
// with a 2×5 grid and speeds around 0.05 the empirical cross-edge
// mobility lands near the paper's P = 0.1–0.5 range.
func NewRandomWaypoint(gridW, gridH, devices int, speedMin, speedMax float64, pauseMax int, seed int64) *RandomWaypoint {
	validate(gridW*gridH, devices)
	if speedMin < 0 || speedMax < speedMin {
		panic(fmt.Sprintf("mobility: bad speed range [%v, %v]", speedMin, speedMax))
	}
	stations := make([][2]float64, 0, gridW*gridH)
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			stations = append(stations, [2]float64{
				(float64(gx) + 0.5) / float64(gridW),
				(float64(gy) + 0.5) / float64(gridH),
			})
		}
	}
	w := &RandomWaypoint{
		gridW: gridW, gridH: gridH, stations: stations,
		speedMin: speedMin, speedMax: speedMax, pauseMax: pauseMax, seed: seed,
		pos:   make([][2]float64, devices),
		dst:   make([][2]float64, devices),
		speed: make([]float64, devices),
		pause: make([]int, devices),
	}
	w.Reset()
	return w
}

// NumEdges returns the number of base stations.
func (w *RandomWaypoint) NumEdges() int { return len(w.stations) }

// NumDevices returns the number of devices.
func (w *RandomWaypoint) NumDevices() int { return len(w.pos) }

// Reset re-scatters devices uniformly and restarts the random stream.
func (w *RandomWaypoint) Reset() {
	w.rng = tensor.Split(w.seed, 0x3AB0)
	for m := range w.pos {
		w.pos[m] = [2]float64{w.rng.Float64(), w.rng.Float64()}
		w.newLeg(m)
	}
}

func (w *RandomWaypoint) newLeg(m int) {
	w.dst[m] = [2]float64{w.rng.Float64(), w.rng.Float64()}
	w.speed[m] = w.speedMin + (w.speedMax-w.speedMin)*w.rng.Float64()
	if w.pauseMax > 0 {
		w.pause[m] = w.rng.Intn(w.pauseMax + 1)
	}
}

// Step moves every device along its current leg and returns nearest-edge
// membership.
func (w *RandomWaypoint) Step() []int {
	out := make([]int, len(w.pos))
	for m := range w.pos {
		if w.pause[m] > 0 {
			w.pause[m]--
		} else {
			dx := w.dst[m][0] - w.pos[m][0]
			dy := w.dst[m][1] - w.pos[m][1]
			dist := math.Hypot(dx, dy)
			if dist <= w.speed[m] {
				w.pos[m] = w.dst[m]
				w.newLeg(m)
			} else {
				w.pos[m][0] += w.speed[m] * dx / dist
				w.pos[m][1] += w.speed[m] * dy / dist
			}
		}
		out[m] = w.nearestStation(w.pos[m])
	}
	return out
}

func (w *RandomWaypoint) nearestStation(p [2]float64) int {
	best, bi := math.Inf(1), 0
	for i, s := range w.stations {
		dx, dy := p[0]-s[0], p[1]-s[1]
		if d := dx*dx + dy*dy; d < best {
			best, bi = d, i
		}
	}
	return bi
}

// Position returns device m's current planar position (for diagnostics).
func (w *RandomWaypoint) Position(m int) (x, y float64) {
	return w.pos[m][0], w.pos[m][1]
}
