package mobility

import (
	"fmt"

	"middle/internal/tensor"
)

// Markov is the direct realisation of the paper's mobility abstraction:
// at every time step device m moves with probability P_m and stays put
// otherwise. The global mobility P is the average of P_m (paper §3.2).
// The destination distribution is configurable: uniform over all other
// edges (the memoryless default), or restricted to ring-adjacent edges
// (NewMarkovRing), which preserves the spatial locality real traces —
// e.g. from the ONE simulator — exhibit: a device drifts between
// neighbouring cells rather than teleporting across the map.
type Markov struct {
	edges   int
	probs   []float64 // per-device move probability P_m
	ring    bool      // adjacent-edge moves only
	seed    int64
	rng     *tensor.RNG
	current []int
}

// NewMarkov builds a Markov mobility model in which every device shares
// the same move probability p (the paper's experiments set P_m = P).
func NewMarkov(edges, devices int, p float64, seed int64) *Markov {
	probs := make([]float64, devices)
	for i := range probs {
		probs[i] = p
	}
	return NewMarkovPerDevice(edges, probs, seed)
}

// NewMarkovPerDevice builds a Markov mobility model with an individual
// move probability per device; the global mobility is their mean.
func NewMarkovPerDevice(edges int, probs []float64, seed int64) *Markov {
	validate(edges, len(probs))
	for m, p := range probs {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("mobility: device %d probability %v outside [0,1]", m, p))
		}
	}
	mk := &Markov{edges: edges, probs: append([]float64(nil), probs...), seed: seed}
	mk.Reset()
	return mk
}

// NumEdges returns the number of edges.
func (mk *Markov) NumEdges() int { return mk.edges }

// NumDevices returns the number of devices.
func (mk *Markov) NumDevices() int { return len(mk.probs) }

// GlobalMobility returns the mean of the per-device move probabilities.
func (mk *Markov) GlobalMobility() float64 {
	s := 0.0
	for _, p := range mk.probs {
		s += p
	}
	return s / float64(len(mk.probs))
}

// NewMarkovRing builds a locality-preserving Markov model: a moving
// device steps to one of its two ring-adjacent edges (edge e ± 1 mod E),
// every device sharing move probability p. Global mobility still equals
// p, but edge membership retains spatial correlation over time.
func NewMarkovRing(edges, devices int, p float64, seed int64) *Markov {
	mk := NewMarkov(edges, devices, p, seed)
	mk.ring = true
	return mk
}

// Step advances one time step: each device moves with its own
// probability, either to a uniform other edge or (ring mode) to an
// adjacent edge.
func (mk *Markov) Step() []int {
	for m := range mk.current {
		if mk.edges > 1 && mk.rng.Float64() < mk.probs[m] {
			if mk.ring {
				dir := 1
				if mk.rng.Float64() < 0.5 {
					dir = mk.edges - 1 // −1 mod edges
				}
				mk.current[m] = (mk.current[m] + dir) % mk.edges
			} else {
				next := mk.rng.Intn(mk.edges - 1)
				if next >= mk.current[m] {
					next++
				}
				mk.current[m] = next
			}
		}
	}
	return append([]int(nil), mk.current...)
}

// Reset restores the balanced initial membership and reseeds the stream.
func (mk *Markov) Reset() {
	mk.rng = tensor.Split(mk.seed, 0x30B1)
	mk.current = roundRobin(mk.edges, len(mk.probs))
}

// Static is the no-mobility special case (P = 0): membership never
// changes. It is the classical HFL setting baselines assume.
type Static struct {
	edges      int
	membership []int
}

// NewStatic pins each device to its round-robin edge forever.
func NewStatic(edges, devices int) *Static {
	validate(edges, devices)
	return &Static{edges: edges, membership: roundRobin(edges, devices)}
}

// NumEdges returns the number of edges.
func (s *Static) NumEdges() int { return s.edges }

// NumDevices returns the number of devices.
func (s *Static) NumDevices() int { return len(s.membership) }

// Step returns the fixed membership.
func (s *Static) Step() []int { return append([]int(nil), s.membership...) }

// Reset is a no-op for a static model.
func (s *Static) Reset() {}
