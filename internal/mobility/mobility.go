// Package mobility generates device-to-edge membership sequences — the
// role the ONE simulator plays in the paper's evaluation (§6.1.1). The
// paper needs only per-time-step edge membership whose average cross-edge
// move probability matches the global mobility P (it is explicitly
// orthogonal to specific mobility models), so this package provides a
// Markov cross-edge model parameterised directly by P, a planar
// random-waypoint model with nearest-edge association (paper Eq. 3), and
// a trace format for recording and replaying either.
package mobility

import "fmt"

// Model produces the edge membership of every device over time. Step
// advances the simulation clock by one time step and returns the current
// membership; Reset restarts the model's random stream so the same
// sequence replays. Implementations are not safe for concurrent use.
type Model interface {
	NumEdges() int
	NumDevices() int
	// Step advances one time step and returns edge ids per device. The
	// returned slice is owned by the caller.
	Step() []int
	// Reset restarts the model at time zero with its original randomness.
	Reset()
}

// validate panics on impossible topologies; shared by model constructors.
func validate(edges, devices int) {
	if edges < 1 {
		panic(fmt.Sprintf("mobility: need at least 1 edge, got %d", edges))
	}
	if devices < 1 {
		panic(fmt.Sprintf("mobility: need at least 1 device, got %d", devices))
	}
}

// roundRobin returns the balanced initial membership device m → m mod E.
func roundRobin(edges, devices int) []int {
	out := make([]int, devices)
	for m := range out {
		out[m] = m % edges
	}
	return out
}

// EmpiricalMobility measures the average per-step cross-edge move
// probability of a membership sequence — the observable the paper's
// global mobility P describes.
func EmpiricalMobility(memberships [][]int) float64 {
	if len(memberships) < 2 {
		return 0
	}
	moves, total := 0, 0
	for t := 1; t < len(memberships); t++ {
		prev, cur := memberships[t-1], memberships[t]
		for m := range cur {
			if cur[m] != prev[m] {
				moves++
			}
			total++
		}
	}
	return float64(moves) / float64(total)
}
