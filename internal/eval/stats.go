package eval

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Band is a series with a ±deviation envelope, the "shaded" presentation
// the paper uses for raw results behind smoothed averages.
type Band struct {
	Name string
	X    []int
	Mean []float64
	Std  []float64
}

// AggregateSeries combines repeated runs of the same experiment (one
// Series per seed, identical X grids) into a mean ± std band.
func AggregateSeries(runs []Series) Band {
	if len(runs) == 0 {
		panic("eval: AggregateSeries of no runs")
	}
	n := len(runs[0].X)
	for _, r := range runs {
		if len(r.X) != n {
			panic(fmt.Sprintf("eval: run %q has %d points, want %d", r.Name, len(r.X), n))
		}
		for i := range r.X {
			if r.X[i] != runs[0].X[i] {
				panic(fmt.Sprintf("eval: run %q x-grid mismatch at %d", r.Name, i))
			}
		}
	}
	b := Band{Name: runs[0].Name, X: append([]int(nil), runs[0].X...), Mean: make([]float64, n), Std: make([]float64, n)}
	col := make([]float64, len(runs))
	for i := 0; i < n; i++ {
		for j, r := range runs {
			col[j] = r.Y[i]
		}
		b.Mean[i] = Mean(col)
		b.Std[i] = Std(col)
	}
	return b
}

// MeanSeries returns the band's mean as a plain series for plotting.
func (b Band) MeanSeries() Series { return Series{Name: b.Name, X: b.X, Y: b.Mean} }

// MaxStd returns the largest deviation in the band, a quick dispersion
// summary.
func (b Band) MaxStd() float64 {
	m := 0.0
	for _, s := range b.Std {
		if s > m {
			m = s
		}
	}
	return m
}

// TTAStats summarises time-to-accuracy over repeated runs.
type TTAStats struct {
	Strategy  string
	MeanSteps float64 // over runs that reached the target
	StdSteps  float64
	Reached   int // how many runs reached the target
	Runs      int
	MeanFinal float64
}

// AggregateTTA combines per-seed TTAResults (all for one strategy).
func AggregateTTA(results []TTAResult) TTAStats {
	if len(results) == 0 {
		panic("eval: AggregateTTA of no results")
	}
	st := TTAStats{Strategy: results[0].Strategy, Runs: len(results)}
	var steps, finals []float64
	for _, r := range results {
		if r.Strategy != st.Strategy {
			panic(fmt.Sprintf("eval: mixed strategies %q and %q", st.Strategy, r.Strategy))
		}
		finals = append(finals, r.FinalAcc)
		if r.Reached {
			st.Reached++
			steps = append(steps, float64(r.Steps))
		}
	}
	st.MeanSteps = Mean(steps)
	st.StdSteps = Std(steps)
	st.MeanFinal = Mean(finals)
	return st
}

// TTAStatsTable renders the multi-seed §6.2.1 comparison. The reference
// strategy's mean steps define the speedups.
func TTAStatsTable(stats []TTAStats, refName string, target float64) string {
	var ref TTAStats
	found := false
	for _, s := range stats {
		if s.Strategy == refName {
			ref, found = s, true
		}
	}
	rows := make([][]string, 0, len(stats))
	for _, s := range stats {
		steps := "—"
		if s.Reached > 0 {
			steps = fmt.Sprintf("%.1f ± %.1f", s.MeanSteps, s.StdSteps)
		}
		speed := "—"
		if s.Strategy == refName {
			speed = "1.00×"
		} else if found && ref.Reached > 0 && s.Reached > 0 && ref.MeanSteps > 0 {
			speed = fmt.Sprintf("%.2f×", s.MeanSteps/ref.MeanSteps)
		}
		rows = append(rows, []string{
			s.Strategy,
			steps,
			fmt.Sprintf("%d/%d", s.Reached, s.Runs),
			fmt.Sprintf("%.4f", s.MeanFinal),
			speed,
		})
	}
	return RenderTable(
		fmt.Sprintf("time to accuracy %.2f over %d seeds", target, stats[0].Runs),
		[]string{"strategy", "steps to target", "reached", "mean final acc", refName + " speedup"},
		rows,
	)
}
