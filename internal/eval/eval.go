// Package eval turns simulation histories into the artifacts the paper
// reports: smoothed time-to-accuracy curves, speedup tables (§6.2.1's
// 1.51×–6.85×), bar summaries for the mobility and T_c sweeps, plus CSV
// and ASCII renderings for the command-line tools.
package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is a named (x, y) sequence, e.g. one strategy's accuracy curve.
type Series struct {
	Name string
	X    []int
	Y    []float64
}

// Smooth returns a centred moving average of y with the given window
// (window ≤ 1 returns a copy). Ends shrink the window symmetrically,
// matching how the paper presents smoothed curves over raw shading.
func Smooth(y []float64, window int) []float64 {
	out := make([]float64, len(y))
	if window <= 1 {
		copy(out, y)
		return out
	}
	half := window / 2
	for i := range y {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(y) {
			hi = len(y) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += y[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// TimeToAccuracy scans a series for the first x at which y ≥ target.
func TimeToAccuracy(s Series, target float64) (x int, ok bool) {
	for i, v := range s.Y {
		if v >= target {
			return s.X[i], true
		}
	}
	return 0, false
}

// TTAResult is one strategy's time-to-target-accuracy outcome.
type TTAResult struct {
	Strategy string
	Steps    int
	Reached  bool
	FinalAcc float64
}

// Speedup computes how much faster the reference strategy (usually
// MIDDLE) reached the target than other: other.Steps / ref.Steps.
// It returns 0 when either did not reach the target.
func Speedup(ref, other TTAResult) float64 {
	if !ref.Reached || !other.Reached || ref.Steps == 0 {
		return 0
	}
	return float64(other.Steps) / float64(ref.Steps)
}

// SpeedupTable renders the §6.2.1-style comparison: per strategy the
// steps to target, final accuracy, and speedup of the reference strategy
// over it. Results keep their given order; the reference is matched by
// name.
func SpeedupTable(results []TTAResult, refName string, target float64) string {
	var ref TTAResult
	found := false
	for _, r := range results {
		if r.Strategy == refName {
			ref, found = r, true
			break
		}
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		steps := "—"
		if r.Reached {
			steps = strconv.Itoa(r.Steps)
		}
		speed := "—"
		if found && r.Strategy != refName {
			if s := Speedup(ref, r); s > 0 {
				speed = fmt.Sprintf("%.2f×", s)
			}
		} else if r.Strategy == refName {
			speed = "1.00×"
		}
		rows = append(rows, []string{r.Strategy, steps, fmt.Sprintf("%.4f", r.FinalAcc), speed})
	}
	return RenderTable(
		fmt.Sprintf("time to accuracy %.2f (speedup = baseline steps / %s steps)", target, refName),
		[]string{"strategy", "steps to target", "final acc", refName + " speedup"},
		rows,
	)
}

// RenderTable lays out a titled ASCII table with aligned columns.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// WriteSeriesCSV emits aligned series as CSV with one x column and one
// column per series. Series may have different x grids; missing cells
// are left empty.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	xs := map[int]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	grid := make([]int, 0, len(xs))
	for x := range xs {
		grid = append(grid, x)
	}
	sort.Ints(grid)
	lookup := make([]map[int]float64, len(series))
	for i, s := range series {
		lookup[i] = make(map[int]float64, len(s.X))
		for j, x := range s.X {
			lookup[i][x] = s.Y[j]
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range grid {
		row := []string{strconv.Itoa(x)}
		for i := range series {
			if y, ok := lookup[i][x]; ok {
				row = append(row, strconv.FormatFloat(y, 'f', 5, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses the format WriteSeriesCSV produces.
func ReadSeriesCSV(r io.Reader) ([]Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 1 || len(records[0]) < 2 {
		return nil, fmt.Errorf("eval: series CSV needs a header with ≥2 columns")
	}
	series := make([]Series, len(records[0])-1)
	for i := range series {
		series[i].Name = records[0][i+1]
	}
	for ln, rec := range records[1:] {
		x, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("eval: line %d: bad x %q", ln+2, rec[0])
		}
		for i := range series {
			cell := rec[i+1]
			if cell == "" {
				continue
			}
			y, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("eval: line %d col %d: %w", ln+2, i+2, err)
			}
			series[i].X = append(series[i].X, x)
			series[i].Y = append(series[i].Y, y)
		}
	}
	return series, nil
}

// LineChart renders series as an ASCII chart (one glyph per series) with
// y range auto-scaled; the legend maps glyphs to names.
func LineChart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	minX, maxX := math.MaxInt, math.MinInt
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if minX > maxX {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := 0
			if maxX > minX {
				cx = (s.X[i] - minX) * (width - 1) / (maxX - minX)
			}
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%8.3f ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.3f ┤%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          x: %d … %d\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// BarChart renders grouped horizontal bars, e.g. final accuracy per
// strategy per mobility P.
func BarChart(title string, labels []string, groupNames []string, values [][]float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, group := range values {
		for _, v := range group {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	groupW := 0
	for _, g := range groupNames {
		if len(g) > groupW {
			groupW = len(g)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, label := range labels {
		for j, g := range groupNames {
			v := 0.0
			if i < len(values) && j < len(values[i]) {
				v = values[i][j]
			}
			n := int(math.Round(v / maxV * float64(width)))
			lead := label
			if j > 0 {
				lead = ""
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s%s| %.4f\n", labelW, lead, groupW, g,
				strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
		}
	}
	return b.String()
}
