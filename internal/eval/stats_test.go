package eval

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("Std singleton")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0) // sample std
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", got, want)
	}
}

func TestAggregateSeries(t *testing.T) {
	runs := []Series{
		{Name: "MIDDLE", X: []int{10, 20}, Y: []float64{0.4, 0.8}},
		{Name: "MIDDLE", X: []int{10, 20}, Y: []float64{0.6, 1.0}},
	}
	b := AggregateSeries(runs)
	if b.Name != "MIDDLE" || len(b.Mean) != 2 {
		t.Fatalf("band %+v", b)
	}
	if b.Mean[0] != 0.5 || b.Mean[1] != 0.9 {
		t.Fatalf("means %v", b.Mean)
	}
	wantStd := math.Sqrt(0.02) // sample std of {0.4, 0.6}
	if math.Abs(b.Std[0]-wantStd) > 1e-12 {
		t.Fatalf("std %v, want %v", b.Std[0], wantStd)
	}
	if b.MaxStd() != b.Std[0] {
		t.Fatalf("MaxStd %v", b.MaxStd())
	}
	ms := b.MeanSeries()
	if ms.Y[1] != 0.9 {
		t.Fatalf("MeanSeries %v", ms)
	}
}

func TestAggregateSeriesPanics(t *testing.T) {
	for name, runs := range map[string][]Series{
		"empty":    nil,
		"ragged":   {{X: []int{1}, Y: []float64{1}}, {X: []int{1, 2}, Y: []float64{1, 2}}},
		"gridskew": {{X: []int{1}, Y: []float64{1}}, {X: []int{2}, Y: []float64{1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			AggregateSeries(runs)
		}()
	}
}

func TestAggregateTTA(t *testing.T) {
	st := AggregateTTA([]TTAResult{
		{Strategy: "OORT", Steps: 100, Reached: true, FinalAcc: 0.9},
		{Strategy: "OORT", Steps: 200, Reached: true, FinalAcc: 0.8},
		{Strategy: "OORT", Reached: false, FinalAcc: 0.5},
	})
	if st.Reached != 2 || st.Runs != 3 {
		t.Fatalf("reached/runs %d/%d", st.Reached, st.Runs)
	}
	if st.MeanSteps != 150 {
		t.Fatalf("mean steps %v", st.MeanSteps)
	}
	if math.Abs(st.MeanFinal-(0.9+0.8+0.5)/3) > 1e-12 {
		t.Fatalf("mean final %v", st.MeanFinal)
	}
}

func TestAggregateTTAPanicsOnMixedStrategies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AggregateTTA([]TTAResult{{Strategy: "A"}, {Strategy: "B"}})
}

func TestTTAStatsTable(t *testing.T) {
	out := TTAStatsTable([]TTAStats{
		{Strategy: "MIDDLE", MeanSteps: 100, StdSteps: 5, Reached: 3, Runs: 3, MeanFinal: 0.95},
		{Strategy: "OORT", MeanSteps: 151, StdSteps: 10, Reached: 3, Runs: 3, MeanFinal: 0.93},
		{Strategy: "Greedy", Reached: 0, Runs: 3, MeanFinal: 0.70},
	}, "MIDDLE", 0.9)
	if !strings.Contains(out, "1.51×") {
		t.Fatalf("missing speedup:\n%s", out)
	}
	if !strings.Contains(out, "0/3") {
		t.Fatalf("missing unreached count:\n%s", out)
	}
	if !strings.Contains(out, "100.0 ± 5.0") {
		t.Fatalf("missing mean ± std:\n%s", out)
	}
}
