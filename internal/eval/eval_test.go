package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSmoothWindowOneIsCopy(t *testing.T) {
	y := []float64{1, 2, 3}
	got := Smooth(y, 1)
	for i := range y {
		if got[i] != y[i] {
			t.Fatalf("Smooth(1) = %v", got)
		}
	}
	got[0] = 99
	if y[0] != 1 {
		t.Fatal("Smooth must not alias input")
	}
}

func TestSmoothAverages(t *testing.T) {
	y := []float64{0, 0, 6, 0, 0}
	got := Smooth(y, 3)
	if got[2] != 2 {
		t.Fatalf("centre = %v, want 2", got[2])
	}
	if got[1] != 2 || got[3] != 2 {
		t.Fatalf("neighbours = %v %v, want 2", got[1], got[3])
	}
	if got[0] != 0 || got[4] != 0 {
		t.Fatalf("ends = %v %v", got[0], got[4])
	}
}

func TestSmoothConstantInvariant(t *testing.T) {
	f := func(v float64, w8 uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			// Values whose windowed sums overflow float64 are out of
			// scope for accuracy curves.
			return true
		}
		n := 10
		y := make([]float64, n)
		for i := range y {
			y[i] = v
		}
		got := Smooth(y, 1+int(w8%9))
		for _, g := range got {
			if math.Abs(g-v) > 1e-9*(1+math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToAccuracy(t *testing.T) {
	s := Series{Name: "a", X: []int{10, 20, 30}, Y: []float64{0.1, 0.6, 0.9}}
	if x, ok := TimeToAccuracy(s, 0.5); !ok || x != 20 {
		t.Fatalf("TTA = %d, %v", x, ok)
	}
	if _, ok := TimeToAccuracy(s, 0.95); ok {
		t.Fatal("TTA reported unreachable target")
	}
}

func TestSpeedup(t *testing.T) {
	ref := TTAResult{Strategy: "MIDDLE", Steps: 100, Reached: true}
	other := TTAResult{Strategy: "OORT", Steps: 250, Reached: true}
	if got := Speedup(ref, other); got != 2.5 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(ref, TTAResult{Reached: false}); got != 0 {
		t.Fatalf("unreached speedup = %v", got)
	}
	if got := Speedup(TTAResult{Reached: false}, other); got != 0 {
		t.Fatalf("unreached ref speedup = %v", got)
	}
}

func TestSpeedupTableRendering(t *testing.T) {
	out := SpeedupTable([]TTAResult{
		{Strategy: "MIDDLE", Steps: 100, Reached: true, FinalAcc: 0.97},
		{Strategy: "OORT", Steps: 151, Reached: true, FinalAcc: 0.95},
		{Strategy: "Greedy", Reached: false, FinalAcc: 0.70},
	}, "MIDDLE", 0.95)
	if !strings.Contains(out, "1.51×") {
		t.Fatalf("missing speedup in output:\n%s", out)
	}
	if !strings.Contains(out, "—") {
		t.Fatalf("missing dash for unreached target:\n%s", out)
	}
	if !strings.Contains(out, "1.00×") {
		t.Fatalf("missing self speedup:\n%s", out)
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable("t", []string{"a", "longheader"}, [][]string{{"xx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	in := []Series{
		{Name: "MIDDLE", X: []int{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
		{Name: "OORT", X: []int{2, 3}, Y: []float64{0.15, 0.25}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "MIDDLE" || got[1].Name != "OORT" {
		t.Fatalf("names %v %v", got[0].Name, got[1].Name)
	}
	if len(got[1].X) != 2 || got[1].X[0] != 2 || got[1].Y[1] != 0.25 {
		t.Fatalf("sparse series mangled: %+v", got[1])
	}
	if len(got[0].X) != 3 || got[0].Y[0] != 0.1 {
		t.Fatalf("dense series mangled: %+v", got[0])
	}
}

func TestReadSeriesCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":   "",
		"one col": "x\n1\n",
		"bad x":   "x,a\nzz,0.5\n",
		"bad y":   "x,a\n1,zz\n",
	}
	for name, in := range cases {
		if _, err := ReadSeriesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid CSV", name)
		}
	}
}

func TestLineChartContainsSeries(t *testing.T) {
	out := LineChart("acc", []Series{
		{Name: "MIDDLE", X: []int{0, 50, 100}, Y: []float64{0.1, 0.5, 0.9}},
		{Name: "OORT", X: []int{0, 50, 100}, Y: []float64{0.1, 0.3, 0.6}},
	}, 40, 10)
	if !strings.Contains(out, "MIDDLE") || !strings.Contains(out, "OORT") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("t", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output %q", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("final", []string{"MIDDLE", "OORT"}, []string{"P=0.1", "P=0.5"},
		[][]float64{{0.9, 0.95}, {0.8, 0.7}}, 20)
	if !strings.Contains(out, "MIDDLE") || !strings.Contains(out, "P=0.5") {
		t.Fatalf("bar chart labels missing:\n%s", out)
	}
	if !strings.Contains(out, "0.9500") {
		t.Fatalf("bar chart values missing:\n%s", out)
	}
}
