package simil

import (
	"math"
	"testing"
	"testing/quick"

	"middle/internal/tensor"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCosineKnownValues(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{-1, 0}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("antiparallel cosine = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestUtilityClipsNegative(t *testing.T) {
	if got := Utility([]float64{1, 0}, []float64{-1, 0}); got != 0 {
		t.Fatalf("Utility of opposed vectors = %v, want 0 (Eq. 8 clipping)", got)
	}
	if got := Utility([]float64{2, 0}, []float64{3, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Utility of parallel vectors = %v, want 1", got)
	}
}

func TestUtilityScaleInvariant(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, -1, 0.5}
	u1 := Utility(a, b)
	a2 := []float64{10, 20, 30}
	b2 := []float64{0.2, -0.1, 0.05}
	u2 := Utility(a2, b2)
	if !almostEq(u1, u2, 1e-12) {
		t.Fatalf("Utility not scale invariant: %v vs %v", u1, u2)
	}
}

func TestBlend(t *testing.T) {
	a := []float64{1, 1}
	b := []float64{3, 5}
	got := Blend(a, b, 0.25)
	if !almostEq(got[0], 1.5, 1e-12) || !almostEq(got[1], 2, 1e-12) {
		t.Fatalf("Blend = %v", got)
	}
	if got := Blend(a, b, 0); got[0] != 1 || got[1] != 1 {
		t.Fatalf("Blend α=0 = %v", got)
	}
	if got := Blend(a, b, 1); got[0] != 3 || got[1] != 5 {
		t.Fatalf("Blend α=1 = %v", got)
	}
}

func TestOnDeviceAggregateOrthogonalKeepsEdgeModel(t *testing.T) {
	wEdge := []float64{1, 0}
	wLocal := []float64{0, 1}
	got, u := OnDeviceAggregate(wEdge, wLocal)
	if u != 0 {
		t.Fatalf("utility = %v", u)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("aggregated = %v, want edge model", got)
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if wEdge[0] != 1 {
		t.Fatal("OnDeviceAggregate aliased the edge model")
	}
}

func TestOnDeviceAggregateParallelIsHalfHalf(t *testing.T) {
	wEdge := []float64{2, 0}
	wLocal := []float64{4, 0}
	got, u := OnDeviceAggregate(wEdge, wLocal)
	if !almostEq(u, 1, 1e-12) {
		t.Fatalf("utility = %v", u)
	}
	if !almostEq(got[0], 3, 1e-12) {
		t.Fatalf("aggregated = %v, want 50/50 average", got)
	}
}

// TestOnDeviceAggregateEq9Coefficients checks the exact Eq. 9 weighting
// for an intermediate utility value.
func TestOnDeviceAggregateEq9Coefficients(t *testing.T) {
	wEdge := []float64{1, 0}
	wLocal := []float64{1, 1} // cosine = 1/√2
	u := 1 / math.Sqrt2
	got, gotU := OnDeviceAggregate(wEdge, wLocal)
	if !almostEq(gotU, u, 1e-12) {
		t.Fatalf("utility = %v, want %v", gotU, u)
	}
	want0 := 1/(1+u)*1 + u/(1+u)*1
	want1 := u / (1 + u)
	if !almostEq(got[0], want0, 1e-12) || !almostEq(got[1], want1, 1e-12) {
		t.Fatalf("aggregated = %v, want [%v %v]", got, want0, want1)
	}
}

func TestDelta(t *testing.T) {
	got := Delta([]float64{3, 5}, []float64{1, 2})
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("Delta = %v", got)
	}
}

func TestSelectionScorePrefersDissimilarUpdates(t *testing.T) {
	wCloud := []float64{1, 0}
	aligned := []float64{2, 0}   // Δw parallel to cloud model
	divergent := []float64{1, 1} // Δw orthogonal to cloud model
	sAligned := SelectionScore(wCloud, aligned)
	sDivergent := SelectionScore(wCloud, divergent)
	if !(sDivergent > sAligned) {
		t.Fatalf("selection must prefer divergent updates: aligned %v divergent %v", sAligned, sDivergent)
	}
}

func TestWeightedAverage(t *testing.T) {
	vecs := [][]float64{{1, 2}, {3, 6}}
	got := WeightedAverage(vecs, []float64{1, 3})
	if !almostEq(got[0], 2.5, 1e-12) || !almostEq(got[1], 5, 1e-12) {
		t.Fatalf("WeightedAverage = %v", got)
	}
	// Zero-weight members are ignored.
	got = WeightedAverage(vecs, []float64{1, 0})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("zero-weight member leaked: %v", got)
	}
}

func TestWeightedAveragePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":       func() { WeightedAverage(nil, nil) },
		"mismatch":    func() { WeightedAverage([][]float64{{1}}, []float64{1, 2}) },
		"ragged":      func() { WeightedAverage([][]float64{{1}, {1, 2}}, []float64{1, 1}) },
		"zero weight": func() { WeightedAverage([][]float64{{1}}, []float64{0}) },
		"negative":    func() { WeightedAverage([][]float64{{1}}, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Utility is always in [0, 1].
func TestQuickUtilityRange(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + r.Intn(20)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64() * 10
			b[i] = r.NormFloat64() * 10
		}
		u := Utility(a, b)
		return u >= 0 && u <= 1 && !math.IsNaN(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the on-device aggregate lies on the segment between the edge
// and local models, never past either endpoint, and the edge model's
// coefficient 1/(1+U) ≥ 1/2 always dominates (paper §4.2).
func TestQuickAggregateIsDominatedBlend(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		n := 2 + r.Intn(10)
		wEdge, wLocal := make([]float64, n), make([]float64, n)
		for i := range wEdge {
			wEdge[i] = r.NormFloat64()
			wLocal[i] = r.NormFloat64()
		}
		got, u := OnDeviceAggregate(wEdge, wLocal)
		if u < 0 || u > 1 {
			return false
		}
		alpha := u / (1 + u) // local model coefficient
		if alpha > 0.5 {
			return false
		}
		for i := range got {
			want := (1-alpha)*wEdge[i] + alpha*wLocal[i]
			if math.Abs(got[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedAverage with equal weights equals the plain mean, and
// is permutation invariant.
func TestQuickWeightedAverageMean(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		k := 2 + r.Intn(5)
		n := 1 + r.Intn(8)
		vecs := make([][]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
		}
		w := make([]float64, k)
		for i := range w {
			w[i] = 1
		}
		got := WeightedAverage(vecs, w)
		for j := 0; j < n; j++ {
			mean := 0.0
			for i := range vecs {
				mean += vecs[i][j]
			}
			mean /= float64(k)
			if math.Abs(got[j]-mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
