// Package simil implements the model-similarity mathematics at the heart
// of MIDDLE: the similarity utility U (paper Eq. 8), the on-device model
// aggregation rule (Eq. 9) and the accumulated update Δw (Eq. 10), all on
// flat parameter vectors.
//
// Every allocating helper has an allocation-free sibling (BlendInto,
// DeltaInto, WeightedAverageInto, OnDeviceAggregateInto) that writes into
// a caller-provided destination, and the similarity reductions are fused:
// DotNorms computes a dot product and both norms in one sweep, and
// SelectionScore never materialises the Δw vector. Hot loops (thousands
// of Sim.StepOnce calls over full model vectors) use these forms.
package simil

import (
	"fmt"
	"math"
)

// Dot returns ⟨a, b⟩ for equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("simil: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns ‖a‖₂.
func Norm(a []float64) float64 {
	s := 0.0
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// DotNorms returns ⟨a, b⟩, ‖a‖₂ and ‖b‖₂ computed in a single pass over
// both vectors — the fused reduction behind Cosine, Utility and
// SelectionScore.
func DotNorms(a, b []float64) (dot, normA, normB float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("simil: DotNorms length mismatch %d vs %d", len(a), len(b)))
	}
	var d, sa, sb float64
	for i, av := range a {
		bv := b[i]
		d += av * bv
		sa += av * av
		sb += bv * bv
	}
	return d, math.Sqrt(sa), math.Sqrt(sb)
}

// cosineFrom turns a fused (dot, ‖a‖, ‖b‖) triple into the clamped cosine
// similarity, with the zero-vector guard shared by all callers.
func cosineFrom(dot, normA, normB float64) float64 {
	if normA < 1e-12 || normB < 1e-12 {
		return 0
	}
	c := dot / (normA * normB)
	// Guard against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Cosine returns the cosine similarity of a and b. If either vector is
// (numerically) zero the direction is undefined and Cosine returns 0,
// which downstream turns into "no aggregation" — the safe choice.
func Cosine(a, b []float64) float64 {
	return cosineFrom(DotNorms(a, b))
}

// Utility is the paper's similarity utility (Eq. 8):
// U(a, b) = max(cos(a, b), 0). Clipping at zero prevents "blind
// aggregation" of models whose update directions oppose each other.
func Utility(a, b []float64) float64 {
	return math.Max(Cosine(a, b), 0)
}

// BlendInto computes dst = (1−α)·a + α·b elementwise without allocating.
// dst may alias a or b.
func BlendInto(dst, a, b []float64, alpha float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("simil: BlendInto length mismatch dst=%d a=%d b=%d", len(dst), len(a), len(b)))
	}
	for i := range a {
		dst[i] = (1-alpha)*a[i] + alpha*b[i]
	}
}

// Blend aggregates two models with an explicit coefficient:
// out = (1−α)·a + α·b. It is the primitive both the fixed-α analysis
// (paper §5) and the baselines' 50/50 averaging build on.
func Blend(a, b []float64, alpha float64) []float64 {
	out := make([]float64, len(a))
	BlendInto(out, a, b, alpha)
	return out
}

// OnDeviceAggregateInto implements the paper's Eq. 9 without allocating.
// Given the freshly downloaded edge model wEdge and the device's carried
// local model wLocal, it computes U = U(wLocal, wEdge) and writes
//
//	ŵ = wEdge/(1+U) + U·wLocal/(1+U)
//
// into dst, returning the utility used. With U = 0 the result is exactly
// the edge model (no aggregation); with U = 1 it is the 50/50 average, so
// the edge model always dominates or ties. dst may alias wEdge or wLocal.
func OnDeviceAggregateInto(dst, wEdge, wLocal []float64) (utility float64) {
	u := Utility(wLocal, wEdge)
	if u == 0 {
		copy(dst, wEdge)
		return 0
	}
	BlendInto(dst, wEdge, wLocal, u/(1+u))
	return u
}

// OnDeviceAggregate is the allocating form of OnDeviceAggregateInto.
func OnDeviceAggregate(wEdge, wLocal []float64) (aggregated []float64, utility float64) {
	out := make([]float64, len(wEdge))
	u := OnDeviceAggregateInto(out, wEdge, wLocal)
	return out, u
}

// DeltaInto computes dst = w − wRef (paper Eq. 10, with wRef the cloud
// model) without allocating. dst may alias w or wRef.
func DeltaInto(dst, w, wRef []float64) {
	if len(w) != len(wRef) || len(dst) != len(w) {
		panic(fmt.Sprintf("simil: DeltaInto length mismatch dst=%d w=%d wRef=%d", len(dst), len(w), len(wRef)))
	}
	for i := range w {
		dst[i] = w[i] - wRef[i]
	}
}

// Delta returns the accumulated update Δw = w − wRef.
func Delta(w, wRef []float64) []float64 {
	out := make([]float64, len(w))
	DeltaInto(out, w, wRef)
	return out
}

// SelectionUtilityNorm returns the Eq. 12 similarity utility
// U(w_c, Δw_m) together with ‖Δw_m‖₂, where Δw_m = w_m − w_c (Eq. 10).
// Both come out of the one fused sweep SelectionScore already performs —
// the Δw vector is never materialised — so telemetry gets the update
// norm for free when it asks for the utility.
func SelectionUtilityNorm(wCloud, wLocal []float64) (utility, deltaNorm float64) {
	if len(wCloud) != len(wLocal) {
		panic(fmt.Sprintf("simil: SelectionUtilityNorm length mismatch %d vs %d", len(wCloud), len(wLocal)))
	}
	var dot, sc, sd float64
	for i, cv := range wCloud {
		dv := wLocal[i] - cv
		dot += cv * dv
		sc += cv * cv
		sd += dv * dv
	}
	deltaNorm = math.Sqrt(sd)
	return math.Max(cosineFrom(dot, math.Sqrt(sc), deltaNorm), 0), deltaNorm
}

// SelectionScore is the in-edge device-selection criterion (Eq. 12
// operand): −U(w_c, Δw_m) where Δw_m = w_m − w_c. Devices whose
// accumulated update points *away* from the cloud model (low similarity)
// score highest — they carry data the global model has not learned yet.
func SelectionScore(wCloud, wLocal []float64) float64 {
	u, _ := SelectionUtilityNorm(wCloud, wLocal)
	return -u
}

// DeltaNorm returns ‖w − wRef‖₂ without materialising the difference —
// the per-edge divergence ‖w_n − w_c‖ telemetry reduction.
func DeltaNorm(w, wRef []float64) float64 {
	if len(w) != len(wRef) {
		panic(fmt.Sprintf("simil: DeltaNorm length mismatch %d vs %d", len(w), len(wRef)))
	}
	s := 0.0
	for i, wv := range w {
		d := wv - wRef[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// WeightedAverageInto computes dst = Σ wᵢ·vecᵢ / Σ wᵢ over the given
// model vectors (the FedAvg-style aggregation of paper Eqs. 6 and 7)
// without allocating. dst is fully overwritten and must not alias any of
// the source vectors (the accumulation is multi-pass). It panics when
// vectors disagree in length, dst aliases a source, or all weights are
// zero.
func WeightedAverageInto(dst []float64, vecs [][]float64, weights []float64) {
	if len(vecs) == 0 {
		panic("simil: WeightedAverage of no vectors")
	}
	if len(vecs) != len(weights) {
		panic(fmt.Sprintf("simil: %d vectors but %d weights", len(vecs), len(weights)))
	}
	n := len(vecs[0])
	if len(dst) != n {
		panic(fmt.Sprintf("simil: WeightedAverageInto destination has length %d, want %d", len(dst), n))
	}
	totalW := 0.0
	for i, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("simil: vector %d has length %d, want %d", i, len(v), n))
		}
		if n > 0 && &v[0] == &dst[0] {
			panic(fmt.Sprintf("simil: WeightedAverageInto destination aliases source vector %d", i))
		}
		if weights[i] < 0 {
			panic(fmt.Sprintf("simil: negative weight %v", weights[i]))
		}
		totalW += weights[i]
	}
	if totalW == 0 {
		panic("simil: WeightedAverage with all-zero weights")
	}
	clear(dst)
	for i, v := range vecs {
		w := weights[i] / totalW
		if w == 0 {
			continue
		}
		for j, vj := range v {
			dst[j] += w * vj
		}
	}
}

// WeightedAverage is the allocating form of WeightedAverageInto.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		panic("simil: WeightedAverage of no vectors")
	}
	out := make([]float64, len(vecs[0]))
	WeightedAverageInto(out, vecs, weights)
	return out
}

// Accumulator streams the Eq. 6/Eq. 7 weighted mean one vector at a
// time: Begin(dst, Σwᵢ) then Add(vᵢ, wᵢ) for each update, in order.
// The floating-point operations are exactly those of
// WeightedAverageInto — per vector, dst[j] += (wᵢ/Σw)·vᵢ[j] with
// zero-weight vectors skipped — so a streamed aggregation is
// bit-identical to the materialized call, while the caller never has
// to hold more than one source vector at a time.
//
// The total weight must be known up front (every aggregation point in
// this codebase knows its cohort's weights before it sees the first
// model vector). The zero value is ready for Begin; an Accumulator may
// be reused across rounds.
type Accumulator struct {
	dst    []float64
	totalW float64
	added  int
}

// Begin starts a new aggregation into dst with the given total weight.
// dst is cleared (the mean overwrites it completely) and must stay
// untouched by the caller until the final Add. It panics when totalW
// is not positive, mirroring WeightedAverageInto's all-zero-weights
// panic.
func (a *Accumulator) Begin(dst []float64, totalW float64) {
	if totalW <= 0 {
		panic(fmt.Sprintf("simil: Accumulator.Begin with non-positive total weight %v", totalW))
	}
	clear(dst)
	a.dst = dst
	a.totalW = totalW
	a.added = 0
}

// Add folds one model vector with weight w into the running mean.
// Same panics as WeightedAverageInto: length mismatch, destination
// aliasing and negative weights.
func (a *Accumulator) Add(v []float64, w float64) {
	if a.dst == nil {
		panic("simil: Accumulator.Add before Begin")
	}
	if len(v) != len(a.dst) {
		panic(fmt.Sprintf("simil: Accumulator.Add vector has length %d, want %d", len(v), len(a.dst)))
	}
	if len(v) > 0 && &v[0] == &a.dst[0] {
		panic("simil: Accumulator.Add vector aliases destination")
	}
	if w < 0 {
		panic(fmt.Sprintf("simil: negative weight %v", w))
	}
	a.added++
	wn := w / a.totalW
	if wn == 0 {
		return
	}
	dst := a.dst
	for j, vj := range v {
		dst[j] += wn * vj
	}
}

// Added returns how many vectors have been folded in since Begin.
func (a *Accumulator) Added() int { return a.added }

// AxpyInto computes dst[j] += alpha·v[j] — the BLAS-1 primitive behind
// the sharded cloud's partial weighted sums and their final merge.
func AxpyInto(dst, v []float64, alpha float64) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("simil: AxpyInto length mismatch dst=%d v=%d", len(dst), len(v)))
	}
	for j, vj := range v {
		dst[j] += alpha * vj
	}
}

// ScaleInto computes dst[j] *= alpha in place — the normalisation sweep
// that turns a merged Σ wᵢ·vᵢ into the weighted mean.
func ScaleInto(dst []float64, alpha float64) {
	for j := range dst {
		dst[j] *= alpha
	}
}
