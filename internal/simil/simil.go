// Package simil implements the model-similarity mathematics at the heart
// of MIDDLE: the similarity utility U (paper Eq. 8), the on-device model
// aggregation rule (Eq. 9) and the accumulated update Δw (Eq. 10), all on
// flat parameter vectors.
package simil

import (
	"fmt"
	"math"
)

// Dot returns ⟨a, b⟩ for equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("simil: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns ‖a‖₂.
func Norm(a []float64) float64 {
	s := 0.0
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b. If either vector is
// (numerically) zero the direction is undefined and Cosine returns 0,
// which downstream turns into "no aggregation" — the safe choice.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na < 1e-12 || nb < 1e-12 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Guard against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Utility is the paper's similarity utility (Eq. 8):
// U(a, b) = max(cos(a, b), 0). Clipping at zero prevents "blind
// aggregation" of models whose update directions oppose each other.
func Utility(a, b []float64) float64 {
	return math.Max(Cosine(a, b), 0)
}

// Blend aggregates two models with an explicit coefficient:
// out = (1−α)·a + α·b. It is the primitive both the fixed-α analysis
// (paper §5) and the baselines' 50/50 averaging build on.
func Blend(a, b []float64, alpha float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("simil: Blend length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-alpha)*a[i] + alpha*b[i]
	}
	return out
}

// OnDeviceAggregate implements the paper's Eq. 9. Given the freshly
// downloaded edge model wEdge and the device's carried local model
// wLocal, it computes U = U(wLocal, wEdge) and returns
//
//	ŵ = wEdge/(1+U) + U·wLocal/(1+U)
//
// along with the utility used. With U = 0 the result is exactly the edge
// model (no aggregation); with U = 1 it is the 50/50 average, so the edge
// model always dominates or ties.
func OnDeviceAggregate(wEdge, wLocal []float64) (aggregated []float64, utility float64) {
	u := Utility(wLocal, wEdge)
	if u == 0 {
		return append([]float64(nil), wEdge...), 0
	}
	return Blend(wEdge, wLocal, u/(1+u)), u
}

// Delta returns the accumulated update Δw = w − wRef (paper Eq. 10, with
// wRef the cloud model).
func Delta(w, wRef []float64) []float64 {
	if len(w) != len(wRef) {
		panic(fmt.Sprintf("simil: Delta length mismatch %d vs %d", len(w), len(wRef)))
	}
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i] - wRef[i]
	}
	return out
}

// SelectionScore is the in-edge device-selection criterion (Eq. 12
// operand): −U(w_c, Δw_m) where Δw_m = w_m − w_c. Devices whose
// accumulated update points *away* from the cloud model (low similarity)
// score highest — they carry data the global model has not learned yet.
func SelectionScore(wCloud, wLocal []float64) float64 {
	return -Utility(wCloud, Delta(wLocal, wCloud))
}

// WeightedAverage computes Σ wᵢ·vecᵢ / Σ wᵢ over the given model vectors
// (the FedAvg-style aggregation of paper Eqs. 6 and 7). It panics when
// vectors disagree in length or all weights are zero.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		panic("simil: WeightedAverage of no vectors")
	}
	if len(vecs) != len(weights) {
		panic(fmt.Sprintf("simil: %d vectors but %d weights", len(vecs), len(weights)))
	}
	n := len(vecs[0])
	totalW := 0.0
	for i, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("simil: vector %d has length %d, want %d", i, len(v), n))
		}
		if weights[i] < 0 {
			panic(fmt.Sprintf("simil: negative weight %v", weights[i]))
		}
		totalW += weights[i]
	}
	if totalW == 0 {
		panic("simil: WeightedAverage with all-zero weights")
	}
	out := make([]float64, n)
	for i, v := range vecs {
		w := weights[i] / totalW
		if w == 0 {
			continue
		}
		for j := range v {
			out[j] += w * v[j]
		}
	}
	return out
}
