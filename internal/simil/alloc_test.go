package simil

import (
	"math"
	"testing"
)

// Allocation-regression guards for the aggregation hot path: thousands of
// Sim.StepOnce calls evaluate these over full model vectors, so they must
// not allocate (Into forms) or allocate exactly the result (allocating
// forms).

func benchVecs() (a, b []float64) {
	a = make([]float64, 4096)
	b = make([]float64, 4096)
	for i := range a {
		a[i] = math.Sin(float64(i))
		b[i] = math.Cos(float64(i) * 0.7)
	}
	return a, b
}

func TestSelectionScoreDoesNotAllocate(t *testing.T) {
	a, b := benchVecs()
	var sink float64
	if allocs := testing.AllocsPerRun(20, func() { sink = SelectionScore(a, b) }); allocs > 0 {
		t.Fatalf("SelectionScore allocates %v/run, want 0", allocs)
	}
	_ = sink
}

func TestOnDeviceAggregateAllocations(t *testing.T) {
	a, b := benchVecs()
	dst := make([]float64, len(a))
	if allocs := testing.AllocsPerRun(20, func() { OnDeviceAggregateInto(dst, a, b) }); allocs > 0 {
		t.Fatalf("OnDeviceAggregateInto allocates %v/run, want 0", allocs)
	}
	// The allocating form may allocate exactly the result vector.
	if allocs := testing.AllocsPerRun(20, func() { _, _ = OnDeviceAggregate(a, b) }); allocs > 1 {
		t.Fatalf("OnDeviceAggregate allocates %v/run, want <= 1", allocs)
	}
}

func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	a, b := benchVecs()
	dst := make([]float64, len(a))

	BlendInto(dst, a, b, 0.3)
	for i, want := range Blend(a, b, 0.3) {
		if dst[i] != want {
			t.Fatalf("BlendInto differs at %d", i)
		}
	}

	DeltaInto(dst, a, b)
	for i, want := range Delta(a, b) {
		if dst[i] != want {
			t.Fatalf("DeltaInto differs at %d", i)
		}
	}

	u := OnDeviceAggregateInto(dst, a, b)
	want, wantU := OnDeviceAggregate(a, b)
	if u != wantU {
		t.Fatalf("utilities differ: %v vs %v", u, wantU)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("OnDeviceAggregateInto differs at %d", i)
		}
	}

	vecs := [][]float64{a, b}
	weights := []float64{2, 3}
	WeightedAverageInto(dst, vecs, weights)
	for i, w := range WeightedAverage(vecs, weights) {
		if dst[i] != w {
			t.Fatalf("WeightedAverageInto differs at %d", i)
		}
	}
}

func TestDotNormsMatchesSeparateReductions(t *testing.T) {
	a, b := benchVecs()
	dot, na, nb := DotNorms(a, b)
	if math.Abs(dot-Dot(a, b)) > 1e-9 || math.Abs(na-Norm(a)) > 1e-12 || math.Abs(nb-Norm(b)) > 1e-12 {
		t.Fatalf("DotNorms = (%v, %v, %v), want (%v, %v, %v)", dot, na, nb, Dot(a, b), Norm(a), Norm(b))
	}
}

func TestSelectionScoreMatchesComposition(t *testing.T) {
	a, b := benchVecs()
	got := SelectionScore(a, b)
	want := -math.Max(Cosine(a, Delta(b, a)), 0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SelectionScore fused = %v, composed = %v", got, want)
	}
}

func TestWeightedAverageIntoAliasPanics(t *testing.T) {
	a, b := benchVecs()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when dst aliases a source vector")
		}
	}()
	WeightedAverageInto(a, [][]float64{a, b}, []float64{1, 1})
}
