package simil

import (
	"math"
	"testing"

	"middle/internal/tensor"
)

// TestAccumulatorBitIdentical pins the tentpole guarantee: streaming a
// cohort through Accumulator produces the exact bits of the
// materialized WeightedAverageInto call, across dimensions, cohort
// sizes and weight mixes (including zero weights).
func TestAccumulatorBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(42)
	for _, dim := range []int{1, 7, 1378} {
		for _, n := range []int{1, 2, 5, 23} {
			vecs := make([][]float64, n)
			weights := make([]float64, n)
			for i := range vecs {
				vecs[i] = make([]float64, dim)
				for j := range vecs[i] {
					vecs[i][j] = rng.NormFloat64()
				}
				// Integer-valued weights (data sizes) plus an
				// occasional zero (a fully-rejected device).
				weights[i] = float64(rng.Intn(100))
			}
			weights[0] = float64(1 + rng.Intn(100)) // keep Σw > 0
			want := make([]float64, dim)
			WeightedAverageInto(want, vecs, weights)

			got := make([]float64, dim)
			for j := range got {
				got[j] = math.NaN() // Begin must clear stale content
			}
			totalW := 0.0
			for _, w := range weights {
				totalW += w
			}
			var acc Accumulator
			acc.Begin(got, totalW)
			for i, v := range vecs {
				acc.Add(v, weights[i])
			}
			if acc.Added() != n {
				t.Fatalf("dim=%d n=%d: Added()=%d, want %d", dim, n, acc.Added(), n)
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("dim=%d n=%d: coordinate %d differs: streamed %v vs materialized %v",
						dim, n, j, got[j], want[j])
				}
			}
		}
	}
}

// TestAccumulatorPanics mirrors WeightedAverageInto's contract.
func TestAccumulatorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	var acc Accumulator
	mustPanic("Begin with zero weight", func() { acc.Begin(make([]float64, 3), 0) })
	mustPanic("Add before Begin", func() { (&Accumulator{}).Add(make([]float64, 3), 1) })
	dst := make([]float64, 3)
	acc.Begin(dst, 2)
	mustPanic("length mismatch", func() { acc.Add(make([]float64, 4), 1) })
	mustPanic("negative weight", func() { acc.Add(make([]float64, 3), -1) })
	mustPanic("destination alias", func() { acc.Add(dst, 1) })
}

// TestAxpyScale checks the BLAS-1 shard-merge primitives: merging K
// partial weighted sums and normalising recovers the weighted mean up
// to reassociation error.
func TestAxpyScale(t *testing.T) {
	rng := tensor.NewRNG(7)
	const dim, n = 257, 12
	vecs := make([][]float64, n)
	weights := make([]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, dim)
		for j := range vecs[i] {
			vecs[i][j] = rng.NormFloat64()
		}
		weights[i] = float64(1 + rng.Intn(50))
	}
	want := WeightedAverage(vecs, weights)

	for _, shards := range []int{1, 2, 7} {
		partial := make([][]float64, shards)
		wsum := make([]float64, shards)
		for s := range partial {
			partial[s] = make([]float64, dim)
		}
		for i, v := range vecs {
			s := i % shards
			AxpyInto(partial[s], v, weights[i])
			wsum[s] += weights[i]
		}
		merged := make([]float64, dim)
		totalW := 0.0
		for s := range partial {
			AxpyInto(merged, partial[s], 1)
			totalW += wsum[s]
		}
		ScaleInto(merged, 1/totalW)
		for j := range want {
			if d := math.Abs(merged[j] - want[j]); d > 1e-12*(1+math.Abs(want[j])) {
				t.Fatalf("shards=%d: coordinate %d differs by %g", shards, j, d)
			}
		}
	}
}
