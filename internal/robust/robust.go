// Package robust is the statistical-robustness layer for the MIDDLE
// stack: update validation and Byzantine-robust alternatives to the
// Eq. 6 / Eq. 7 weighted mean.
//
// PR 4 hardened the *transport* — a corrupted frame never decodes. This
// package hardens the *values*: a frame that decodes cleanly may still
// carry a NaN/Inf model, an exploding update, or an adversarial
// (sign-flipped, noise, colluding) model, and without validation it
// flows straight into aggregation and poisons the global model. Worse,
// MIDDLE's mobility carries a poisoned model into the next edge (Eq. 9)
// and the Eq. 12 selector prefers divergent updates, i.e. attackers.
//
// Three pieces:
//
//   - Validator: rejects non-finite models and (optionally) updates
//     whose norm exceeds c·median over the round's update norms — a
//     per-round adaptive threshold, so the bound tracks the natural
//     update magnitude as training anneals.
//   - Aggregator: pluggable Eq. 6/Eq. 7 combiner — weighted mean
//     (default, bit-identical to simil.WeightedAverageInto),
//     coordinate-wise median, β-trimmed mean, norm-clipped mean.
//   - Adversary corruption primitives (adversary.go): seeded,
//     deterministic model corruptions used by the hfl harness and
//     mirrored by the fednet poison fault kinds.
//
// Everything here is deterministic and allocation-free after warm-up:
// scratch buffers live on the Validator/Aggregator and grow to the
// high-water mark, matching the PR 1 hot-path discipline.
package robust

import (
	"math"
	"sort"
)

// Rejection reasons, used as the `reason` label on
// robust_rejected_updates_total.
const (
	ReasonNonFinite = "nonfinite"
	ReasonNorm      = "norm"
)

// ValidatorConfig configures update validation. The zero value means
// "validation off" so embedding configs stay backward compatible.
type ValidatorConfig struct {
	// Enabled turns on the non-finite check.
	Enabled bool
	// NormBound is the multiplier c in the adaptive update-norm bound
	// ‖w − w_ref‖₂ ≤ c·median(norms). 0 disables the norm check.
	// Requires Enabled.
	NormBound float64
}

// Active reports whether any validation would run.
func (c ValidatorConfig) Active() bool { return c.Enabled }

// RejectCounts tallies one Filter call's rejections by reason.
type RejectCounts struct {
	NonFinite int
	Norm      int
}

// Total returns the number of rejected updates.
func (r RejectCounts) Total() int { return r.NonFinite + r.Norm }

// Validator screens a round's model updates before aggregation. Not
// safe for concurrent use; each aggregation point owns one.
type Validator struct {
	cfg    ValidatorConfig
	norms  []float64 // scratch: ‖vecs[i]−ref‖ for surviving updates
	sorted []float64 // scratch: norms copy for the median
}

// NewValidator returns a validator for cfg, or nil when validation is
// disabled — callers may invoke Filter on a nil receiver.
func NewValidator(cfg ValidatorConfig) *Validator {
	if !cfg.Active() {
		return nil
	}
	return &Validator{cfg: cfg}
}

// IsFinite reports whether every element of v is finite (no NaN/±Inf).
func IsFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Filter screens the round's updates against ref (the aggregation
// point's pre-round model). It compacts the kept vectors and weights to
// the front of the input slices, preserving order, and returns the kept
// prefixes — the caller's backing arrays are reused, nothing is
// allocated. A nil validator keeps everything.
//
// Two passes: (1) drop non-finite vectors; (2) when NormBound > 0,
// compute ‖v−ref‖₂ for the survivors, take their median, and drop
// vectors beyond NormBound·median. The median adapts per round, so the
// bound follows the natural decay of update magnitudes; with fewer than
// 3 survivors the norm check is skipped (no meaningful median).
func (v *Validator) Filter(ref []float64, vecs [][]float64, weights []float64) ([][]float64, []float64, RejectCounts) {
	var rc RejectCounts
	if v == nil {
		return vecs, weights, rc
	}
	k := 0
	for i, vec := range vecs {
		if !IsFinite(vec) {
			rc.NonFinite++
			continue
		}
		vecs[k], weights[k] = vecs[i], weights[i]
		k++
	}
	vecs, weights = vecs[:k], weights[:k]
	if v.cfg.NormBound <= 0 || len(vecs) < 3 {
		return vecs, weights, rc
	}
	if cap(v.norms) < len(vecs) {
		v.norms = make([]float64, len(vecs))
		v.sorted = make([]float64, len(vecs))
	}
	norms := v.norms[:len(vecs)]
	for i, vec := range vecs {
		norms[i] = deltaNorm(vec, ref)
	}
	bound := v.cfg.NormBound * medianInto(v.sorted[:len(vecs)], norms)
	k = 0
	for i, vec := range vecs {
		if norms[i] > bound {
			rc.Norm++
			continue
		}
		vecs[k], weights[k] = vec, weights[i]
		k++
	}
	return vecs[:k], weights[:k], rc
}

// deltaNorm returns ‖v − ref‖₂ without materialising the delta.
func deltaNorm(v, ref []float64) float64 {
	var s float64
	for i := range v {
		d := v[i] - ref[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// medianInto copies xs into dst, sorts dst, and returns the median
// (mean of the middle pair for even lengths). xs is left untouched.
func medianInto(dst, xs []float64) float64 {
	copy(dst, xs)
	sort.Float64s(dst)
	n := len(dst)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return dst[n/2]
	}
	return (dst[n/2-1] + dst[n/2]) / 2
}
