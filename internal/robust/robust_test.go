package robust

import (
	"math"
	"testing"
)

func almostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestParseAggregator(t *testing.T) {
	for _, s := range []string{"", "mean", "median", "trimmed-mean", "norm-clip"} {
		if _, err := ParseAggregator(s); err != nil {
			t.Errorf("ParseAggregator(%q): %v", s, err)
		}
	}
	if _, err := ParseAggregator("krum"); err == nil {
		t.Error("ParseAggregator accepted unknown kind")
	}
}

func TestParseAdversaryMode(t *testing.T) {
	for _, s := range []string{"", "sign-flip", "noise", "same-value"} {
		if _, err := ParseAdversaryMode(s); err != nil {
			t.Errorf("ParseAdversaryMode(%q): %v", s, err)
		}
	}
	if _, err := ParseAdversaryMode("label-flip"); err == nil {
		t.Error("ParseAdversaryMode accepted unknown mode")
	}
}

// Hand-computed aggregation tables, including a poisoned column.
func TestAggregatorsHandComputed(t *testing.T) {
	vecs := [][]float64{
		{1, 10, -1},
		{2, 20, 0},
		{3, 30, 1},
		{4, 40, 2},
		{100, -500, 3}, // outlier
	}
	weights := []float64{1, 1, 1, 1, 1}
	ref := []float64{2, 20, 0}

	cases := []struct {
		name string
		agg  Aggregator
		want []float64
	}{
		{"mean", Aggregator{Kind: AggMean}, []float64{22, -80, 1}},
		// col 2 sorted: -500 10 20 30 40 → median 20.
		{"median", Aggregator{Kind: AggMedian}, []float64{3, 20, 1}},
		// β=0.2, n=5 → trim 1 from each end: mean of middle three.
		{"trimmed", Aggregator{Kind: AggTrimmedMean, TrimFrac: 0.2}, []float64{3, 20, 1}},
	}
	for _, tc := range cases {
		dst := make([]float64, 3)
		tc.agg.AggregateInto(dst, vecs, weights, ref)
		if !almostEq(dst, tc.want, 1e-12) {
			t.Errorf("%s: got %v want %v", tc.name, dst, tc.want)
		}
	}
}

func TestTrimmedMeanStats(t *testing.T) {
	a := Aggregator{Kind: AggTrimmedMean, TrimFrac: 0.2}
	vecs := [][]float64{{1}, {2}, {3}, {4}, {5}}
	dst := make([]float64, 1)
	st := a.AggregateInto(dst, vecs, []float64{1, 1, 1, 1, 1}, nil)
	if st.TrimmedValues != 2 {
		t.Errorf("TrimmedValues = %d, want 2", st.TrimmedValues)
	}
	if dst[0] != 3 {
		t.Errorf("trimmed mean = %v, want 3", dst[0])
	}
	// Too few vectors to trim a full β share on each side: degrade, not
	// empty.
	st = a.AggregateInto(dst, [][]float64{{1}, {9}}, []float64{1, 1}, nil)
	if dst[0] != 5 {
		t.Errorf("degraded trimmed mean = %v, want 5", dst[0])
	}
	if st.TrimmedValues != 0 {
		t.Errorf("degraded TrimmedValues = %d, want 0", st.TrimmedValues)
	}
}

func TestNormClipBoundsOutlier(t *testing.T) {
	ref := []float64{0, 0}
	vecs := [][]float64{
		{1, 0},
		{0, 1},
		{1000, 0}, // exploding update
	}
	w := []float64{1, 1, 1}
	a := Aggregator{Kind: AggNormClip}
	dst := make([]float64, 2)
	st := a.AggregateInto(dst, vecs, w, ref)
	if st.ClippedUpdates != 1 {
		t.Errorf("ClippedUpdates = %d, want 1", st.ClippedUpdates)
	}
	// τ = median(1, 1, 1000) = 1; clipped outlier contributes (1, 0).
	want := []float64{2.0 / 3, 1.0 / 3}
	if !almostEq(dst, want, 1e-12) {
		t.Errorf("norm-clip = %v, want %v", dst, want)
	}
}

// norm-clip supports dst aliasing ref (the sim aggregates into the
// model it validates against).
func TestNormClipAliasRef(t *testing.T) {
	model := []float64{1, 2}
	vecs := [][]float64{{2, 2}, {1, 3}, {0, 2}}
	w := []float64{1, 1, 1}
	a := Aggregator{Kind: AggNormClip}
	a.AggregateInto(model, vecs, w, model)
	if !almostEq(model, []float64{1, 7.0 / 3}, 1e-12) {
		t.Errorf("aliased norm-clip = %v", model)
	}
}

func TestMeanMatchesSimilBitwise(t *testing.T) {
	vecs := [][]float64{{0.1, 0.7, -3}, {2.5, 1e-9, 4}}
	w := []float64{3, 7}
	var a Aggregator // zero value: mean
	got := make([]float64, 3)
	a.AggregateInto(got, vecs, w, nil)
	want := make([]float64, 3)
	// Reference computation identical to simil.WeightedAverageInto.
	tw := w[0] + w[1]
	for j := range want {
		want[j] = w[0]/tw*vecs[0][j] + w[1]/tw*vecs[1][j]
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("coord %d: %v != %v (must be bit-identical)", j, got[j], want[j])
		}
	}
}

func TestValidatorRejectsNonFinite(t *testing.T) {
	v := NewValidator(ValidatorConfig{Enabled: true})
	ref := []float64{0, 0}
	vecs := [][]float64{
		{1, 2},
		{math.NaN(), 0},
		{3, 4},
		{0, math.Inf(1)},
	}
	w := []float64{1, 2, 3, 4}
	kept, keptW, rc := v.Filter(ref, vecs, w)
	if rc.NonFinite != 2 || rc.Norm != 0 {
		t.Fatalf("RejectCounts = %+v", rc)
	}
	if len(kept) != 2 || kept[0][0] != 1 || kept[1][0] != 3 {
		t.Fatalf("kept = %v", kept)
	}
	if keptW[0] != 1 || keptW[1] != 3 {
		t.Fatalf("keptW = %v", keptW)
	}
}

func TestValidatorNormBound(t *testing.T) {
	v := NewValidator(ValidatorConfig{Enabled: true, NormBound: 3})
	ref := []float64{0}
	vecs := [][]float64{{1}, {1.5}, {2}, {-100}}
	w := []float64{1, 1, 1, 1}
	// norms 1, 1.5, 2, 100; median 1.75; bound 5.25 → reject the 100.
	kept, _, rc := v.Filter(ref, vecs, w)
	if rc.Norm != 1 || rc.NonFinite != 0 {
		t.Fatalf("RejectCounts = %+v", rc)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d updates, want 3", len(kept))
	}
}

func TestValidatorSkipsNormWithFewUpdates(t *testing.T) {
	v := NewValidator(ValidatorConfig{Enabled: true, NormBound: 1})
	kept, _, rc := v.Filter([]float64{0}, [][]float64{{1}, {100}}, []float64{1, 1})
	if len(kept) != 2 || rc.Total() != 0 {
		t.Fatalf("norm check should be skipped below 3 survivors: kept=%d rc=%+v", len(kept), rc)
	}
}

func TestNilValidatorKeepsAll(t *testing.T) {
	var v *Validator
	vecs := [][]float64{{math.NaN()}}
	kept, _, rc := v.Filter([]float64{0}, vecs, []float64{1})
	if len(kept) != 1 || rc.Total() != 0 {
		t.Fatal("nil validator must keep everything")
	}
	if NewValidator(ValidatorConfig{}) != nil {
		t.Fatal("disabled config must yield nil validator")
	}
}

func TestAdversaryMembershipDeterministic(t *testing.T) {
	a := Adversary{Fraction: 0.3, Seed: 42}
	b := Adversary{Fraction: 0.3, Seed: 42}
	c := Adversary{Fraction: 0.3, Seed: 43}
	same, diff := true, false
	nA := 0
	for m := 0; m < 200; m++ {
		if a.IsAdversary(m) != b.IsAdversary(m) {
			same = false
		}
		if a.IsAdversary(m) != c.IsAdversary(m) {
			diff = true
		}
		if a.IsAdversary(m) {
			nA++
		}
	}
	if !same {
		t.Error("same seed must mark the same devices")
	}
	if !diff {
		t.Error("different seeds should mark different devices")
	}
	if nA < 30 || nA > 90 {
		t.Errorf("fraction 0.3 marked %d/200 devices", nA)
	}
}

func TestCorruptModes(t *testing.T) {
	ref := []float64{1, 1}
	w := []float64{2, 0}
	a := Adversary{Fraction: 1, Seed: 9, Mode: AdvSignFlip, Scale: 1}
	got := append([]float64(nil), w...)
	a.Corrupt(got, ref, 0, 0)
	if !almostEq(got, []float64{0, 2}, 0) {
		t.Errorf("sign-flip = %v, want [0 2]", got)
	}

	// Corruption is deterministic in (seed, device, round).
	a.Mode = AdvNoise
	x := append([]float64(nil), w...)
	y := append([]float64(nil), w...)
	a.Corrupt(x, ref, 3, 7)
	a.Corrupt(y, ref, 3, 7)
	if !almostEq(x, y, 0) {
		t.Error("noise corruption must be deterministic")
	}
	z := append([]float64(nil), w...)
	a.Corrupt(z, ref, 3, 8)
	if almostEq(x, z, 0) {
		t.Error("different rounds must draw different noise")
	}

	// Collusion: different devices, same round, identical upload.
	a.Mode = AdvSameValue
	p := append([]float64(nil), w...)
	q := []float64{-5, 40}
	a.Corrupt(p, ref, 1, 4)
	a.Corrupt(q, ref, 2, 4)
	if !almostEq(p, q, 0) {
		t.Errorf("same-value adversaries disagree: %v vs %v", p, q)
	}
}
