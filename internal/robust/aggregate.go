package robust

import (
	"fmt"
	"math"
	"sort"

	"middle/internal/simil"
)

// AggregatorKind selects the Eq. 6 / Eq. 7 combiner.
type AggregatorKind string

const (
	// AggMean is the paper's weighted mean (FedAvg). The default; the
	// empty string parses to it, and runs under it are bit-identical to
	// calling simil.WeightedAverageInto directly.
	AggMean AggregatorKind = "mean"
	// AggMedian is the coordinate-wise median (unweighted). Breakdown
	// point 1/2: the result is sane while a majority of updates are
	// honest.
	AggMedian AggregatorKind = "median"
	// AggTrimmedMean drops the ⌊β·n⌋ smallest and largest values per
	// coordinate and averages the rest (unweighted). Breakdown point β.
	AggTrimmedMean AggregatorKind = "trimmed-mean"
	// AggNormClip clips each update Δᵢ = vᵢ − ref to the median update
	// norm before the weighted mean: bounds any single update's pull
	// without discarding it.
	AggNormClip AggregatorKind = "norm-clip"
)

// ParseAggregator maps a CLI/config string to an AggregatorKind. The
// empty string is the mean.
func ParseAggregator(s string) (AggregatorKind, error) {
	switch AggregatorKind(s) {
	case "", AggMean:
		return AggMean, nil
	case AggMedian:
		return AggMedian, nil
	case AggTrimmedMean:
		return AggTrimmedMean, nil
	case AggNormClip:
		return AggNormClip, nil
	}
	return "", fmt.Errorf("robust: unknown aggregator %q (want mean, median, trimmed-mean or norm-clip)", s)
}

// DefaultTrimFrac is the trim fraction β when the config leaves it 0.
const DefaultTrimFrac = 0.2

// AggStats reports what one aggregation did, for the robust_* metrics.
type AggStats struct {
	// TrimmedValues counts values dropped by the trimmed mean
	// (2·⌊β·n⌋ per coordinate).
	TrimmedValues int
	// ClippedUpdates counts updates the norm-clipped mean scaled down.
	ClippedUpdates int
}

// Aggregator combines a round's model vectors. Not safe for concurrent
// use; each aggregation point owns one. The zero value aggregates with
// the weighted mean.
type Aggregator struct {
	// Kind selects the combiner; "" means AggMean.
	Kind AggregatorKind
	// TrimFrac is β for AggTrimmedMean; 0 means DefaultTrimFrac.
	TrimFrac float64

	col   []float64 // scratch: one coordinate's values across updates
	norms []float64 // scratch: update norms for norm-clip
	scale []float64 // scratch: per-update clip factors
}

// IsMean reports whether the aggregator is the plain weighted mean.
func (a *Aggregator) IsMean() bool {
	return a == nil || a.Kind == "" || a.Kind == AggMean
}

// AggregateInto combines vecs into dst. ref is the aggregation point's
// pre-round model; only AggNormClip reads it (others accept nil). For
// the mean this is exactly simil.WeightedAverageInto — same panics,
// same floating-point result. For the robust kinds dst may alias ref
// (coordinate-major writes), but must not alias any source vector, and
// the same structural panics apply (no vectors, length mismatch,
// negative or all-zero weights where weights are used).
func (a *Aggregator) AggregateInto(dst []float64, vecs [][]float64, weights []float64, ref []float64) AggStats {
	if a.IsMean() {
		simil.WeightedAverageInto(dst, vecs, weights)
		return AggStats{}
	}
	checkShapes(dst, vecs, weights)
	switch a.Kind {
	case AggMedian:
		a.medianInto(dst, vecs)
		return AggStats{}
	case AggTrimmedMean:
		return a.trimmedMeanInto(dst, vecs)
	case AggNormClip:
		return a.normClipInto(dst, vecs, weights, ref)
	}
	panic(fmt.Sprintf("robust: unknown aggregator kind %q", a.Kind))
}

func checkShapes(dst []float64, vecs [][]float64, weights []float64) {
	if len(vecs) == 0 {
		panic("robust: aggregate of no vectors")
	}
	if len(vecs) != len(weights) {
		panic(fmt.Sprintf("robust: %d vectors but %d weights", len(vecs), len(weights)))
	}
	n := len(vecs[0])
	if len(dst) != n {
		panic(fmt.Sprintf("robust: destination has length %d, want %d", len(dst), n))
	}
	for i, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("robust: vector %d has length %d, want %d", i, len(v), n))
		}
		if n > 0 && &v[0] == &dst[0] {
			panic(fmt.Sprintf("robust: destination aliases source vector %d", i))
		}
	}
}

func (a *Aggregator) column(n int) []float64 {
	if cap(a.col) < n {
		a.col = make([]float64, n)
	}
	return a.col[:n]
}

// medianInto writes the coordinate-wise median of vecs into dst.
func (a *Aggregator) medianInto(dst []float64, vecs [][]float64) {
	col := a.column(len(vecs))
	for j := range dst {
		for i, v := range vecs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		n := len(col)
		if n%2 == 1 {
			dst[j] = col[n/2]
		} else {
			dst[j] = (col[n/2-1] + col[n/2]) / 2
		}
	}
}

// trimmedMeanInto writes the β-trimmed coordinate-wise mean into dst.
// With too few updates to trim (⌊β·n⌋ == 0) it degrades to the
// unweighted mean.
func (a *Aggregator) trimmedMeanInto(dst []float64, vecs [][]float64) AggStats {
	beta := a.TrimFrac
	if beta == 0 {
		beta = DefaultTrimFrac
	}
	n := len(vecs)
	t := int(math.Floor(beta * float64(n)))
	if 2*t >= n {
		t = (n - 1) / 2
	}
	col := a.column(n)
	for j := range dst {
		for i, v := range vecs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		s := 0.0
		for _, x := range col[t : n-t] {
			s += x
		}
		dst[j] = s / float64(n-2*t)
	}
	return AggStats{TrimmedValues: 2 * t * len(dst)}
}

// normClipInto writes the weighted mean of updates clipped to the
// median update norm: dst = ref + Σ wᵢ·sᵢ·(vᵢ−ref) / Σ wᵢ with
// sᵢ = min(1, τ/‖vᵢ−ref‖) and τ the median of the ‖vᵢ−ref‖. dst may
// alias ref: norms are computed before any write, and each coordinate
// reads ref[j] before storing dst[j].
func (a *Aggregator) normClipInto(dst []float64, vecs [][]float64, weights []float64, ref []float64) AggStats {
	if len(ref) != len(dst) {
		panic(fmt.Sprintf("robust: norm-clip reference has length %d, want %d", len(ref), len(dst)))
	}
	totalW := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("robust: negative weight %v", w))
		}
		totalW += w
	}
	if totalW == 0 {
		panic("robust: aggregate with all-zero weights")
	}
	n := len(vecs)
	if cap(a.norms) < n {
		a.norms = make([]float64, n)
		a.scale = make([]float64, n)
	}
	norms, scale := a.norms[:n], a.scale[:n]
	for i, v := range vecs {
		norms[i] = deltaNorm(v, ref)
	}
	tau := medianInto(a.column(n), norms)
	var st AggStats
	for i, nm := range norms {
		scale[i] = weights[i] / totalW
		if nm > tau && nm > 0 {
			scale[i] *= tau / nm
			st.ClippedUpdates++
		}
	}
	for j := range dst {
		r := ref[j]
		acc := 0.0
		for i, v := range vecs {
			acc += scale[i] * (v[j] - r)
		}
		dst[j] = r + acc
	}
	return st
}
