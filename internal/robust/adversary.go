package robust

import (
	"fmt"

	"middle/internal/tensor"
)

// AdversaryMode selects the corruption an adversarial device applies to
// its trained model before upload.
type AdversaryMode string

const (
	// AdvSignFlip reflects the trained model around the reference:
	// w' = ref − Scale·(w − ref), i.e. the update's sign is flipped
	// (and amplified by Scale). The classic gradient-inversion attack.
	AdvSignFlip AdversaryMode = "sign-flip"
	// AdvNoise adds scaled Gaussian noise: w'ᵢ = wᵢ + Scale·gᵢ with g
	// drawn from the device+round stream.
	AdvNoise AdversaryMode = "noise"
	// AdvSameValue is collusion: every adversary uploads the identical
	// vector w'ᵢ = refᵢ + Scale·gᵢ with g drawn from the round-only
	// stream, stacking weight behind one malicious point.
	AdvSameValue AdversaryMode = "same-value"
)

// ParseAdversaryMode maps a CLI/config string to an AdversaryMode. The
// empty string is sign-flip (the default attack).
func ParseAdversaryMode(s string) (AdversaryMode, error) {
	switch AdversaryMode(s) {
	case "", AdvSignFlip:
		return AdvSignFlip, nil
	case AdvNoise:
		return AdvNoise, nil
	case AdvSameValue:
		return AdvSameValue, nil
	}
	return "", fmt.Errorf("robust: unknown adversary mode %q (want sign-flip, noise or same-value)", s)
}

// Adversary configures the seeded adversary harness. The zero value is
// no adversaries.
type Adversary struct {
	// Fraction of devices that are adversarial, in [0, 1]. Membership
	// is a pure function of (Seed, device): the same seed marks the
	// same devices in every run and every round.
	Fraction float64
	// Mode is the corruption applied; "" means AdvSignFlip.
	Mode AdversaryMode
	// Scale is the attack amplitude; 0 means 1.
	Scale float64
	// Seed derives both membership and corruption streams.
	Seed int64
}

// Enabled reports whether any device is corrupted.
func (a Adversary) Enabled() bool { return a.Fraction > 0 }

// stream-id salts keeping membership and corruption draws independent.
const (
	advMemberStream  = int64(0x5eed<<32) + 1
	advCorruptStream = int64(0x5eed<<32) + 2
)

// IsAdversary reports whether device m is adversarial — a pure function
// of (Seed, Fraction, m), independent of round, matching the threat
// model of a persistently compromised device.
func (a Adversary) IsAdversary(m int) bool {
	if a.Fraction <= 0 {
		return false
	}
	return tensor.Split(a.Seed, advMemberStream+int64(m)*2).Float64() < a.Fraction
}

// Corrupt overwrites w in place with the Mode corruption for (device m,
// round t), given ref, the model the device started the round from (for
// AdvSameValue pass the cloud/edge model so colluders agree). Pure in
// (Seed, Mode, Scale, m, t, w, ref).
func (a Adversary) Corrupt(w, ref []float64, m, t int) {
	if len(w) != len(ref) {
		panic(fmt.Sprintf("robust: Corrupt length mismatch %d vs %d", len(w), len(ref)))
	}
	scale := a.Scale
	if scale == 0 {
		scale = 1
	}
	switch a.Mode {
	case "", AdvSignFlip:
		for i, r := range ref {
			w[i] = r - scale*(w[i]-r)
		}
	case AdvNoise:
		rng := tensor.Split(a.Seed, advCorruptStream+int64(m)*1_000_003+int64(t)*7)
		for i := range w {
			w[i] += scale * rng.NormFloat64()
		}
	case AdvSameValue:
		// Round-only stream: every adversary draws the same values.
		rng := tensor.Split(a.Seed, advCorruptStream+int64(t)*7)
		for i, r := range ref {
			w[i] = r + scale*rng.NormFloat64()
		}
	default:
		panic(fmt.Sprintf("robust: unknown adversary mode %q", a.Mode))
	}
}
