package fednet

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"sync"
	"time"

	"middle/internal/checkpoint"
	"middle/internal/hfl"
	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// EdgeConfig configures one edge server.
type EdgeConfig struct {
	EdgeID    int
	CloudAddr string
	// Addr is the device-facing TCP listen address.
	Addr string
	// K devices are selected per round (paper §6.1.2: 5).
	K int
	// Strategy decides which connected devices train each round. The
	// edge adapts it through a View over its device-state cache.
	Strategy hfl.Strategy
	// Seed derives the per-round selection tie-break randomness.
	Seed int64
	// Timeout bounds network operations (default 30 s).
	Timeout time.Duration
	// Quorum is the minimum number of responders a round needs before
	// the edge aggregates Eq. 6 (default 1, clamped to ≤ K). Below
	// quorum the edge carries its previous model forward and reports
	// zero weight to the cloud.
	Quorum int
	// RoundDeadline bounds one round's device training; stragglers past
	// it are excluded from aggregation and their connections closed
	// (default Timeout).
	RoundDeadline time.Duration
	// MaxRetries is how many times a failed train RPC is retried against
	// a (possibly reconnected) device before the round gives up on it
	// (default 3).
	MaxRetries int
	// RetryBase is the base retry backoff; successive attempts grow it
	// exponentially, capped, with deterministic jitter (default 50 ms).
	RetryBase time.Duration
	// Faults, when set, injects faults on the edge→cloud link.
	Faults *FaultInjector
	// Aggregator selects the Eq. 6 combiner: "" or "mean" (the default
	// weighted mean), "median", "trimmed-mean" or "norm-clip" (see
	// internal/robust).
	Aggregator robust.AggregatorKind
	// TrimFrac is the trimmed mean's β (0 = robust.DefaultTrimFrac).
	TrimFrac float64
	// Validate screens received device models before Eq. 6: non-finite
	// models are rejected when enabled, and NormBound > 0 additionally
	// rejects updates beyond NormBound·median(norms) for the round.
	// Rejected updates are excluded exactly like stragglers.
	Validate robust.ValidatorConfig
	// SelectionNormCap, when > 0, caps the Eq. 12 selection score of
	// devices whose cached update norm exceeds it (see hfl.NormCapView).
	SelectionNormCap float64
	// CheckpointDir, when set, makes the edge persist its state (edge
	// model + round + Eq. 6 weight accumulator) after rounds, and
	// NewEdge resume from the latest valid checkpoint found there.
	CheckpointDir string
	// CheckpointEvery persists every Nth round (default 1).
	CheckpointEvery int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Obs, when set, receives per-message byte/latency metrics
	// (fednet_* series). Nil disables metrics at near-zero cost.
	Obs *obs.Registry
	// Trace, when set, records a span per round and per train RPC,
	// parented on the cloud's round span (RoundStart.Span) and passed
	// down to devices via TrainRequest.Span. Nil disables tracing.
	Trace *obs.Trace
}

// deviceState is the edge's cached knowledge about one connected device —
// exactly the information the paper allows selection to use (model
// vectors and participation history, never raw data).
type deviceState struct {
	conn net.Conn
	// mux is set when the device is virtual — attached through a shared
	// multiplexed connection (conn is then the mux's connection and all
	// I/O goes through the mux's write lock and demux reader).
	mux         *edgeMux
	id          int
	dataSize    int
	arrivedFrom int  // edge the device trained under before connecting here
	trainedHere bool // has it trained at this edge since arriving?
	lastModel   []float64
	statUtil    float64
	lastTrained int
}

// Edge runs the in-edge half of Algorithm 1 as a server: it accepts
// device connections, selects K of them each round, ships them the edge
// model, aggregates their replies (Eq. 6) and reports to the cloud.
type Edge struct {
	cfg       EdgeConfig
	ln        net.Listener
	m         edgeMetrics
	validator *robust.Validator
	agg       robust.Aggregator
	resumed   bool // state restored from a checkpoint by NewEdge

	mu      sync.Mutex
	devices map[int]*deviceState

	// The fields below are guarded by mu: the Run loop writes them while
	// acceptLoop goroutines read them to build registration acks.
	edgeModel []float64
	cloudSeen []float64 // last global model received (w_c for Eq. 12)
	weight    float64   // d̂ accumulator since last sync
	lastSync  int       // round of the last cloud sync
	curRound  int       // round currently (or last) executed
}

// NewEdge builds an edge server and starts its device listener.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.K < 1 || cfg.Strategy == nil {
		return nil, fmt.Errorf("fednet: implausible edge config %+v", cfg)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Quorum < 1 {
		cfg.Quorum = 1
	}
	if cfg.Quorum > cfg.K {
		cfg.Quorum = cfg.K
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.Timeout
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: edge %d listen: %w", cfg.EdgeID, err)
	}
	cfg.Trace.SetProcessName(tracePidEdgeBase+cfg.EdgeID, fmt.Sprintf("edge%d", cfg.EdgeID))
	e := &Edge{
		cfg:       cfg,
		ln:        ln,
		m:         newEdgeMetrics(cfg.Obs),
		validator: robust.NewValidator(cfg.Validate),
		agg:       robust.Aggregator{Kind: cfg.Aggregator, TrimFrac: cfg.TrimFrac},
		devices:   map[int]*deviceState{},
	}
	if cfg.CheckpointDir != "" {
		st, ok, err := checkpoint.LoadLatestNamed(cfg.CheckpointDir, edgeCheckpointName(cfg.EdgeID))
		if err != nil {
			ln.Close()
			return nil, err
		}
		if ok {
			e.edgeModel = st.Model
			e.weight = st.EdgeWeights[cfg.EdgeID]
			e.curRound = st.Round
			// Conservative resume: treat the checkpointed round as the
			// last sync so reconnecting devices reset their carried local
			// models against the fresh state.
			e.lastSync = st.Round
			e.resumed = true
			cfg.Logf("edge %d: resuming from checkpoint (round %d, weight %.0f)", cfg.EdgeID, st.Round, e.weight)
		}
	}
	return e, nil
}

// edgeCheckpointName names edge checkpoints so several edges (and the
// cloud's "global" records) can share one directory.
func edgeCheckpointName(id int) string { return fmt.Sprintf("edge%d", id) }

// saveCheckpoint persists the edge's recovery state: model, round and
// the Eq. 6 weight accumulator (keyed by the edge's own id in the v2
// record's weight map).
func (e *Edge) saveCheckpoint(round int) {
	e.mu.Lock()
	st := checkpoint.State{
		Name:        edgeCheckpointName(e.cfg.EdgeID),
		Round:       round,
		Model:       append([]float64(nil), e.edgeModel...),
		EdgeWeights: map[int]float64{e.cfg.EdgeID: e.weight},
	}
	e.mu.Unlock()
	if _, err := checkpoint.SaveStateFile(e.cfg.CheckpointDir, st); err != nil {
		e.cfg.Logf("edge %d: checkpoint at round %d failed: %v", e.cfg.EdgeID, round, err)
		return
	}
	e.m.checkpoints.Inc()
	e.cfg.Logf("edge %d: checkpointed round %d", e.cfg.EdgeID, round)
}

// Addr returns the edge's device-facing listen address.
func (e *Edge) Addr() string { return e.ln.Addr().String() }

// acceptLoop registers incoming devices until the listener closes.
func (e *Edge) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
			var reg struct {
				RegisterDevice
				Devices []RegisterDevice `json:"devices"`
			}
			t, _, err := e.m.deviceLink.readMsg(conn, &reg)
			if err != nil || (t != MsgRegisterDevice && t != MsgRegisterMux) {
				conn.Close()
				return
			}
			if t == MsgRegisterMux {
				e.acceptMux(conn, reg.Devices)
				return
			}
			e.mu.Lock()
			if old, ok := e.devices[reg.DeviceID]; ok {
				old.conn.Close()
				e.m.reconnects.Inc()
			}
			e.devices[reg.DeviceID] = &deviceState{
				conn:        conn,
				id:          reg.DeviceID,
				dataSize:    reg.DataSize,
				arrivedFrom: reg.PrevEdge,
				statUtil:    math.NaN(),
				lastTrained: -1,
			}
			ack := RegisterAck{EdgeID: e.cfg.EdgeID, Round: e.curRound, LastSync: e.lastSync}
			model := e.edgeModel
			e.mu.Unlock()
			// Ack with the current edge model so a reconnecting device
			// resyncs state (model + round counter) before its next
			// TrainRequest; without the ack a registration lost to a
			// fault would strand the device silently.
			if err := e.m.deviceLink.writeMsg(conn, MsgRegisterAck, ack, model); err != nil {
				e.dropDevice(reg.DeviceID, conn)
				return
			}
			conn.SetDeadline(time.Time{})
			e.cfg.Logf("edge %d: device %d joined (from edge %d)", e.cfg.EdgeID, reg.DeviceID, reg.PrevEdge)
		}(conn)
	}
}

// dropDevice removes a device whose connection failed. The conn pointer
// guards against a race with re-registration: if the device already
// reconnected (new state under the same id), the fresh entry stays.
func (e *Edge) dropDevice(id int, conn net.Conn) {
	e.mu.Lock()
	if d, ok := e.devices[id]; ok && d.conn == conn {
		d.conn.Close()
		delete(e.devices, id)
	}
	e.mu.Unlock()
}

// Run connects to the cloud and participates until shutdown.
func (e *Edge) Run() error {
	defer e.ln.Close()
	var cloud net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		cloud, err = net.Dial("tcp", e.cfg.CloudAddr)
		if err == nil {
			break
		}
		if attempt >= e.cfg.MaxRetries {
			return fmt.Errorf("fednet: edge %d dialing cloud: %w", e.cfg.EdgeID, err)
		}
		e.m.retries.Inc()
		time.Sleep(retryBackoff(e.cfg.RetryBase, attempt+1, e.cfg.Seed, int64(e.cfg.EdgeID)))
	}
	cloud = e.cfg.Faults.WrapEdgeLink(cloud, e.cfg.EdgeID)
	defer cloud.Close()
	cloud.SetDeadline(time.Now().Add(e.cfg.Timeout))
	if err := e.m.cloudLink.writeMsg(cloud, MsgRegisterEdge, RegisterEdge{EdgeID: e.cfg.EdgeID}, nil); err != nil {
		return fmt.Errorf("fednet: edge %d registering: %w", e.cfg.EdgeID, err)
	}
	t, vec, err := e.m.cloudLink.readMsg(cloud, nil)
	if err != nil || t != MsgGlobalModel {
		return fmt.Errorf("fednet: edge %d waiting for init model: type %d, %v", e.cfg.EdgeID, t, err)
	}
	e.mu.Lock()
	if e.resumed && len(e.edgeModel) == len(vec) {
		// Crash recovery: keep the checkpointed edge model — it carries
		// Eq. 6 progress accumulated since the last cloud sync that the
		// broadcast global model does not — and only adopt the received
		// model as the cloud reference for Eq. 12.
		e.cloudSeen = append([]float64(nil), vec...)
	} else {
		e.edgeModel = vec
		e.cloudSeen = append([]float64(nil), vec...)
	}
	e.mu.Unlock()

	go e.acceptLoop()

	for {
		cloud.SetDeadline(time.Time{}) // rounds may start at any time
		var rs RoundStart
		t, _, err := e.m.cloudLink.readMsg(cloud, &rs)
		if err != nil {
			return fmt.Errorf("fednet: edge %d reading round start: %w", e.cfg.EdgeID, err)
		}
		switch t {
		case MsgShutdown:
			e.shutdownDevices()
			return nil
		case MsgRoundStart:
		default:
			return fmt.Errorf("fednet: edge %d unexpected message type %d", e.cfg.EdgeID, t)
		}

		tr := e.cfg.Trace
		traceStart := tr.Now()
		eSpan := ""
		if tr != nil {
			eSpan = edgeRoundSpan(e.cfg.EdgeID, rs.Round)
		}
		roundTok := e.m.roundSpan.Begin()
		st := e.runRound(rs.Round, eSpan)
		roundTok.End()
		if tr != nil {
			tr.Complete("edge_round", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				traceStart, tr.Now().Sub(traceStart), eSpan, rs.Span,
				map[string]any{"round": rs.Round, "trained": st.trained,
					"excluded": st.excluded, "rejected": st.rejected,
					"quorum_miss": st.quorumMiss})
		}
		e.mu.Lock()
		e.weight += st.weight
		curWeight := e.weight
		model := e.edgeModel
		e.mu.Unlock()

		cloud.SetDeadline(time.Now().Add(e.cfg.Timeout))
		done := RoundDone{EdgeID: e.cfg.EdgeID, Round: rs.Round, Trained: st.trained}
		var payload []float64
		if rs.Sync {
			done.Weight = curWeight
			if curWeight > 0 {
				payload = model
			}
		}
		if err := e.m.cloudLink.writeMsg(cloud, MsgRoundDone, done, payload); err != nil {
			countTimeout(e.m.timeouts, err)
			return fmt.Errorf("fednet: edge %d acking round %d: %w", e.cfg.EdgeID, rs.Round, err)
		}
		if rs.Sync {
			t, vec, err := e.m.cloudLink.readMsg(cloud, nil)
			if err != nil || t != MsgGlobalModel {
				return fmt.Errorf("fednet: edge %d waiting for global model: type %d, %v", e.cfg.EdgeID, t, err)
			}
			e.mu.Lock()
			e.edgeModel = vec
			e.cloudSeen = append([]float64(nil), vec...)
			e.weight = 0
			e.lastSync = rs.Round
			e.mu.Unlock()
		}
		if e.cfg.CheckpointDir != "" && rs.Round%e.cfg.CheckpointEvery == 0 {
			e.saveCheckpoint(rs.Round)
		}
	}
}

// roundStats reports one round's outcome, including the degradation
// decisions (stragglers excluded, quorum met or missed).
type roundStats struct {
	trained    int
	excluded   int
	rejected   int // updates the validator refused
	weight     float64
	quorumMiss bool
}

// trainResult is one device's contribution to a round.
type trainResult struct {
	id    int
	vec   []float64
	reply TrainReply
	err   error
}

// runRound executes one Algorithm 1 time step: selection, parallel
// training on the selected devices with per-RPC retry, Eq. 6
// aggregation over the devices that answered before the round deadline.
// span is the edge's round trace span id ("" when tracing is off); each
// train RPC records a child span and forwards its id to the device.
func (e *Edge) runRound(round int, span string) roundStats {
	e.mu.Lock()
	e.curRound = round
	candidates := make([]int, 0, len(e.devices))
	for id := range e.devices {
		candidates = append(candidates, id)
	}
	view := &edgeView{edge: e, round: round}
	model := e.edgeModel
	e.mu.Unlock()
	if len(candidates) == 0 {
		return roundStats{}
	}

	rng := tensor.Split(e.cfg.Seed, int64(round)*1_000_003+int64(e.cfg.EdgeID)*7+1)
	e.mu.Lock()
	sel := e.cfg.Strategy.Select(view, e.cfg.EdgeID, candidates, e.cfg.K, rng)
	e.mu.Unlock()
	if len(sel) > e.cfg.K {
		sel = sel[:e.cfg.K]
	}
	if len(sel) == 0 {
		return roundStats{}
	}

	// abort tells straggler goroutines the round has moved on, so a
	// retry loop never sends a stale-round request after the deadline.
	abort := make(chan struct{})
	defer close(abort)
	results := make(chan trainResult, len(sel))
	for _, id := range sel {
		go e.trainDevice(id, round, span, model, results, abort)
	}

	var st roundStats
	var rc robust.RejectCounts
	var vecs [][]float64
	var ws []float64
	pending := make(map[int]bool, len(sel))
	for _, id := range sel {
		pending[id] = true
	}
	deadline := time.NewTimer(e.cfg.RoundDeadline)
	defer deadline.Stop()
collect:
	for len(pending) > 0 {
		select {
		case res := <-results:
			delete(pending, res.id)
			if res.err != nil {
				e.cfg.Logf("edge %d: device %d failed round %d: %v", e.cfg.EdgeID, res.id, round, res.err)
				e.m.drops.Inc()
				continue
			}
			// Validation pass 1: a non-finite model is rejected on
			// receipt — it is neither cached for selection (a NaN
			// lastModel would poison the Eq. 12 scores) nor aggregated.
			if e.validator != nil && !robust.IsFinite(res.vec) {
				rc.NonFinite++
				e.m.rejNonFinite.Inc()
				e.cfg.Logf("edge %d: rejected non-finite update from device %d in round %d", e.cfg.EdgeID, res.id, round)
				continue
			}
			e.mu.Lock()
			if d, ok := e.devices[res.id]; ok {
				d.lastModel = res.vec
				d.statUtil = res.reply.Utility
				d.lastTrained = round
				d.trainedHere = true
			}
			e.mu.Unlock()
			vecs = append(vecs, res.vec)
			ws = append(ws, float64(res.reply.DataSize))
			st.trained++
		case <-deadline.C:
			break collect
		}
	}

	// Exclude stragglers past the deadline: close their connections (so
	// they do not leak in the device map) and leave them out of Eq. 6.
	// The device reconnects and resyncs via the registration ack.
	tr := e.cfg.Trace
	for id := range pending {
		st.excluded++
		e.m.stragglers.Inc()
		e.mu.Lock()
		if d, ok := e.devices[id]; ok {
			if d.mux != nil {
				// A virtual straggler stays registered: its shared
				// connection is healthy (the multiplexer trains its
				// devices sequentially, so only this round-trip is late)
				// and closing it would take the siblings down with it.
			} else {
				d.conn.Close()
				delete(e.devices, id)
			}
		}
		e.mu.Unlock()
		e.cfg.Logf("edge %d: excluded straggler device %d in round %d", e.cfg.EdgeID, id, round)
		if tr != nil {
			now := tr.Now()
			tr.Complete("straggler_excluded", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
				now, 0, span+".x"+strconv.Itoa(id), span,
				map[string]any{"round": round, "device": id})
		}
	}

	// Validation pass 2: per-round adaptive norm bound over the
	// surviving updates, measured against the pre-round edge model.
	if e.validator != nil && len(vecs) > 0 {
		kept, keptW, rc2 := e.validator.Filter(model, vecs, ws)
		rc.Norm += rc2.Norm
		e.m.rejNorm.Add(int64(rc2.Norm))
		vecs, ws = kept, keptW
		st.trained = len(vecs)
	}
	st.rejected = rc.Total()
	if st.rejected > 0 {
		e.cfg.Logf("edge %d: round %d rejected %d updates (%d nonfinite, %d norm)",
			e.cfg.EdgeID, round, st.rejected, rc.NonFinite, rc.Norm)
		if tr != nil {
			now := tr.Now()
			tr.Complete("robust_reject", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				now, 0, span+".rej", span,
				map[string]any{"round": round, "nonfinite": rc.NonFinite, "norm": rc.Norm})
		}
	}
	for _, w := range ws {
		st.weight += w
	}

	if st.trained < e.cfg.Quorum {
		// Quorum not met: fall back to carrying the previous edge model
		// forward — the responders' updates are discarded rather than
		// letting a tiny, biased sample steer Eq. 6, and the edge
		// reports zero weight so the cloud skips it at the next sync.
		st.quorumMiss = true
		st.weight = 0
		e.m.quorumMisses.Inc()
		e.cfg.Logf("edge %d: round %d quorum miss (%d/%d responders)", e.cfg.EdgeID, round, st.trained, e.cfg.Quorum)
		if tr != nil {
			now := tr.Now()
			tr.Complete("quorum_miss", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				now, 0, span+".qm", span,
				map[string]any{"round": round, "responders": st.trained, "quorum": e.cfg.Quorum})
		}
		return st
	}
	if len(vecs) > 0 {
		fp := flight.BeginPhase("edge_agg")
		defer fp.End()
		agg := make([]float64, len(vecs[0]))
		aggStats := e.agg.AggregateInto(agg, vecs, ws, model)
		if aggStats.TrimmedValues > 0 {
			e.m.trimmedCoords.Add(int64(aggStats.TrimmedValues))
		}
		if aggStats.ClippedUpdates > 0 {
			e.m.clippedUpdates.Add(int64(aggStats.ClippedUpdates))
		}
		e.mu.Lock()
		e.edgeModel = agg
		e.mu.Unlock()
	}
	return st
}

// trainDevice runs one device's train RPC with capped-backoff retries.
// Any transport error closes that device's connection (a poisoned or
// half-dead stream cannot be reused) and the retry addresses whatever
// connection the device re-registered with.
func (e *Edge) trainDevice(id, round int, span string, model []float64, results chan<- trainResult, abort <-chan struct{}) {
	tr := e.cfg.Trace
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			e.m.retries.Inc()
			time.Sleep(retryBackoff(e.cfg.RetryBase, attempt, e.cfg.Seed,
				int64(e.cfg.EdgeID)*1_000_003+int64(id)*31+int64(round)))
		}
		select {
		case <-abort:
			results <- trainResult{id: id, err: lastErr}
			return
		default:
		}
		e.mu.Lock()
		d, ok := e.devices[id]
		var req TrainRequest
		var mx *edgeMux
		if ok {
			req = TrainRequest{
				Round:      round,
				DeviceID:   id,
				Moved:      !d.trainedHere && d.arrivedFrom >= 0 && d.arrivedFrom != e.cfg.EdgeID,
				ResetLocal: d.lastTrained < e.lastSync,
			}
			if span != "" {
				req.Span = trainRPCSpan(span, id)
			}
			mx = d.mux
		}
		e.mu.Unlock()
		if !ok {
			lastErr = fmt.Errorf("device %d not connected", id)
			continue
		}
		if mx != nil {
			// Multiplexed device: the round-trip rides the shared
			// connection; the demux reader matches the reply by device id.
			rpcStart := tr.Now()
			rpcTok := e.m.trainSpan.Begin()
			fp := flight.BeginPhase("comm")
			vec, reply, err := mx.roundTrip(id, req, model, e.cfg.Timeout)
			fp.End()
			if err == nil && (reply.Round != round || len(vec) == 0) {
				err = fmt.Errorf("mux train reply: round %d, %d values", reply.Round, len(vec))
			}
			if err != nil {
				countTimeout(e.m.timeouts, err)
				lastErr = err
				continue
			}
			rpcTok.End()
			if tr != nil {
				tr.Complete("train_rpc", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
					rpcStart, tr.Now().Sub(rpcStart), req.Span, span,
					map[string]any{"round": round, "device": id, "attempt": attempt, "mux": true})
			}
			results <- trainResult{id: id, vec: vec, reply: reply}
			return
		}
		conn := d.conn
		rpcStart := tr.Now()
		rpcTok := e.m.trainSpan.Begin()
		fp := flight.BeginPhase("comm")
		conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
		if err := e.m.deviceLink.writeMsg(conn, MsgTrainRequest, req, model); err != nil {
			fp.End()
			countTimeout(e.m.timeouts, err)
			e.dropDevice(id, conn)
			lastErr = err
			continue
		}
		var reply TrainReply
		t, vec, err := e.m.deviceLink.readMsg(conn, &reply)
		fp.End()
		if err != nil || t != MsgTrainReply || reply.Round != round {
			countTimeout(e.m.timeouts, err)
			e.dropDevice(id, conn)
			lastErr = fmt.Errorf("train reply: type %d, round %d, %v", t, reply.Round, err)
			continue
		}
		conn.SetDeadline(time.Time{})
		rpcTok.End()
		if tr != nil {
			tr.Complete("train_rpc", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
				rpcStart, tr.Now().Sub(rpcStart), req.Span, span,
				map[string]any{"round": round, "device": id, "attempt": attempt})
		}
		results <- trainResult{id: id, vec: vec, reply: reply}
		return
	}
	results <- trainResult{id: id, err: lastErr}
}

func (e *Edge) shutdownDevices() {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Multiplexed devices share connections: shut each one down once.
	seen := map[net.Conn]bool{}
	for id, d := range e.devices {
		if !seen[d.conn] {
			seen[d.conn] = true
			d.conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
			_ = e.m.deviceLink.writeMsg(d.conn, MsgShutdown, struct{}{}, nil)
			d.conn.Close()
		}
		delete(e.devices, id)
	}
	e.setVirtualGaugeLocked()
}

// edgeView adapts the edge's device cache to hfl.View so the simulation
// strategies (MIDDLE, OORT, …) run unchanged in the networked setting.
// The caller must hold e.mu.
type edgeView struct {
	edge  *Edge
	round int
}

func (v *edgeView) Step() int             { return v.round }
func (v *edgeView) CloudModel() []float64 { return v.edge.cloudSeen }
func (v *edgeView) EdgeModel(int) []float64 {
	return v.edge.edgeModel
}

func (v *edgeView) LocalModel(device int) []float64 {
	if d, ok := v.edge.devices[device]; ok && d.lastModel != nil {
		return d.lastModel
	}
	// Never-seen devices are treated as carrying the last global model
	// (Δw = 0), matching the post-sync state in the simulation.
	return v.edge.cloudSeen
}

func (v *edgeView) DataSize(device int) int {
	if d, ok := v.edge.devices[device]; ok {
		return d.dataSize
	}
	return 0
}

func (v *edgeView) StatUtility(device int) float64 {
	if d, ok := v.edge.devices[device]; ok {
		return d.statUtil
	}
	return math.NaN()
}

func (v *edgeView) LastTrained(device int) int {
	if d, ok := v.edge.devices[device]; ok {
		return d.lastTrained
	}
	return -1
}

// SelectionNormCap implements hfl.NormCapView so norm-aware strategies
// stop preferring devices whose cached update exceeds the cap.
func (v *edgeView) SelectionNormCap() float64 { return v.edge.cfg.SelectionNormCap }

var _ hfl.View = (*edgeView)(nil)
var _ hfl.NormCapView = (*edgeView)(nil)
