package fednet

import (
	"fmt"
	"math"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"middle/internal/checkpoint"
	"middle/internal/hfl"
	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// EdgeConfig configures one edge server.
type EdgeConfig struct {
	EdgeID    int
	CloudAddr string
	// Addr is the device-facing TCP listen address.
	Addr string
	// K devices are selected per round (paper §6.1.2: 5).
	K int
	// Strategy decides which connected devices train each round. The
	// edge adapts it through a View over its device-state cache.
	Strategy hfl.Strategy
	// Seed derives the per-round selection tie-break randomness.
	Seed int64
	// Timeout bounds network operations (default 30 s).
	Timeout time.Duration
	// Quorum is the minimum number of responders a round needs before
	// the edge aggregates Eq. 6 (default 1, clamped to ≤ K). Below
	// quorum the edge carries its previous model forward and reports
	// zero weight to the cloud.
	Quorum int
	// RoundDeadline bounds one round's device training; stragglers past
	// it are excluded from aggregation and their connections closed
	// (default Timeout).
	RoundDeadline time.Duration
	// MaxRetries is how many times a failed train RPC is retried against
	// a (possibly reconnected) device before the round gives up on it
	// (default 3).
	MaxRetries int
	// RetryBase is the base retry backoff; successive attempts grow it
	// exponentially, capped, with deterministic jitter (default 50 ms).
	RetryBase time.Duration
	// Faults, when set, injects faults on the edge→cloud link.
	Faults *FaultInjector
	// Aggregator selects the Eq. 6 combiner: "" or "mean" (the default
	// weighted mean), "median", "trimmed-mean" or "norm-clip" (see
	// internal/robust).
	Aggregator robust.AggregatorKind
	// TrimFrac is the trimmed mean's β (0 = robust.DefaultTrimFrac).
	TrimFrac float64
	// Validate screens received device models before Eq. 6: non-finite
	// models are rejected when enabled, and NormBound > 0 additionally
	// rejects updates beyond NormBound·median(norms) for the round.
	// Rejected updates are excluded exactly like stragglers.
	Validate robust.ValidatorConfig
	// SelectionNormCap, when > 0, caps the Eq. 12 selection score of
	// devices whose cached update norm exceeds it (see hfl.NormCapView).
	SelectionNormCap float64
	// LiveMigration enables stateful edge-to-edge handover: on a
	// mobility step the cluster asks the source edge to ship the moving
	// device's state (model, optimizer moments, step counter, timeline)
	// to the destination via MsgMigrate, so the device resumes mid-round
	// instead of cold-joining. Every failure degrades to the plain
	// drop-and-reconnect move. Off by default.
	LiveMigration bool
	// MigrateTimeout bounds one handover transfer attempt (dial, send,
	// ack). It is separate from Timeout because a faulted handover
	// blocks the mobility step, not a training round: keeping it tight
	// makes the fallback fast without starving slow train RPCs
	// (default Timeout).
	MigrateTimeout time.Duration
	// CheckpointDir, when set, makes the edge persist its state (edge
	// model + round + Eq. 6 weight accumulator) after rounds, and
	// NewEdge resume from the latest valid checkpoint found there.
	// With LiveMigration it also journals in-flight handover records
	// (".hov" files) so a source-edge crash cannot strand a device.
	CheckpointDir string
	// CheckpointEvery persists every Nth round (default 1).
	CheckpointEvery int
	// DeviceLeaseRounds, when > 0, is the device-tier lease: a dedicated
	// device that has neither registered nor trained for this many rounds
	// is evicted at the next round start (its connection closed, counted
	// in fednet_lease_expirations_total). A live device simply
	// re-registers through its reconnect path; a dead one stops occupying
	// a selection slot. 0 (default) disables eviction — the pre-lease
	// behaviour. Multiplexed devices are exempt (their shared connection
	// is the liveness signal).
	DeviceLeaseRounds int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Obs, when set, receives per-message byte/latency metrics
	// (fednet_* series). Nil disables metrics at near-zero cost.
	Obs *obs.Registry
	// Trace, when set, records a span per round and per train RPC,
	// parented on the cloud's round span (RoundStart.Span) and passed
	// down to devices via TrainRequest.Span. Nil disables tracing.
	Trace *obs.Trace
}

// deviceState is the edge's cached knowledge about one connected device —
// exactly the information the paper allows selection to use (model
// vectors and participation history, never raw data).
type deviceState struct {
	conn net.Conn
	// mux is set when the device is virtual — attached through a shared
	// multiplexed connection (conn is then the mux's connection and all
	// I/O goes through the mux's write lock and demux reader).
	mux         *edgeMux
	id          int
	dataSize    int
	arrivedFrom int  // edge the device trained under before connecting here
	trainedHere bool // has it trained at this edge since arriving?
	lastModel   []float64
	statUtil    float64
	lastTrained int
	// lastSeen is the edge round of the device's last sign of life
	// (registration or a train reply); the DeviceLeaseRounds eviction
	// ages on it.
	lastSeen int
	// Live-migration state. moments/momentLens/optSteps cache the
	// device's last uploaded optimizer state (WantMoments replies) so a
	// later handover can ship it. resume* hold state received from an
	// accepted migrate-in, consumed one-shot by the device's first train
	// request here (Resume=true → the device imports the moments instead
	// of resetting its optimizer).
	moments       []float64
	momentLens    []int
	optSteps      int
	resume        bool
	resumeMoments []float64
	resumeLens    []int
	resumeSteps   int
}

// Edge runs the in-edge half of Algorithm 1 as a server: it accepts
// device connections, selects K of them each round, ships them the edge
// model, aggregates their replies (Eq. 6) and reports to the cloud.
type Edge struct {
	cfg       EdgeConfig
	ln        net.Listener
	m         edgeMetrics
	validator *robust.Validator
	agg       robust.Aggregator
	resumed   bool // state restored from a checkpoint by NewEdge

	mu      sync.Mutex
	devices map[int]*deviceState

	// pendingHandover holds accepted migrate-in records awaiting the
	// device's registration; handoverGen remembers the highest accepted
	// generation per device so a late retry of an older move is rejected
	// as stale. Both guarded by mu.
	pendingHandover map[int]*checkpoint.Handover
	handoverGen     map[int]int

	// pendingTrace queues migration trace spans until the edge's next
	// round starts: handovers run between rounds, and emitting them
	// immediately would escape the parent edge_round interval. Guarded
	// by mu.
	pendingTrace []pendingTraceEvent

	// The fields below are guarded by mu: the Run loop writes them while
	// acceptLoop goroutines read them to build registration acks.
	edgeModel []float64
	cloudSeen []float64 // last global model received (w_c for Eq. 12)
	weight    float64   // d̂ accumulator since last sync
	lastSync  int       // round of the last cloud sync
	curRound  int       // round currently (or last) executed

	// Membership state: the incarnation epoch assigned by the cloud's
	// welcome (0 when the membership layer is disabled), the cloud
	// connection (so Stop/Kill can interrupt a blocked read) and the
	// graceful-stop flag. epoch and cloudConn are guarded by mu.
	epoch     int
	cloudConn net.Conn
	stopFlag  atomic.Bool
	killFlag  atomic.Bool
}

// Killed reports whether Kill tore this edge incarnation down; its Run
// error is then an expected casualty, not a run failure.
func (e *Edge) Killed() bool { return e.killFlag.Load() }

// Stop requests a graceful edge shutdown: the cloud connection is
// closed, making Run unblock, shut its devices down, write a final
// checkpoint and return nil instead of an error.
func (e *Edge) Stop() {
	e.stopFlag.Store(true)
	e.mu.Lock()
	conn := e.cloudConn
	e.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Kill tears the edge down abruptly — listener, cloud connection and
// every device connection — simulating a crashed edge process. Run
// returns an error; chaos tests use it to exercise failover.
func (e *Edge) Kill() {
	e.killFlag.Store(true)
	e.ln.Close()
	e.mu.Lock()
	conn := e.cloudConn
	conns := make([]net.Conn, 0, len(e.devices))
	for _, d := range e.devices {
		conns = append(conns, d.conn)
	}
	e.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Epoch reports the membership epoch this edge incarnation was welcomed
// under (0 when the membership layer is disabled).
func (e *Edge) Epoch() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// pendingTraceEvent is a migration span waiting to be emitted as an
// instant at the start of the edge's next round. The handover's wall
// time is carried in args (and in fednet_handover_seconds); the span
// itself is zero-duration so it always nests inside its edge_round.
type pendingTraceEvent struct {
	name   string
	device int
	span   string
	args   map[string]any
}

// NewEdge builds an edge server and starts its device listener.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.K < 1 || cfg.Strategy == nil {
		return nil, fmt.Errorf("fednet: implausible edge config %+v", cfg)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MigrateTimeout <= 0 {
		cfg.MigrateTimeout = cfg.Timeout
	}
	if cfg.Quorum < 1 {
		cfg.Quorum = 1
	}
	if cfg.Quorum > cfg.K {
		cfg.Quorum = cfg.K
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.Timeout
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: edge %d listen: %w", cfg.EdgeID, err)
	}
	cfg.Trace.SetProcessName(tracePidEdgeBase+cfg.EdgeID, fmt.Sprintf("edge%d", cfg.EdgeID))
	e := &Edge{
		cfg:             cfg,
		ln:              ln,
		m:               newEdgeMetrics(cfg.Obs),
		validator:       robust.NewValidator(cfg.Validate),
		agg:             robust.Aggregator{Kind: cfg.Aggregator, TrimFrac: cfg.TrimFrac},
		devices:         map[int]*deviceState{},
		pendingHandover: map[int]*checkpoint.Handover{},
		handoverGen:     map[int]int{},
	}
	if cfg.CheckpointDir != "" && cfg.LiveMigration {
		// Leftover handover journals mean this edge crashed mid-migration;
		// the moved devices fell back to drop-and-reconnect (the cluster
		// re-attaches them regardless), so account the fallbacks and clear
		// the journals rather than strand anything.
		if hs, err := checkpoint.LoadHandovers(cfg.CheckpointDir); err == nil {
			for _, h := range hs {
				if h.SrcEdge != cfg.EdgeID {
					continue
				}
				e.m.migrateFallback.Inc()
				_ = checkpoint.RemoveHandoverFile(cfg.CheckpointDir, h.Device, h.Generation)
				cfg.Logf("edge %d: unresolved handover journal for device %d (gen %d): counted as fallback", cfg.EdgeID, h.Device, h.Generation)
			}
		}
	}
	if cfg.CheckpointDir != "" {
		st, ok, err := checkpoint.LoadLatestNamed(cfg.CheckpointDir, edgeCheckpointName(cfg.EdgeID))
		if err != nil {
			ln.Close()
			return nil, err
		}
		if ok {
			e.edgeModel = st.Model
			e.weight = st.EdgeWeights[cfg.EdgeID]
			e.curRound = st.Round
			// Conservative resume: treat the checkpointed round as the
			// last sync so reconnecting devices reset their carried local
			// models against the fresh state.
			e.lastSync = st.Round
			e.resumed = true
			cfg.Logf("edge %d: resuming from checkpoint (round %d, weight %.0f)", cfg.EdgeID, st.Round, e.weight)
		}
	}
	return e, nil
}

// edgeCheckpointName names edge checkpoints so several edges (and the
// cloud's "global" records) can share one directory.
func edgeCheckpointName(id int) string { return fmt.Sprintf("edge%d", id) }

// saveCheckpoint persists the edge's recovery state: model, round and
// the Eq. 6 weight accumulator (keyed by the edge's own id in the v2
// record's weight map).
func (e *Edge) saveCheckpoint(round int) {
	e.mu.Lock()
	st := checkpoint.State{
		Name:        edgeCheckpointName(e.cfg.EdgeID),
		Round:       round,
		Model:       append([]float64(nil), e.edgeModel...),
		EdgeWeights: map[int]float64{e.cfg.EdgeID: e.weight},
	}
	e.mu.Unlock()
	if _, err := checkpoint.SaveStateFile(e.cfg.CheckpointDir, st); err != nil {
		e.cfg.Logf("edge %d: checkpoint at round %d failed: %v", e.cfg.EdgeID, round, err)
		return
	}
	e.m.checkpoints.Inc()
	e.cfg.Logf("edge %d: checkpointed round %d", e.cfg.EdgeID, round)
}

// Addr returns the edge's device-facing listen address.
func (e *Edge) Addr() string { return e.ln.Addr().String() }

// acceptLoop registers incoming devices until the listener closes.
func (e *Edge) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
			var reg struct {
				RegisterDevice
				Devices []RegisterDevice `json:"devices"`
				// Migrate / MoveNotice header fields (both share the
				// listener; device_id overlaps RegisterDevice's field).
				SrcEdge     int    `json:"src_edge"`
				Generation  int    `json:"generation"`
				RecordBytes int    `json:"record_bytes"`
				Span        string `json:"span,omitempty"`
				DestEdge    int    `json:"dest_edge"`
				DestAddr    string `json:"dest_addr"`
			}
			t, vec, err := e.m.deviceLink.readMsg(conn, &reg)
			if err != nil || (t != MsgRegisterDevice && t != MsgRegisterMux && t != MsgMigrate && t != MsgMoveNotice) {
				conn.Close()
				return
			}
			if t == MsgMigrate {
				e.acceptMigrate(conn, Migrate{
					SrcEdge: reg.SrcEdge, DestEdge: e.cfg.EdgeID, DeviceID: reg.DeviceID,
					Generation: reg.Generation, RecordBytes: reg.RecordBytes, Span: reg.Span,
				}, vec)
				return
			}
			if t == MsgMoveNotice {
				// Distributed-deployment migration trigger: push the mover's
				// state before the device tears its connection down. The
				// snapshot in MigrateOut races the teardown benignly — losing
				// it yields the ordinary cold join.
				conn.Close()
				e.MigrateOut(reg.DeviceID, reg.DestEdge, reg.DestAddr, reg.Generation)
				return
			}
			if t == MsgRegisterMux {
				e.acceptMux(conn, reg.Devices)
				return
			}
			e.mu.Lock()
			if old, ok := e.devices[reg.DeviceID]; ok {
				old.conn.Close()
				e.m.reconnects.Inc()
			}
			d := &deviceState{
				conn:        conn,
				id:          reg.DeviceID,
				dataSize:    reg.DataSize,
				arrivedFrom: reg.PrevEdge,
				statUtil:    math.NaN(),
				lastTrained: -1,
				lastSeen:    e.curRound,
			}
			if reg.Rehome {
				// Warm re-home: the previous edge died, so the device carries
				// its own state instead of waiting for a handover push. Same
				// merge rule as consumeHandoverLocked — the training timeline
				// survives only within the same cloud-sync era.
				if len(vec) > 0 && (len(e.edgeModel) == 0 || len(vec) == len(e.edgeModel)) {
					d.lastModel = vec
				}
				if reg.Utility != 0 {
					d.statUtil = reg.Utility
				}
				if reg.LastSync == e.lastSync {
					d.lastTrained = reg.LastTrained
				}
				e.m.rehomed.Inc()
			}
			e.devices[reg.DeviceID] = d
			e.consumeHandoverLocked(d)
			ack := RegisterAck{EdgeID: e.cfg.EdgeID, Round: e.curRound, LastSync: e.lastSync}
			model := e.edgeModel
			e.mu.Unlock()
			// Ack with the current edge model so a reconnecting device
			// resyncs state (model + round counter) before its next
			// TrainRequest; without the ack a registration lost to a
			// fault would strand the device silently.
			if err := e.m.deviceLink.writeMsg(conn, MsgRegisterAck, ack, model); err != nil {
				e.dropDevice(reg.DeviceID, conn)
				return
			}
			conn.SetDeadline(time.Time{})
			if reg.Rehome {
				e.cfg.Logf("edge %d: device %d re-homed here (previous edge %d down)", e.cfg.EdgeID, reg.DeviceID, reg.PrevEdge)
			} else {
				e.cfg.Logf("edge %d: device %d joined (from edge %d)", e.cfg.EdgeID, reg.DeviceID, reg.PrevEdge)
			}
		}(conn)
	}
}

// dropDevice removes a device whose connection failed. The conn pointer
// guards against a race with re-registration: if the device already
// reconnected (new state under the same id), the fresh entry stays.
func (e *Edge) dropDevice(id int, conn net.Conn) {
	e.mu.Lock()
	if d, ok := e.devices[id]; ok && d.conn == conn {
		d.conn.Close()
		delete(e.devices, id)
	}
	e.mu.Unlock()
}

// consumeHandoverLocked applies a pending migrate-in record to a freshly
// registered device state (the warm merge): the destination adopts the
// source's cached model, utility and — when both edges sit in the same
// cloud-sync era — the source's training timeline, so the device's first
// train request here skips ResetLocal and the Eq. 9 blend fires
// mid-round instead of cold-joining. e.mu must be held.
func (e *Edge) consumeHandoverLocked(d *deviceState) {
	h := e.pendingHandover[d.id]
	if h == nil || !e.cfg.LiveMigration {
		return
	}
	delete(e.pendingHandover, d.id)
	if len(h.Model) == 0 || (len(e.edgeModel) > 0 && len(h.Model) != len(e.edgeModel)) {
		return // incompatible record: keep the cold-join state
	}
	d.lastModel = h.Model
	d.statUtil = h.StatUtil
	if h.LastSync == e.lastSync {
		// Same sync era: the source timeline stays valid, so the first
		// train request here will not reset the carried local model.
		d.lastTrained = h.LastTrained
	}
	if d.mux == nil && len(h.Moments) > 0 {
		d.resume = true
		d.resumeMoments = h.Moments
		d.resumeLens = h.MomentLens
		d.resumeSteps = h.Steps
	}
	e.cfg.Logf("edge %d: device %d resumes via handover from edge %d (gen %d, steps %d)",
		e.cfg.EdgeID, d.id, h.SrcEdge, h.Generation, h.Steps)
}

// acceptMigrate handles one MsgMigrate frame on a short-lived
// edge-to-edge connection: unpack and decode the handover record (its
// inner CRC catches Byzantine rewrites that the frame CRC cannot),
// check generation freshness, stash the record for the device's
// registration and ack either way.
func (e *Edge) acceptMigrate(conn net.Conn, mig Migrate, vec []float64) {
	defer conn.Close()
	ack := MigrateAck{DeviceID: mig.DeviceID}
	var rec checkpoint.Handover
	if !e.cfg.LiveMigration {
		ack.Reason = "disabled"
	} else if raw, ok := unpackBytes(vec, mig.RecordBytes); !ok {
		ack.Reason = "corrupt_record"
	} else if h, err := checkpoint.DecodeHandoverBytes(raw); err != nil {
		ack.Reason = "corrupt_record"
	} else if h.Device != mig.DeviceID || h.DestEdge != e.cfg.EdgeID || h.Generation != mig.Generation {
		ack.Reason = "misrouted"
	} else {
		rec = h
		ack.Accepted = true
	}
	if ack.Accepted {
		e.mu.Lock()
		if last, seen := e.handoverGen[mig.DeviceID]; seen && mig.Generation <= last {
			ack.Accepted = false
			ack.Reason = "stale_generation"
		} else {
			e.handoverGen[mig.DeviceID] = mig.Generation
			e.pendingHandover[mig.DeviceID] = &rec
			// The device may already have re-registered here before the
			// record arrived (the cluster reconnects concurrently with the
			// transfer retry loop): merge into the live state immediately.
			if d, ok := e.devices[mig.DeviceID]; ok && !d.trainedHere {
				e.consumeHandoverLocked(d)
			}
			if e.cfg.Trace != nil {
				e.pendingTrace = append(e.pendingTrace, pendingTraceEvent{
					name: "migrate_in", device: mig.DeviceID,
					span: migrateInSpan(e.cfg.EdgeID, mig.DeviceID, mig.Generation),
					args: map[string]any{"device": mig.DeviceID, "src_edge": mig.SrcEdge,
						"generation": mig.Generation, "src_span": mig.Span},
				})
			}
		}
		e.mu.Unlock()
	}
	if !ack.Accepted {
		e.cfg.Logf("edge %d: rejected migration of device %d from edge %d: %s",
			e.cfg.EdgeID, mig.DeviceID, mig.SrcEdge, ack.Reason)
	}
	_ = e.m.deviceLink.writeMsg(conn, MsgMigrateAck, ack, nil)
}

// MigrateOut ships the cached state of a moving device to the
// destination edge (live handover). Returns the outcome recorded in
// fednet_migrations_total: "ok" (destination accepted), "fallback"
// (transfer failed after retries — the device simply drop-and-reconnects
// as before), "rejected" (destination refused, e.g. stale generation) or
// "" when there was nothing to hand over (the device never trained here,
// so a cold join loses nothing). The record is journaled under
// CheckpointDir for crash forensics and removed once resolved.
func (e *Edge) MigrateOut(deviceID, destEdge int, destAddr string, generation int) string {
	if !e.cfg.LiveMigration || destEdge == e.cfg.EdgeID {
		return ""
	}
	e.mu.Lock()
	d, ok := e.devices[deviceID]
	var rec checkpoint.Handover
	if ok && len(d.lastModel) > 0 {
		rec = checkpoint.Handover{
			Device:      deviceID,
			SrcEdge:     e.cfg.EdgeID,
			DestEdge:    destEdge,
			Generation:  generation,
			Round:       e.curRound,
			LastSync:    e.lastSync,
			LastTrained: d.lastTrained,
			Steps:       d.optSteps,
			DataSize:    d.dataSize,
			StatUtil:    d.statUtil,
			Model:       append([]float64(nil), d.lastModel...),
			MomentLens:  append([]int(nil), d.momentLens...),
			Moments:     append([]float64(nil), d.moments...),
		}
	}
	e.mu.Unlock()
	if !ok || len(rec.Model) == 0 {
		return ""
	}
	if e.cfg.CheckpointDir != "" {
		if _, err := checkpoint.SaveHandoverFile(e.cfg.CheckpointDir, rec); err != nil {
			e.cfg.Logf("edge %d: journaling handover for device %d failed: %v", e.cfg.EdgeID, deviceID, err)
		} else {
			defer checkpoint.RemoveHandoverFile(e.cfg.CheckpointDir, deviceID, generation)
		}
	}
	raw, err := checkpoint.EncodeHandoverBytes(rec)
	if err != nil {
		e.cfg.Logf("edge %d: encoding handover for device %d failed: %v", e.cfg.EdgeID, deviceID, err)
		e.m.migrateFallback.Inc()
		return "fallback"
	}
	tr := e.cfg.Trace
	srcSpan := ""
	if tr != nil {
		srcSpan = migrateSpan(e.cfg.EdgeID, deviceID, generation)
	}
	mig := Migrate{
		SrcEdge: e.cfg.EdgeID, DestEdge: destEdge, DeviceID: deviceID,
		Generation: generation, RecordBytes: len(raw), Span: srcSpan,
	}
	payload := packBytes(raw)
	outcome := "fallback"
	traceStart := tr.Now()
	hoTok := e.m.handoverSpan.Begin()
transfer:
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			e.m.retries.Inc()
			time.Sleep(retryBackoff(e.cfg.RetryBase, attempt, e.cfg.Seed,
				int64(e.cfg.EdgeID)*1_000_003+int64(deviceID)*61+int64(generation)))
		}
		conn, derr := net.Dial("tcp", destAddr)
		if derr != nil {
			continue
		}
		conn = e.cfg.Faults.WrapMigrateLink(conn, deviceID)
		conn.SetDeadline(time.Now().Add(e.cfg.MigrateTimeout))
		if werr := e.m.migrateLink.writeMsg(conn, MsgMigrate, mig, payload); werr != nil {
			countTimeout(e.m.timeouts, werr)
			conn.Close()
			continue
		}
		var ack MigrateAck
		t, _, rerr := e.m.migrateLink.readMsg(conn, &ack)
		conn.Close()
		if rerr != nil || t != MsgMigrateAck || ack.DeviceID != deviceID {
			countTimeout(e.m.timeouts, rerr)
			continue
		}
		if !ack.Accepted {
			// The destination made a decision; retrying cannot change it.
			outcome = "rejected"
			e.cfg.Logf("edge %d: migration of device %d to edge %d rejected: %s",
				e.cfg.EdgeID, deviceID, destEdge, ack.Reason)
			break transfer
		}
		outcome = "ok"
		hoTok.End() // handover latency observed only for completed transfers
		break transfer
	}
	switch outcome {
	case "ok":
		e.m.migrateOK.Inc()
		e.cfg.Logf("edge %d: migrated device %d to edge %d (gen %d)", e.cfg.EdgeID, deviceID, destEdge, generation)
	case "rejected":
		e.m.migrateRejected.Inc()
	default:
		e.m.migrateFallback.Inc()
		e.cfg.Logf("edge %d: migration of device %d to edge %d fell back to drop-and-reconnect",
			e.cfg.EdgeID, deviceID, destEdge)
	}
	if tr != nil {
		elapsed := tr.Now().Sub(traceStart)
		e.mu.Lock()
		e.pendingTrace = append(e.pendingTrace, pendingTraceEvent{
			name: "migrate", device: deviceID, span: srcSpan,
			args: map[string]any{"device": deviceID, "dest_edge": destEdge,
				"generation": generation, "outcome": outcome,
				"elapsed_us": elapsed.Microseconds()},
		})
		e.mu.Unlock()
	}
	return outcome
}

// Run connects to the cloud and participates until shutdown.
func (e *Edge) Run() error {
	defer e.ln.Close()
	var cloud net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		cloud, err = net.Dial("tcp", e.cfg.CloudAddr)
		if err == nil {
			break
		}
		if attempt >= e.cfg.MaxRetries {
			return fmt.Errorf("fednet: edge %d dialing cloud: %w", e.cfg.EdgeID, err)
		}
		e.m.retries.Inc()
		time.Sleep(retryBackoff(e.cfg.RetryBase, attempt+1, e.cfg.Seed, int64(e.cfg.EdgeID)))
	}
	cloud = e.cfg.Faults.WrapEdgeLink(cloud, e.cfg.EdgeID)
	defer cloud.Close()
	e.mu.Lock()
	e.cloudConn = cloud
	e.mu.Unlock()
	cloud.SetDeadline(time.Now().Add(e.cfg.Timeout))
	if err := e.m.cloudLink.writeMsg(cloud, MsgRegisterEdge, RegisterEdge{EdgeID: e.cfg.EdgeID}, nil); err != nil {
		return fmt.Errorf("fednet: edge %d registering: %w", e.cfg.EdgeID, err)
	}
	var welcome EdgeWelcome
	t, vec, err := e.m.cloudLink.readMsg(cloud, &welcome)
	if err != nil || (t != MsgGlobalModel && t != MsgEdgeWelcome) {
		return fmt.Errorf("fednet: edge %d waiting for init model: type %d, %v", e.cfg.EdgeID, t, err)
	}
	e.mu.Lock()
	if t == MsgEdgeWelcome {
		e.epoch = welcome.Epoch
	}
	switch {
	case t == MsgEdgeWelcome && welcome.Rejoin:
		// Catch-up sync: this incarnation joins mid-run, so any
		// checkpointed Eq. 6 progress belongs to a sync era the cloud has
		// moved past. Adopt the current global model with zero weight and
		// align the round/sync counters with the cloud's.
		e.edgeModel = vec
		e.cloudSeen = append([]float64(nil), vec...)
		e.weight = 0
		e.curRound = welcome.Round
		e.lastSync = welcome.LastSync
	case e.resumed && len(e.edgeModel) == len(vec):
		// Crash recovery: keep the checkpointed edge model — it carries
		// Eq. 6 progress accumulated since the last cloud sync that the
		// broadcast global model does not — and only adopt the received
		// model as the cloud reference for Eq. 12.
		e.cloudSeen = append([]float64(nil), vec...)
	default:
		e.edgeModel = vec
		e.cloudSeen = append([]float64(nil), vec...)
	}
	e.mu.Unlock()
	if t == MsgEdgeWelcome {
		if welcome.Rejoin {
			e.cfg.Logf("edge %d: rejoined at epoch %d (catch-up sync at round %d)", e.cfg.EdgeID, welcome.Epoch, welcome.Round)
		} else {
			e.cfg.Logf("edge %d: joined membership at epoch %d", e.cfg.EdgeID, welcome.Epoch)
		}
		if welcome.LeaseMillis > 0 {
			hbStop := make(chan struct{})
			defer close(hbStop)
			go e.heartbeat(time.Duration(welcome.LeaseMillis)*time.Millisecond, welcome.Epoch, hbStop)
		}
	}

	go e.acceptLoop()

	for {
		cloud.SetDeadline(time.Time{}) // rounds may start at any time
		var rs RoundStart
		t, _, err := e.m.cloudLink.readMsg(cloud, &rs)
		if err != nil {
			if e.stopFlag.Load() {
				// Graceful stop: Stop closed the cloud connection to unblock
				// this read. Flush state and exit cleanly.
				e.mu.Lock()
				round := e.curRound
				e.mu.Unlock()
				if e.cfg.CheckpointDir != "" && round > 0 {
					e.saveCheckpoint(round)
				}
				e.shutdownDevices()
				e.cfg.Logf("edge %d: graceful stop after round %d", e.cfg.EdgeID, round)
				return nil
			}
			return fmt.Errorf("fednet: edge %d reading round start: %w", e.cfg.EdgeID, err)
		}
		switch t {
		case MsgShutdown:
			e.shutdownDevices()
			return nil
		case MsgRoundStart:
		default:
			return fmt.Errorf("fednet: edge %d unexpected message type %d", e.cfg.EdgeID, t)
		}

		tr := e.cfg.Trace
		traceStart := tr.Now()
		eSpan := ""
		if tr != nil {
			eSpan = edgeRoundSpan(e.cfg.EdgeID, rs.Round)
			// Flush migration spans queued since the last round: emitted
			// as instants at round start so they nest under this round.
			e.mu.Lock()
			pend := e.pendingTrace
			e.pendingTrace = nil
			e.mu.Unlock()
			for _, p := range pend {
				p.args["round"] = rs.Round
				tr.Complete(p.name, "fednet", tracePidEdgeBase+e.cfg.EdgeID, p.device,
					traceStart, 0, p.span, eSpan, p.args)
			}
		}
		roundTok := e.m.roundSpan.Begin()
		st := e.runRound(rs.Round, eSpan)
		roundTok.End()
		if tr != nil {
			tr.Complete("edge_round", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				traceStart, tr.Now().Sub(traceStart), eSpan, rs.Span,
				map[string]any{"round": rs.Round, "trained": st.trained,
					"excluded": st.excluded, "rejected": st.rejected,
					"quorum_miss": st.quorumMiss})
		}
		e.mu.Lock()
		e.weight += st.weight
		curWeight := e.weight
		model := e.edgeModel
		epoch := e.epoch
		var deviceIDs []int
		if epoch > 0 && rs.Sync {
			// Membership mode: report the registered device set on sync
			// rounds so the cloud can checkpoint the device→edge assignment.
			deviceIDs = make([]int, 0, len(e.devices))
			for id := range e.devices {
				deviceIDs = append(deviceIDs, id)
			}
			sort.Ints(deviceIDs)
		}
		e.mu.Unlock()

		cloud.SetDeadline(time.Now().Add(e.cfg.Timeout))
		done := RoundDone{EdgeID: e.cfg.EdgeID, Round: rs.Round, Trained: st.trained, Epoch: epoch, Devices: deviceIDs}
		var payload []float64
		if rs.Sync {
			done.Weight = curWeight
			if curWeight > 0 {
				payload = model
			}
		}
		if err := e.m.cloudLink.writeMsg(cloud, MsgRoundDone, done, payload); err != nil {
			countTimeout(e.m.timeouts, err)
			return fmt.Errorf("fednet: edge %d acking round %d: %w", e.cfg.EdgeID, rs.Round, err)
		}
		if rs.Sync {
			t, vec, err := e.m.cloudLink.readMsg(cloud, nil)
			if err != nil || t != MsgGlobalModel {
				return fmt.Errorf("fednet: edge %d waiting for global model: type %d, %v", e.cfg.EdgeID, t, err)
			}
			e.mu.Lock()
			e.edgeModel = vec
			e.cloudSeen = append([]float64(nil), vec...)
			e.weight = 0
			e.lastSync = rs.Round
			e.mu.Unlock()
		}
		if e.cfg.CheckpointDir != "" && rs.Round%e.cfg.CheckpointEvery == 0 {
			e.saveCheckpoint(rs.Round)
		}
	}
}

// heartbeat sends MsgLease frames to the cloud every interval on a
// dedicated connection until stop closes. A broken connection is
// redialled on the next beat; persistent failure simply lets the
// cloud's detector age this edge out, which is the correct outcome.
func (e *Edge) heartbeat(interval time.Duration, epoch int, stop <-chan struct{}) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	seq := 0
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", e.cfg.CloudAddr, interval)
			if err != nil {
				continue
			}
			conn = c
		}
		seq++
		conn.SetWriteDeadline(time.Now().Add(e.cfg.Timeout))
		l := Lease{EdgeID: e.cfg.EdgeID, Epoch: epoch, Seq: seq}
		if err := e.m.cloudLink.writeMsg(conn, MsgLease, l, nil); err != nil {
			conn.Close()
			conn = nil
		}
	}
}

// roundStats reports one round's outcome, including the degradation
// decisions (stragglers excluded, quorum met or missed).
type roundStats struct {
	trained    int
	excluded   int
	rejected   int // updates the validator refused
	weight     float64
	quorumMiss bool
}

// trainResult is one device's contribution to a round. moments (split
// off the reply payload when the request asked for them) are cached for
// a later handover, never aggregated.
type trainResult struct {
	id         int
	vec        []float64
	reply      TrainReply
	moments    []float64
	momentLens []int
	optSteps   int
	err        error
}

// runRound executes one Algorithm 1 time step: selection, parallel
// training on the selected devices with per-RPC retry, Eq. 6
// aggregation over the devices that answered before the round deadline.
// span is the edge's round trace span id ("" when tracing is off); each
// train RPC records a child span and forwards its id to the device.
func (e *Edge) runRound(round int, span string) roundStats {
	e.mu.Lock()
	e.curRound = round
	if e.cfg.DeviceLeaseRounds > 0 {
		for id, d := range e.devices {
			if d.mux == nil && round-d.lastSeen > e.cfg.DeviceLeaseRounds {
				d.conn.Close()
				delete(e.devices, id)
				e.m.leaseExpirations.Inc()
				e.cfg.Logf("edge %d: device %d lease expired in round %d (last seen round %d)",
					e.cfg.EdgeID, id, round, d.lastSeen)
			}
		}
	}
	candidates := make([]int, 0, len(e.devices))
	for id := range e.devices {
		candidates = append(candidates, id)
	}
	view := &edgeView{edge: e, round: round}
	model := e.edgeModel
	e.mu.Unlock()
	if len(candidates) == 0 {
		return roundStats{}
	}

	rng := tensor.Split(e.cfg.Seed, int64(round)*1_000_003+int64(e.cfg.EdgeID)*7+1)
	e.mu.Lock()
	sel := e.cfg.Strategy.Select(view, e.cfg.EdgeID, candidates, e.cfg.K, rng)
	e.mu.Unlock()
	if len(sel) > e.cfg.K {
		sel = sel[:e.cfg.K]
	}
	if len(sel) == 0 {
		return roundStats{}
	}

	// abort tells straggler goroutines the round has moved on, so a
	// retry loop never sends a stale-round request after the deadline.
	abort := make(chan struct{})
	defer close(abort)
	results := make(chan trainResult, len(sel))
	for _, id := range sel {
		go e.trainDevice(id, round, span, model, results, abort)
	}

	var st roundStats
	var rc robust.RejectCounts
	var vecs [][]float64
	var ws []float64
	pending := make(map[int]bool, len(sel))
	for _, id := range sel {
		pending[id] = true
	}
	deadline := time.NewTimer(e.cfg.RoundDeadline)
	defer deadline.Stop()
collect:
	for len(pending) > 0 {
		select {
		case res := <-results:
			delete(pending, res.id)
			if res.err != nil {
				e.cfg.Logf("edge %d: device %d failed round %d: %v", e.cfg.EdgeID, res.id, round, res.err)
				e.m.drops.Inc()
				continue
			}
			// Validation pass 1: a non-finite model is rejected on
			// receipt — it is neither cached for selection (a NaN
			// lastModel would poison the Eq. 12 scores) nor aggregated.
			if e.validator != nil && !robust.IsFinite(res.vec) {
				rc.NonFinite++
				e.m.rejNonFinite.Inc()
				e.cfg.Logf("edge %d: rejected non-finite update from device %d in round %d", e.cfg.EdgeID, res.id, round)
				continue
			}
			e.mu.Lock()
			if d, ok := e.devices[res.id]; ok {
				d.lastModel = res.vec
				d.statUtil = res.reply.Utility
				d.lastTrained = round
				d.lastSeen = round
				d.trainedHere = true
				if res.momentLens != nil {
					d.moments = res.moments
					d.momentLens = res.momentLens
					d.optSteps = res.optSteps
				}
			}
			e.mu.Unlock()
			vecs = append(vecs, res.vec)
			ws = append(ws, float64(res.reply.DataSize))
			st.trained++
		case <-deadline.C:
			break collect
		}
	}

	// Exclude stragglers past the deadline: close their connections (so
	// they do not leak in the device map) and leave them out of Eq. 6.
	// The device reconnects and resyncs via the registration ack.
	tr := e.cfg.Trace
	for id := range pending {
		st.excluded++
		e.m.stragglers.Inc()
		e.mu.Lock()
		if d, ok := e.devices[id]; ok {
			if d.mux != nil {
				// A virtual straggler stays registered: its shared
				// connection is healthy (the multiplexer trains its
				// devices sequentially, so only this round-trip is late)
				// and closing it would take the siblings down with it.
			} else {
				d.conn.Close()
				delete(e.devices, id)
			}
		}
		e.mu.Unlock()
		e.cfg.Logf("edge %d: excluded straggler device %d in round %d", e.cfg.EdgeID, id, round)
		if tr != nil {
			now := tr.Now()
			tr.Complete("straggler_excluded", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
				now, 0, span+".x"+strconv.Itoa(id), span,
				map[string]any{"round": round, "device": id})
		}
	}

	// Validation pass 2: per-round adaptive norm bound over the
	// surviving updates, measured against the pre-round edge model.
	if e.validator != nil && len(vecs) > 0 {
		kept, keptW, rc2 := e.validator.Filter(model, vecs, ws)
		rc.Norm += rc2.Norm
		e.m.rejNorm.Add(int64(rc2.Norm))
		vecs, ws = kept, keptW
		st.trained = len(vecs)
	}
	st.rejected = rc.Total()
	if st.rejected > 0 {
		e.cfg.Logf("edge %d: round %d rejected %d updates (%d nonfinite, %d norm)",
			e.cfg.EdgeID, round, st.rejected, rc.NonFinite, rc.Norm)
		if tr != nil {
			now := tr.Now()
			tr.Complete("robust_reject", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				now, 0, span+".rej", span,
				map[string]any{"round": round, "nonfinite": rc.NonFinite, "norm": rc.Norm})
		}
	}
	for _, w := range ws {
		st.weight += w
	}

	if st.trained < e.cfg.Quorum {
		// Quorum not met: fall back to carrying the previous edge model
		// forward — the responders' updates are discarded rather than
		// letting a tiny, biased sample steer Eq. 6, and the edge
		// reports zero weight so the cloud skips it at the next sync.
		st.quorumMiss = true
		st.weight = 0
		e.m.quorumMisses.Inc()
		e.cfg.Logf("edge %d: round %d quorum miss (%d/%d responders)", e.cfg.EdgeID, round, st.trained, e.cfg.Quorum)
		if tr != nil {
			now := tr.Now()
			tr.Complete("quorum_miss", "fednet", tracePidEdgeBase+e.cfg.EdgeID, 0,
				now, 0, span+".qm", span,
				map[string]any{"round": round, "responders": st.trained, "quorum": e.cfg.Quorum})
		}
		return st
	}
	if len(vecs) > 0 {
		fp := flight.BeginPhase("edge_agg")
		defer fp.End()
		agg := make([]float64, len(vecs[0]))
		aggStats := e.agg.AggregateInto(agg, vecs, ws, model)
		if aggStats.TrimmedValues > 0 {
			e.m.trimmedCoords.Add(int64(aggStats.TrimmedValues))
		}
		if aggStats.ClippedUpdates > 0 {
			e.m.clippedUpdates.Add(int64(aggStats.ClippedUpdates))
		}
		e.mu.Lock()
		e.edgeModel = agg
		e.mu.Unlock()
	}
	return st
}

// trainDevice runs one device's train RPC with capped-backoff retries.
// Any transport error closes that device's connection (a poisoned or
// half-dead stream cannot be reused) and the retry addresses whatever
// connection the device re-registered with.
func (e *Edge) trainDevice(id, round int, span string, model []float64, results chan<- trainResult, abort <-chan struct{}) {
	tr := e.cfg.Trace
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			e.m.retries.Inc()
			time.Sleep(retryBackoff(e.cfg.RetryBase, attempt, e.cfg.Seed,
				int64(e.cfg.EdgeID)*1_000_003+int64(id)*31+int64(round)))
		}
		select {
		case <-abort:
			results <- trainResult{id: id, err: lastErr}
			return
		default:
		}
		e.mu.Lock()
		d, ok := e.devices[id]
		var req TrainRequest
		var mx *edgeMux
		payload := model
		if ok {
			req = TrainRequest{
				Round:      round,
				DeviceID:   id,
				Moved:      !d.trainedHere && d.arrivedFrom >= 0 && d.arrivedFrom != e.cfg.EdgeID,
				ResetLocal: d.lastTrained < e.lastSync,
			}
			if span != "" {
				req.Span = trainRPCSpan(span, id)
			}
			mx = d.mux
			if mx == nil && e.cfg.LiveMigration {
				// Ask for the optimizer moments so a later handover can
				// ship them; a migrated device additionally gets its moved
				// state back (Resume), appended after the edge model.
				req.WantMoments = true
				if d.resume && !req.ResetLocal {
					req.Resume = true
					req.MomentLens = d.resumeLens
					req.OptSteps = d.resumeSteps
					payload = make([]float64, 0, len(model)+len(d.resumeMoments))
					payload = append(append(payload, model...), d.resumeMoments...)
				}
			}
		}
		e.mu.Unlock()
		if !ok {
			lastErr = fmt.Errorf("device %d not connected", id)
			continue
		}
		if mx != nil {
			// Multiplexed device: the round-trip rides the shared
			// connection; the demux reader matches the reply by device id.
			rpcStart := tr.Now()
			rpcTok := e.m.trainSpan.Begin()
			fp := flight.BeginPhase("comm")
			vec, reply, err := mx.roundTrip(id, req, model, e.cfg.Timeout)
			fp.End()
			if err == nil && (reply.Round != round || len(vec) == 0) {
				err = fmt.Errorf("mux train reply: round %d, %d values", reply.Round, len(vec))
			}
			if err != nil {
				countTimeout(e.m.timeouts, err)
				lastErr = err
				continue
			}
			rpcTok.End()
			if tr != nil {
				tr.Complete("train_rpc", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
					rpcStart, tr.Now().Sub(rpcStart), req.Span, span,
					map[string]any{"round": round, "device": id, "attempt": attempt, "mux": true})
			}
			results <- trainResult{id: id, vec: vec, reply: reply}
			return
		}
		conn := d.conn
		rpcStart := tr.Now()
		rpcTok := e.m.trainSpan.Begin()
		fp := flight.BeginPhase("comm")
		conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
		if err := e.m.deviceLink.writeMsg(conn, MsgTrainRequest, req, payload); err != nil {
			fp.End()
			countTimeout(e.m.timeouts, err)
			e.dropDevice(id, conn)
			lastErr = err
			continue
		}
		var reply TrainReply
		t, vec, err := e.m.deviceLink.readMsg(conn, &reply)
		fp.End()
		if err != nil || t != MsgTrainReply || reply.Round != round {
			countTimeout(e.m.timeouts, err)
			e.dropDevice(id, conn)
			lastErr = fmt.Errorf("train reply: type %d, round %d, %v", t, reply.Round, err)
			continue
		}
		res := trainResult{id: id, reply: reply}
		res.vec, res.moments, res.momentLens, res.optSteps = splitMoments(vec, reply.MomentLens, reply.OptSteps)
		if res.vec == nil {
			e.dropDevice(id, conn)
			lastErr = fmt.Errorf("train reply: malformed moment split (%d values)", len(vec))
			continue
		}
		conn.SetDeadline(time.Time{})
		rpcTok.End()
		if req.Resume {
			// The moved state reached the device: the one-shot resume is
			// spent regardless of what later rounds do.
			e.mu.Lock()
			if d2, ok2 := e.devices[id]; ok2 {
				d2.resume, d2.resumeMoments, d2.resumeLens, d2.resumeSteps = false, nil, nil, 0
			}
			e.mu.Unlock()
		}
		if tr != nil {
			tr.Complete("train_rpc", "fednet", tracePidEdgeBase+e.cfg.EdgeID, id,
				rpcStart, tr.Now().Sub(rpcStart), req.Span, span,
				map[string]any{"round": round, "device": id, "attempt": attempt})
		}
		results <- res
		return
	}
	results <- trainResult{id: id, err: lastErr}
}

// splitMoments separates a train-reply payload into the model part and
// the appended optimizer moments described by lens. A nil model return
// marks a malformed split (the claimed moments don't fit, or nothing
// would remain of the model).
func splitMoments(vec []float64, lens []int, steps int) (model, moments []float64, outLens []int, outSteps int) {
	if len(lens) == 0 {
		return vec, nil, nil, 0
	}
	n := 0
	for _, l := range lens {
		if l < 0 {
			return nil, nil, nil, 0
		}
		n += l
	}
	if n <= 0 || n >= len(vec) {
		return nil, nil, nil, 0
	}
	return vec[:len(vec)-n], vec[len(vec)-n:], lens, steps
}

func (e *Edge) shutdownDevices() {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Multiplexed devices share connections: shut each one down once.
	seen := map[net.Conn]bool{}
	for id, d := range e.devices {
		if !seen[d.conn] {
			seen[d.conn] = true
			d.conn.SetDeadline(time.Now().Add(e.cfg.Timeout))
			_ = e.m.deviceLink.writeMsg(d.conn, MsgShutdown, struct{}{}, nil)
			d.conn.Close()
		}
		delete(e.devices, id)
	}
	e.setVirtualGaugeLocked()
}

// edgeView adapts the edge's device cache to hfl.View so the simulation
// strategies (MIDDLE, OORT, …) run unchanged in the networked setting.
// The caller must hold e.mu.
type edgeView struct {
	edge  *Edge
	round int
}

func (v *edgeView) Step() int             { return v.round }
func (v *edgeView) CloudModel() []float64 { return v.edge.cloudSeen }
func (v *edgeView) EdgeModel(int) []float64 {
	return v.edge.edgeModel
}

func (v *edgeView) LocalModel(device int) []float64 {
	if d, ok := v.edge.devices[device]; ok && d.lastModel != nil {
		return d.lastModel
	}
	// Never-seen devices are treated as carrying the last global model
	// (Δw = 0), matching the post-sync state in the simulation.
	return v.edge.cloudSeen
}

func (v *edgeView) DataSize(device int) int {
	if d, ok := v.edge.devices[device]; ok {
		return d.dataSize
	}
	return 0
}

func (v *edgeView) StatUtility(device int) float64 {
	if d, ok := v.edge.devices[device]; ok {
		return d.statUtil
	}
	return math.NaN()
}

func (v *edgeView) LastTrained(device int) int {
	if d, ok := v.edge.devices[device]; ok {
		return d.lastTrained
	}
	return -1
}

// SelectionNormCap implements hfl.NormCapView so norm-aware strategies
// stop preferring devices whose cached update exceeds the cap.
func (v *edgeView) SelectionNormCap() float64 { return v.edge.cfg.SelectionNormCap }

var _ hfl.View = (*edgeView)(nil)
var _ hfl.NormCapView = (*edgeView)(nil)
