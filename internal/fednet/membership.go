package fednet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"middle/internal/obs/flight"
)

// MembershipConfig tunes the cloud's self-healing membership layer.
// With Enabled false (the default) none of it exists and the cloud's
// behaviour — and every frame it sends — is identical to the
// pre-membership protocol.
type MembershipConfig struct {
	// Enabled turns the layer on: the cloud keeps accepting edges for
	// the whole run, welcomes each with MsgEdgeWelcome (epoch + lease
	// interval + current global model), runs a heartbeat failure
	// detector and fences frames from stale incarnations.
	Enabled bool
	// LeaseInterval is the heartbeat period the cloud asks edges for and
	// the failure detector's tick (default 500 ms).
	LeaseInterval time.Duration
	// SuspectMisses is the number of consecutive lease intervals without
	// a heartbeat after which an edge is suspected (logged and counted,
	// default 2).
	SuspectMisses int
	// DeadMisses is the number of consecutive missed intervals after
	// which a suspected edge is declared dead: its connections close,
	// the membership epoch bumps and OnEdgeDown fires (default 4).
	DeadMisses int
	// DetectorTick, when set, replaces the wall-clock detector ticker —
	// tests drive the detector by hand so suspicion and death are a
	// deterministic function of delivered leases and ticks, independent
	// of scheduling.
	DetectorTick <-chan time.Time
}

// withDefaults fills the zero values. Enabled is left alone.
func (mc MembershipConfig) withDefaults() MembershipConfig {
	if mc.LeaseInterval <= 0 {
		mc.LeaseInterval = 500 * time.Millisecond
	}
	if mc.SuspectMisses < 1 {
		mc.SuspectMisses = 2
	}
	if mc.DeadMisses < 1 {
		mc.DeadMisses = 4
	}
	if mc.DeadMisses < mc.SuspectMisses {
		mc.DeadMisses = mc.SuspectMisses
	}
	return mc
}

// member is one admitted edge incarnation. A restarted edge gets a new
// member (and a new epoch); the old one stays dead forever, so every
// frame carrying its epoch is recognisably stale.
type member struct {
	id    int
	epoch int // incarnation epoch assigned at welcome
	conn  net.Conn

	// Detector state, guarded by membership.mu.
	beats     int  // leases received since the last detector tick
	misses    int  // consecutive tick intervals without a lease
	suspected bool // logged once per suspicion episode
	dead      bool
}

// membership is the cloud's dynamic edge-set bookkeeping: the epoch
// counter, live member table and the queue of edges waiting to be
// admitted at the next round boundary.
type membership struct {
	mu      sync.Mutex
	epoch   int
	members map[int]*member
	joinCh  chan *edgeConn // registrations from the accept loop
	conns   []net.Conn     // every accepted conn, closed at shutdown
}

func newMembership(startEpoch int) *membership {
	return &membership{
		epoch:   startEpoch,
		members: map[int]*member{},
		joinCh:  make(chan *edgeConn, 64),
	}
}

func (ms *membership) currentEpoch() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// alive returns the live members sorted by edge id, so the round loop
// iterates deterministically.
func (ms *membership) alive() []*member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]*member, 0, len(ms.members))
	for _, m := range ms.members {
		if !m.dead {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// track remembers a connection for shutdown cleanup.
func (ms *membership) track(conn net.Conn) {
	ms.mu.Lock()
	ms.conns = append(ms.conns, conn)
	ms.mu.Unlock()
}

// closeAll tears down every tracked connection (shutdown).
func (ms *membership) closeAll() {
	ms.mu.Lock()
	conns := ms.conns
	ms.conns = nil
	ms.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// recordLease credits a heartbeat to the (id, epoch) incarnation. It
// returns false when the lease is stale: no such member, a dead member,
// or an epoch that does not match the live incarnation — the caller
// must fence the sender.
func (ms *membership) recordLease(id, epoch int) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m := ms.members[id]
	if m == nil || m.dead || m.epoch != epoch {
		return false
	}
	m.beats++
	m.misses = 0
	m.suspected = false
	return true
}

// Epoch reports the current membership epoch (0 when the membership
// layer is disabled or the run has not started).
func (c *Cloud) Epoch() int {
	if c.ms == nil {
		return c.startEpoch
	}
	return c.ms.currentEpoch()
}

// Assignment returns a copy of the device→edge assignment the cloud
// has learned from sync-round reports (membership mode only; empty
// otherwise). Meaningful once Run has finished or between rounds.
func (c *Cloud) Assignment() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int, len(c.assignment))
	for d, e := range c.assignment {
		out[d] = e
	}
	return out
}

// runMembership is Run with the self-healing membership layer: a
// persistent accept loop admits edges for the whole run, heartbeat
// leases feed a miss-count failure detector, dead edges are excised at
// a bumped epoch (their devices re-homed by OnEdgeDown) and restarted
// edges rejoin at the next round boundary with a catch-up sync.
func (c *Cloud) runMembership() error {
	defer c.ln.Close()
	ms := newMembership(c.startEpoch)
	c.ms = ms
	defer ms.closeAll()
	go c.acceptMembership(ms)

	// Admit the configured initial quorum before training starts,
	// mirroring the legacy fixed-set handshake.
	pending := make([]*edgeConn, 0, c.cfg.Edges)
	for len(pending) < c.cfg.Edges {
		select {
		case e := <-ms.joinCh:
			pending = append(pending, e)
		case <-c.stop:
			return nil
		}
	}
	for _, e := range pending {
		if err := c.welcome(ms, e, c.startRound, false); err != nil {
			return fmt.Errorf("fednet: cloud welcoming edge %d: %w", e.id, err)
		}
	}

	detStop := make(chan struct{})
	defer close(detStop)
	go c.runDetector(ms, detStop)

	defer func() {
		for _, m := range ms.alive() {
			m.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			_ = c.m.link.writeMsg(m.conn, MsgShutdown, struct{}{}, nil)
			m.conn.Close()
		}
	}()

	minEdges := c.cfg.MinEdges
	if minEdges < 1 {
		// Membership exists to survive edge loss; a lone survivor keeps
		// the run alive unless the caller asked for a larger quorum.
		minEdges = 1
	}

	syncCount := 0
	var prevRound time.Time
	for r := c.startRound + 1; r <= c.cfg.Rounds; r++ {
		c.paceRound(&prevRound)
		if c.stopping() {
			c.cfg.Logf("cloud: graceful stop after round %d", r-1)
			c.checkpointFinal(r - 1)
			return nil
		}
		// Admit any edges that (re)joined since the last boundary.
		for admitted := false; !admitted; {
			select {
			case e := <-ms.joinCh:
				if err := c.welcome(ms, e, r-1, true); err != nil {
					c.cfg.Logf("cloud: failed to welcome rejoining edge %d: %v", e.id, err)
				}
			default:
				admitted = true
			}
		}
		members := ms.alive()
		if len(members) < minEdges {
			return fmt.Errorf("fednet: only %d edges remain in round %d (min %d)", len(members), r, minEdges)
		}

		roundTok := c.m.roundSpan.Begin()
		tr := c.cfg.Trace
		traceStart := tr.Now()
		span := ""
		if tr != nil {
			span = cloudRoundSpan(r)
		}
		sync := r%c.cfg.CloudInterval == 0
		alive := members[:0]
		for _, m := range members {
			m.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			rs := RoundStart{Round: r, Sync: sync, Span: span, Epoch: m.epoch}
			if err := c.m.link.writeMsg(m.conn, MsgRoundStart, rs, nil); err != nil {
				countTimeout(c.m.timeouts, err)
				c.memberDead(ms, m, r, err)
				continue
			}
			alive = append(alive, m)
		}
		members = alive
		var vecs [][]float64
		var weights []float64
		var sagg *shardAgg
		if sync {
			c.mu.Lock()
			c.edgeWeights = map[int]float64{}
			c.mu.Unlock()
			if c.cfg.Shards > 1 {
				sagg = newShardAgg(c.cfg.Shards, len(c.global))
			}
		}
		alive = members[:0]
		for _, m := range members {
			m.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			var done RoundDone
			t, vec, err := c.m.link.readMsg(m.conn, &done)
			if err != nil || t != MsgRoundDone {
				countTimeout(c.m.timeouts, err)
				if err == nil {
					err = fmt.Errorf("unexpected message type %d", t)
				}
				c.memberDead(ms, m, r, err)
				continue
			}
			if done.Epoch != m.epoch {
				// A zombie frame from a fenced incarnation (or an edge that
				// skipped its welcome): reject it and excise the sender.
				c.m.staleFrames.Inc()
				c.memberDead(ms, m, r, fmt.Errorf("stale frame epoch %d (incarnation %d)", done.Epoch, m.epoch))
				continue
			}
			if done.Round != r {
				return fmt.Errorf("fednet: edge %d acked round %d during round %d", m.id, done.Round, r)
			}
			alive = append(alive, m)
			if sync {
				c.mu.Lock()
				c.edgeWeights[m.id] = done.Weight
				for _, d := range done.Devices {
					c.assignment[d] = m.id
				}
				c.mu.Unlock()
			}
			if sync && done.Weight > 0 && len(vec) > 0 {
				if sagg != nil {
					if err := sagg.add(m.id, vec, done.Weight); err != nil {
						return err
					}
				} else {
					vecs = append(vecs, vec)
					weights = append(weights, done.Weight)
				}
			}
		}
		members = alive
		if len(members) < minEdges {
			return fmt.Errorf("fednet: only %d edges remain in round %d (min %d)", len(members), r, minEdges)
		}
		if sync {
			syncStart := tr.Now()
			fp := flight.BeginPhase("cloud_sync")
			synced := c.applySync(r, vecs, weights, sagg)
			for _, m := range members {
				m.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
				if err := c.m.link.writeMsg(m.conn, MsgGlobalModel, struct{}{}, c.GlobalModel()); err != nil {
					countTimeout(c.m.timeouts, err)
					c.memberDead(ms, m, r, err)
				}
			}
			c.m.syncs.Inc()
			syncCount++
			if c.cfg.CheckpointDir != "" && syncCount%c.cfg.CheckpointEvery == 0 {
				c.checkpointSync(r, sagg)
			}
			fp.End()
			if tr != nil {
				tr.Complete("cloud_sync", "fednet", tracePidCloud, 0,
					syncStart, tr.Now().Sub(syncStart), span+".sync", span,
					map[string]any{"round": r, "edges": synced})
			}
			c.cfg.Logf("cloud: round %d synced %d edge models", r, synced)
		}
		c.m.rounds.Inc()
		roundTok.End()
		if tr != nil {
			tr.Complete("cloud_round", "fednet", tracePidCloud, 0,
				traceStart, tr.Now().Sub(traceStart), span, "",
				map[string]any{"round": r, "sync": sync, "edges": len(members)})
		}
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(r)
		}
	}
	return nil
}

// acceptMembership accepts connections for the whole run, dispatching
// each on its first frame: MsgRegisterEdge queues a join for the next
// round boundary, MsgLease turns the connection into a heartbeat
// stream. It exits when the listener closes.
func (c *Cloud) acceptMembership(ms *membership) {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		ms.track(conn)
		go func(conn net.Conn) {
			conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			var first struct {
				EdgeID int `json:"edge_id"`
				Epoch  int `json:"epoch"`
				Seq    int `json:"seq"`
			}
			t, _, err := c.m.link.readMsg(conn, &first)
			switch {
			case err != nil:
				conn.Close()
			case t == MsgRegisterEdge:
				select {
				case ms.joinCh <- &edgeConn{id: first.EdgeID, conn: conn}:
				case <-c.stop:
					conn.Close()
				}
			case t == MsgLease:
				c.leaseStream(ms, conn, first.EdgeID, first.Epoch)
			default:
				c.cfg.Logf("cloud: rejected connection opening with message type %d", t)
				conn.Close()
			}
		}(conn)
	}
}

// leaseStream consumes heartbeats from one edge incarnation. A lease
// whose epoch does not match the live incarnation is a stale frame from
// a fenced (dead or superseded) edge: it is counted, the connection is
// closed and the zombie learns it is no longer a member.
func (c *Cloud) leaseStream(ms *membership, conn net.Conn, id, epoch int) {
	for {
		if !ms.recordLease(id, epoch) {
			c.m.staleFrames.Inc()
			c.cfg.Logf("cloud: rejected stale lease from edge %d (epoch %d)", id, epoch)
			conn.Close()
			return
		}
		// Block until the next beat; the detector tracks freshness, the
		// stream only delivers. A broken conn simply ends the stream —
		// missed beats then age the member out.
		conn.SetDeadline(time.Time{})
		var l Lease
		t, _, err := c.m.link.readMsg(conn, &l)
		if err != nil || t != MsgLease {
			conn.Close()
			return
		}
		id, epoch = l.EdgeID, l.Epoch
	}
}

// welcome admits one edge incarnation: bumps the epoch, installs the
// member and sends MsgEdgeWelcome carrying the current global model (a
// rejoining edge adopts it as its catch-up sync).
func (c *Cloud) welcome(ms *membership, e *edgeConn, lastRound int, rejoin bool) error {
	ms.mu.Lock()
	if old := ms.members[e.id]; old != nil && !old.dead {
		// A new incarnation supersedes a live member (restart beat the
		// detector): fence the old one so its frames are rejected.
		old.dead = true
		old.conn.Close()
		ms.epoch++
		c.cfg.Logf("cloud: edge %d superseded by new incarnation; fencing epoch %d", e.id, old.epoch)
	}
	ms.epoch++
	m := &member{id: e.id, epoch: ms.epoch, conn: e.conn}
	ms.members[e.id] = m
	epoch := ms.epoch
	ms.mu.Unlock()
	c.m.epochGauge.Set(float64(epoch))

	w := EdgeWelcome{
		Epoch:       epoch,
		Round:       lastRound,
		LastSync:    c.lastSync,
		LeaseMillis: int(c.cfg.Membership.LeaseInterval / time.Millisecond),
		Rejoin:      rejoin,
	}
	e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	if err := c.m.link.writeMsg(e.conn, MsgEdgeWelcome, w, c.GlobalModel()); err != nil {
		ms.mu.Lock()
		m.dead = true
		ms.mu.Unlock()
		e.conn.Close()
		return err
	}
	if rejoin {
		c.m.rejoins.Inc()
		c.cfg.Logf("cloud: edge %d rejoined at epoch %d (catch-up at round %d)", e.id, epoch, lastRound)
		if tr := c.cfg.Trace; tr != nil {
			now := tr.Now()
			tr.Complete("edge_rejoin", "fednet", tracePidCloud, e.id,
				now, 0, fmt.Sprintf("c.rejoin.e%d.ep%d", e.id, epoch), "",
				map[string]any{"edge": e.id, "epoch": epoch})
		}
		if c.cfg.OnEdgeUp != nil {
			go c.cfg.OnEdgeUp(e.id)
		}
	} else {
		c.cfg.Logf("cloud: edge %d joined at epoch %d", e.id, epoch)
	}
	return nil
}

// memberDead excises one member: exactly once per incarnation it closes
// the round connection, bumps the epoch, records the failover and fires
// OnEdgeDown so the deployment re-homes the dead edge's devices.
func (c *Cloud) memberDead(ms *membership, m *member, round int, cause error) {
	ms.mu.Lock()
	if m.dead {
		ms.mu.Unlock()
		return
	}
	m.dead = true
	ms.epoch++
	epoch := ms.epoch
	ms.mu.Unlock()
	m.conn.Close()
	c.m.edgeDrops.Inc()
	c.m.failovers.Inc()
	c.m.epochGauge.Set(float64(epoch))
	c.cfg.Logf("cloud: edge %d declared dead in round %d (%v); epoch now %d", m.id, round, cause, epoch)
	if tr := c.cfg.Trace; tr != nil {
		now := tr.Now()
		tr.Complete("edge_failover", "fednet", tracePidCloud, m.id,
			now, 0, fmt.Sprintf("c.failover.e%d.ep%d", m.id, m.epoch), "",
			map[string]any{"edge": m.id, "incarnation": m.epoch, "epoch": epoch, "round": round})
	}
	if c.cfg.OnEdgeDown != nil {
		go c.cfg.OnEdgeDown(m.id)
	}
}

// runDetector ages members out on missed leases: every tick without a
// heartbeat increments a member's miss count; SuspectMisses marks it
// suspected, DeadMisses declares it dead. Timing is wall-clock by
// default and fully caller-driven through MembershipConfig.DetectorTick
// in tests.
func (c *Cloud) runDetector(ms *membership, stop <-chan struct{}) {
	tick := c.cfg.Membership.DetectorTick
	if tick == nil {
		t := time.NewTicker(c.cfg.Membership.LeaseInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			return
		case <-tick:
			c.detectOnce(ms)
		}
	}
}

// detectOnce runs one detector sweep. Split out for tests.
func (c *Cloud) detectOnce(ms *membership) {
	type verdict struct {
		m       *member
		misses  int
		suspect bool
		dead    bool
	}
	var verdicts []verdict
	ms.mu.Lock()
	for _, m := range ms.members {
		if m.dead {
			continue
		}
		if m.beats > 0 {
			m.beats = 0
			continue
		}
		m.misses++
		c.m.leaseMisses.Inc()
		v := verdict{m: m, misses: m.misses}
		if m.misses >= c.cfg.Membership.DeadMisses {
			v.dead = true
		} else if m.misses >= c.cfg.Membership.SuspectMisses && !m.suspected {
			m.suspected = true
			v.suspect = true
		}
		if v.dead || v.suspect {
			verdicts = append(verdicts, v)
		}
	}
	ms.mu.Unlock()
	for _, v := range verdicts {
		if v.dead {
			c.memberDead(ms, v.m, 0, fmt.Errorf("missed %d lease intervals", v.misses))
		} else if v.suspect {
			c.cfg.Logf("cloud: edge %d suspected (%d missed lease intervals)", v.m.id, v.misses)
		}
	}
}
