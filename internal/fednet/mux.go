package fednet

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"middle/internal/data"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/optim"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// Device multiplexing is the client half of the million-device
// scale-out: instead of one goroutine, one TCP connection and one
// network instance per device, a DeviceMux serves N virtual devices
// from one client process — one connection and one reader goroutine per
// edge it is attached to, one shared model instance trained under a
// lock. Virtual devices keep their own carried local models, shard
// indices and deterministic seed streams, so a virtual device trains
// bit-identically to a dedicated Device given the same start model.
//
// The edge side is edgeMux: a write lock serialising request frames
// onto the shared connection plus a single demultiplexing reader that
// dispatches train replies (by TrainRequest.DeviceID), late
// registrations and leave notices. Unlike dedicated devices, a mux
// client does not auto-reconnect: a transport failure deregisters all
// its virtual devices on that edge until mobility re-attaches them.

// --- edge side --------------------------------------------------------------

// edgeMux is the edge-side endpoint of one multiplexed connection.
type edgeMux struct {
	edge *Edge
	conn net.Conn
	wmu  sync.Mutex // serialises frames onto the shared connection

	mu      sync.Mutex
	closed  bool
	waiters map[int]chan muxTrainResult // in-flight round-trips by device

	// ids is the set of virtual devices registered through this
	// connection. Guarded by edge.mu (not mu): registration and
	// selection bookkeeping already run under it.
	ids map[int]bool
}

// muxTrainResult is one delivered (or failed) multiplexed round-trip.
type muxTrainResult struct {
	vec   []float64
	reply TrainReply
	err   error
}

// roundTrip sends one train request over the shared connection and
// waits for the demux reader to deliver the matching reply.
func (mx *edgeMux) roundTrip(id int, req TrainRequest, model []float64, timeout time.Duration) ([]float64, TrainReply, error) {
	ch := make(chan muxTrainResult, 1)
	mx.mu.Lock()
	if mx.closed {
		mx.mu.Unlock()
		return nil, TrainReply{}, fmt.Errorf("mux connection closed")
	}
	if _, busy := mx.waiters[id]; busy {
		mx.mu.Unlock()
		return nil, TrainReply{}, fmt.Errorf("device %d already has a mux request in flight", id)
	}
	mx.waiters[id] = ch
	mx.mu.Unlock()

	mx.wmu.Lock()
	mx.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := mx.edge.m.deviceLink.writeMsg(mx.conn, MsgTrainRequest, req, model)
	mx.conn.SetWriteDeadline(time.Time{})
	mx.wmu.Unlock()
	if err != nil {
		mx.unwait(id)
		mx.edge.dropMux(mx, err)
		return nil, TrainReply{}, err
	}
	select {
	case res := <-ch:
		return res.vec, res.reply, res.err
	case <-time.After(timeout):
		// Only this round-trip is late; the stream itself may be healthy
		// (the client trains its virtual devices sequentially), so the
		// connection survives and a stale delivery is simply dropped.
		mx.unwait(id)
		return nil, TrainReply{}, fmt.Errorf("device %d mux round-trip timed out", id)
	}
}

func (mx *edgeMux) unwait(id int) {
	mx.mu.Lock()
	delete(mx.waiters, id)
	mx.mu.Unlock()
}

// serve is the demultiplexing reader: one goroutine per mux connection.
func (mx *edgeMux) serve() {
	e := mx.edge
	for {
		var h struct {
			DeviceID int              `json:"device_id"`
			Round    int              `json:"round"`
			DataSize int              `json:"data_size"`
			Utility  float64          `json:"utility"`
			Devices  []RegisterDevice `json:"devices"`
		}
		t, vec, err := e.m.deviceLink.readMsg(mx.conn, &h)
		if err != nil {
			e.dropMux(mx, err)
			return
		}
		switch t {
		case MsgTrainReply:
			mx.mu.Lock()
			ch := mx.waiters[h.DeviceID]
			delete(mx.waiters, h.DeviceID)
			mx.mu.Unlock()
			if ch != nil {
				ch <- muxTrainResult{vec: vec, reply: TrainReply{
					DeviceID: h.DeviceID, Round: h.Round, DataSize: h.DataSize, Utility: h.Utility,
				}}
			}
		case MsgRegisterMux:
			// A virtual device migrated onto this edge over the existing
			// connection; ack so the client's Connect can return.
			e.registerMuxDevices(mx, h.Devices)
			e.mu.Lock()
			ack := RegisterAck{EdgeID: e.cfg.EdgeID, Round: e.curRound, LastSync: e.lastSync}
			model := e.edgeModel
			e.mu.Unlock()
			mx.wmu.Lock()
			werr := e.m.deviceLink.writeMsg(mx.conn, MsgRegisterAck, ack, model)
			mx.wmu.Unlock()
			if werr != nil {
				e.dropMux(mx, werr)
				return
			}
		case MsgDeviceLeave:
			e.removeMuxDevice(mx, h.DeviceID)
		case MsgShutdown:
			e.dropMux(mx, nil)
			return
		default:
			e.dropMux(mx, fmt.Errorf("unexpected message type %d on mux connection", t))
			return
		}
	}
}

// acceptMux completes the handshake of a new multiplexed connection:
// register the announced batch, ack once with the current edge model,
// then hand the connection to its demux reader.
func (e *Edge) acceptMux(conn net.Conn, devices []RegisterDevice) {
	if len(devices) == 0 {
		conn.Close()
		return
	}
	mx := &edgeMux{
		edge:    e,
		conn:    conn,
		waiters: map[int]chan muxTrainResult{},
		ids:     map[int]bool{},
	}
	e.registerMuxDevices(mx, devices)
	e.mu.Lock()
	ack := RegisterAck{EdgeID: e.cfg.EdgeID, Round: e.curRound, LastSync: e.lastSync}
	model := e.edgeModel
	e.mu.Unlock()
	if err := e.m.deviceLink.writeMsg(conn, MsgRegisterAck, ack, model); err != nil {
		e.dropMux(mx, err)
		return
	}
	conn.SetDeadline(time.Time{})
	e.cfg.Logf("edge %d: mux connection joined with %d virtual devices", e.cfg.EdgeID, len(devices))
	go mx.serve()
}

// registerMuxDevices installs (or refreshes) a batch of virtual devices
// attached through mx, displacing any previous registration of the same
// device id.
func (e *Edge) registerMuxDevices(mx *edgeMux, devices []RegisterDevice) {
	e.mu.Lock()
	for _, rd := range devices {
		if old, ok := e.devices[rd.DeviceID]; ok {
			if old.mux == nil {
				old.conn.Close()
				e.m.reconnects.Inc()
			} else if old.mux != mx {
				delete(old.mux.ids, rd.DeviceID)
			}
		}
		d := &deviceState{
			conn:        mx.conn,
			mux:         mx,
			id:          rd.DeviceID,
			dataSize:    rd.DataSize,
			arrivedFrom: rd.PrevEdge,
			statUtil:    math.NaN(),
			lastTrained: -1,
		}
		e.devices[rd.DeviceID] = d
		// Warm-merge a pending handover: model and timeline only — mux
		// clients share one optimizer across virtual devices, so moment
		// resume is meaningless on this path (consumeHandoverLocked skips
		// it for mux-attached states).
		e.consumeHandoverLocked(d)
		mx.ids[rd.DeviceID] = true
		e.cfg.Logf("edge %d: virtual device %d joined (from edge %d)", e.cfg.EdgeID, rd.DeviceID, rd.PrevEdge)
	}
	e.setVirtualGaugeLocked()
	e.mu.Unlock()
}

// removeMuxDevice forgets one virtual device (it moved to another edge)
// while keeping the shared connection for its remaining siblings.
func (e *Edge) removeMuxDevice(mx *edgeMux, id int) {
	e.mu.Lock()
	if d, ok := e.devices[id]; ok && d.mux == mx {
		delete(e.devices, id)
	}
	delete(mx.ids, id)
	e.setVirtualGaugeLocked()
	e.mu.Unlock()
}

// dropMux tears one multiplexed connection down: every virtual device
// it carried is deregistered and in-flight round-trips fail fast.
func (e *Edge) dropMux(mx *edgeMux, err error) {
	mx.mu.Lock()
	already := mx.closed
	mx.closed = true
	waiters := mx.waiters
	mx.waiters = map[int]chan muxTrainResult{}
	mx.mu.Unlock()
	for _, ch := range waiters {
		ch <- muxTrainResult{err: fmt.Errorf("mux connection lost")}
	}
	if already {
		return
	}
	mx.conn.Close()
	e.mu.Lock()
	for id := range mx.ids {
		if d, ok := e.devices[id]; ok && d.mux == mx {
			delete(e.devices, id)
		}
	}
	mx.ids = map[int]bool{}
	e.setVirtualGaugeLocked()
	e.mu.Unlock()
	if err != nil {
		e.cfg.Logf("edge %d: mux connection failed: %v", e.cfg.EdgeID, err)
	}
}

// setVirtualGaugeLocked refreshes fednet_virtual_devices. e.mu held.
func (e *Edge) setVirtualGaugeLocked() {
	n := 0
	for _, d := range e.devices {
		if d.mux != nil {
			n++
		}
	}
	e.m.virtualDevices.Set(float64(n))
}

// --- client side ------------------------------------------------------------

// MuxDevice describes one virtual device hosted by a DeviceMux.
type MuxDevice struct {
	DeviceID int
	// Indices is the device's local shard within the shared dataset.
	Indices []int
}

// DeviceMuxConfig configures a device multiplexer.
type DeviceMuxConfig struct {
	// Devices are the virtual devices this client serves.
	Devices []MuxDevice
	// Dataset is shared by every virtual device (each sees only its own
	// Indices window).
	Dataset *data.Dataset
	// Factory builds the single shared network instance.
	Factory func(rng *tensor.RNG) *nn.Network
	// Optimizer is shared across virtual devices; it is Reset before
	// every training round, exactly like a dedicated device's.
	Optimizer optim.Optimizer
	// LocalSteps (I) and BatchSize per training round.
	LocalSteps int
	BatchSize  int
	// Mode is the on-device aggregation behaviour (shared).
	Mode AggMode
	// Seed derives each virtual device's batch-sampling randomness; the
	// stream depends only on (Seed, round, deviceID), so virtual and
	// dedicated devices sample identical batches.
	Seed int64
	// Timeout bounds network operations (default 30 s).
	Timeout time.Duration
	// Faults, when set, injects faults on the device→edge links.
	Faults *FaultInjector
	// Obs, when set, receives per-message byte/latency metrics.
	Obs *obs.Registry
}

// DeviceMux serves many virtual devices from one client: one connection
// and one serve goroutine per attached edge, one shared model instance.
// Training requests arriving on any connection are handled sequentially
// per connection and serialised across connections by trainMu.
type DeviceMux struct {
	cfg DeviceMuxConfig
	net *nn.Network
	m   deviceMetrics

	trainMu sync.Mutex // one shared model instance: training serialises

	mu     sync.Mutex
	closed bool
	virts  map[int]*virtualDevice
	conns  map[int]*muxClientConn // by edge id
}

// virtualDevice is one device's private state inside a DeviceMux.
type virtualDevice struct {
	indices  []int
	edge     int // currently attached edge (−1 when detached)
	prevEdge int // edge it last trained under (−1 if none)
	local    []float64
	rounds   int
}

// muxClientConn is the client end of one edge attachment.
type muxClientConn struct {
	edgeID int
	conn   net.Conn
	wmu    sync.Mutex
	acks   chan RegisterAck
	done   chan struct{}
}

// NewDeviceMux builds a device multiplexer (not yet attached anywhere;
// use Connect per virtual device).
func NewDeviceMux(cfg DeviceMuxConfig) (*DeviceMux, error) {
	if cfg.Dataset == nil || len(cfg.Devices) == 0 || cfg.Factory == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("fednet: incomplete device mux config (%d devices)", len(cfg.Devices))
	}
	if cfg.LocalSteps < 1 {
		cfg.LocalSteps = 10
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Mode == "" {
		cfg.Mode = AggEdge
	}
	mx := &DeviceMux{
		cfg:   cfg,
		net:   cfg.Factory(tensor.Split(cfg.Seed, 999)),
		m:     newDeviceMetrics(cfg.Obs),
		virts: map[int]*virtualDevice{},
		conns: map[int]*muxClientConn{},
	}
	for _, d := range cfg.Devices {
		if len(d.Indices) == 0 {
			return nil, fmt.Errorf("fednet: virtual device %d has no data", d.DeviceID)
		}
		mx.virts[d.DeviceID] = &virtualDevice{indices: d.Indices, edge: -1, prevEdge: -1}
	}
	return mx, nil
}

// Connect attaches one virtual device to the edge at addr. A leave
// notice is sent to the device's previous edge (the "move"), and the
// multiplexer dials the new edge only if it has no connection there yet
// — that sharing is the point: N virtual devices per edge cost one
// socket and one goroutine, not N.
func (mx *DeviceMux) Connect(deviceID, edgeID int, addr string) error {
	mx.mu.Lock()
	if mx.closed {
		mx.mu.Unlock()
		return fmt.Errorf("fednet: device mux is shut down")
	}
	v := mx.virts[deviceID]
	if v == nil {
		mx.mu.Unlock()
		return fmt.Errorf("fednet: unknown virtual device %d", deviceID)
	}
	if v.edge == edgeID {
		mx.mu.Unlock()
		return nil
	}
	old := mx.conns[v.edge]
	cc := mx.conns[edgeID]
	reg := RegisterDevice{DeviceID: deviceID, DataSize: len(v.indices), PrevEdge: v.prevEdge}
	mx.mu.Unlock()

	if old != nil {
		old.wmu.Lock()
		old.conn.SetWriteDeadline(time.Now().Add(mx.cfg.Timeout))
		err := mx.m.link.writeMsg(old.conn, MsgDeviceLeave, DeviceLeave{DeviceID: deviceID}, nil)
		old.conn.SetWriteDeadline(time.Time{})
		old.wmu.Unlock()
		if err != nil {
			mx.dropConn(old)
		}
	}
	if cc == nil {
		var err error
		cc, err = mx.dial(edgeID, addr, reg)
		if err != nil {
			return err
		}
	} else {
		cc.wmu.Lock()
		cc.conn.SetWriteDeadline(time.Now().Add(mx.cfg.Timeout))
		err := mx.m.link.writeMsg(cc.conn, MsgRegisterMux, RegisterMux{Devices: []RegisterDevice{reg}}, nil)
		cc.conn.SetWriteDeadline(time.Time{})
		cc.wmu.Unlock()
		if err != nil {
			mx.dropConn(cc)
			return fmt.Errorf("fednet: virtual device %d registering at edge %d: %w", deviceID, edgeID, err)
		}
		// Wait for the edge's ack (delivered by the serve loop) so the
		// device is selectable before the move is considered complete.
		select {
		case <-cc.acks:
		case <-cc.done:
			return fmt.Errorf("fednet: edge %d connection lost during registration", edgeID)
		case <-time.After(mx.cfg.Timeout):
			return fmt.Errorf("fednet: edge %d registration ack timed out", edgeID)
		}
	}
	mx.mu.Lock()
	v.edge = edgeID
	mx.mu.Unlock()
	return nil
}

// dial opens the multiplexer's connection to a new edge, registering
// the first virtual device as part of the handshake.
func (mx *DeviceMux) dial(edgeID int, addr string, first RegisterDevice) (*muxClientConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: mux dialing edge %d: %w", edgeID, err)
	}
	conn = mx.cfg.Faults.WrapDeviceLink(conn, first.DeviceID)
	conn.SetDeadline(time.Now().Add(mx.cfg.Timeout))
	if err := mx.m.link.writeMsg(conn, MsgRegisterMux, RegisterMux{Devices: []RegisterDevice{first}}, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fednet: mux registering at edge %d: %w", edgeID, err)
	}
	var ack RegisterAck
	t, _, err := mx.m.link.readMsg(conn, &ack)
	if err != nil || t != MsgRegisterAck {
		conn.Close()
		return nil, fmt.Errorf("fednet: mux awaiting register ack from edge %d: type %d, %v", edgeID, t, err)
	}
	conn.SetDeadline(time.Time{})
	cc := &muxClientConn{
		edgeID: edgeID, conn: conn,
		acks: make(chan RegisterAck, 8),
		done: make(chan struct{}),
	}
	mx.mu.Lock()
	mx.conns[edgeID] = cc
	mx.mu.Unlock()
	go mx.serveConn(cc)
	return cc, nil
}

// serveConn handles one edge connection: train requests addressed to
// any of the multiplexer's virtual devices, plus registration acks.
func (mx *DeviceMux) serveConn(cc *muxClientConn) {
	defer close(cc.done)
	defer cc.conn.Close()
	for {
		var h struct {
			TrainRequest
			EdgeID   int `json:"edge_id"`
			LastSync int `json:"last_sync"`
		}
		t, edgeModel, err := mx.m.link.readMsg(cc.conn, &h)
		if err != nil {
			mx.dropConn(cc)
			return
		}
		switch t {
		case MsgShutdown:
			mx.dropConn(cc)
			return
		case MsgRegisterAck:
			select {
			case cc.acks <- RegisterAck{EdgeID: h.EdgeID, Round: h.Round, LastSync: h.LastSync}:
			default:
			}
			continue
		case MsgTrainRequest:
		default:
			mx.dropConn(cc)
			return
		}
		trainTok := mx.m.trainSpan.Begin()
		vec, reply, terr := mx.train(h.TrainRequest, edgeModel, cc.edgeID)
		trainTok.End()
		if terr != nil {
			// Inconsistent frame state (moved-blend length mismatch):
			// treat like a corrupt stream — drop the connection so every
			// rider resyncs through re-registration instead of training
			// from a stale model.
			mx.m.link.corrupt.Inc()
			mx.dropConn(cc)
			return
		}
		cc.wmu.Lock()
		cc.conn.SetWriteDeadline(time.Now().Add(mx.cfg.Timeout))
		werr := mx.m.link.writeMsg(cc.conn, MsgTrainReply, reply, vec)
		cc.conn.SetWriteDeadline(time.Time{})
		cc.wmu.Unlock()
		if werr != nil {
			mx.dropConn(cc)
			return
		}
	}
}

// train executes one virtual device's local round, mirroring
// Device.train but against shared compute state. A non-nil error
// rejects the request's state as corrupt (teardown + resync).
func (mx *DeviceMux) train(req TrainRequest, edgeModel []float64, edgeID int) ([]float64, TrainReply, error) {
	mx.mu.Lock()
	v := mx.virts[req.DeviceID]
	if v == nil {
		mx.mu.Unlock()
		// Unknown virtual device (a move raced the request): an empty
		// reply lets the edge's retry loop resolve it without stalling.
		return nil, TrainReply{DeviceID: req.DeviceID, Round: req.Round}, nil
	}
	if req.ResetLocal {
		v.local = nil
	}
	if req.Moved && v.local != nil && len(v.local) != len(edgeModel) {
		mx.mu.Unlock()
		return nil, TrainReply{}, fmt.Errorf("fednet: virtual device %d: moved-blend length mismatch (local %d, edge %d)",
			req.DeviceID, len(v.local), len(edgeModel))
	}
	start := append([]float64(nil), edgeModel...)
	if req.Moved && v.local != nil {
		switch mx.cfg.Mode {
		case AggEq9:
			start, _ = simil.OnDeviceAggregate(edgeModel, v.local)
		case AggHalf:
			start = simil.Blend(edgeModel, v.local, 0.5)
		case AggKeep:
			start = append([]float64(nil), v.local...)
		}
	}
	indices := v.indices
	mx.mu.Unlock()

	mx.trainMu.Lock()
	vec, util := runLocalSGD(mx.net, mx.cfg.Optimizer, mx.cfg.Dataset, indices,
		mx.cfg.LocalSteps, mx.cfg.BatchSize, mx.cfg.Seed, req.DeviceID, req.Round,
		start, mx.m.nonfinite)
	mx.trainMu.Unlock()

	mx.mu.Lock()
	v.local = append([]float64(nil), vec...)
	v.prevEdge = edgeID
	v.rounds++
	mx.mu.Unlock()
	return vec, TrainReply{
		DeviceID: req.DeviceID,
		Round:    req.Round,
		DataSize: len(indices),
		Utility:  util,
	}, nil
}

// dropConn detaches every virtual device riding cc and forgets the
// connection; mobility re-attaches them on their next move.
func (mx *DeviceMux) dropConn(cc *muxClientConn) {
	cc.conn.Close()
	mx.mu.Lock()
	if mx.conns[cc.edgeID] == cc {
		delete(mx.conns, cc.edgeID)
		for _, v := range mx.virts {
			if v.edge == cc.edgeID {
				v.edge = -1
			}
		}
	}
	mx.mu.Unlock()
}

// Disconnect detaches from every edge and waits for the serve loops.
func (mx *DeviceMux) Disconnect() {
	mx.mu.Lock()
	mx.closed = true
	conns := make([]*muxClientConn, 0, len(mx.conns))
	for _, cc := range mx.conns {
		conns = append(conns, cc)
	}
	mx.conns = map[int]*muxClientConn{}
	for _, v := range mx.virts {
		v.edge = -1
	}
	mx.mu.Unlock()
	for _, cc := range conns {
		cc.conn.Close()
		<-cc.done
	}
}

// DeviceRounds returns how many rounds one virtual device trained.
func (mx *DeviceMux) DeviceRounds(id int) int {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if v := mx.virts[id]; v != nil {
		return v.rounds
	}
	return 0
}

// LocalModel returns a copy of one virtual device's carried local model
// (nil before it ever trained).
func (mx *DeviceMux) LocalModel(id int) []float64 {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if v := mx.virts[id]; v != nil && v.local != nil {
		return append([]float64(nil), v.local...)
	}
	return nil
}
